(* Tests for the synthesis model: calibration anchors and monotonicity. *)

let test_anchors () =
  let t = Synth.Gates.total Ooo.Config.riscyoo_tplus in
  Alcotest.(check bool)
    (Printf.sprintf "T+ calibrated to 1.78M (%.2fM)" (t /. 1e6))
    true
    (abs_float (t -. 1.78e6) < 1e3);
  let tr = Synth.Gates.total Ooo.Config.riscyoo_tplus_rplus in
  let growth = (tr -. t) /. t in
  Alcotest.(check bool)
    (Printf.sprintf "T+R+ grows 2-10%% (paper 6.2%%; model %.1f%%)" (100. *. growth))
    true
    (growth > 0.02 && growth < 0.10)

let test_frequency () =
  let f = Synth.Timing.max_freq_ghz Ooo.Config.riscyoo_tplus in
  Alcotest.(check bool) (Printf.sprintf "T+ ~1.1GHz (%.2f)" f) true (abs_float (f -. 1.1) < 0.05);
  let fr = Synth.Timing.max_freq_ghz Ooo.Config.riscyoo_tplus_rplus in
  Alcotest.(check bool) (Printf.sprintf "T+R+ ~1.0GHz (%.2f)" fr) true (abs_float (fr -. 1.0) < 0.06);
  Alcotest.(check bool) "bigger ROB is slower" true (fr < f)

let test_monotonic () =
  let base = Ooo.Config.riscyoo_tplus in
  let bigger_iq = { base with Ooo.Config.iq_size = 2 * base.Ooo.Config.iq_size; name = "big-iq" } in
  Alcotest.(check bool) "IQ growth adds gates" true
    (Synth.Gates.total bigger_iq > Synth.Gates.total base);
  let path name cfg = List.assoc name (Synth.Timing.paths cfg) in
  Alcotest.(check bool) "IQ growth lengthens the wakeup path" true
    (path "iq-wakeup-select" bigger_iq > path "iq-wakeup-select" base);
  let wider = Ooo.Config.denver_proxy in
  Alcotest.(check bool) "7-wide proxy is much bigger" true
    (Synth.Gates.total wider > 1.5 *. Synth.Gates.total base)

let test_breakdown_sums () =
  let cfg = Ooo.Config.riscyoo_b in
  let parts = List.fold_left (fun a (_, g) -> a +. g) 0.0 (Synth.Gates.breakdown cfg) in
  Alcotest.(check bool) "breakdown sums to total" true
    (abs_float (parts -. Synth.Gates.total cfg) < 1.0)

let suite =
  let t = Alcotest.test_case in
  [
    t "anchors: paper's Fig 21 points" `Quick test_anchors;
    t "frequency model" `Quick test_frequency;
    t "monotonicity" `Quick test_monotonic;
    t "breakdown consistency" `Quick test_breakdown_sums;
  ]
