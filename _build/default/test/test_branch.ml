(* Unit tests for the branch prediction structures. *)

open Cmd

let ctx0 () = Kernel.make_ctx (Clock.create ())

let test_btb () =
  let ctx = ctx0 () in
  let btb = Branch.Btb.create ~entries:16 () in
  Alcotest.(check bool) "cold miss" true (Branch.Btb.predict btb 0x1000L = None);
  Branch.Btb.update ctx btb ~pc:0x1000L ~target:0x2000L ~taken:true;
  Alcotest.(check bool) "trained" true (Branch.Btb.predict btb 0x1000L = Some 0x2000L);
  (* aliasing entry replaces (direct-mapped: 16 entries * 4 bytes apart) *)
  Branch.Btb.update ctx btb ~pc:(Int64.add 0x1000L (Int64.of_int (16 * 4))) ~target:0x3000L ~taken:true;
  Alcotest.(check bool) "alias evicts" true (Branch.Btb.predict btb 0x1000L = None);
  (* not-taken training clears *)
  Branch.Btb.update ctx btb ~pc:0x4000L ~target:0x5000L ~taken:true;
  Branch.Btb.update ctx btb ~pc:0x4000L ~target:0x5000L ~taken:false;
  Alcotest.(check bool) "cleared on not-taken" true (Branch.Btb.predict btb 0x4000L = None)

let test_tournament_learns () =
  let ctx = ctx0 () in
  let t = Branch.Tournament.create () in
  let pc = 0x1000L in
  (* strongly-taken branch: after warmup, predictions must be taken *)
  for _ = 1 to 32 do
    let _, snap = Branch.Tournament.predict ctx t pc in
    Branch.Tournament.update ctx t ~pc ~taken:true ~snap
  done;
  let pred, snap = Branch.Tournament.predict ctx t pc in
  Branch.Tournament.update ctx t ~pc ~taken:true ~snap;
  Alcotest.(check bool) "learned always-taken" true pred;
  (* alternating pattern: the local 10-bit history should capture it *)
  let t2 = Branch.Tournament.create () in
  let correct = ref 0 in
  let total = 200 in
  for i = 1 to total do
    let taken = i mod 2 = 0 in
    let pred, snap = Branch.Tournament.predict ctx t2 pc in
    if pred = taken && i > 100 then incr correct;
    Branch.Tournament.update ctx t2 ~pc ~taken ~snap
  done;
  Alcotest.(check bool)
    (Printf.sprintf "alternating learned (%d/100 correct after warmup)" !correct)
    true (!correct > 90)

let test_tournament_restore () =
  let ctx = ctx0 () in
  let t = Branch.Tournament.create () in
  let _, snap = Branch.Tournament.predict ctx t 0x1000L in
  (* speculate three more *)
  let _ = Branch.Tournament.predict ctx t 0x1004L in
  let _ = Branch.Tournament.predict ctx t 0x1008L in
  Branch.Tournament.restore ctx t ~snap ~taken:false;
  (* after restore, prediction for the same history must be reproducible *)
  let p1, _ = Branch.Tournament.predict ctx t 0x100CL in
  Branch.Tournament.restore ctx t ~snap ~taken:false;
  let p2, _ = Branch.Tournament.predict ctx t 0x100CL in
  Alcotest.(check bool) "deterministic after restore" true (p1 = p2)

let test_ras () =
  let ctx = ctx0 () in
  let ras = Branch.Ras.create ~entries:4 () in
  Branch.Ras.push ctx ras 0x100L;
  Branch.Ras.push ctx ras 0x200L;
  let snap = Branch.Ras.snapshot ras in
  Branch.Ras.push ctx ras 0x300L;
  Alcotest.(check int64) "lifo" 0x300L (Branch.Ras.pop ctx ras);
  Alcotest.(check int64) "lifo2" 0x200L (Branch.Ras.pop ctx ras);
  Branch.Ras.restore ctx ras snap;
  Alcotest.(check int64) "restored top" 0x200L (Branch.Ras.pop ctx ras);
  Alcotest.(check int64) "below" 0x100L (Branch.Ras.pop ctx ras);
  (* underflow doesn't raise, just mispredicts *)
  let _ = Branch.Ras.pop ctx ras in
  ()

let test_ras_wraps () =
  let ctx = ctx0 () in
  let ras = Branch.Ras.create ~entries:2 () in
  List.iter (fun v -> Branch.Ras.push ctx ras v) [ 1L; 2L; 3L ];
  Alcotest.(check int64) "newest survives wrap" 3L (Branch.Ras.pop ctx ras);
  Alcotest.(check int64) "second" 2L (Branch.Ras.pop ctx ras)

let suite =
  let t = Alcotest.test_case in
  [
    t "btb: train/alias/clear" `Quick test_btb;
    t "tournament: learns patterns" `Quick test_tournament_learns;
    t "tournament: history restore" `Quick test_tournament_restore;
    t "ras: push/pop/restore" `Quick test_ras;
    t "ras: overflow wraps" `Quick test_ras_wraps;
  ]
