(* Tests for the ISA substrate: arithmetic corner cases, encode/decode
   round-trips, the assembler, Sv39 page tables and the golden simulator. *)

open Isa

let i64 = Alcotest.testable (Fmt.fmt "%Ld") Int64.equal

let test_xlen_division () =
  Alcotest.check i64 "div by zero" (-1L) (Xlen.div 7L 0L);
  Alcotest.check i64 "rem by zero" 7L (Xlen.rem 7L 0L);
  Alcotest.check i64 "div overflow" Int64.min_int (Xlen.div Int64.min_int (-1L));
  Alcotest.check i64 "rem overflow" 0L (Xlen.rem Int64.min_int (-1L));
  Alcotest.check i64 "divu by zero" (-1L) (Xlen.divu 7L 0L);
  Alcotest.check i64 "divw" (-2L) (Xlen.divw 7L (-3L));
  Alcotest.check i64 "divw overflow" (Xlen.sext ~bits:32 0x80000000L)
    (Xlen.divw 0x80000000L (-1L))

let test_xlen_mulh () =
  Alcotest.check i64 "mulhu max" 0xFFFFFFFFFFFFFFFEL (Xlen.mulhu (-1L) (-1L));
  Alcotest.check i64 "mulh -1*-1" 0L (Xlen.mulh (-1L) (-1L));
  Alcotest.check i64 "mulh min*min"
    0x4000000000000000L
    (Xlen.mulh Int64.min_int Int64.min_int);
  Alcotest.check i64 "mulhsu -1,max" (-1L) (Xlen.mulhsu (-1L) Int64.max_int);
  (* cross-check mulh against a reference on small values *)
  for a = -5 to 5 do
    for b = -5 to 5 do
      let expect = if (a < 0) = (b < 0) || a = 0 || b = 0 then 0L else -1L in
      Alcotest.check i64
        (Printf.sprintf "mulh %d %d" a b)
        expect
        (Xlen.mulh (Int64.of_int a) (Int64.of_int b))
    done
  done

let test_xlen_word_ops () =
  Alcotest.check i64 "addw wraps" (Xlen.sext ~bits:32 0x80000000L)
    (Xlen.addw 0x7FFFFFFFL 1L);
  Alcotest.check i64 "sraw" (-1L) (Xlen.sraw 0x80000000L 31L);
  Alcotest.check i64 "srlw" 1L (Xlen.srlw 0x80000000L 31L);
  Alcotest.check i64 "sllw sext" (Xlen.sext ~bits:32 0x80000000L) (Xlen.sllw 1L 31L)

(* random instruction generator for round-trip tests *)
let gen_instr =
  let open QCheck.Gen in
  let reg = int_bound 31 in
  let width = oneofl [ Instr.B; Instr.H; Instr.W; Instr.D ] in
  let simm12 = map (fun i -> Int64.of_int (i - 2048)) (int_bound 4095) in
  let op_gen : Instr.t QCheck.Gen.t =
    oneof
      [
        (let* rd = reg and* v = int_bound 0xFFFFF in
         return (Instr.make ~rd ~imm:(Xlen.sext ~bits:32 (Int64.of_int (v lsl 12))) Instr.Lui));
        (let* rd = reg and* rs1 = reg and* imm = simm12 in
         return (Instr.make ~rd ~rs1 ~imm Instr.Jalr));
        (let* rs1 = reg and* rs2 = reg and* off = int_bound 2000
         and* c = oneofl [ Instr.Beq; Instr.Bne; Instr.Blt; Instr.Bge; Instr.Bltu; Instr.Bgeu ] in
         return (Instr.make ~rs1 ~rs2 ~imm:(Int64.of_int ((off - 1000) * 2)) (Instr.Br c)));
        (let* rd = reg and* rs1 = reg and* imm = simm12 and* w = width in
         let unsigned = w <> Instr.D && Random.bool () in
         return (Instr.make ~rd ~rs1 ~imm (Instr.Ld { width = w; unsigned })));
        (let* rs1 = reg and* rs2 = reg and* imm = simm12 and* w = width in
         return (Instr.make ~rs1 ~rs2 ~imm (Instr.St w)));
        (let* rd = reg and* rs1 = reg and* rs2 = reg
         and* alu =
           oneofl
             [ Instr.Add; Instr.Sub; Instr.Sll; Instr.Slt; Instr.Sltu; Instr.Xor; Instr.Srl;
               Instr.Sra; Instr.Or; Instr.And ]
         and* word = bool in
         return (Instr.make ~rd ~rs1 ~rs2 (Instr.OpA { alu; word; imm = false })));
        (let* rd = reg and* rs1 = reg and* rs2 = reg
         and* op =
           oneofl
             [ Instr.Mul; Instr.Mulh; Instr.Mulhsu; Instr.Mulhu; Instr.Div; Instr.Divu;
               Instr.Rem; Instr.Remu ]
         and* word = bool in
         let op = Instr.MulDiv { op; word } in
         (* RV64 has no mulhw etc.: word forms exist only for Mul/Div/Rem *)
         let op =
           match op with
           | Instr.MulDiv { op = (Instr.Mulh | Instr.Mulhsu | Instr.Mulhu) as o; word = _ } ->
             Instr.MulDiv { op = o; word = false }
           | o -> o
         in
         return (Instr.make ~rd ~rs1 ~rs2 op));
        (let* rd = reg and* rs1 = reg and* rs2 = reg and* w = oneofl [ Instr.W; Instr.D ]
         and* op =
           oneofl
             [ Instr.Amoswap; Instr.Amoadd; Instr.Amoxor; Instr.Amoand; Instr.Amoor;
               Instr.Amomin; Instr.Amomax; Instr.Amominu; Instr.Amomaxu ]
         in
         return (Instr.make ~rd ~rs1 ~rs2 (Instr.Amo { op; width = w })));
      ]
  in
  op_gen

let qcheck_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trip" ~count:2000
    (QCheck.make ~print:Instr.to_string gen_instr)
    (fun i -> Decode.decode (Encode.encode i) = i)

let test_decode_known_words () =
  (* cross-checked against riscv-tests objdumps *)
  let check w s =
    let i = Decode.decode w in
    Alcotest.(check string) (Printf.sprintf "0x%08x" w) s (Instr.to_string i)
  in
  check 0x00000513 "addi rd=a0 rs1=zero rs2=zero imm=0";
  check 0x00A50533 "add rd=a0 rs1=a0 rs2=a0 imm=0";
  check 0xFFF50513 "addi rd=a0 rs1=a0 rs2=zero imm=-1";
  check 0x0000006F "jal rd=zero rs1=zero rs2=zero imm=0";
  check 0x00008067 "jalr rd=zero rs1=ra rs2=zero imm=0";
  check 0x00053503 "ld rd=a0 rs1=a0 rs2=zero imm=0";
  check 0x00B53023 "sd rd=zero rs1=a0 rs2=a1 imm=0";
  check 0x02B50533 "mul rd=a0 rs1=a0 rs2=a1 imm=0";
  check 0x00000073 "ecall rd=zero rs1=zero rs2=zero imm=0"

let test_phys_mem () =
  let m = Phys_mem.create () in
  Phys_mem.store m ~bytes:8 0x80000000L 0x1122334455667788L;
  Alcotest.check i64 "ld8" 0x1122334455667788L (Phys_mem.load m ~bytes:8 0x80000000L);
  Alcotest.check i64 "ld4" 0x55667788L (Phys_mem.load m ~bytes:4 0x80000000L);
  Alcotest.check i64 "ld1" 0x66L (Phys_mem.load m ~bytes:1 0x80000002L);
  (* page straddle *)
  Phys_mem.store m ~bytes:8 0x80000FFCL 0xAABBCCDDEEFF0011L;
  Alcotest.check i64 "straddle" 0xAABBCCDDEEFF0011L (Phys_mem.load m ~bytes:8 0x80000FFCL);
  Alcotest.check i64 "unmapped reads zero" 0L (Phys_mem.load m ~bytes:8 0x90000000L)

let test_page_table () =
  let m = Phys_mem.create () in
  let pt = Page_table.create m ~alloc_base:0x80100000L in
  Page_table.map_range pt ~va:0x80000000L ~pa:0x80000000L ~len:0x10000L;
  Page_table.map pt ~va:0x12345000L ~pa:0x80042000L;
  (match Page_table.translate m ~root:(Page_table.root pt) 0x80001234L with
  | Some pa -> Alcotest.check i64 "identity" 0x80001234L pa
  | None -> Alcotest.fail "identity unmapped");
  (match Page_table.translate m ~root:(Page_table.root pt) 0x12345678L with
  | Some pa -> Alcotest.check i64 "remap" 0x80042678L pa
  | None -> Alcotest.fail "remap unmapped");
  (match Page_table.translate m ~root:(Page_table.root pt) 0x55555000L with
  | Some _ -> Alcotest.fail "should fault"
  | None -> ());
  match Page_table.walk m ~root:(Page_table.root pt) 0x12345678L with
  | Some (_, ptes) -> Alcotest.(check int) "three levels" 3 (Array.length ptes)
  | None -> Alcotest.fail "walk failed"

(* assemble + run a small program end to end on the golden model *)
let fib_program n =
  let open Reg_name in
  let p = Asm.create () in
  Asm.li p a0 (Int64.of_int n);
  Asm.li p t0 0L;
  (* fib(i) *)
  Asm.li p t1 1L;
  (* fib(i+1) *)
  Asm.label p "loop";
  Asm.beq p a0 zero "done";
  Asm.add p t2 t0 t1;
  Asm.mv p t0 t1;
  Asm.mv p t1 t2;
  Asm.addi p a0 a0 (-1L);
  Asm.j p "loop";
  Asm.label p "done";
  Asm.mv p a0 t0;
  (* exit(fib(n)) *)
  Asm.li p a7 93L;
  Asm.ecall p;
  p

let run_golden ?(satp = false) p =
  let mem = Phys_mem.create () in
  let mmio = Mmio.create () in
  let base = Addr_map.dram_base in
  Array.iteri
    (fun i w -> Phys_mem.store mem ~bytes:4 (Int64.add base (Int64.of_int (i * 4))) (Int64.of_int w))
    (Asm.words p ~base);
  let g = Golden.create ~nharts:1 mem mmio in
  Golden.set_pc g ~hart:0 base;
  if satp then begin
    let pt = Page_table.create mem ~alloc_base:0x81000000L in
    Page_table.map_range pt ~va:base ~pa:base ~len:0x100000L;
    Golden.set_satp g ~hart:0 (Page_table.root pt)
  end;
  match Golden.run g ~hart:0 ~max:100000 with
  | `Halted _ -> Mmio.exit_code mmio ~hart:0
  | `Timeout -> None

let test_megapages () =
  let m = Phys_mem.create () in
  let pt = Page_table.create m ~alloc_base:0x80100000L in
  Page_table.map_mega pt ~va:0x80200000L ~pa:0x80600000L;
  (match Page_table.translate m ~root:(Page_table.root pt) 0x80234567L with
  | Some pa -> Alcotest.check i64 "megapage offset passes through" 0x80634567L pa
  | None -> Alcotest.fail "megapage unmapped");
  (* a golden run under megapage identity mapping *)
  let p = fib_program 12 in
  match run_golden ~satp:false p with
  | None -> Alcotest.fail "bare run failed"
  | Some expect -> (
    let mem = Phys_mem.create () in
    let mmio = Mmio.create () in
    let base = Addr_map.dram_base in
    Array.iteri
      (fun i w ->
        Phys_mem.store mem ~bytes:4 (Int64.add base (Int64.of_int (i * 4))) (Int64.of_int w))
      (Asm.words p ~base);
    let pt = Page_table.create mem ~alloc_base:0x81000000L in
    Page_table.map_mega_range pt ~va:base ~pa:base ~len:0x400000L;
    let g = Golden.create ~nharts:1 mem mmio in
    Golden.set_pc g ~hart:0 base;
    Golden.set_satp g ~hart:0 (Page_table.root pt);
    match Golden.run g ~hart:0 ~max:100000 with
    | `Halted _ -> Alcotest.check i64 "fib under megapages" expect (Option.get (Mmio.exit_code mmio ~hart:0))
    | `Timeout -> Alcotest.fail "golden timed out under megapages")

let test_golden_fib () =
  (match run_golden (fib_program 10) with
  | Some v -> Alcotest.check i64 "fib 10" 55L v
  | None -> Alcotest.fail "did not exit");
  match run_golden ~satp:true (fib_program 15) with
  | Some v -> Alcotest.check i64 "fib 15 under Sv39" 610L v
  | None -> Alcotest.fail "did not exit under Sv39"

let test_golden_memory_amo () =
  let open Reg_name in
  let p = Asm.create () in
  Asm.li p s0 0x80010000L;
  Asm.li p t0 5L;
  Asm.sd p t0 0L s0;
  Asm.li p t1 3L;
  Asm.amoadd_d p t2 t1 s0;
  (* t2 = 5, mem = 8 *)
  Asm.ld p t3 0L s0;
  (* t3 = 8 *)
  Asm.lr_d p t4 s0;
  Asm.addi p t4 t4 1L;
  Asm.sc_d p t5 t4 s0;
  (* success: t5 = 0, mem = 9 *)
  Asm.ld p t6 0L s0;
  Asm.mul p a0 t2 t3;
  (* 40 *)
  Asm.add p a0 a0 t5;
  (* +0 *)
  Asm.add p a0 a0 t6;
  (* +9 = 49 *)
  Asm.li p a7 93L;
  Asm.ecall p;
  match run_golden p with
  | Some v -> Alcotest.check i64 "amo/lrsc arithmetic" 49L v
  | None -> Alcotest.fail "did not exit"

let test_golden_li_values () =
  let cases = [ 0L; 1L; -1L; 2047L; -2048L; 0x7FFFFFFFL; 0x80000000L; -2147483648L;
                0xDEADBEEFL; 0x123456789ABCDEFL; Int64.min_int; Int64.max_int ] in
  List.iter
    (fun v ->
      let open Reg_name in
      let p = Asm.create () in
      Asm.li p a0 v;
      Asm.li p a7 93L;
      Asm.ecall p;
      match run_golden p with
      | Some got -> Alcotest.check i64 (Printf.sprintf "li %Ld" v) v got
      | None -> Alcotest.fail "did not exit")
    cases

let test_golden_branches () =
  (* exhaustive branch-condition check against OCaml comparisons *)
  let open Reg_name in
  let vals = [ 0L; 1L; -1L; 5L; Int64.min_int; Int64.max_int ] in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          let p = Asm.create () in
          Asm.li p s0 x;
          Asm.li p s1 y;
          Asm.li p a0 0L;
          let check_one bit emit cond =
            let skip = Asm.fresh p "skip" in
            emit p s0 s1 skip;
            Asm.ori p a0 a0 (Int64.of_int bit);
            Asm.label p skip;
            cond
          in
          let expected =
            (if x = y then 0 else 1)
            lor (if x <> y then 0 else 2)
            lor (if Int64.compare x y < 0 then 0 else 4)
            lor (if Int64.compare x y >= 0 then 0 else 8)
            lor (if Xlen.ucompare x y < 0 then 0 else 16)
            lor if Xlen.ucompare x y >= 0 then 0 else 32
          in
          ignore (check_one 1 Asm.beq ());
          ignore (check_one 2 Asm.bne ());
          ignore (check_one 4 Asm.blt ());
          ignore (check_one 8 Asm.bge ());
          ignore (check_one 16 Asm.bltu ());
          ignore (check_one 32 Asm.bgeu ());
          Asm.li p a7 93L;
          Asm.ecall p;
          match run_golden p with
          | Some got ->
            Alcotest.check i64 (Printf.sprintf "branches %Ld %Ld" x y) (Int64.of_int expected) got
          | None -> Alcotest.fail "did not exit")
        vals)
    vals

let test_golden_csr () =
  let open Reg_name in
  let p = Asm.create () in
  Asm.csrr p t0 Csr.mhartid;
  Asm.csrr p t1 Csr.instret;
  (* instret reads 1 here: one instruction already retired *)
  Asm.add p a0 t0 t1;
  Asm.li p a7 93L;
  Asm.ecall p;
  match run_golden p with
  | Some v -> Alcotest.check i64 "mhartid + instret" 1L v
  | None -> Alcotest.fail "did not exit"

let test_asm_la () =
  let open Reg_name in
  let p = Asm.create () in
  Asm.j p "start";
  Asm.label p "data_anchor";
  Asm.nop p;
  Asm.label p "start";
  Asm.la p a0 "data_anchor";
  Asm.li p a7 93L;
  Asm.ecall p;
  match run_golden p with
  | Some v -> Alcotest.check i64 "la resolves" (Int64.add Addr_map.dram_base 4L) v
  | None -> Alcotest.fail "did not exit"

let suite =
  let t = Alcotest.test_case in
  [
    t "xlen: division corner cases" `Quick test_xlen_division;
    t "xlen: mulh family" `Quick test_xlen_mulh;
    t "xlen: word ops" `Quick test_xlen_word_ops;
    t "decode: known words" `Quick test_decode_known_words;
    t "phys_mem: widths and straddles" `Quick test_phys_mem;
    t "page_table: sv39 walks" `Quick test_page_table;
    t "page_table: 2MB megapages" `Quick test_megapages;
    t "golden: fib (bare and Sv39)" `Quick test_golden_fib;
    t "golden: amo + lr/sc" `Quick test_golden_memory_amo;
    t "golden: li constants" `Quick test_golden_li_values;
    t "golden: branch conditions" `Quick test_golden_branches;
    t "asm: la pc-relative" `Quick test_asm_la;
    t "golden: csr reads" `Quick test_golden_csr;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
