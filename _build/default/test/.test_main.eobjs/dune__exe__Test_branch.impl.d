test/test_branch.ml: Alcotest Branch Clock Cmd Int64 Kernel List Printf
