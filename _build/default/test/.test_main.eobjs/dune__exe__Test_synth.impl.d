test/test_synth.ml: Alcotest List Ooo Printf Synth
