test/test_ooo_units.ml: Alcotest Branch Bytes Char Clock Cmd Free_list Int64 Isa Issue_queue Kernel List Ooo Prf QCheck QCheck_alcotest Rename_table Rob Rule Sim Spec_manager Stage Store_buffer Uop
