test/test_mem.ml: Alcotest Array Bytes Cache_geom Clock Cmd Fmt Hashtbl Int64 Isa Kernel L1_dcache L1_icache L2_cache Mem Mem_sys Msg Printf QCheck QCheck_alcotest Random Sim Stats
