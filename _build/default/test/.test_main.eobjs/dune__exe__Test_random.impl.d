test/test_random.ml: Alcotest Array Asm Fmt Int64 Isa Kernel_lib List Machine Mem Ooo Printf Random Reg_name Tlb Workloads
