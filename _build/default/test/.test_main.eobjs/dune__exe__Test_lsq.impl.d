test/test_lsq.ml: Alcotest Branch Clock Cmd Isa Kernel Lsq Ooo Store_buffer Uop
