test/test_tlb_units.ml: Alcotest Array Branch Bytes Char Clock Cmd Fmt Int64 Isa Kernel Mem Ooo QCheck QCheck_alcotest Random Tlb
