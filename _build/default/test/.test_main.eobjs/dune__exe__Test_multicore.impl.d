test/test_multicore.ml: Alcotest Array Asm Csr Fmt Int64 Isa Machine Mem Ooo Printf Reg_name Tlb Workloads
