test/test_cmd.ml: Alcotest Clock Cmd Config_reg Conflict Ehr Fifo Fun Gen Kernel List Printf QCheck QCheck_alcotest Reg Rule Sim Wire
