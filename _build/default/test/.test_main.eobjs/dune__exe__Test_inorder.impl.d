test/test_inorder.ml: Addr_map Alcotest Array Asm Clock Cmd Fmt Golden Inorder Int64 Isa Mem Mmio Option Page_table Phys_mem Printf Reg_name Sim Stats Tlb
