test/test_workloads.ml: Alcotest Array Fmt Int64 Isa List Machine Mem Ooo Option Parsec_kernels Printf Spec_kernels Tlb Workloads
