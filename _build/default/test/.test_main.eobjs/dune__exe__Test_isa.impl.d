test/test_isa.ml: Addr_map Alcotest Array Asm Csr Decode Encode Fmt Golden Instr Int64 Isa List Mmio Option Page_table Phys_mem Printf QCheck QCheck_alcotest Random Reg_name Xlen
