test/test_ooo.ml: Alcotest Array Asm Branch Cmd Fmt Int64 Isa List Machine Mem Ooo Printf Reg_name Tlb Workloads
