(* Quickstart: assemble a RISC-V program, build a full RiscyOO machine
   (OOO core + TLBs + coherent caches + DRAM), run it to completion with
   golden-model co-simulation, and read the performance counters.

   Run: dune exec examples/quickstart.exe *)

open Isa
open Workloads

let () =
  (* 1. Write a program with the assembler eDSL: sum of squares 1..100. *)
  let open Reg_name in
  let p = Asm.create () in
  Asm.li p a0 0L;
  Asm.li p t0 1L;
  Asm.li p t1 101L;
  Asm.label p "loop";
  Asm.mul p t2 t0 t0;
  Asm.add p a0 a0 t2;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 t1 "loop";
  Asm.li p a7 93L;
  (* exit(a0) *)
  Asm.ecall p;

  (* 2. Build the machine: the paper's RiscyOO-T+ configuration, Sv39 paging
     on, and the golden ISA simulator checking every committed instruction. *)
  let prog = Machine.program p in
  let machine =
    Machine.create ~paging:true ~cosim:true (Machine.Out_of_order Ooo.Config.riscyoo_tplus) prog
  in

  (* 3. Run to exit. *)
  let outcome = Machine.run machine in
  Printf.printf "exit code : %Ld (expected %d)\n" outcome.Machine.exits.(0) 338350;
  Printf.printf "cycles    : %d\n" outcome.Machine.cycles;
  Printf.printf "instrs    : %d\n" (Machine.instrs machine);
  Printf.printf "IPC       : %.2f\n"
    (float_of_int (Machine.instrs machine) /. float_of_int outcome.Machine.cycles);

  (* 4. Poke at the counters the benchmarks are built from. *)
  Printf.printf "branches  : %d (%d mispredicted)\n"
    (Machine.find_stat machine "c0.branches")
    (Machine.find_stat machine "c0.mispredicts");
  Printf.printf "L1D       : %d hits, %d misses\n"
    (Machine.find_stat machine "c0.l1d.hits")
    (Machine.find_stat machine "c0.l1d.misses");
  print_endline "every committed instruction was checked against the golden ISA simulator"
