examples/gcd.mli:
