examples/issue_queue_demo.ml: Array Clock Cmd Ehr Kernel List Printf Rule Sim
