examples/issue_queue_demo.mli:
