examples/tlb_exploration.ml: List Machine Ooo Printf Spec_kernels Tlb Workloads
