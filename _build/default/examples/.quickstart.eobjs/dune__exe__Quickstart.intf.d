examples/quickstart.mli:
