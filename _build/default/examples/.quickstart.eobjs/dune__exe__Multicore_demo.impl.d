examples/multicore_demo.ml: Array List Machine Ooo Parsec_kernels Printf Workloads
