examples/gcd.ml: Clock Cmd Int64 Kernel List Printf Reg Rule Sim
