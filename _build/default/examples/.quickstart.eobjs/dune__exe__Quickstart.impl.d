examples/quickstart.ml: Array Asm Isa Machine Ooo Printf Reg_name Workloads
