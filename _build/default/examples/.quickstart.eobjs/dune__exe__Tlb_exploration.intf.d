examples/tlb_exploration.mli:
