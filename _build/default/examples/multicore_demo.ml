(* Multicore demo: the paper's Fig. 11 system — four RiscyOO cores, private
   L1s, a cache crossbar and a shared MSI-coherent L2 — running a parallel
   reduction under both memory models the paper implements (TSO and WMM).

   Run: dune exec examples/multicore_demo.exe *)

open Workloads

let () =
  let harts = 4 in
  let prog = Parsec_kernels.find "blackscholes" ~harts ~scale:1 in
  (* reference result from the golden ISA simulator *)
  let g = Machine.create ~ncores:harts Machine.Golden_only prog in
  let og = Machine.run g in
  Printf.printf "golden checksum: %Ld\n" og.Machine.exits.(0);
  List.iter
    (fun mm ->
      let cfg = Ooo.Config.multicore mm in
      let m = Machine.create ~ncores:harts ~paging:true (Machine.Out_of_order cfg) prog in
      let o = Machine.run m in
      Printf.printf "%-10s checksum %Ld  %8d cycles  (agrees: %b)\n" cfg.Ooo.Config.name
        o.Machine.exits.(0) o.Machine.cycles
        (o.Machine.exits.(0) = og.Machine.exits.(0)))
    [ Ooo.Config.TSO; Ooo.Config.WMM ];
  print_endline "(same binary, same answer under both memory models; only the LSQ rules differ)"
