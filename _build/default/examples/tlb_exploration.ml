(* Microarchitectural exploration, the paper's Section VI-A headline: take
   the TLB-bound mcf kernel and refine ONLY the TLB subsystem — blocking
   (RiscyOO-B), non-blocking, non-blocking + translation walk cache
   (RiscyOO-T+). No other module changes; the interfaces make the refinement
   local, which is the whole point of CMD.

   Run: dune exec examples/tlb_exploration.exe *)

open Workloads

let () =
  let prog = Spec_kernels.find "mcf" ~scale:1 in
  let variants =
    [
      ("blocking TLBs (RiscyOO-B)", Tlb.Tlb_sys.blocking_config);
      ( "non-blocking, no walk cache",
        { Tlb.Tlb_sys.nonblocking_config with Tlb.Tlb_sys.walk_cache_entries = None } );
      ("non-blocking + walk cache (T+)", Tlb.Tlb_sys.nonblocking_config);
    ]
  in
  let base = ref 0 in
  List.iter
    (fun (name, tlb) ->
      let cfg = { Ooo.Config.riscyoo_b with Ooo.Config.name; tlb } in
      let m = Machine.create ~paging:true (Machine.Out_of_order cfg) prog in
      let o = Machine.run m in
      if !base = 0 then base := o.Machine.cycles;
      Printf.printf "%-32s %9d cycles   speedup %.2fx   (dtlb misses %d, walks %d)\n" name
        o.Machine.cycles
        (float_of_int !base /. float_of_int o.Machine.cycles)
        (Machine.find_stat m "c0.tlb.d.misses")
        (Machine.find_stat m "c0.tlb.l2.misses"))
    variants;
  print_endline
    "(the paper built exactly this refinement in two weeks on top of the frozen\n\
    \ interfaces of the rest of the core — Section VI-A)"
