(** Direction predictors behind one interface — the CMD story applied to the
    front-end: the tournament predictor (the paper's configuration), gshare,
    and a plain bimodal table are interchangeable without touching any other
    module. *)

type kind = Tournament | Gshare | Bimodal

type t

val create : kind -> t
val kind_to_string : kind -> string

type snapshot

(** Predict the branch at [pc], speculatively updating any global history;
    returns the snapshot to restore on a misprediction. *)
val predict : Cmd.Kernel.ctx -> t -> int64 -> bool * snapshot

(** Train with the resolved outcome. *)
val update : Cmd.Kernel.ctx -> t -> pc:int64 -> taken:bool -> snap:snapshot -> unit

(** Repair speculative history after a misprediction. *)
val restore : Cmd.Kernel.ctx -> t -> snap:snapshot -> taken:bool -> unit
