(** Branch target buffer: 256-entry direct-mapped (paper, Fig. 12).

    Predicts the next fetch address for a pc; trained on redirects. *)

type t

val create : ?entries:int -> unit -> t

(** Predicted target of the instruction at [pc], if the BTB knows one. *)
val predict : t -> int64 -> int64 option

(** Train: [pc] jumps to [target] ([taken] false removes the entry). *)
val update : Cmd.Kernel.ctx -> t -> pc:int64 -> target:int64 -> taken:bool -> unit
