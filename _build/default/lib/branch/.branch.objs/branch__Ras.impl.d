lib/branch/ras.ml: Array Cmd Mut
