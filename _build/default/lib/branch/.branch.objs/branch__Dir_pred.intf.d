lib/branch/dir_pred.mli: Cmd
