lib/branch/tournament.ml: Array Bool Cmd Int64 Kernel Mut Stdlib
