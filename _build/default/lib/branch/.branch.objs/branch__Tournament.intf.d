lib/branch/tournament.mli: Cmd
