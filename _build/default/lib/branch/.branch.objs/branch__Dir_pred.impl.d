lib/branch/dir_pred.ml: Array Bool Cmd Int64 Kernel Mut Tournament
