lib/branch/btb.ml: Array Cmd Int64 Mut
