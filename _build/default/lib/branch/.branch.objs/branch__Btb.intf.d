lib/branch/btb.mli: Cmd
