lib/branch/ras.mli: Cmd
