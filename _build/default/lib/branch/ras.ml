open Cmd

type t = { stack : int64 array; mutable sp : int }

type snapshot = int

let create ?(entries = 8) () = { stack = Array.make entries 0L; sp = 0 }

let snapshot t = t.sp

let push ctx t v =
  let n = Array.length t.stack in
  Mut.set_arr ctx t.stack (t.sp mod n) v;
  Mut.field ctx ~get:(fun () -> t.sp) ~set:(fun v -> t.sp <- v) (t.sp + 1)

let pop ctx t =
  let n = Array.length t.stack in
  let sp' = if t.sp > 0 then t.sp - 1 else 0 in
  Mut.field ctx ~get:(fun () -> t.sp) ~set:(fun v -> t.sp <- v) sp';
  t.stack.(sp' mod n)

let restore ctx t snap = Mut.field ctx ~get:(fun () -> t.sp) ~set:(fun v -> t.sp <- v) snap
