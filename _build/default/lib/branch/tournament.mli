(** Tournament direction predictor, as in the Alpha 21264 (paper, Fig. 12):
    a local predictor (1024 10-bit histories into 1024 3-bit counters), a
    global predictor (4096 2-bit counters indexed by global history), and a
    choice predictor that selects between them.

    Global history is updated speculatively at prediction time; every
    prediction returns a {!snapshot} that [restore] rolls back to on a
    misprediction redirect. *)

type t

val create : unit -> t

type snapshot

(** Predict the direction of the branch at [pc]; speculatively shifts the
    global history. *)
val predict : Cmd.Kernel.ctx -> t -> int64 -> bool * snapshot

(** Train with the branch outcome (at execute/commit). [snap] is the
    snapshot its prediction returned. *)
val update : Cmd.Kernel.ctx -> t -> pc:int64 -> taken:bool -> snap:snapshot -> unit

(** Roll global history back to just after the mispredicted branch, with its
    corrected outcome. *)
val restore : Cmd.Kernel.ctx -> t -> snap:snapshot -> taken:bool -> unit
