lib/tlb/tlb_sys.ml: Array Cmd Fifo Format Int64 Kernel List Mut Option Printf Rule Stats Walk_cache
