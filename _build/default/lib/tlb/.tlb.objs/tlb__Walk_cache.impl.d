lib/tlb/walk_cache.ml: Array Cmd Int64 Mut
