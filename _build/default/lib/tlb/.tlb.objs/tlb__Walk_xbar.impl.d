lib/tlb/walk_xbar.ml: Array Cmd Fifo Kernel Mem Rule Tlb_sys
