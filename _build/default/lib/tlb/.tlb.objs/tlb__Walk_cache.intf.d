lib/tlb/walk_cache.mli: Cmd
