lib/tlb/tlb_sys.mli: Cmd Format
