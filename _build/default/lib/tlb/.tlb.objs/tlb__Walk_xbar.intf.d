lib/tlb/walk_xbar.mli: Cmd Mem Tlb_sys
