(** The page-walk crossbar (paper, Fig. 11): routes each core's page-walker
    PTE reads to the shared L2 cache's coherent walker port and the
    responses back, retagging with the core id. *)

val rules : Tlb_sys.t array -> l2:Mem.L2_cache.t -> Cmd.Rule.t list
