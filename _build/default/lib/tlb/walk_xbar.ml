open Cmd

let slot_bits = 4

let rules tlbs ~l2 =
  let up =
    Rule.make "walkxbar.up" (fun ctx ->
        Array.iteri
          (fun core t ->
            ignore
              (Kernel.attempt ctx (fun ctx ->
                   let slot, addr = Fifo.deq ctx (Tlb_sys.walk_mem_req t) in
                   Mem.L2_cache.walk_req ctx l2 ~tag:((core lsl slot_bits) lor slot) addr)))
          tlbs)
  in
  let down =
    Rule.make "walkxbar.down" (fun ctx ->
        let continue = ref true in
        while !continue do
          match
            Kernel.attempt ctx (fun ctx ->
                let tag, v = Mem.L2_cache.walk_resp ctx l2 in
                Fifo.enq ctx (Tlb_sys.walk_mem_resp tlbs.(tag lsr slot_bits)) (tag land ((1 lsl slot_bits) - 1), v))
          with
          | Some () -> ()
          | None -> continue := false
        done)
  in
  [ down; up ]
