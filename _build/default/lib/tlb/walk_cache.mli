(** Split translation cache (Barr, Cox & Rixner; paper, Section VI-A).

    Caches intermediate page-walk results per level: entries at level 1 map
    a [vpn2] prefix to the physical base of the level-1 table; entries at
    level 0 map a [(vpn2, vpn1)] prefix to the level-0 table. A walk starts
    from the deepest cached level, skipping memory reads. The paper's
    RiscyOO-T+ uses 24 fully associative entries per level. *)

type t

val create : entries_per_level:int -> t

(** [lookup t va] returns the deepest known starting point:
    [(level, table_base)] where [level] is the level whose table [base]
    addresses (2 = root not cached deeper). *)
val lookup : t -> root:int64 -> int64 -> int * int64

(** [insert ctx t va ~level ~base] records that the walk of [va] found the
    level-[level] table at [base]. *)
val insert : Cmd.Kernel.ctx -> t -> int64 -> level:int -> base:int64 -> unit

val flush : t -> unit
