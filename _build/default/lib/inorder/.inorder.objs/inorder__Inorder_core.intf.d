lib/inorder/inorder_core.mli: Cmd Isa Mem Tlb
