lib/inorder/inorder_core.ml: Addr_map Array Branch Bytes Char Clock Cmd Csr Decode Exec_unit Fifo Instr Int64 Isa Kernel Mem Mmio Mut Rule Stats Tlb Xlen
