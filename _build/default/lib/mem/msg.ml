type state = I | S | E | M

let rank = function I -> 0 | S -> 1 | E -> 2 | M -> 3
let state_leq a b = rank a <= rank b
let state_to_string = function I -> "I" | S -> "S" | E -> "E" | M -> "M"

type creq = { child : int; line : int64; want : state }
type cresp = { child : int; line : int64; to_s : state; data : Bytes.t option }
type preq = { line : int64; to_s : state }
type presp = { line : int64; granted : state; data : Bytes.t }
