open Cmd

type endpoint = {
  creq : Msg.creq Fifo.t;
  cresp : Msg.cresp Fifo.t;
  preq : Msg.preq Fifo.t;
  presp : Msg.presp Fifo.t;
}

let rules children ~l2 =
  let up_resp =
    Rule.make "xbar.up.resp" (fun ctx ->
        Array.iter
          (fun ep ->
            ignore
              (Kernel.attempt ctx (fun ctx -> Fifo.enq ctx (L2_cache.cresp_in l2) (Fifo.deq ctx ep.cresp))))
          children)
  in
  let up_req =
    Rule.make "xbar.up.req" (fun ctx ->
        Array.iter
          (fun ep ->
            ignore
              (Kernel.attempt ctx (fun ctx -> Fifo.enq ctx (L2_cache.creq_in l2) (Fifo.deq ctx ep.creq))))
          children)
  in
  let down_resp =
    Rule.make "xbar.down.resp" (fun ctx ->
        (* drain as many grants as the destinations accept this cycle *)
        let continue = ref true in
        while !continue do
          match
            Kernel.attempt ctx (fun ctx ->
                let child, (g : Msg.presp) = Fifo.deq ctx (L2_cache.presp_out l2) in
                Fifo.enq ctx children.(child).presp g)
          with
          | Some () -> ()
          | None -> continue := false
        done)
  in
  let down_req =
    Rule.make "xbar.down.req" (fun ctx ->
        let continue = ref true in
        while !continue do
          match
            Kernel.attempt ctx (fun ctx ->
                let child, (d : Msg.preq) = Fifo.deq ctx (L2_cache.preq_out l2) in
                Fifo.enq ctx children.(child).preq d)
          with
          | Some () -> ()
          | None -> continue := false
        done)
  in
  [ up_resp; down_resp; up_req; down_req ]
