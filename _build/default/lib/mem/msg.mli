(** MSI coherence protocol messages (paper, Section V-D: the protocol
    formally verified by Vijayaraghavan et al., restated for this model).

    Children (L1 caches) talk to the parent (shared L2) over two virtual
    channels in each direction:
    - child→parent requests ({!creq}): upgrade demands;
    - child→parent responses ({!cresp}): demanded or voluntary downgrades,
      carrying data when the child held M;
    - parent→child requests ({!preq}): downgrade demands;
    - parent→child responses ({!presp}): grants, always carrying data.

    Response channels are drained unconditionally at both ends, which makes
    them strictly faster than the request channels; that ordering argument
    is what keeps the directory in sync without acknowledgement messages. *)

type state =
  | I
  | S
  | E  (** exclusive-clean (the MESI extension the paper suggests) *)
  | M

val state_leq : state -> state -> bool
val state_to_string : state -> string

type creq = { child : int; line : int64; want : state }

(** [to_s] is the state the child now holds. [data] present iff it held M. *)
type cresp = { child : int; line : int64; to_s : state; data : Bytes.t option }

type preq = { line : int64; to_s : state }

(** Grants carry the full line unconditionally. *)
type presp = { line : int64; granted : state; data : Bytes.t }
