lib/mem/msg.mli: Bytes
