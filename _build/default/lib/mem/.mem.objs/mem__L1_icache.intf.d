lib/mem/l1_icache.mli: Cache_geom Cmd Msg
