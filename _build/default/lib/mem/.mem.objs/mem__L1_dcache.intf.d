lib/mem/l1_dcache.mli: Bytes Cache_geom Cmd Msg
