lib/mem/l1_icache.ml: Array Bytes Cache_geom Cmd Fifo Int32 Int64 Kernel Msg Mut Rule Stats
