lib/mem/mem_sys.mli: Cmd Dram Isa L1_dcache L1_icache L2_cache
