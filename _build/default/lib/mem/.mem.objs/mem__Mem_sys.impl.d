lib/mem/mem_sys.ml: Array Cache_geom Cmd Crossbar Dram L1_dcache L1_icache L2_cache List Printf
