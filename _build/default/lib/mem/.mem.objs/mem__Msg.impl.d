lib/mem/msg.ml: Bytes
