lib/mem/cache_geom.ml: Int64
