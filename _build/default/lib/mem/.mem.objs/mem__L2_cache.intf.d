lib/mem/l2_cache.mli: Cache_geom Cmd Dram Msg
