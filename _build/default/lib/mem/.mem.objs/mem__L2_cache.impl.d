lib/mem/l2_cache.ml: Array Bytes Cache_geom Clock Cmd Dram Fifo Fun Int64 Kernel List Msg Mut Rule Stats
