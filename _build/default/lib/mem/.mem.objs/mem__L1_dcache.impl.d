lib/mem/l1_dcache.ml: Array Bytes Cache_geom Char Cmd Fifo Int64 Isa Kernel Msg Mut Rule Stats
