lib/mem/crossbar.mli: Cmd L2_cache Msg
