lib/mem/dram.mli: Bytes Cmd Isa
