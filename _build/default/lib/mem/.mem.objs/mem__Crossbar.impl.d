lib/mem/crossbar.ml: Array Cmd Fifo Kernel L2_cache Msg Rule
