lib/mem/cache_geom.mli:
