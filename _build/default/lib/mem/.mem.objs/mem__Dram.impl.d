lib/mem/dram.ml: Bytes Cache_geom Clock Cmd Fifo Isa Kernel Mut
