(* Cache geometry helpers. Lines are 64 bytes everywhere. *)

let line_bytes = 64
let line_bits = 6

type t = { sets : int; ways : int; set_bits : int }

let v ~size_bytes ~ways =
  let sets = size_bytes / (ways * line_bytes) in
  assert (sets > 0 && sets land (sets - 1) = 0);
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  { sets; ways; set_bits = log2 sets }

let line_addr a = Int64.logand a (Int64.lognot 63L)
let index t line = Int64.to_int (Int64.shift_right_logical line line_bits) land (t.sets - 1)
let tag t line = Int64.shift_right_logical line (line_bits + t.set_bits)
let offset a = Int64.to_int a land (line_bytes - 1)
