(** Cache geometry helpers. Every cache in the hierarchy uses 64-byte lines
    (paper, Fig. 12: buffers are "64B wide"). *)

val line_bytes : int
val line_bits : int

type t = { sets : int; ways : int; set_bits : int }

(** [v ~size_bytes ~ways] — the set count must come out a power of two. *)
val v : size_bytes:int -> ways:int -> t

(** Align an address down to its line. *)
val line_addr : int64 -> int64

(** Set index of a line address. *)
val index : t -> int64 -> int

(** Tag of a line address. *)
val tag : t -> int64 -> int64

(** Byte offset within the line. *)
val offset : int64 -> int
