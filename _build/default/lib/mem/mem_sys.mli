(** The assembled coherent memory system (paper, Fig. 11): per-core L1 I/D
    caches, the cache crossbar, the shared inclusive L2, and DRAM.

    Both TLB page walks (through the L2 walker port) and all cache traffic
    are coherent, as in the paper. *)

type config = {
  l1d_bytes : int;
  l1d_ways : int;
  l1d_mshrs : int;
  l1i_bytes : int;
  l1i_ways : int;
  l2_bytes : int;
  l2_ways : int;
  l2_mshrs : int;
  l2_latency : int;  (** cycles added to every L2 response (hit latency) *)
  mesi : bool;  (** grant exclusive-clean on unshared reads (MESI) *)
  mem_latency : int;
  mem_inflight : int;
}

(** The paper's RiscyOO-B memory parameters (Fig. 12). *)
val default_config : config

type t

val create :
  Cmd.Clock.t -> Isa.Phys_mem.t -> config -> ncores:int -> fetch_width:int -> stats:Cmd.Stats.t -> t

val dcache : t -> int -> L1_dcache.t
val icache : t -> int -> L1_icache.t
val l2 : t -> L2_cache.t
val dram : t -> Dram.t

(** All internal rules (caches, crossbar, L2), in a schedule that keeps
    response channels ahead of request channels. *)
val rules : t -> Cmd.Rule.t list
