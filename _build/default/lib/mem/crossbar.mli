(** The cache crossbar (paper, Fig. 11): connection rules between N L1
    children and the shared L2.

    Child→parent channels are merged (round-robin over children, one message
    per child per cycle); parent→child channels are demultiplexed on the
    destination id. Response channels get their own rules scheduled before
    request channels, preserving the "responses are never slower than
    requests" invariant the protocol's ordering argument needs. *)

type endpoint = {
  creq : Msg.creq Cmd.Fifo.t;
  cresp : Msg.cresp Cmd.Fifo.t;
  preq : Msg.preq Cmd.Fifo.t;
  presp : Msg.presp Cmd.Fifo.t;
}

(** [rules children l2] — the child endpoints must be indexed by their
    [child] id as used in the messages. *)
val rules : endpoint array -> l2:L2_cache.t -> Cmd.Rule.t list
