(** Shared building blocks for workload kernels: exit conventions, spin
    locks, barriers, per-hart partitioning and data-segment generators. *)

(** Emit the exit sequence: [exit(a0)]. *)
val exit_a0 : Isa.Asm.t -> unit

(** [worker_join p ~harts ~done_addr ~result_addr] — every hart bumps the
    done-counter; hart 0 spins until all arrive, loads the 64-bit result at
    [result_addr] into a0 and exits with it; other harts exit 0. *)
val worker_join : Isa.Asm.t -> harts:int -> done_addr:int64 -> result_addr:int64 -> unit

(** [spin_lock p ~addr ~tmp1 ~tmp2] acquires; [spin_unlock p ~addr]. *)
val spin_lock : Isa.Asm.t -> addr_reg:int -> tmp1:int -> tmp2:int -> unit

val spin_unlock : Isa.Asm.t -> addr_reg:int -> unit

(** One-shot sense-free barrier: bump the counter at [addr_reg], spin until
    it reaches [harts]. Use a fresh counter per barrier instance. *)
val barrier : Isa.Asm.t -> addr_reg:int -> harts:int -> tmp1:int -> tmp2:int -> unit

(** [partition p ~n_reg ~harts ~lo_reg ~hi_reg ~tmp] computes this hart's
    [lo, hi) slice of [0, n). Clobbers [tmp]. *)
val partition : Isa.Asm.t -> n_reg:int -> harts:int -> lo_reg:int -> hi_reg:int -> tmp:int -> unit

(** Deterministic pseudo-random generator used by data initializers. *)
val lcg : int ref -> int

(** Write a random cyclic permutation of [n] nodes, each [stride] bytes
    apart starting at [base]: slot k holds the address of its successor.
    Returns the address of the first node. *)
val init_pointer_chase :
  Isa.Phys_mem.t -> base:int64 -> n:int -> stride:int -> seed:int -> int64

(** Fill [n] bytes at [base] with LCG-random bytes. *)
val init_random_bytes : Isa.Phys_mem.t -> base:int64 -> n:int -> seed:int -> unit

(** Fill [n] 64-bit words at [base] with LCG-random values bounded by
    [bound]. *)
val init_random_words : Isa.Phys_mem.t -> base:int64 -> n:int -> bound:int64 -> seed:int -> unit
