lib/workloads/kernel_lib.ml: Array Asm Csr Fun Int64 Isa Phys_mem Reg_name
