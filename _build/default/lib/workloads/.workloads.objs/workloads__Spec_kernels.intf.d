lib/workloads/spec_kernels.mli: Machine
