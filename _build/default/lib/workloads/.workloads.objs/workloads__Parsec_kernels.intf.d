lib/workloads/parsec_kernels.mli: Machine
