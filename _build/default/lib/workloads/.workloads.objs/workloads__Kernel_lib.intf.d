lib/workloads/kernel_lib.mli: Isa
