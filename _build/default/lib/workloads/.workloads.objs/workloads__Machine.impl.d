lib/workloads/machine.ml: Addr_map Array Asm Clock Cmd Format Golden Inorder Int64 Isa List Mem Mmio Ooo Page_table Phys_mem Printf Sim Stats Tlb
