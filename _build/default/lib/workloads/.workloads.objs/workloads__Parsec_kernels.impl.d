lib/workloads/parsec_kernels.ml: Asm Csr Int64 Isa Kernel_lib List Machine Reg_name
