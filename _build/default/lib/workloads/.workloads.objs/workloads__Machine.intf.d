lib/workloads/machine.mli: Cmd Format Isa Mem Ooo Tlb
