lib/workloads/spec_kernels.ml: Addr_map Asm Int64 Isa Kernel_lib List Machine Phys_mem Reg_name
