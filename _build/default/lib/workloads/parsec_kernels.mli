(** PARSEC-shaped multi-threaded kernels (paper, Section VI-B).

    Seven kernels named after the PARSEC benchmarks the paper runs, each
    exercising the shared-memory pattern that matters for the TSO-vs-WMM
    comparison: data-parallel compute ([blackscholes], [swaptions],
    [facesim]), neighbour sharing with barriers ([fluidanimate]),
    lock-protected shared tables ([ferret]), read-mostly sharing
    ([freqmine]) and high-contention shared updates ([streamcluster]).

    All harts run the same code, partitioned by [mhartid]; hart 0 reduces
    the per-hart partial sums and exits with a checksum. For a fixed thread
    count the checksum is schedule-independent (each thread's contribution
    uses only thread-local values), so it must be identical across memory
    models, core counts-of-machines and the golden reference — which is how
    the multicore runs are validated. *)

val all : (string * (harts:int -> scale:int -> Machine.program)) list

val find : string -> harts:int -> scale:int -> Machine.program
val names : string list
