(** Rules: the guarded atomic actions that compose modules (paper, Sec. III).

    A rule's body calls interface methods of any number of modules; firing is
    all-or-nothing. The scheduler gathers per-rule firing statistics here. *)

type t = {
  name : string;
  body : Kernel.ctx -> unit;
  mutable fired : int;  (** cycles in which the rule fired *)
  mutable guard_failed : int;  (** attempts aborted by a guard *)
  mutable conflicted : int;  (** attempts aborted by an intra-cycle conflict *)
}

val make : string -> (Kernel.ctx -> unit) -> t

(** Reset the statistics counters. *)
val reset_stats : t -> unit
