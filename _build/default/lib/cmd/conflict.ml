type order = C | Lt | Gt | Cf

let to_string = function C -> "C" | Lt -> "<" | Gt -> ">" | Cf -> "CF"
let pp fmt o = Format.pp_print_string fmt (to_string o)

let flip = function Lt -> Gt | Gt -> Lt | (C | Cf) as o -> o

let join a b =
  match a, b with
  | Cf, o | o, Cf -> o
  | Lt, Lt -> Lt
  | Gt, Gt -> Gt
  | C, _ | _, C | Lt, Gt | Gt, Lt -> C

let ehr_order (w1, p1) (w2, p2) =
  match w1, w2 with
  | false, false -> Cf
  | false, true -> if p1 <= p2 then Lt else Gt
  | true, false -> if p1 < p2 then Lt else Gt
  | true, true -> if p1 < p2 then Lt else if p2 < p1 then Gt else C

let allows_before = function Lt | Cf -> true | Gt | C -> false
