(** Conflict-matrix algebra for CMD interfaces (paper, Section IV-B).

    For two methods [f1] and [f2] of a module, the conflict matrix records one
    of four relations:
    - [C]: the methods conflict and cannot be called in the same cycle;
    - [Lt] ([<]): they may be called concurrently, and the net effect is as if
      [f1] executed before [f2];
    - [Gt] ([>]): concurrent, net effect as if [f2] executed before [f1];
    - [Cf]: conflict free — concurrent, and the order does not matter.

    In this embedding, the conflict matrix of a compound module is not written
    down by hand; it is induced by the EHR ports its methods touch (exactly as
    the BSV compiler derives it from primitive register accesses). This module
    provides the algebra used by tests and by {!Conflict.infer} helpers. *)

type order =
  | C   (** conflict: never in the same cycle *)
  | Lt  (** first method logically before the second *)
  | Gt  (** first method logically after the second *)
  | Cf  (** conflict-free: order immaterial *)

val pp : Format.formatter -> order -> unit

val to_string : order -> string

(** [flip o] is the relation seen from the second method's point of view:
    [flip Lt = Gt], [flip Gt = Lt], [C] and [Cf] are symmetric. *)
val flip : order -> order

(** [join a b] combines the relations induced by two pairs of primitive
    accesses into the relation of the enclosing methods: a method pair is
    [Lt] only if every constituent access pair is [Lt] or [Cf], etc. Any
    disagreement collapses to [C]. *)
val join : order -> order -> order

(** Relation between two accesses of the same EHR, given as
    [(write?, port)] pairs, in the EHR semantics of Rosenband's ephemeral
    history registers: reads at port [i] observe writes at ports [< i]. *)
val ehr_order : bool * int -> bool * int -> order

(** [allows_before a b] is [true] when relation [a]-then-[b] is admissible in
    a serial schedule that places the first method's rule earlier, i.e. the
    relation is [Lt] or [Cf]. *)
val allows_before : order -> bool
