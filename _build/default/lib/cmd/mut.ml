let set ctx r v =
  let old = !r in
  Kernel.on_abort ctx (fun () -> r := old);
  r := v

let set_arr ctx a i v =
  let old = a.(i) in
  Kernel.on_abort ctx (fun () -> a.(i) <- old);
  a.(i) <- v

let field ctx ~get ~set v =
  let old = get () in
  Kernel.on_abort ctx (fun () -> set old);
  set v

let blit ctx ~src ~src_pos ~dst ~dst_pos ~len =
  let old = Bytes.sub dst dst_pos len in
  Kernel.on_abort ctx (fun () -> Bytes.blit old 0 dst dst_pos len);
  Bytes.blit src src_pos dst dst_pos len

let set_int64 ctx b off v =
  let old = Bytes.get_int64_le b off in
  Kernel.on_abort ctx (fun () -> Bytes.set_int64_le b off old);
  Bytes.set_int64_le b off v
