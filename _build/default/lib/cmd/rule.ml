type t = {
  name : string;
  body : Kernel.ctx -> unit;
  mutable fired : int;
  mutable guard_failed : int;
  mutable conflicted : int;
}

let make name body = { name; body; fired = 0; guard_failed = 0; conflicted = 0 }

let reset_stats t =
  t.fired <- 0;
  t.guard_failed <- 0;
  t.conflicted <- 0
