type t = {
  mutable now : int;
  mutable hooks : (unit -> unit) list;
  mutable cache : (unit -> unit) array option;
}

let create () = { now = 0; hooks = []; cache = None }
let now t = t.now

let on_cycle_end t f =
  t.hooks <- f :: t.hooks;
  t.cache <- None

let tick t =
  let hooks =
    match t.cache with
    | Some a -> a
    | None ->
      (* Hooks affect independent primitives, so order is immaterial; we run
         them oldest-first for reproducibility. *)
      let a = Array.of_list (List.rev t.hooks) in
      t.cache <- Some a;
      a
  in
  Array.iter (fun f -> f ()) hooks;
  t.now <- t.now + 1
