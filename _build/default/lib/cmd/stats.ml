type counter = { name : string; mutable v : int }
type t = { prefix : string; tbl : (string, counter) Hashtbl.t }

let create ?(prefix = "") () = { prefix; tbl = Hashtbl.create 64 }

let counter t name =
  let name = t.prefix ^ name in
  match Hashtbl.find_opt t.tbl name with
  | Some c -> c
  | None ->
    let c = { name; v = 0 } in
    Hashtbl.add t.tbl name c;
    c

let incr ?ctx ?(by = 1) c =
  (match ctx with
  | Some ctx ->
    let old = c.v in
    Kernel.on_abort ctx (fun () -> c.v <- old)
  | None -> ());
  c.v <- c.v + by

let get c = c.v
let set c v = c.v <- v
let find t name = match Hashtbl.find_opt t.tbl (t.prefix ^ name) with Some c -> c.v | None -> 0

let to_list t =
  Hashtbl.fold (fun _ c acc -> (c.name, c.v) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t = Hashtbl.iter (fun _ c -> c.v <- 0) t.tbl

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (n, v) -> Format.fprintf fmt "%-32s %d@," n v) (to_list t);
  Format.fprintf fmt "@]"
