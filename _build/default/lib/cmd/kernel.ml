exception Guard_fail of string
exception Retry of string
exception Conflict_error of string

type cell = {
  cell_name : string;
  (* Per-cycle access summary, lazily reset via the [stamp] generation. *)
  mutable max_r : int;  (* highest read port this cycle, -1 if none *)
  mutable max_w : int;  (* highest write port this cycle, -1 if none *)
  mutable w_mask : int; (* bitmask of write ports used this cycle *)
  mutable stamp : int;  (* cycle the summary belongs to *)
}

type ctx = {
  clk : Clock.t;
  mutable undo : (unit -> unit) list;
  mutable rule : string;
  mutable accesses : int;
}

let make_cell name = { cell_name = name; max_r = -1; max_w = -1; w_mask = 0; stamp = -1 }
let make_ctx clk = { clk; undo = []; rule = "?"; accesses = 0 }
let clock ctx = ctx.clk
let rule_name ctx = ctx.rule
let set_rule_name ctx n = ctx.rule <- n
let on_abort ctx f = ctx.undo <- f :: ctx.undo
let access_count ctx = ctx.accesses

let refresh ctx c =
  let now = Clock.now ctx.clk in
  if c.stamp <> now then begin
    c.stamp <- now;
    c.max_r <- -1;
    c.max_w <- -1;
    c.w_mask <- 0
  end

let retry ctx c kind port =
  raise
    (Retry
       (Printf.sprintf "rule %s: %s port %d of %s inadmissible after this cycle's accesses (max_r=%d max_w=%d)"
          ctx.rule kind port c.cell_name c.max_r c.max_w))

let record_read ctx c port =
  refresh ctx c;
  (* read[port] may follow write[j] only when j < port *)
  if c.max_w >= port then retry ctx c "read" port;
  ctx.accesses <- ctx.accesses + 1;
  if port > c.max_r then begin
    let old = c.max_r in
    c.max_r <- port;
    ctx.undo <- (fun () -> c.max_r <- old) :: ctx.undo
  end

let record_write ctx c port =
  refresh ctx c;
  (* write[port] may follow read[j] when j <= port, write[j] when j < port *)
  if c.max_r > port || c.max_w >= port || c.w_mask land (1 lsl port) <> 0 then
    retry ctx c "write" port;
  ctx.accesses <- ctx.accesses + 1;
  let old_w = c.max_w and old_mask = c.w_mask in
  c.max_w <- port;
  c.w_mask <- c.w_mask lor (1 lsl port);
  ctx.undo <-
    (fun () ->
      c.max_w <- old_w;
      c.w_mask <- old_mask)
    :: ctx.undo

let guard ctx ok msg = if not ok then raise (Guard_fail (ctx.rule ^ ": " ^ msg))

let rollback ctx =
  (* Undo entries are newest-first; applying them head-first restores each
     location through its successive old values down to the original. *)
  List.iter (fun f -> f ()) ctx.undo;
  ctx.undo <- []

let rollback_to ctx save =
  let rec go l = if l != save then (match l with
    | [] -> ()
    | f :: tl -> f (); go tl)
  in
  go ctx.undo;
  ctx.undo <- save

let attempt ctx f =
  let save = ctx.undo in
  match f ctx with
  | r -> Some r
  | exception (Guard_fail _ | Retry _) ->
    rollback_to ctx save;
    None
