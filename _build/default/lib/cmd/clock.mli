(** The simulated clock.

    A {!t} carries the current cycle number and the list of end-of-cycle
    hooks. Hooks are how cycle-boundary primitives ({!Config_reg}, {!Wire})
    commit or reset their state; they run outside any rule, after all rules of
    the cycle have fired, in registration order. *)

type t

(** A fresh clock at cycle 0 with no hooks. *)
val create : unit -> t

(** Current cycle number, starting at 0. *)
val now : t -> int

(** Register a hook to run at the end of every cycle. *)
val on_cycle_end : t -> (unit -> unit) -> unit

(** Run all end-of-cycle hooks, then advance the cycle number. *)
val tick : t -> unit
