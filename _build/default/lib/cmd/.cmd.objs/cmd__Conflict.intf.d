lib/cmd/conflict.mli: Format
