lib/cmd/config_reg.ml: Clock Kernel
