lib/cmd/kernel.ml: Clock List Printf
