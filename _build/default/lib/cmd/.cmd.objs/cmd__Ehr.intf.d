lib/cmd/ehr.mli: Kernel
