lib/cmd/ehr.ml: Kernel Printf
