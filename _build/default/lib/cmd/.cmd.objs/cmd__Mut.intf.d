lib/cmd/mut.mli: Bytes Kernel
