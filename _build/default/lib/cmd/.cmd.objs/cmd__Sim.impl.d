lib/cmd/sim.ml: Array Clock Format Kernel List Random Rule
