lib/cmd/wire.mli: Clock Kernel
