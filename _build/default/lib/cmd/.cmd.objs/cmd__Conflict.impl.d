lib/cmd/conflict.ml: Format
