lib/cmd/clock.mli:
