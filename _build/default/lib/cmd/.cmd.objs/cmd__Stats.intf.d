lib/cmd/stats.mli: Format Kernel
