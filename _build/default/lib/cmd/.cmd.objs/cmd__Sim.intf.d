lib/cmd/sim.mli: Clock Format Rule
