lib/cmd/mut.ml: Array Bytes Kernel
