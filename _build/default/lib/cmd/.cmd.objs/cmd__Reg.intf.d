lib/cmd/reg.mli: Kernel
