lib/cmd/clock.ml: Array List
