lib/cmd/reg.ml: Ehr
