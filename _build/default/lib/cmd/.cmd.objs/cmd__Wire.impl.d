lib/cmd/wire.ml: Clock Ehr Kernel
