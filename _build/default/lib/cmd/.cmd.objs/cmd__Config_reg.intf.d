lib/cmd/config_reg.mli: Clock Kernel
