lib/cmd/stats.ml: Format Hashtbl Kernel List String
