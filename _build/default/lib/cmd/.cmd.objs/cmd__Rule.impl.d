lib/cmd/rule.ml: Kernel
