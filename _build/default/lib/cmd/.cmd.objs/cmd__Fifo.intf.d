lib/cmd/fifo.mli: Clock Kernel
