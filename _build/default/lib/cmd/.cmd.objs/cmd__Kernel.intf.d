lib/cmd/kernel.mli: Clock
