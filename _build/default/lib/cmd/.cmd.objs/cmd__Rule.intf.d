lib/cmd/rule.mli: Kernel
