lib/cmd/fifo.ml: Array Clock Ehr Kernel List Printf
