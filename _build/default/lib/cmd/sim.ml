type mode = Multi | One_per_cycle | Shuffle of int

type t = {
  clk : Clock.t;
  rule_list : Rule.t list;
  order : Rule.t array; (* attempt order; permuted in Shuffle mode *)
  mode : mode;
  rng : Random.State.t option;
  mutable n_cycles : int;
  mutable fires : int;
  mutable rr : int; (* rotating start offset for One_per_cycle fairness *)
}

let create ?(mode = Multi) clk rules =
  let rng = match mode with Shuffle seed -> Some (Random.State.make [| seed |]) | Multi | One_per_cycle -> None in
  { clk; rule_list = rules; order = Array.of_list rules; mode; rng; n_cycles = 0; fires = 0; rr = 0 }

let clock t = t.clk
let cycles t = t.n_cycles
let total_fires t = t.fires
let rules t = t.rule_list

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let cycle t =
  (match t.rng with Some rng -> shuffle rng t.order | None -> ());
  let fired = ref 0 in
  let n = Array.length t.order in
  let stop = ref false in
  let base = if t.mode = One_per_cycle then t.rr else 0 in
  let i = ref 0 in
  while not !stop && !i < n do
    let r = t.order.((base + !i) mod n) in
    incr i;
    let ctx = Kernel.make_ctx t.clk in
    Kernel.set_rule_name ctx r.Rule.name;
    (match r.Rule.body ctx with
    | () ->
      r.Rule.fired <- r.Rule.fired + 1;
      incr fired;
      if t.mode = One_per_cycle then stop := true
    | exception Kernel.Guard_fail _ ->
      Kernel.rollback ctx;
      r.Rule.guard_failed <- r.Rule.guard_failed + 1
    | exception Kernel.Retry msg ->
      Kernel.rollback ctx;
      (* If nothing fired yet this cycle, the conflict is within the rule
         itself: no schedule can ever admit it. Fail loudly, like the BSV
         compiler rejecting an ill-formed rule. *)
      if !fired = 0 then raise (Kernel.Conflict_error msg);
      r.Rule.conflicted <- r.Rule.conflicted + 1)
  done;
  if t.mode = One_per_cycle && n > 0 then t.rr <- (t.rr + 1) mod n;
  Clock.tick t.clk;
  t.n_cycles <- t.n_cycles + 1;
  t.fires <- t.fires + !fired;
  !fired

let run t n =
  for _ = 1 to n do
    ignore (cycle t)
  done

let run_until t ~max_cycles pred =
  let rec go n =
    if pred () then `Done n
    else if n >= max_cycles then `Timeout
    else begin
      ignore (cycle t);
      go (n + 1)
    end
  in
  go 0

let pp_stats fmt t =
  Format.fprintf fmt "@[<v>cycles=%d fires=%d (%.2f rules/cycle)@," t.n_cycles t.fires
    (if t.n_cycles = 0 then 0.0 else float_of_int t.fires /. float_of_int t.n_cycles);
  List.iter
    (fun (r : Rule.t) ->
      Format.fprintf fmt "  %-28s fired=%-9d guard_failed=%-9d conflicted=%d@," r.name r.fired
        r.guard_failed r.conflicted)
    t.rule_list;
  Format.fprintf fmt "@]"
