(** Tracked mutation of module-internal state.

    Complex modules (caches, queues with search) keep their internals in
    plain OCaml structures rather than one EHR per field; their interface
    methods and internal rules still need the all-or-nothing property. These
    helpers perform a mutation {e and} register the undo with the enclosing
    transaction, so an aborting rule leaves no trace.

    Such state carries no conflict ports: the module's interface FIFOs and
    lock cells define its conflict matrix, and internal state is only ever
    reached through them. *)

val set : Kernel.ctx -> 'a ref -> 'a -> unit
val set_arr : Kernel.ctx -> 'a array -> int -> 'a -> unit

(** Record-field mutation: [field ctx ~get ~set v] for fields reached through
    closures. *)
val field : Kernel.ctx -> get:(unit -> 'a) -> set:('a -> unit) -> 'a -> unit

(** [blit ctx ~src ~src_pos ~dst ~dst_pos ~len] — tracked [Bytes.blit]. *)
val blit : Kernel.ctx -> src:Bytes.t -> src_pos:int -> dst:Bytes.t -> dst_pos:int -> len:int -> unit

(** Tracked 64-bit little-endian store into a buffer. *)
val set_int64 : Kernel.ctx -> Bytes.t -> int -> int64 -> unit
