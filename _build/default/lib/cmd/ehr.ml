type 'a t = { cell : Kernel.cell; mutable v : 'a; nm : string }

let counter = ref 0

let create ?name init =
  incr counter;
  let nm = match name with Some n -> n | None -> Printf.sprintf "ehr#%d" !counter in
  { cell = Kernel.make_cell nm; v = init; nm }

let read ctx t p =
  Kernel.record_read ctx t.cell p;
  t.v

let write ctx t p v =
  Kernel.record_write ctx t.cell p;
  let old = t.v in
  Kernel.on_abort ctx (fun () -> t.v <- old);
  t.v <- v

let peek t = t.v
let poke t v = t.v <- v
let name t = t.nm
