type t = { buf : Buffer.t; exits : (int, int64) Hashtbl.t }

let create () = { buf = Buffer.create 256; exits = Hashtbl.create 4 }

let store t ~hart addr v =
  if addr = Addr_map.mmio_console then begin
    Buffer.add_char t.buf (Char.chr (Int64.to_int v land 0xFF));
    true
  end
  else if addr = Addr_map.mmio_exit then begin
    if not (Hashtbl.mem t.exits hart) then Hashtbl.add t.exits hart v;
    true
  end
  else Addr_map.is_mmio addr

let load _t ~hart:_ _addr = 0L
let exit_code t ~hart = Hashtbl.find_opt t.exits hart
let console t = Buffer.contents t.buf
