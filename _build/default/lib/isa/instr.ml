type width = B | H | W | D
type branch_cond = Beq | Bne | Blt | Bge | Bltu | Bgeu
type alu_op = Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And
type muldiv_op = Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu
type amo_op = Amoswap | Amoadd | Amoxor | Amoand | Amoor | Amomin | Amomax | Amominu | Amomaxu
type csr_op = Csrrw | Csrrs | Csrrc

type op =
  | Lui
  | Auipc
  | Jal
  | Jalr
  | Br of branch_cond
  | Ld of { width : width; unsigned : bool }
  | St of width
  | OpA of { alu : alu_op; word : bool; imm : bool }
  | MulDiv of { op : muldiv_op; word : bool }
  | Lr of width
  | Sc of width
  | Amo of { op : amo_op; width : width }
  | Fence
  | FenceI
  | Ecall
  | Ebreak
  | Csr of { op : csr_op; imm : bool }
  | Illegal of int

type t = { op : op; rd : int; rs1 : int; rs2 : int; imm : int64 }

let make ?(rd = 0) ?(rs1 = 0) ?(rs2 = 0) ?(imm = 0L) op = { op; rd; rs1; rs2; imm }
let bytes_of_width = function B -> 1 | H -> 2 | W -> 4 | D -> 8

type exec_class = EC_alu | EC_branch | EC_muldiv | EC_mem | EC_system

let exec_class i =
  match i.op with
  | Lui | Auipc | OpA _ -> EC_alu
  | Jal | Jalr | Br _ -> EC_branch
  | MulDiv _ -> EC_muldiv
  | Ld _ | St _ | Lr _ | Sc _ | Amo _ | Fence | FenceI -> EC_mem
  | Ecall | Ebreak | Csr _ | Illegal _ -> EC_system

let is_mem i = exec_class i = EC_mem
let is_load i = match i.op with Ld _ | Lr _ -> true | _ -> false
let is_store i = match i.op with St _ | Sc _ | Amo _ -> true | _ -> false
let is_branch i = match i.op with Jal | Jalr | Br _ -> true | _ -> false

let uses_rs1 i =
  match i.op with
  | Lui | Auipc | Jal | Fence | FenceI | Ecall | Ebreak | Illegal _ -> false
  | Csr { imm; _ } -> not imm
  | Jalr | Br _ | Ld _ | St _ | OpA _ | MulDiv _ | Lr _ | Sc _ | Amo _ -> true

let uses_rs2 i =
  match i.op with
  | Br _ | St _ | Sc _ | Amo _ -> true
  | OpA { imm; _ } -> not imm
  | MulDiv _ -> true
  | Lui | Auipc | Jal | Jalr | Ld _ | Lr _ | Fence | FenceI | Ecall | Ebreak | Csr _ | Illegal _
    -> false

let writes_rd i =
  i.rd <> 0
  &&
  match i.op with
  | Br _ | St _ | Fence | FenceI | Ecall | Ebreak | Illegal _ -> false
  | Lui | Auipc | Jal | Jalr | Ld _ | OpA _ | MulDiv _ | Lr _ | Sc _ | Amo _ | Csr _ -> true

let width_str = function B -> "b" | H -> "h" | W -> "w" | D -> "d"

let op_str i =
  match i.op with
  | Lui -> "lui"
  | Auipc -> "auipc"
  | Jal -> "jal"
  | Jalr -> "jalr"
  | Br c ->
    (match c with Beq -> "beq" | Bne -> "bne" | Blt -> "blt" | Bge -> "bge" | Bltu -> "bltu" | Bgeu -> "bgeu")
  | Ld { width; unsigned } -> "l" ^ width_str width ^ (if unsigned then "u" else "")
  | St w -> "s" ^ width_str w
  | OpA { alu; word; imm } ->
    let base =
      match alu with
      | Add -> "add" | Sub -> "sub" | Sll -> "sll" | Slt -> "slt" | Sltu -> "sltu"
      | Xor -> "xor" | Srl -> "srl" | Sra -> "sra" | Or -> "or" | And -> "and"
    in
    base ^ (if imm then "i" else "") ^ if word then "w" else ""
  | MulDiv { op; word } ->
    let base =
      match op with
      | Mul -> "mul" | Mulh -> "mulh" | Mulhsu -> "mulhsu" | Mulhu -> "mulhu"
      | Div -> "div" | Divu -> "divu" | Rem -> "rem" | Remu -> "remu"
    in
    base ^ if word then "w" else ""
  | Lr w -> "lr." ^ width_str w
  | Sc w -> "sc." ^ width_str w
  | Amo { op; width } ->
    let base =
      match op with
      | Amoswap -> "amoswap" | Amoadd -> "amoadd" | Amoxor -> "amoxor" | Amoand -> "amoand"
      | Amoor -> "amoor" | Amomin -> "amomin" | Amomax -> "amomax" | Amominu -> "amominu"
      | Amomaxu -> "amomaxu"
    in
    base ^ "." ^ width_str width
  | Fence -> "fence"
  | FenceI -> "fence.i"
  | Ecall -> "ecall"
  | Ebreak -> "ebreak"
  | Csr { op; imm } ->
    let base = match op with Csrrw -> "csrrw" | Csrrs -> "csrrs" | Csrrc -> "csrrc" in
    base ^ if imm then "i" else ""
  | Illegal w -> Printf.sprintf "illegal(0x%x)" w

let pp fmt i =
  Format.fprintf fmt "%s rd=%s rs1=%s rs2=%s imm=%Ld" (op_str i) (Reg_name.to_string i.rd)
    (Reg_name.to_string i.rs1) (Reg_name.to_string i.rs2) i.imm

let to_string i = Format.asprintf "%a" pp i
