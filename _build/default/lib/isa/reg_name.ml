let zero = 0
let ra = 1
let sp = 2
let gp = 3
let tp = 4
let t0 = 5
let t1 = 6
let t2 = 7
let s0 = 8
let s1 = 9
let a0 = 10
let a1 = 11
let a2 = 12
let a3 = 13
let a4 = 14
let a5 = 15
let a6 = 16
let a7 = 17
let s2 = 18
let s3 = 19
let s4 = 20
let s5 = 21
let s6 = 22
let s7 = 23
let s8 = 24
let s9 = 25
let s10 = 26
let s11 = 27
let t3 = 28
let t4 = 29
let t5 = 30
let t6 = 31

let names =
  [|
    "zero"; "ra"; "sp"; "gp"; "tp"; "t0"; "t1"; "t2"; "s0"; "s1"; "a0"; "a1"; "a2"; "a3"; "a4";
    "a5"; "a6"; "a7"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7"; "s8"; "s9"; "s10"; "s11"; "t3"; "t4";
    "t5"; "t6";
  |]

let to_string r = if r >= 0 && r < 32 then names.(r) else Printf.sprintf "x?%d" r
