(** Pure execution semantics shared by every core model (the golden
    simulator keeps its own copies of the branch/AMO logic where noted, so
    the microarchitectural cores are checked against an independent path for
    the corner cases covered by {!Xlen} unit tests). *)

val alu : Instr.alu_op -> word:bool -> int64 -> int64 -> int64
val muldiv : Instr.muldiv_op -> word:bool -> int64 -> int64 -> int64
val branch_taken : Instr.branch_cond -> int64 -> int64 -> bool

(** New memory value of an AMO (the register result is the old value). *)
val amo : Instr.amo_op -> Instr.width -> old:int64 -> src:int64 -> int64
