lib/isa/golden.ml: Addr_map Array Csr Decode Hashtbl Instr Int64 Mmio Page_table Phys_mem Printf Xlen
