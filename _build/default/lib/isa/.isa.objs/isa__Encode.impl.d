lib/isa/encode.ml: Instr Int64 Xlen
