lib/isa/encode.mli: Instr
