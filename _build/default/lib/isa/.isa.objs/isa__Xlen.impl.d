lib/isa/xlen.ml: Format Int64
