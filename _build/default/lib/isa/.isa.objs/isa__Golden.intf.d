lib/isa/golden.mli: Instr Mmio Phys_mem
