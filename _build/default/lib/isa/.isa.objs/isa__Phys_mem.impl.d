lib/isa/phys_mem.ml: Bytes Char Hashtbl Int64
