lib/isa/xlen.mli: Format
