lib/isa/phys_mem.mli: Bytes
