lib/isa/exec_unit.ml: Instr Int64 Xlen
