lib/isa/reg_name.ml: Array Printf
