lib/isa/csr.mli:
