lib/isa/mmio.ml: Addr_map Buffer Char Hashtbl Int64
