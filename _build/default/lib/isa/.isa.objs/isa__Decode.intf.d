lib/isa/decode.mli: Instr
