lib/isa/asm.ml: Array Encode Hashtbl Instr Int64 List Printf Reg_name Xlen
