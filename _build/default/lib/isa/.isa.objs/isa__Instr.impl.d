lib/isa/instr.ml: Format Printf Reg_name
