lib/isa/page_table.ml: Array Int64 Phys_mem
