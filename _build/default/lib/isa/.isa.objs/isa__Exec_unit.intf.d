lib/isa/exec_unit.mli: Instr
