lib/isa/mmio.mli:
