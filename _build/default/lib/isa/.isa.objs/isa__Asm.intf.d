lib/isa/asm.mli: Instr
