lib/isa/csr.ml: Printf
