lib/isa/addr_map.ml: Int64
