lib/isa/page_table.mli: Phys_mem
