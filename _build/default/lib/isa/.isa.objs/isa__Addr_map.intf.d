lib/isa/addr_map.mli:
