lib/isa/reg_name.mli:
