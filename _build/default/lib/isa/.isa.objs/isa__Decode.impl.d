lib/isa/decode.ml: Instr Int64 Xlen
