type t = int64

let zero = 0L
let of_int = Int64.of_int
let to_int = Int64.to_int

let sext ~bits v =
  let s = 64 - bits in
  Int64.shift_right (Int64.shift_left v s) s

let zext ~bits v =
  if bits >= 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L bits) 1L)

let add = Int64.add
let sub = Int64.sub
let logand = Int64.logand
let logor = Int64.logor
let logxor = Int64.logxor
let sll x y = Int64.shift_left x (Int64.to_int y land 63)
let srl x y = Int64.shift_right_logical x (Int64.to_int y land 63)
let sra x y = Int64.shift_right x (Int64.to_int y land 63)
let slt x y = if Int64.compare x y < 0 then 1L else 0L
let ucompare = Int64.unsigned_compare
let sltu x y = if ucompare x y < 0 then 1L else 0L
let mul = Int64.mul

(* High half of the unsigned 128-bit product, by 32-bit limbs. *)
let mulhu x y =
  let lo32 v = Int64.logand v 0xFFFFFFFFL in
  let hi32 v = Int64.shift_right_logical v 32 in
  let x0 = lo32 x and x1 = hi32 x and y0 = lo32 y and y1 = hi32 y in
  let p00 = Int64.mul x0 y0 in
  let p01 = Int64.mul x0 y1 in
  let p10 = Int64.mul x1 y0 in
  let p11 = Int64.mul x1 y1 in
  let mid = Int64.add (Int64.add (hi32 p00) (lo32 p01)) (lo32 p10) in
  Int64.add (Int64.add p11 (hi32 p01)) (Int64.add (hi32 p10) (hi32 mid))

let mulh x y =
  (* signed×signed from unsigned: adjust for negative operands *)
  let u = mulhu x y in
  let u = if Int64.compare x 0L < 0 then Int64.sub u y else u in
  if Int64.compare y 0L < 0 then Int64.sub u x else u

let mulhsu x y =
  let u = mulhu x y in
  if Int64.compare x 0L < 0 then Int64.sub u y else u

let div x y =
  if y = 0L then -1L
  else if x = Int64.min_int && y = -1L then Int64.min_int
  else Int64.div x y

let rem x y =
  if y = 0L then x
  else if x = Int64.min_int && y = -1L then 0L
  else Int64.rem x y

let divu x y = if y = 0L then -1L else Int64.unsigned_div x y
let remu x y = if y = 0L then x else Int64.unsigned_rem x y

let w f x y = sext ~bits:32 (f x y)
let addw = w add
let subw = w sub
let sllw x y = sext ~bits:32 (Int64.shift_left x (Int64.to_int y land 31))
let srlw x y = sext ~bits:32 (Int64.shift_right_logical (zext ~bits:32 x) (Int64.to_int y land 31))
let sraw x y = sext ~bits:32 (Int64.shift_right (sext ~bits:32 x) (Int64.to_int y land 31))
let mulw = w mul

let divw x y =
  let x = sext ~bits:32 x and y = sext ~bits:32 y in
  if y = 0L then -1L
  else if x = sext ~bits:32 0x80000000L && y = -1L then x
  else sext ~bits:32 (Int64.div x y)

let divuw x y =
  let x = zext ~bits:32 x and y = zext ~bits:32 y in
  if y = 0L then -1L else sext ~bits:32 (Int64.unsigned_div x y)

let remw x y =
  let x = sext ~bits:32 x and y = sext ~bits:32 y in
  if y = 0L then x
  else if x = sext ~bits:32 0x80000000L && y = -1L then 0L
  else sext ~bits:32 (Int64.rem x y)

let remuw x y =
  let x = zext ~bits:32 x and y = zext ~bits:32 y in
  if y = 0L then sext ~bits:32 x else sext ~bits:32 (Int64.unsigned_rem x y)

let pp_hex fmt v = Format.fprintf fmt "0x%Lx" v
