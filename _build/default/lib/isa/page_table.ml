let pte_v = 1L
let pte_rwx = 0b1110L

type t = { mem : Phys_mem.t; root_pa : int64; mutable cursor : int64 }

let alloc_page t =
  let pa = t.cursor in
  t.cursor <- Int64.add t.cursor 4096L;
  pa

let create mem ~alloc_base =
  let t = { mem; root_pa = alloc_base; cursor = alloc_base } in
  ignore (alloc_page t);
  t

let vpn va level = Int64.to_int (Int64.logand (Int64.shift_right_logical va (12 + (9 * level))) 0x1FFL)

let pte_addr table_pa idx = Int64.add table_pa (Int64.of_int (idx * 8))

(* Follow (or create) the non-leaf PTE at [level] of [table_pa]. *)
let ensure_table t table_pa idx =
  let pa = pte_addr table_pa idx in
  let pte = Phys_mem.load t.mem ~bytes:8 pa in
  if Int64.logand pte pte_v <> 0L then Int64.shift_left (Int64.shift_right_logical pte 10) 12
  else begin
    let page = alloc_page t in
    let pte = Int64.logor (Int64.shift_left (Int64.shift_right_logical page 12) 10) pte_v in
    Phys_mem.store t.mem ~bytes:8 pa pte;
    page
  end

let map t ~va ~pa =
  let l1 = ensure_table t t.root_pa (vpn va 2) in
  let l0 = ensure_table t l1 (vpn va 1) in
  let leaf = Int64.logor (Int64.shift_left (Int64.shift_right_logical pa 12) 10) (Int64.logor pte_v pte_rwx) in
  Phys_mem.store t.mem ~bytes:8 (pte_addr l0 (vpn va 0)) leaf

let map_mega t ~va ~pa =
  assert (Int64.logand va 0x1FFFFFL = 0L && Int64.logand pa 0x1FFFFFL = 0L);
  let l1 = ensure_table t t.root_pa (vpn va 2) in
  let leaf = Int64.logor (Int64.shift_left (Int64.shift_right_logical pa 12) 10) (Int64.logor pte_v pte_rwx) in
  Phys_mem.store t.mem ~bytes:8 (pte_addr l1 (vpn va 1)) leaf

let map_mega_range t ~va ~pa ~len =
  let pages = Int64.to_int (Int64.div (Int64.add len 0x1FFFFFL) 0x200000L) in
  for i = 0 to pages - 1 do
    let off = Int64.of_int (i * 0x200000) in
    map_mega t ~va:(Int64.add va off) ~pa:(Int64.add pa off)
  done

let map_range t ~va ~pa ~len =
  let pages = Int64.to_int (Int64.div (Int64.add len 4095L) 4096L) in
  for i = 0 to pages - 1 do
    let off = Int64.of_int (i * 4096) in
    map t ~va:(Int64.add va off) ~pa:(Int64.add pa off)
  done

let root t = t.root_pa
let alloc_end t = t.cursor

let walk mem ~root va =
  let ptes = Array.make 3 0L in
  let rec go table_pa level =
    let pa = pte_addr table_pa (vpn va level) in
    ptes.(2 - level) <- pa;
    let pte = Phys_mem.load mem ~bytes:8 pa in
    if Int64.logand pte pte_v = 0L then None
    else if Int64.logand pte pte_rwx <> 0L then begin
      (* leaf, possibly a superpage: the low VPN slices fall through *)
      let base = Int64.shift_left (Int64.shift_right_logical pte 10) 12 in
      let low_mask = Int64.sub (Int64.shift_left 1L (12 + (9 * level))) 4096L in
      Some (Int64.logor base (Int64.logand va low_mask), ptes)
    end
    else if level = 0 then None
    else go (Int64.shift_left (Int64.shift_right_logical pte 10) 12) (level - 1)
  in
  go root 2

let translate mem ~root va =
  match walk mem ~root va with
  | Some (page, _) -> Some (Int64.logor page (Int64.logand va 0xFFFL))
  | None -> None
