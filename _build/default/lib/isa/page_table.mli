(** Sv39 page tables: builder and reference walker.

    The builder writes real three-level Sv39 tables into physical memory; the
    microarchitectural page walker ({!Tlb.Page_walker}) and the golden model
    both walk those bytes, so TLB behaviour is grounded in the same data
    structure the paper's hardware walks. *)

type t

(** [create mem ~alloc_base] starts building a page table; table pages are
    carved from physical memory starting at [alloc_base] (4 KiB aligned). *)
val create : Phys_mem.t -> alloc_base:int64 -> t

(** [map t ~va ~pa] installs a 4 KiB mapping (addresses page aligned). *)
val map : t -> va:int64 -> pa:int64 -> unit

(** [map_range t ~va ~pa ~len] maps [len] bytes (rounded up to pages). *)
val map_range : t -> va:int64 -> pa:int64 -> len:int64 -> unit

(** Install a 2 MB megapage (level-1 leaf); addresses 2 MB aligned. *)
val map_mega : t -> va:int64 -> pa:int64 -> unit

val map_mega_range : t -> va:int64 -> pa:int64 -> len:int64 -> unit

(** Physical address of the root table page — the value to put in [satp]. *)
val root : t -> int64

(** First free physical address after the allocated table pages. *)
val alloc_end : t -> int64

(** One step of the three-level walk: physical addresses of the PTEs read at
    levels 2, 1, 0 plus the translated page, or [None] on fault. Pure with
    respect to memory. *)
val walk : Phys_mem.t -> root:int64 -> int64 -> (int64 * int64 array) option

(** [translate mem ~root va] is the translated {e byte} address. *)
val translate : Phys_mem.t -> root:int64 -> int64 -> int64 option
