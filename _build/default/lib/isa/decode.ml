open Instr

let bits w lo hi = (w lsr lo) land ((1 lsl (hi - lo + 1)) - 1)
let sext32 bitsn v = Xlen.sext ~bits:bitsn (Int64.of_int v)

let imm_i w = sext32 12 (bits w 20 31)
let imm_s w = sext32 12 ((bits w 25 31 lsl 5) lor bits w 7 11)

let imm_b w =
  sext32 13
    ((bits w 31 31 lsl 12) lor (bits w 7 7 lsl 11) lor (bits w 25 30 lsl 5) lor (bits w 8 11 lsl 1))

let imm_u w = Xlen.sext ~bits:32 (Int64.of_int ((bits w 12 31) lsl 12))

let imm_j w =
  sext32 21
    ((bits w 31 31 lsl 20) lor (bits w 12 19 lsl 12) lor (bits w 20 20 lsl 11)
   lor (bits w 21 30 lsl 1))

let width_of_f3 f3 = match f3 land 3 with 0 -> B | 1 -> H | 2 -> W | _ -> D

let alu_of_f3 f3 f7 imm =
  match f3 with
  | 0 -> if (not imm) && f7 land 0x20 <> 0 then Some Sub else Some Add
  | 1 -> Some Sll
  | 2 -> Some Slt
  | 3 -> Some Sltu
  | 4 -> Some Xor
  | 5 -> if f7 land 0x20 <> 0 then Some Sra else Some Srl
  | 6 -> Some Or
  | 7 -> Some And
  | _ -> None

let muldiv_of_f3 = function
  | 0 -> Mul | 1 -> Mulh | 2 -> Mulhsu | 3 -> Mulhu | 4 -> Div | 5 -> Divu | 6 -> Rem | _ -> Remu

let decode w =
  let w = w land 0xFFFFFFFF in
  let opc = bits w 0 6 in
  let rd = bits w 7 11 in
  let f3 = bits w 12 14 in
  let rs1 = bits w 15 19 in
  let rs2 = bits w 20 24 in
  let f7 = bits w 25 31 in
  let ill = make (Illegal w) in
  match opc with
  | 0x37 -> make ~rd ~imm:(imm_u w) Lui
  | 0x17 -> make ~rd ~imm:(imm_u w) Auipc
  | 0x6F -> make ~rd ~imm:(imm_j w) Jal
  | 0x67 -> if f3 = 0 then make ~rd ~rs1 ~imm:(imm_i w) Jalr else ill
  | 0x63 ->
    let c =
      match f3 with
      | 0 -> Some Beq | 1 -> Some Bne | 4 -> Some Blt | 5 -> Some Bge | 6 -> Some Bltu
      | 7 -> Some Bgeu | _ -> None
    in
    (match c with Some c -> make ~rs1 ~rs2 ~imm:(imm_b w) (Br c) | None -> ill)
  | 0x03 ->
    if f3 = 7 then ill
    else
      let unsigned = f3 land 4 <> 0 in
      if unsigned && f3 land 3 = 3 then ill
      else make ~rd ~rs1 ~imm:(imm_i w) (Ld { width = width_of_f3 f3; unsigned })
  | 0x23 -> make ~rs1 ~rs2 ~imm:(imm_s w) (St (width_of_f3 f3))
  | 0x13 | 0x1B ->
    let word = opc = 0x1B in
    (match alu_of_f3 f3 0 true with
    | None -> ill
    | Some alu ->
      (match alu with
      | Sll | Srl ->
        let sra = f7 land 0x20 <> 0 in
        let alu = if f3 = 5 && sra then Sra else alu in
        let shbits = if word then 5 else 6 in
        let sh = bits w 20 (20 + shbits - 1) in
        make ~rd ~rs1 ~imm:(Int64.of_int sh) (OpA { alu; word; imm = true })
      | _ -> make ~rd ~rs1 ~imm:(imm_i w) (OpA { alu; word; imm = true })))
  | 0x33 | 0x3B ->
    let word = opc = 0x3B in
    if f7 = 1 then make ~rd ~rs1 ~rs2 (MulDiv { op = muldiv_of_f3 f3; word })
    else (
      match alu_of_f3 f3 f7 false with
      | Some alu -> make ~rd ~rs1 ~rs2 (OpA { alu; word; imm = false })
      | None -> ill)
  | 0x2F ->
    let width = if f3 land 1 = 1 then D else W in
    if f3 <> 2 && f3 <> 3 then ill
    else
      let f5 = f7 lsr 2 in
      (match f5 with
      | 0x02 -> make ~rd ~rs1 (Lr width)
      | 0x03 -> make ~rd ~rs1 ~rs2 (Sc width)
      | _ ->
        let op =
          match f5 with
          | 0x00 -> Some Amoadd | 0x01 -> Some Amoswap | 0x04 -> Some Amoxor | 0x08 -> Some Amoor
          | 0x0C -> Some Amoand | 0x10 -> Some Amomin | 0x14 -> Some Amomax
          | 0x18 -> Some Amominu | 0x1C -> Some Amomaxu | _ -> None
        in
        (match op with Some op -> make ~rd ~rs1 ~rs2 (Amo { op; width }) | None -> ill))
  | 0x0F -> if f3 = 0 then make Fence else if f3 = 1 then make FenceI else ill
  | 0x73 ->
    if f3 = 0 then (
      match bits w 20 31 with 0 -> make Ecall | 1 -> make Ebreak | _ -> ill)
    else
      let op = match f3 land 3 with 1 -> Some Csrrw | 2 -> Some Csrrs | 3 -> Some Csrrc | _ -> None in
      (match op with
      | Some op -> make ~rd ~rs1 ~imm:(Int64.of_int (bits w 20 31)) (Csr { op; imm = f3 land 4 <> 0 })
      | None -> ill)
  | _ -> ill
