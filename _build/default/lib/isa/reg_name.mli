(** Architectural register names (RISC-V ABI mnemonics).

    Registers are plain ints 0–31; these constants make assembler programs
    and test expectations readable. *)

val zero : int
val ra : int
val sp : int
val gp : int
val tp : int
val t0 : int
val t1 : int
val t2 : int
val s0 : int
val s1 : int
val a0 : int
val a1 : int
val a2 : int
val a3 : int
val a4 : int
val a5 : int
val a6 : int
val a7 : int
val s2 : int
val s3 : int
val s4 : int
val s5 : int
val s6 : int
val s7 : int
val s8 : int
val s9 : int
val s10 : int
val s11 : int
val t3 : int
val t4 : int
val t5 : int
val t6 : int

(** ABI name of a register number. *)
val to_string : int -> string
