let cycle = 0xC00
let time = 0xC01
let instret = 0xC02
let mhartid = 0xF14
let satp = 0x180

let name a =
  if a = cycle then "cycle"
  else if a = time then "time"
  else if a = instret then "instret"
  else if a = mhartid then "mhartid"
  else if a = satp then "satp"
  else Printf.sprintf "csr:0x%x" a
