let dram_base = 0x8000_0000L
let mmio_console = 0x1000_0000L
let mmio_exit = 0x1000_0008L
let is_mmio a = Int64.unsigned_compare a dram_base < 0
