(** 64-bit machine arithmetic with RISC-V semantics.

    Values are [int64] interpreted as the 64-bit register contents. All the
    corner cases of the RV64IM spec live here: shift-amount masking, the
    [*W] 32-bit operations that sign-extend their results, division by zero
    and signed-overflow conventions, and the high halves of 128-bit
    products. *)

type t = int64

val zero : t
val of_int : int -> t
val to_int : t -> int

(** [sext ~bits v] sign-extends the low [bits] of [v]. *)
val sext : bits:int -> t -> t

(** [zext ~bits v] zero-extends the low [bits] of [v]. *)
val zext : bits:int -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

(** Shifts mask the amount to 6 bits (5 for the [*W] forms). *)
val sll : t -> t -> t

val srl : t -> t -> t
val sra : t -> t -> t

(** Signed / unsigned set-less-than, returning 0 or 1. *)
val slt : t -> t -> t

val sltu : t -> t -> t

(** Unsigned comparison, [-1], [0] or [1]. *)
val ucompare : t -> t -> int

val mul : t -> t -> t

(** High 64 bits of the signed×signed / signed×unsigned / unsigned×unsigned
    128-bit product. *)
val mulh : t -> t -> t

val mulhsu : t -> t -> t
val mulhu : t -> t -> t

(** RISC-V division: [x/0 = -1], [min_int / -1 = min_int]. *)
val div : t -> t -> t

(** RISC-V remainder: [x rem 0 = x], [min_int rem -1 = 0]. *)
val rem : t -> t -> t

val divu : t -> t -> t
val remu : t -> t -> t

(** 32-bit ([*W]) forms: compute on the low 32 bits, sign-extend to 64. *)
val addw : t -> t -> t

val subw : t -> t -> t
val sllw : t -> t -> t
val srlw : t -> t -> t
val sraw : t -> t -> t
val mulw : t -> t -> t
val divw : t -> t -> t
val divuw : t -> t -> t
val remw : t -> t -> t
val remuw : t -> t -> t

val pp_hex : Format.formatter -> t -> unit
