open Instr

let fits_simm12 v = Int64.compare v (-2048L) >= 0 && Int64.compare v 2047L <= 0

let check name ok = if not ok then invalid_arg ("encode: " ^ name ^ " immediate out of range")

let r_type ~f7 ~rs2 ~rs1 ~f3 ~rd ~opc =
  (f7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (f3 lsl 12) lor (rd lsl 7) lor opc

let i_type ~imm ~rs1 ~f3 ~rd ~opc =
  check "I" (fits_simm12 imm);
  let imm = Int64.to_int (Int64.logand imm 0xFFFL) in
  (imm lsl 20) lor (rs1 lsl 15) lor (f3 lsl 12) lor (rd lsl 7) lor opc

let s_type ~imm ~rs2 ~rs1 ~f3 ~opc =
  check "S" (fits_simm12 imm);
  let imm = Int64.to_int (Int64.logand imm 0xFFFL) in
  ((imm lsr 5) lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (f3 lsl 12)
  lor ((imm land 0x1F) lsl 7)
  lor opc

let b_type ~imm ~rs2 ~rs1 ~f3 ~opc =
  check "B" (Int64.compare imm (-4096L) >= 0 && Int64.compare imm 4095L <= 0 && Int64.rem imm 2L = 0L);
  let imm = Int64.to_int (Int64.logand imm 0x1FFFL) in
  let b12 = (imm lsr 12) land 1
  and b11 = (imm lsr 11) land 1
  and b10_5 = (imm lsr 5) land 0x3F
  and b4_1 = (imm lsr 1) land 0xF in
  (b12 lsl 31) lor (b10_5 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (f3 lsl 12)
  lor (b4_1 lsl 8) lor (b11 lsl 7) lor opc

let u_type ~imm ~rd ~opc =
  (* imm holds the already-shifted 32-bit value (multiple of 4096). *)
  check "U" (Int64.logand imm 0xFFFL = 0L && Xlen.sext ~bits:32 imm = imm);
  let hi = Int64.to_int (Int64.logand (Int64.shift_right_logical imm 12) 0xFFFFFL) in
  (hi lsl 12) lor (rd lsl 7) lor opc

let j_type ~imm ~rd ~opc =
  check "J"
    (Int64.compare imm (-1048576L) >= 0 && Int64.compare imm 1048575L <= 0 && Int64.rem imm 2L = 0L);
  let imm = Int64.to_int (Int64.logand imm 0x1FFFFFL) in
  let b20 = (imm lsr 20) land 1
  and b10_1 = (imm lsr 1) land 0x3FF
  and b11 = (imm lsr 11) land 1
  and b19_12 = (imm lsr 12) land 0xFF in
  (b20 lsl 31) lor (b10_1 lsl 21) lor (b11 lsl 20) lor (b19_12 lsl 12) lor (rd lsl 7) lor opc

let f3_of_branch = function Beq -> 0 | Bne -> 1 | Blt -> 4 | Bge -> 5 | Bltu -> 6 | Bgeu -> 7
let f3_of_width = function B -> 0 | H -> 1 | W -> 2 | D -> 3

let f3_f7_of_alu = function
  | Add -> (0, 0)
  | Sub -> (0, 0x20)
  | Sll -> (1, 0)
  | Slt -> (2, 0)
  | Sltu -> (3, 0)
  | Xor -> (4, 0)
  | Srl -> (5, 0)
  | Sra -> (5, 0x20)
  | Or -> (6, 0)
  | And -> (7, 0)

let f3_of_muldiv = function
  | Mul -> 0 | Mulh -> 1 | Mulhsu -> 2 | Mulhu -> 3 | Div -> 4 | Divu -> 5 | Rem -> 6 | Remu -> 7

let f5_of_amo = function
  | Amoadd -> 0x00 | Amoswap -> 0x01 | Amoxor -> 0x04 | Amoor -> 0x08 | Amoand -> 0x0C
  | Amomin -> 0x10 | Amomax -> 0x14 | Amominu -> 0x18 | Amomaxu -> 0x1C

let encode (i : Instr.t) =
  match i.op with
  | Lui -> u_type ~imm:i.imm ~rd:i.rd ~opc:0x37
  | Auipc -> u_type ~imm:i.imm ~rd:i.rd ~opc:0x17
  | Jal -> j_type ~imm:i.imm ~rd:i.rd ~opc:0x6F
  | Jalr -> i_type ~imm:i.imm ~rs1:i.rs1 ~f3:0 ~rd:i.rd ~opc:0x67
  | Br c -> b_type ~imm:i.imm ~rs2:i.rs2 ~rs1:i.rs1 ~f3:(f3_of_branch c) ~opc:0x63
  | Ld { width; unsigned } ->
    let f3 = f3_of_width width lor if unsigned then 4 else 0 in
    i_type ~imm:i.imm ~rs1:i.rs1 ~f3 ~rd:i.rd ~opc:0x03
  | St w -> s_type ~imm:i.imm ~rs2:i.rs2 ~rs1:i.rs1 ~f3:(f3_of_width w) ~opc:0x23
  | OpA { alu; word; imm = true } ->
    let f3, f7 = f3_f7_of_alu alu in
    let opc = if word then 0x1B else 0x13 in
    (match alu with
    | Sll | Srl | Sra ->
      let sh = Int64.to_int i.imm in
      let bits = if word then 5 else 6 in
      check "shamt" (sh >= 0 && sh < (1 lsl bits));
      r_type ~f7:(f7 lor (if (not word) && sh >= 32 then 1 else 0)) ~rs2:(sh land 0x1F)
        ~rs1:i.rs1 ~f3 ~rd:i.rd ~opc
    | Add | Slt | Sltu | Xor | Or | And -> i_type ~imm:i.imm ~rs1:i.rs1 ~f3 ~rd:i.rd ~opc
    | Sub -> invalid_arg "encode: subi does not exist")
  | OpA { alu; word; imm = false } ->
    let f3, f7 = f3_f7_of_alu alu in
    r_type ~f7 ~rs2:i.rs2 ~rs1:i.rs1 ~f3 ~rd:i.rd ~opc:(if word then 0x3B else 0x33)
  | MulDiv { op; word } ->
    r_type ~f7:1 ~rs2:i.rs2 ~rs1:i.rs1 ~f3:(f3_of_muldiv op) ~rd:i.rd
      ~opc:(if word then 0x3B else 0x33)
  | Lr w -> r_type ~f7:(0x02 lsl 2) ~rs2:0 ~rs1:i.rs1 ~f3:(f3_of_width w) ~rd:i.rd ~opc:0x2F
  | Sc w -> r_type ~f7:(0x03 lsl 2) ~rs2:i.rs2 ~rs1:i.rs1 ~f3:(f3_of_width w) ~rd:i.rd ~opc:0x2F
  | Amo { op; width } ->
    r_type ~f7:(f5_of_amo op lsl 2) ~rs2:i.rs2 ~rs1:i.rs1 ~f3:(f3_of_width width) ~rd:i.rd
      ~opc:0x2F
  | Fence -> i_type ~imm:0L ~rs1:0 ~f3:0 ~rd:0 ~opc:0x0F
  | FenceI -> i_type ~imm:0L ~rs1:0 ~f3:1 ~rd:0 ~opc:0x0F
  | Ecall -> i_type ~imm:0L ~rs1:0 ~f3:0 ~rd:0 ~opc:0x73
  | Ebreak -> i_type ~imm:1L ~rs1:0 ~f3:0 ~rd:0 ~opc:0x73
  | Csr { op; imm } ->
    let f3 = (match op with Csrrw -> 1 | Csrrs -> 2 | Csrrc -> 3) lor if imm then 4 else 0 in
    let csr = Int64.to_int i.imm land 0xFFF in
    (csr lsl 20) lor (i.rs1 lsl 15) lor (f3 lsl 12) lor (i.rd lsl 7) lor 0x73
  | Illegal w -> w
