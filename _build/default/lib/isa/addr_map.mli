(** The physical address map shared by every core and the golden model. *)

(** Start of cacheable DRAM. *)
val dram_base : int64

(** MMIO console device: a store writes one character. *)
val mmio_console : int64

(** MMIO exit device ("tohost"): a store terminates the hart with the stored
    value as exit code. *)
val mmio_exit : int64

(** [is_mmio a] — everything below DRAM is uncached device space. *)
val is_mmio : int64 -> bool
