(** The handful of CSRs the models implement. *)

val cycle : int
val time : int
val instret : int
val mhartid : int
val satp : int

val name : int -> string
