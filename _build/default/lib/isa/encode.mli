(** Instruction encoder: typed {!Instr.t} to the 32-bit RISC-V word.

    Immediates out of range for the format are rejected with
    [Invalid_argument]; branch/jump displacements must be even. *)

val encode : Instr.t -> int

(** Shorthands used by the assembler for immediates that need splitting. *)
val fits_simm12 : int64 -> bool
