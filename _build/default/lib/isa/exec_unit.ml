let alu op ~word a b =
  match op, word with
  | Instr.Add, false -> Xlen.add a b
  | Instr.Add, true -> Xlen.addw a b
  | Instr.Sub, false -> Xlen.sub a b
  | Instr.Sub, true -> Xlen.subw a b
  | Instr.Sll, false -> Xlen.sll a b
  | Instr.Sll, true -> Xlen.sllw a b
  | Instr.Srl, false -> Xlen.srl a b
  | Instr.Srl, true -> Xlen.srlw a b
  | Instr.Sra, false -> Xlen.sra a b
  | Instr.Sra, true -> Xlen.sraw a b
  | Instr.Slt, _ -> Xlen.slt a b
  | Instr.Sltu, _ -> Xlen.sltu a b
  | Instr.Xor, _ -> Xlen.logxor a b
  | Instr.Or, _ -> Xlen.logor a b
  | Instr.And, _ -> Xlen.logand a b

let muldiv op ~word a b =
  match op, word with
  | Instr.Mul, false -> Xlen.mul a b
  | Instr.Mul, true -> Xlen.mulw a b
  | Instr.Mulh, _ -> Xlen.mulh a b
  | Instr.Mulhsu, _ -> Xlen.mulhsu a b
  | Instr.Mulhu, _ -> Xlen.mulhu a b
  | Instr.Div, false -> Xlen.div a b
  | Instr.Div, true -> Xlen.divw a b
  | Instr.Divu, false -> Xlen.divu a b
  | Instr.Divu, true -> Xlen.divuw a b
  | Instr.Rem, false -> Xlen.rem a b
  | Instr.Rem, true -> Xlen.remw a b
  | Instr.Remu, false -> Xlen.remu a b
  | Instr.Remu, true -> Xlen.remuw a b

let branch_taken c a b =
  match c with
  | Instr.Beq -> a = b
  | Instr.Bne -> a <> b
  | Instr.Blt -> Int64.compare a b < 0
  | Instr.Bge -> Int64.compare a b >= 0
  | Instr.Bltu -> Xlen.ucompare a b < 0
  | Instr.Bgeu -> Xlen.ucompare a b >= 0

let amo op width ~old ~src =
  let v =
    match op with
    | Instr.Amoswap -> src
    | Instr.Amoadd -> Int64.add old src
    | Instr.Amoxor -> Int64.logxor old src
    | Instr.Amoand -> Int64.logand old src
    | Instr.Amoor -> Int64.logor old src
    | Instr.Amomin -> if Int64.compare old src <= 0 then old else src
    | Instr.Amomax -> if Int64.compare old src >= 0 then old else src
    | Instr.Amominu -> if Xlen.ucompare old src <= 0 then old else src
    | Instr.Amomaxu -> if Xlen.ucompare old src >= 0 then old else src
  in
  if width = Instr.W then Xlen.sext ~bits:32 v else v
