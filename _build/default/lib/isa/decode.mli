(** Instruction decoder: 32-bit word to typed {!Instr.t}.

    Unrecognized words decode to [Instr.Illegal]; decoding never raises. *)

val decode : int -> Instr.t
