(** Typed RV64IMA (+Zicsr, +fences) instructions.

    Both the golden ISA simulator and the microarchitectural cores execute
    this structured form; {!Decode} and {!Encode} convert to and from the
    32-bit encoding, and round-tripping is property-tested. *)

type width = B | H | W | D

type branch_cond = Beq | Bne | Blt | Bge | Bltu | Bgeu

type alu_op = Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And

type muldiv_op = Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu

type amo_op = Amoswap | Amoadd | Amoxor | Amoand | Amoor | Amomin | Amomax | Amominu | Amomaxu

type csr_op = Csrrw | Csrrs | Csrrc

type op =
  | Lui
  | Auipc
  | Jal
  | Jalr
  | Br of branch_cond
  | Ld of { width : width; unsigned : bool }
  | St of width
  | OpA of { alu : alu_op; word : bool; imm : bool }  (** integer ALU *)
  | MulDiv of { op : muldiv_op; word : bool }
  | Lr of width
  | Sc of width
  | Amo of { op : amo_op; width : width }
  | Fence
  | FenceI
  | Ecall
  | Ebreak
  | Csr of { op : csr_op; imm : bool }
  | Illegal of int

type t = { op : op; rd : int; rs1 : int; rs2 : int; imm : int64 }

val make : ?rd:int -> ?rs1:int -> ?rs2:int -> ?imm:int64 -> op -> t

(** Width in bytes. *)
val bytes_of_width : width -> int

(** Classification used by issue logic. *)
type exec_class = EC_alu | EC_branch | EC_muldiv | EC_mem | EC_system

val exec_class : t -> exec_class

(** [is_mem i] holds for loads, stores, AMOs, LR/SC and fences — everything
    that allocates an LSQ slot. *)
val is_mem : t -> bool

(** Loads in the LSQ sense: LD + LR (reads memory, returns a value). *)
val is_load : t -> bool

(** Stores in the LSQ sense: ST + SC + AMO (writes memory). *)
val is_store : t -> bool

val is_branch : t -> bool

(** Does the instruction read rs1 / rs2, write rd? *)
val uses_rs1 : t -> bool

val uses_rs2 : t -> bool
val writes_rd : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
