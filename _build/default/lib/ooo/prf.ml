open Cmd

type t = { vals : int64 array; pres : bool array; sb : bool array }

let create ~nregs = { vals = Array.make nregs 0L; pres = Array.make nregs true; sb = Array.make nregs true }
let nregs t = Array.length t.vals
let read t r = if r < 0 then 0L else t.vals.(r)
let present t r = r < 0 || t.pres.(r)
let sb_ready t r = r < 0 || t.sb.(r)

let write ctx t r v =
  Mut.set_arr ctx t.vals r v;
  Mut.set_arr ctx t.pres r true;
  Mut.set_arr ctx t.sb r true

let set_sb ctx t r = Mut.set_arr ctx t.sb r true

let alloc_clear ctx t r =
  Mut.set_arr ctx t.pres r false;
  Mut.set_arr ctx t.sb r false

let reset_presence ctx t ~live =
  for r = 0 to Array.length t.pres - 1 do
    Mut.set_arr ctx t.pres r false;
    Mut.set_arr ctx t.sb r false
  done;
  Array.iter
    (fun r ->
      if r >= 0 then begin
        Mut.set_arr ctx t.pres r true;
        Mut.set_arr ctx t.sb r true
      end)
    live
