open Cmd

type t = {
  ring : int array;
  mutable alloc_ptr : int; (* absolute *)
  mutable free_ptr : int; (* absolute *)
  nregs : int;
}

type snapshot = int

let create ~nregs =
  let n_free = nregs - 32 in
  let ring = Array.make nregs (-1) in
  for i = 0 to n_free - 1 do
    ring.(i) <- 32 + i
  done;
  { ring; alloc_ptr = 0; free_ptr = n_free; nregs }

let free_count t = t.free_ptr - t.alloc_ptr
let fld (ctx : Kernel.ctx) get set v = Mut.field ctx ~get ~set v

let alloc ctx t =
  Kernel.guard ctx (free_count t > 0) "free list empty";
  let r = t.ring.(t.alloc_ptr mod t.nregs) in
  fld ctx (fun () -> t.alloc_ptr) (fun v -> t.alloc_ptr <- v) (t.alloc_ptr + 1);
  r

let free ctx t r =
  Mut.set_arr ctx t.ring (t.free_ptr mod t.nregs) r;
  fld ctx (fun () -> t.free_ptr) (fun v -> t.free_ptr <- v) (t.free_ptr + 1)

let snapshot t = t.alloc_ptr
let restore ctx t snap = fld ctx (fun () -> t.alloc_ptr) (fun v -> t.alloc_ptr <- v) snap

let reset ctx t ~live =
  let is_live = Array.make t.nregs false in
  Array.iter (fun r -> if r >= 0 then is_live.(r) <- true) live;
  let k = ref 0 in
  for r = 0 to t.nregs - 1 do
    if not is_live.(r) then begin
      Mut.set_arr ctx t.ring !k r;
      incr k
    end
  done;
  fld ctx (fun () -> t.alloc_ptr) (fun v -> t.alloc_ptr <- v) 0;
  fld ctx (fun () -> t.free_ptr) (fun v -> t.free_ptr <- v) !k
