open Cmd

type t = { slots : Uop.t option array; mutable head : int; mutable tail : int; size : int }

let create ~size = { slots = Array.make size None; head = 0; tail = 0; size }
let count t = t.tail - t.head
let can_enq t = count t < t.size
let fld (ctx : Kernel.ctx) get set v = Mut.field ctx ~get ~set v

let enq ctx t u =
  Kernel.guard ctx (can_enq t) "rob full";
  let idx = t.tail in
  Mut.set_arr ctx t.slots (idx mod t.size) (Some u);
  fld ctx (fun () -> t.tail) (fun v -> t.tail <- v) (t.tail + 1);
  idx

let next_idx t = t.tail
let head t = if count t > 0 then t.slots.(t.head mod t.size) else None
let peek t k = if count t > k then t.slots.((t.head + k) mod t.size) else None

let deq ctx t =
  Kernel.guard ctx (count t > 0) "rob empty";
  Mut.set_arr ctx t.slots (t.head mod t.size) None;
  fld ctx (fun () -> t.head) (fun v -> t.head <- v) (t.head + 1)

let truncate_after ctx t rob_idx =
  let killed = ref [] in
  for i = t.tail - 1 downto rob_idx + 1 do
    match t.slots.(i mod t.size) with
    | Some u ->
      Uop.mk_set_killed ctx u true;
      killed := u :: !killed;
      Mut.set_arr ctx t.slots (i mod t.size) None
    | None -> ()
  done;
  fld ctx (fun () -> t.tail) (fun v -> t.tail <- v) (max (rob_idx + 1) t.head);
  !killed

let iter_live t f =
  for i = t.head to t.tail - 1 do
    match t.slots.(i mod t.size) with Some u -> f u | None -> ()
  done

let flush ctx t =
  for i = t.head to t.tail - 1 do
    match t.slots.(i mod t.size) with
    | Some u ->
      Uop.mk_set_killed ctx u true;
      Mut.set_arr ctx t.slots (i mod t.size) None
    | None -> ()
  done;
  fld ctx (fun () -> t.tail) (fun v -> t.tail <- v) t.head
