(** Reorder buffer: all in-flight uops in program order (paper, Sec. V-A).

    A ring with absolute head/tail counters; [Uop.t.rob_idx] stores the
    absolute position, so misprediction truncation is one pointer move. The
    ROB doubles as the registry of live uops for speculation-mask broadcast
    ([iter_live]). *)

type t

val create : size:int -> t
val count : t -> int
val can_enq : t -> bool

(** Absolute index the next [enq] will use (to seed [Uop.t.rob_idx]). *)
val next_idx : t -> int

(** Allocate the tail slot; returns the absolute index. Guarded. *)
val enq : Cmd.Kernel.ctx -> t -> Uop.t -> int

(** Oldest in-flight uop (guarded on non-emptiness via option). *)
val head : t -> Uop.t option

(** The [k]-th oldest, for superscalar commit. *)
val peek : t -> int -> Uop.t option

(** Retire the head. *)
val deq : Cmd.Kernel.ctx -> t -> unit

(** Kill every uop strictly younger than [rob_idx] (misprediction): marks
    them killed and truncates the tail. Returns the killed uops. *)
val truncate_after : Cmd.Kernel.ctx -> t -> int -> Uop.t list

val iter_live : t -> (Uop.t -> unit) -> unit

(** Commit-time flush: empty everything (marking uops killed). *)
val flush : Cmd.Kernel.ctx -> t -> unit
