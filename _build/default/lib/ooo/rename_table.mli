(** Register rename: the speculative RAT with per-speculation-tag snapshots,
    and the retirement RAT (RRAT) that tracks architectural state at commit
    (used for commit-time flushes: load-speculation kills, exceptions). *)

type t

val create : n_tags:int -> t

(** Current speculative mapping of an architectural register (x0 → -1). *)
val lookup : t -> int -> int

val set : Cmd.Kernel.ctx -> t -> int -> int -> unit

(** Save the RAT into tag [tag]'s slot (at branch rename). *)
val snapshot : Cmd.Kernel.ctx -> t -> tag:int -> unit

(** Restore the RAT from tag [tag]'s slot (misprediction). *)
val restore : Cmd.Kernel.ctx -> t -> tag:int -> unit

(** Retirement side. *)
val rrat_set : Cmd.Kernel.ctx -> t -> int -> int -> unit

val rrat : t -> int array

(** Commit-time flush: RAT := RRAT. *)
val restore_from_rrat : Cmd.Kernel.ctx -> t -> unit
