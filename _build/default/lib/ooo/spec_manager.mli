(** Speculation manager (paper, Section V): a finite set of speculation tags
    managed as bit masks.

    Every unresolved branch owns a tag; every younger instruction carries the
    set of unresolved older tags in its [spec_mask]. When a branch resolves
    correctly its tag's bit is cleared everywhere ([correctSpec]); when it
    mispredicts, every uop whose mask contains the tag is wrong-path
    ([wrongSpec]), and so is every {e tag} allocated under it. *)

type t

val create : n_tags:int -> t

(** Mask of currently active (unresolved) tags. *)
val active_mask : t -> int

(** Any tag free? *)
val can_alloc : t -> bool

(** Allocate a tag for a branch renamed under [active_mask]; guarded. *)
val alloc : Cmd.Kernel.ctx -> t -> int

(** Resolve correctly: frees the tag. The caller must also clear the bit in
    every live uop's mask. *)
val correct : Cmd.Kernel.ctx -> t -> int -> unit

(** Resolve wrongly: returns the tags to kill ([tag] itself plus every tag
    allocated while it was active) and frees them all. *)
val wrong : Cmd.Kernel.ctx -> t -> int -> int list

(** Mask with the given tags' bits. *)
val mask_of : int list -> int

(** Commit-time flush: everything unresolved dies. *)
val reset : Cmd.Kernel.ctx -> t -> unit
