lib/ooo/issue_queue.ml: Array Cmd Kernel Mut Uop
