lib/ooo/spec_manager.ml: Array Cmd Kernel List Mut
