lib/ooo/prf.ml: Array Cmd Mut
