lib/ooo/uop.mli: Branch Cmd Format Isa
