lib/ooo/config.mli: Branch Format Mem Tlb
