lib/ooo/lsq.mli: Cmd Config Format Store_buffer Uop
