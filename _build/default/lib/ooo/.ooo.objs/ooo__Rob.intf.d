lib/ooo/rob.mli: Cmd Uop
