lib/ooo/issue_queue.mli: Cmd Uop
