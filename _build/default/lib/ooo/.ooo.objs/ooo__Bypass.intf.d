lib/ooo/bypass.mli: Cmd
