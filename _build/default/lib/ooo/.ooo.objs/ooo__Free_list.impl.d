lib/ooo/free_list.ml: Array Cmd Kernel Mut
