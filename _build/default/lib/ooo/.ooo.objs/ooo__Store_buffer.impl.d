lib/ooo/store_buffer.ml: Array Bytes Char Cmd Int64 Kernel Mem Mut
