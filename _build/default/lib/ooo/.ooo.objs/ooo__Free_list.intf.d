lib/ooo/free_list.mli: Cmd
