lib/ooo/stage.ml: Cmd Ehr Kernel
