lib/ooo/store_buffer.mli: Bytes Cmd
