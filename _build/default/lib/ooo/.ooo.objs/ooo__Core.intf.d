lib/ooo/core.mli: Cmd Config Format Isa Mem Tlb Uop
