lib/ooo/config.ml: Branch Format Mem Tlb
