lib/ooo/lsq.ml: Array Cmd Config Format Hashtbl Int64 Isa Kernel List Mem Mut Printf Store_buffer Uop
