lib/ooo/rob.ml: Array Cmd Kernel Mut Uop
