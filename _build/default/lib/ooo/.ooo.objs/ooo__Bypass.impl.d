lib/ooo/bypass.ml: Array Cmd Printf Wire
