lib/ooo/spec_manager.mli: Cmd
