lib/ooo/stage.mli: Cmd
