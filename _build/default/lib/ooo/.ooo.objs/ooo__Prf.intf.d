lib/ooo/prf.mli: Cmd
