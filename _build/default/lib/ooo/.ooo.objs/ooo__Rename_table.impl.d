lib/ooo/rename_table.ml: Array Cmd Mut
