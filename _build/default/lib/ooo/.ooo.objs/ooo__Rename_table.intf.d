lib/ooo/rename_table.mli: Cmd
