lib/ooo/uop.ml: Branch Cmd Format Isa
