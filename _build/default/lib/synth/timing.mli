(** Critical-path model giving a maximum clock frequency per configuration
    (stand-in for the paper's timing-driven topographical synthesis).

    The dominant paths of an OOO core scale with structure sizes: the
    commit/dispatch select across the ROB (~sqrt(entries) with banked
    precharge selects), the IQ wakeup-select loop (~log of entries plus CAM
    fan-in), rename dependency checks (~width²) and the bypass network
    (~pipes × width). The model takes the max and is calibrated so
    RiscyOO-T+ synthesizes at the paper's 1.1 GHz; growing the ROB to 80
    entries must then land near 1.0 GHz (Fig. 21). *)

(** Critical path length in picoseconds. *)
val critical_path_ps : Ooo.Config.t -> float

(** Which structure owns the critical path, with the per-path delays. *)
val paths : Ooo.Config.t -> (string * float) list

val max_freq_ghz : Ooo.Config.t -> float
