lib/synth/timing.mli: Ooo
