lib/synth/gates.mli: Ooo
