lib/synth/timing.ml: List Ooo
