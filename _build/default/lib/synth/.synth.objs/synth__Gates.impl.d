lib/synth/gates.ml: List Mem Ooo Tlb
