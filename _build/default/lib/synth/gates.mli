(** Structural NAND2-equivalent gate-count model (stand-in for the paper's
    Synopsys DC + 32 nm topographical synthesis, Fig. 21).

    The model counts logic only — flip-flops, comparators (CAMs), muxes and
    select trees — per module, as a function of the configuration, exactly
    like the paper's NAND2-equivalent metric ("logic-only and does not
    include SRAMs"). Constants are calibrated so RiscyOO-T+ lands at the
    paper's 1.78 M gates; the model's value is {e relative}: growing only
    the ROB (T+ → T+R+) must grow area by the paper's ~6%. *)

(** Per-module gate counts (NAND2 equivalents). *)
val breakdown : Ooo.Config.t -> (string * float) list

(** Total NAND2-equivalent gates. *)
val total : Ooo.Config.t -> float
