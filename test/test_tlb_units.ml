(* Unit tests for the address-translation structures: the split translation
   walk cache and the DRAM model. *)

open Cmd

let ctx0 () = Kernel.make_ctx (Clock.create ())
let i64 = Alcotest.testable (Fmt.fmt "%Ld") Int64.equal

let test_walk_cache_levels () =
  let ctx = ctx0 () in
  let wc = Tlb.Walk_cache.create ~entries_per_level:4 in
  let root = 0x1000L in
  let va = 0x12345678L in
  (* cold: walk starts at the root *)
  let l, b = Tlb.Walk_cache.lookup wc ~root va in
  Alcotest.(check int) "cold level" 2 l;
  Alcotest.check i64 "cold base" root b;
  (* learn the level-1 table (the walk found it at 0x2000) *)
  Tlb.Walk_cache.insert ctx wc va ~level:1 ~base:0x2000L;
  let l, b = Tlb.Walk_cache.lookup wc ~root va in
  Alcotest.(check int) "skips to level 1" 1 l;
  Alcotest.check i64 "level-1 base" 0x2000L b;
  (* learn the level-0 table: only one read remains *)
  Tlb.Walk_cache.insert ctx wc va ~level:0 ~base:0x3000L;
  let l, b = Tlb.Walk_cache.lookup wc ~root va in
  Alcotest.(check int) "skips to level 0" 0 l;
  Alcotest.check i64 "level-0 base" 0x3000L b;
  (* a different vpn2 prefix misses both levels *)
  let l, _ = Tlb.Walk_cache.lookup wc ~root 0x7212345678L in
  Alcotest.(check int) "other prefix cold" 2 l;
  (* same vpn2, different vpn1: level-1 entry still applies *)
  let l, b = Tlb.Walk_cache.lookup wc ~root 0x12745678L in
  Alcotest.(check int) "sibling hits level 1" 1 l;
  Alcotest.check i64 "sibling base" 0x2000L b

let test_walk_cache_capacity () =
  let ctx = ctx0 () in
  let wc = Tlb.Walk_cache.create ~entries_per_level:2 in
  (* fill beyond capacity: the rotor evicts, and lookups never crash *)
  for k = 0 to 7 do
    let va = Int64.shift_left (Int64.of_int k) 30 in
    Tlb.Walk_cache.insert ctx wc va ~level:1 ~base:(Int64.of_int (0x1000 * k))
  done;
  let hits = ref 0 in
  for k = 0 to 7 do
    let va = Int64.shift_left (Int64.of_int k) 30 in
    let l, _ = Tlb.Walk_cache.lookup wc ~root:0L va in
    if l = 1 then incr hits
  done;
  Alcotest.(check int) "only capacity survives" 2 !hits;
  Tlb.Walk_cache.flush wc;
  let l, _ = Tlb.Walk_cache.lookup wc ~root:0L (Int64.shift_left 7L 30) in
  Alcotest.(check int) "flushed" 2 l

let test_dram_latency_and_order () =
  let clk = Clock.create () in
  let pmem = Isa.Phys_mem.create () in
  Isa.Phys_mem.store pmem ~bytes:8 0x80000000L 0xAAL;
  Isa.Phys_mem.store pmem ~bytes:8 0x80000040L 0xBBL;
  let d = Mem.Dram.create clk pmem ~latency:10 ~max_inflight:2 in
  let ctx = Kernel.make_ctx clk in
  Mem.Dram.req_read ctx d 0x80000000L;
  Mem.Dram.req_read ctx d 0x80000040L;
  (* third read exceeds the in-flight bound *)
  (match Kernel.attempt ctx (fun ctx -> Mem.Dram.req_read ctx d 0x80000080L) with
  | None -> ()
  | Some () -> Alcotest.fail "bandwidth bound ignored");
  Alcotest.(check bool) "nothing ready yet" false (Mem.Dram.can_resp ctx d);
  for _ = 1 to 10 do
    Clock.tick clk
  done;
  let ctx = Kernel.make_ctx clk in
  Alcotest.(check bool) "ready after latency" true (Mem.Dram.can_resp ctx d);
  let a1, d1 = Mem.Dram.resp ctx d in
  let a2, d2 = Mem.Dram.resp ctx d in
  Alcotest.check i64 "in order 1" 0x80000000L a1;
  Alcotest.check i64 "in order 2" 0x80000040L a2;
  Alcotest.check i64 "data 1" 0xAAL (Bytes.get_int64_le d1 0);
  Alcotest.check i64 "data 2" 0xBBL (Bytes.get_int64_le d2 0);
  Alcotest.(check int) "reads counted" 2 (Mem.Dram.reads d)

let test_dram_write () =
  let clk = Clock.create () in
  let pmem = Isa.Phys_mem.create () in
  let d = Mem.Dram.create clk pmem ~latency:5 ~max_inflight:4 in
  let ctx = Kernel.make_ctx clk in
  let line = Bytes.make 64 '\000' in
  Bytes.set_int64_le line 8 0x1234L;
  Mem.Dram.req_write ctx d 0x80000000L line;
  Alcotest.check i64 "write landed" 0x1234L (Isa.Phys_mem.load pmem ~bytes:8 0x80000008L);
  Alcotest.(check int) "writes counted" 1 (Mem.Dram.writes d)

(* LSQ store-to-load forwarding against a naive memory oracle: random older
   stores with known addresses, then a load; the LSQ's decision (forward
   value / stall / go to cache) must agree with what the oracle says the
   load should see. *)
let qcheck_lsq_forwarding =
  QCheck.Test.make ~name:"lsq forwarding matches naive-memory oracle" ~count:300
    QCheck.(triple (int_bound 1000) (int_bound 7) (int_bound 3))
    (fun (seed, lofs, lsz) ->
      let rng = Random.State.make [| seed |] in
      let ctx = ctx0 () in
      let cfg = { Ooo.Config.riscyoo_b with Ooo.Config.lq_size = 8; sq_size = 8 } in
      let lsq = Ooo.Lsq.create cfg in
      let base = 0x80000100L in
      let mem = Bytes.make 32 '\xCC' in
      (* backing memory contents the cache would return *)
      let mk_uop seq op lsqs paddr st_data : Ooo.Uop.t =
        {
          seq; pc = 0L; instr = Isa.Instr.make op; rob_idx = 0; prd = -1; prs1 = -1; prs2 = -1;
          prd_old = -1; spec_tag = -1; lsq = lsqs; pred_next = 0L;
          ras_sp = Branch.Ras.snapshot (Branch.Ras.create ()); ghist = None; spec_mask = 0;
          killed = false; completed = false; ld_kill = false; fault = false; mmio = false;
          translated = true; paddr; st_data; result = 0L; actual_next = 0L; tid = -1;
        }
      in
      (* 0-3 older stores at random (aligned) offsets/sizes *)
      let n_st = Random.State.int rng 4 in
      for k = 0 to n_st - 1 do
        let sz = [| 1; 2; 4; 8 |].(Random.State.int rng 4) in
        let off = Random.State.int rng (24 / sz) * sz in
        let v = Int64.of_int (Random.State.int rng 0x1000000) in
        let w = match sz with 1 -> Isa.Instr.B | 2 -> Isa.Instr.H | 4 -> Isa.Instr.W | _ -> Isa.Instr.D in
        let idx = Ooo.Lsq.reserve_st ctx lsq in
        let u = mk_uop k (Isa.Instr.St w) (Ooo.Uop.SQ idx) (Int64.add base (Int64.of_int off)) v in
        Ooo.Lsq.fill_st ctx lsq idx u;
        Ooo.Lsq.update_st ctx lsq u;
        (* oracle *)
        for b = 0 to sz - 1 do
          Bytes.set mem (off + b) (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * b)) land 0xFF))
        done
      done;
      (* the load *)
      let sz = [| 1; 2; 4; 8 |].(lsz) in
      let off = lofs * sz mod (24 / sz * sz |> max sz) in
      let off = off - (off mod sz) in
      let w = match sz with 1 -> Isa.Instr.B | 2 -> Isa.Instr.H | 4 -> Isa.Instr.W | _ -> Isa.Instr.D in
      let lidx = Ooo.Lsq.reserve_ld ctx lsq in
      let lu =
        mk_uop 100 (Isa.Instr.Ld { width = w; unsigned = true }) (Ooo.Uop.LQ lidx)
          (Int64.add base (Int64.of_int off))
          0L
      in
      Ooo.Lsq.fill_ld ctx lsq lidx lu;
      Ooo.Lsq.update_ld ctx lsq lu;
      let oracle () =
        let v = ref 0L in
        for b = sz - 1 downto 0 do
          v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get mem (off + b))))
        done;
        !v
      in
      match Ooo.Lsq.get_issue_ld ctx lsq with
      | exception Kernel.Guard_fail _ -> n_st > 0 (* only valid if something blocks *)
      | i, u -> (
        match Ooo.Lsq.issue_ld ctx lsq i u ~sb_search:Ooo.Store_buffer.NoMatch with
        | Ooo.Lsq.Forward (v, _) -> v = oracle ()
        | Ooo.Lsq.Stalled ->
          (* conservative: admissible only when some older store overlaps *)
          n_st > 0
        | Ooo.Lsq.ToCache _ ->
          (* no forwarding: every byte must be untouched by the stores *)
          let clean = ref true in
          for b = 0 to sz - 1 do
            if Bytes.get mem (off + b) <> '\xCC' then clean := false
          done;
          !clean))

let suite =
  let t = Alcotest.test_case in
  [
    t "walk cache: level skipping" `Quick test_walk_cache_levels;
    t "walk cache: capacity + flush" `Quick test_walk_cache_capacity;
    t "dram: latency, order, bandwidth" `Quick test_dram_latency_and_order;
    t "dram: writes" `Quick test_dram_write;
    QCheck_alcotest.to_alcotest qcheck_lsq_forwarding;
  ]
