(* Unit tests for the load-store queue: program-order tracking, store-to-load
   forwarding decisions, the two kill mechanisms, and wrong-path slot
   recycling (paper, Section V-B). *)

open Cmd
open Ooo

let ctx0 () = Kernel.make_ctx (Clock.create ())

let cfg mm =
  { Ooo.Config.riscyoo_b with Ooo.Config.lq_size = 4; sq_size = 4; mem_model = mm }

let mk ?(seq = 0) op : Uop.t =
  {
    seq;
    pc = 0L;
    instr = Isa.Instr.make op;
    rob_idx = 0;
    prd = -1;
    prs1 = -1;
    prs2 = -1;
    prd_old = -1;
    spec_tag = -1;
    lsq = Uop.LNone;
    pred_next = 0L;
    ras_sp = Branch.Ras.snapshot (Branch.Ras.create ());
    ghist = None;
    spec_mask = 0;
    killed = false;
    completed = false;
    ld_kill = false;
    fault = false;
    mmio = false;
    translated = false;
    paddr = 0L;
    st_data = 0L;
    result = 0L;
    actual_next = 0L;
    tid = -1;
  }

let ld_op = Isa.Instr.Ld { width = Isa.Instr.D; unsigned = false }
let st_op = Isa.Instr.St Isa.Instr.D

let enq_ld ctx lsq ~seq ~paddr =
  let idx = Lsq.reserve_ld ctx lsq in
  let u = { (mk ~seq ld_op) with Uop.lsq = Uop.LQ idx; paddr } in
  Lsq.fill_ld ctx lsq idx u;
  (idx, u)

let enq_st ctx lsq ~seq ~paddr ~data =
  let idx = Lsq.reserve_st ctx lsq in
  let u = { (mk ~seq st_op) with Uop.lsq = Uop.SQ idx; paddr; st_data = data } in
  Lsq.fill_st ctx lsq idx u;
  (idx, u)

let test_forwarding () =
  let ctx = ctx0 () in
  let lsq = Lsq.create (cfg Ooo.Config.WMM) in
  let _, st = enq_st ctx lsq ~seq:1 ~paddr:0x80000100L ~data:0xDEADL in
  let lidx, ld = enq_ld ctx lsq ~seq:2 ~paddr:0x80000100L in
  Lsq.update_st ctx lsq st;
  Lsq.update_ld ctx lsq ld;
  let i, u = Lsq.get_issue_ld ctx lsq in
  Alcotest.(check int) "issuable load" lidx i;
  (match Lsq.issue_ld ctx lsq i u ~sb_search:Store_buffer.NoMatch with
  | Lsq.Forward (v, _) -> Alcotest.(check int64) "forwarded value" 0xDEADL v
  | _ -> Alcotest.fail "expected forwarding")

let test_partial_overlap_stalls () =
  let ctx = ctx0 () in
  let lsq = Lsq.create (cfg Ooo.Config.WMM) in
  (* 4-byte store, 8-byte load at the same address: partial cover -> stall *)
  let sidx = Lsq.reserve_st ctx lsq in
  let st = { (mk ~seq:1 (Isa.Instr.St Isa.Instr.W)) with Uop.lsq = Uop.SQ sidx; paddr = 0x80000100L } in
  Lsq.fill_st ctx lsq sidx st;
  let _, ld = enq_ld ctx lsq ~seq:2 ~paddr:0x80000100L in
  Lsq.update_st ctx lsq st;
  Lsq.update_ld ctx lsq ld;
  let i, u = Lsq.get_issue_ld ctx lsq in
  (match Lsq.issue_ld ctx lsq i u ~sb_search:Store_buffer.NoMatch with
  | Lsq.Stalled -> ()
  | _ -> Alcotest.fail "expected stall on partial overlap");
  (* once the store leaves the SQ the stall clears and the load goes to
     memory *)
  Lsq.set_at_commit ctx lsq st;
  Lsq.deq_st ctx lsq;
  let i, u = Lsq.get_issue_ld ctx lsq in
  match Lsq.issue_ld ctx lsq i u ~sb_search:Store_buffer.NoMatch with
  | Lsq.ToCache _ -> ()
  | _ -> Alcotest.fail "expected cache issue after store drained"

let test_store_update_kills_younger_load () =
  let ctx = ctx0 () in
  let lsq = Lsq.create (cfg Ooo.Config.WMM) in
  let _, st = enq_st ctx lsq ~seq:1 ~paddr:0x80000100L ~data:1L in
  let _, ld = enq_ld ctx lsq ~seq:2 ~paddr:0x80000100L in
  Lsq.update_ld ctx lsq ld;
  (* the load issues speculatively past the unresolved store *)
  let i, u = Lsq.get_issue_ld ctx lsq in
  (match Lsq.issue_ld ctx lsq i u ~sb_search:Store_buffer.NoMatch with
  | Lsq.ToCache _ -> ()
  | _ -> Alcotest.fail "expected speculative issue");
  Alcotest.(check bool) "not killed yet" false ld.Uop.ld_kill;
  (* the store's address resolves: the memory-dependency violation is caught *)
  Lsq.update_st ctx lsq st;
  Alcotest.(check bool) "violating load marked to-be-killed" true ld.Uop.ld_kill

let test_tso_cache_evict_kill () =
  let ctx = ctx0 () in
  let lsq = Lsq.create (cfg Ooo.Config.TSO) in
  let _, ld = enq_ld ctx lsq ~seq:1 ~paddr:0x80000140L in
  Lsq.update_ld ctx lsq ld;
  let i, u = Lsq.get_issue_ld ctx lsq in
  (match Lsq.issue_ld ctx lsq i u ~sb_search:Store_buffer.NoMatch with
  | Lsq.ToCache tag -> (
    match Lsq.resp_ld ctx lsq tag 42L with
    | `Ok _ -> ()
    | `WrongPath -> Alcotest.fail "live load")
  | _ -> Alcotest.fail "expected cache issue");
  (* an eviction of the line the completed-but-uncommitted load read: TSO
     marks it to-be-killed; WMM would not *)
  Lsq.cache_evict ctx lsq 0x80000140L;
  Alcotest.(check bool) "TSO kill" true ld.Uop.ld_kill;
  let lsq_w = Lsq.create (cfg Ooo.Config.WMM) in
  let _, ld2 = enq_ld ctx lsq_w ~seq:1 ~paddr:0x80000140L in
  Lsq.update_ld ctx lsq_w ld2;
  let i, u = Lsq.get_issue_ld ctx lsq_w in
  (match Lsq.issue_ld ctx lsq_w i u ~sb_search:Store_buffer.NoMatch with
  | Lsq.ToCache tag -> ignore (Lsq.resp_ld ctx lsq_w tag 42L)
  | _ -> ());
  Lsq.cache_evict ctx lsq_w 0x80000140L;
  Alcotest.(check bool) "WMM does not kill" false ld2.Uop.ld_kill

let test_wrong_path_slot () =
  let ctx = ctx0 () in
  let lsq = Lsq.create (cfg Ooo.Config.WMM) in
  let _, ld = enq_ld ctx lsq ~seq:1 ~paddr:0x80000100L in
  Lsq.update_ld ctx lsq ld;
  let i, u = Lsq.get_issue_ld ctx lsq in
  let tag =
    match Lsq.issue_ld ctx lsq i u ~sb_search:Store_buffer.NoMatch with
    | Lsq.ToCache tag -> tag
    | _ -> Alcotest.fail "expected cache issue"
  in
  (* the load is killed while its response is in flight *)
  Uop.mk_set_killed ctx ld true;
  Lsq.kill_suffix ctx lsq;
  (* the slot is reallocated to a new load, which must NOT be issuable yet *)
  let _, ld2 = enq_ld ctx lsq ~seq:2 ~paddr:0x80000200L in
  Lsq.update_ld ctx lsq ld2;
  (match Lsq.get_issue_ld ctx lsq with
  | exception Kernel.Guard_fail _ -> ()
  | _ -> Alcotest.fail "wrong-path slot must block issue");
  (* the stale response arrives: dropped, and the slot becomes usable *)
  (match Lsq.resp_ld ctx lsq tag 99L with
  | `WrongPath -> ()
  | `Ok _ -> Alcotest.fail "stale response must not deliver");
  let _, u2 = Lsq.get_issue_ld ctx lsq in
  Alcotest.(check int) "new load issuable" 2 u2.Uop.seq

let test_fences_gate_loads () =
  let ctx = ctx0 () in
  let lsq = Lsq.create (cfg Ooo.Config.WMM) in
  let fence = mk ~seq:1 Isa.Instr.Fence in
  Lsq.add_fence ctx lsq fence;
  let _, ld = enq_ld ctx lsq ~seq:2 ~paddr:0x80000100L in
  Lsq.update_ld ctx lsq ld;
  (match Lsq.get_issue_ld ctx lsq with
  | exception Kernel.Guard_fail _ -> ()
  | _ -> Alcotest.fail "load must wait for the older fence");
  Lsq.remove_fence ctx lsq fence;
  let _, u = Lsq.get_issue_ld ctx lsq in
  Alcotest.(check int) "issuable after fence" 2 u.Uop.seq

(* The TSO eviction kill must hit exactly the completed-but-uncommitted
   loads of the evicted line: in-flight and unissued loads re-read the
   coherent cache anyway, and other lines are untouched. *)
let test_cache_evict_scope () =
  let ctx = ctx0 () in
  let lsq = Lsq.create (cfg Ooo.Config.TSO) in
  (* seq 1: completed on line 0x...140; seq 2: issued, response in flight,
     same line; seq 3: completed on a different line; seq 4: unissued *)
  let _, done_ld = enq_ld ctx lsq ~seq:1 ~paddr:0x80000140L in
  Lsq.update_ld ctx lsq done_ld;
  let i, u = Lsq.get_issue_ld ctx lsq in
  (match Lsq.issue_ld ctx lsq i u ~sb_search:Store_buffer.NoMatch with
  | Lsq.ToCache tag -> ignore (Lsq.resp_ld ctx lsq tag 1L)
  | _ -> Alcotest.fail "expected cache issue");
  let _, inflight_ld = enq_ld ctx lsq ~seq:2 ~paddr:0x80000148L in
  Lsq.update_ld ctx lsq inflight_ld;
  let i, u = Lsq.get_issue_ld ctx lsq in
  (match Lsq.issue_ld ctx lsq i u ~sb_search:Store_buffer.NoMatch with
  | Lsq.ToCache _ -> () (* response never delivered: still LdIssued *)
  | _ -> Alcotest.fail "expected cache issue");
  let _, other_ld = enq_ld ctx lsq ~seq:3 ~paddr:0x80000180L in
  Lsq.update_ld ctx lsq other_ld;
  let i, u = Lsq.get_issue_ld ctx lsq in
  (match Lsq.issue_ld ctx lsq i u ~sb_search:Store_buffer.NoMatch with
  | Lsq.ToCache tag -> ignore (Lsq.resp_ld ctx lsq tag 3L)
  | _ -> Alcotest.fail "expected cache issue");
  let _, idle_ld = enq_ld ctx lsq ~seq:4 ~paddr:0x80000150L in
  Lsq.update_ld ctx lsq idle_ld;
  Lsq.cache_evict ctx lsq 0x80000140L;
  Alcotest.(check bool) "completed load on the line killed" true done_ld.Uop.ld_kill;
  Alcotest.(check bool) "in-flight load spared" false inflight_ld.Uop.ld_kill;
  Alcotest.(check bool) "other line spared" false other_ld.Uop.ld_kill;
  Alcotest.(check bool) "unissued load spared" false idle_ld.Uop.ld_kill;
  (* a second eviction of the same line must not disturb the verdicts *)
  Lsq.cache_evict ctx lsq 0x80000140L;
  Alcotest.(check bool) "kill is sticky" true done_ld.Uop.ld_kill;
  Alcotest.(check bool) "in-flight still spared" false inflight_ld.Uop.ld_kill

(* sq_quiesced: speculative entries don't count, committed ones do. *)
let test_sq_quiesced () =
  let ctx = ctx0 () in
  let lsq = Lsq.create (cfg Ooo.Config.TSO) in
  Alcotest.(check bool) "empty sq is quiesced" true (Lsq.sq_quiesced lsq);
  let _, st = enq_st ctx lsq ~seq:1 ~paddr:0x80000100L ~data:1L in
  Alcotest.(check bool) "speculative store ignored" true (Lsq.sq_quiesced lsq);
  Lsq.set_at_commit ctx lsq st;
  Alcotest.(check bool) "committed store pending" false (Lsq.sq_quiesced lsq);
  Lsq.deq_st ctx lsq;
  Alcotest.(check bool) "drained" true (Lsq.sq_quiesced lsq)

(* --- WMM store buffer: coalescing and out-of-order drain ------------------- *)

let test_sb_coalescing () =
  let ctx = ctx0 () in
  let sb = Store_buffer.create ~size:4 in
  Store_buffer.enq ctx sb ~addr:0x80000100L ~bytes:4 0xAAL;
  Store_buffer.enq ctx sb ~addr:0x80000108L ~bytes:4 0xBBL;
  Alcotest.(check int) "same line coalesces" 1 (Store_buffer.count sb);
  Store_buffer.enq ctx sb ~addr:0x80000140L ~bytes:4 0xCCL;
  Alcotest.(check int) "new line allocates" 2 (Store_buffer.count sb);
  (* both writes of the coalesced entry are visible to a load *)
  (match Store_buffer.search sb ~addr:0x80000108L ~bytes:4 with
  | Store_buffer.Full v -> Alcotest.(check int64) "coalesced data" 0xBBL v
  | _ -> Alcotest.fail "expected full match")

let test_sb_issued_not_coalesced () =
  let ctx = ctx0 () in
  let sb = Store_buffer.create ~size:4 in
  Store_buffer.enq ctx sb ~addr:0x80000100L ~bytes:4 0x11L;
  let _, line = Store_buffer.issue ctx sb in
  Alcotest.(check int64) "issued the only line" 0x80000100L line;
  (* a later store to the same line must NOT merge into the in-flight
     entry - the cache write is already on its way *)
  Store_buffer.enq ctx sb ~addr:0x80000100L ~bytes:4 0x22L;
  Alcotest.(check int) "fresh entry behind the issued one" 2 (Store_buffer.count sb);
  (* with the address present in both the in-flight and the fresh entry a
     load cannot forward - it stalls until the in-flight write drains *)
  (match Store_buffer.search sb ~addr:0x80000100L ~bytes:4 with
  | Store_buffer.Partial _ -> ()
  | _ -> Alcotest.fail "expected a stall while bytes are split");
  (* both entries are issuable: same-line write order is kept by the L1,
     which serves same-line requests in arrival order *)
  let idx2, line2 = Store_buffer.issue ctx sb in
  Alcotest.(check int64) "younger entry issues too" 0x80000100L line2;
  let _, _, _ = Store_buffer.deq ctx sb idx2 in
  (match Store_buffer.search sb ~addr:0x80000100L ~bytes:4 with
  | Store_buffer.Full v -> Alcotest.(check int64) "single match forwards" 0x11L v
  | _ -> Alcotest.fail "expected full match once only one entry holds the line")

(* search prefers the younger (unissued) entry when it alone covers the
   load, and falls back to the issued entry once it is the only match. *)
let test_sb_search_preference () =
  let ctx = ctx0 () in
  let sb = Store_buffer.create ~size:4 in
  (* issued entry covers offset 0; fresh entry covers offset 8 *)
  Store_buffer.enq ctx sb ~addr:0x80000100L ~bytes:4 0x11L;
  let idx1, _ = Store_buffer.issue ctx sb in
  Store_buffer.enq ctx sb ~addr:0x80000108L ~bytes:4 0x22L;
  (match Store_buffer.search sb ~addr:0x80000108L ~bytes:4 with
  | Store_buffer.Full v -> Alcotest.(check int64) "unissued bytes win" 0x22L v
  | _ -> Alcotest.fail "expected full match from the unissued entry");
  (match Store_buffer.search sb ~addr:0x80000100L ~bytes:4 with
  | Store_buffer.Full v -> Alcotest.(check int64) "issued bytes still visible" 0x11L v
  | _ -> Alcotest.fail "expected full match from the issued entry");
  let _, _, _ = Store_buffer.deq ctx sb idx1 in
  (match Store_buffer.search sb ~addr:0x80000100L ~bytes:4 with
  | Store_buffer.NoMatch -> ()
  | _ -> Alcotest.fail "drained bytes must no longer forward")

let test_sb_out_of_order_completion () =
  let ctx = ctx0 () in
  let sb = Store_buffer.create ~size:4 in
  Store_buffer.enq ctx sb ~addr:0x80000100L ~bytes:4 1L;
  Store_buffer.enq ctx sb ~addr:0x80000140L ~bytes:4 2L;
  let i1, l1 = Store_buffer.issue ctx sb in
  let i2, l2 = Store_buffer.issue ctx sb in
  Alcotest.(check bool) "different lines in flight" true (l1 <> l2);
  (* the cache acknowledges the SECOND line first: deq by tag, any order *)
  let line2, _, _ = Store_buffer.deq ctx sb i2 in
  Alcotest.(check int64) "second line deq'd first" l2 line2;
  let line1, _, _ = Store_buffer.deq ctx sb i1 in
  Alcotest.(check int64) "first line deq'd last" l1 line1;
  Alcotest.(check bool) "empty" true (Store_buffer.is_empty sb)

let test_no_older_stores () =
  let ctx = ctx0 () in
  let lsq = Lsq.create (cfg Ooo.Config.WMM) in
  let _, st = enq_st ctx lsq ~seq:5 ~paddr:0x80000100L ~data:1L in
  Alcotest.(check bool) "blocked by older store" false (Lsq.no_older_stores lsq 10);
  Alcotest.(check bool) "younger store does not block" true (Lsq.no_older_stores lsq 3);
  Lsq.set_at_commit ctx lsq st;
  Lsq.deq_st ctx lsq;
  Alcotest.(check bool) "empty sq blocks nothing" true (Lsq.no_older_stores lsq 10)

let suite =
  let t = Alcotest.test_case in
  [
    t "store-to-load forwarding" `Quick test_forwarding;
    t "partial overlap stalls, clears on drain" `Quick test_partial_overlap_stalls;
    t "store update kills younger issued load" `Quick test_store_update_kills_younger_load;
    t "TSO cache-evict kill (WMM immune)" `Quick test_tso_cache_evict_kill;
    t "wrong-path slot recycling" `Quick test_wrong_path_slot;
    t "fences gate younger loads" `Quick test_fences_gate_loads;
    t "no_older_stores predicate" `Quick test_no_older_stores;
    t "cache-evict kill scope" `Quick test_cache_evict_scope;
    t "sq_quiesced ignores speculative stores" `Quick test_sq_quiesced;
    t "store buffer coalesces per line" `Quick test_sb_coalescing;
    t "issued entries not coalesced into" `Quick test_sb_issued_not_coalesced;
    t "search prefers unissued bytes" `Quick test_sb_search_preference;
    t "out-of-order drain completion" `Quick test_sb_out_of_order_completion;
  ]
