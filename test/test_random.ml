(* Differential fuzzing: random (terminating) RISC-V programs run on the
   out-of-order core with lockstep co-simulation against the golden ISA
   simulator, plus an exit-checksum comparison. Any divergence in renaming,
   speculation, forwarding, or the memory system shows up here. *)

open Isa
open Workloads

let i64 = Alcotest.testable (Fmt.fmt "%Ld") Int64.equal
let data = 0x8010_0000L

(* Generate a straight-line-with-forward-branches program: guaranteed to
   terminate, rich in hazards. Registers x1..x15 are general; x16 (a6) holds
   the data base; x17 (a7) reserved for the exit call. *)
let gen_program rng n_instrs =
  let p = Asm.create () in
  let r () = 1 + Random.State.int rng 15 in
  let open Reg_name in
  Asm.li p a6 data;
  for i = 1 to 15 do
    Asm.li p i (Int64.of_int (Random.State.int rng 1000 - 500))
  done;
  let pending_label = ref None in
  for i = 0 to n_instrs - 1 do
    (match !pending_label with
    | Some (l, at) when at = i ->
      Asm.label p l;
      pending_label := None
    | _ -> ());
    match Random.State.int rng 100 with
    | x when x < 30 ->
      (* reg-reg alu *)
      let ops = [ `Add; `Sub; `Xor; `Or; `And; `Sll; `Srl; `Slt ] in
      let op = List.nth ops (Random.State.int rng (List.length ops)) in
      let rd = r () and rs1 = r () and rs2 = r () in
      (match op with
      | `Add -> Asm.add p rd rs1 rs2
      | `Sub -> Asm.sub p rd rs1 rs2
      | `Xor -> Asm.xor p rd rs1 rs2
      | `Or -> Asm.or_ p rd rs1 rs2
      | `And -> Asm.and_ p rd rs1 rs2
      | `Sll -> Asm.slli p rd rs1 (Random.State.int rng 63)
      | `Srl -> Asm.srli p rd rs1 (Random.State.int rng 63)
      | `Slt -> Asm.slt p rd rs1 rs2)
    | x when x < 45 ->
      Asm.addi p (r ()) (r ()) (Int64.of_int (Random.State.int rng 2000 - 1000))
    | x when x < 55 ->
      (* muldiv *)
      let rd = r () and rs1 = r () and rs2 = r () in
      (match Random.State.int rng 4 with
      | 0 -> Asm.mul p rd rs1 rs2
      | 1 -> Asm.mulh p rd rs1 rs2
      | 2 -> Asm.div p rd rs1 rs2
      | _ -> Asm.remu p rd rs1 rs2)
    | x when x < 70 ->
      (* load from the data region: address = base + (reg & 0xFF8) *)
      let rd = r () and ra = r () in
      Asm.andi p ra ra 0x7F8L;
      Asm.add p ra ra Reg_name.a6;
      (match Random.State.int rng 3 with
      | 0 -> Asm.ld p rd 0L ra
      | 1 -> Asm.lw p rd 0L ra
      | _ -> Asm.lbu p rd 0L ra)
    | x when x < 82 ->
      (* store into the data region *)
      let rv = r () and ra = r () in
      Asm.andi p ra ra 0x7F8L;
      Asm.add p ra ra Reg_name.a6;
      (match Random.State.int rng 3 with
      | 0 -> Asm.sd p rv 0L ra
      | 1 -> Asm.sw p rv 0L ra
      | _ -> Asm.sb p rv 0L ra)
    | x when x < 94 && !pending_label = None && i + 2 < n_instrs ->
      (* forward branch over 1-4 instructions: speculation + kills *)
      let l = Asm.fresh p "fwd" in
      let skip = 1 + Random.State.int rng 4 in
      let c = [ Asm.beq; Asm.bne; Asm.blt; Asm.bgeu ] in
      (List.nth c (Random.State.int rng 4)) p (r ()) (r ()) l;
      pending_label := Some (l, min (n_instrs - 1) (i + 1 + skip))
    | _ -> Asm.fence p
  done;
  (match !pending_label with Some (l, _) -> Asm.label p l | None -> ());
  (* checksum all registers and the data region head *)
  let open Reg_name in
  Asm.li p a0 0L;
  for i = 1 to 15 do
    Asm.add p a0 a0 i
  done;
  Asm.ld p t0 0L a6;
  Asm.add p a0 a0 t0;
  Asm.li p t1 0xFFFFFFL;
  Asm.and_ p a0 a0 t1;
  Asm.li p a7 93L;
  Asm.ecall p;
  Machine.program
    ~init_mem:(fun m -> Kernel_lib.init_random_words m ~base:data ~n:512 ~bound:Int64.max_int ~seed:77)
    p

let tiny_cfg =
  {
    Ooo.Config.riscyoo_b with
    Ooo.Config.rob_size = 16;
    iq_size = 6;
    lq_size = 6;
    sq_size = 5;
    sb_size = 2;
    n_spec_tags = 4;
    mem =
      {
        Mem.Mem_sys.l1d_bytes = 1024;
        l1d_ways = 2;
        l1d_mshrs = 2;
        l1i_bytes = 2048;
        l1i_ways = 2;
        l2_bytes = 8192;
        l2_ways = 2;
        l2_mshrs = 4;
        l2_latency = 4;
        mesi = false;
        mem_latency = 15;
        mem_inflight = 4;
        l2_banks = 1;
        lookahead_override = None;
      };
  }

let run_one rng i =
  let prog = gen_program rng (50 + Random.State.int rng 250) in
  let g = Machine.create Machine.Golden_only prog in
  let og = Machine.run ~max_cycles:200_000 g in
  Alcotest.(check bool) (Printf.sprintf "prog %d: golden exits" i) false og.Machine.timed_out;
  List.iter
    (fun (nm, cfg) ->
      let m = Machine.create ~cosim:true (Machine.Out_of_order cfg) prog in
      let o = Machine.run ~max_cycles:500_000 m in
      Alcotest.(check bool) (Printf.sprintf "prog %d: %s exits" i nm) false o.Machine.timed_out;
      Alcotest.check i64 (Printf.sprintf "prog %d: %s checksum" i nm) og.Machine.exits.(0)
        o.Machine.exits.(0))
    [
      ("tiny-wmm", tiny_cfg);
      ("tiny-tso", { tiny_cfg with Ooo.Config.mem_model = Ooo.Config.TSO; name = "tiny-tso" });
    ]

let test_fuzz () =
  let rng = Random.State.make [| 0xC0FFEE |] in
  for i = 1 to 25 do
    run_one rng i
  done

let test_fuzz_inorder () =
  let rng = Random.State.make [| 0xF00D |] in
  for i = 1 to 10 do
    let prog = gen_program rng (50 + Random.State.int rng 200) in
    let g = Machine.create Machine.Golden_only prog in
    let og = Machine.run ~max_cycles:200_000 g in
    let m =
      Machine.create
        (Machine.In_order { mem = tiny_cfg.Ooo.Config.mem; tlb = Tlb.Tlb_sys.blocking_config })
        prog
    in
    let o = Machine.run ~max_cycles:1_000_000 m in
    Alcotest.(check bool) (Printf.sprintf "inorder prog %d exits" i) false o.Machine.timed_out;
    Alcotest.check i64 (Printf.sprintf "inorder prog %d checksum" i) og.Machine.exits.(0)
      o.Machine.exits.(0)
  done

let suite =
  let t = Alcotest.test_case in
  [
    t "fuzz: 25 random programs, OOO cosim (WMM+TSO)" `Quick test_fuzz;
    t "fuzz: 10 random programs, in-order" `Quick test_fuzz_inorder;
  ]
