(* Static schedule compilation: the conflict-matrix algebra, the tier
   classifier inside [Sim.create], and the [--compile-audit] oracle that
   dynamically discharges the compiler's proof obligations.

   The contract under test mirrors the BSV compiler (paper, Section IV-B):
   from per-rule footprints — EHR-style (write?, cell, port) access lists —
   elaboration derives the pairwise conflict matrix, proves rules
   admissible in schedule order, and strips the port-checking (tier B) and
   undo-logging (tier A, [~total]) machinery from their step closures.
   Results must be bit-identical to the interpreted engine; a rule whose
   footprint under-declares an access must be caught by the audit. *)

open Cmd

(* ---------------------------------------------------------------- *)
(* Algebra                                                           *)
(* ---------------------------------------------------------------- *)

let ord = Alcotest.testable Conflict.pp ( = )

let test_ehr_order () =
  let check name want a b = Alcotest.check ord name want (Conflict.ehr_order a b) in
  (* reads never conflict *)
  check "r0 r1" Conflict.Cf (false, 0) (false, 1);
  (* read[i] sees writes at ports < i *)
  check "r0 w0" Conflict.Lt (false, 0) (true, 0);
  check "r1 w0" Conflict.Gt (false, 1) (true, 0);
  check "w0 r1" Conflict.Lt (true, 0) (false, 1);
  (* double write at one port is irreconcilable *)
  check "w0 w0" Conflict.C (true, 0) (true, 0);
  check "w0 w1" Conflict.Lt (true, 0) (true, 1)

let test_join () =
  let j = Conflict.join in
  Alcotest.check ord "Cf is identity" Conflict.Lt (j Conflict.Cf Conflict.Lt);
  Alcotest.check ord "agreeing Lt" Conflict.Lt (j Conflict.Lt Conflict.Lt);
  Alcotest.check ord "disagreement collapses" Conflict.C (j Conflict.Lt Conflict.Gt);
  Alcotest.check ord "C absorbs" Conflict.C (j Conflict.C Conflict.Cf);
  Alcotest.check ord "flip" Conflict.Gt (Conflict.flip Conflict.Lt)

let test_rel_and_dyn () =
  let p = Conflict.fresh_prim "p" in
  let q = Conflict.fresh_prim "q" in
  let at pr l accs = Conflict.atom ~prim:pr ~label:l accs in
  (* different prims never interact *)
  Alcotest.check ord "disjoint prims" Conflict.Cf
    (Conflict.rel [ at p "w" [ (true, 0, 0) ] ] [ at q "w" [ (true, 0, 0) ] ]);
  (* EHR pipeline: writer at port 0, reader at port 1 *)
  Alcotest.check ord "w0 before r1" Conflict.Lt
    (Conflict.rel [ at p "w" [ (true, 0, 0) ] ] [ at p "r" [ (false, 0, 1) ] ]);
  (* cf-FIFO dyn ports: both sides compose in either order… *)
  Alcotest.check ord "dyn vs dyn" Conflict.Cf
    (Conflict.rel
       [ at p "enq" [ (true, 0, Conflict.dyn) ] ]
       [ at p "deq" [ (false, 0, Conflict.dyn) ] ]);
  (* …but a static clear port must come after every dynamic access *)
  Alcotest.check ord "dyn before clear" Conflict.Lt
    (Conflict.rel [ at p "enq" [ (true, 0, Conflict.dyn) ] ] [ at p "clear" [ (true, 0, 60) ] ]);
  Alcotest.check ord "clear after dyn" Conflict.Gt
    (Conflict.rel [ at p "clear" [ (true, 0, 60) ] ] [ at p "enq" [ (true, 0, Conflict.dyn) ] ]);
  (* self-compatibility: double-write port 0 is irreconcilable *)
  (match Conflict.self_compatible [ at p "a" [ (true, 0, 0) ]; at p "b" [ (true, 0, 0) ] ] with
  | Some _ -> ()
  | None -> Alcotest.fail "double write should be self-incompatible");
  match Conflict.self_compatible [ at p "a" [ (true, 0, 0) ]; at p "b" [ (false, 0, 1) ] ] with
  | None -> ()
  | Some _ -> Alcotest.fail "w0/r1 should be self-compatible"

(* ---------------------------------------------------------------- *)
(* Tier classification on synthetic rule sets                        *)
(* ---------------------------------------------------------------- *)

let stats = Alcotest.(triple int int int)

(* Conflict-free set: three rules on disjoint EHRs, all declared; the
   classifier must compile everything, and [~total] claims land in tier A. *)
let test_tiers_conflict_free () =
  let clk = Clock.create () in
  let es = Array.init 3 (fun i -> Ehr.create ~name:(Printf.sprintf "e%d" i) 0) in
  let rule i ~total =
    Rule.make (Printf.sprintf "r%d" i)
      ~fp:[ Ehr.fp es.(i) ~label:"bump" [ (false, 0); (true, 0) ] ]
      ~total
      (fun ctx -> Ehr.write ctx es.(i) 0 (Ehr.read ctx es.(i) 0 + 1))
  in
  let sim = Sim.create clk [ rule 0 ~total:true; rule 1 ~total:true; rule 2 ~total:false ] in
  Alcotest.(check bool) "compiled" true (Sim.compiled sim);
  Alcotest.check stats "2 total rules in tier A, 1 in tier B" (2, 1, 0) (Sim.compile_stats sim);
  for _ = 1 to 10 do
    ignore (Sim.cycle sim);
    Clock.tick clk
  done;
  Array.iter (fun e -> Alcotest.(check int) "all fired every cycle" 10 (Ehr.peek e)) es

(* Sequentially composable pair: writer at port 0 listed before reader at
   port 1 is admissible (compiled); the reversed listing is not. *)
let test_tiers_sequential () =
  let mk order =
    let clk = Clock.create () in
    let e = Ehr.create ~name:"e" 0 in
    let w =
      Rule.make "w" ~fp:[ Ehr.fp_write e 0 ] (fun ctx -> Ehr.write ctx e 0 (Clock.now clk + 1))
    in
    let r =
      Rule.make "r" ~fp:[ Ehr.fp_read e 1 ]
        (fun ctx -> Kernel.guard ctx (Ehr.read ctx e 1 > 0) "no data")
    in
    let rules = match order with `Wr -> [ w; r ] | `Rw -> [ r; w ] in
    Sim.compile_stats (Sim.create clk rules)
  in
  Alcotest.check stats "w;r admissible: both compiled" (0, 2, 0) (mk `Wr);
  (* r must logically follow w, but is listed first: both stay checked *)
  Alcotest.check stats "r;w inadmissible: both interpreted" (0, 0, 2) (mk `Rw)

(* A conflicting pair (double write, port 0) partitions out of the compiled
   batch entirely — both endpoints keep the interpreted Retry machinery —
   while an unrelated third rule still compiles. *)
let test_tiers_conflict_pair () =
  let clk = Clock.create () in
  let e = Ehr.create ~name:"e" 0 in
  let other = Ehr.create ~name:"other" 0 in
  let w name = Rule.make name ~fp:[ Ehr.fp_write e 0 ] (fun ctx -> Ehr.write ctx e 0 1) in
  let ok =
    Rule.make "ok" ~fp:[ Ehr.fp_write other 0 ] ~total:true (fun ctx -> Ehr.write ctx other 0 1)
  in
  let sim = Sim.create clk [ w "w1"; w "w2"; ok ] in
  Alcotest.check stats "conflicting pair interpreted, bystander compiled" (1, 0, 2)
    (Sim.compile_stats sim);
  (* dynamic behavior preserved: w1 fires, w2 Retries (conflict), every cycle *)
  for _ = 1 to 5 do
    ignore (Sim.cycle sim);
    Clock.tick clk
  done;
  let by_name n = List.find (fun (r : Rule.t) -> r.name = n) (Sim.rules sim) in
  Alcotest.(check int) "w1 fired each cycle" 5 (by_name "w1").Rule.fired;
  Alcotest.(check int) "w2 conflicted each cycle" 5 (by_name "w2").Rule.conflicted

(* A rule with no footprint poisons nothing but itself only when absent —
   per the all-or-nothing contract, one undeclared rule keeps the whole
   design interpreted (it may touch anything). *)
let test_undeclared_rule_blocks_compile () =
  let clk = Clock.create () in
  let e = Ehr.create ~name:"e" 0 in
  let declared =
    Rule.make "declared" ~fp:[ Ehr.fp_write e 0 ] (fun ctx -> Ehr.write ctx e 0 1)
  in
  let mystery = Rule.make "mystery" (fun ctx -> ignore ctx) in
  let sim = Sim.create clk [ declared; mystery ] in
  Alcotest.(check bool) "not compiled" false (Sim.compiled sim);
  Alcotest.check stats "every rule interpreted without full coverage" (0, 0, 2)
    (Sim.compile_stats sim)

(* ---------------------------------------------------------------- *)
(* The audit oracle                                                  *)
(* ---------------------------------------------------------------- *)

(* Under-declared footprint: the rule claims to touch [a] but also writes
   [b]. The static matrix is wrong (it would compile the pair), and only
   [~compile_audit] can tell — every tracked access must land on a declared
   (prim, direction, port). *)
let test_audit_catches_underdeclared () =
  let clk = Clock.create () in
  let a = Ehr.create ~name:"a" 0 in
  let b = Ehr.create ~name:"b" 0 in
  let sneaky =
    Rule.make "sneaky" ~fp:[ Ehr.fp_write a 0 ]
      (fun ctx ->
        Ehr.write ctx a 0 1;
        Ehr.write ctx b 0 1)
  in
  let sim = Sim.create ~compile_audit:true clk [ sneaky ] in
  Alcotest.(check bool) "audit mode runs interpreted" false (Sim.compiled sim);
  (match Sim.cycle sim with
  | _ -> Alcotest.fail "under-declared write escaped the audit"
  | exception Kernel.Compile_audit_fail msg ->
    Alcotest.(check bool)
      (Printf.sprintf "message names the rule and prim (%s)" msg)
      true
      (let has s sub =
         let n = String.length sub in
         let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
         go 0
       in
       has msg "sneaky" && has msg "b"));
  (* the honest twin passes the same audit *)
  let clk = Clock.create () in
  let c = Ehr.create ~name:"c" 0 in
  let honest = Rule.make "honest" ~fp:[ Ehr.fp_write c 0 ] (fun ctx -> Ehr.write ctx c 0 1) in
  let sim = Sim.create ~compile_audit:true clk [ honest ] in
  for _ = 1 to 20 do
    ignore (Sim.cycle sim);
    Clock.tick clk
  done;
  Alcotest.(check int) "honest rule ran clean under audit" 1 (Ehr.peek c)

(* A false [~total] claim: the rule registers a tracked write, then aborts.
   Tier A would have dropped the undo; the audit proves the claim wrong. *)
let test_audit_catches_false_total () =
  let clk = Clock.create () in
  let e = Ehr.create ~name:"e" 0 in
  let liar =
    Rule.make "liar" ~vacuous:true ~fp:[ Ehr.fp_write e 0 ] ~total:true (fun ctx ->
        ignore
          (Kernel.attempt ctx (fun ctx ->
               Ehr.write ctx e 0 1;
               Kernel.guard ctx false "always aborts")))
  in
  let sim = Sim.create ~compile_audit:true clk [ liar ] in
  match Sim.cycle sim with
  | _ -> Alcotest.fail "rolled-back write under ~total escaped the audit"
  | exception Kernel.Compile_audit_fail _ -> ()

let suite =
  let t = Alcotest.test_case in
  [
    t "EHR port-order algebra" `Quick test_ehr_order;
    t "join/flip" `Quick test_join;
    t "footprint rel + dyn ports" `Quick test_rel_and_dyn;
    t "tiers: conflict-free set compiles (A/B)" `Quick test_tiers_conflict_free;
    t "tiers: sequential pair depends on listing order" `Quick test_tiers_sequential;
    t "tiers: conflicting pair stays interpreted" `Quick test_tiers_conflict_pair;
    t "undeclared rule blocks compilation" `Quick test_undeclared_rule_blocks_compile;
    t "compile-audit catches an under-declared access" `Quick test_audit_catches_underdeclared;
    t "compile-audit catches a false ~total claim" `Quick test_audit_catches_false_total;
  ]
