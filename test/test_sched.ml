(* Fast-path scheduler validation.

   The can_fire/wakeup fast path is a pure scheduling optimization: with it
   on or off (and in every mode) the simulation must be bit-identical — same
   cycle counts, same per-rule fire counts, same architectural results. These
   tests check that equivalence at two levels (synthetic CMD systems and the
   full processor on real kernels) plus the negative direction: a lying
   [can_fire] must be caught by the audit oracle, because under the fast
   path it would silently starve the rule. *)

open Cmd

let i64 = Alcotest.testable (Fmt.fmt "%Ld") Int64.equal

(* ---------------------------------------------------------------- *)
(* Sim-level equivalence on a synthetic system                        *)
(* ---------------------------------------------------------------- *)

(* A small producer/consumer system exercising every fast-path feature:
   watched parking rules (vacuous and bare), a watchless predicate rule, and
   a predicate-free rule. Returns the observable trajectory. *)
let run_synthetic ~fastpath ~mode ~cycles =
  let clk = Clock.create () in
  let q = Fifo.pipeline ~name:"q" ~capacity:4 () in
  let acc = Ehr.create ~name:"acc" 0 in
  let produced = ref 0 in
  let consumed = ref 0 in
  let rules =
    [
      (* bare guarded rule, watched parking: only admissible while q has data *)
      Rule.make "consume"
        ~can_fire:(fun () -> Fifo.peek_size q > 0)
        ~watches:[ Fifo.signal q ]
        (fun ctx ->
          let v = Fifo.deq ctx q in
          Mut.set ctx consumed (!consumed + v));
      (* vacuous (attempt-wrapped) watched rule on the accumulator EHR *)
      Rule.make "drain-acc" ~vacuous:true
        ~can_fire:(fun () -> Ehr.peek acc >= 10)
        ~watches:[ Ehr.signal acc ]
        (fun ctx ->
          ignore
            (Kernel.attempt ctx (fun ctx ->
                 Kernel.guard ctx (Ehr.read ctx acc 0 >= 10) "acc below threshold";
                 Ehr.write ctx acc 0 0)));
      (* watchless predicate: produced is private state of this rule *)
      Rule.make "produce"
        ~can_fire:(fun () -> !produced < 60)
        (fun ctx ->
          Kernel.guard ctx (!produced < 60) "production done";
          Fifo.enq ctx q !produced;
          Ehr.write ctx acc 0 (Ehr.read ctx acc 0 + 1);
          Mut.set ctx produced (!produced + 1));
      (* predicate-free rule: always attempted, fires every 7th value *)
      Rule.make "spill" (fun ctx ->
          Kernel.guard ctx (Fifo.can_deq ctx q) "empty";
          let v = Fifo.first ctx q in
          Kernel.guard ctx (v mod 7 = 3) "not a spill value";
          ignore (Fifo.deq ctx q));
    ]
  in
  let sim = Sim.create ~mode ~fastpath clk rules in
  for _ = 1 to cycles do
    ignore (Sim.cycle sim);
    Clock.tick clk
  done;
  let per_rule =
    List.map (fun (r : Rule.t) -> (r.name, r.fired, r.guard_failed, r.conflicted)) (Sim.rules sim)
  in
  (!produced, !consumed, Ehr.peek acc, Fifo.peek_list q, Sim.total_fires sim, per_rule)

let test_synthetic_equivalence () =
  List.iter
    (fun (mname, mode) ->
      let on = run_synthetic ~fastpath:true ~mode ~cycles:300 in
      let off = run_synthetic ~fastpath:false ~mode ~cycles:300 in
      let p, c, a, _, fires, _ = on in
      Alcotest.(check bool)
        (Printf.sprintf "%s: trajectories identical (p=%d c=%d acc=%d fires=%d)" mname p c a fires)
        true (on = off);
      (* the system did real work *)
      Alcotest.(check bool) (mname ^ ": produced all") true (p = 60))
    [ ("Multi", Sim.Multi); ("One_per_cycle", Sim.One_per_cycle); ("Shuffle", Sim.Shuffle 7) ]

(* A parked rule must wake when its watched signal is touched much later —
   the generation-sum comparison must not wrap into a false "unchanged". *)
let test_late_wakeup () =
  let clk = Clock.create () in
  let q = Fifo.pipeline ~name:"lateq" ~capacity:2 () in
  let got = ref (-1) in
  let n = ref 0 in
  let rules =
    [
      Rule.make "sink"
        ~can_fire:(fun () -> Fifo.peek_size q > 0)
        ~watches:[ Fifo.signal q ]
        (fun ctx -> Mut.set ctx got (Fifo.deq ctx q));
      Rule.make "tick" (fun ctx ->
          Kernel.guard ctx (!n = 1000) "not yet";
          Fifo.enq ctx q 42);
    ]
  in
  let sim = Sim.create clk rules in
  for _ = 1 to 1002 do
    incr n;
    ignore (Sim.cycle sim);
    Clock.tick clk
  done;
  Alcotest.(check int) "parked rule woke and consumed" 42 !got;
  let sink = List.hd (Sim.rules sim) in
  Alcotest.(check bool)
    (Printf.sprintf "sink was parked most of the run (skipped=%d)" sink.Rule.skipped)
    true
    (sink.Rule.skipped > 990)

(* ---------------------------------------------------------------- *)
(* Audit oracle: lying can_fire predicates must be caught             *)
(* ---------------------------------------------------------------- *)

let test_audit_catches_liar () =
  (* bare rule: predicate says false, body commits anyway *)
  let clk = Clock.create () in
  let e = Ehr.create 0 in
  let liar = Rule.make "liar" ~can_fire:(fun () -> false) (fun ctx -> Ehr.write ctx e 0 1) in
  let sim = Sim.create ~audit:true clk [ liar ] in
  Alcotest.check_raises "bare liar trips the audit"
    (Sim.Audit_fail "rule liar: can_fire returned false but the rule fired (cycle 0)")
    (fun () -> ignore (Sim.cycle sim));
  (* vacuous rule: the attempt swallows nothing — it commits state, so a
     false predicate is still a lie *)
  let clk = Clock.create () in
  let e = Ehr.create 0 in
  let vliar =
    Rule.make "vliar" ~vacuous:true
      ~can_fire:(fun () -> false)
      (fun ctx -> ignore (Kernel.attempt ctx (fun ctx -> Ehr.write ctx e 0 2)))
  in
  let sim = Sim.create ~audit:true clk [ vliar ] in
  Alcotest.check_raises "vacuous liar trips the audit"
    (Sim.Audit_fail "rule vliar: can_fire returned false but the rule fired (cycle 0)")
    (fun () -> ignore (Sim.cycle sim))

let test_audit_passes_honest () =
  (* a vacuous rule whose inner guard fails commits nothing: can_fire=false
     is truthful and the audit must stay quiet *)
  let clk = Clock.create () in
  let q = Fifo.pipeline ~name:"hq" ~capacity:2 () in
  let honest =
    Rule.make "honest" ~vacuous:true
      ~can_fire:(fun () -> Fifo.peek_size q > 0)
      (fun ctx -> ignore (Kernel.attempt ctx (fun ctx -> ignore (Fifo.deq ctx q))))
  in
  let sim = Sim.create ~audit:true clk [ honest ] in
  for _ = 1 to 50 do
    ignore (Sim.cycle sim);
    Clock.tick clk
  done;
  Alcotest.(check int) "honest rule fired vacuously every cycle" 50 honest.Rule.fired

let test_fastpath_starves_liar () =
  (* the positive justification for the audit: under the fast path a lying
     predicate silently suppresses the rule *)
  let clk = Clock.create () in
  let e = Ehr.create 0 in
  let liar = Rule.make "liar" ~can_fire:(fun () -> false) (fun ctx -> Ehr.write ctx e 0 1) in
  let sim = Sim.create clk [ liar ] in
  for _ = 1 to 10 do
    ignore (Sim.cycle sim);
    Clock.tick clk
  done;
  Alcotest.(check int) "liar never ran under the fast path" 0 (Ehr.peek e);
  Alcotest.(check int) "all ten attempts were pruned" 10 liar.Rule.skipped

(* ---------------------------------------------------------------- *)
(* Full-machine equivalence on real kernels                           *)
(* ---------------------------------------------------------------- *)

open Workloads

(* (rule name, fired count) pairs, parsed from the scheduler report. The
   skipped/guard_failed columns are scheduling detail; fired counts plus the
   architectural outcome are the equivalence contract. *)
let fired_counts m =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Machine.pp_rule_stats fmt m;
  Format.pp_print_flush fmt ();
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter_map (fun line ->
         match List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line)) with
         | name :: rest ->
           List.find_map
             (fun tok ->
               if String.length tok > 6 && String.sub tok 0 6 = "fired=" then Some (name, tok)
               else None)
             rest
         | [] -> None)

(* CI runs this suite at RISCYOO_JOBS=1 and =4; equivalence must hold at both. *)
let jobs =
  match Option.bind (Sys.getenv_opt "RISCYOO_JOBS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> 1

let run_full ~fastpath ~mode ?(cfg = Ooo.Config.riscyoo_b) ~budget prog =
  let m = Machine.create ~paging:true ~mode ~fastpath ~jobs (Machine.Out_of_order cfg) prog in
  let o = Machine.run ~max_cycles:budget m in
  Alcotest.(check bool) "run completes" false o.Machine.timed_out;
  (o.Machine.cycles, o.Machine.exits.(0), Machine.instrs m, fired_counts m)

let check_equiv name (c1, x1, i1, f1) (c2, x2, i2, f2) =
  Alcotest.(check int) (name ^ ": cycles identical") c1 c2;
  Alcotest.check i64 (name ^ ": exit checksum identical") x1 x2;
  Alcotest.(check int) (name ^ ": instret identical") i1 i2;
  Alcotest.(check (list (pair string string))) (name ^ ": per-rule fire counts identical") f1 f2

let test_smoke_equivalence () =
  let prog = Spec_kernels.find "smoke" ~scale:1 in
  List.iter
    (fun (mname, mode, budget) ->
      let on = run_full ~fastpath:true ~mode ~budget prog in
      let off = run_full ~fastpath:false ~mode ~budget prog in
      check_equiv ("smoke/" ^ mname) on off)
    [
      ("multi", Sim.Multi, 1_000_000);
      ("shuffle", Sim.Shuffle 20260807, 1_000_000);
      ("one-per-cycle", Sim.One_per_cycle, 60_000_000);
    ]

(* the small configuration test_workloads uses for its SPEC runs *)
let small_cfg =
  {
    Ooo.Config.riscyoo_b with
    Ooo.Config.mem =
      {
        Mem.Mem_sys.l1d_bytes = 4096;
        l1d_ways = 2;
        l1d_mshrs = 4;
        l1i_bytes = 4096;
        l1i_ways = 2;
        l2_bytes = 32768;
        l2_ways = 4;
        l2_mshrs = 8;
        l2_latency = 4;
        mesi = false;
        mem_latency = 24;
        mem_inflight = 8;
        l2_banks = 1;
        lookahead_override = None;
      };
    tlb = Tlb.Tlb_sys.nonblocking_config;
  }

let test_spec_equivalence () =
  List.iter
    (fun kernel ->
      let prog = Spec_kernels.find kernel ~scale:1 in
      let on = run_full ~fastpath:true ~mode:Sim.Multi ~cfg:small_cfg ~budget:10_000_000 prog in
      let off = run_full ~fastpath:false ~mode:Sim.Multi ~cfg:small_cfg ~budget:10_000_000 prog in
      check_equiv kernel on off)
    [ "gcc"; "gobmk" ]

(* The whole-processor predicate set passes the dynamic truthfulness check. *)
let test_smoke_audit_clean () =
  let prog = Spec_kernels.find "smoke" ~scale:1 in
  let m =
    Machine.create ~paging:true ~audit:true (Machine.Out_of_order Ooo.Config.riscyoo_b) prog
  in
  let o = Machine.run ~max_cycles:1_000_000 m in
  Alcotest.(check bool) "audited run completes" false o.Machine.timed_out

(* ---------------------------------------------------------------- *)
(* Schedule compilation: compiled engine == interpreted engine        *)
(* ---------------------------------------------------------------- *)

(* Like [run_full] but selecting the engine explicitly. Jobs is pinned to 1
   because the parallel path disables compilation by design (test_par covers
   compiled-serial vs parallel-interpreted); the helper asserts the engine
   the machine actually took, so a silently-uncompiled "compiled" leg cannot
   degenerate into interpreted-vs-interpreted. *)
let run_engine ~compile ~mode ?(cfg = Ooo.Config.riscyoo_b) ~budget prog =
  let m = Machine.create ~paging:true ~mode ~jobs:1 ~compile (Machine.Out_of_order cfg) prog in
  Alcotest.(check bool)
    (Printf.sprintf "engine matches request (%s)" (Machine.compile_status m))
    (compile && mode <> Sim.One_per_cycle)
    (Machine.compiled m);
  let o = Machine.run ~max_cycles:budget m in
  Alcotest.(check bool) "run completes" false o.Machine.timed_out;
  (o.Machine.cycles, o.Machine.exits.(0), Machine.instrs m, fired_counts m)

let test_smoke_compile_equivalence () =
  let prog = Spec_kernels.find "smoke" ~scale:1 in
  List.iter
    (fun (mname, mode) ->
      let compiled = run_engine ~compile:true ~mode ~budget:1_000_000 prog in
      let interp = run_engine ~compile:false ~mode ~budget:1_000_000 prog in
      check_equiv ("smoke-compile/" ^ mname) compiled interp)
    [ ("multi", Sim.Multi); ("shuffle", Sim.Shuffle 20260807) ];
  (* One_per_cycle serializes the schedule and must refuse the compiled
     path (its fire-one-rule contract needs the interpreted arbiter);
     [run_engine]'s engine assertion is the whole test — no need to pay
     for the 60M-cycle serial run twice here, the fastpath suite covers
     serial-mode bit-identity. *)
  let m =
    Machine.create ~paging:true ~mode:Sim.One_per_cycle ~jobs:1
      (Machine.Out_of_order Ooo.Config.riscyoo_b)
      prog
  in
  Alcotest.(check bool) "one-per-cycle machine not compiled" false (Machine.compiled m)

let test_spec_compile_equivalence () =
  List.iter
    (fun kernel ->
      let prog = Spec_kernels.find kernel ~scale:1 in
      let compiled =
        run_engine ~compile:true ~mode:Sim.Multi ~cfg:small_cfg ~budget:10_000_000 prog
      in
      let interp =
        run_engine ~compile:false ~mode:Sim.Multi ~cfg:small_cfg ~budget:10_000_000 prog
      in
      check_equiv (kernel ^ "-compile") compiled interp)
    [ "gcc"; "gobmk" ]

(* The full processor's footprint declarations pass the dynamic obligation
   check: every tracked access lands on a declared atom, and every [~total]
   rule really never rolls back a tracked write. *)
let test_smoke_compile_audit_clean () =
  let prog = Spec_kernels.find "smoke" ~scale:1 in
  let m =
    Machine.create ~paging:true ~compile_audit:true
      (Machine.Out_of_order Ooo.Config.riscyoo_b)
      prog
  in
  Alcotest.(check bool) "audit mode runs interpreted" false (Machine.compiled m);
  let o = Machine.run ~max_cycles:1_000_000 m in
  Alcotest.(check bool) "compile-audited run completes" false o.Machine.timed_out

let suite =
  let t = Alcotest.test_case in
  [
    t "synthetic equivalence (3 modes)" `Quick test_synthetic_equivalence;
    t "late wakeup of a parked rule" `Quick test_late_wakeup;
    t "audit catches lying can_fire" `Quick test_audit_catches_liar;
    t "audit passes honest predicates" `Quick test_audit_passes_honest;
    t "fast path starves a liar (why audit exists)" `Quick test_fastpath_starves_liar;
    t "smoke equivalence (multi/shuffle/serial)" `Slow test_smoke_equivalence;
    t "spec kernel equivalence (gcc, gobmk)" `Slow test_spec_equivalence;
    t "smoke audit clean" `Quick test_smoke_audit_clean;
    t "smoke compiled == interpreted (multi/shuffle)" `Slow test_smoke_compile_equivalence;
    t "spec kernel compiled == interpreted (gcc, gobmk)" `Slow test_spec_compile_equivalence;
    t "smoke compile-audit clean" `Quick test_smoke_compile_audit_clean;
  ]
