(* lib/mcheck: the DPOR engine on hand-built toy systems (where the exact
   state and trace counts are known), and the interface-obligation monitors
   end-to-end through the litmus harness, including the seeded-bug negative
   test that proves a violated contract is actually caught and named. *)

open Mcheck

(* --- Dpor on toy systems -------------------------------------------------- *)

(* n processes, each one step writing its own private resource: a single
   Mazurkiewicz trace. DPOR must walk it once; exhaustive DFS visits the
   full n! interleaving lattice. *)
let independent n =
  {
    Dpor.nprocs = n;
    enabled = (fun s p -> not s.(p));
    step =
      (fun s p ->
        let s' = Array.copy s in
        s'.(p) <- true;
        [ s' ]);
    footprint = (fun _ p -> [ (p, true) ]);
  }

let key s = String.concat "" (List.map string_of_bool (Array.to_list s))

let test_dpor_independent () =
  let terminals = ref 0 in
  let st =
    Dpor.explore (independent 4) ~init:(Array.make 4 false) ~on_terminal:(fun _ -> incr terminals)
  in
  Alcotest.(check int) "one interleaving explored" 4 st.Dpor.transitions;
  Alcotest.(check int) "one terminal visit" 1 !terminals;
  let dfs_terminals = ref 0 in
  let dst =
    Dpor.explore_dfs ~key (independent 4) ~init:(Array.make 4 false)
      ~on_terminal:(fun _ -> incr dfs_terminals)
  in
  Alcotest.(check int) "dfs: same terminal set" 1 !dfs_terminals;
  (* memoized DFS still visits the whole 2^4 subset lattice *)
  Alcotest.(check bool) "dfs visits more states" true (dst.Dpor.states > st.Dpor.states)

(* Two processes racing one write each on the same resource: final state
   remembers the last writer, so both orders must be reported. *)
let racing =
  {
    Dpor.nprocs = 2;
    enabled = (fun (done_, _) p -> not done_.(p));
    step =
      (fun (done_, _) p ->
        let d = Array.copy done_ in
        d.(p) <- true;
        [ (d, p) ]);
    footprint = (fun _ _ -> [ (0, true) ]);
  }

let test_dpor_race () =
  let winners = ref [] in
  let st =
    Dpor.explore racing
      ~init:([| false; false |], -1)
      ~on_terminal:(fun (_, w) -> if not (List.mem w !winners) then winners := w :: !winners)
  in
  Alcotest.(check (list Alcotest.int)) "both orders reached" [ 0; 1 ] (List.sort compare !winners);
  Alcotest.(check bool) "a race was detected" true (st.Dpor.races >= 1)

let test_dpor_budget () =
  match Dpor.explore ~budget:2 (independent 8) ~init:(Array.make 8 false) ~on_terminal:ignore with
  | _ -> Alcotest.fail "budget of 2 states not enforced"
  | exception Dpor.Budget_exceeded -> ()

(* --- Obligation monitors -------------------------------------------------- *)

(* Outside [collecting], a monitor is disarmed and [check]'s closure must
   not even run; inside, it is armed. *)
let test_obligation_arming () =
  let m = Obligation.declare ~module_:"toy" ~interface:"msg" ~doc:"" () in
  Alcotest.(check bool) "disarmed outside collecting" false (Obligation.armed m);
  let (), ms = Obligation.collecting (fun () ->
      [ Obligation.declare ~module_:"toy" ~interface:"msg" ~doc:"" () ]
      |> List.iter (fun m -> Alcotest.(check bool) "armed inside" true (Obligation.armed m)))
  in
  Alcotest.(check int) "collector saw the declaration" 1 (List.length ms);
  Alcotest.(check string) "name is module/interface" "toy/msg" (Obligation.name (List.hd ms))

(* A clean sweep with the monitors armed: no violation, and the per-monitor
   event counts prove the LSQ / store-buffer / L2 contracts actually saw
   boundary traffic. *)
let test_obligations_clean () =
  let r = Litmus.Run.sweep ~seeds:2 ~obligations:true ~model:Ooo.Config.WMM Litmus.Test.mp in
  if not (Litmus.Run.ok r) then
    Alcotest.failf "MP with obligations: %a" Litmus.Run.pp_report r;
  let ev name =
    match List.assoc_opt name r.Litmus.Run.obligation_events with
    | Some n -> n
    | None -> Alcotest.failf "monitor %s missing from report" name
  in
  Alcotest.(check bool) "lsq ld-issue events" true (ev "ooo.lsq/ld-issue" > 0);
  Alcotest.(check bool) "l2 grant events" true (ev "mem.l2/grant" > 0);
  (* WMM commits stores through the store buffer, so its contract fires too *)
  Alcotest.(check bool) "storebuf issue events" true (ev "ooo.storebuf/issue" > 0)

(* The seeded LSQ bug (loads issue past older overlapping stores) must be
   caught by the LSQ's own obligation, named by module and interface. *)
let test_obligation_negative () =
  let r =
    Litmus.Run.sweep ~seeds:1 ~obligations:true ~inject_lsq_bug:true ~model:Ooo.Config.TSO
      Litmus.Test.mp
  in
  Alcotest.(check bool) "sweep fails" false (Litmus.Run.ok r);
  let hit =
    List.exists
      (fun e ->
        let has sub =
          let n = String.length sub in
          let rec go i = i + n <= String.length e && (String.sub e i n = sub || go (i + 1)) in
          go 0
        in
        has "ooo.lsq" && has "ld-issue")
      r.Litmus.Run.errors
  in
  if not hit then
    Alcotest.failf "violation not attributed to ooo.lsq/ld-issue: %a" Litmus.Run.pp_report r

(* Disarmed monitors must not change behaviour: the same seeded bug runs to
   completion (and produces a forbidden outcome or not — either way, no
   Violation escapes) when obligations are off. *)
let test_bug_unarmed_no_exception () =
  let r = Litmus.Run.sweep ~seeds:1 ~inject_lsq_bug:true ~model:Ooo.Config.TSO Litmus.Test.mp in
  Alcotest.(check (list Alcotest.string)) "no harness errors" [] r.Litmus.Run.errors

let suite =
  [
    Alcotest.test_case "dpor: independent steps" `Quick test_dpor_independent;
    Alcotest.test_case "dpor: racing writes" `Quick test_dpor_race;
    Alcotest.test_case "dpor: budget enforced" `Quick test_dpor_budget;
    Alcotest.test_case "obligation: arming scope" `Quick test_obligation_arming;
    Alcotest.test_case "obligation: clean run has events" `Slow test_obligations_clean;
    Alcotest.test_case "obligation: seeded LSQ bug caught" `Slow test_obligation_negative;
    Alcotest.test_case "obligation: disarmed is inert" `Slow test_bug_unarmed_no_exception;
  ]
