(* Config-space explorer: manifest expansion, Pareto dominance on a
   hand-checked synthetic front, config threading into real machines, the
   reference gate, and worker-count determinism through the farm. *)

module Space = Explore.Space
module Measure = Explore.Measure
module Pareto = Explore.Pareto

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let manifest =
  {|{ "schema": "riscyoo-explore-manifest-v1",
      "base": "b",
      "workloads": [ {"name": "reqresp", "scale": 1} ],
      "grid": { "rob_size": [16, 32, 48], "l2_banks": [1, 2] },
      "points": [ {"name": "big", "rob_size": 96, "n_phys_regs": 160} ],
      "reference": "big" }|}

(* --- expansion ------------------------------------------------------------ *)

let test_expansion () =
  let s = Space.of_string manifest in
  (* cartesian grid (3 x 2) plus one explicit point *)
  check_int "point count" 7 (Space.n_points s);
  let names = List.map Space.name_of s.Space.points in
  check_int "names unique" 7 (List.length (List.sort_uniq compare names));
  (* grid names are dotted axis settings in canonical order *)
  List.iter
    (fun n -> check_bool (n ^ " expanded") true (List.mem n names))
    [ "rob16.banks1"; "rob16.banks2"; "rob32.banks1"; "rob48.banks2"; "big" ];
  check_bool "find_point hits" true (Space.find_point s "rob32.banks2" <> None);
  check_bool "find_point misses" true (Space.find_point s "rob96.banks1" = None);
  Alcotest.(check (option string)) "reference kept" (Some "big") s.Space.reference;
  (* same text, same expansion: names are a pure function of the manifest *)
  let names' = List.map Space.name_of (Space.of_string manifest).Space.points in
  Alcotest.(check (list string)) "expansion deterministic" names names'

let test_quick_clamp () =
  let j = Rjson.of_string manifest in
  let s = Space.of_json (Space.quick_json ~per_axis:2 j) in
  (* rob axis clamped to [16; 32], banks already binary; explicit point stays *)
  check_int "clamped count" 5 (Space.n_points s);
  Alcotest.(check (option string)) "explicit reference survives" (Some "big") s.Space.reference

let test_rejects () =
  let raises name text =
    match Space.of_string text with
    | (_ : Space.t) -> Alcotest.failf "%s: accepted a bad manifest" name
    | exception Space.Bad_manifest _ -> ()
  in
  raises "wrong schema"
    {|{ "schema": "riscyoo-farm-manifest-v1", "base": "b",
        "workloads": [{"name": "reqresp", "scale": 1}], "grid": {"rob_size": [16]} }|};
  raises "unknown base"
    {|{ "schema": "riscyoo-explore-manifest-v1", "base": "z80",
        "workloads": [{"name": "reqresp", "scale": 1}], "grid": {"rob_size": [16]} }|};
  raises "unknown axis"
    {|{ "schema": "riscyoo-explore-manifest-v1", "base": "b",
        "workloads": [{"name": "reqresp", "scale": 1}], "grid": {"alu_count": [2]} }|};
  raises "unnamed explicit point"
    {|{ "schema": "riscyoo-explore-manifest-v1", "base": "b",
        "workloads": [{"name": "reqresp", "scale": 1}], "points": [{"rob_size": 16}] }|};
  raises "duplicate names"
    {|{ "schema": "riscyoo-explore-manifest-v1", "base": "b",
        "workloads": [{"name": "reqresp", "scale": 1}],
        "grid": {"rob_size": [16]}, "points": [{"name": "rob16"}] }|};
  raises "reference off the space"
    {|{ "schema": "riscyoo-explore-manifest-v1", "base": "b",
        "workloads": [{"name": "reqresp", "scale": 1}],
        "grid": {"rob_size": [16]}, "reference": "rob64" }|};
  raises "no workloads"
    {|{ "schema": "riscyoo-explore-manifest-v1", "base": "b",
        "workloads": [], "grid": {"rob_size": [16]} }|}

let test_to_config () =
  let s = Space.of_string manifest in
  let cfg name =
    match Space.find_point s name with
    | Some p -> Space.to_config ~base:s.Space.base p
    | None -> Alcotest.failf "point %s missing" name
  in
  let small = cfg "rob16.banks2" in
  check_int "rob threaded" 16 small.Ooo.Config.rob_size;
  (* default PRF follows the classic sizing rule *)
  check_int "default prf" (Ooo.Config.phys_regs_for ~rob_size:16) small.Ooo.Config.n_phys_regs;
  check_int "banks threaded" 2 small.Ooo.Config.mem.Mem.Mem_sys.l2_banks;
  check_str "config named after the point" "rob16.banks2" small.Ooo.Config.name;
  let big = cfg "big" in
  check_int "explicit prf wins" 160 big.Ooo.Config.n_phys_regs;
  check_int "explicit rob" 96 big.Ooo.Config.rob_size;
  (* out-of-range overrides are manifest errors, not silent clamps *)
  let bad p =
    match Space.to_config ~base:s.Space.base p with
    | (_ : Ooo.Config.t) -> Alcotest.fail "accepted an uninstantiable point"
    | exception Space.Bad_manifest _ -> ()
  in
  bad { Space.empty_point with pname = Some "tiny-prf"; n_phys_regs = Some 39 };
  bad { Space.empty_point with pname = Some "odd-banks"; l2_banks = Some 3 }

(* --- dominance ------------------------------------------------------------ *)

let sample ?(workload = "w") point ipc area =
  {
    Measure.workload;
    point;
    ncores = 1;
    ipc;
    l2_mpki = 0.0;
    rob_occ_avg = 0.0;
    area_gates = area;
    freq_ghz = 1.0;
    cycles = 1000;
    instrs = 1000;
  }

(* Hand-checked synthetic front: [a] dominates [c] (more IPC, less area);
   [b] trades area for IPC against everything; [d] ties [a] exactly, and a
   tie dominates nothing. Front = {a, b, d}. *)
let a = sample "a" 2.0 100.0
let b = sample "b" 1.0 50.0
let c = sample "c" 1.5 150.0
let d = sample "d" 2.0 100.0
let synth = [ c; a; d; b ]

let test_dominance () =
  check_bool "a dominates c" true (Pareto.dominates a c);
  check_bool "c does not dominate a" false (Pareto.dominates c a);
  check_bool "no dominance between trade-offs" false
    (Pareto.dominates a b || Pareto.dominates b a);
  check_bool "exact tie dominates nothing" false
    (Pareto.dominates a d || Pareto.dominates d a);
  Alcotest.(check (list string))
    "front, ascending area" [ "b"; "a"; "d" ]
    (List.map (fun s -> s.Measure.point) (Pareto.front synth));
  check_bool "on_front c" false (Pareto.on_front synth "c");
  check_bool "on_front b" true (Pareto.on_front synth "b")

let test_reference_gate () =
  Alcotest.(check (option bool)) "no reference, no verdict" None
    (Pareto.reference_on_front ~reference:None synth);
  Alcotest.(check (option bool)) "reference on front" (Some true)
    (Pareto.reference_on_front ~reference:(Some "a") synth);
  (* the exit-nonzero case: the designated config is dominated *)
  Alcotest.(check (option bool)) "dominated reference fails" (Some false)
    (Pareto.reference_on_front ~reference:(Some "c") synth);
  (* one bad workload is enough to fail a multi-workload front *)
  let two = synth @ [ sample ~workload:"v" "c" 9.0 1.0 ] in
  Alcotest.(check (option bool)) "fails on any workload" (Some false)
    (Pareto.reference_on_front ~reference:(Some "c") two)

let test_pareto_json () =
  let j = Pareto.to_json ~reference:"c" synth in
  Alcotest.(check (option string)) "schema" (Some "riscyoo-pareto-v1") (Rjson.get_str "schema" j);
  (* byte-determinism: the serialization is a pure function of the set *)
  check_str "order-normalised" (Pareto.to_string synth) (Pareto.to_string (List.rev synth));
  (* round-trip a sample through the farm payload encoding *)
  let s = sample "rt" 1.25 4096.5 in
  check_bool "measure round trip" true (Measure.of_json (Measure.to_json s) = s)

(* --- the real machine ----------------------------------------------------- *)

(* Config threading end to end: the same kernel on a 16-entry and a 64-entry
   ROB must agree architecturally and disagree on window pressure. *)
let test_config_threading () =
  let prog = Workloads.Server_kernels.find "reqresp" ~harts:1 ~scale:2 in
  let build rob =
    let p = { Space.empty_point with pname = Some (Printf.sprintf "rob%d" rob);
              rob_size = Some rob } in
    let cfg = Space.to_config ~base:Ooo.Config.riscyoo_b p in
    let m = Workloads.Machine.create ~ncores:1 (Workloads.Machine.Out_of_order cfg) prog in
    let o = Workloads.Machine.run m in
    check_bool "finished" false o.Workloads.Machine.timed_out;
    (o.Workloads.Machine.exits, Workloads.Machine.find_stat m "c0.robFullCycles")
  in
  let exits16, full16 = build 16 and exits64, full64 = build 64 in
  Alcotest.(check (array int64)) "same architectural result" exits64 exits16;
  check_bool
    (Printf.sprintf "small ROB stalls more (16: %d, 64: %d)" full16 full64)
    true (full16 > full64)

(* Worker-count determinism through the farm: the same explore sweep at
   --workers 1 and 3 must serialize to identical bytes, both as raw farm
   records and as the Pareto front. *)
let test_farm_determinism () =
  let m =
    Farm.Jobs.of_string
      {|{ "schema": "riscyoo-farm-manifest-v1",
          "sweeps": [ { "type": "explore",
            "base": "b",
            "workloads": [ {"name": "reqresp", "scale": 1} ],
            "grid": { "rob_size": [24, 48], "l2_banks": [1, 2] } } ] }|}
  in
  let jobs = Farm.Jobs.jobs ~replay_cmd:"explore" ~manifest_path:"m.json" m in
  check_int "2x2 grid expands" 4 (List.length jobs);
  let run workers =
    let cfg = { Farm.Sweep.workers; timeout_s = 120.; max_retries = 1; backoff_s = 0.01 } in
    Farm.Sweep.run ~log:(fun (_ : string) -> ()) cfg jobs
  in
  let o1 = run 1 and o3 = run 3 in
  check_int "all finished" 4 o1.Farm.Sweep.n_ok;
  check_str "records byte-identical across workers" (Farm.Sweep.results_json o1)
    (Farm.Sweep.results_json o3);
  let front o =
    match Farm.Jobs.explore_json o with
    | Some j -> Rjson.to_string j
    | None -> Alcotest.fail "no explore records in outcome"
  in
  check_str "pareto byte-identical across workers" (front o1) (front o3);
  (* every sample got real measurements out of the machine *)
  List.iter
    (fun s ->
      check_bool (s.Measure.point ^ " has ipc") true (s.Measure.ipc > 0.0);
      check_bool (s.Measure.point ^ " has area") true (s.Measure.area_gates > 0.0))
    (Farm.Jobs.explore_samples o1)

let suite =
  [
    Alcotest.test_case "manifest expansion" `Quick test_expansion;
    Alcotest.test_case "quick clamp" `Quick test_quick_clamp;
    Alcotest.test_case "manifest rejects" `Quick test_rejects;
    Alcotest.test_case "point to config" `Quick test_to_config;
    Alcotest.test_case "dominance and front" `Quick test_dominance;
    Alcotest.test_case "reference gate" `Quick test_reference_gate;
    Alcotest.test_case "pareto json" `Quick test_pareto_json;
    Alcotest.test_case "config threading" `Slow test_config_threading;
    Alcotest.test_case "farm determinism" `Slow test_farm_determinism;
  ]
