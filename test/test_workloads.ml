(* Workload validation: every kernel completes on the golden model with a
   deterministic checksum; representative kernels are re-run on the OOO core
   under lockstep co-simulation and on the quad-core. *)

open Workloads

let i64 = Alcotest.testable (Fmt.fmt "%Ld") Int64.equal

let golden_run ?(ncores = 1) prog =
  let m = Machine.create ~ncores Machine.Golden_only prog in
  let o = Machine.run ~max_cycles:5_000_000 m in
  Alcotest.(check bool) "golden completes" false o.Machine.timed_out;
  (o.Machine.exits.(0), Machine.instrs m)

let test_spec_kernels_golden () =
  List.iter
    (fun (name, f) ->
      let code, n = golden_run (f ~scale:1) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: checksum non-negative (%Ld), %d instrs" name code n)
        true
        (Int64.compare code 0L >= 0);
      Alcotest.(check bool)
        (Printf.sprintf "%s: substantial work (%d instrs)" name n)
        true (n > 30_000);
      (* determinism *)
      let code2, _ = golden_run (f ~scale:1) in
      Alcotest.check i64 (name ^ ": deterministic") code code2)
    Spec_kernels.all

let test_parsec_kernels_golden () =
  List.iter
    (fun (name, f) ->
      List.iter
        (fun harts ->
          let code, n = golden_run ~ncores:harts (f ~harts ~scale:1) in
          Alcotest.(check bool)
            (Printf.sprintf "%s x%d: completes (%Ld, %d instrs)" name harts code n)
            true
            (Int64.compare code 0L >= 0))
        [ 1; 2; 4 ])
    Parsec_kernels.all

let small_cfg =
  {
    Ooo.Config.riscyoo_b with
    Ooo.Config.mem =
      {
        Mem.Mem_sys.l1d_bytes = 4096;
        l1d_ways = 2;
        l1d_mshrs = 4;
        l1i_bytes = 4096;
        l1i_ways = 2;
        l2_bytes = 32768;
        l2_ways = 4;
        l2_mshrs = 8;
        l2_latency = 4;
        mesi = false;
        mem_latency = 24;
        mem_inflight = 8;
        l2_banks = 1;
        lookahead_override = None;
      };
    tlb = Tlb.Tlb_sys.nonblocking_config;
  }

(* three representative kernels, full cosim, with paging *)
let test_spec_on_ooo_cosim () =
  List.iter
    (fun name ->
      let prog = Spec_kernels.find name ~scale:1 in
      let expect, _ = golden_run prog in
      let m = Machine.create ~paging:true ~cosim:true (Machine.Out_of_order small_cfg) prog in
      let o = Machine.run ~max_cycles:10_000_000 m in
      Alcotest.(check bool) (name ^ " on ooo completes") false o.Machine.timed_out;
      Alcotest.check i64 (name ^ " checksum matches golden") expect o.Machine.exits.(0))
    [ "gcc"; "gobmk"; "omnetpp" ]

let test_parsec_on_quad () =
  let prog = Parsec_kernels.find "blackscholes" ~harts:4 ~scale:1 in
  let expect, _ = golden_run ~ncores:4 prog in
  List.iter
    (fun mm ->
      let cfg = { (Ooo.Config.multicore mm) with Ooo.Config.mem = small_cfg.Ooo.Config.mem } in
      let m = Machine.create ~ncores:4 (Machine.Out_of_order cfg) prog in
      let o = Machine.run ~max_cycles:10_000_000 m in
      Alcotest.(check bool) (cfg.Ooo.Config.name ^ " completes") false o.Machine.timed_out;
      Alcotest.check i64 (cfg.Ooo.Config.name ^ " checksum") expect o.Machine.exits.(0))
    [ Ooo.Config.TSO; Ooo.Config.WMM ]

let test_server_kernels_golden () =
  List.iter
    (fun (name, f) ->
      List.iter
        (fun harts ->
          let code, n = golden_run ~ncores:harts (f ~harts ~scale:1) in
          Alcotest.(check bool)
            (Printf.sprintf "%s x%d: completes (%Ld, %d instrs)" name harts code n)
            true
            (Int64.compare code 0L >= 0);
          let code2, _ = golden_run ~ncores:harts (f ~harts ~scale:1) in
          Alcotest.check i64 (Printf.sprintf "%s x%d: deterministic" name harts) code code2)
        [ 1; 2; 4 ])
    Server_kernels.all

(* The server kernels are self-checking under relaxation: reqresp's tagged
   handshakes need no fences, prodcons relies on its MP fences, and
   lockladder's checksum proves mutual exclusion — so running all three on
   the WMM quad against the golden checksum is a memory-model audit, not
   just a smoke test. *)
let test_server_on_quad_wmm () =
  List.iter
    (fun (name, f) ->
      let prog = f ~harts:4 ~scale:1 in
      let expect, _ = golden_run ~ncores:4 prog in
      let cfg =
        { (Ooo.Config.multicore Ooo.Config.WMM) with Ooo.Config.mem = small_cfg.Ooo.Config.mem }
      in
      let m = Machine.create ~ncores:4 (Machine.Out_of_order cfg) prog in
      let o = Machine.run ~max_cycles:10_000_000 m in
      Alcotest.(check bool) (name ^ " on quad-wmm completes") false o.Machine.timed_out;
      Alcotest.check i64 (name ^ " checksum") expect o.Machine.exits.(0))
    Server_kernels.all

let test_streamcluster_contention () =
  let prog = Parsec_kernels.find "streamcluster" ~harts:4 ~scale:1 in
  let expect, _ = golden_run ~ncores:4 prog in
  let cfg =
    { (Ooo.Config.multicore Ooo.Config.TSO) with Ooo.Config.mem = small_cfg.Ooo.Config.mem }
  in
  let m = Machine.create ~ncores:4 (Machine.Out_of_order cfg) prog in
  let o = Machine.run ~max_cycles:10_000_000 m in
  Alcotest.(check bool) "streamcluster TSO completes" false o.Machine.timed_out;
  Alcotest.check i64 "streamcluster checksum" expect o.Machine.exits.(0)

let test_partition () =
  (* the asm-level partitioner: slices must tile [0, n) exactly *)
  let open Isa.Reg_name in
  List.iter
    (fun (n, harts) ->
      let covered = Array.make n 0 in
      for h = 0 to harts - 1 do
        let p = Isa.Asm.create () in
        Isa.Asm.li p s3 (Int64.of_int n);
        Workloads.Kernel_lib.partition p ~n_reg:s3 ~harts ~lo_reg:s4 ~hi_reg:s5 ~tmp:t0;
        Isa.Asm.mv p a0 s4;
        Isa.Asm.slli p a1 s5 16;
        Isa.Asm.or_ p a0 a0 a1;
        Isa.Asm.li p a7 93L;
        Isa.Asm.ecall p;
        (* run on the golden model with mhartid = h *)
        let pmem = Isa.Phys_mem.create () in
        let mmio = Isa.Mmio.create () in
        Array.iteri
          (fun i w ->
            Isa.Phys_mem.store pmem ~bytes:4
              (Int64.add Isa.Addr_map.dram_base (Int64.of_int (i * 4)))
              (Int64.of_int w))
          (Isa.Asm.words p ~base:Isa.Addr_map.dram_base);
        let g = Isa.Golden.create ~nharts:(h + 1) pmem mmio in
        Isa.Golden.set_pc g ~hart:h Isa.Addr_map.dram_base;
        (match Isa.Golden.run g ~hart:h ~max:10000 with
        | `Halted _ -> ()
        | `Timeout -> Alcotest.fail "partition probe timed out");
        let v = Option.get (Isa.Mmio.exit_code mmio ~hart:h) in
        let lo = Int64.to_int (Int64.logand v 0xFFFFL) in
        let hi = Int64.to_int (Int64.shift_right_logical v 16) in
        for i = lo to hi - 1 do
          covered.(i) <- covered.(i) + 1
        done
      done;
      Array.iteri
        (fun i c ->
          Alcotest.(check int) (Printf.sprintf "n=%d harts=%d idx %d covered once" n harts i) 1 c)
        covered)
    [ (10, 3); (16, 4); (7, 4); (5, 2); (100, 4) ]

let suite =
  let t = Alcotest.test_case in
  [
    t "partition tiles exactly" `Quick test_partition;
    t "spec kernels on golden (deterministic)" `Quick test_spec_kernels_golden;
    t "parsec kernels on golden (1/2/4 harts)" `Quick test_parsec_kernels_golden;
    t "spec kernels on ooo (cosim + paging)" `Slow test_spec_on_ooo_cosim;
    t "server kernels on golden (1/2/4 harts)" `Quick test_server_kernels_golden;
    t "server kernels on quad-wmm (fence audit)" `Slow test_server_on_quad_wmm;
    t "parsec on quad core (TSO + WMM)" `Slow test_parsec_on_quad;
    t "streamcluster contention on TSO" `Slow test_streamcluster_contention;
  ]
