(* Tests for the verification subsystem: fault-injection campaigns are
   deterministic and classify every trial; invariant checks are silent on
   clean runs and catch deliberately seeded corruption. *)

open Workloads

(* same small-cache shape as test_ooo, so misses/evictions happen quickly *)
let test_cfg =
  {
    Ooo.Config.riscyoo_b with
    Ooo.Config.mem =
      {
        Mem.Mem_sys.l1d_bytes = 2048;
        l1d_ways = 2;
        l1d_mshrs = 4;
        l1i_bytes = 2048;
        l1i_ways = 2;
        l2_bytes = 8192;
        l2_ways = 4;
        l2_mshrs = 8;
        l2_latency = 4;
        mesi = false;
        mem_latency = 30;
        mem_inflight = 8;
        l2_banks = 1;
        lookahead_override = None;
      };
  }

let smoke = Spec_kernels.find "smoke" ~scale:1

let campaign ~trials ~seed =
  let g = Machine.create Machine.Golden_only smoke in
  let go = Machine.run g in
  Alcotest.(check bool) "golden exits" false go.Machine.timed_out;
  let clean = Machine.create (Machine.Out_of_order test_cfg) smoke in
  let co = Machine.run ~max_cycles:1_000_000 clean in
  Alcotest.(check bool) "fault-free run exits" false co.Machine.timed_out;
  let horizon = co.Machine.cycles in
  let harness =
    {
      Verif.Fault.build =
        (fun () ->
          Machine.create ~cosim:true ~watchdog:1500 ~invariants:true
            (Machine.Out_of_order test_cfg) smoke);
      exec =
        (fun m ~on_cycle ->
          let o = Machine.run ~max_cycles:((2 * horizon) + 20_000) ~on_cycle m in
          if o.Machine.timed_out then `Timeout o.Machine.cycles else `Exit o.Machine.exits);
      reference = go.Machine.exits;
    }
  in
  Verif.Fault.run ~seed ~trials ~horizon harness

let test_campaign_classified () =
  let open Verif.Fault in
  let s = campaign ~trials:40 ~seed:11 in
  Alcotest.(check int) "all trials ran" 40 s.n_trials;
  Alcotest.(check int) "every trial classified" 40 (s.n_masked + s.n_divergence + s.n_hang);
  Alcotest.(check int) "no undiagnosed timeouts" 0 s.n_undiagnosed;
  (* a bit-flip campaign over real state should not be 100% masked *)
  Alcotest.(check bool) "some faults detected" true (s.n_divergence + s.n_hang > 0)

let test_campaign_deterministic () =
  let open Verif.Fault in
  let s1 = campaign ~trials:12 ~seed:5 in
  let s2 = campaign ~trials:12 ~seed:5 in
  Alcotest.(check bool) "same seed, same plan and classification" true (s1.trials = s2.trials)

let test_invariants_clean_run () =
  let m =
    Machine.create ~cosim:true ~invariants:true ~watchdog:5000 (Machine.Out_of_order test_cfg)
      smoke
  in
  let o = Machine.run ~max_cycles:1_000_000 m in
  Alcotest.(check bool) "exits cleanly with checks on" false o.Machine.timed_out;
  Alcotest.(check bool) "checks were registered" true
    (List.length (Machine.invariant_names m) >= 5);
  Alcotest.(check int) "no watchdog trips" 0 (Machine.watchdog_trips m)

(* Seed the exact bug the invariant exists for: free the same physical
   register twice and demand the free-list check names it. *)
let test_double_free_detected () =
  let clk = Cmd.Clock.create () in
  let fl, checks = Verif.Invariant.collecting (fun () -> Ooo.Free_list.create ~nregs:40) in
  Alcotest.(check bool) "check collected" true
    (List.mem "freelist.no-double-free" (Verif.Invariant.names checks));
  Verif.Invariant.run_checks checks;
  let ctx = Cmd.Kernel.make_ctx clk in
  let r = Ooo.Free_list.alloc ctx fl in
  Verif.Invariant.run_checks checks;
  Ooo.Free_list.free ctx fl r;
  Verif.Invariant.run_checks checks;
  Ooo.Free_list.free ctx fl r;
  match Verif.Invariant.run_checks checks with
  | () -> Alcotest.fail "seeded double-free not detected"
  | exception Verif.Invariant.Violation (name, _) ->
    Alcotest.(check string) "caught by the free-list check" "freelist.no-double-free" name

(* Registration is scoped: building a machine outside [collecting] (and with
   the Inject registry disarmed) must leave no global residue. *)
let test_registries_stay_clean () =
  Alcotest.(check bool) "inject disarmed" false (Cmd.Inject.is_armed ());
  let before = Cmd.Inject.n_sites () in
  let m = Machine.create (Machine.Out_of_order test_cfg) smoke in
  Alcotest.(check int) "no sites leaked" before (Cmd.Inject.n_sites ());
  Alcotest.(check (list string)) "no checks collected" [] (Machine.invariant_names m)

let suite =
  let t = Alcotest.test_case in
  [
    t "campaign: every trial classified" `Quick test_campaign_classified;
    t "campaign: deterministic under seed" `Quick test_campaign_deterministic;
    t "invariants: silent on clean run" `Quick test_invariants_clean_run;
    t "invariants: seeded double-free caught" `Quick test_double_free_detected;
    t "registries: no residue without opt-in" `Quick test_registries_stay_clean;
  ]
