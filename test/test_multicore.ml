(* Multicore tests: parallel kernels on the quad-core RiscyOO under TSO and
   WMM, with AMO-based locks and spin barriers. *)

open Isa
open Workloads

let i64 = Alcotest.testable (Fmt.fmt "%Ld") Int64.equal

(* CI runs this suite at RISCYOO_JOBS=1 and =4; results must not depend on it. *)
let jobs =
  match Option.bind (Sys.getenv_opt "RISCYOO_JOBS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> 1

(* Each of [n] harts adds its hart id + 1 to a shared counter [iters] times
   under an amoadd; hart 0 waits for all to finish (spin on a done-counter)
   and exits with the total. Other harts exit 0. *)
let shared_counter_kernel ~harts ~iters =
  let open Reg_name in
  let p = Asm.create () in
  let counter = 0x80100000L and done_ctr = 0x80100040L in
  Asm.csrr p t0 Csr.mhartid;
  Asm.li p s0 counter;
  Asm.li p s1 done_ctr;
  (* contribution = hart+1 *)
  Asm.addi p s2 t0 1L;
  Asm.li p s3 (Int64.of_int iters);
  Asm.label p "loop";
  Asm.amoadd_d p zero s2 s0;
  Asm.addi p s3 s3 (-1L);
  Asm.bne p s3 zero "loop";
  (* signal done *)
  Asm.li p t1 1L;
  Asm.fence p;
  Asm.amoadd_d p zero t1 s1;
  (* hart 0 waits and reports; others exit 0 *)
  Asm.csrr p t0 Csr.mhartid;
  Asm.bne p t0 zero "worker_exit";
  Asm.li p t2 (Int64.of_int harts);
  Asm.label p "wait";
  Asm.ld p t3 0L s1;
  Asm.bne p t3 t2 "wait";
  Asm.fence p;
  Asm.ld p a0 0L s0;
  Asm.li p a7 93L;
  Asm.ecall p;
  Asm.label p "worker_exit";
  Asm.li p a0 0L;
  Asm.li p a7 93L;
  Asm.ecall p;
  Machine.program p

(* spin-lock (amoswap) protected read-modify-write without atomics inside *)
let lock_kernel ~harts ~iters =
  let open Reg_name in
  let p = Asm.create () in
  let lock = 0x80100000L and shared = 0x80100040L and done_ctr = 0x80100080L in
  Asm.csrr p t0 Csr.mhartid;
  Asm.li p s0 lock;
  Asm.li p s1 shared;
  Asm.li p s2 done_ctr;
  Asm.li p s3 (Int64.of_int iters);
  Asm.label p "loop";
  (* acquire *)
  Asm.label p "acq";
  Asm.li p t1 1L;
  Asm.amoswap_w p t2 t1 s0;
  Asm.bne p t2 zero "acq";
  Asm.fence p;
  (* critical section: non-atomic increment *)
  Asm.ld p t3 0L s1;
  Asm.addi p t3 t3 1L;
  Asm.sd p t3 0L s1;
  (* release *)
  Asm.fence p;
  Asm.sw p zero 0L s0;
  Asm.addi p s3 s3 (-1L);
  Asm.bne p s3 zero "loop";
  Asm.li p t1 1L;
  Asm.fence p;
  Asm.amoadd_d p zero t1 s2;
  Asm.csrr p t0 Csr.mhartid;
  Asm.bne p t0 zero "worker_exit";
  Asm.li p t2 (Int64.of_int harts);
  Asm.label p "wait";
  Asm.ld p t3 0L s2;
  Asm.bne p t3 t2 "wait";
  Asm.fence p;
  Asm.ld p a0 0L s1;
  Asm.li p a7 93L;
  Asm.ecall p;
  Asm.label p "worker_exit";
  Asm.li p a0 0L;
  Asm.li p a7 93L;
  Asm.ecall p;
  Machine.program p

let small_mem =
  {
    Mem.Mem_sys.l1d_bytes = 2048;
    l1d_ways = 2;
    l1d_mshrs = 4;
    l1i_bytes = 2048;
    l1i_ways = 2;
    l2_bytes = 16384;
    l2_ways = 4;
    l2_mshrs = 8;
    l2_latency = 4;
    mesi = false;
    mem_latency = 20;
    mem_inflight = 8;
    l2_banks = 1;
    lookahead_override = None;
  }

let run_mc mm ~ncores prog expect =
  let cfg = { (Ooo.Config.multicore mm) with Ooo.Config.mem = small_mem } in
  let m = Machine.create ~ncores ~jobs ~invariants:true (Machine.Out_of_order cfg) prog in
  let o = Machine.run ~max_cycles:2_000_000 m in
  Alcotest.(check bool)
    (Printf.sprintf "%s x%d exits" cfg.Ooo.Config.name ncores)
    false o.Machine.timed_out;
  Alcotest.check i64 (Printf.sprintf "%s result" cfg.Ooo.Config.name) expect o.Machine.exits.(0)

let test_counter_tso () =
  run_mc Ooo.Config.TSO ~ncores:2 (shared_counter_kernel ~harts:2 ~iters:40) 120L;
  run_mc Ooo.Config.TSO ~ncores:4 (shared_counter_kernel ~harts:4 ~iters:25) 250L

let test_counter_wmm () =
  run_mc Ooo.Config.WMM ~ncores:2 (shared_counter_kernel ~harts:2 ~iters:40) 120L;
  run_mc Ooo.Config.WMM ~ncores:4 (shared_counter_kernel ~harts:4 ~iters:25) 250L

let test_lock_tso () = run_mc Ooo.Config.TSO ~ncores:4 (lock_kernel ~harts:4 ~iters:20) 80L
let test_lock_wmm () = run_mc Ooo.Config.WMM ~ncores:4 (lock_kernel ~harts:4 ~iters:20) 80L

let test_inorder_multicore () =
  let prog = shared_counter_kernel ~harts:2 ~iters:30 in
  let m =
    Machine.create ~ncores:2 ~jobs ~invariants:true
      (Machine.In_order { mem = small_mem; tlb = Tlb.Tlb_sys.blocking_config })
      prog
  in
  let o = Machine.run ~max_cycles:2_000_000 m in
  Alcotest.(check bool) "inorder x2 exits" false o.Machine.timed_out;
  Alcotest.check i64 "inorder x2 result" 90L o.Machine.exits.(0)

let suite =
  let t = Alcotest.test_case in
  [
    t "shared counter, TSO (2 and 4 cores)" `Quick test_counter_tso;
    t "shared counter, WMM (2 and 4 cores)" `Quick test_counter_wmm;
    t "spin lock, TSO quad-core" `Quick test_lock_tso;
    t "spin lock, WMM quad-core" `Quick test_lock_wmm;
    t "in-order dual-core coherence" `Quick test_inorder_multicore;
  ]
