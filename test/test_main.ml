let () =
  Alcotest.run "riscyoo"
    [
      ("cmd", Test_cmd.suite);
      ("conflict", Test_conflict.suite);
      ("sched", Test_sched.suite);
      ("par", Test_par.suite);
      ("isa", Test_isa.suite);
      ("mem", Test_mem.suite);
      ("branch", Test_branch.suite);
      ("inorder", Test_inorder.suite);
      ("ooo-units", Test_ooo_units.suite);
      ("lsq", Test_lsq.suite);
      ("tlb-units", Test_tlb_units.suite);
      ("ooo", Test_ooo.suite);
      ("multicore", Test_multicore.suite);
      ("epoch", Test_epoch.suite);
      ("workloads", Test_workloads.suite);
      ("obs", Test_obs.suite);
      ("verif", Test_verif.suite);
      ("random", Test_random.suite);
      ("synth", Test_synth.suite);
      ("litmus", Test_litmus.suite);
      ("mcheck", Test_mcheck.suite);
      ("snapshot", Test_snapshot.suite);
      ("farm", Test_farm.suite);
      ("explore", Test_explore.suite);
    ]
