(* Partitioned parallel execution: synthetic Sim-level checks plus
   parallel-vs-serial equivalence over the multicore machine kernels. *)

open Cmd

(* A tiny two-"core" + uncore design built only from Cmd primitives: each
   core counts locally in an EHR and streams its count into a cf FIFO; the
   uncore drains both queues into an accumulator EHR. All cross-partition
   traffic is conflict-free, so parallel execution must be bit-identical. *)
type toy = {
  clk : Clock.t;
  sim : Sim.t;
  acc : int Ehr.t;
  locals : int Ehr.t array;
}

let make_toy ?(jobs = 1) ?(mode = Sim.Multi) ?(partition_audit = false) ncores =
  let clk = Clock.create () in
  let qs =
    Array.init ncores (fun i ->
        Partition.scoped (i + 1) (fun () ->
            Fifo.cf ~name:(Printf.sprintf "c%d.q" i) clk ~capacity:4 ()))
  in
  let locals =
    Array.init ncores (fun i ->
        Partition.scoped (i + 1) (fun () ->
            Ehr.create ~name:(Printf.sprintf "c%d.n" i) 0))
  in
  let acc = Ehr.create ~name:"acc" 0 in
  let core_rules =
    List.concat
      (List.init ncores (fun i ->
           Partition.scoped (i + 1) (fun () ->
               [
                 Rule.make
                   ~touches:[ Fifo.enq_token qs.(i) ]
                   (Printf.sprintf "c%d.count" i)
                   (fun ctx ->
                     let v = Ehr.read ctx locals.(i) 0 in
                     Ehr.write ctx locals.(i) 0 (v + 1);
                     Fifo.enq ctx qs.(i) (v + 1));
               ])))
  in
  let uncore =
    Rule.make ~vacuous:true
      ~touches:(Array.to_list (Array.map Fifo.deq_token qs))
      "uncore.drain"
      (fun ctx ->
        let got = ref 0 in
        Array.iter
          (fun q ->
            match Kernel.attempt ctx (fun ctx -> Fifo.deq ctx q) with
            | Some v -> got := !got + v
            | None -> ())
          qs;
        if !got > 0 then Ehr.write ctx acc 0 (Ehr.read ctx acc 0 + !got))
  in
  let sim = Sim.create ~mode ~jobs ~partition_audit clk (core_rules @ [ uncore ]) in
  { clk; sim; acc; locals }

let toy_fingerprint t n =
  Sim.run t.sim n;
  ( Ehr.peek t.acc,
    Array.to_list (Array.map Ehr.peek t.locals),
    Sim.total_fires t.sim,
    List.map (fun (r : Rule.t) -> (r.name, r.fired, r.guard_failed, r.conflicted)) (Sim.rules t.sim)
  )

let test_toy_equiv () =
  List.iter
    (fun mode ->
      let serial = toy_fingerprint (make_toy ~jobs:1 ~mode 3) 500 in
      let par = toy_fingerprint (make_toy ~jobs:4 ~mode 3) 500 in
      Alcotest.(check bool) "parallel toy == serial toy" true (serial = par))
    [ Sim.Multi; Sim.Shuffle 42; Sim.One_per_cycle ]

let test_toy_parallel_active () =
  let t = make_toy ~jobs:4 3 in
  Alcotest.(check bool) "parallel path active at jobs=4" true (Sim.parallel t.sim);
  let s = make_toy ~jobs:1 3 in
  Alcotest.(check bool) "serial path at jobs=1" false (Sim.parallel s.sim)

(* Static checker: a ring FIFO is one primitive; rules in two different
   parallel partitions declaring it must be rejected at Sim.create. *)
let test_checker_rejects_shared_fifo () =
  let clk = Clock.create () in
  let q = Fifo.pipeline ~name:"shared" ~capacity:2 () in
  let r1 =
    Partition.scoped 1 (fun () ->
        Rule.make ~touches:[ Fifo.enq_token q ] "p1.enq" (fun ctx -> Fifo.enq ctx q 1))
  in
  let r2 =
    Partition.scoped 2 (fun () ->
        Rule.make ~touches:[ Fifo.deq_token q ] "p2.deq" (fun ctx -> ignore (Fifo.deq ctx q)))
  in
  Alcotest.check_raises "shared ring FIFO rejected"
    (Sim.Partition_error
       "primitive shared is touched from partition 1 (rule p1.enq) and partition 2 (rule p2.deq, token shared); only the two sides of a conflict-free FIFO may cross a partition boundary")
    (fun () -> ignore (Sim.create ~jobs:2 clk [ r1; r2 ]))

let test_checker_rejects_foreign_watch () =
  let clk = Clock.create () in
  let sg = Partition.scoped 2 (fun () -> Wakeup.make ()) in
  let r =
    Partition.scoped 1 (fun () ->
        Rule.make ~can_fire:(fun () -> false) ~watches:[ sg ] "p1.watcher" (fun _ -> ()))
  in
  match Sim.create ~jobs:2 clk [ r ] with
  | exception Sim.Partition_error _ -> ()
  | _ -> Alcotest.fail "foreign watch accepted"

(* Partition audit, positive: the legal toy runs clean. *)
let test_audit_clean () =
  let t = make_toy ~jobs:1 ~partition_audit:true 3 in
  Sim.run t.sim 500;
  Alcotest.(check bool) "audited toy ran" true (Sim.cycles t.sim = 500)

(* Partition audit, negative: two partitions write the same (undeclared)
   EHR — the static checker cannot see it, the audit must. *)
let test_audit_catches_overlap () =
  let clk = Clock.create () in
  let shared = Ehr.create ~name:"sneaky" 0 in
  let mk p =
    Partition.scoped p (fun () ->
        Rule.make
          (Printf.sprintf "p%d.bump" p)
          (fun ctx -> Ehr.write ctx shared 0 (Ehr.read ctx shared 0 + 1)))
  in
  let sim = Sim.create ~partition_audit:true clk [ mk 1; mk 2 ] in
  match Sim.run sim 2 with
  | exception Kernel.Partition_overlap _ -> ()
  | _ -> Alcotest.fail "cross-partition EHR write not caught by audit"

(* Stats sharding: increments from parallel rule bodies land in shards and
   merge to the same totals as serial execution. *)
let test_stats_shards () =
  let totals jobs =
    let clk = Clock.create () in
    let stats = Stats.create () in
    let c = Stats.counter stats "events" in
    let qs =
      Array.init 2 (fun i ->
          Partition.scoped (i + 1) (fun () ->
              Fifo.cf ~name:(Printf.sprintf "s%d.q" i) clk ~capacity:2 ()))
    in
    let rules =
      List.concat
        (List.init 2 (fun i ->
             Partition.scoped (i + 1) (fun () ->
                 [
                   Rule.make
                     ~touches:[ Fifo.enq_token qs.(i) ]
                     (Printf.sprintf "s%d.produce" i)
                     (fun ctx ->
                       Stats.incr ~ctx c;
                       Fifo.enq ctx qs.(i) i);
                 ])))
      @ [
          Rule.make ~vacuous:true
            ~touches:(Array.to_list (Array.map Fifo.deq_token qs))
            "drain"
            (fun ctx ->
              Array.iter
                (fun q ->
                  ignore (Kernel.attempt ctx (fun ctx -> Fifo.deq ctx q)))
                qs);
        ]
    in
    let sim = Sim.create ~jobs ~stats clk rules in
    Sim.run sim 200;
    Stats.find stats "events"
  in
  let s = totals 1 and p = totals 4 in
  Alcotest.(check int) "sharded counter total" s p;
  Alcotest.(check bool) "counter counted" true (s > 0)

(* ---------------------------------------------------------------- *)
(* Full-machine equivalence: jobs=4 vs jobs=1 on the multicore kernels *)
(* ---------------------------------------------------------------- *)

open Workloads

let i64 = Alcotest.testable (Fmt.fmt "%Ld") Int64.equal

let mc_cfg = { (Ooo.Config.multicore Ooo.Config.TSO) with Ooo.Config.mem = Test_multicore.small_mem }

(* Everything observable: cycle count, every hart's exit value, committed
   instructions, and the per-rule fire counts from the scheduler report. *)
let mc_fingerprint ~jobs ~mode ?(ncores = 4) ?(budget = 2_000_000) prog =
  let m = Machine.create ~ncores ~mode ~jobs (Machine.Out_of_order mc_cfg) prog in
  Alcotest.(check bool) "parallel path matches jobs/mode" (jobs > 1 && mode <> Sim.One_per_cycle)
    (Machine.parallel m);
  let o = Machine.run ~max_cycles:budget m in
  Alcotest.(check bool) "machine run completes" false o.Machine.timed_out;
  (o.Machine.cycles, Array.to_list o.Machine.exits, Machine.instrs m, Test_sched.fired_counts m)

let check_mc_equiv name (c1, x1, i1, f1) (c2, x2, i2, f2) =
  Alcotest.(check int) (name ^ ": cycles identical") c1 c2;
  Alcotest.(check (list i64)) (name ^ ": exits identical") x1 x2;
  Alcotest.(check int) (name ^ ": instret identical") i1 i2;
  Alcotest.(check (list (pair string string))) (name ^ ": per-rule fire counts identical") f1 f2

let test_machine_equiv () =
  List.iter
    (fun (kname, prog) ->
      List.iter
        (fun (mname, mode) ->
          let serial = mc_fingerprint ~jobs:1 ~mode prog in
          let par = mc_fingerprint ~jobs:4 ~mode prog in
          check_mc_equiv (Printf.sprintf "%s/%s" kname mname) serial par)
        [ ("multi", Sim.Multi); ("shuffle", Sim.Shuffle 20260807) ])
    [
      ("counter", Test_multicore.shared_counter_kernel ~harts:4 ~iters:25);
      ("lock", Test_multicore.lock_kernel ~harts:4 ~iters:20);
    ]

(* Single-core smoke under paging: partitions are just core 1 + uncore, the
   thinnest possible parallel split. *)
let test_smoke_equiv () =
  let prog = Spec_kernels.find "smoke" ~scale:1 in
  let fp jobs =
    let m =
      Machine.create ~paging:true ~jobs (Machine.Out_of_order Ooo.Config.riscyoo_b) prog
    in
    Alcotest.(check bool) "smoke parallel path" (jobs > 1) (Machine.parallel m);
    let o = Machine.run ~max_cycles:1_000_000 m in
    Alcotest.(check bool) "smoke completes" false o.Machine.timed_out;
    (o.Machine.cycles, Array.to_list o.Machine.exits, Machine.instrs m, Test_sched.fired_counts m)
  in
  List.iter
    (fun j -> check_mc_equiv (Printf.sprintf "smoke/jobs%d" j) (fp 1) (fp j))
    [ 2; 4 ]

(* One_per_cycle falls back to serial execution even at jobs=4; check the
   fall-back really is bit-identical on a smaller run. *)
let test_machine_equiv_opc () =
  let prog = Test_multicore.shared_counter_kernel ~harts:2 ~iters:5 in
  let serial = mc_fingerprint ~jobs:1 ~mode:Sim.One_per_cycle ~ncores:2 ~budget:20_000_000 prog in
  let par = mc_fingerprint ~jobs:4 ~mode:Sim.One_per_cycle ~ncores:2 ~budget:20_000_000 prog in
  check_mc_equiv "counter/one-per-cycle" serial par

(* The real processor's partition tagging is sound: a full audited run over
   the quad-core lock kernel and the single-core smoke kernel records every
   EHR/FIFO/wire touch per partition and finds no undeclared overlap. *)
let test_machine_audit_clean () =
  let prog = Test_multicore.lock_kernel ~harts:4 ~iters:20 in
  let m = Machine.create ~ncores:4 ~partition_audit:true (Machine.Out_of_order mc_cfg) prog in
  let o = Machine.run ~max_cycles:2_000_000 m in
  Alcotest.(check bool) "audited quad-core run completes" false o.Machine.timed_out;
  let smoke = Spec_kernels.find "smoke" ~scale:1 in
  let m =
    Machine.create ~paging:true ~partition_audit:true (Machine.Out_of_order Ooo.Config.riscyoo_b)
      smoke
  in
  let o = Machine.run ~max_cycles:1_000_000 m in
  Alcotest.(check bool) "audited smoke run completes" false o.Machine.timed_out

let test_machine_equiv_inorder () =
  let prog = Test_multicore.shared_counter_kernel ~harts:2 ~iters:30 in
  let fp jobs =
    let m =
      Machine.create ~ncores:2 ~jobs
        (Machine.In_order { mem = Test_multicore.small_mem; tlb = Tlb.Tlb_sys.blocking_config })
        prog
    in
    let o = Machine.run ~max_cycles:2_000_000 m in
    Alcotest.(check bool) "in-order run completes" false o.Machine.timed_out;
    (o.Machine.cycles, Array.to_list o.Machine.exits, Machine.instrs m, Test_sched.fired_counts m)
  in
  check_mc_equiv "inorder/multi" (fp 1) (fp 4)

(* Regression: [shutdown_pool] used to leave the interrupted generation's
   task queue behind, and the first worker of the respawned pool would claim
   a stale task — a cached per-cycle step closure of a machine that may have
   been mutated or discarded since. The shutdown now clears the queue, so
   tearing the pool down at any point between runs must neither disturb a
   live compiled sim's cached closures nor leak work into the next parallel
   generation. *)
let test_pool_shutdown_compiled_steps () =
  let run_with ~interrupt =
    let clk = Clock.create () in
    let e = Ehr.create ~name:"ps" 0 in
    let bump =
      Rule.make "bump"
        ~fp:[ Ehr.fp e ~label:"bump" [ (false, 0); (true, 0) ] ]
        ~total:true
        (fun ctx -> Ehr.write ctx e 0 (Ehr.read ctx e 0 + 1))
    in
    let sim = Sim.create clk [ bump ] in
    Alcotest.(check bool) "synthetic sim compiled" true (Sim.compiled sim);
    Sim.run sim 60;
    if interrupt then begin
      (* put real work through the pool, then kill it mid-session *)
      let t = make_toy ~jobs:4 2 in
      Sim.run t.sim 20;
      Sim.shutdown_pool ()
    end;
    (* the compiled sim keeps stepping through its cached closures *)
    Sim.run sim 40;
    Ehr.peek e
  in
  let clean = run_with ~interrupt:false in
  let interrupted = run_with ~interrupt:true in
  Alcotest.(check int) "compiled sim unaffected by pool shutdown" clean interrupted;
  Alcotest.(check int) "compiled rule fired every cycle" 100 interrupted;
  (* and the respawned pool starts from a blank slate: no stale task runs,
     the next parallel generation computes exactly a fresh toy's result *)
  let fresh = toy_fingerprint (make_toy ~jobs:4 2) 50 in
  Sim.shutdown_pool ();
  let after = toy_fingerprint (make_toy ~jobs:4 2) 50 in
  Alcotest.(check bool) "restarted pool == fresh pool" true (fresh = after)

(* Last test: tear the worker pool down (so later suites in this binary are
   not taxed by idle domains) and prove it respawns for another parallel run. *)
let test_pool_restart () =
  Sim.shutdown_pool ();
  let t = make_toy ~jobs:4 2 in
  Sim.run t.sim 50;
  Alcotest.(check bool) "parallel run works after pool shutdown" true (Ehr.peek t.acc > 0);
  Sim.shutdown_pool ()

let suite =
  [
    Alcotest.test_case "toy parallel == serial (all modes)" `Quick test_toy_equiv;
    Alcotest.test_case "parallel path engages" `Quick test_toy_parallel_active;
    Alcotest.test_case "checker rejects shared ring FIFO" `Quick test_checker_rejects_shared_fifo;
    Alcotest.test_case "checker rejects foreign watch" `Quick test_checker_rejects_foreign_watch;
    Alcotest.test_case "partition audit clean on legal design" `Quick test_audit_clean;
    Alcotest.test_case "partition audit catches overlap" `Quick test_audit_catches_overlap;
    Alcotest.test_case "stats shards merge to serial totals" `Quick test_stats_shards;
    Alcotest.test_case "machine parallel == serial (multi/shuffle)" `Slow test_machine_equiv;
    Alcotest.test_case "smoke parallel == serial (jobs 2/4)" `Slow test_smoke_equiv;
    Alcotest.test_case "machine one-per-cycle fallback identical" `Slow test_machine_equiv_opc;
    Alcotest.test_case "machine partition audit clean" `Slow test_machine_audit_clean;
    Alcotest.test_case "in-order machine parallel == serial" `Quick test_machine_equiv_inorder;
    Alcotest.test_case "pool shutdown leaves compiled steps intact" `Quick
      test_pool_shutdown_compiled_steps;
    Alcotest.test_case "worker pool survives shutdown/restart" `Quick test_pool_restart;
  ]
