(* Tests for the CMD kernel: guarded atomic rules, EHR port semantics,
   conflict detection, FIFO conflict matrices, scheduler serializability. *)

open Cmd

let rule = Rule.make

let test_reg_read_before_write () =
  let clk = Clock.create () in
  let r = Reg.create 1 in
  let seen = ref 0 in
  let rules =
    [
      rule "reader" (fun ctx -> seen := Reg.read ctx r);
      rule "writer" (fun ctx -> Reg.write ctx r 42);
    ]
  in
  let sim = Sim.create clk rules in
  ignore (Sim.cycle sim);
  Alcotest.(check int) "reader saw old value" 1 !seen;
  Alcotest.(check int) "write landed" 42 (Reg.peek r);
  ignore (Sim.cycle sim);
  Alcotest.(check int) "reader sees new value next cycle" 42 !seen

let test_reg_write_blocks_read () =
  (* writer listed first: the reader must not fire in the same cycle
     (read < write in the register's CM), but fires the next cycle. *)
  let clk = Clock.create () in
  let r = Reg.create 1 in
  let reads = ref [] in
  let wrote = ref false in
  let rules =
    [
      rule "writer" (fun ctx ->
          Kernel.guard ctx (not !wrote) "once";
          Reg.write ctx r 42;
          Kernel.on_abort ctx (fun () -> wrote := false);
          wrote := true);
      rule "reader" (fun ctx -> reads := Reg.read ctx r :: !reads);
    ]
  in
  let sim = Sim.create clk rules in
  ignore (Sim.cycle sim);
  Alcotest.(check (list int)) "no same-cycle read after write" [] !reads;
  ignore (Sim.cycle sim);
  Alcotest.(check (list int)) "read next cycle" [ 42 ] !reads

let test_double_write_conflict () =
  let clk = Clock.create () in
  let r = Reg.create 0 in
  let sim =
    Sim.create clk
      [
        rule "bad" (fun ctx ->
            Reg.write ctx r 1;
            Reg.write ctx r 2);
      ]
  in
  try
    ignore (Sim.cycle sim);
    Alcotest.fail "expected Conflict_error"
  with Kernel.Conflict_error _ -> ()

let test_ehr_forwarding () =
  (* w0 by an earlier rule is seen by r1 of a later rule in the same cycle. *)
  let clk = Clock.create () in
  let e = Ehr.create 0 in
  let seen = ref (-1) in
  let rules =
    [
      rule "w0" (fun ctx -> Ehr.write ctx e 0 7);
      rule "r1" (fun ctx -> seen := Ehr.read ctx e 1);
    ]
  in
  let sim = Sim.create clk rules in
  ignore (Sim.cycle sim);
  Alcotest.(check int) "r1 sees w0 same cycle" 7 !seen

let test_ehr_port_order_enforced () =
  (* r1 listed first, then w0: w0 after r1 requires port 0 >= 1 — conflict,
     so the writer stalls to the next cycle. *)
  let clk = Clock.create () in
  let e = Ehr.create 0 in
  let fired_both = ref false in
  let rules =
    [
      rule "r1" (fun ctx -> ignore (Ehr.read ctx e 1));
      rule "w0" (fun ctx ->
          Ehr.write ctx e 0 7;
          fired_both := true);
    ]
  in
  let sim = Sim.create clk rules in
  ignore (Sim.cycle sim);
  Alcotest.(check bool) "w0 blocked after r1" false !fired_both

let test_guard_atomicity () =
  (* A rule that writes one register and then hits a failing guard must leave
     no trace of the write. *)
  let clk = Clock.create () in
  let a = Reg.create 0 and b = Reg.create 0 in
  let rules =
    [
      rule "partial" (fun ctx ->
          Reg.write ctx a 99;
          Kernel.guard ctx (Reg.read ctx b > 0) "b not ready");
    ]
  in
  let sim = Sim.create clk rules in
  Sim.run sim 3;
  Alcotest.(check int) "write rolled back" 0 (Reg.peek a)

let test_attempt_partial () =
  let clk = Clock.create () in
  let a = Reg.create 0 and b = Reg.create 0 in
  let rules =
    [
      rule "two_ways" (fun ctx ->
          let (_ : unit option) = Kernel.attempt ctx (fun ctx -> Reg.write ctx a 1) in
          let (_ : unit option) =
            Kernel.attempt ctx (fun ctx ->
                Reg.write ctx b 2;
                Kernel.guard ctx false "never")
          in
          ());
    ]
  in
  let sim = Sim.create clk rules in
  ignore (Sim.cycle sim);
  Alcotest.(check int) "first way committed" 1 (Reg.peek a);
  Alcotest.(check int) "second way rolled back" 0 (Reg.peek b)

let test_config_reg_cf () =
  (* Reads are CF with the write: both orders fire in one cycle and reads see
     the cycle-start value. *)
  let clk = Clock.create () in
  let c = Config_reg.create clk 5 in
  let seen1 = ref 0 and seen2 = ref 0 in
  let rules =
    [
      rule "rd1" (fun ctx -> seen1 := Config_reg.read ctx c);
      rule "wr" (fun ctx -> Config_reg.write ctx c 9);
      rule "rd2" (fun ctx -> seen2 := Config_reg.read ctx c);
    ]
  in
  let sim = Sim.create clk rules in
  ignore (Sim.cycle sim);
  Alcotest.(check int) "read before write sees old" 5 !seen1;
  Alcotest.(check int) "read after write sees old (CF)" 5 !seen2;
  ignore (Sim.cycle sim);
  Alcotest.(check int) "next cycle sees new" 9 !seen1

let test_wire_bypass () =
  let clk = Clock.create () in
  let w = Wire.create clk () in
  let got = ref [] in
  let rules =
    [
      rule "set" (fun ctx -> Wire.set ctx w 3);
      rule "get" (fun ctx -> match Wire.get ctx w with Some v -> got := v :: !got | None -> ());
    ]
  in
  let sim = Sim.create clk rules in
  ignore (Sim.cycle sim);
  Alcotest.(check (list int)) "wire carries within cycle" [ 3 ] !got;
  let clk2 = Clock.create () in
  let w2 = Wire.create clk2 () in
  let got2 = ref 0 in
  let sim2 =
    Sim.create clk2
      [ rule "get" (fun ctx -> match Wire.get ctx w2 with Some _ -> incr got2 | None -> ()) ]
  in
  Sim.run sim2 2;
  Alcotest.(check int) "wire empty when never set" 0 !got2

(* --- FIFO conflict matrices ------------------------------------------- *)

let test_pipeline_fifo_full_deq_enq () =
  (* capacity 1, kept full; deq listed before enq: both fire every cycle. *)
  let clk = Clock.create () in
  let q = Fifo.pipeline ~capacity:1 () in
  let out = ref [] in
  let next = ref 100 in
  let rules =
    [
      rule "deq" (fun ctx -> out := Fifo.deq ctx q :: !out);
      rule "enq" (fun ctx ->
          Fifo.enq ctx q !next;
          let old = !next in
          Kernel.on_abort ctx (fun () -> next := old);
          incr next);
    ]
  in
  let sim = Sim.create clk rules in
  Sim.run sim 5;
  Alcotest.(check (list int)) "pipeline sustains full throughput" [ 103; 102; 101; 100 ]
    (List.filteri (fun i _ -> i < 4) !out)

let test_pipeline_fifo_no_passthrough () =
  (* empty pipeline FIFO: a deq cannot observe the same cycle's enq. *)
  let clk = Clock.create () in
  let q = Fifo.pipeline ~capacity:2 () in
  let out = ref [] in
  let enqd = ref false in
  let rules =
    [
      rule "enq" (fun ctx ->
          Kernel.guard ctx (not !enqd) "once";
          Fifo.enq ctx q 1;
          Kernel.on_abort ctx (fun () -> enqd := false);
          enqd := true);
      rule "deq" (fun ctx -> out := Fifo.deq ctx q :: !out);
    ]
  in
  let sim = Sim.create clk rules in
  ignore (Sim.cycle sim);
  Alcotest.(check (list int)) "no same-cycle passthrough" [] !out;
  ignore (Sim.cycle sim);
  Alcotest.(check bool) "dequeued next cycle" true (List.mem 1 !out)

let test_bypass_fifo_passthrough () =
  let clk = Clock.create () in
  let q = Fifo.bypass ~capacity:1 () in
  let out = ref [] in
  let rules =
    [
      rule "enq" (fun ctx -> Fifo.enq ctx q 1);
      rule "deq" (fun ctx -> out := Fifo.deq ctx q :: !out);
    ]
  in
  let sim = Sim.create clk rules in
  ignore (Sim.cycle sim);
  Alcotest.(check (list int)) "same-cycle passthrough" [ 1 ] !out

let test_cf_fifo_either_order () =
  let clk = Clock.create () in
  let q = Fifo.cf clk ~capacity:4 () in
  let out = ref [] in
  let next = ref 0 in
  let rules =
    [
      rule "deq" (fun ctx -> out := Fifo.deq ctx q :: !out);
      rule "enq" (fun ctx ->
          Fifo.enq ctx q !next;
          let old = !next in
          Kernel.on_abort ctx (fun () -> next := old);
          incr next);
    ]
  in
  let sim = Sim.create clk rules in
  Sim.run sim 10;
  let got = List.rev !out in
  Alcotest.(check (list int)) "FIFO order preserved" (List.init (List.length got) Fun.id) got;
  Alcotest.(check bool) "some elements flowed" true (List.length got >= 5)

let test_fifo_clear () =
  let clk = Clock.create () in
  let q = Fifo.pipeline ~capacity:4 () in
  let ctx = Kernel.make_ctx clk in
  Fifo.enq ctx q 1;
  Clock.tick clk;
  let ctx = Kernel.make_ctx clk in
  Fifo.enq ctx q 2;
  Fifo.clear ctx q;
  Alcotest.(check int) "cleared" 0 (Fifo.peek_size q);
  Clock.tick clk;
  let ctx = Kernel.make_ctx clk in
  Fifo.enq ctx q 3;
  Alcotest.(check (list int)) "usable after clear" [ 3 ] (Fifo.peek_list q)

let test_cf_fifo_multiport () =
  (* several enqueues and dequeues inside one atomic rule: the k-th op of a
     cycle uses EHR port k, so batches compose (the L2's unconditional
     response drain depends on this) *)
  let clk = Clock.create () in
  let q = Fifo.cf clk ~capacity:8 () in
  let drained = ref [] in
  let phase = ref `Fill in
  let rules =
    [
      rule "burst" (fun ctx ->
          match !phase with
          | `Fill ->
            for i = 1 to 5 do
              Fifo.enq ctx q i
            done;
            Kernel.on_abort ctx (fun () -> phase := `Fill);
            phase := `Drain
          | `Drain ->
            let rec go () =
              match Kernel.attempt ctx (fun ctx -> Fifo.deq ctx q) with
              | Some v ->
                drained := v :: !drained;
                go ()
              | None -> ()
            in
            go ();
            Kernel.on_abort ctx (fun () -> phase := `Drain);
            phase := `Done
          | `Done -> raise (Kernel.Guard_fail "done"));
    ]
  in
  let sim = Sim.create clk rules in
  Sim.run sim 3;
  Alcotest.(check (list int)) "burst drained in order" [ 1; 2; 3; 4; 5 ] (List.rev !drained)

(* --- Scheduler properties ---------------------------------------------- *)

(* Producer/consumer chain through a FIFO: under every scheduler mode, the
   consumer must observe exactly the sequence 0,1,2,... (no loss, duplication
   or reordering) — the paper's "behaviour equals one-rule-at-a-time". *)
let chain_property mode kind =
  let clk = Clock.create () in
  let cap = 3 in
  let q =
    match kind with
    | `P -> Fifo.pipeline ~capacity:cap ()
    | `B -> Fifo.bypass ~capacity:cap ()
    | `C -> Fifo.cf clk ~capacity:cap ()
  in
  let produced = ref 0 and consumed = ref [] in
  let rules =
    [
      rule "produce" (fun ctx ->
          Kernel.guard ctx (!produced < 50) "done";
          Fifo.enq ctx q !produced;
          let old = !produced in
          Kernel.on_abort ctx (fun () -> produced := old);
          incr produced);
      rule "consume" (fun ctx -> consumed := Fifo.deq ctx q :: !consumed);
    ]
  in
  let sim = Sim.create ~mode clk rules in
  Sim.run sim 500;
  List.rev !consumed = List.init 50 Fun.id

let test_chain_all_modes () =
  List.iter
    (fun (mname, mode) ->
      List.iter
        (fun (kname, kind) ->
          Alcotest.(check bool)
            (Printf.sprintf "chain intact: %s fifo under %s" kname mname)
            true (chain_property mode kind))
        [ ("pipeline", `P); ("bypass", `B); ("cf", `C) ])
    [ ("Multi", Sim.Multi); ("One_per_cycle", Sim.One_per_cycle); ("Shuffle", Sim.Shuffle 7) ]

(* qcheck: tokens moved across two FIFOs under random schedules are
   conserved. *)
let qcheck_token_conservation =
  QCheck.Test.make ~name:"token conservation under random schedules" ~count:50
    QCheck.(pair (int_bound 1000) (int_bound 3))
    (fun (seed, extra) ->
      let clk = Clock.create () in
      let q1 = Fifo.cf clk ~capacity:(2 + extra) () in
      let q2 = Fifo.pipeline ~capacity:(2 + extra) () in
      let src = ref 40 and sink = ref 0 in
      let rules =
        [
          rule "inject" (fun ctx ->
              Kernel.guard ctx (!src > 0) "spent";
              Fifo.enq ctx q1 1;
              let old = !src in
              Kernel.on_abort ctx (fun () -> src := old);
              decr src);
          rule "move" (fun ctx -> Fifo.enq ctx q2 (Fifo.deq ctx q1));
          rule "drain" (fun ctx ->
              let v = Fifo.deq ctx q2 in
              let old = !sink in
              Kernel.on_abort ctx (fun () -> sink := old);
              sink := !sink + v);
        ]
      in
      let sim = Sim.create ~mode:(Sim.Shuffle seed) clk rules in
      Sim.run sim 400;
      !sink = 40 && Fifo.peek_size q1 = 0 && Fifo.peek_size q2 = 0)

(* qcheck: EHR port semantics — writes at distinct ports plus one read; the
   read (scheduled last) fires iff no earlier write used a port >= its own,
   and then sees exactly the last write at a lower port. *)
let qcheck_ehr_ports =
  QCheck.Test.make ~name:"EHR read sees writes at lower ports only" ~count:100
    QCheck.(pair (list_of_size Gen.(1 -- 5) (int_bound 6)) (int_bound 7))
    (fun (wports, rport) ->
      let wports = List.sort_uniq compare wports in
      let clk = Clock.create () in
      let e = Ehr.create (-1) in
      let seen = ref None in
      let rules =
        List.map (fun p -> rule (Printf.sprintf "w%d" p) (fun ctx -> Ehr.write ctx e p p)) wports
        @ [ rule "r" (fun ctx -> seen := Some (Ehr.read ctx e rport)) ]
      in
      let sim = Sim.create clk rules in
      ignore (Sim.cycle sim);
      let lower = List.filter (fun p -> p < rport) wports in
      let blocked = List.exists (fun p -> p >= rport) wports in
      match !seen with
      | None -> blocked
      | Some v ->
        (not blocked)
        && (match List.rev lower with [] -> v = -1 | last :: _ -> v = last))

let qcheck_conflict_algebra =
  QCheck.Test.make ~name:"conflict algebra: join/flip laws" ~count:200
    QCheck.(pair (int_bound 3) (int_bound 3))
    (fun (a, b) ->
      let o = function 0 -> Conflict.C | 1 -> Conflict.Lt | 2 -> Conflict.Gt | _ -> Conflict.Cf in
      let a = o a and b = o b in
      Conflict.flip (Conflict.flip a) = a
      && Conflict.join a b = Conflict.join b a
      && Conflict.join a Conflict.Cf = a
      && Conflict.flip (Conflict.join a b) = Conflict.join (Conflict.flip a) (Conflict.flip b))

let test_ehr_order_matrix () =
  let open Conflict in
  Alcotest.(check string) "r0 vs w0" "<" (to_string (ehr_order (false, 0) (true, 0)));
  Alcotest.(check string) "w0 vs r0" ">" (to_string (ehr_order (true, 0) (false, 0)));
  Alcotest.(check string) "w0 vs r1" "<" (to_string (ehr_order (true, 0) (false, 1)));
  Alcotest.(check string) "w0 vs w0" "C" (to_string (ehr_order (true, 0) (true, 0)));
  Alcotest.(check string) "w0 vs w1" "<" (to_string (ehr_order (true, 0) (true, 1)));
  Alcotest.(check string) "r0 vs r5" "CF" (to_string (ehr_order (false, 0) (false, 5)))

let test_run_until () =
  let clk = Clock.create () in
  let c = Reg.create 0 in
  let rules = [ rule "inc" (fun ctx -> Reg.modify ctx c succ) ] in
  let sim = Sim.create clk rules in
  (match Sim.run_until sim ~max_cycles:100 (fun () -> Reg.peek c >= 10) with
  | `Done n -> Alcotest.(check int) "took 10 cycles" 10 n
  | `Timeout _ -> Alcotest.fail "timeout");
  match Sim.run_until sim ~max_cycles:5 (fun () -> Reg.peek c >= 1000) with
  | `Done _ -> Alcotest.fail "should time out"
  | `Timeout n -> Alcotest.(check int) "spent the whole budget" 5 n

(* Two sims built identically with the same Shuffle seed must produce the
   same trace (per-cycle fire counts and final state): campaigns and
   schedule-robustness tests rely on this determinism. *)
let test_shuffle_deterministic () =
  let build () =
    let clk = Clock.create () in
    let a = Reg.create 0 and b = Reg.create 0 and c = Reg.create 0 in
    let rules =
      [
        rule "inc-a" (fun ctx -> Reg.modify ctx a succ);
        rule "a-to-b" (fun ctx -> Reg.write ctx b (Reg.read ctx a * 2));
        rule "b-to-c" (fun ctx -> Reg.write ctx c (Reg.read ctx b + Reg.read ctx c));
        rule "gated" (fun ctx ->
            Kernel.guard ctx (Reg.read ctx a mod 3 = 0) "mod3";
            Reg.modify ctx c succ);
      ]
    in
    let sim = Sim.create ~mode:(Sim.Shuffle 42) clk rules in
    let trace = List.init 50 (fun _ -> Sim.cycle sim) in
    (trace, Reg.peek a, Reg.peek b, Reg.peek c)
  in
  let t1 = build () and t2 = build () in
  Alcotest.(check bool) "identical traces under one seed" true (t1 = t2)

let test_one_per_cycle_fairness () =
  (* three always-ready rules, 9 cycles: the rotating start offset must give
     each exactly 3 firings (a fixed order would starve the later ones) *)
  let clk = Clock.create () in
  let counts = Array.make 3 0 in
  let rules =
    List.init 3 (fun i -> rule (Printf.sprintf "r%d" i) (fun _ -> counts.(i) <- counts.(i) + 1))
  in
  let sim = Sim.create ~mode:Sim.One_per_cycle clk rules in
  Sim.run sim 9;
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "rule %d fired 3 times" i) 3 c)
    counts

let test_watchdog_trip_and_reset () =
  let clk = Clock.create () in
  let budget = ref 5 in
  let rules =
    [
      rule "pump" (fun ctx ->
          Kernel.guard ctx (!budget > 0) "dry";
          Mut.field ctx ~get:(fun () -> !budget) ~set:(fun v -> budget := v) (!budget - 1));
    ]
  in
  let sim = Sim.create clk rules in
  let wd = Verif.Watchdog.attach ~history:8 ~limit:8 sim in
  (* fires 5 cycles, then guard-fails forever: idle streak starts at cycle 5
     and the trip must come exactly 8 idle cycles later *)
  (match Sim.run_until sim ~max_cycles:100 (fun () -> false) with
  | `Done _ | `Timeout _ -> Alcotest.fail "watchdog never tripped"
  | exception Verif.Watchdog.Trip info ->
    Alcotest.(check int) "tripped after 5 live + 8 idle cycles" 13 info.at_cycle;
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "report names the starved rule" true (contains info.report "pump");
    Alcotest.(check bool) "report carries guard-fail counts" true
      (contains info.report "guard-failed"));
  Alcotest.(check int) "one trip recorded" 1 (Verif.Watchdog.trips wd);
  (* catching re-arms a full window: the next trip takes 8 more cycles *)
  (match Sim.run_until sim ~max_cycles:100 (fun () -> false) with
  | `Done _ | `Timeout _ -> Alcotest.fail "watchdog did not re-trip"
  | exception Verif.Watchdog.Trip info ->
    Alcotest.(check int) "re-tripped a full window later" 21 info.at_cycle);
  Alcotest.(check int) "two trips recorded" 2 (Verif.Watchdog.trips wd)

let test_inject_registry () =
  (* disarmed: registration is a no-op *)
  Inject.disarm ();
  let r0 = Reg.create 7 in
  ignore r0;
  Alcotest.(check int) "disarmed registers nothing" 0 (Inject.n_sites ());
  (* armed: every Reg/Ehr/Fifo cell becomes a site, and firing a bit flips
     the live value *)
  Inject.arm ();
  let r = Reg.create ~name:"target" 0 in
  let sites = Inject.sites () in
  Inject.disarm ();
  Alcotest.(check bool) "site registered" true (Array.length sites >= 1);
  let site =
    match Array.to_list sites |> List.find_opt (fun s -> s.Inject.name = "target") with
    | Some s -> s
    | None -> Alcotest.fail "named site missing"
  in
  Alcotest.(check bool) "flip applied" true (Inject.fire site 3);
  Alcotest.(check int) "bit 3 flipped" 8 (Reg.peek r);
  Alcotest.(check bool) "flip back" true (Inject.fire site 3);
  Alcotest.(check int) "restored" 0 (Reg.peek r)

let suite =
  let t = Alcotest.test_case in
  [
    t "reg: read < write" `Quick test_reg_read_before_write;
    t "reg: write blocks later read" `Quick test_reg_write_blocks_read;
    t "reg: double write is a design error" `Quick test_double_write_conflict;
    t "ehr: forwarding through ports" `Quick test_ehr_forwarding;
    t "ehr: port order enforced" `Quick test_ehr_port_order_enforced;
    t "guard failure rolls back" `Quick test_guard_atomicity;
    t "attempt: partial ways" `Quick test_attempt_partial;
    t "config reg: read CF write" `Quick test_config_reg_cf;
    t "wire: intra-cycle bypass" `Quick test_wire_bypass;
    t "pipeline fifo: deq<enq when full" `Quick test_pipeline_fifo_full_deq_enq;
    t "pipeline fifo: no passthrough" `Quick test_pipeline_fifo_no_passthrough;
    t "bypass fifo: passthrough" `Quick test_bypass_fifo_passthrough;
    t "cf fifo: either order" `Quick test_cf_fifo_either_order;
    t "fifo: clear" `Quick test_fifo_clear;
    t "cf fifo: multi-ported bursts" `Quick test_cf_fifo_multiport;
    t "chain intact under all modes" `Quick test_chain_all_modes;
    t "conflict: EHR order matrix" `Quick test_ehr_order_matrix;
    t "sim: run_until" `Quick test_run_until;
    t "sim: shuffle deterministic under seed" `Quick test_shuffle_deterministic;
    t "sim: one-per-cycle round-robin fairness" `Quick test_one_per_cycle_fairness;
    t "watchdog: trip, report, re-arm" `Quick test_watchdog_trip_and_reset;
    t "inject: registry arm/fire/disarm" `Quick test_inject_registry;
    QCheck_alcotest.to_alcotest qcheck_token_conservation;
    QCheck_alcotest.to_alcotest qcheck_ehr_ports;
    QCheck_alcotest.to_alcotest qcheck_conflict_algebra;
  ]
