(* Tests for the coherent memory hierarchy: L1 D/I caches, crossbar, the MSI
   directory L2, DRAM latency, and the walker port. *)

open Cmd
open Mem

let i64 = Alcotest.testable (Fmt.fmt "%Ld") Int64.equal
let base = Isa.Addr_map.dram_base

let small_config =
  {
    Mem_sys.l1d_bytes = 1024;
    l1d_ways = 2;
    l1d_mshrs = 4;
    l1i_bytes = 1024;
    l1i_ways = 2;
    l2_bytes = 4096;
    l2_ways = 2;
    l2_mshrs = 4;
    l2_latency = 4;
    mesi = false;
    mem_latency = 20;
    mem_inflight = 4;
    l2_banks = 1;
    lookahead_override = None;
  }

type harness = { sim : Sim.t; ms : Mem_sys.t; pmem : Isa.Phys_mem.t; hstats : Stats.t }

let make ?(ncores = 1) ?(config = small_config) () =
  let clk = Clock.create () in
  let pmem = Isa.Phys_mem.create () in
  let stats = Stats.create () in
  let ms = Mem_sys.create clk pmem config ~ncores ~fetch_width:2 ~stats in
  let sim = Sim.create clk (Mem_sys.rules ms) in
  { sim; ms; pmem; hstats = stats }

(* Run one driver action in its own transaction at the head of the cycle,
   then fire all the cache rules. *)
let cycle_with h f =
  let ctx = Kernel.make_ctx (Sim.clock h.sim) in
  Kernel.set_rule_name ctx "driver";
  let r = Kernel.attempt ctx f in
  ignore (Sim.cycle h.sim);
  r

let rec wait_for ?(max = 2000) h f =
  if max = 0 then Alcotest.fail "memory op timed out"
  else
    match cycle_with h f with
    | Some v -> v
    | None -> wait_for ~max:(max - 1) h f

(* Blocking load through core [c]'s L1 D. *)
let load h c addr =
  let d = Mem_sys.dcache h.ms c in
  ignore
    (wait_for h (fun ctx ->
         L1_dcache.req ctx d (L1_dcache.Ld { tag = 0; addr; bytes = 8; unsigned = false })));
  let _, v = wait_for h (fun ctx -> L1_dcache.resp_ld ctx d) in
  v

(* Blocking store through core [c]'s L1 D, using the St/resp_st/write_data
   protocol with a full-line masked write. *)
let store h c addr v =
  let d = Mem_sys.dcache h.ms c in
  let line = Cache_geom.line_addr addr in
  ignore (wait_for h (fun ctx -> L1_dcache.req ctx d (L1_dcache.St { tag = 1; line })));
  let _ = wait_for h (fun ctx -> L1_dcache.resp_st ctx d) in
  let data = Bytes.make Cache_geom.line_bytes '\000' in
  let off = Cache_geom.offset addr in
  Bytes.set_int64_le data off v;
  let mask = Int64.shift_left 0xFFL off in
  ignore (wait_for h (fun ctx -> L1_dcache.write_data ctx d ~line ~data ~mask))

let test_load_miss_then_hit () =
  let h = make () in
  Isa.Phys_mem.store h.pmem ~bytes:8 base 0xABCDL;
  let t0 = Sim.cycles h.sim in
  Alcotest.check i64 "load value" 0xABCDL (load h 0 base);
  let miss_cycles = Sim.cycles h.sim - t0 in
  Alcotest.(check bool)
    (Printf.sprintf "miss paid dram latency (%d cycles)" miss_cycles)
    true (miss_cycles >= 20);
  let t1 = Sim.cycles h.sim in
  Alcotest.check i64 "hit value" 0xABCDL (load h 0 base);
  let hit_cycles = Sim.cycles h.sim - t1 in
  Alcotest.(check bool) (Printf.sprintf "hit fast (%d cycles)" hit_cycles) true (hit_cycles < 10)

let test_store_then_load () =
  let h = make () in
  store h 0 base 42L;
  Alcotest.check i64 "own store visible" 42L (load h 0 base);
  store h 0 (Int64.add base 8L) 43L;
  Alcotest.check i64 "second store" 43L (load h 0 (Int64.add base 8L));
  Alcotest.check i64 "first still there" 42L (load h 0 base)

let test_eviction_writeback () =
  let h = make () in
  store h 0 base 7L;
  (* small L1 (1KB/2way/64B = 8 sets): lines mapping to the same set are
     64*8=512 bytes apart; touch 3 of them to force the dirty line out *)
  let stride = 512L in
  ignore (load h 0 (Int64.add base stride));
  ignore (load h 0 (Int64.add base (Int64.mul stride 2L)));
  ignore (load h 0 (Int64.add base (Int64.mul stride 3L)));
  Alcotest.(check string)
    "dirty line left L1" "I"
    (Msg.state_to_string (L1_dcache.peek_state (Mem_sys.dcache h.ms 0) base));
  Alcotest.check i64 "value survives writeback" 7L (load h 0 base)

let test_coherence_two_cores () =
  let h = make ~ncores:2 () in
  store h 0 base 1L;
  Alcotest.check i64 "core1 sees core0's store" 1L (load h 1 base);
  store h 1 base 2L;
  Alcotest.check i64 "core0 sees core1's store" 2L (load h 0 base);
  (* core0's copy must have been invalidated before core1 got M *)
  store h 0 base 3L;
  store h 1 base 4L;
  Alcotest.check i64 "last writer wins" 4L (load h 0 base)

let test_icache_fetch () =
  let h = make () in
  Isa.Phys_mem.store h.pmem ~bytes:4 base 0x11223344L;
  Isa.Phys_mem.store h.pmem ~bytes:4 (Int64.add base 4L) 0x55667788L;
  let ic = Mem_sys.icache h.ms 0 in
  ignore (wait_for h (fun ctx -> L1_icache.req ctx ic ~tag:9 base));
  let tag, pc, words = wait_for h (fun ctx -> L1_icache.resp ctx ic) in
  Alcotest.(check int) "tag" 9 tag;
  Alcotest.check i64 "pc" base pc;
  Alcotest.(check int) "word0" 0x11223344 words.(0);
  Alcotest.(check int) "word1" 0x55667788 words.(1)

let test_walker_sees_dirty_data () =
  let h = make () in
  (* core 0 holds the line in M with a fresh value; a page walk through the
     L2 port must still observe it (coherent walks) *)
  store h 0 base 0xFEEDL;
  let l2 = Mem_sys.l2 h.ms in
  ignore (wait_for h (fun ctx -> L2_cache.walk_req ctx l2 ~tag:5 base));
  let tag, v = wait_for h (fun ctx -> L2_cache.walk_resp ctx l2) in
  Alcotest.(check int) "walk tag" 5 tag;
  Alcotest.check i64 "walk sees M data" 0xFEEDL v;
  (* and core 0 can write again afterwards (it was downgraded to S, not I) *)
  store h 0 base 0xBEEFL;
  Alcotest.check i64 "store after walk" 0xBEEFL (load h 0 base)

let test_parallel_misses () =
  (* non-blocking: issue several loads to distinct lines back to back, then
     collect all responses; total time must be far below serial latency *)
  let h = make () in
  let n = 4 in
  let d = Mem_sys.dcache h.ms 0 in
  for k = 0 to n - 1 do
    Isa.Phys_mem.store h.pmem ~bytes:8 (Int64.add base (Int64.of_int (k * 64))) (Int64.of_int k)
  done;
  let t0 = Sim.cycles h.sim in
  for k = 0 to n - 1 do
    ignore
      (wait_for h (fun ctx ->
           L1_dcache.req ctx d
             (L1_dcache.Ld
                { tag = k; addr = Int64.add base (Int64.of_int (k * 64)); bytes = 8; unsigned = false })))
  done;
  let got = Array.make n (-1L) in
  for _ = 0 to n - 1 do
    let tag, v = wait_for h (fun ctx -> L1_dcache.resp_ld ctx d) in
    got.(tag) <- v
  done;
  let elapsed = Sim.cycles h.sim - t0 in
  Array.iteri (fun k v -> Alcotest.check i64 (Printf.sprintf "resp %d" k) (Int64.of_int k) v) got;
  Alcotest.(check bool)
    (Printf.sprintf "misses overlapped (%d cycles)" elapsed)
    true
    (elapsed < (20 * n) + 15)

let test_amo_through_cache () =
  let h = make () in
  store h 0 base 10L;
  let d = Mem_sys.dcache h.ms 0 in
  let f old = (Some (Int64.add old 5L), old) in
  ignore (wait_for h (fun ctx -> L1_dcache.req ctx d (L1_dcache.At { tag = 3; addr = base; bytes = 8; f })));
  let tag, old = wait_for h (fun ctx -> L1_dcache.resp_at ctx d) in
  Alcotest.(check int) "amo tag" 3 tag;
  Alcotest.check i64 "amo returns old" 10L old;
  Alcotest.check i64 "amo stored" 15L (load h 0 base)

let test_l2_recall () =
  (* L2 is inclusive: evicting an L2 victim must recall it from the L1s
     first. Tiny L2 (4KB, 2-way, 32 sets): lines 2KB apart share a set. *)
  let h = make ~ncores:2 () in
  let a0 = base in
  let a1 = Int64.add base 2048L in
  let a2 = Int64.add base 4096L in
  store h 0 a0 111L;
  store h 1 a1 222L;
  (* third same-set line forces an L2 eviction and a recall of a dirty L1
     line *)
  store h 0 a2 333L;
  Alcotest.(check bool) "recalls happened" true (Stats.find h.hstats "l2.recalls" > 0);
  Alcotest.check i64 "recalled dirty data survives" 111L (load h 1 a0);
  Alcotest.check i64 "second line" 222L (load h 0 a1);
  Alcotest.check i64 "third line" 333L (load h 1 a2)

(* --- MESI extension ------------------------------------------------------ *)

let mesi_config = { small_config with Mem_sys.mesi = true }

let test_mesi_e_grant () =
  let h = make ~config:mesi_config () in
  (* an unshared read is granted exclusive-clean *)
  ignore (load h 0 base);
  Alcotest.(check string) "E on unshared read" "E"
    (Msg.state_to_string (L1_dcache.peek_state (Mem_sys.dcache h.ms 0) base));
  (* the first store hits silently: no second parent transaction *)
  let misses_before = Stats.find h.hstats "c0.l1d.misses" in
  store h 0 base 5L;
  let misses_after = Stats.find h.hstats "c0.l1d.misses" in
  Alcotest.(check int) "store after E costs no miss" misses_before misses_after;
  Alcotest.(check string) "silently M" "M"
    (Msg.state_to_string (L1_dcache.peek_state (Mem_sys.dcache h.ms 0) base));
  Alcotest.check i64 "value" 5L (load h 0 base)

let test_mesi_shared_read_no_e () =
  let h = make ~ncores:2 ~config:mesi_config () in
  ignore (load h 0 base);
  ignore (load h 1 base);
  (* the second reader must not leave two exclusive copies *)
  let s0 = Msg.state_to_string (L1_dcache.peek_state (Mem_sys.dcache h.ms 0) base) in
  let s1 = Msg.state_to_string (L1_dcache.peek_state (Mem_sys.dcache h.ms 1) base) in
  Alcotest.(check string) "second reader shared" "S" s1;
  Alcotest.(check bool) (Printf.sprintf "first demoted (%s)" s0) true (s0 = "S" || s0 = "I");
  (* silent-M detection: core0 writes (upgrade), core1 must still see it *)
  store h 0 base 9L;
  Alcotest.check i64 "coherent after upgrade" 9L (load h 1 base)

let test_mesi_silent_m_recall () =
  let h = make ~ncores:2 ~config:mesi_config () in
  ignore (load h 0 base);
  (* E at core0; silent write makes it M behind the directory's back *)
  store h 0 base 0x77L;
  (* core1's read must recall the silently-dirty data *)
  Alcotest.check i64 "silently dirty data recalled" 0x77L (load h 1 base)

(* Randomized two-core sequential traffic against a flat-memory oracle. *)
let qcheck_coherence_oracle =
  QCheck.Test.make ~name:"coherence matches flat-memory oracle (MSI + MESI)" ~count:12
    QCheck.(pair (int_bound 10000) (int_bound 1))
    (fun (seed, mesi) ->
      let rng = Random.State.make [| seed |] in
      let h = make ~ncores:2 ~config:(if mesi = 1 then mesi_config else small_config) () in
      let oracle = Hashtbl.create 64 in
      let addrs = Array.init 8 (fun k -> Int64.add base (Int64.of_int (k * 192))) in
      let ok = ref true in
      for _ = 1 to 60 do
        let c = Random.State.int rng 2 in
        let a = addrs.(Random.State.int rng (Array.length addrs)) in
        if Random.State.bool rng then begin
          let v = Int64.of_int (Random.State.int rng 1_000_000) in
          store h c a v;
          Hashtbl.replace oracle a v
        end
        else begin
          let expect = match Hashtbl.find_opt oracle a with Some v -> v | None -> 0L in
          if load h c a <> expect then ok := false
        end
      done;
      !ok)

let suite =
  let t = Alcotest.test_case in
  [
    t "load: miss then hit" `Quick test_load_miss_then_hit;
    t "store: st/resp/write_data protocol" `Quick test_store_then_load;
    t "eviction: dirty writeback" `Quick test_eviction_writeback;
    t "coherence: two cores" `Quick test_coherence_two_cores;
    t "icache: fetch words" `Quick test_icache_fetch;
    t "walker: coherent page-walk reads" `Quick test_walker_sees_dirty_data;
    t "mshr: parallel misses overlap" `Quick test_parallel_misses;
    t "amo: read-modify-write in cache" `Quick test_amo_through_cache;
    t "mesi: E grant + silent store" `Quick test_mesi_e_grant;
    t "mesi: shared read is not exclusive" `Quick test_mesi_shared_read_no_e;
    t "mesi: silent-M recall" `Quick test_mesi_silent_m_recall;
    t "l2: inclusive eviction recalls children" `Quick test_l2_recall;
    QCheck_alcotest.to_alcotest qcheck_coherence_oracle;
  ]
