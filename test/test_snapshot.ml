(* Machine snapshot/restore: bit-identity of the round trip, rejection of
   corrupt or mismatched images, and the warm-fork path the simulation farm
   builds on.

   "Bit-identical" is checked on everything the scheduler and cores expose:
   final cycle count, committed instructions, exit codes, console output and
   the per-rule fire counts — if any rule fired a different number of times
   after the restore, the machines diverged. *)

open Workloads

let i64 = Alcotest.testable (Fmt.fmt "%Ld") Int64.equal

let small_cfg =
  {
    Ooo.Config.riscyoo_b with
    Ooo.Config.mem =
      {
        Mem.Mem_sys.l1d_bytes = 4096;
        l1d_ways = 2;
        l1d_mshrs = 4;
        l1i_bytes = 4096;
        l1i_ways = 2;
        l2_bytes = 32768;
        l2_ways = 4;
        l2_mshrs = 8;
        l2_latency = 4;
        mesi = false;
        mem_latency = 24;
        mem_inflight = 8;
        l2_banks = 1;
        lookahead_override = None;
      };
    tlb = Tlb.Tlb_sys.nonblocking_config;
  }

type fingerprint = {
  f_cycles : int;
  f_instrs : int;
  f_exits : int64 array;
  f_console : string;
  f_fires : (string * int) list;
}

let rule_fires m =
  (* per-rule fire counts, name-keyed; names are unique per machine *)
  List.map (fun r -> (r.Cmd.Rule.name, r.Cmd.Rule.fired)) (Machine.rule_list m)

let finish m =
  let o = Machine.run ~max_cycles:10_000_000 m in
  Alcotest.(check bool) "run completes" false o.Machine.timed_out;
  {
    f_cycles = o.Machine.cycles;
    f_instrs = Machine.instrs m;
    f_exits = o.Machine.exits;
    f_console = Machine.console m;
    f_fires = rule_fires m;
  }

let check_fingerprint name a b =
  Alcotest.(check int) (name ^ ": cycles") a.f_cycles b.f_cycles;
  Alcotest.(check int) (name ^ ": instret") a.f_instrs b.f_instrs;
  Alcotest.(check (array i64)) (name ^ ": exits") a.f_exits b.f_exits;
  Alcotest.(check string) (name ^ ": console") a.f_console b.f_console;
  Alcotest.(check (list (pair string int))) (name ^ ": per-rule fires") a.f_fires b.f_fires

(* Snapshot machine [a] at cycle [at], restore into a fresh machine built by
   [mk ~jobs:restore_jobs], run both to completion, compare fingerprints. *)
let round_trip ?(restore_jobs = 1) name mk ~at =
  let a = mk ~jobs:1 in
  let o = Machine.run ~max_cycles:at a in
  Alcotest.(check bool) (name ^ ": still running at snapshot point") true o.Machine.timed_out;
  let img = Machine.snapshot a in
  let fa = finish a in
  let b = mk ~jobs:restore_jobs in
  Machine.restore b img;
  let fb = finish b in
  check_fingerprint name fa fb;
  String.length img

let test_roundtrip_smoke () =
  let mk ~jobs =
    Machine.create ~jobs (Machine.Out_of_order small_cfg) (Spec_kernels.find "gcc" ~scale:1)
  in
  ignore (round_trip "gcc/1-core" mk ~at:2_000)

let test_roundtrip_quad () =
  let prog = Parsec_kernels.find "blackscholes" ~harts:4 ~scale:1 in
  let cfg =
    { (Ooo.Config.multicore Ooo.Config.WMM) with Ooo.Config.mem = small_cfg.Ooo.Config.mem }
  in
  let mk ~jobs = Machine.create ~ncores:4 ~jobs (Machine.Out_of_order cfg) prog in
  (* restore into a domain-parallel machine: the image must be jobs-agnostic *)
  ignore (round_trip "blackscholes/quad jobs:1" mk ~at:3_000);
  ignore (round_trip "blackscholes/quad jobs:4" ~restore_jobs:4 mk ~at:3_000)

let test_roundtrip_inorder_golden () =
  (* the registry covers the other machine kinds too *)
  let prog = Spec_kernels.find "mcf" ~scale:1 in
  let mk_io ~jobs =
    Machine.create ~jobs
      (Machine.In_order { mem = small_cfg.Ooo.Config.mem; tlb = Tlb.Tlb_sys.blocking_config })
      prog
  in
  ignore (round_trip "mcf/in-order" mk_io ~at:2_000);
  let g = Machine.create Machine.Golden_only prog in
  let o = Machine.run ~max_cycles:1_000 g in
  Alcotest.(check bool) "golden still running" true o.Machine.timed_out;
  let img = Machine.snapshot g in
  let fa = finish g in
  let g2 = Machine.create Machine.Golden_only prog in
  Machine.restore g2 img;
  let fb = finish g2 in
  check_fingerprint "mcf/golden" fa fb

let test_roundtrip_cosim_paging () =
  (* cosim registers the lockstep golden model's private memory too; a
     restored machine must keep passing the commit-by-commit comparison *)
  let mk ~jobs =
    Machine.create ~jobs ~paging:true ~cosim:true (Machine.Out_of_order small_cfg)
      (Spec_kernels.find "omnetpp" ~scale:1)
  in
  ignore (round_trip "omnetpp/cosim+paging" mk ~at:2_000)

let expect_error name f =
  match f () with
  | exception Cmd.State.Error _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Cmd.State.Error")

let test_rejects_bad_images () =
  let prog = Spec_kernels.find "gcc" ~scale:1 in
  let mk () = Machine.create (Machine.Out_of_order small_cfg) prog in
  let m = mk () in
  ignore (Machine.run ~max_cycles:1_000 m);
  let img = Machine.snapshot m in
  (* truncated: mid-payload, mid-header, empty *)
  expect_error "truncated payload" (fun () ->
      Machine.restore (mk ()) (String.sub img 0 (String.length img - 7)));
  expect_error "truncated header" (fun () -> Machine.restore (mk ()) (String.sub img 0 20));
  expect_error "empty" (fun () -> Machine.restore (mk ()) "");
  (* corrupted: flip one payload byte *)
  let corrupt = Bytes.of_string img in
  let pos = String.length img - 100 in
  Bytes.set corrupt pos (Char.chr (Char.code (Bytes.get corrupt pos) lxor 0x40));
  expect_error "corrupt payload" (fun () -> Machine.restore (mk ()) (Bytes.to_string corrupt));
  (* not an image at all *)
  expect_error "garbage" (fun () -> Machine.restore (mk ()) (String.make 4096 'x'));
  (* configuration mismatches: different program, different core count,
     different microarchitecture *)
  expect_error "different program" (fun () ->
      Machine.restore (Machine.create (Machine.Out_of_order small_cfg) (Spec_kernels.find "mcf" ~scale:1)) img);
  expect_error "different ncores" (fun () ->
      Machine.restore (Machine.create ~ncores:2 (Machine.Out_of_order small_cfg) prog) img);
  expect_error "different config" (fun () ->
      Machine.restore
        (Machine.create (Machine.Out_of_order { small_cfg with Ooo.Config.rob_size = 32 }) prog)
        img);
  (* the machine that produced the image still restores it *)
  Machine.restore (mk ()) img

let test_warm_fork () =
  (* One cycle-0 snapshot of a Shuffle-mode machine, forked across seeds:
     restore + reseed must be schedule-identical to a cold build with that
     seed. This is the farm's warm-start path. *)
  let prog = Spec_kernels.find "gcc" ~scale:1 in
  let mk seed = Machine.create ~mode:(Cmd.Sim.Shuffle seed) (Machine.Out_of_order small_cfg) prog in
  let warm = Machine.snapshot (mk 1) in
  List.iter
    (fun seed ->
      let cold = finish (mk seed) in
      let forked = mk 999 in
      Machine.restore forked warm;
      Machine.reseed_schedule forked seed;
      let f = finish forked in
      check_fingerprint (Printf.sprintf "warm fork seed %d" seed) cold f)
    [ 1; 7; 42 ]

let test_warm_reuse () =
  (* The farm restores the SAME cached machine over and over, one seed after
     another. A reused machine must behave exactly like a virgin one —
     regression test for the kernel's per-cycle cell summaries aliasing a
     stale stamp when the restored clock catches back up to a cycle number
     an earlier run had stamped (Clock.uid vs Clock.now). *)
  let prog = Spec_kernels.find "gcc" ~scale:1 in
  let mk seed = Machine.create ~mode:(Cmd.Sim.Shuffle seed) (Machine.Out_of_order small_cfg) prog in
  let m = mk 1 in
  let warm = Machine.snapshot m in
  List.iter
    (fun seed ->
      let cold = finish (mk seed) in
      Machine.restore m warm;
      Machine.reseed_schedule m seed;
      let f = finish m in
      check_fingerprint (Printf.sprintf "warm reuse seed %d" seed) cold f)
    [ 3; 1; 7; 3 ]

let test_snapshot_stats () =
  (* counters travel with the image: after restore, stats match *)
  let prog = Spec_kernels.find "gcc" ~scale:1 in
  let mk () = Machine.create (Machine.Out_of_order small_cfg) prog in
  let a = mk () in
  ignore (Machine.run ~max_cycles:2_000 a);
  let img = Machine.snapshot a in
  let b = mk () in
  Machine.restore b img;
  Alcotest.(check int) "instret after restore" (Machine.instrs a) (Machine.instrs b);
  Alcotest.(check int)
    "a committed counter after restore"
    (Machine.find_stat a "c0.instrs")
    (Machine.find_stat b "c0.instrs")

let suite =
  let t = Alcotest.test_case in
  [
    t "round trip: gcc on 1 core" `Quick test_roundtrip_smoke;
    t "round trip: blackscholes on quad (jobs 1 and 4)" `Slow test_roundtrip_quad;
    t "round trip: in-order and golden kinds" `Quick test_roundtrip_inorder_golden;
    t "round trip: cosim + paging" `Slow test_roundtrip_cosim_paging;
    t "rejects corrupt and mismatched images" `Quick test_rejects_bad_images;
    t "warm fork across shuffle seeds" `Quick test_warm_fork;
    t "warm reuse of one machine across seeds" `Quick test_warm_reuse;
    t "stats travel with the image" `Quick test_snapshot_stats;
  ]
