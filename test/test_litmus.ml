(* Litmus subsystem: reference-model facts (well-established memory-model
   litmus results, asserted by hand against the operational enumerator) and
   quick DUT sweeps of the classic suite on the real multicore machine. *)

open Litmus

(* CI runs this suite at RISCYOO_JOBS=1 and =4; results must not depend on it. *)
let jobs =
  match Option.bind (Sys.getenv_opt "RISCYOO_JOBS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> 1

let allowed m t = Ref_model.allowed t ~model:m
let mem set o = Ref_model.is_allowed set o
let subset a b = List.for_all (mem b) a

(* --- reference engine ----------------------------------------------------- *)

(* The outcome sets must nest: every SC execution is a TSO execution, every
   TSO execution a WMM one. *)
let test_sets_nest () =
  List.iter
    (fun t ->
      let sc = allowed Ref_model.SC t
      and tso = allowed Ref_model.TSO t
      and wmm = allowed Ref_model.WMM t in
      Alcotest.(check bool) (t.Test.name ^ ": SC in TSO") true (subset sc tso);
      Alcotest.(check bool) (t.Test.name ^ ": TSO in WMM") true (subset tso wmm);
      Alcotest.(check bool) (t.Test.name ^ ": SC nonempty") true (sc <> []))
    Test.all

(* Hand-checked classics. Outcome layout: thread 0's observed registers
   (ascending), thread 1's, ..., then final location values in sorted
   location order. *)
let test_facts () =
  let chk name set o want =
    Alcotest.(check bool) name want (mem set o)
  in
  let sc t = allowed Ref_model.SC t
  and tso t = allowed Ref_model.TSO t
  and wmm t = allowed Ref_model.WMM t in
  (* SB: both loads 0 is the store-buffering outcome - non-SC, allowed TSO *)
  let sb_relaxed = [| 0; 0; 1; 1 |] in
  chk "SB relaxed not SC" (sc Test.sb) sb_relaxed false;
  chk "SB relaxed in TSO" (tso Test.sb) sb_relaxed true;
  chk "SB relaxed in WMM" (wmm Test.sb) sb_relaxed true;
  chk "SB+fence kills it" (wmm Test.sb_fence) sb_relaxed false;
  (* MP: flag seen, payload stale - needs ld-ld or st-st reordering *)
  let mp_relaxed = [| 1; 0; 1; 1 |] in
  chk "MP relaxed not TSO" (tso Test.mp) mp_relaxed false;
  chk "MP relaxed in WMM" (wmm Test.mp) mp_relaxed true;
  chk "MP+fence kills it" (wmm Test.mp_fence) mp_relaxed false;
  (* LB: r=1 on both sides needs load-store reordering WMM also forbids *)
  chk "LB relaxed not WMM" (wmm Test.lb) [| 1; 1; 1; 1 |] false;
  (* S: W-W reordering makes the overwritten store win *)
  let s_relaxed = [| 1; 2; 1 |] in
  chk "S relaxed not TSO" (tso Test.s) s_relaxed false;
  chk "S relaxed in WMM" (wmm Test.s) s_relaxed true;
  (* 2+2W: both first writes last *)
  let w_relaxed = [| 1; 1 |] in
  chk "2+2W relaxed not TSO" (tso Test.w2plus2) w_relaxed false;
  chk "2+2W relaxed in WMM" (wmm Test.w2plus2) w_relaxed true;
  (* coherence holds even under WMM *)
  chk "CoRR backwards not WMM" (wmm Test.corr) [| 1; 0; 1 |] false;
  Alcotest.(check (list (array Alcotest.int)))
    "CoWW: x=2 is the only outcome" [ [| 2 |] ] (wmm Test.coww);
  (* IRIW: the two readers disagree on the write order *)
  let iriw_relaxed = [| 1; 0; 1; 0; 1; 1 |] in
  chk "IRIW relaxed not TSO" (tso Test.iriw) iriw_relaxed false;
  chk "IRIW relaxed in WMM" (wmm Test.iriw) iriw_relaxed true;
  chk "IRIW+fence kills it" (wmm Test.iriw_fence) iriw_relaxed false

(* DPOR must be an exact reduction: same outcome set as the exhaustive
   memoized DFS on every test and model. The budget is set above the
   largest real test (IRIW+fence under WMM, 488 DFS states) but below
   Stress6 (2401): the scaling test is exactly the one the baseline
   cannot finish, while DPOR walks its single Mazurkiewicz trace. *)
let test_dpor_matches_dfs () =
  let budget = 2000 in
  List.iter
    (fun t ->
      List.iter
        (fun model ->
          let name =
            Printf.sprintf "%s/%s" t.Test.name (Ref_model.model_to_string model)
          in
          let dpor, dst = Ref_model.allowed_stats t ~model in
          match Ref_model.allowed_dfs ~budget t ~model with
          | Some (dfs, _) ->
            Alcotest.(check bool) (name ^ ": dpor = dfs") true (dpor = dfs)
          | None ->
            (* only the scaling test may blow the budget, and DPOR must
               still have finished it *)
            Alcotest.(check string) (name ^ ": only Stress6 exceeds") "Stress6"
              t.Test.name;
            Alcotest.(check bool) (name ^ ": dpor completed") true (dpor <> []);
            Alcotest.(check bool)
              (Printf.sprintf "%s: dpor %d states, >=10x under DFS budget %d" name
                 dst.Ref_model.states budget)
              true
              (dst.Ref_model.states * 10 <= budget))
        [ Ref_model.SC; Ref_model.TSO; Ref_model.WMM ])
    Test.all

(* Atomics facts, hand-checked. *)
let test_atomics_facts () =
  let chk name set o want = Alcotest.(check bool) name want (mem set o) in
  let sc t = allowed Ref_model.SC t
  and tso t = allowed Ref_model.TSO t
  and wmm t = allowed Ref_model.WMM t in
  (* MP+amo: flag read via amoadd-0 sees 1, payload stale - WMM only *)
  let mp_amo_relaxed = [| 1; 0; 1; 1 |] in
  chk "MP+amo relaxed not TSO" (tso Test.mp_amo) mp_amo_relaxed false;
  chk "MP+amo relaxed in WMM" (wmm Test.mp_amo) mp_amo_relaxed true;
  (* SB+amo: the amoadd drains the store buffer, so 0/0 dies even in WMM *)
  chk "SB+amo 0/0 not WMM" (wmm Test.sb_amo) [| 0; 0; 1; 1 |] false;
  (* LR-SC: both pairs reading 0 and both SCs succeeding is forbidden *)
  chk "LR-SC double success (x=1) not WMM" (wmm Test.lr_sc) [| 0; 0; 0; 0; 1 |] false;
  chk "LR-SC double success (x=2) not WMM" (wmm Test.lr_sc) [| 0; 0; 0; 0; 2 |] false;
  (* AMO-inc: no lost update under any model *)
  chk "AMO-inc serialized in SC" (sc Test.amo_inc) [| 0; 1; 2 |] true;
  List.iter
    (fun o -> Alcotest.(check int) "AMO-inc final x=2 always" 2 o.(2))
    (wmm Test.amo_inc)

(* Control-dependency facts, hand-checked. Outcome layout for MP+ctrl:
   [1:r0; 2:r0; 2:r1; x; y; z]. *)
let test_ctrl_facts () =
  let chk name set o want = Alcotest.(check bool) name want (mem set o) in
  let sc t = allowed Ref_model.SC t
  and tso t = allowed Ref_model.TSO t
  and wmm t = allowed Ref_model.WMM t in
  (* the chained relaxation: relay saw the flag, relay's store seen, yet the
     payload is stale at the final reader - WMM only (same mechanism as MP) *)
  let relaxed = [| 1; 1; 0; 1; 1; 1 |] in
  chk "MP+ctrl relaxed not SC" (sc Test.mp_ctrl) relaxed false;
  chk "MP+ctrl relaxed not TSO" (tso Test.mp_ctrl) relaxed false;
  chk "MP+ctrl relaxed in WMM" (wmm Test.mp_ctrl) relaxed true;
  (* the branch is always taken, so the relay store happens even when the
     relay thread read y=0 - a plain SC interleaving, no relaxation needed *)
  chk "MP+ctrl relay-before-flag in SC" (sc Test.mp_ctrl) [| 0; 1; 0; 1; 1; 1 |] true;
  (* the all-ones outcome (everything propagated in order) is SC too *)
  chk "MP+ctrl in-order outcome in SC" (sc Test.mp_ctrl) [| 1; 1; 1; 1; 1; 1 |] true

let test_labels () =
  Alcotest.(check (list string))
    "SB outcome labels" [ "0:r0"; "1:r0"; "x"; "y" ]
    (Test.outcome_labels Test.sb);
  Alcotest.(check (list string))
    "MP outcome labels" [ "1:r0"; "1:r1"; "x"; "y" ]
    (Test.outcome_labels Test.mp)

(* --- DSL validation ------------------------------------------------------- *)

let test_check_rejects () =
  let bad name threads = { Test.name; doc = ""; init = []; threads } in
  let raises t =
    match Test.check t with
    | () -> Alcotest.failf "%s: check accepted an invalid test" t.Test.name
    | exception Invalid_argument _ -> ()
  in
  raises (bad "empty-body" [| { warm = []; body = [] } |]);
  raises (bad "bad-reg" [| { warm = []; body = [ Test.Ld (4, "x") ] } |]);
  raises (bad "bad-value" [| { warm = []; body = [ Test.St ("x", 256) ] } |]);
  (* a warm store must be architecturally neutral *)
  raises (bad "warm-st" [| { warm = [ Test.St ("x", 1) ]; body = [ Test.Ld (0, "x") ] } |]);
  raises (bad "too-many-threads" (Array.make 5 { Test.warm = []; body = [ Test.Fence ] }))

(* --- compilation ---------------------------------------------------------- *)

(* Same (test, seed) -> bit-identical image; different seeds differ (the
   stagger loops), unless stagger is off. *)
let test_compile_deterministic () =
  let words seed stagger =
    let prog, _ = Compile.program ~seed ~stagger Test.sb in
    Isa.Asm.words prog.Workloads.Machine.asm ~base:0x8000_0000L
  in
  Alcotest.(check bool) "same seed, same image" true (words 7 true = words 7 true);
  Alcotest.(check bool) "stagger varies by seed" true (words 7 true <> words 8 true);
  Alcotest.(check bool) "no stagger, no variation" true (words 7 false = words 8 false)

(* --- the real machine ----------------------------------------------------- *)

let jobs_list = if jobs = 1 then [ 1 ] else [ 1; jobs ]

let test_run_one_deterministic () =
  let run () = Run.run_one ~jobs ~seed:5 ~model:Ooo.Config.WMM Test.sb in
  Alcotest.(check (array Alcotest.int)) "replay is exact" (run ()) (run ())

(* Every observed outcome of every classic test must be in its model's
   reference set; jobs 1 and N must agree run-for-run. *)
let sweep_suite model =
  List.iter
    (fun t ->
      let r = Run.sweep ~seeds:6 ~jobs_list ~model t in
      if not (Run.ok r) then
        Alcotest.failf "%s: %s" t.Test.name (Format.asprintf "%a" Run.pp_report r))
    Test.all

let test_dut_tso () = sweep_suite Ooo.Config.TSO
let test_dut_wmm () = sweep_suite Ooo.Config.WMM

(* The in-order core never reorders, so every outcome must sit in the SC
   set (the sweep checks against SC when dut is in-order); MESI is a pure
   coherence-protocol swap and must change nothing architecturally. *)
let test_dut_inorder () =
  List.iter
    (fun t ->
      let r = Run.sweep ~seeds:4 ~jobs_list ~dut:Run.Dut_inorder ~model:Ooo.Config.TSO t in
      if not (Run.ok r) then
        Alcotest.failf "%s (inorder): %s" t.Test.name (Format.asprintf "%a" Run.pp_report r))
    Test.all

let test_dut_mesi () =
  List.iter
    (fun t ->
      let r = Run.sweep ~seeds:4 ~jobs_list ~mesi:true ~model:Ooo.Config.WMM t in
      if not (Run.ok r) then
        Alcotest.failf "%s (mesi): %s" t.Test.name (Format.asprintf "%a" Run.pp_report r))
    Test.all

(* The harness must be able to distinguish the models: the SB sweep has to
   reach its non-SC outcome (store buffering is always visible), and MP has
   to reach its WMM-only outcome under WMM but never under TSO. *)
let test_relaxation_observed () =
  let sb = Run.sweep ~seeds:8 ~jobs_list ~model:Ooo.Config.WMM Test.sb in
  Alcotest.(check bool) "SB non-SC outcome reached" true sb.Run.relaxed_seen;
  let mp = Run.sweep ~seeds:25 ~jobs_list ~model:Ooo.Config.WMM Test.mp in
  Alcotest.(check bool) "MP WMM-only outcome reached" true mp.Run.wmm_only_seen;
  let mp_tso = Run.sweep ~seeds:25 ~jobs_list ~model:Ooo.Config.TSO Test.mp in
  Alcotest.(check bool) "MP stays in TSO set under TSO" true
    (Run.ok mp_tso && not mp_tso.Run.wmm_only_seen);
  (* the atomics suite must relax too: the consumer's plain payload load
     performs under the slow amoadd-0 flag read *)
  let mp_amo = Run.sweep ~seeds:60 ~jobs_list ~model:Ooo.Config.WMM Test.mp_amo in
  Alcotest.(check bool) "MP+amo WMM-only outcome reached" true mp_amo.Run.wmm_only_seen

(* Dedicated control-dependency sweep, deeper than the whole-suite pass.
   The compiled shape (always-taken branch guarding the relay store) must
   never leak a forbidden outcome, and under TSO in particular the chained
   relaxation must never appear. The WMM-only outcome itself is too rare to
   demand here - reaching it needs the stale payload copy to outlive the
   whole flag->relay->reader chain - so we check containment, not reach. *)
let test_dut_ctrl () =
  let tso = Run.sweep ~seeds:30 ~jobs_list ~model:Ooo.Config.TSO Test.mp_ctrl in
  if not (Run.ok tso) then
    Alcotest.failf "MP+ctrl (TSO): %s" (Format.asprintf "%a" Run.pp_report tso);
  Alcotest.(check bool) "MP+ctrl never outside TSO set under TSO" true
    (not tso.Run.wmm_only_seen);
  let wmm = Run.sweep ~seeds:30 ~jobs_list ~model:Ooo.Config.WMM Test.mp_ctrl in
  if not (Run.ok wmm) then
    Alcotest.failf "MP+ctrl (WMM): %s" (Format.asprintf "%a" Run.pp_report wmm)

let suite =
  [
    Alcotest.test_case "ref: sets nest" `Quick test_sets_nest;
    Alcotest.test_case "ref: classic facts" `Quick test_facts;
    Alcotest.test_case "ref: atomics facts" `Quick test_atomics_facts;
    Alcotest.test_case "ref: ctrl-dep facts" `Quick test_ctrl_facts;
    Alcotest.test_case "ref: dpor = dfs" `Quick test_dpor_matches_dfs;
    Alcotest.test_case "outcome labels" `Quick test_labels;
    Alcotest.test_case "dsl validation" `Quick test_check_rejects;
    Alcotest.test_case "compile determinism" `Quick test_compile_deterministic;
    Alcotest.test_case "run_one determinism" `Quick test_run_one_deterministic;
    Alcotest.test_case "dut: suite under TSO" `Slow test_dut_tso;
    Alcotest.test_case "dut: suite under WMM" `Slow test_dut_wmm;
    Alcotest.test_case "dut: suite on the in-order core" `Slow test_dut_inorder;
    Alcotest.test_case "dut: suite under MESI" `Slow test_dut_mesi;
    Alcotest.test_case "dut: MP+ctrl dedicated sweep" `Slow test_dut_ctrl;
    Alcotest.test_case "dut: relaxations observed" `Slow test_relaxation_observed;
  ]
