(* Unit tests for the OOO core's building blocks, exercised directly rather
   than through full-system runs. *)

open Cmd
open Ooo

let ctx0 () = Kernel.make_ctx (Clock.create ())

let mk_uop ?(seq = 0) ?(prs1 = -1) ?(prs2 = -1) ?(prd = -1) ?(mask = 0) () : Uop.t =
  {
    seq;
    pc = 0L;
    instr = Isa.Instr.make (Isa.Instr.OpA { alu = Isa.Instr.Add; word = false; imm = false });
    rob_idx = 0;
    prd;
    prs1;
    prs2;
    prd_old = -1;
    spec_tag = -1;
    lsq = Uop.LNone;
    pred_next = 0L;
    ras_sp = Branch.Ras.snapshot (Branch.Ras.create ());
    ghist = None;
    spec_mask = mask;
    killed = false;
    completed = false;
    ld_kill = false;
    fault = false;
    mmio = false;
    translated = false;
    paddr = 0L;
    st_data = 0L;
    result = 0L;
    actual_next = 0L;
    tid = -1;
  }

(* --- free list ---------------------------------------------------------- *)

let test_free_list () =
  let ctx = ctx0 () in
  let fl = Free_list.create ~nregs:40 in
  Alcotest.(check int) "initial free" 8 (Free_list.free_count fl);
  let a = Free_list.alloc ctx fl in
  let snap = Free_list.snapshot fl in
  let b = Free_list.alloc ctx fl in
  let c = Free_list.alloc ctx fl in
  Alcotest.(check bool) "distinct" true (a <> b && b <> c && a <> c);
  Alcotest.(check int) "after 3 allocs" 5 (Free_list.free_count fl);
  (* wrong-path restore reclaims b and c *)
  Free_list.restore ctx fl snap;
  Alcotest.(check int) "restored" 7 (Free_list.free_count fl);
  let b' = Free_list.alloc ctx fl in
  Alcotest.(check int) "same register handed out again" b b';
  (* commit-side frees append *)
  Free_list.free ctx fl a;
  Alcotest.(check int) "freed" 7 (Free_list.free_count fl)

let qcheck_free_list =
  QCheck.Test.make ~name:"free list: alloc/free/restore conserves registers" ~count:100
    QCheck.(list (int_bound 2))
    (fun ops ->
      let ctx = ctx0 () in
      let fl = Free_list.create ~nregs:40 in
      let live = ref [] in
      let snaps = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 when Free_list.free_count fl > 0 ->
            let r = Free_list.alloc ctx fl in
            live := r :: !live
          | 1 -> (
            match !live with
            | r :: tl ->
              Free_list.free ctx fl r;
              live := tl
            | [] -> ())
          | 2 -> snaps := (Free_list.snapshot fl, List.length !live) :: !snaps
          | _ -> ())
        ops;
      (* every allocated register is within range and unique *)
      let sorted = List.sort_uniq compare !live in
      List.length sorted = List.length !live
      && List.for_all (fun r -> r >= 32 && r < 40) !live)

(* --- spec manager -------------------------------------------------------- *)

let test_spec_manager () =
  let ctx = ctx0 () in
  let sm = Spec_manager.create ~n_tags:4 in
  let t0 = Spec_manager.alloc ctx sm in
  let t1 = Spec_manager.alloc ctx sm in
  let t2 = Spec_manager.alloc ctx sm in
  Alcotest.(check int) "mask covers all three" 0b111 (Spec_manager.active_mask sm);
  (* resolving t1 correctly leaves t0, t2 *)
  Spec_manager.correct ctx sm t1;
  Alcotest.(check int) "t1 released" 0b101 (Spec_manager.active_mask sm);
  (* killing t0 also kills t2 (allocated under t0) but t0 is freed *)
  let dead = Spec_manager.wrong ctx sm t0 in
  Alcotest.(check (list int)) "cascade kill" [ t0; t2 ] (List.sort compare dead);
  Alcotest.(check int) "all free" 0 (Spec_manager.active_mask sm)

let test_spec_exhaustion () =
  let ctx = ctx0 () in
  let sm = Spec_manager.create ~n_tags:2 in
  let _ = Spec_manager.alloc ctx sm in
  let _ = Spec_manager.alloc ctx sm in
  Alcotest.(check bool) "exhausted" false (Spec_manager.can_alloc sm);
  match Spec_manager.alloc ctx sm with
  | exception Kernel.Guard_fail _ -> ()
  | _ -> Alcotest.fail "allocation beyond capacity"

(* --- rename table -------------------------------------------------------- *)

let test_rename_table () =
  let ctx = ctx0 () in
  let rt = Rename_table.create ~n_tags:4 in
  Alcotest.(check int) "x5 initial" 5 (Rename_table.lookup rt 5);
  Rename_table.set ctx rt 5 40;
  Rename_table.snapshot ctx rt ~tag:2;
  Rename_table.set ctx rt 5 41;
  Rename_table.set ctx rt 6 42;
  Rename_table.restore ctx rt ~tag:2;
  Alcotest.(check int) "x5 back to snapshot" 40 (Rename_table.lookup rt 5);
  Alcotest.(check int) "x6 back to snapshot" 6 (Rename_table.lookup rt 6);
  Rename_table.rrat_set ctx rt 5 40;
  Rename_table.set ctx rt 5 50;
  Rename_table.restore_from_rrat ctx rt;
  Alcotest.(check int) "x5 from rrat" 40 (Rename_table.lookup rt 5);
  Alcotest.(check int) "x0 never renamed" (-1) (Rename_table.lookup rt 0)

(* --- rob ----------------------------------------------------------------- *)

let test_rob () =
  let ctx = ctx0 () in
  let rob = Rob.create ~size:4 in
  let u0 = mk_uop ~seq:0 () and u1 = mk_uop ~seq:1 () and u2 = mk_uop ~seq:2 () in
  let i0 = Rob.enq ctx rob u0 in
  let _i1 = Rob.enq ctx rob u1 in
  let _i2 = Rob.enq ctx rob u2 in
  Alcotest.(check int) "count" 3 (Rob.count rob);
  (match Rob.head rob with
  | Some u -> Alcotest.(check int) "head is oldest" 0 u.Uop.seq
  | None -> Alcotest.fail "empty");
  (* truncate after the head: u1 and u2 die *)
  let killed = Rob.truncate_after ctx rob i0 in
  Alcotest.(check int) "two killed" 2 (List.length killed);
  Alcotest.(check bool) "marked killed" true (u1.Uop.killed && u2.Uop.killed);
  Alcotest.(check int) "only head left" 1 (Rob.count rob);
  Rob.deq ctx rob;
  Alcotest.(check int) "empty" 0 (Rob.count rob);
  (* wrap-around *)
  for k = 3 to 12 do
    if Rob.can_enq rob then ignore (Rob.enq ctx rob (mk_uop ~seq:k ()));
    if Rob.count rob > 2 then Rob.deq ctx rob
  done;
  Alcotest.(check bool) "bounded" true (Rob.count rob <= 4)

(* --- issue queue ---------------------------------------------------------- *)

let test_issue_queue () =
  let ctx = ctx0 () in
  let q = Issue_queue.create ~name:"t" ~size:4 in
  let a = mk_uop ~seq:10 ~prs1:3 () in
  let b = mk_uop ~seq:11 ~prs1:3 ~prs2:4 () in
  Issue_queue.enter ctx q a ~rdy1:false ~rdy2:true;
  Issue_queue.enter ctx q b ~rdy1:false ~rdy2:false;
  (match Issue_queue.issue ctx q with
  | exception Kernel.Guard_fail _ -> ()
  | _ -> Alcotest.fail "nothing should be ready");
  Issue_queue.wakeup ctx q 3;
  (* a becomes ready; b still waits on prs2=4 *)
  let u = Issue_queue.issue ctx q in
  Alcotest.(check int) "oldest ready issues" 10 u.Uop.seq;
  Issue_queue.wakeup ctx q 4;
  let u = Issue_queue.issue ctx q in
  Alcotest.(check int) "b issues after full wakeup" 11 u.Uop.seq;
  (* squash removes killed entries *)
  let c = mk_uop ~seq:12 () in
  Issue_queue.enter ctx q c ~rdy1:true ~rdy2:true;
  Uop.mk_set_killed ctx c true;
  Issue_queue.squash ctx q;
  Alcotest.(check int) "squashed" 0 (Issue_queue.count q)

let test_issue_queue_age_order () =
  let ctx = ctx0 () in
  let q = Issue_queue.create ~name:"t" ~size:8 in
  List.iter
    (fun s -> Issue_queue.enter ctx q (mk_uop ~seq:s ()) ~rdy1:true ~rdy2:true)
    [ 7; 3; 9; 1; 5 ];
  let order = List.init 5 (fun _ -> (Issue_queue.issue ctx q).Uop.seq) in
  Alcotest.(check (list int)) "oldest-first selection" [ 1; 3; 5; 7; 9 ] order

(* --- store buffer ---------------------------------------------------------- *)

let test_store_buffer () =
  let ctx = ctx0 () in
  let sb = Store_buffer.create ~size:2 in
  Store_buffer.enq ctx sb ~addr:0x80000100L ~bytes:8 0x1122334455667788L;
  Store_buffer.enq ctx sb ~addr:0x80000108L ~bytes:4 0xAABBCCDDL;
  Alcotest.(check int) "coalesced into one line" 1 (Store_buffer.count sb);
  (match Store_buffer.search sb ~addr:0x80000100L ~bytes:8 with
  | Store_buffer.Full v -> Alcotest.(check int64) "full hit" 0x1122334455667788L v
  | _ -> Alcotest.fail "expected full");
  (match Store_buffer.search sb ~addr:0x80000104L ~bytes:8 with
  | Store_buffer.Full v -> Alcotest.(check int64) "straddling both stores" 0xAABBCCDD11223344L v
  | _ -> Alcotest.fail "expected full (contiguous bytes)");
  (match Store_buffer.search sb ~addr:0x80000106L ~bytes:8 with
  | Store_buffer.Partial _ -> ()
  | _ -> Alcotest.fail "expected partial");
  (match Store_buffer.search sb ~addr:0x8000010CL ~bytes:8 with
  | Store_buffer.NoMatch -> ()
  | _ -> Alcotest.fail "expected no match just past the written bytes");
  (match Store_buffer.search sb ~addr:0x80000140L ~bytes:8 with
  | Store_buffer.NoMatch -> ()
  | _ -> Alcotest.fail "expected no match");
  let idx, line = Store_buffer.issue ctx sb in
  Alcotest.(check int64) "issue line" 0x80000100L line;
  (* issued entries no longer coalesce: a new store allocates *)
  Store_buffer.enq ctx sb ~addr:0x80000110L ~bytes:8 7L;
  Alcotest.(check int) "second entry" 2 (Store_buffer.count sb);
  let _, data, mask = Store_buffer.deq ctx sb idx in
  Alcotest.(check int64) "mask covers 12 bytes" 0xFFFL mask;
  Alcotest.(check int64) "data byte" 0x88L (Int64.of_int (Char.code (Bytes.get data 0)));
  Alcotest.(check int) "one left" 1 (Store_buffer.count sb)

(* --- stage ------------------------------------------------------------------ *)

let test_stage () =
  let clk = Clock.create () in
  let s = Stage.create ~name:"st" ~dead:(fun (u : Uop.t) -> u.killed) in
  let a = mk_uop ~seq:1 () in
  let taken = ref [] in
  let consumer =
    Rule.make "take" (fun ctx -> taken := (Stage.take ctx s).Uop.seq :: !taken)
  in
  let producer =
    Rule.make "put" (fun ctx ->
        Kernel.guard ctx (!taken = []) "once";
        Stage.put ctx s a)
  in
  let sim = Sim.create clk [ consumer; producer ] in
  Sim.run sim 3;
  Alcotest.(check (list int)) "flowed through" [ 1 ] !taken;
  (* killed occupants evaporate at take/peek *)
  let b = mk_uop ~seq:2 () in
  let ctx = Kernel.make_ctx clk in
  Stage.put ctx s b;
  Uop.mk_set_killed ctx b true;
  Clock.tick clk;
  let ctx = Kernel.make_ctx clk in
  (match Stage.take ctx s with
  | exception Kernel.Guard_fail _ -> ()
  | _ -> Alcotest.fail "killed uop must not be taken");
  Alcotest.(check bool) "slot free after drop" true (Stage.peek_opt s = None)

(* --- prf --------------------------------------------------------------------- *)

let test_prf () =
  let ctx = ctx0 () in
  let prf = Prf.create ~nregs:8 () in
  Prf.alloc_clear ctx prf 5;
  Alcotest.(check bool) "cleared" false (Prf.present prf 5 || Prf.sb_ready prf 5);
  Prf.set_sb ctx prf 5;
  Alcotest.(check bool) "scoreboard optimistic" true (Prf.sb_ready prf 5);
  Alcotest.(check bool) "true presence still false" false (Prf.present prf 5);
  Prf.write ctx prf 5 99L;
  Alcotest.(check bool) "present after write" true (Prf.present prf 5);
  Alcotest.(check int64) "value" 99L (Prf.read prf 5);
  Alcotest.(check bool) "x0 pseudo-source" true (Prf.present prf (-1) && Prf.read prf (-1) = 0L);
  Prf.reset_presence ctx prf ~live:[| 3; 5 |];
  Alcotest.(check bool) "live kept" true (Prf.present prf 5);
  Alcotest.(check bool) "others dropped" false (Prf.present prf 6)

let suite =
  let t = Alcotest.test_case in
  [
    t "free list: snapshot/restore" `Quick test_free_list;
    t "spec manager: cascade kills" `Quick test_spec_manager;
    t "spec manager: exhaustion" `Quick test_spec_exhaustion;
    t "rename table: snapshots + rrat" `Quick test_rename_table;
    t "rob: truncate + wrap" `Quick test_rob;
    t "issue queue: wakeup/issue/squash" `Quick test_issue_queue;
    t "issue queue: age order" `Quick test_issue_queue_age_order;
    t "store buffer: coalesce/search" `Quick test_store_buffer;
    t "stage: pipeline + kill" `Quick test_stage;
    t "prf: presence vs scoreboard" `Quick test_prf;
    QCheck_alcotest.to_alcotest qcheck_free_list;
  ]
