(* Observability subsystem tests (lib/obs).

   The load-bearing property is determinism: every exported artifact —
   Konata pipeline trace, Chrome rule trace, stats JSON — must be
   byte-identical at any --jobs and schedule mode, because the per-hart /
   per-partition event buffers are single-writer and the exporters sort on
   deterministic keys. The rest checks the exports are well-formed enough
   for their consumers (the Konata viewer, chrome://tracing, jq). *)

open Cmd
open Workloads

let mc_cfg = { (Ooo.Config.multicore Ooo.Config.TSO) with Ooo.Config.mem = Test_multicore.small_mem }

let fresh_hub ~nharts =
  (* Dummy sink paths: requesting all three sinks activates every capture
     layer, but nothing is written because finish is never called — the
     tests read the in-memory renditions instead. *)
  Obs.Hub.create ~konata:"unused.konata" ~chrome:"unused.json" ~stats_json:"unused.json"
    ~meta:[ ("suite", "obs") ] ~nharts ()

let exports hub (o : Machine.outcome) m =
  ( Obs.Hub.konata_string hub,
    Obs.Hub.chrome_string hub,
    Obs.Hub.stats_string hub ~cycles:o.Machine.cycles ~instrs:(Machine.instrs m)
      ~stats:(Machine.stats m) )

(* Quad-core run, returning the three export strings plus instret. *)
let run_mc ~jobs ~mode prog =
  let hub = fresh_hub ~nharts:4 in
  let m = Machine.create ~ncores:4 ~jobs ~mode ~obs:hub (Machine.Out_of_order mc_cfg) prog in
  let o = Machine.run ~max_cycles:2_000_000 m in
  Alcotest.(check bool) "obs quad-core run completes" false o.Machine.timed_out;
  let k, c, s = exports hub o m in
  (k, c, s, Machine.instrs m)

(* Single-core smoke kernel under paging (partitions: core 1 + uncore). *)
let run_smoke ~jobs =
  let prog = Spec_kernels.find "smoke" ~scale:1 in
  let hub = fresh_hub ~nharts:1 in
  let m =
    Machine.create ~paging:true ~jobs ~obs:hub (Machine.Out_of_order Ooo.Config.riscyoo_b) prog
  in
  let o = Machine.run ~max_cycles:1_000_000 m in
  Alcotest.(check bool) "obs smoke run completes" false o.Machine.timed_out;
  let k, c, s = exports hub o m in
  (k, c, s, Machine.instrs m)

let check_identical name (k1, c1, s1, i1) (k2, c2, s2, i2) =
  Alcotest.(check int) (name ^ ": instret identical") i1 i2;
  Alcotest.(check string) (name ^ ": konata byte-identical") k1 k2;
  Alcotest.(check string) (name ^ ": chrome byte-identical") c1 c2;
  Alcotest.(check string) (name ^ ": stats json byte-identical") s1 s2

let test_identity_mc () =
  let prog = Test_multicore.shared_counter_kernel ~harts:4 ~iters:25 in
  List.iter
    (fun (mname, mode) ->
      check_identical ("counter/" ^ mname) (run_mc ~jobs:1 ~mode prog) (run_mc ~jobs:4 ~mode prog))
    [ ("multi", Sim.Multi); ("shuffle", Sim.Shuffle 20260807) ]

let test_identity_smoke () =
  check_identical "smoke" (run_smoke ~jobs:1) (run_smoke ~jobs:4)

(* ---------------------------------------------------------------- *)
(* Konata well-formedness                                             *)
(* ---------------------------------------------------------------- *)

type kinstr = {
  mutable kstages : (string * int) list; (* reverse emission order *)
  mutable kretire : (int * int) option; (* (cycle, retire type) *)
}

(* Parse a Kanata-0004 stream, checking line grammar and cycle monotonicity
   as we go; returns id -> record. *)
let parse_konata s =
  let lines = String.split_on_char '\n' s in
  (match lines with
  | hdr :: _ -> Alcotest.(check string) "konata header" "Kanata\t0004" hdr
  | [] -> Alcotest.fail "empty konata stream");
  let tbl : (int, kinstr) Hashtbl.t = Hashtbl.create 256 in
  let find id =
    try Hashtbl.find tbl (int_of_string id)
    with Not_found -> Alcotest.fail ("konata: event for undeclared id " ^ id)
  in
  let cyc = ref 0 in
  let started = ref false in
  List.iteri
    (fun ln line ->
      if ln > 0 && line <> "" then
        match String.split_on_char '\t' line with
        | [ "C="; c ] ->
          cyc := int_of_string c;
          started := true
        | [ "C"; d ] ->
          let d = int_of_string d in
          Alcotest.(check bool) "konata: cycle delta positive" true (d > 0);
          cyc := !cyc + d
        | [ "I"; id; _tid; _hart ] ->
          Alcotest.(check bool) "konata: I after first C=" true !started;
          Hashtbl.replace tbl (int_of_string id) { kstages = []; kretire = None }
        | "L" :: id :: _ -> ignore (find id)
        | [ "S"; id; _lane; stg ] ->
          let r = find id in
          r.kstages <- (stg, !cyc) :: r.kstages
        | [ "R"; id; _retid; typ ] -> (
          let r = find id in
          match r.kretire with
          | Some _ -> Alcotest.fail ("konata: duplicate R for id " ^ id)
          | None -> r.kretire <- Some (!cyc, int_of_string typ))
        | _ -> Alcotest.fail ("konata: unparsable line: " ^ line))
    lines;
  tbl

(* Every id closed; stage cycles non-decreasing; every committed (type-0
   retire) instruction carries the full front-end chain; the number of
   type-0 retires equals the machine's committed instruction count. *)
let check_konata ~instrs s =
  let tbl = parse_konata s in
  let committed = ref 0 in
  Hashtbl.iter
    (fun id r ->
      let stages = List.rev r.kstages in
      Alcotest.(check bool) "konata: instruction has stages" true (stages <> []);
      (match stages with
      | ("F", _) :: _ -> ()
      | (st, _) :: _ -> Alcotest.fail (Printf.sprintf "konata: id %d starts in %s, not F" id st)
      | [] -> ());
      let last =
        List.fold_left
          (fun prev (_, c) ->
            Alcotest.(check bool) "konata: stage cycles non-decreasing" true (c >= prev);
            c)
          min_int stages
      in
      match r.kretire with
      | None -> Alcotest.fail (Printf.sprintf "konata: id %d never closed" id)
      | Some (rc, typ) ->
        Alcotest.(check bool) "konata: retire not before last stage" true (rc >= last);
        if typ = 0 then begin
          incr committed;
          let names = List.map fst stages in
          List.iter
            (fun st ->
              Alcotest.(check bool)
                (Printf.sprintf "konata: committed id %d passed stage %s" id st)
                true (List.mem st names))
            [ "F"; "D"; "Rn" ]
        end)
    tbl;
  Alcotest.(check int) "konata: type-0 retires = committed instrs" instrs !committed

let test_konata_wellformed () =
  let k, _, _, instrs = run_smoke ~jobs:1 in
  check_konata ~instrs k;
  let prog = Test_multicore.shared_counter_kernel ~harts:4 ~iters:25 in
  let k, _, _, instrs = run_mc ~jobs:4 ~mode:Sim.Multi prog in
  check_konata ~instrs k

(* ---------------------------------------------------------------- *)
(* Chrome trace / stats JSON well-formedness                          *)
(* ---------------------------------------------------------------- *)

(* Minimal strict JSON syntax checker (no dependency): fails the test on
   any grammar violation or trailing garbage. *)
let check_json label s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.fail (Printf.sprintf "%s: bad JSON (%s at byte %d)" label msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    match peek () with Some (' ' | '\t' | '\n' | '\r') -> incr pos; skip_ws () | _ -> ()
  in
  let expect c =
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal w =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then pos := !pos + l else fail ("expected " ^ w)
  in
  let string_lit () =
    expect '"';
    let fin = ref false in
    while not !fin do
      if !pos >= n then fail "unterminated string";
      (match s.[!pos] with '"' -> fin := true | '\\' -> incr pos | _ -> ());
      incr pos
    done
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
    do
      incr pos
    done;
    if !pos = start then fail "expected number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      expect '{';
      skip_ws ();
      if peek () = Some '}' then incr pos
      else
        let rec members () =
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; members ()
          | Some '}' -> incr pos
          | _ -> fail "expected ',' or '}'"
        in
        members ()
    | Some '[' ->
      expect '[';
      skip_ws ();
      if peek () = Some ']' then incr pos
      else
        let rec elems () =
          value ();
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; elems ()
          | Some ']' -> incr pos
          | _ -> fail "expected ',' or ']'"
        in
        elems ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> fail "expected value"
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let count_substr s needle =
  let ln = String.length needle and ls = String.length s in
  let k = ref 0 in
  for i = 0 to ls - ln do
    if String.sub s i ln = needle then incr k
  done;
  !k

let test_chrome_wellformed () =
  let prog = Test_multicore.shared_counter_kernel ~harts:4 ~iters:25 in
  let _, c, _, _ = run_mc ~jobs:4 ~mode:Sim.Multi prog in
  check_json "chrome" c;
  (* one named track per partition: uncore + 4 cores *)
  Alcotest.(check int) "chrome: one thread_name track per partition" 5
    (count_substr c "\"thread_name\"");
  Alcotest.(check bool) "chrome: has rule-firing slices" true (count_substr c "\"ph\":\"X\"" > 0);
  Alcotest.(check bool) "chrome: has per-partition fire counters" true
    (count_substr c "fires.p" > 0)

let test_stats_json_wellformed () =
  let _, _, s, _ = run_smoke ~jobs:1 in
  check_json "stats" s;
  Alcotest.(check bool) "stats: schema tag" true
    (count_substr s "\"schema\": \"riscyoo-stats-v1\"" = 1);
  Alcotest.(check bool) "stats: derived ipc present" true (count_substr s "\"ipc\"" > 0);
  Alcotest.(check bool) "stats: new RAS counters swept" true
    (count_substr s "ras.underflows" > 0)

(* ---------------------------------------------------------------- *)
(* Capture window                                                     *)
(* ---------------------------------------------------------------- *)

let test_window () =
  let prog = Spec_kernels.find "smoke" ~scale:1 in
  let hub =
    (* N.B. the window must land on a phase where the core decodes: smoke
       spends its first few hundred cycles stalled on cold 120-cycle memory
       misses, so a narrow early window would legitimately capture nothing. *)
    Obs.Hub.create ~window:(1000, 3000) ~konata:"unused.konata" ~meta:[ ("suite", "obs") ]
      ~nharts:1 ()
  in
  let m =
    Machine.create ~paging:true ~obs:hub (Machine.Out_of_order Ooo.Config.riscyoo_b) prog
  in
  let o = Machine.run ~max_cycles:1_000_000 m in
  Alcotest.(check bool) "windowed run completes" false o.Machine.timed_out;
  let tbl = parse_konata (Obs.Hub.konata_string hub) in
  let captured = Hashtbl.length tbl in
  Alcotest.(check bool) "window captured something" true (captured > 0);
  Alcotest.(check bool) "window captured a strict subset" true (captured < Machine.instrs m)

(* ---------------------------------------------------------------- *)
(* Commit trace routing (--trace): hart-ordered, deterministic         *)
(* ---------------------------------------------------------------- *)

let test_trace_hart_ordered () =
  let prog = Test_multicore.shared_counter_kernel ~harts:2 ~iters:10 in
  let dump jobs =
    let buf = Buffer.create 4096 in
    let fmt = Format.formatter_of_buffer buf in
    let m = Machine.create ~ncores:2 ~jobs (Machine.Out_of_order mc_cfg) prog in
    Machine.trace_commits m fmt;
    let o = Machine.run ~max_cycles:2_000_000 m in
    Alcotest.(check bool) "traced run completes" false o.Machine.timed_out;
    Machine.flush_trace m;
    Format.pp_print_flush fmt ();
    Buffer.contents buf
  in
  let s = dump 4 in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  Alcotest.(check bool) "trace non-empty" true (lines <> []);
  let seen1 = ref false in
  List.iter
    (fun l ->
      match if String.length l >= 2 then String.sub l 0 2 else "" with
      | "C0" -> Alcotest.(check bool) "all hart-0 lines precede hart 1" false !seen1
      | "C1" -> seen1 := true
      | _ -> Alcotest.fail ("trace line without hart prefix: " ^ l))
    lines;
  Alcotest.(check bool) "hart 1 commits traced" true !seen1;
  Alcotest.(check string) "trace byte-identical jobs 1 vs 4" (dump 1) s

let test_pool_shutdown () = Sim.shutdown_pool ()

let suite =
  [
    Alcotest.test_case "exports byte-identical jobs 1 vs 4 (quad-core)" `Quick test_identity_mc;
    Alcotest.test_case "exports byte-identical jobs 1 vs 4 (smoke)" `Quick test_identity_smoke;
    Alcotest.test_case "konata stream well-formed, chains complete" `Quick test_konata_wellformed;
    Alcotest.test_case "chrome trace well-formed, track per partition" `Quick
      test_chrome_wellformed;
    Alcotest.test_case "stats json well-formed" `Quick test_stats_json_wellformed;
    Alcotest.test_case "capture window gates tracing" `Quick test_window;
    Alcotest.test_case "commit trace hart-ordered and deterministic" `Quick
      test_trace_hart_ordered;
    Alcotest.test_case "worker pool shutdown" `Quick test_pool_shutdown;
  ]
