(* Integration tests for the RiscyOO out-of-order core: programs run with
   per-commit golden-model co-simulation; exit codes checked against a
   golden-only run of the same program. *)

open Isa
open Workloads

let i64 = Alcotest.testable (Fmt.fmt "%Ld") Int64.equal

let exit_with p =
  let open Reg_name in
  Asm.li p a7 93L;
  Asm.ecall p

(* small-cache config so misses and evictions are exercised quickly *)
let test_cfg =
  {
    Ooo.Config.riscyoo_b with
    Ooo.Config.mem =
      {
        Mem.Mem_sys.l1d_bytes = 2048;
        l1d_ways = 2;
        l1d_mshrs = 4;
        l1i_bytes = 2048;
        l1i_ways = 2;
        l2_bytes = 8192;
        l2_ways = 4;
        l2_mshrs = 8;
        l2_latency = 4;
        mesi = false;
        mem_latency = 30;
        mem_inflight = 8;
        l2_banks = 1;
        lookahead_override = None;
      };
  }

let run_both ?(cfg = test_cfg) ?(paging = false) ?schedule name prog =
  let g = Machine.create ~paging Machine.Golden_only prog in
  let og = Machine.run ~max_cycles:3_000_000 g in
  Alcotest.(check bool) (name ^ ": golden exits") false og.Machine.timed_out;
  let m = Machine.create ~paging ~cosim:true ~invariants:true ?schedule (Machine.Out_of_order cfg) prog in
  let om = Machine.run ~max_cycles:3_000_000 m in
  Alcotest.(check bool) (name ^ ": ooo exits") false om.Machine.timed_out;
  Alcotest.check i64 (name ^ ": exit codes agree") og.Machine.exits.(0) om.Machine.exits.(0);
  (m, om)

let fib_program n =
  let open Reg_name in
  let p = Asm.create () in
  Asm.li p a0 (Int64.of_int n);
  Asm.li p t0 0L;
  Asm.li p t1 1L;
  Asm.label p "loop";
  Asm.beq p a0 zero "done";
  Asm.add p t2 t0 t1;
  Asm.mv p t0 t1;
  Asm.mv p t1 t2;
  Asm.addi p a0 a0 (-1L);
  Asm.j p "loop";
  Asm.label p "done";
  Asm.mv p a0 t0;
  exit_with p;
  Machine.program p

let array_kernel n =
  let open Reg_name in
  let p = Asm.create () in
  Asm.li p s0 0x80100000L;
  Asm.li p s1 (Int64.of_int n);
  Asm.li p t0 0L;
  Asm.label p "st";
  Asm.mul p t1 t0 t0;
  Asm.slli p t2 t0 3;
  Asm.add p t2 t2 s0;
  Asm.sd p t1 0L t2;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s1 "st";
  Asm.li p t0 0L;
  Asm.li p a0 0L;
  Asm.label p "ld";
  Asm.slli p t2 t0 3;
  Asm.add p t2 t2 s0;
  Asm.ld p t1 0L t2;
  Asm.add p a0 a0 t1;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s1 "ld";
  exit_with p;
  Machine.program p

(* store->load forwarding and aliasing: repeatedly writes and re-reads the
   same few addresses with different widths *)
let forwarding_kernel () =
  let open Reg_name in
  let p = Asm.create () in
  Asm.li p s0 0x80100000L;
  Asm.li p a0 0L;
  Asm.li p t0 0L;
  Asm.li p s1 64L;
  Asm.label p "loop";
  Asm.sd p t0 0L s0;
  Asm.ld p t1 0L s0;
  (* immediate reload: forwarded *)
  Asm.add p a0 a0 t1;
  Asm.sw p t0 8L s0;
  Asm.lh p t2 8L s0;
  (* partial-width reload of a recent store *)
  Asm.add p a0 a0 t2;
  Asm.sb p t0 16L s0;
  Asm.lbu p t3 16L s0;
  Asm.add p a0 a0 t3;
  Asm.addi p t0 t0 3L;
  Asm.blt p t0 s1 "loop";
  exit_with p;
  Machine.program p

let branchy_kernel n =
  let open Reg_name in
  let p = Asm.create () in
  Asm.li p t0 0L;
  Asm.li p a0 0L;
  Asm.li p t3 2654435761L;
  Asm.label p "loop";
  Asm.mul p t1 t0 t3;
  Asm.srli p t1 t1 13;
  Asm.andi p t1 t1 1L;
  Asm.beq p t1 zero "skip";
  Asm.addi p a0 a0 3L;
  Asm.label p "skip";
  Asm.addi p a0 a0 1L;
  Asm.addi p t0 t0 1L;
  Asm.li p t2 (Int64.of_int n);
  Asm.blt p t0 t2 "loop";
  exit_with p;
  Machine.program p

let call_kernel () =
  let open Reg_name in
  let p = Asm.create () in
  Asm.li p sp 0x80200000L;
  Asm.li p a0 12L;
  Asm.call p "fact";
  exit_with p;
  Asm.label p "fact";
  Asm.li p t0 1L;
  Asm.bne p a0 t0 "rec";
  Asm.ret p;
  Asm.label p "rec";
  Asm.addi p sp sp (-16L);
  Asm.sd p ra 0L sp;
  Asm.sd p a0 8L sp;
  Asm.addi p a0 a0 (-1L);
  Asm.call p "fact";
  Asm.ld p t1 8L sp;
  Asm.mul p a0 a0 t1;
  Asm.ld p ra 0L sp;
  Asm.addi p sp sp 16L;
  Asm.ret p;
  Machine.program p

let amo_kernel () =
  let open Reg_name in
  let p = Asm.create () in
  Asm.li p s0 0x80100000L;
  Asm.li p t0 5L;
  Asm.sd p t0 0L s0;
  Asm.fence p;
  Asm.li p t1 3L;
  Asm.amoadd_d p t2 t1 s0;
  Asm.label p "retry";
  Asm.lr_d p t3 s0;
  Asm.addi p t3 t3 100L;
  Asm.sc_d p t4 t3 s0;
  Asm.bne p t4 zero "retry";
  Asm.ld p a0 0L s0;
  Asm.add p a0 a0 t2;
  exit_with p;
  Machine.program p

let test_fib () = ignore (run_both "fib" (fib_program 20))
let test_array () = ignore (run_both "array" (array_kernel 150))
let test_forwarding () = ignore (run_both "forwarding" (forwarding_kernel ()))

let test_branchy () =
  let m, om = run_both "branchy" (branchy_kernel 300) in
  let mispred = Machine.find_stat m "c0.mispredicts" in
  Alcotest.(check bool)
    (Printf.sprintf "branchy has mispredicts (%d)" mispred)
    true (mispred > 0);
  ignore om

let test_calls () = ignore (run_both "calls" (call_kernel ()))
let test_amo () = ignore (run_both "amo" (amo_kernel ()))

let test_paging () =
  ignore (run_both ~paging:true "array+paging(blocking tlb)" (array_kernel 100));
  let cfg = { test_cfg with Ooo.Config.tlb = Tlb.Tlb_sys.nonblocking_config; name = "t+" } in
  ignore (run_both ~cfg ~paging:true "array+paging(nonblocking tlb)" (array_kernel 100))

let test_megapages_ooo () =
  (* megapages shorten walks to two reads and slash TLB pressure *)
  let prog = array_kernel 100 in
  let g = Machine.create Machine.Golden_only prog in
  let og = Machine.run ~max_cycles:3_000_000 g in
  let cfg = { test_cfg with Ooo.Config.tlb = Tlb.Tlb_sys.nonblocking_config; name = "t+" } in
  let m = Machine.create ~paging:true ~megapages:true ~cosim:true ~invariants:true (Machine.Out_of_order cfg) prog in
  let o = Machine.run ~max_cycles:3_000_000 m in
  Alcotest.(check bool) "megapage run exits" false o.Machine.timed_out;
  Alcotest.check i64 "megapage checksum" og.Machine.exits.(0) o.Machine.exits.(0)

let test_schedules () =
  ignore (run_both ~schedule:`Aggressive "fib aggressive" (fib_program 15));
  ignore (run_both ~schedule:`Conservative "fib conservative" (fib_program 15))

let test_tso () =
  let cfg = { test_cfg with Ooo.Config.mem_model = Ooo.Config.TSO; name = "tso" } in
  ignore (run_both ~cfg "array TSO" (array_kernel 100));
  ignore (run_both ~cfg "forwarding TSO" (forwarding_kernel ()))

let test_ipc_beats_inorder () =
  (* the paper's headline: OOO IPC beats in-order on the same memory *)
  let prog = array_kernel 200 in
  let m_ooo = Machine.create (Machine.Out_of_order test_cfg) prog in
  let o_ooo = Machine.run ~max_cycles:3_000_000 m_ooo in
  let m_io =
    Machine.create
      (Machine.In_order { mem = test_cfg.Ooo.Config.mem; tlb = Tlb.Tlb_sys.blocking_config })
      prog
  in
  let o_io = Machine.run ~max_cycles:3_000_000 m_io in
  Alcotest.(check bool) "both exit" false (o_ooo.Machine.timed_out || o_io.Machine.timed_out);
  let ipc_ooo = float_of_int (Machine.instrs m_ooo) /. float_of_int o_ooo.Machine.cycles in
  let ipc_io = float_of_int (Machine.instrs m_io) /. float_of_int o_io.Machine.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "ooo ipc (%.3f) > inorder ipc (%.3f)" ipc_ooo ipc_io)
    true (ipc_ooo > ipc_io)

let test_store_prefetch () =
  (* a burst of stores to distinct lines: under TSO the SQ drains serially
     (each head store waits for its M grant); store prefetching acquires the
     lines ahead of the head, so the drain pipelines *)
  let open Isa.Reg_name in
  let p = Isa.Asm.create () in
  Isa.Asm.li p s0 0x80100000L;
  Isa.Asm.li p s1 96L;
  Isa.Asm.li p t0 0L;
  Isa.Asm.label p "loop";
  Isa.Asm.slli p t2 t0 6;
  Isa.Asm.add p t2 t2 s0;
  Isa.Asm.sd p t0 0L t2;
  Isa.Asm.addi p t0 t0 1L;
  Isa.Asm.blt p t0 s1 "loop";
  Isa.Asm.ld p a0 0L s0;
  exit_with p;
  let prog = Machine.program p in
  let tso = { test_cfg with Ooo.Config.mem_model = Ooo.Config.TSO; name = "tso" } in
  let run cfg =
    let m = Machine.create ~cosim:true (Machine.Out_of_order cfg) prog in
    let o = Machine.run ~max_cycles:3_000_000 m in
    Alcotest.(check bool) (cfg.Ooo.Config.name ^ " exits") false o.Machine.timed_out;
    o.Machine.cycles
  in
  let plain = run tso in
  let pf = run { tso with Ooo.Config.st_prefetch = true; name = "tso+pf" } in
  Alcotest.(check bool)
    (Printf.sprintf "prefetch helps the TSO drain (%d -> %d cycles)" plain pf)
    true (pf < plain)

let test_predictors () =
  (* all three direction predictors run the branchy kernel correctly; the
     kernel's branches are data-random, so none should be wildly off *)
  let prog = branchy_kernel 250 in
  let g = Machine.create Machine.Golden_only prog in
  let og = Machine.run ~max_cycles:3_000_000 g in
  List.iter
    (fun kind ->
      let cfg =
        { test_cfg with Ooo.Config.predictor = kind; name = Branch.Dir_pred.kind_to_string kind }
      in
      let m = Machine.create ~cosim:true (Machine.Out_of_order cfg) prog in
      let o = Machine.run ~max_cycles:3_000_000 m in
      Alcotest.(check bool) (cfg.Ooo.Config.name ^ " exits") false o.Machine.timed_out;
      Alcotest.check i64 (cfg.Ooo.Config.name ^ " checksum") og.Machine.exits.(0)
        o.Machine.exits.(0))
    [ Branch.Dir_pred.Tournament; Branch.Dir_pred.Gshare; Branch.Dir_pred.Bimodal ]

let test_mesi_ooo () =
  (* the OOO core on a MESI hierarchy, with cosim: read-modify-write kernel *)
  let cfg =
    { test_cfg with
      Ooo.Config.mem = { test_cfg.Ooo.Config.mem with Mem.Mem_sys.mesi = true };
      name = "mesi" }
  in
  ignore (run_both ~cfg "forwarding on MESI" (forwarding_kernel ()));
  ignore (run_both ~cfg:{ cfg with Ooo.Config.mem_model = Ooo.Config.TSO; name = "mesi-tso" }
      "forwarding on MESI TSO" (forwarding_kernel ()))

let test_shuffled_schedule () =
  (* The paper's core guarantee: any admissible schedule gives the same
     architectural behaviour. Run the whole processor under randomly
     shuffled rule orders — with full co-simulation — and under the
     one-rule-at-a-time reference executor. *)
  let prog = array_kernel 60 in
  let g = Machine.create Machine.Golden_only prog in
  let og = Machine.run ~max_cycles:3_000_000 g in
  List.iter
    (fun (name, mode, budget) ->
      let m = Machine.create ~cosim:true ~mode (Machine.Out_of_order test_cfg) prog in
      let o = Machine.run ~max_cycles:budget m in
      Alcotest.(check bool) (name ^ " exits") false o.Machine.timed_out;
      Alcotest.check i64 (name ^ " checksum") og.Machine.exits.(0) o.Machine.exits.(0))
    [
      ("shuffle-1", Cmd.Sim.Shuffle 11, 3_000_000);
      ("shuffle-2", Cmd.Sim.Shuffle 222, 3_000_000);
      ("shuffle-3", Cmd.Sim.Shuffle 3333, 3_000_000);
      ("one-per-cycle", Cmd.Sim.One_per_cycle, 60_000_000);
    ]

let suite =
  let t = Alcotest.test_case in
  [
    t "fib vs golden (cosim)" `Quick test_fib;
    t "array kernel vs golden" `Quick test_array;
    t "store-load forwarding" `Quick test_forwarding;
    t "branchy kernel (mispredicts)" `Quick test_branchy;
    t "recursive calls (RAS)" `Quick test_calls;
    t "amo + lr/sc + fence" `Quick test_amo;
    t "paging: blocking + nonblocking TLB" `Quick test_paging;
    t "schedules: aggressive + conservative" `Quick test_schedules;
    t "TSO memory model" `Quick test_tso;
    t "IPC beats in-order" `Quick test_ipc_beats_inorder;
    t "schedule robustness: shuffled + serial" `Slow test_shuffled_schedule;
    t "store prefetch accelerates TSO drain" `Quick test_store_prefetch;
    t "predictors: tournament/gshare/bimodal" `Quick test_predictors;
    t "MESI hierarchy under the OOO core" `Quick test_mesi_ooo;
    t "Sv39 megapages end to end" `Quick test_megapages_ooo;
  ]
