(* Epoch execution (lookahead windows): partitions free-run up to the
   derived lookahead bound between synchronizations, and the results at a
   given window length must be bit-identical at any --jobs — cycle count,
   per-hart exits, instret, every rule's fire count and the canonical
   stats-JSON bytes all agree. Also the guard rails: the epoch-mode
   partition audit runs clean on the real machine, an overstated lookahead
   declaration is caught (not silently trusted), and snapshot/restore at a
   window boundary continues bit-identically. *)

open Workloads

let i64 = Alcotest.testable (Fmt.fmt "%Ld") Int64.equal

(* 16-core machine shrunk to test size: tiny private L1s, a 4-bank L2. *)
let mem16 = { Test_multicore.small_mem with Mem.Mem_sys.l2_banks = 4 }
let cfg16 mm = { (Ooo.Config.multicore16 mm) with Ooo.Config.mem = mem16 }

(* Everything observable, including the serialized counter export — two
   runs agree exactly when these five components agree. *)
let fingerprint ?(ncores = 16) ?(budget = 6_000_000) ~jobs ~mode ~epoch cfg prog =
  let m = Machine.create ~ncores ~mode ~jobs ~epoch (Machine.Out_of_order cfg) prog in
  if epoch <> 1 then
    Alcotest.(check bool) "epoch engine engaged" true (Machine.epoch_length m > 1);
  let o = Machine.run ~max_cycles:budget m in
  Alcotest.(check bool) "epoch run completes" false o.Machine.timed_out;
  let stats =
    Obs.Stats_json.to_string ~cycles:o.Machine.cycles ~instrs:(Machine.instrs m)
      ~stats:(Machine.stats m) ()
  in
  (o.Machine.cycles, Array.to_list o.Machine.exits, Machine.instrs m,
   Test_sched.fired_counts m, stats)

let check_equiv name (c1, x1, i1, f1, s1) (c2, x2, i2, f2, s2) =
  Alcotest.(check int) (name ^ ": cycles identical") c1 c2;
  Alcotest.(check (list i64)) (name ^ ": exits identical") x1 x2;
  Alcotest.(check int) (name ^ ": instret identical") i1 i2;
  Alcotest.(check (list (pair string string))) (name ^ ": per-rule fires identical") f1 f2;
  Alcotest.(check string) (name ^ ": stats json bytes identical") s1 s2

(* The tentpole invariant: a 16-core PARSEC-shaped run at the full derived
   window (epoch 0 = auto) is bit-identical at --jobs 1, 4 and 8, under
   both the deterministic Multi schedule and a shuffled one. *)
let test_identity_16core () =
  let prog = Parsec_kernels.find "blackscholes" ~harts:16 ~scale:1 in
  let cfg = cfg16 Ooo.Config.WMM in
  List.iter
    (fun (mname, mode) ->
      let j1 = fingerprint ~jobs:1 ~mode ~epoch:0 cfg prog in
      let j4 = fingerprint ~jobs:4 ~mode ~epoch:0 cfg prog in
      let j8 = fingerprint ~jobs:8 ~mode ~epoch:0 cfg prog in
      check_equiv (Printf.sprintf "blackscholes-x16/%s jobs 1-vs-4" mname) j1 j4;
      check_equiv (Printf.sprintf "blackscholes-x16/%s jobs 1-vs-8" mname) j1 j8)
    [ ("multi", Cmd.Sim.Multi); ("shuffle", Cmd.Sim.Shuffle 20260808) ]

(* Same invariant under AMO contention: every hart hammers one shared line
   through the banked L2. *)
let test_identity_16core_amo () =
  let prog = Test_multicore.shared_counter_kernel ~harts:16 ~iters:4 in
  let cfg = cfg16 Ooo.Config.TSO in
  let j1 = fingerprint ~jobs:1 ~mode:Cmd.Sim.Multi ~epoch:0 cfg prog in
  let j8 = fingerprint ~jobs:8 ~mode:Cmd.Sim.Multi ~epoch:0 cfg prog in
  check_equiv "counter-x16/multi jobs 1-vs-8" j1 j8

(* Epoch length is a timing model, not a semantics change: architectural
   results (per-hart exit values) match the per-cycle engine. Cycle counts
   may differ — uncore-to-core responses quantize to window boundaries —
   so only the architecture is compared. *)
let test_epoch_architectural () =
  let prog = Parsec_kernels.find "blackscholes" ~harts:16 ~scale:1 in
  let cfg = cfg16 Ooo.Config.WMM in
  let _, x1, _, _, _ = fingerprint ~jobs:1 ~mode:Cmd.Sim.Multi ~epoch:1 cfg prog in
  let _, xe, _, _, _ = fingerprint ~jobs:1 ~mode:Cmd.Sim.Multi ~epoch:0 cfg prog in
  Alcotest.(check (list i64)) "exits match the per-cycle engine" x1 xe

(* The epoch-mode partition audit runs clean on the real machine: window
   free-runs, boundary-FIFO exemptions and the per-window access masks
   together accept a legal design. *)
let test_epoch_audit_clean () =
  let prog = Test_multicore.lock_kernel ~harts:4 ~iters:10 in
  let cfg = { (Ooo.Config.multicore Ooo.Config.TSO) with Ooo.Config.mem = mem16 } in
  let m =
    Machine.create ~ncores:4 ~epoch:0 ~partition_audit:true (Machine.Out_of_order cfg) prog
  in
  Alcotest.(check bool) "audited epoch machine uses windows" true (Machine.epoch_length m > 1);
  let o = Machine.run ~max_cycles:2_000_000 m in
  Alcotest.(check bool) "audited epoch run completes" false o.Machine.timed_out

(* Negative: declare more lookahead than the memory system guarantees
   (override 16 against a 1-cycle L2) and the audit must refuse the first
   response that beats the declared floor, rather than let partitions
   free-run past a visible effect. *)
let test_lookahead_audit_negative () =
  let mem =
    { mem16 with Mem.Mem_sys.l2_latency = 1; l2_banks = 1; lookahead_override = Some 16 }
  in
  let cfg = { (Ooo.Config.multicore Ooo.Config.TSO) with Ooo.Config.mem = mem } in
  let prog = Test_multicore.shared_counter_kernel ~harts:2 ~iters:4 in
  let m =
    Machine.create ~ncores:2 ~epoch:0 ~partition_audit:true (Machine.Out_of_order cfg) prog
  in
  let contains hay needle =
    let n = String.length needle and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  match Machine.run ~max_cycles:2_000_000 m with
  | exception Cmd.Sim.Audit_fail msg ->
    Alcotest.(check bool) ("audit names the lookahead floor: " ^ msg) true
      (contains msg "lookahead")
  | _ -> Alcotest.fail "overstated lookahead declaration not caught by the epoch audit"

(* Snapshot at a window boundary, restore into a fresh epoch machine (at a
   different --jobs), continue: bit-identical to the uninterrupted run. *)
let test_epoch_snapshot_restore () =
  let prog = Parsec_kernels.find "blackscholes" ~harts:4 ~scale:1 in
  let cfg = { (Ooo.Config.multicore Ooo.Config.WMM) with Ooo.Config.mem = mem16 } in
  let mk ~jobs = Machine.create ~ncores:4 ~jobs ~epoch:0 (Machine.Out_of_order cfg) prog in
  let a = mk ~jobs:1 in
  let o = Machine.run ~max_cycles:2_000 a in
  Alcotest.(check bool) "still running at snapshot point" true o.Machine.timed_out;
  let img = Machine.snapshot a in
  let finish m =
    let o = Machine.run ~max_cycles:6_000_000 m in
    Alcotest.(check bool) "continuation completes" false o.Machine.timed_out;
    (o.Machine.cycles, Array.to_list o.Machine.exits, Machine.instrs m,
     Test_sched.fired_counts m)
  in
  let fa = finish a in
  let b = mk ~jobs:4 in
  Machine.restore b img;
  let fb = finish b in
  let (c1, x1, i1, f1) = fa and (c2, x2, i2, f2) = fb in
  Alcotest.(check int) "restored: cycles" c1 c2;
  Alcotest.(check (list i64)) "restored: exits" x1 x2;
  Alcotest.(check int) "restored: instret" i1 i2;
  Alcotest.(check (list (pair string string))) "restored: per-rule fires" f1 f2

let suite =
  [
    Alcotest.test_case "16-core epoch identity across jobs (multi/shuffle)" `Slow
      test_identity_16core;
    Alcotest.test_case "16-core epoch identity under AMO contention" `Slow
      test_identity_16core_amo;
    Alcotest.test_case "epoch length changes timing, not architecture" `Slow
      test_epoch_architectural;
    Alcotest.test_case "epoch-mode partition audit clean" `Slow test_epoch_audit_clean;
    Alcotest.test_case "overstated lookahead caught by audit" `Quick
      test_lookahead_audit_negative;
    Alcotest.test_case "snapshot/restore at window boundary" `Slow test_epoch_snapshot_restore;
  ]
