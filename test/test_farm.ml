(* The simulation farm: work-stealing sweep with timeout/retry/quarantine,
   the crash-safe journal, and resume-with-byte-identical-results. Jobs here
   are synthetic (poison-style) so the suite exercises the farm machinery
   itself, not the simulators; litmus/fault integration rides the real
   machines in CI. *)

module Sweep = Farm.Sweep
module Journal = Farm.Journal
module Json = Farm.Json
module Jobs = Farm.Jobs

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("riscyoo-farm-test-" ^ name)
let log (_ : string) = ()

let cfg ?(workers = 2) ?(timeout_s = 10.) ?(max_retries = 2) () =
  { Sweep.workers; timeout_s; max_retries; backoff_s = 0.005 }

(* A deterministic job: succeeds with a value derived from its id. *)
let ok_job id =
  {
    Sweep.id = Printf.sprintf "ok/%04d" id;
    kind = "test";
    spec = [ ("n", Json.Int id) ];
    replay = Printf.sprintf "replay ok/%04d" id;
    run = (fun ~should_stop:_ -> Json.Obj [ ("v", Json.Int (id * 3)) ]);
  }

let failing_job id =
  {
    Sweep.id = Printf.sprintf "bad/%04d" id;
    kind = "test";
    spec = [];
    replay = Printf.sprintf "replay bad/%04d" id;
    run = (fun ~should_stop:_ -> failwith "injected");
  }

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let test_sweep_quarantine () =
  (* 100 jobs, three poisoned: exactly the poisoned ids quarantine, with
     their replay commands; everything else finishes. *)
  let poisoned = [ 13; 47; 88 ] in
  let jobs =
    List.init 100 (fun i -> if List.mem i poisoned then failing_job i else ok_job i)
  in
  let o = Sweep.run ~log (cfg ()) jobs in
  check_int "records" 100 (List.length o.Sweep.records);
  check_int "ok" 97 o.Sweep.n_ok;
  check_int "quarantined" 3 o.Sweep.n_quarantined;
  check_bool "not interrupted" false o.Sweep.interrupted;
  let q = Sweep.quarantined o in
  Alcotest.(check (list string))
    "exactly the poisoned jobs"
    (List.map (Printf.sprintf "bad/%04d") poisoned)
    (List.map (fun (id, _, _) -> id) q);
  List.iter (fun (id, _, replay) -> check_str "replay command" ("replay " ^ id) replay) q;
  (* every failed attempt = 1 + max_retries rounds; successes take one *)
  List.iter
    (fun (r : Sweep.record) ->
      match r.status with
      | Sweep.Quarantined _ -> check_int "attempts" 3 r.attempts
      | Sweep.Finished _ -> check_int "one attempt" 1 r.attempts)
    o.Sweep.records

let test_retry_flaky () =
  (* a job that fails twice then succeeds is retried to success *)
  let tries = Atomic.make 0 in
  let flaky =
    {
      Sweep.id = "flaky/0001";
      kind = "test";
      spec = [];
      replay = "replay flaky";
      run =
        (fun ~should_stop:_ ->
          if Atomic.fetch_and_add tries 1 < 2 then failwith "transient"
          else Json.Obj [ ("v", Json.Int 42) ]);
    }
  in
  let o = Sweep.run ~log (cfg ()) [ flaky ] in
  check_int "ok" 1 o.Sweep.n_ok;
  check_int "quarantined" 0 o.Sweep.n_quarantined;
  (match o.Sweep.records with
  | [ r ] -> check_int "three attempts" 3 r.Sweep.attempts
  | _ -> Alcotest.fail "expected one record");
  (* and with max_retries 1 the same job quarantines *)
  Atomic.set tries 0;
  let o = Sweep.run ~log (cfg ~max_retries:1 ()) [ flaky ] in
  check_int "quarantined under low retry cap" 1 o.Sweep.n_quarantined

let test_timeout_hang () =
  (* a hanging job trips the wall-clock monitor and quarantines; the
     deterministic error message names the configured limit *)
  let hang =
    {
      Sweep.id = "hang/0001";
      kind = "test";
      spec = [];
      replay = "replay hang";
      run =
        (fun ~should_stop ->
          while true do
            if should_stop () then raise Sweep.Cancelled;
            Unix.sleepf 0.001
          done;
          Json.Null);
    }
  in
  let o = Sweep.run ~log (cfg ~timeout_s:0.2 ~max_retries:0 ()) [ hang; ok_job 1 ] in
  check_int "ok" 1 o.Sweep.n_ok;
  check_int "quarantined" 1 o.Sweep.n_quarantined;
  match Sweep.quarantined o with
  | [ (_, err, _) ] -> check_str "timeout message" "timed out (wall-clock limit 0.2s)" err
  | _ -> Alcotest.fail "expected one quarantined job"

let test_duplicate_ids () =
  Alcotest.check_raises "duplicate job ids rejected"
    (Invalid_argument "Farm.Sweep.run: duplicate job id ok/0001")
    (fun () -> ignore (Sweep.run ~log (cfg ()) [ ok_job 1; ok_job 1 ]))

let test_journal_roundtrip () =
  let path = tmp "journal.jsonl" in
  let j = Journal.create path ~manifest_digest:"d00d" in
  Journal.append j (Json.Obj [ ("id", Json.Str "a"); ("v", Json.Int 1) ]);
  Journal.append j (Json.Obj [ ("id", Json.Str "b"); ("v", Json.Int 2) ]);
  Journal.close j;
  let r = Journal.recover path ~manifest_digest:"d00d" in
  check_int "records" 2 (List.length r.Journal.records);
  check_int "bad lines" 0 (List.length r.Journal.bad);
  (* wrong manifest refuses *)
  (try
     ignore (Journal.recover path ~manifest_digest:"beef");
     Alcotest.fail "mismatched manifest accepted"
   with Journal.Corrupt _ -> ());
  Sys.remove path

let test_journal_torn_line () =
  (* a torn tail (partial write at kill time) is confined to its line:
     recovery keeps every intact record before AND after it *)
  let path = tmp "torn.jsonl" in
  let j = Journal.create path ~manifest_digest:"d00d" in
  Journal.append j (Json.Obj [ ("id", Json.Str "a") ]);
  Journal.append j (Json.Obj [ ("id", Json.Str "b") ]);
  Journal.close j;
  (* chop the tail mid-record to simulate the kill *)
  let ic = open_in_bin path in
  let full = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full - 7));
  close_out oc;
  let r = Journal.recover path ~manifest_digest:"d00d" in
  check_int "intact records survive" 1 (List.length r.Journal.records);
  check_int "torn line reported" 1 (List.length r.Journal.bad);
  (* a resumed run reopens and appends cleanly after the tear *)
  let j = Journal.reopen path in
  Journal.append j (Json.Obj [ ("id", Json.Str "c") ]);
  Journal.close j;
  let r = Journal.recover path ~manifest_digest:"d00d" in
  check_int "post-tear append recovered" 2 (List.length r.Journal.records);
  Sys.remove path

let test_resume_byte_identical () =
  (* kill mid-sweep (abort_after), resume, and demand the final results file
     is byte-identical to an uninterrupted run's *)
  let mk_jobs () = List.init 40 (fun i -> if i = 7 then failing_job i else ok_job i) in
  let path = tmp "resume.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  let uninterrupted = Sweep.run ~log (cfg ()) (mk_jobs ()) in
  let o1 = Sweep.run ~log ~journal:path ~abort_after:11 (cfg ()) (mk_jobs ()) in
  check_bool "first run interrupted" true o1.Sweep.interrupted;
  check_bool "some jobs unfinished" true (o1.Sweep.n_unfinished > 0);
  let o2 = Sweep.run ~log ~journal:path ~resume:true (cfg ()) (mk_jobs ()) in
  check_bool "resume completed" false o2.Sweep.interrupted;
  check_bool "resume reused journaled results" true (o2.Sweep.n_resumed > 0);
  check_int "all jobs have records" 40 (List.length o2.Sweep.records);
  check_str "byte-identical results" (Sweep.results_json uninterrupted) (Sweep.results_json o2);
  (* resuming a COMPLETE journal runs nothing *)
  let o3 = Sweep.run ~log ~journal:path ~resume:true (cfg ()) (mk_jobs ()) in
  check_int "fully resumed" 40 o3.Sweep.n_resumed;
  check_str "still byte-identical" (Sweep.results_json uninterrupted) (Sweep.results_json o3);
  Sys.remove path

let test_external_stop () =
  (* the driver's SIGINT path: should_stop flips mid-sweep; in-flight jobs
     cancel, nothing is quarantined for it, and the sweep reports
     interrupted with the journal consistent for resume *)
  let path = tmp "stop.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  let done_count = Atomic.make 0 in
  let stop = Atomic.make false in
  let jobs =
    List.init 30 (fun i ->
        {
          Sweep.id = Printf.sprintf "s/%04d" i;
          kind = "test";
          spec = [];
          replay = "replay";
          run =
            (fun ~should_stop ->
              if Atomic.fetch_and_add done_count 1 = 9 then Atomic.set stop true;
              if should_stop () then raise Sweep.Cancelled;
              Json.Obj [ ("v", Json.Int i) ]);
        })
  in
  let o = Sweep.run ~log ~journal:path ~should_stop:(fun () -> Atomic.get stop) (cfg ()) jobs in
  check_bool "interrupted" true o.Sweep.interrupted;
  check_bool "unfinished jobs remain" true (o.Sweep.n_unfinished > 0);
  check_int "nothing quarantined by the stop" 0 o.Sweep.n_quarantined;
  (* resume finishes the rest *)
  Atomic.set stop false;
  let o2 = Sweep.run ~log ~journal:path ~resume:true (cfg ()) jobs in
  check_int "all records" 30 (List.length o2.Sweep.records);
  check_int "all ok" 30 o2.Sweep.n_ok;
  Sys.remove path

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Str "x"; Json.Obj [] ]);
      ]
  in
  let s = Json.to_string v in
  check_bool "round trip" true (Json.of_string s = v);
  check_str "canonical reprint" s (Json.to_string (Json.of_string s));
  try
    ignore (Json.of_string "{\"a\": }");
    Alcotest.fail "accepted malformed JSON"
  with Json.Parse_error _ -> ()

let test_manifest () =
  let m =
    Jobs.of_string
      {|{"schema": "riscyoo-farm-manifest-v1",
         "sweeps": [
           {"type": "poison", "jobs": 5, "cycles": 10, "fail": [2], "hang": [], "flaky": [4]},
           {"type": "litmus", "tests": ["sb"], "models": ["tso"], "seeds": 3,
            "stagger": false, "warm": true}
         ]}|}
  in
  let jobs = Jobs.jobs ~manifest_path:"m.json" m in
  check_int "5 poison + 3 litmus jobs" 8 (List.length jobs);
  let ids = List.map (fun (j : Sweep.job) -> j.id) jobs in
  check_bool "poison ids" true (List.mem "poison/job0002" ids);
  check_bool "litmus ids" true (List.mem "litmus/SB/tso/nostagger/seed00003" ids);
  List.iter
    (fun (j : Sweep.job) ->
      check_str "replay command" ("riscyoo farm m.json --only " ^ j.id) j.replay)
    jobs;
  (* schema and type errors are clean Parse_errors *)
  (try
     ignore (Jobs.of_string {|{"schema": "nope", "sweeps": []}|});
     Alcotest.fail "accepted wrong schema"
   with Json.Parse_error _ -> ());
  try
    ignore (Jobs.of_string {|{"schema": "riscyoo-farm-manifest-v1", "sweeps": [{"type": "x"}]}|});
    Alcotest.fail "accepted unknown sweep type"
  with Json.Parse_error _ -> ()

let test_poison_manifest_run () =
  (* the acceptance sweep in miniature: poison manifest through the real
     farm; exactly the poisoned ids quarantine, the flaky one retries *)
  let m =
    Jobs.of_string
      {|{"schema": "riscyoo-farm-manifest-v1",
         "sweeps": [{"type": "poison", "jobs": 30, "cycles": 500,
                     "fail": [3, 17], "flaky": [9]}]}|}
  in
  let o = Sweep.run ~log (cfg ()) (Jobs.jobs m) in
  check_int "ok" 28 o.Sweep.n_ok;
  Alcotest.(check (list string))
    "quarantined ids"
    [ "poison/job0003"; "poison/job0017" ]
    (List.map (fun (id, _, _) -> id) (Sweep.quarantined o));
  List.iter
    (fun (r : Sweep.record) ->
      if r.Sweep.job_id = "poison/job0009" then check_int "flaky retried" 2 r.Sweep.attempts)
    o.Sweep.records

let suite =
  let t = Alcotest.test_case in
  [
    t "quarantines exactly the poisoned jobs" `Quick test_sweep_quarantine;
    t "retries a flaky job to success" `Quick test_retry_flaky;
    t "wall-clock timeout quarantines a hang" `Quick test_timeout_hang;
    t "rejects duplicate job ids" `Quick test_duplicate_ids;
    t "journal round trip and manifest binding" `Quick test_journal_roundtrip;
    t "journal confines a torn line" `Quick test_journal_torn_line;
    t "resume after mid-sweep kill is byte-identical" `Quick test_resume_byte_identical;
    t "external stop leaves a resumable journal" `Quick test_external_stop;
    t "json canonical round trip" `Quick test_json_roundtrip;
    t "manifest parsing and job expansion" `Quick test_manifest;
    t "poison manifest end to end" `Quick test_poison_manifest_run;
  ]
