(* Integration tests: programs running on the in-order core through the real
   TLB + cache hierarchy, validated against the golden ISA simulator. *)

open Cmd
open Isa

let i64 = Alcotest.testable (Fmt.fmt "%Ld") Int64.equal
let base = Addr_map.dram_base

type machine = {
  sim : Sim.t;
  mmio : Mmio.t;
  core : Inorder.Inorder_core.t;
  stats : Stats.t;
}

let build ?(paging = false) ?(mem_latency = 20) ?(tlb_cfg = Tlb.Tlb_sys.blocking_config) prog =
  let clk = Clock.create () in
  let pmem = Phys_mem.create () in
  let mmio = Mmio.create () in
  let stats = Stats.create () in
  let words = Asm.words prog ~base in
  Array.iteri
    (fun i w -> Phys_mem.store pmem ~bytes:4 (Int64.add base (Int64.of_int (i * 4))) (Int64.of_int w))
    words;
  let mem_cfg =
    {
      Mem.Mem_sys.l1d_bytes = 4096;
      l1d_ways = 2;
      l1d_mshrs = 4;
      l1i_bytes = 4096;
      l1i_ways = 2;
      l2_bytes = 16384;
      l2_ways = 4;
      l2_mshrs = 4;
      l2_latency = 4;
      mesi = false;
      mem_latency;
      mem_inflight = 8;
      l2_banks = 1;
      lookahead_override = None;
    }
  in
  let ms = Mem.Mem_sys.create clk pmem mem_cfg ~ncores:1 ~fetch_width:2 ~stats in
  let tlb = Tlb.Tlb_sys.create clk tlb_cfg ~stats () in
  let core =
    Inorder.Inorder_core.create clk ~hart_id:0 ~icache:(Mem.Mem_sys.icache ms 0)
      ~dcache:(Mem.Mem_sys.dcache ms 0) ~tlb ~mmio ~stats ()
  in
  if paging then begin
    let pt = Page_table.create pmem ~alloc_base:0x90000000L in
    Page_table.map_range pt ~va:base ~pa:base ~len:0x1000000L;
    Tlb.Tlb_sys.set_satp tlb (Page_table.root pt)
  end;
  let rules =
    Inorder.Inorder_core.rules core
    @ Tlb.Tlb_sys.rules tlb
    @ Tlb.Walk_xbar.rules [| tlb |] ~banks:(Mem.Mem_sys.l2_banks ms) ~bank_of:(Mem.Mem_sys.bank_of ms)
    @ Mem.Mem_sys.rules ms
  in
  let sim = Sim.create clk rules in
  { sim; mmio; core; stats }

let run_to_exit ?(max_cycles = 500_000) m =
  match Sim.run_until m.sim ~max_cycles (fun () -> Inorder.Inorder_core.halted m.core) with
  | `Done _ -> (
    match Mmio.exit_code m.mmio ~hart:0 with
    | Some v -> v
    | None -> Alcotest.fail "halted without exit code")
  | `Timeout _ -> Alcotest.fail "in-order core timed out"

(* golden-model reference run of the same program *)
let golden_exit prog =
  let pmem = Phys_mem.create () in
  let mmio = Mmio.create () in
  Array.iteri
    (fun i w -> Phys_mem.store pmem ~bytes:4 (Int64.add base (Int64.of_int (i * 4))) (Int64.of_int w))
    (Asm.words prog ~base);
  let g = Golden.create ~nharts:1 pmem mmio in
  Golden.set_pc g ~hart:0 base;
  match Golden.run g ~hart:0 ~max:2_000_000 with
  | `Halted _ -> Option.get (Mmio.exit_code mmio ~hart:0)
  | `Timeout -> Alcotest.fail "golden timed out"

let exit_with p =
  let open Reg_name in
  Asm.li p a7 93L;
  Asm.ecall p

(* sum of i*i for i in 0..n-1, with loads/stores through an array *)
let array_kernel n =
  let open Reg_name in
  let p = Asm.create () in
  Asm.li p s0 0x80100000L;
  (* array base *)
  Asm.li p s1 (Int64.of_int n);
  Asm.li p t0 0L;
  (* store phase *)
  Asm.label p "st";
  Asm.mul p t1 t0 t0;
  Asm.slli p t2 t0 3;
  Asm.add p t2 t2 s0;
  Asm.sd p t1 0L t2;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s1 "st";
  (* load/accumulate phase *)
  Asm.li p t0 0L;
  Asm.li p a0 0L;
  Asm.label p "ld";
  Asm.slli p t2 t0 3;
  Asm.add p t2 t2 s0;
  Asm.ld p t1 0L t2;
  Asm.add p a0 a0 t1;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s1 "ld";
  exit_with p;
  p

let branchy_kernel n =
  let open Reg_name in
  let p = Asm.create () in
  Asm.li p t0 0L;
  Asm.li p a0 0L;
  Asm.li p t3 2654435761L;
  Asm.label p "loop";
  (* pseudo-random branch on hash of i *)
  Asm.mul p t1 t0 t3;
  Asm.srli p t1 t1 13;
  Asm.andi p t1 t1 1L;
  Asm.beq p t1 zero "skip";
  Asm.addi p a0 a0 3L;
  Asm.label p "skip";
  Asm.addi p a0 a0 1L;
  Asm.addi p t0 t0 1L;
  Asm.li p t2 (Int64.of_int n);
  Asm.blt p t0 t2 "loop";
  exit_with p;
  p

let call_kernel () =
  let open Reg_name in
  let p = Asm.create () in
  Asm.li p sp 0x80200000L;
  Asm.li p a0 12L;
  Asm.call p "fact";
  exit_with p;
  (* recursive factorial mod 2^64 *)
  Asm.label p "fact";
  Asm.li p t0 1L;
  Asm.bne p a0 t0 "rec";
  Asm.ret p;
  Asm.label p "rec";
  Asm.addi p sp sp (-16L);
  Asm.sd p ra 0L sp;
  Asm.sd p a0 8L sp;
  Asm.addi p a0 a0 (-1L);
  Asm.call p "fact";
  Asm.ld p t1 8L sp;
  Asm.mul p a0 a0 t1;
  Asm.ld p ra 0L sp;
  Asm.addi p sp sp 16L;
  Asm.ret p;
  p

let check_against_golden ?paging ?tlb_cfg name prog =
  let expect = golden_exit prog in
  let m = build ?paging ?tlb_cfg prog in
  let got = run_to_exit m in
  Alcotest.check i64 name expect got

let test_array () = check_against_golden "array kernel" (array_kernel 200)
let test_branchy () = check_against_golden "branchy kernel" (branchy_kernel 300)
let test_calls () = check_against_golden "recursive calls" (call_kernel ())

let test_paging () =
  check_against_golden ~paging:true "array kernel under Sv39" (array_kernel 100);
  check_against_golden ~paging:true ~tlb_cfg:Tlb.Tlb_sys.nonblocking_config
    "array kernel, non-blocking TLB" (array_kernel 100)

let test_tlb_stats () =
  (* touching many pages must show up as D-TLB misses *)
  let open Reg_name in
  let p = Asm.create () in
  Asm.li p s0 0x80100000L;
  Asm.li p t0 0L;
  Asm.li p s1 64L;
  Asm.label p "loop";
  Asm.sd p t0 0L s0;
  Asm.li p t2 4096L;
  Asm.add p s0 s0 t2;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s1 "loop";
  Asm.li p a0 0L;
  exit_with p;
  let m = build ~paging:true p in
  ignore (run_to_exit m);
  let misses = Stats.find m.stats "tlb.d.misses" in
  Alcotest.(check bool) (Printf.sprintf "dtlb misses %d >= 60" misses) true (misses >= 60)

let test_amo_lrsc () =
  let open Reg_name in
  let p = Asm.create () in
  Asm.li p s0 0x80100000L;
  Asm.li p t0 5L;
  Asm.sd p t0 0L s0;
  Asm.li p t1 7L;
  Asm.amoadd_d p t2 t1 s0;
  Asm.label p "retry";
  Asm.lr_d p t3 s0;
  Asm.addi p t3 t3 100L;
  Asm.sc_d p t4 t3 s0;
  Asm.bne p t4 zero "retry";
  Asm.ld p a0 0L s0;
  (* 5+7+100 = 112 *)
  Asm.add p a0 a0 t2;
  (* + old value 5 = 117 *)
  exit_with p;
  check_against_golden "amo/lrsc" p

let suite =
  let t = Alcotest.test_case in
  [
    t "array kernel vs golden" `Quick test_array;
    t "branchy kernel vs golden" `Quick test_branchy;
    t "recursive calls vs golden" `Quick test_calls;
    t "paging: blocking + non-blocking TLBs" `Quick test_paging;
    t "tlb: miss counters move" `Quick test_tlb_stats;
    t "amo + lr/sc vs golden" `Quick test_amo_lrsc;
  ]
