(* debug non-blocking TLB timeout *)
open Cmd
open Isa
let base = Addr_map.dram_base
let () =
  let open Reg_name in
  let p = Asm.create () in
  Asm.li p a0 7L;
  Asm.li p a7 93L;
  Asm.ecall p;
  let clk = Clock.create () in
  let pmem = Phys_mem.create () in
  let mmio = Mmio.create () in
  let stats = Stats.create () in
  Array.iteri (fun i w -> Phys_mem.store pmem ~bytes:4 (Int64.add base (Int64.of_int (i*4))) (Int64.of_int w)) (Asm.words p ~base);
  let mem_cfg = { Mem.Mem_sys.l1d_bytes=4096; l1d_ways=2; l1d_mshrs=4; l1i_bytes=4096; l1i_ways=2; l2_bytes=16384; l2_ways=4; l2_mshrs=4; mem_latency=20; mem_inflight=8 } in
  let ms = Mem.Mem_sys.create clk pmem mem_cfg ~ncores:1 ~fetch_width:2 ~stats in
  let tlb = Tlb.Tlb_sys.create clk Tlb.Tlb_sys.nonblocking_config ~stats () in
  let core = Inorder.Inorder_core.create clk ~hart_id:0 ~icache:(Mem.Mem_sys.icache ms 0) ~dcache:(Mem.Mem_sys.dcache ms 0) ~tlb ~mmio ~stats () in
  let pt = Page_table.create pmem ~alloc_base:0x90000000L in
  Page_table.map_range pt ~va:base ~pa:base ~len:0x1000000L;
  Tlb.Tlb_sys.set_satp tlb (Page_table.root pt);
  let rules = Inorder.Inorder_core.rules core @ Tlb.Tlb_sys.rules tlb @ Tlb.Walk_xbar.rules [| tlb |] ~l2:(Mem.Mem_sys.l2 ms) @ Mem.Mem_sys.rules ms in
  let sim = Sim.create clk rules in
  (match Sim.run_until sim ~max_cycles:5000 (fun () -> Inorder.Inorder_core.halted core) with
  | `Done n -> Printf.printf "done in %d cycles\n" n
  | `Timeout _ ->
    Printf.printf "TIMEOUT\n";
    Format.printf "%a@." Sim.pp_stats sim;
    Format.printf "%a@." Stats.pp stats)
