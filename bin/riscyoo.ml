(* The riscyoo command-line driver: run a workload kernel on a chosen
   processor model and print the performance counters.

   Examples:
     dune exec bin/riscyoo.exe -- run mcf --config tplus
     dune exec bin/riscyoo.exe -- run blackscholes --parsec --cores 4 --config quad-wmm
     dune exec bin/riscyoo.exe -- list *)

module Cmd_stats = Cmd.Stats
module Cmd_sim = Cmd.Sim
module Cmd_kernel = Cmd.Kernel
open Cmdliner
open Workloads

(* Single exit funnel: the domain pool is shut down explicitly on every
   path, so a failing run never leaves worker domains blocked on the job
   queue at process teardown. *)
let die code =
  Cmd_sim.shutdown_pool ();
  exit code

let configs =
  [
    ("b", Ooo.Config.riscyoo_b);
    ("cminus", Ooo.Config.riscyoo_cminus);
    ("tplus", Ooo.Config.riscyoo_tplus);
    ("tplus-rplus", Ooo.Config.riscyoo_tplus_rplus);
    ("a57-proxy", Ooo.Config.a57_proxy);
    ("denver-proxy", Ooo.Config.denver_proxy);
    ("quad-tso", Ooo.Config.multicore Ooo.Config.TSO);
    ("quad-wmm", Ooo.Config.multicore Ooo.Config.WMM);
    ("sixteen-tso", Ooo.Config.multicore16 Ooo.Config.TSO);
    ("sixteen-wmm", Ooo.Config.multicore16 Ooo.Config.WMM);
  ]

let list_cmd =
  let doc = "List available kernels and configurations" in
  let run () =
    print_endline "SPEC-shaped kernels (single-core):";
    List.iter (fun n -> Printf.printf "  %s\n" n) Spec_kernels.names;
    print_endline "PARSEC-shaped kernels (use --parsec, multi-core):";
    List.iter (fun n -> Printf.printf "  %s\n" n) Parsec_kernels.names;
    print_endline "Server-shaped kernels (use --server, multi-core):";
    List.iter (fun n -> Printf.printf "  %s\n" n) Server_kernels.names;
    print_endline "Configurations (--config):";
    List.iter (fun (n, c) -> Format.printf "  %-14s %a@." n Ooo.Config.pp c) configs;
    print_endline "  inorder-10 / inorder-120   (the Rocket-like in-order baseline)"
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run a kernel on a processor model" in
  let kernel = Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL") in
  let config =
    Arg.(value & opt string "tplus" & info [ "config" ] ~docv:"CONFIG" ~doc:"processor configuration")
  in
  let cores = Arg.(value & opt int 1 & info [ "cores" ] ~doc:"number of cores") in
  let scale = Arg.(value & opt int 1 & info [ "scale" ] ~doc:"workload scale factor") in
  let parsec = Arg.(value & flag & info [ "parsec" ] ~doc:"kernel is a PARSEC-shaped parallel kernel") in
  let server =
    Arg.(
      value & flag
      & info [ "server" ]
          ~doc:"kernel is a server-shaped communication kernel (request/response, rings, locks)")
  in
  let cosim = Arg.(value & flag & info [ "cosim" ] ~doc:"lockstep golden-model checking") in
  let paging = Arg.(value & opt bool true & info [ "paging" ] ~doc:"enable Sv39 translation") in
  let megapages = Arg.(value & flag & info [ "megapages" ] ~doc:"map memory with 2MB superpages") in
  let mesi = Arg.(value & flag & info [ "mesi" ] ~doc:"MESI coherence instead of MSI") in
  let prefetch = Arg.(value & flag & info [ "st-prefetch" ] ~doc:"store prefetching") in
  let predictor =
    Arg.(value & opt string "tournament" & info [ "predictor" ] ~doc:"tournament|gshare|bimodal")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"print every committed instruction") in
  let rules = Arg.(value & flag & info [ "rules" ] ~doc:"print per-rule firing statistics") in
  let watchdog =
    Arg.(
      value & opt int 0
      & info [ "watchdog" ] ~docv:"N"
          ~doc:"trip (with a rule-starvation report) after N cycles without a rule firing or an \
                instruction committing (0 = off)")
  in
  let invariants =
    Arg.(
      value & flag
      & info [ "check-invariants" ]
          ~doc:"check ROB/free-list/LSQ/store-buffer/L2-directory invariants every cycle")
  in
  let inject =
    Arg.(
      value & opt int 0
      & info [ "inject" ] ~docv:"TRIALS"
          ~doc:"run a fault-injection campaign of TRIALS single-bit flips instead of a plain run")
  in
  let inject_seed =
    Arg.(value & opt int 0xFA17 & info [ "inject-seed" ] ~docv:"SEED" ~doc:"campaign RNG seed")
  in
  let no_fastpath =
    Arg.(
      value & flag
      & info [ "no-fastpath" ]
          ~doc:"strip can_fire predicates: attempt every rule every cycle (the pre-optimization \
                scheduler; results must be bit-identical)")
  in
  let audit =
    Arg.(
      value & flag
      & info [ "scheduler-audit" ]
          ~doc:"attempt every rule and verify each can_fire predicate against what its rule \
                actually did; exits 3 on a lying predicate")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:"fire each core's rule partition on its own domain, N domains at a time; results \
                are bit-identical to --jobs 1 (clamped to the host's recommended domain count)")
  in
  let epoch =
    Arg.(
      value & opt int 1
      & info [ "epoch" ] ~docv:"E"
          ~doc:"let partitions free-run E cycles between synchronizations (lookahead epochs); 0 \
                derives the full safe bound from the memory system's declared boundary latency. \
                Results at a given E are bit-identical at any --jobs")
  in
  let partition_audit =
    Arg.(
      value & flag
      & info [ "partition-audit" ]
          ~doc:"run serially while recording the partition behind every EHR/FIFO/wire access; \
                exits 3 on an undeclared cross-partition touch")
  in
  let no_compile =
    Arg.(
      value & flag
      & info [ "no-compile" ]
          ~doc:"skip schedule compilation and run every rule through the interpreted step path \
                (port bookkeeping + undo logging); results are bit-identical to the compiled \
                schedule")
  in
  let compile_audit =
    Arg.(
      value & flag
      & info [ "compile-audit" ]
          ~doc:"run interpreted while dynamically discharging the schedule compiler's proof \
                obligations (declared footprints cover every tracked access; admissible rules \
                never Retry; total rules never roll back tracked writes), then print the \
                conflict-matrix report; exits 3 on a violated obligation")
  in
  let obs_konata =
    Arg.(
      value & opt (some string) None
      & info [ "obs-konata" ] ~docv:"FILE"
          ~doc:"write a per-instruction pipeline trace in Konata (Kanata 0004) format")
  in
  let obs_chrome =
    Arg.(
      value & opt (some string) None
      & info [ "obs-chrome" ] ~docv:"FILE"
          ~doc:"write a rule-level cycle trace as Chrome trace_event JSON (chrome://tracing, \
                Perfetto), one track per partition")
  in
  let stats_json =
    Arg.(
      value & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:"write every performance counter plus derived metrics (IPC, MPKI, occupancy \
                averages) as machine-readable JSON")
  in
  let obs_window =
    Arg.(
      value & opt (some (pair ~sep:':' int int)) None
      & info [ "obs-window" ] ~docv:"A:B"
          ~doc:"restrict trace capture to cycles [A, B): instructions decoded and rules fired \
                outside the window are not recorded (in-flight ones still complete)")
  in
  let run kernel config cores scale parsec server cosim paging megapages mesi prefetch predictor
      trace rules watchdog invariants inject inject_seed no_fastpath audit jobs epoch
      partition_audit no_compile compile_audit obs_konata obs_chrome stats_json obs_window =
    let fastpath = not no_fastpath in
    let compile = not no_compile in
    (* Asking for more domains than the host has cores just parks idle
       workers on the pool's condition variable while oversubscription slows
       the rest down — clamp, loudly, rather than crash or silently thrash. *)
    let jobs =
      let cap = Domain.recommended_domain_count () in
      if jobs > cap then begin
        Printf.eprintf
          "riscyoo: --jobs %d oversubscribes this host (recommended domain count %d); clamping\n%!"
          jobs cap;
        cap
      end
      else jobs
    in
    let prog =
      if server then Server_kernels.find kernel ~harts:cores ~scale
      else if parsec then Parsec_kernels.find kernel ~harts:cores ~scale
      else Spec_kernels.find kernel ~scale
    in
    let kind =
      match config with
      | "inorder-10" ->
        Machine.In_order
          { mem = { Mem.Mem_sys.default_config with mem_latency = 10 }; tlb = Tlb.Tlb_sys.blocking_config }
      | "inorder-120" ->
        Machine.In_order { mem = Mem.Mem_sys.default_config; tlb = Tlb.Tlb_sys.blocking_config }
      | "golden" -> Machine.Golden_only
      | name -> (
        match List.assoc_opt name configs with
        | Some cfg ->
          let pk =
            match predictor with
            | "tournament" -> Branch.Dir_pred.Tournament
            | "gshare" -> Branch.Dir_pred.Gshare
            | "bimodal" -> Branch.Dir_pred.Bimodal
            | p -> failwith ("unknown predictor " ^ p)
          in
          Machine.Out_of_order
            {
              cfg with
              Ooo.Config.st_prefetch = prefetch;
              predictor = pk;
              mem = { cfg.Ooo.Config.mem with Mem.Mem_sys.mesi };
            }
        | None -> failwith ("unknown config " ^ name))
    in
    if inject > 0 then begin
      (* Campaign mode: golden reference exits, then a fault-free DUT run to
         size the injection horizon, then the seeded trials — each a fresh
         machine with lockstep cosim (single-core), invariant checks and a
         watchdog, so every flip is either masked, detected or diagnosed. *)
      let gm = Machine.create ~ncores:cores ~paging ~megapages Machine.Golden_only prog in
      let go = Machine.run gm in
      if go.Machine.timed_out then failwith "golden reference run timed out";
      let clean = Machine.create ~ncores:cores ~paging ~megapages ~jobs kind prog in
      let co = Machine.run clean in
      if co.Machine.timed_out then failwith "fault-free run timed out";
      let horizon = co.Machine.cycles in
      let wd_limit = if watchdog > 0 then watchdog else 10_000 in
      let harness =
        {
          Verif.Fault.build =
            (fun () ->
              Machine.create ~ncores:cores ~paging ~megapages ~cosim:(cores = 1) ~jobs
                ~watchdog:wd_limit ~invariants:true kind prog);
          exec =
            (fun m ~on_cycle ->
              let o = Machine.run ~max_cycles:(2 * horizon + 10 * wd_limit) ~on_cycle m in
              if o.Machine.timed_out then `Timeout o.Machine.cycles else `Exit o.Machine.exits);
          reference = go.Machine.exits;
        }
      in
      let t0 = Unix.gettimeofday () in
      let s = Verif.Fault.run ~seed:inject_seed ~trials:inject ~horizon harness in
      Printf.printf "reference exits: %s  (fault-free run: %d cycles)\n"
        (String.concat " " (Array.to_list (Array.map Int64.to_string go.Machine.exits)))
        horizon;
      Verif.Report.print ~exemplars:10 s;
      Printf.printf "host: %.1fs\n" (Unix.gettimeofday () -. t0);
      if s.Verif.Fault.n_undiagnosed > 0 then die 1
    end
    else
    let obs =
      if obs_konata <> None || obs_chrome <> None || stats_json <> None then
        Some
          (Obs.Hub.create ?window:obs_window ?konata:obs_konata ?chrome:obs_chrome
             ?stats_json
             ~meta:
               [
                 ("kernel", kernel);
                 ("config", config);
                 ("cores", string_of_int cores);
                 ("jobs", string_of_int jobs);
               ]
             ~nharts:cores ())
      else None
    in
    let m =
      try
        Machine.create ~ncores:cores ~paging ~megapages ~cosim ~fastpath ~audit ~jobs ~epoch
          ~partition_audit ~compile ~compile_audit ~watchdog ~invariants ?obs kind prog
      with Cmd_sim.Partition_error msg ->
        Printf.printf "PARTITION ERROR: %s\n" msg;
        die 3
    in
    if compile_audit then begin
      Printf.printf "compile    : %s\n" (Machine.compile_status m);
      print_string (Machine.compile_report m)
    end;
    if trace then Machine.trace_commits m Format.std_formatter;
    let t0 = Unix.gettimeofday () in
    let o =
      try Machine.run m with
      | Verif.Watchdog.Trip info ->
        print_endline info.Verif.Watchdog.report;
        die 2
      | Verif.Invariant.Violation (name, msg) ->
        Printf.printf "INVARIANT VIOLATION [%s]: %s\n" name msg;
        die 2
      | Cmd_sim.Audit_fail msg ->
        Printf.printf "SCHEDULER AUDIT FAILURE: %s\n" msg;
        die 3
      | Cmd_kernel.Partition_overlap msg ->
        Printf.printf "PARTITION AUDIT FAILURE: %s\n" msg;
        die 3
      | Cmd_kernel.Compile_audit_fail msg ->
        Printf.printf "COMPILE AUDIT FAILURE: %s\n" msg;
        print_string (Machine.compile_report m);
        die 3
    in
    let dt = Unix.gettimeofday () -. t0 in
    if trace then Machine.flush_trace m;
    (* artifacts are written even on timeout — a trace of a hang is the
       most useful trace of all *)
    Option.iter
      (fun hub ->
        Obs.Hub.finish hub ~cycles:o.Machine.cycles ~instrs:(Machine.instrs m)
          ~stats:(Machine.stats m))
      obs;
    if o.Machine.timed_out then print_endline "TIMED OUT"
    else begin
      Printf.printf "exit codes : %s\n"
        (String.concat " " (Array.to_list (Array.map Int64.to_string o.Machine.exits)));
      Printf.printf "cycles     : %d\n" o.Machine.cycles;
      Printf.printf "instrs     : %d\n" (Machine.instrs m);
      Printf.printf "IPC        : %.3f\n"
        (float_of_int (Machine.instrs m) /. float_of_int (max 1 o.Machine.cycles));
      Printf.printf "host       : %.1fs (%.0f sim-cycles/s)\n" dt (float_of_int o.Machine.cycles /. dt);
      if rules then Printf.printf "compile    : %s\n" (Machine.compile_status m);
      print_endline "counters:";
      List.iter
        (fun (n, v) -> if v <> 0 then Printf.printf "  %-28s %d\n" n v)
        (Cmd_stats.to_list (Machine.stats m));
      if rules then Format.printf "%a@." Machine.pp_rule_stats m
    end
  in
  Cmdliner.Cmd.v (Cmdliner.Cmd.info "run" ~doc)
    Term.(
      const run $ kernel $ config $ cores $ scale $ parsec $ server $ cosim $ paging $ megapages
      $ mesi $ prefetch $ predictor $ trace $ rules $ watchdog $ invariants $ inject $ inject_seed
      $ no_fastpath $ audit $ jobs $ epoch $ partition_audit $ no_compile $ compile_audit $ obs_konata
      $ obs_chrome $ stats_json $ obs_window)

let synth_cmd =
  let doc = "Print the synthesis model's area/frequency estimates" in
  let run () =
    List.iter
      (fun (n, cfg) ->
        Printf.printf "%-14s %5.2f GHz  %6.2f M NAND2\n" n
          (Synth.Timing.max_freq_ghz cfg)
          (Synth.Gates.total cfg /. 1e6))
      configs
  in
  Cmdliner.Cmd.v (Cmdliner.Cmd.info "synth" ~doc) Term.(const run $ const ())

let litmus_cmd =
  let doc = "Run memory-model litmus tests against reference outcome sets" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs each litmus test of the classic suite (SB, MP, LB, S, R, 2+2W, CoRR, CoWW, IRIW \
         and fence variants) on the quad-core machine across shuffled rule schedules, and checks \
         every observed outcome against the set an operational SC/TSO/WMM reference model \
         allows. Exits 1 if a forbidden outcome, a --jobs disagreement or an unmet \
         --require-relaxed is found; 2 on harness errors.";
    ]
  in
  let model =
    Arg.(
      value & opt string "both"
      & info [ "model" ] ~docv:"MODEL" ~doc:"memory model(s) to test: tso, wmm or both")
  in
  let seeds =
    Arg.(
      value & opt int 0
      & info [ "seeds" ] ~docv:"N"
          ~doc:"schedule seeds per (test, model, jobs); 0 = auto (200, or 12 with --quick)")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"small sweep for PR CI (12 seeds)") in
  let test_name =
    Arg.(
      value & opt (some string) None
      & info [ "test" ] ~docv:"NAME" ~doc:"run a single named test instead of the whole suite")
  in
  let hist =
    Arg.(
      value & opt (some string) None
      & info [ "hist" ] ~docv:"FILE" ~doc:"write the outcome histograms as JSON")
  in
  let trace_dir =
    Arg.(
      value & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:"replay the first run of each forbidden outcome with the Konata pipeline tracer \
                and drop the trace here")
  in
  let jobs_only =
    Arg.(
      value & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:"run only at N domains (default: every seed runs at both --jobs 1 and 4, and the \
                outcomes must be bit-identical)")
  in
  let no_stagger =
    Arg.(
      value & flag
      & info [ "no-stagger" ] ~doc:"drop the seed-derived start-time skew (identical images)")
  in
  let require_relaxed =
    Arg.(
      value & flag
      & info [ "require-relaxed" ]
          ~doc:"also fail unless the sweep observed a non-SC outcome and, under WMM, an outcome \
                outside the TSO set — guards the harness against sweeps too tame to distinguish \
                the models")
  in
  let dut =
    Arg.(
      value & opt string "ooo"
      & info [ "dut" ] ~docv:"DUT"
          ~doc:"implementation to sweep: ooo (default) or inorder — the in-order baseline is \
                bounded by the SC outcome set")
  in
  let mesi =
    Arg.(value & flag & info [ "mesi" ] ~doc:"run the cache hierarchy with the MESI protocol")
  in
  let obligations =
    Arg.(
      value & flag
      & info [ "obligations" ]
          ~doc:"arm the per-interface contract monitors (LSQ, store buffer, L2 directory) on \
                every run; a violating cycle fails the sweep naming the module and interface, \
                and per-monitor event counts are reported")
  in
  let inject =
    Arg.(
      value & opt (some string) None
      & info [ "inject" ] ~docv:"BUG"
          ~doc:"enable a seeded implementation bug (ld-bypass-sq: load issue skips the \
                store-queue overlap scan) — for demonstrating --obligations catches it")
  in
  let run model seeds quick test_name hist trace_dir jobs_only no_stagger require_relaxed dut
      mesi obligations inject =
    let models =
      match String.lowercase_ascii model with
      | "tso" -> [ Ooo.Config.TSO ]
      | "wmm" -> [ Ooo.Config.WMM ]
      | "both" -> [ Ooo.Config.TSO; Ooo.Config.WMM ]
      | m ->
        Printf.eprintf "unknown model %s (want tso, wmm or both)\n" m;
        die 2
    in
    let seeds = if seeds > 0 then seeds else if quick then 12 else 200 in
    let tests =
      match test_name with
      | None -> Litmus.Test.all
      | Some n -> (
        match Litmus.Test.find n with
        | Some t -> [ t ]
        | None ->
          Printf.eprintf "unknown litmus test %s; available: %s\n" n
            (String.concat " " (List.map (fun (t : Litmus.Test.t) -> t.name) Litmus.Test.all));
          die 2)
    in
    let jobs_list = match jobs_only with Some j -> [ j ] | None -> [ 1; 4 ] in
    let dut =
      match String.lowercase_ascii dut with
      | "ooo" -> Litmus.Run.Dut_ooo
      | "inorder" | "in-order" -> Litmus.Run.Dut_inorder
      | d ->
        Printf.eprintf "unknown dut %s (want ooo or inorder)\n" d;
        die 2
    in
    let inject_lsq_bug =
      match inject with
      | None -> false
      | Some "ld-bypass-sq" -> true
      | Some b ->
        Printf.eprintf "unknown injected bug %s (want ld-bypass-sq)\n" b;
        die 2
    in
    Option.iter (fun d -> if not (Sys.file_exists d) then Unix.mkdir d 0o755) trace_dir;
    let t0 = Unix.gettimeofday () in
    let reports =
      List.concat_map
        (fun m ->
          List.map
            (fun t ->
              let r =
                Litmus.Run.sweep ~seeds ~jobs_list ~stagger:(not no_stagger) ?trace_dir ~dut
                  ~mesi ~obligations ~inject_lsq_bug ~model:m t
              in
              Format.printf "%a" Litmus.Run.pp_report r;
              r)
            tests)
        models
    in
    Option.iter
      (fun f ->
        let oc = open_out f in
        output_string oc (Litmus.Run.reports_to_json ~seeds reports);
        close_out oc)
      hist;
    let failed = List.filter (fun r -> not (Litmus.Run.ok r)) reports in
    let errors = List.exists (fun r -> r.Litmus.Run.errors <> []) reports in
    let relaxed = List.exists (fun r -> r.Litmus.Run.relaxed_seen) reports in
    let wmm_only =
      List.exists
        (fun r -> r.Litmus.Run.model = Ooo.Config.WMM && r.Litmus.Run.wmm_only_seen)
        reports
    in
    Printf.printf "%d sweeps, %d failed  (%.1fs host)\n" (List.length reports)
      (List.length failed)
      (Unix.gettimeofday () -. t0);
    if require_relaxed then begin
      if not relaxed then print_endline "REQUIRE-RELAXED: no non-SC outcome was ever observed";
      if List.mem Ooo.Config.WMM models && not wmm_only then
        print_endline "REQUIRE-RELAXED: no outcome outside the TSO set was observed under WMM"
    end;
    if errors then die 2;
    if failed <> [] || (require_relaxed && (not relaxed || (List.mem Ooo.Config.WMM models && not wmm_only)))
    then die 1;
    die 0
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "litmus" ~doc ~man)
    Term.(
      const run $ model $ seeds $ quick $ test_name $ hist $ trace_dir $ jobs_only $ no_stagger
      $ require_relaxed $ dut $ mesi $ obligations $ inject)

let farm_cmd =
  let doc = "Run a crash-safe farm of independent simulation jobs" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Expands a riscyoo-farm-manifest-v1 JSON file into independent jobs (litmus seeds, \
         fault-injection trials, synthetic poison jobs) and drains them across the worker-domain \
         pool with per-job wall-clock timeouts, retry-with-backoff and \
         quarantine-and-continue. Every terminal result is appended to a checksummed, fsync'd \
         journal, so a killed sweep resumes with --resume, re-running only unfinished jobs; the \
         final results file is byte-identical either way. SIGINT/SIGTERM cancel in-flight jobs \
         and leave the journal consistent for a later resume.";
      `P
        "Exits 0 when every job finished clean, 1 when jobs were quarantined, 2 on \
         manifest/journal errors, 3 when interrupted (resume with --resume).";
    ]
  in
  let manifest_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MANIFEST" ~doc:"riscyoo-farm-manifest-v1 JSON file")
  in
  let resume = Arg.(value & flag & info [ "resume" ] ~doc:"recover the journal and re-run only unfinished jobs") in
  let journal_arg =
    Arg.(
      value & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"journal path (default: MANIFEST with a .journal.jsonl extension; with --only the \
                journal is disabled unless given explicitly)")
  in
  let timeout_s =
    Arg.(
      value & opt float 60.
      & info [ "timeout-s" ] ~docv:"S" ~doc:"per-attempt wall-clock limit; 0 disables")
  in
  let max_retries =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"N" ~doc:"retry rounds after the first attempt, then quarantine")
  in
  let backoff_s =
    Arg.(
      value & opt float 0.05
      & info [ "backoff-s" ] ~docv:"S" ~doc:"base retry backoff; round r waits S*2^(r-1), capped at 5s")
  in
  let workers =
    Arg.(value & opt int 3 & info [ "workers" ] ~docv:"N" ~doc:"helper domains (total parallelism N+1)")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"write canonical riscyoo-farm-results-v1 JSON here")
  in
  let only =
    Arg.(
      value & opt (some string) None
      & info [ "only" ] ~docv:"ID[,ID..]"
          ~doc:"run only jobs whose id starts with one of the given prefixes (deterministic \
                replay of quarantined jobs)")
  in
  let hist =
    Arg.(
      value & opt (some string) None
      & info [ "hist" ] ~docv:"FILE"
          ~doc:"write the litmus jobs' outcome histograms as riscyoo-litmus-v1 JSON")
  in
  let abort_after =
    Arg.(
      value & opt (some int) None
      & info [ "abort-after" ] ~docv:"N"
          ~doc:"(testing) simulate a mid-sweep kill after N journal appends")
  in
  let run manifest_path resume journal_arg timeout_s max_retries backoff_s workers out only hist
      abort_after =
    let m =
      try Farm.Jobs.load manifest_path with
      | Farm.Json.Parse_error e ->
        Printf.eprintf "manifest error: %s\n" e;
        die 2
      | Sys_error e ->
        Printf.eprintf "manifest error: %s\n" e;
        die 2
    in
    let jobs = Farm.Jobs.jobs ~manifest_path m in
    let jobs =
      match only with
      | None -> jobs
      | Some pats ->
        let pats = String.split_on_char ',' pats in
        List.filter
          (fun (j : Farm.Sweep.job) -> List.exists (fun p -> String.starts_with ~prefix:p j.id) pats)
          jobs
    in
    if jobs = [] then begin
      Printf.eprintf "farm: no jobs selected\n";
      die 2
    end;
    let journal =
      match (journal_arg, only) with
      | Some f, _ -> Some f
      | None, Some _ -> None (* a filtered job set would not match the journal's manifest *)
      | None, None -> Some (Filename.remove_extension manifest_path ^ ".journal.jsonl")
    in
    (* SIGINT/SIGTERM: set the stop flag; in-flight jobs cancel at their
       next hook poll, the journal (fsync'd per append) stays consistent,
       and the sweep exits resumable. A second signal kills outright. *)
    let stop = Atomic.make false in
    let on_signal _ =
      if Atomic.get stop then exit 130;
      Atomic.set stop true;
      prerr_endline "farm: interrupted — cancelling in-flight jobs (journal is consistent; resume with --resume)"
    in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    let config =
      { Farm.Sweep.workers; timeout_s; max_retries; backoff_s }
    in
    let t0 = Unix.gettimeofday () in
    let o =
      try
        Farm.Sweep.run ?journal ~resume ~should_stop:(fun () -> Atomic.get stop) ?abort_after
          ~log:print_endline config jobs
      with Farm.Journal.Corrupt e ->
        Printf.eprintf "journal error: %s\n" e;
        die 2
    in
    Printf.printf "farm: %d jobs  %d ok  %d quarantined  %d resumed  %d unfinished  (%.1fs host)\n"
      (List.length o.Farm.Sweep.records) o.Farm.Sweep.n_ok o.Farm.Sweep.n_quarantined
      o.Farm.Sweep.n_resumed o.Farm.Sweep.n_unfinished
      (Unix.gettimeofday () -. t0);
    List.iter
      (fun (id, err, replay) ->
        Printf.printf "QUARANTINED %s\n  error : %s\n  replay: %s\n" id err replay)
      (Farm.Sweep.quarantined o);
    Option.iter
      (fun f ->
        let oc = open_out f in
        output_string oc (Farm.Sweep.results_json o);
        close_out oc)
      out;
    Option.iter
      (fun f ->
        let seeds =
          List.fold_left
            (fun acc -> function Farm.Jobs.Litmus ls -> max acc ls.Farm.Jobs.ls_seeds | _ -> acc)
            0 m.Farm.Jobs.sweeps
        in
        match Farm.Jobs.litmus_json ~seeds o with
        | Some json ->
          let oc = open_out f in
          output_string oc json;
          close_out oc
        | None -> prerr_endline "farm: --hist given but the sweep holds no litmus records")
      hist;
    if o.Farm.Sweep.interrupted then die 3;
    if o.Farm.Sweep.n_quarantined > 0 then die 1;
    die 0
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "farm" ~doc ~man)
    Term.(
      const run $ manifest_arg $ resume $ journal_arg $ timeout_s $ max_retries $ backoff_s
      $ workers $ out $ only $ hist $ abort_after)

let explore_cmd =
  let doc = "Sweep a config space through the farm and compute IPC-vs-area Pareto fronts" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Expands a riscyoo-explore-manifest-v1 JSON file — a base configuration, a grid/list of \
         microarchitectural config points (ROB/IQ/LSQ sizes, physical registers, branch \
         predictor, MSI vs MESI, TLB, core count, L2 banks) and a workload list — into one farm \
         job per workload x point. Each job runs the workload on a machine built from that \
         point, recording IPC/MPKI/occupancy from the stats schema plus the synth model's \
         area/frequency estimate, with the farm's journal/resume/quarantine machinery \
         underneath. The non-dominated IPC-vs-area subset per workload is the Pareto front \
         (riscyoo-pareto-v1, deterministic across --workers).";
      `P
        "Exits 0 when every point ran clean and the designated reference config (if any) sits \
         on every workload's front; 1 when points were quarantined or the reference fell off a \
         front; 2 on manifest errors; 3 when interrupted (resume with --resume).";
    ]
  in
  let manifest_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MANIFEST" ~doc:"riscyoo-explore-manifest-v1 JSON file")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"clamp every grid axis to its first 2 values (CI smoke sweeps)")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"write canonical riscyoo-farm-results-v1 JSON here")
  in
  let front =
    Arg.(
      value & opt (some string) None
      & info [ "front" ] ~docv:"FILE" ~doc:"write the riscyoo-pareto-v1 Pareto fronts here")
  in
  let workers =
    Arg.(value & opt int 3 & info [ "workers" ] ~docv:"N" ~doc:"helper domains (total parallelism N+1)")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ] ~doc:"recover the journal and re-run only unfinished points")
  in
  let journal_arg =
    Arg.(
      value & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"journal path (default: MANIFEST with a .journal.jsonl extension; with --only the \
                journal is disabled unless given explicitly)")
  in
  let timeout_s =
    Arg.(
      value & opt float 300.
      & info [ "timeout-s" ] ~docv:"S" ~doc:"per-point wall-clock limit; 0 disables")
  in
  let only =
    Arg.(
      value & opt (some string) None
      & info [ "only" ] ~docv:"ID[,ID..]"
          ~doc:"run only jobs whose id starts with one of the given prefixes (deterministic \
                replay of quarantined points)")
  in
  let run manifest_path quick out front workers resume journal_arg timeout_s only =
    let space, m =
      try
        let ic = open_in_bin manifest_path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let j = Rjson.of_string s in
        (match Rjson.mem "schema" j with
        | Some (Rjson.Str "riscyoo-explore-manifest-v1") -> ()
        | _ -> raise (Explore.Space.Bad_manifest "missing \"schema\": \"riscyoo-explore-manifest-v1\""));
        let j = if quick then Explore.Space.quick_json j else j in
        let space = Explore.Space.of_json j in
        (space, { Farm.Jobs.sweeps = [ Farm.Jobs.Explore space ] })
      with
      | Explore.Space.Bad_manifest e | Rjson.Parse_error e ->
        Printf.eprintf "manifest error: %s\n" e;
        die 2
      | Sys_error e ->
        Printf.eprintf "manifest error: %s\n" e;
        die 2
    in
    let jobs = Farm.Jobs.jobs ~replay_cmd:"explore" ~manifest_path m in
    let jobs =
      match only with
      | None -> jobs
      | Some pats ->
        let pats = String.split_on_char ',' pats in
        List.filter
          (fun (j : Farm.Sweep.job) -> List.exists (fun p -> String.starts_with ~prefix:p j.id) pats)
          jobs
    in
    if jobs = [] then begin
      Printf.eprintf "explore: no points selected\n";
      die 2
    end;
    Printf.printf "explore: %d points x %d workloads = %d jobs (base %s)\n"
      (Explore.Space.n_points space)
      (List.length space.Explore.Space.workloads)
      (List.length jobs) space.Explore.Space.base_name;
    let journal =
      match (journal_arg, only) with
      | Some f, _ -> Some f
      | None, Some _ -> None
      | None, None -> Some (Filename.remove_extension manifest_path ^ ".journal.jsonl")
    in
    let stop = Atomic.make false in
    let on_signal _ =
      if Atomic.get stop then exit 130;
      Atomic.set stop true;
      prerr_endline
        "explore: interrupted — cancelling in-flight points (journal is consistent; resume with --resume)"
    in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    let config = { Farm.Sweep.default_config with workers; timeout_s } in
    let t0 = Unix.gettimeofday () in
    let o =
      try
        Farm.Sweep.run ?journal ~resume ~should_stop:(fun () -> Atomic.get stop)
          ~log:print_endline config jobs
      with Farm.Journal.Corrupt e ->
        Printf.eprintf "journal error: %s\n" e;
        die 2
    in
    Printf.printf "explore: %d jobs  %d ok  %d quarantined  %d resumed  %d unfinished  (%.1fs host)\n"
      (List.length o.Farm.Sweep.records) o.Farm.Sweep.n_ok o.Farm.Sweep.n_quarantined
      o.Farm.Sweep.n_resumed o.Farm.Sweep.n_unfinished
      (Unix.gettimeofday () -. t0);
    List.iter
      (fun (id, err, replay) ->
        Printf.printf "QUARANTINED %s\n  error : %s\n  replay: %s\n" id err replay)
      (Farm.Sweep.quarantined o);
    Option.iter
      (fun f ->
        let oc = open_out f in
        output_string oc (Farm.Sweep.results_json o);
        close_out oc)
      out;
    let samples = Farm.Jobs.explore_samples o in
    let reference = space.Explore.Space.reference in
    (* human summary: the per-workload fronts *)
    List.iter
      (fun (w, ss) ->
        Printf.printf "%s: pareto front (of %d points)\n" w (List.length ss);
        List.iter
          (fun (s : Explore.Measure.sample) ->
            Printf.printf "  %-40s IPC %.3f  %6.2f M NAND2  %4.2f GHz  L2 %.2f mpki\n"
              s.Explore.Measure.point s.Explore.Measure.ipc
              (s.Explore.Measure.area_gates /. 1e6)
              s.Explore.Measure.freq_ghz s.Explore.Measure.l2_mpki)
          (Explore.Pareto.front ss))
      (Explore.Pareto.by_workload samples);
    Option.iter
      (fun f ->
        let oc = open_out f in
        output_string oc (Explore.Pareto.to_string ?reference samples);
        output_char oc '\n';
        close_out oc)
      front;
    let ref_ok = Explore.Pareto.reference_on_front ~reference samples in
    (match (reference, ref_ok) with
    | Some r, Some true -> Printf.printf "reference %s: on every front\n" r
    | Some r, Some false -> Printf.printf "REFERENCE %s: OFF the front\n" r
    | _ -> ());
    if o.Farm.Sweep.interrupted then die 3;
    if o.Farm.Sweep.n_quarantined > 0 || ref_ok = Some false then die 1;
    die 0
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "explore" ~doc ~man)
    Term.(
      const run $ manifest_arg $ quick $ out $ front $ workers $ resume $ journal_arg $ timeout_s
      $ only)

let drift_cmd =
  let doc = "Compare two riscyoo-litmus-v1 histograms for relaxation-rate drift" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Nightly trend tracking: for every (test, model) sweep present in both files, compares \
         the relaxation rate (fraction of runs whose outcome lies outside the SC set) and fails \
         when any pair drifts by more than --tolerance. Sweeps present on only one side are \
         reported but not fatal. Exits 1 on drift or a forbidden outcome in NEW, 2 on parse \
         errors.";
    ]
  in
  let old_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD" ~doc:"baseline JSON") in
  let new_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW" ~doc:"candidate JSON") in
  let tolerance =
    Arg.(
      value & opt float 0.15
      & info [ "tolerance" ] ~docv:"T"
          ~doc:"max allowed absolute change in per-sweep relaxation rate (a fraction in [0,1])")
  in
  let run old_path new_path tolerance =
    let load path =
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Farm.Json.of_string s
    in
    let sweeps j =
      match Farm.Json.get_list "sweeps" j with
      | Some l -> l
      | None -> failwith "no \"sweeps\" array (not a riscyoo-litmus-v1 file?)"
    in
    (* relaxation rate = non-SC outcomes / total runs *)
    let stats j =
      let test = Option.value ~default:"?" (Farm.Json.get_str "test" j) in
      let model = Option.value ~default:"?" (Farm.Json.get_str "model" j) in
      let runs = max 1 (Option.value ~default:1 (Farm.Json.get_int "runs" j)) in
      let outcomes = Option.value ~default:[] (Farm.Json.get_list "outcomes" j) in
      let relaxed =
        List.fold_left
          (fun acc o ->
            let cls = Option.value ~default:"SC" (Farm.Json.get_str "class" o) in
            let count = Option.value ~default:0 (Farm.Json.get_int "count" o) in
            if cls = "SC" then acc else acc + count)
          0 outcomes
      in
      let forbidden =
        match Farm.Json.get_list "forbidden" j with Some (_ :: _) -> true | _ -> false
      in
      (test ^ "/" ^ model, float_of_int relaxed /. float_of_int runs, forbidden)
    in
    match (load old_path, load new_path) with
    | exception Farm.Json.Parse_error e ->
      Printf.eprintf "drift: parse error: %s\n" e;
      die 2
    | exception Sys_error e ->
      Printf.eprintf "drift: %s\n" e;
      die 2
    | exception Failure e ->
      Printf.eprintf "drift: %s\n" e;
      die 2
    | old_j, new_j ->
      let old_stats = List.map stats (sweeps old_j) in
      let new_stats = List.map stats (sweeps new_j) in
      let failed = ref false in
      List.iter
        (fun (key, new_rate, forbidden) ->
          if forbidden then begin
            Printf.printf "DRIFT %-20s forbidden outcome present\n" key;
            failed := true
          end;
          match List.assoc_opt key (List.map (fun (k, r, _) -> (k, r)) old_stats) with
          | None -> Printf.printf "note  %-20s new sweep (no baseline)\n" key
          | Some old_rate ->
            let d = new_rate -. old_rate in
            if Float.abs d > tolerance then begin
              Printf.printf "DRIFT %-20s relaxation rate %.3f -> %.3f (|delta| %.3f > %.3f)\n" key
                old_rate new_rate (Float.abs d) tolerance;
              failed := true
            end
            else Printf.printf "ok    %-20s relaxation rate %.3f -> %.3f\n" key old_rate new_rate)
        new_stats;
      List.iter
        (fun (key, _, _) ->
          if not (List.exists (fun (k, _, _) -> k = key) new_stats) then
            Printf.printf "note  %-20s sweep dropped since baseline\n" key)
        old_stats;
      if !failed then die 1;
      die 0
  in
  Cmdliner.Cmd.v (Cmdliner.Cmd.info "drift" ~doc ~man) Term.(const run $ old_arg $ new_arg $ tolerance)

let () =
  let info = Cmdliner.Cmd.info "riscyoo" ~doc:"RiscyOO processor models and workloads" in
  die
    (Cmdliner.Cmd.eval
       (Cmdliner.Cmd.group info [ run_cmd; list_cmd; synth_cmd; litmus_cmd; farm_cmd; explore_cmd; drift_cmd ]))
