(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Figs. 12-21), plus the ablations called out in DESIGN.md and a
   Bechamel microbenchmark suite for the CMD kernel itself.

   Usage:
     bench/main.exe                 run every figure
     bench/main.exe fig15 fig16     run selected figures
     bench/main.exe --scale 3 ...   larger workloads
     bench/main.exe bechamel        CMD-kernel microbenchmarks
     bench/main.exe perf [--quick] [--out F] [--check BASELINE] [--stats-json F]
                                    sim-speed report (JSON) + CI perf gate;
                                    --stats-json dumps per-workload counters
   Figures: fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 fig21
            ablation-wakeup ablation-bypass ablation-tlb ablation-scheduler *)

open Workloads

let scale = ref 1
let parsec_scale = ref 1

(* ---------------------------------------------------------------- *)
(* Run management                                                     *)
(* ---------------------------------------------------------------- *)

type result = { cycles : int; instrs : int; stats : (string * int) list }

let results : (string * string, result) Hashtbl.t = Hashtbl.create 64
let golden_sums : (string, int64) Hashtbl.t = Hashtbl.create 16

let golden_checksum kernel =
  match Hashtbl.find_opt golden_sums kernel with
  | Some v -> v
  | None ->
    let prog = Spec_kernels.find kernel ~scale:!scale in
    let m = Machine.create Machine.Golden_only prog in
    let o = Machine.run ~max_cycles:100_000_000 m in
    if o.Machine.timed_out then failwith ("golden timed out on " ^ kernel);
    Hashtbl.add golden_sums kernel o.Machine.exits.(0);
    o.Machine.exits.(0)

let ipc r = float_of_int r.instrs /. float_of_int r.cycles

(* run one SPEC kernel on one machine kind, memoized, golden-checked *)
let run_spec ~config_name kind kernel =
  match Hashtbl.find_opt results (config_name, kernel) with
  | Some r -> r
  | None ->
    let t0 = Unix.gettimeofday () in
    let prog = Spec_kernels.find kernel ~scale:!scale in
    let m = Machine.create ~paging:true kind prog in
    let o = Machine.run ~max_cycles:200_000_000 m in
    if o.Machine.timed_out then failwith (Printf.sprintf "%s timed out on %s" config_name kernel);
    let expect = golden_checksum kernel in
    if o.Machine.exits.(0) <> expect then
      failwith
        (Printf.sprintf "%s on %s: checksum %Ld <> golden %Ld" config_name kernel
           o.Machine.exits.(0) expect);
    let r =
      { cycles = o.Machine.cycles; instrs = Machine.instrs m;
        stats = Cmd.Stats.to_list (Machine.stats m) }
    in
    Hashtbl.add results (config_name, kernel) r;
    Printf.eprintf "  [%s/%s] %d cycles, %d instrs, IPC %.3f (%.1fs)\n%!" config_name kernel
      r.cycles r.instrs (ipc r)
      (Unix.gettimeofday () -. t0);
    r

let ooo cfg = Machine.Out_of_order cfg
let spec_on cfg kernel = run_spec ~config_name:cfg.Ooo.Config.name (ooo cfg) kernel

let geomean l =
  exp (List.fold_left (fun a x -> a +. log x) 0.0 l /. float_of_int (List.length l))

let pp_row name cells = Printf.printf "%-14s %s\n" name (String.concat " " cells)
let header title = Printf.printf "\n=== %s ===\n" title

(* ---------------------------------------------------------------- *)
(* Configuration tables (Figs. 12-14)                                 *)
(* ---------------------------------------------------------------- *)

let fig12 () =
  header "Fig 12: RiscyOO-B configuration";
  Format.printf "%a@." Ooo.Config.pp Ooo.Config.riscyoo_b;
  Printf.printf
    "Front-end: 2-wide fetch/decode/rename; 256-entry BTB; tournament predictor (21264-style);\n\
     8-entry RAS. Execution: 64-entry ROB, 2 ALU + 1 MEM + 1 MULDIV pipelines, 16-entry IQs.\n\
     Ld-St: 24-entry LQ, 14-entry SQ, 4-entry SB. TLBs: 32-entry L1 I/D, 2048-entry L2\n\
     (blocking). Caches: 32KB 8-way L1 I/D (8 MSHRs), 1MB 16-way L2 (16 MSHRs), coherent.\n\
     Memory: 120-cycle latency, 24 outstanding requests.\n"

let fig13 () =
  header "Fig 13: comparison processors";
  List.iter
    (fun (n, d) -> Printf.printf "%-12s %s\n" n d)
    [
      ("Rocket", "in-order baseline: our 1-wide in-order core, 16KB L1s, 10/120-cycle memory");
      ("A57", "commercial 3-wide OOO (proxy: 3-wide RiscyOO, 48KB L1I/32KB L1D, 2MB L2)");
      ("Denver", "commercial 7-wide (proxy: 7-wide RiscyOO, 128KB L1I/64KB L1D, 2MB L2)");
      ("BOOM", "academic 2-wide OOO, 80-entry ROB (paper-reported IPCs quoted)");
    ]

let fig14 () =
  header "Fig 14: RiscyOO variants";
  List.iter
    (fun c -> Format.printf "%a@." Ooo.Config.pp c)
    [ Ooo.Config.riscyoo_cminus; Ooo.Config.riscyoo_tplus; Ooo.Config.riscyoo_tplus_rplus ]

(* ---------------------------------------------------------------- *)
(* Fig 15: RiscyOO-T+ vs RiscyOO-B                                    *)
(* ---------------------------------------------------------------- *)

let fig15 () =
  header "Fig 15: RiscyOO-T+ normalized to RiscyOO-B (higher is better)";
  Printf.printf "(paper: geo-mean 1.29x, astar ~2x; TLB-bound kernels gain most)\n";
  let speedups =
    List.map
      (fun k ->
        let b = spec_on Ooo.Config.riscyoo_b k in
        let t = spec_on Ooo.Config.riscyoo_tplus k in
        let s = float_of_int b.cycles /. float_of_int t.cycles in
        pp_row k [ Printf.sprintf "%.2fx" s ];
        s)
      Spec_kernels.names
  in
  pp_row "geo-mean" [ Printf.sprintf "%.2fx" (geomean speedups) ]

(* ---------------------------------------------------------------- *)
(* Fig 16: miss rates of RiscyOO-T+                                   *)
(* ---------------------------------------------------------------- *)

let mpki r name =
  1000.0 *. float_of_int (try List.assoc name r.stats with Not_found -> 0) /. float_of_int r.instrs

let fig16 () =
  header "Fig 16: events per 1000 instructions on RiscyOO-T+";
  Printf.printf "%-14s %8s %8s %8s %8s %8s\n" "kernel" "DTLB" "L2TLB" "BrPred" "D$" "L2$";
  List.iter
    (fun k ->
      let r = spec_on Ooo.Config.riscyoo_tplus k in
      Printf.printf "%-14s %8.1f %8.1f %8.1f %8.1f %8.1f\n" k (mpki r "c0.tlb.d.misses")
        (mpki r "c0.tlb.l2.misses") (mpki r "c0.mispredicts") (mpki r "c0.l1d.misses")
        (mpki r "l2.misses"))
    Spec_kernels.names;
  Printf.printf
    "(paper: mcf/astar/omnetpp have very high TLB miss rates; hmmer/h264ref near zero;\n\
    \ sjeng/gobmk high branch mispredictions; libquantum high cache misses)\n"

(* ---------------------------------------------------------------- *)
(* Fig 17: vs the in-order baseline                                   *)
(* ---------------------------------------------------------------- *)

let rocket_mem latency =
  {
    Mem.Mem_sys.l1d_bytes = 16 * 1024;
    l1d_ways = 4;
    l1d_mshrs = 2;
    l1i_bytes = 16 * 1024;
    l1i_ways = 4;
    l2_bytes = 64 * 1024 (* Rocket has no L2; a tiny one stands in *);
    l2_ways = 4;
    l2_mshrs = 4;
    l2_latency = 4;
    mesi = false;
    mem_latency = latency;
    mem_inflight = 8;
    l2_banks = 1;
    lookahead_override = None;
  }

let rocket name latency kernel =
  run_spec ~config_name:name
    (Machine.In_order { mem = rocket_mem latency; tlb = Tlb.Tlb_sys.blocking_config })
    kernel

let fig17 () =
  header "Fig 17: RiscyOO-C-, Rocket-10, Rocket-120 normalized to RiscyOO-T+ (higher is better)";
  Printf.printf "(paper: T+ beats Rocket-10 by 1.53x and Rocket-120 by 4.19x on the geo-mean)\n";
  Printf.printf "%-14s %10s %10s %10s\n" "kernel" "C-" "Rocket-10" "Rocket-120";
  let accs = ref [] in
  List.iter
    (fun k ->
      let t = spec_on Ooo.Config.riscyoo_tplus k in
      let c = spec_on Ooo.Config.riscyoo_cminus k in
      let r10 = rocket "rocket-10" 10 k in
      let r120 = rocket "rocket-120" 120 k in
      let n x = float_of_int t.cycles /. float_of_int x.cycles in
      accs := (n c, n r10, n r120) :: !accs;
      Printf.printf "%-14s %10.2f %10.2f %10.2f\n" k (n c) (n r10) (n r120))
    Spec_kernels.names;
  let g f = geomean (List.map f !accs) in
  Printf.printf "%-14s %10.2f %10.2f %10.2f\n" "geo-mean"
    (g (fun (a, _, _) -> a))
    (g (fun (_, b, _) -> b))
    (g (fun (_, _, c) -> c))

(* ---------------------------------------------------------------- *)
(* Fig 18: vs commercial-width proxies                                *)
(* ---------------------------------------------------------------- *)

(* the paper's published normalized performance (A57, Denver vs RiscyOO-T+),
   read off Fig 18 *)
let paper_fig18 =
  [
    ("bzip2", (1.20, 1.50)); ("gcc", (1.30, 1.20)); ("mcf", (0.90, 0.80));
    ("gobmk", (1.40, 1.30)); ("hmmer", (2.20, 2.50)); ("sjeng", (1.35, 1.40));
    ("libquantum", (3.19, 3.97)); ("h264ref", (1.90, 2.30)); ("astar", (0.85, 0.90));
    ("omnetpp", (0.95, 1.00)); ("xalancbmk", (1.25, 1.40));
  ]

let fig18 () =
  header "Fig 18: wider-core proxies normalized to RiscyOO-T+ (higher = wider core wins)";
  Printf.printf
    "(paper: A57 +34%%, Denver +45%% geo-mean, but T+ wins on TLB-bound mcf/astar/omnetpp)\n";
  Printf.printf "%-14s %12s %12s %14s %14s\n" "kernel" "a57-proxy" "denver-proxy" "paper-A57"
    "paper-Denver";
  let accs = ref [] in
  List.iter
    (fun k ->
      let t = spec_on Ooo.Config.riscyoo_tplus k in
      let a = spec_on Ooo.Config.a57_proxy k in
      let d = spec_on Ooo.Config.denver_proxy k in
      let n x = float_of_int t.cycles /. float_of_int x.cycles in
      let pa, pd = List.assoc k paper_fig18 in
      accs := (n a, n d) :: !accs;
      Printf.printf "%-14s %12.2f %12.2f %14.2f %14.2f\n" k (n a) (n d) pa pd)
    Spec_kernels.names;
  Printf.printf "%-14s %12.2f %12.2f\n" "geo-mean"
    (geomean (List.map fst !accs))
    (geomean (List.map snd !accs))

(* ---------------------------------------------------------------- *)
(* Fig 19: IPC vs BOOM                                                *)
(* ---------------------------------------------------------------- *)

(* BOOM IPCs as published (paper Fig 19, taken from Kim et al. CARRV'17) *)
let boom_ipc =
  [
    ("bzip2", 0.87); ("gcc", 0.63); ("mcf", 0.10); ("sjeng", 1.05); ("h264ref", 1.07);
    ("omnetpp", 0.49); ("astar", 0.58); ("xalancbmk", 0.67);
  ]

let fig19 () =
  header "Fig 19: IPC — RiscyOO-T+R+ vs BOOM (paper-reported)";
  Printf.printf "%-14s %10s %10s\n" "kernel" "T+R+" "BOOM";
  let ours = ref [] and theirs = ref [] in
  List.iter
    (fun (k, b) ->
      let r = spec_on Ooo.Config.riscyoo_tplus_rplus k in
      ours := ipc r :: !ours;
      theirs := b :: !theirs;
      Printf.printf "%-14s %10.2f %10.2f\n" k (ipc r) b)
    boom_ipc;
  let har l = float_of_int (List.length l) /. List.fold_left (fun a x -> a +. (1.0 /. x)) 0.0 l in
  Printf.printf "%-14s %10.2f %10.2f   (harmonic mean)\n" "har-mean" (har !ours) (har !theirs)

(* ---------------------------------------------------------------- *)
(* Fig 20: PARSEC on the quad-core, TSO vs WMM                        *)
(* ---------------------------------------------------------------- *)

let run_parsec mm kernel threads =
  let key =
    ( Printf.sprintf "parsec-%s-%d" (match mm with Ooo.Config.TSO -> "tso" | WMM -> "wmm") threads,
      kernel )
  in
  match Hashtbl.find_opt results key with
  | Some r -> r
  | None ->
    let prog = Parsec_kernels.find kernel ~harts:threads ~scale:!parsec_scale in
    let cfg = Ooo.Config.multicore mm in
    let m = Machine.create ~ncores:threads ~paging:true (ooo cfg) prog in
    let o = Machine.run ~max_cycles:100_000_000 m in
    if o.Machine.timed_out then failwith (Printf.sprintf "parsec %s x%d timed out" kernel threads);
    let r =
      { cycles = o.Machine.cycles; instrs = Machine.instrs m;
        stats = Cmd.Stats.to_list (Machine.stats m) }
    in
    Hashtbl.add results key r;
    Printf.eprintf "  [%s x%d %s] %d cycles (%d instrs)\n%!" kernel threads
      (match mm with Ooo.Config.TSO -> "tso" | WMM -> "wmm")
      r.cycles r.instrs;
    r

let fig20 () =
  header "Fig 20: PARSEC on the quad-core — speedup over TSO-1thread (higher is better)";
  Printf.printf "(paper: TSO and WMM indistinguishable; near-linear scaling; TSO kills rare)\n";
  Printf.printf "%-14s %7s %7s %7s %7s %7s %7s %12s\n" "kernel" "tso-1" "wmm-1" "tso-2" "wmm-2"
    "tso-4" "wmm-4" "ldKills/1k";
  let cols = ref [ []; []; []; []; []; [] ] in
  List.iter
    (fun k ->
      let base = (run_parsec Ooo.Config.TSO k 1).cycles in
      let cell mm n =
        let r = run_parsec mm k n in
        (float_of_int base /. float_of_int r.cycles, r)
      in
      let t1, _ = cell Ooo.Config.TSO 1 in
      let w1, _ = cell Ooo.Config.WMM 1 in
      let t2, _ = cell Ooo.Config.TSO 2 in
      let w2, _ = cell Ooo.Config.WMM 2 in
      let t4, r4 = cell Ooo.Config.TSO 4 in
      let w4, _ = cell Ooo.Config.WMM 4 in
      let kills =
        1000.0
        *. float_of_int
             (List.fold_left
                (fun a (n, v) ->
                  let tail = "ldKillFlushes" in
                  let lt = String.length tail in
                  if String.length n >= lt && String.sub n (String.length n - lt) lt = tail then
                    a + v
                  else a)
                0 r4.stats)
        /. float_of_int r4.instrs
      in
      cols := List.map2 (fun l v -> v :: l) !cols [ t1; w1; t2; w2; t4; w4 ];
      Printf.printf "%-14s %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f %12.3f\n" k t1 w1 t2 w2 t4 w4 kills)
    Parsec_kernels.names;
  match List.map geomean !cols with
  | [ t1; w1; t2; w2; t4; w4 ] ->
    Printf.printf "%-14s %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f\n" "geo-mean" t1 w1 t2 w2 t4 w4
  | _ -> ()

(* ---------------------------------------------------------------- *)
(* Fig 21: synthesis                                                  *)
(* ---------------------------------------------------------------- *)

let fig21 () =
  header "Fig 21: ASIC synthesis model (32nm-calibrated structural estimate)";
  Printf.printf "(paper: T+ 1.1 GHz / 1.78M gates; T+R+ 1.0 GHz / 1.89M gates — +6.2%% area)\n";
  Printf.printf "%-14s %12s %16s\n" "config" "max freq" "NAND2 gates";
  List.iter
    (fun cfg ->
      Printf.printf "%-14s %9.2f GHz %13.2f M\n" cfg.Ooo.Config.name
        (Synth.Timing.max_freq_ghz cfg)
        (Synth.Gates.total cfg /. 1e6))
    [ Ooo.Config.riscyoo_tplus; Ooo.Config.riscyoo_tplus_rplus ];
  Printf.printf "\nRiscyOO-T+ breakdown (NAND2 equivalents):\n";
  List.iter
    (fun (n, g) -> Printf.printf "  %-20s %10.0f\n" n g)
    (List.sort (fun (_, a) (_, b) -> compare b a) (Synth.Gates.breakdown Ooo.Config.riscyoo_tplus))

(* ---------------------------------------------------------------- *)
(* Ablations                                                          *)
(* ---------------------------------------------------------------- *)

let run_named name kind kernel = run_spec ~config_name:name kind kernel

let ablation_wakeup () =
  header "Ablation: rule-schedule ordering (paper Sec IV-D)";
  Printf.printf
    "(aggressive: doIssue before doRename — a renamed instruction can issue the same\n\
    \ cycle; conservative: the reverse order costs a cycle per wakeup chain)\n";
  List.iter
    (fun k ->
      let run sched =
        let prog = Spec_kernels.find k ~scale:!scale in
        let m = Machine.create ~paging:true ~schedule:sched (ooo Ooo.Config.riscyoo_tplus) prog in
        let o = Machine.run ~max_cycles:200_000_000 m in
        if o.Machine.timed_out then failwith "ablation timeout";
        o.Machine.cycles
      in
      let agg = run `Aggressive and cons = run `Conservative in
      Printf.printf "%-14s aggressive %8d cycles   conservative %8d cycles   (%.1f%% slower)\n" k
        agg cons
        (100.0 *. ((float_of_int cons /. float_of_int agg) -. 1.0)))
    [ "hmmer"; "gcc" ]

let ablation_bypass () =
  header "Ablation: ALU-result bypass network";
  let no_byp = { Ooo.Config.riscyoo_tplus with Ooo.Config.name = "T+nobypass"; bypass = false } in
  List.iter
    (fun k ->
      let w = spec_on Ooo.Config.riscyoo_tplus k in
      let n = run_named "T+nobypass" (ooo no_byp) k in
      Printf.printf "%-14s bypass %8d cycles   no-bypass %8d cycles   (%.1f%% slower)\n" k w.cycles
        n.cycles
        (100.0 *. ((float_of_int n.cycles /. float_of_int w.cycles) -. 1.0)))
    [ "hmmer"; "gcc" ]

let ablation_tlb () =
  header "Ablation: TLB microarchitecture on the TLB-bound kernels";
  let nb_nowc =
    {
      Ooo.Config.riscyoo_tplus with
      Ooo.Config.name = "T+noWC";
      tlb = { Tlb.Tlb_sys.nonblocking_config with Tlb.Tlb_sys.walk_cache_entries = None };
    }
  in
  Printf.printf "%-14s %12s %12s %12s\n" "kernel" "blocking" "nonblk-noWC" "nonblk+WC";
  List.iter
    (fun k ->
      let b = spec_on Ooo.Config.riscyoo_b k in
      let nw = run_named "T+noWC" (ooo nb_nowc) k in
      let t = spec_on Ooo.Config.riscyoo_tplus k in
      Printf.printf "%-14s %12d %12d %12d   (speedup %.2fx -> %.2fx)\n" k b.cycles nw.cycles
        t.cycles
        (float_of_int b.cycles /. float_of_int nw.cycles)
        (float_of_int b.cycles /. float_of_int t.cycles))
    [ "mcf"; "astar"; "omnetpp" ]

let ablation_mesi () =
  header "Ablation: MSI vs MESI coherence (the paper's suggested extension)";
  let mesi cfg =
    { cfg with Ooo.Config.mem = { cfg.Ooo.Config.mem with Mem.Mem_sys.mesi = true };
      name = cfg.Ooo.Config.name ^ "+mesi" }
  in
  List.iter
    (fun k ->
      let msi = spec_on Ooo.Config.riscyoo_tplus k in
      let me = run_named "T+mesi" (ooo (mesi Ooo.Config.riscyoo_tplus)) k in
      Printf.printf "%-14s MSI %9d cycles   MESI %9d cycles   (%.1f%% faster)\n" k msi.cycles
        me.cycles
        (100.0 *. (1.0 -. (float_of_int me.cycles /. float_of_int msi.cycles))))
    [ "omnetpp"; "gcc" ]

let ablation_prefetch () =
  header "Ablation: TSO store prefetching (paper Sec. V-B, unimplemented there)";
  let tso =
    { Ooo.Config.riscyoo_tplus with Ooo.Config.mem_model = Ooo.Config.TSO; name = "T+tso" }
  in
  let pf = { tso with Ooo.Config.st_prefetch = true; name = "T+tso+pf" } in
  List.iter
    (fun k ->
      let a = run_named tso.Ooo.Config.name (ooo tso) k in
      let b = run_named pf.Ooo.Config.name (ooo pf) k in
      Printf.printf "%-14s no-prefetch %9d cycles   prefetch %9d cycles   (%.1f%% faster)\n" k
        a.cycles b.cycles
        (100.0 *. (1.0 -. (float_of_int b.cycles /. float_of_int a.cycles))))
    [ "libquantum"; "omnetpp" ]

let ablation_predictors () =
  header "Ablation: direction predictors (tournament / gshare / bimodal)";
  Printf.printf "%-14s %14s %14s %14s   (mispredicts per 1k instructions)\n" "kernel" "tournament"
    "gshare" "bimodal";
  List.iter
    (fun k ->
      let row =
        List.map
          (fun kind ->
            let cfg =
              { Ooo.Config.riscyoo_tplus with
                Ooo.Config.predictor = kind;
                name = "T+" ^ Branch.Dir_pred.kind_to_string kind }
            in
            let r = run_named cfg.Ooo.Config.name (ooo cfg) k in
            mpki r "c0.mispredicts")
          [ Branch.Dir_pred.Tournament; Branch.Dir_pred.Gshare; Branch.Dir_pred.Bimodal ]
      in
      match row with
      | [ a; b; c ] -> Printf.printf "%-14s %14.1f %14.1f %14.1f\n" k a b c
      | _ -> ())
    [ "sjeng"; "gobmk"; "gcc" ]

let ablation_scheduler () =
  header "Ablation: CMD scheduler — multi-rule cycles preserve one-rule semantics";
  let prog = Spec_kernels.find "gcc" ~scale:1 in
  let g = Machine.create Machine.Golden_only prog in
  let og = Machine.run g in
  let multi = Machine.create ~paging:true (ooo Ooo.Config.riscyoo_tplus) prog in
  let om = Machine.run ~max_cycles:200_000_000 multi in
  Printf.printf "multi-rule:      %d cycles, exit %Ld\n" om.Machine.cycles om.Machine.exits.(0);
  Printf.printf "golden exit:     %Ld (agrees: %b)\n" og.Machine.exits.(0)
    (og.Machine.exits.(0) = om.Machine.exits.(0));
  Printf.printf
    "(one-rule-at-a-time equivalence is exercised structurally by the test suite's\n\
    \ Sim.One_per_cycle and Shuffle modes on the CMD primitives)\n"

(* ---------------------------------------------------------------- *)
(* Bechamel microbenchmarks of the CMD kernel                         *)
(* ---------------------------------------------------------------- *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  header "Bechamel: CMD kernel primitives";
  let tests =
    [
      Test.make ~name:"ehr read+write"
        (Staged.stage
           (let clk = Cmd.Clock.create () in
            let e = Cmd.Ehr.create 0 in
            fun () ->
              let ctx = Cmd.Kernel.make_ctx clk in
              Cmd.Ehr.write ctx e 0 (Cmd.Ehr.read ctx e 0 + 1);
              Cmd.Clock.tick clk));
      Test.make ~name:"sim cycle (2-rule fifo chain)"
        (Staged.stage
           (let clk = Cmd.Clock.create () in
            let q = Cmd.Fifo.pipeline ~capacity:4 () in
            let n = ref 0 in
            let rules =
              [
                Cmd.Rule.make "deq" (fun ctx ->
                    incr n;
                    ignore (Cmd.Fifo.deq ctx q));
                Cmd.Rule.make "enq" (fun ctx -> Cmd.Fifo.enq ctx q !n);
              ]
            in
            let sim = Cmd.Sim.create clk rules in
            fun () -> ignore (Cmd.Sim.cycle sim)));
      Test.make ~name:"cf fifo enq+deq transaction"
        (Staged.stage
           (let clk = Cmd.Clock.create () in
            let q = Cmd.Fifo.cf clk ~capacity:8 () in
            fun () ->
              let ctx = Cmd.Kernel.make_ctx clk in
              Cmd.Fifo.enq ctx q 1;
              Cmd.Clock.tick clk;
              let ctx = Cmd.Kernel.make_ctx clk in
              ignore (Cmd.Fifo.deq ctx q);
              Cmd.Clock.tick clk));
    ]
  in
  List.iter
    (fun t ->
      let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
      let raw = Benchmark.all cfg Instance.[ monotonic_clock ] t in
      Hashtbl.iter
        (fun name r ->
          let est =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
              Instance.monotonic_clock r
          in
          match Analyze.OLS.estimates est with
          | Some [ per_run ] -> Printf.printf "%-34s %10.1f ns/run\n" name per_run
          | _ -> Printf.printf "%-34s (no estimate)\n" name)
        raw)
    tests

(* ---------------------------------------------------------------- *)
(* perf: sim-speed measurement, JSON report and CI regression gate    *)
(* ---------------------------------------------------------------- *)

(* Measure one bechamel staged thunk, returning ns/run (OLS estimate). *)
let measure_ns name staged =
  let open Bechamel in
  let open Toolkit in
  let test = Test.make ~name staged in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let out = ref nan in
  Hashtbl.iter
    (fun _ r ->
      let est =
        Analyze.one
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock r
      in
      match Analyze.OLS.estimates est with Some [ per_run ] -> out := per_run | _ -> ())
    raw;
  !out

(* A 64-rule mostly-idle system: one live producer/consumer pair plus 62
   rules parked on empty FIFOs. This is the scheduler shape the fast path
   targets — a wide processor where most rules are blocked most cycles. With
   [fastpath] the 62 idle rules cost one generation-sum compare each; without
   it each costs a transactional attempt ending in an exception + rollback. *)
let idle_sched_thunk ~fastpath =
  let open Bechamel in
  Staged.stage
    (let clk = Cmd.Clock.create () in
     let active = Cmd.Fifo.pipeline ~name:"active" ~capacity:4 () in
     let n = ref 0 in
     let idle =
       List.init 62 (fun i ->
           let q = Cmd.Fifo.pipeline ~name:(Printf.sprintf "idle%d" i) ~capacity:4 () in
           Cmd.Rule.make (Printf.sprintf "idle%d" i)
             ~can_fire:(fun () -> Cmd.Fifo.peek_size q > 0)
             ~watches:[ Cmd.Fifo.signal q ]
             (fun ctx -> ignore (Cmd.Fifo.deq ctx q)))
     in
     let rules =
       Cmd.Rule.make "deq"
         ~can_fire:(fun () -> Cmd.Fifo.peek_size active > 0)
         ~watches:[ Cmd.Fifo.signal active ]
         (fun ctx -> ignore (Cmd.Fifo.deq ctx active))
       :: Cmd.Rule.make "enq" (fun ctx ->
              incr n;
              Cmd.Fifo.enq ctx active !n)
       :: idle
     in
     let sim = Cmd.Sim.create ~fastpath clk rules in
     fun () -> ignore (Cmd.Sim.cycle sim))

(* Three engines per workload: the compiled schedule (default), the
   interpreted fast path ([--no-compile]), and the stripped scheduler
   ([--no-fastpath]). All three must be bit-identical; the JSON reports the
   two engine-vs-engine ratios, which are what CI gates on (ratios cancel
   host-speed variation that makes absolute cycles/s untrustworthy there). *)
type perf_row = {
  wname : string;
  pcycles : int;
  pinstrs : int;
  wall_compiled : float;
  wall_interp : float;
  wall_stripped : float;
}

let perf_workload ~budget kernel =
  let prog = Spec_kernels.find kernel ~scale:!scale in
  let snapshot = ref None in
  let timed ~compile ~fastpath =
    (* best-of-N wall clock: scheduling noise only ever slows a run down, so
       repeating until ~1s of total wall time and keeping the fastest gives a
       stable speed estimate even for sub-100ms workloads *)
    let once () =
      let m = Machine.create ~paging:true ~compile ~fastpath (ooo Ooo.Config.riscyoo_b) prog in
      if Machine.compiled m <> (compile && fastpath) then
        failwith
          (Printf.sprintf "perf: %s engine mismatch (%s)" kernel (Machine.compile_status m));
      let t0 = Unix.gettimeofday () in
      let o = Machine.run ~max_cycles:budget m in
      let dt = Unix.gettimeofday () -. t0 in
      if o.Machine.timed_out then failwith ("perf: " ^ kernel ^ " timed out");
      if !snapshot = None then snapshot := Some (Machine.stats m);
      (o.Machine.cycles, o.Machine.exits.(0), Machine.instrs m, dt)
    in
    let (c, x, i, dt) = once () in
    let best = ref dt and total = ref dt in
    while !total < 1.0 do
      let c2, x2, i2, dt2 = once () in
      if (c2, x2, i2) <> (c, x, i) then failwith ("perf: " ^ kernel ^ " is nondeterministic");
      if dt2 < !best then best := dt2;
      total := !total +. dt2
    done;
    (c, x, i, !best)
  in
  let c_c, x_c, i_c, wall_compiled = timed ~compile:true ~fastpath:true in
  let c_i, x_i, i_i, wall_interp = timed ~compile:false ~fastpath:true in
  let c_s, x_s, i_s, wall_stripped = timed ~compile:false ~fastpath:false in
  (* schedule compilation and the fast path must be pure speed optimizations *)
  if (c_c, x_c, i_c) <> (c_i, x_i, i_i) then
    failwith
      (Printf.sprintf "perf: %s diverges with compile off (%d/%Ld/%d vs %d/%Ld/%d)" kernel c_c x_c
         i_c c_i x_i i_i);
  if (c_c, x_c, i_c) <> (c_s, x_s, i_s) then
    failwith
      (Printf.sprintf "perf: %s diverges with fastpath off (%d/%Ld/%d vs %d/%Ld/%d)" kernel c_c
         x_c i_c c_s x_s i_s);
  Printf.eprintf
    "  [perf/%s] %d cycles: %.0f c/s compiled, %.0f c/s interpreted, %.0f c/s stripped\n%!"
    kernel c_c
    (float_of_int c_c /. wall_compiled)
    (float_of_int c_c /. wall_interp)
    (float_of_int c_c /. wall_stripped);
  ( { wname = kernel; pcycles = c_c; pinstrs = i_c; wall_compiled; wall_interp; wall_stripped },
    Option.get !snapshot )

let cps r = float_of_int r.pcycles /. r.wall_compiled
let compile_speedup r = r.wall_interp /. r.wall_compiled
let fastpath_speedup r = r.wall_stripped /. r.wall_compiled

(* Multicore workloads timed at --jobs 1/4/8 with lookahead epochs on (the
   16-core row runs at the full derived window; the quad row keeps the
   per-cycle barrier as a reference point). Serial speed is reported, the
   jobs-4 speedup ratio is gated: wall(jobs1)/wall(jobs4) of the same
   binary in the same process cancels host speed, so a drop against the
   checked-in baseline means the parallel engine regressed — though its
   absolute value only shows real scaling on a multi-core host (a 1-CPU
   machine measures scheduling overhead instead). *)
type mc_row = {
  mcname : string;
  mccycles : int;
  mcinstrs : int;
  mcepoch : int; (* effective lookahead window length *)
  mcwall : (int * float) list; (* jobs -> best wall seconds *)
}

let perf_multicore ~budget ~harts ~epoch ~cfg kernel =
  let prog = Parsec_kernels.find kernel ~harts ~scale:!parsec_scale in
  let snapshot = ref None in
  let elen = ref 1 in
  let timed jobs =
    let once () =
      let m = Machine.create ~ncores:harts ~paging:true ~jobs ~epoch (ooo cfg) prog in
      elen := Machine.epoch_length m;
      let t0 = Unix.gettimeofday () in
      let o = Machine.run ~max_cycles:budget m in
      let dt = Unix.gettimeofday () -. t0 in
      if o.Machine.timed_out then failwith (Printf.sprintf "perf: %s x%d timed out" kernel harts);
      if !snapshot = None then snapshot := Some (Machine.stats m);
      (o.Machine.cycles, Array.to_list o.Machine.exits, Machine.instrs m, dt)
    in
    let c, x, i, dt = once () in
    let best = ref dt and total = ref dt in
    (* parallel wall clocks carry OS-scheduler noise on top of the usual
       measurement jitter; a longer best-of window keeps the gated
       jobs1/jobs4 ratio reproducible *)
    while !total < 2.5 do
      let c2, x2, i2, dt2 = once () in
      if (c2, x2, i2) <> (c, x, i) then
        failwith (Printf.sprintf "perf: %s x%d is nondeterministic at --jobs %d" kernel harts jobs);
      if dt2 < !best then best := dt2;
      total := !total +. dt2
    done;
    (c, x, i, !best)
  in
  (* serial first on a quiet process (idle worker domains tax the GC), then
     ascending jobs so the domain pool only ever grows *)
  Cmd.Sim.shutdown_pool ();
  let runs = List.map (fun j -> (j, timed j)) [ 1; 4; 8 ] in
  Cmd.Sim.shutdown_pool ();
  let c1, x1, i1, _ = List.assoc 1 runs in
  List.iter
    (fun (j, (c, x, i, _)) ->
      (* parallel epoch execution must be bit-identical to serial *)
      if (c, x, i) <> (c1, x1, i1) then
        failwith (Printf.sprintf "perf: %s x%d diverges at --jobs %d" kernel harts j))
    runs;
  let row =
    { mcname = Printf.sprintf "%s-x%d" kernel harts; mccycles = c1; mcinstrs = i1;
      mcepoch = !elen;
      mcwall = List.map (fun (j, (_, _, _, w)) -> (j, w)) runs }
  in
  let w j = List.assoc j row.mcwall in
  Printf.eprintf "  [perf/%s] %d cycles (epoch %d): %.0f c/s serial, x%.2f jobs4, x%.2f jobs8\n%!"
    row.mcname c1 row.mcepoch
    (float_of_int c1 /. w 1)
    (w 1 /. w 4) (w 1 /. w 8);
  (row, Option.get !snapshot)

let mc_cps r = float_of_int r.mccycles /. List.assoc 1 r.mcwall
let mc_speedup r j = List.assoc 1 r.mcwall /. List.assoc j r.mcwall

(* ---------------------------------------------------------------- *)
(* Farm / snapshot measurements                                       *)
(* ---------------------------------------------------------------- *)

(* The farm's warm-start path: one cycle-0 snapshot, restored and reseeded
   per job instead of rebuilding the machine from the ELF every seed.
   Measured as the farm would pay it — a 50-seed single-test litmus sweep,
   cold then warm-forked — plus the raw snapshot codec (image size,
   save/restore latency) on a warmed-up single-core machine. *)
type farm_row = {
  snap_bytes : int;
  save_s : float; (* best-of snapshot latency, seconds *)
  restore_s : float;
  fseeds : int;
  cold_s : float; (* whole sweep, machine rebuilt per seed *)
  warm_s : float; (* whole sweep, one cycle-0 snapshot forked per seed *)
}

let best_of ~budget f =
  let b = ref infinity and total = ref 0.0 in
  while !total < budget do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !b then b := dt;
    total := !total +. dt
  done;
  !b

let perf_farm ~seeds =
  let prog = Spec_kernels.find "smoke" ~scale:1 in
  let m = Machine.create ~paging:true (ooo Ooo.Config.riscyoo_b) prog in
  let o = Machine.run ~max_cycles:2_000 m in
  if not o.Machine.timed_out then failwith "perf: smoke finished before the snapshot point";
  let img = ref (Machine.snapshot m) in
  let save_s = best_of ~budget:0.5 (fun () -> img := Machine.snapshot m) in
  let restore_s = best_of ~budget:0.5 (fun () -> Machine.restore m !img) in
  let test = match Litmus.Test.find "SB" with Some t -> t | None -> List.hd Litmus.Test.all in
  let jobs = Litmus.Run.farm_jobs ~stagger:false ~seeds ~models:[ Ooo.Config.TSO ] [ test ] in
  let sweep ~warm =
    let t0 = Unix.gettimeofday () in
    let outs =
      List.map
        (fun fj ->
          let o, _, _, _ = Litmus.Run.farm_run ~warm fj in
          o)
        jobs
    in
    (outs, Unix.gettimeofday () -. t0)
  in
  (* Steady state is what the farm pays: the reference outcome sets and the
     warm-fork cache are each populated once per process and then reused for
     thousands of jobs, so prime both and time the best of two sweeps. *)
  ignore (sweep ~warm:true);
  let cold_outs, cold_s1 = sweep ~warm:false in
  let _, cold_s2 = sweep ~warm:false in
  let warm_outs, warm_s1 = sweep ~warm:true in
  let _, warm_s2 = sweep ~warm:true in
  let cold_s = Float.min cold_s1 cold_s2 and warm_s = Float.min warm_s1 warm_s2 in
  (* warm forking is a startup optimization, not a semantics change *)
  if cold_outs <> warm_outs then failwith "perf: warm-forked litmus sweep diverges from cold";
  Printf.eprintf
    "  [perf/farm] snapshot %d bytes, save %.2f ms, restore %.2f ms; %d-seed litmus sweep \
     %.2fs cold, %.2fs warm (%.2fx)\n\
     %!"
    (String.length !img) (1000. *. save_s) (1000. *. restore_s) seeds cold_s warm_s
    (cold_s /. warm_s);
  { snap_bytes = String.length !img; save_s; restore_s; fseeds = seeds; cold_s; warm_s }

(* ---------------------------------------------------------------- *)
(* Host-speed calibration                                             *)
(* ---------------------------------------------------------------- *)

(* A fixed-work pure-OCaml microbench: 50M iterations of an integer mix with
   no allocation, no I/O and no simulator state. The work is identical on
   every host, so its best-of wall time is a pure measure of host speed —
   dividing the baseline host's calibration wall by the current one scales
   the baseline's absolute sim-cycles/s to what this host should achieve,
   which is what lets the absolute gate run at a 10% margin on hosted
   runners instead of the flat 20% host-speed fudge. *)
let calib_name = "calib-fixed-work"

let calibrate () =
  let work () =
    let x = ref 0x243F6A8885A308D3 in
    for i = 1 to 50_000_000 do
      let v = !x + (i * 0x9E3779B97F4A7) in
      x := v lxor (v lsr 29) lxor (v lsl 7)
    done;
    ignore (Sys.opaque_identity !x)
  in
  let w = best_of ~budget:1.0 work in
  Printf.eprintf "  [perf/%s] %.4f s\n%!" calib_name w;
  w

(* minimal JSON scanning for the regression gate: find the object containing
   ["name": "<w>"] and read a numeric field out of it. Enough for
   baseline.json, which we also emit. *)
let substr_index s needle from =
  let n = String.length needle and m = String.length s in
  let rec go i =
    if i + n > m then None else if String.sub s i n = needle then Some i else go (i + 1)
  in
  go from

let scan_number content start =
  let e = ref start in
  while
    !e < String.length content
    && (match content.[!e] with '0' .. '9' | '.' | '-' | 'e' | '+' -> true | _ -> false)
  do
    incr e
  done;
  float_of_string_opt (String.sub content start (!e - start))

let baseline_field content w field =
  match substr_index content (Printf.sprintf "\"name\": \"%s\"" w) 0 with
  | None -> None
  | Some i -> (
    let key = Printf.sprintf "\"%s\": " field in
    match substr_index content key i with
    | None -> None
    | Some j -> scan_number content (j + String.length key))

let baseline_cps content w = baseline_field content w "sim_cps"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let perf_json ~calib_s rows mc_rows farm micro_on micro_off =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"riscyoo-perf-v6\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"calibration\": {\"name\": \"%s\", \"wall_s\": %.4f},\n" calib_name
       calib_s);
  Buffer.add_string b "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"cycles\": %d, \"instrs\": %d, \"wall_s_compiled\": %.4f, \
            \"wall_s_interpreted\": %.4f, \"wall_s_stripped\": %.4f, \"sim_cps\": %.1f, \
            \"sim_kips\": %.2f, \"compile_speedup\": %.3f, \"fastpath_speedup\": %.3f}%s\n"
           r.wname r.pcycles r.pinstrs r.wall_compiled r.wall_interp r.wall_stripped (cps r)
           (float_of_int r.pinstrs /. r.wall_compiled /. 1000.0)
           (compile_speedup r) (fastpath_speedup r)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n  \"multicore\": [\n";
  List.iteri
    (fun i r ->
      let w j = List.assoc j r.mcwall in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"cycles\": %d, \"instrs\": %d, \"epoch\": %d, \
            \"wall_s_jobs1\": %.4f, \"wall_s_jobs4\": %.4f, \"wall_s_jobs8\": %.4f, \
            \"sim_cps\": %.1f, \"speedup_vs_serial_jobs4\": %.3f, \
            \"speedup_vs_serial_jobs8\": %.3f}%s\n"
           r.mcname r.mccycles r.mcinstrs r.mcepoch (w 1) (w 4) (w 8) (mc_cps r)
           (mc_speedup r 4) (mc_speedup r 8)
           (if i = List.length mc_rows - 1 then "" else ",")))
    mc_rows;
  Buffer.add_string b "  ],\n  \"farm\": {\n";
  Buffer.add_string b
    (Printf.sprintf
       "    \"snapshot_bytes\": %d,\n\
       \    \"snapshot_save_ms\": %.2f,\n\
       \    \"snapshot_restore_ms\": %.2f,\n"
       farm.snap_bytes (1000. *. farm.save_s) (1000. *. farm.restore_s));
  Buffer.add_string b
    (Printf.sprintf
       "    \"litmus_seeds\": %d,\n\
       \    \"litmus_cold_s\": %.3f,\n\
       \    \"litmus_warm_s\": %.3f,\n\
       \    \"warm_fork_speedup\": %.2f\n\
       \  },\n"
       farm.fseeds farm.cold_s farm.warm_s (farm.cold_s /. farm.warm_s));
  Buffer.add_string b "  \"microbench\": {\n";
  Buffer.add_string b
    (Printf.sprintf "    \"idle_sched_fastpath_ns\": %.1f,\n    \"idle_sched_stripped_ns\": %.1f,\n"
       micro_on micro_off);
  Buffer.add_string b
    (Printf.sprintf "    \"idle_sched_speedup\": %.2f\n  }\n}\n" (micro_off /. micro_on));
  Buffer.contents b

(* One machine-readable counter snapshot per perf workload (first timed run;
   they are all deterministic, so any run's counters are *the* counters). *)
let write_stats_json path entries =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\n  \"schema\": \"riscyoo-perf-stats-v1\",\n  \"workloads\": {\n";
  let n = List.length entries in
  List.iteri
    (fun i (name, cycles, instrs, st) ->
      let doc =
        Obs.Stats_json.to_string ~meta:[ ("workload", name) ] ~cycles ~instrs ~stats:st ()
      in
      Buffer.add_string b
        (Printf.sprintf "    %S: %s%s\n" name (String.trim doc) (if i = n - 1 then "" else ",")))
    entries;
  Buffer.add_string b "  }\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc;
  Printf.printf "wrote %s\n" path

let perf ~quick ~out ~check ~stats_json () =
  header "perf: simulation speed (compiled vs interpreted vs stripped)";
  (* calibrate first, on a quiet process — no worker domains alive yet *)
  let calib_s = calibrate () in
  let budget = 200_000_000 in
  let kernels = if quick then [ "smoke" ] else [ "smoke"; "gcc"; "gobmk" ] in
  let rows_s = List.map (perf_workload ~budget) kernels in
  (* the quad row keeps the per-cycle engine as a reference; the 16-core row
     is the epoch engine's home turf (4-bank L2, auto-derived window) *)
  let mc_rows_s =
    [
      perf_multicore ~budget ~harts:4 ~epoch:1
        ~cfg:(Ooo.Config.multicore Ooo.Config.TSO) "blackscholes";
      perf_multicore ~budget ~harts:16 ~epoch:0
        ~cfg:(Ooo.Config.multicore16 Ooo.Config.TSO) "blackscholes";
    ]
  in
  let rows = List.map fst rows_s and mc_rows = List.map fst mc_rows_s in
  (match stats_json with
  | None -> ()
  | Some path ->
    write_stats_json path
      (List.map (fun (r, st) -> (r.wname, r.pcycles, r.pinstrs, st)) rows_s
      @ List.map (fun (r, st) -> (r.mcname, r.mccycles, r.mcinstrs, st)) mc_rows_s));
  List.iter
    (fun r ->
      Printf.printf "%s: %.0f sim-cycles/s serial (epoch %d); domain-parallel speedup %.2fx at \
                     --jobs 4, %.2fx at --jobs 8\n"
        r.mcname (mc_cps r) r.mcepoch (mc_speedup r 4) (mc_speedup r 8))
    mc_rows;
  let farm = perf_farm ~seeds:50 in
  Printf.printf
    "farm: %d-byte snapshots, save %.2f ms / restore %.2f ms; warm-forked %d-seed litmus sweep \
     %.2fx faster than cold-start (%.2fs vs %.2fs)\n"
    farm.snap_bytes (1000. *. farm.save_s) (1000. *. farm.restore_s) farm.fseeds
    (farm.cold_s /. farm.warm_s) farm.warm_s farm.cold_s;
  let micro_on = measure_ns "idle-sched fastpath" (idle_sched_thunk ~fastpath:true) in
  let micro_off = measure_ns "idle-sched stripped" (idle_sched_thunk ~fastpath:false) in
  Printf.printf "idle 64-rule scheduler cycle: %.1f ns fastpath, %.1f ns stripped (%.2fx)\n"
    micro_on micro_off (micro_off /. micro_on);
  Printf.printf "host calibration (%s): %.4f s\n" calib_name calib_s;
  let json = perf_json ~calib_s rows mc_rows farm micro_on micro_off in
  (match out with
  | None -> print_string json
  | Some path ->
    let oc = open_out path in
    output_string oc json;
    close_out oc;
    Printf.printf "wrote %s\n" path);
  match check with
  | None -> ()
  | Some path ->
    (* CI gate, two kinds of check. (1) Engine-ratio columns:
       compiled-vs-interpreted and compiled-vs-stripped wall-time ratios of
       the same binary in the same process cancel host speed outright; a
       ratio more than 5% below the checked-in baseline means the schedule
       compiler (or the fast path) lost its advantage. (2) Absolute
       sim-cycles/s, calibrated: raw cycles/s depend on the (shared, noisy)
       CI host, so the fixed-work calibration microbench rescales the
       baseline to this host first — expected = baseline_cps x
       (baseline_calib_wall / current_calib_wall) — and the gate fires only
       10% below that, replacing the old flat host-speed fudge. Only the
       single-core rows gate absolutely: the multicore rows' serial wall
       swings with the OS scheduler and the worker-domain pool, which
       calibration cannot cancel, so their cycles/s stay informational. A
       baseline without a calibration entry keeps absolutes informational
       everywhere. *)
    let base = read_file path in
    let margin = 0.95 in
    let abs_margin = 0.90 in
    let calib_scale =
      match baseline_field base calib_name "wall_s" with
      | None ->
        Printf.printf "check: baseline has no %s entry; absolute sim_cps is informational\n"
          calib_name;
        None
      | Some bw ->
        Printf.printf "check: calibration %.4f s vs baseline %.4f s (host speed %.2fx)\n" calib_s
          bw (bw /. calib_s);
        Some (bw /. calib_s)
    in
    let abs_failures =
      List.filter_map
        (fun (name, c) ->
          match (baseline_cps base name, calib_scale) with
          | None, _ ->
            Printf.printf "check: no baseline sim_cps for %s\n" name;
            None
          | Some b, None ->
            Printf.printf "check: %s %.0f c/s vs baseline %.0f c/s (%.2fx) [informational]\n"
              name c b (c /. b);
            None
          | Some b, Some scale ->
            let expected = b *. scale in
            let ok = c >= abs_margin *. expected in
            Printf.printf
              "check: %s %.0f c/s vs calibrated baseline %.0f c/s (floor %.0f) %s\n" name c
              expected (abs_margin *. expected)
              (if ok then "ok" else "FAIL");
            if ok then None else Some (name ^ ".sim_cps"))
        (List.map (fun r -> (r.wname, cps r)) rows)
    in
    List.iter
      (fun r ->
        match baseline_cps base r.mcname with
        | None -> ()
        | Some b ->
          Printf.printf "check: %s %.0f c/s vs baseline %.0f c/s (%.2fx) [informational]\n"
            r.mcname (mc_cps r) b (mc_cps r /. b))
      mc_rows;
    let gate name fields =
      List.filter_map
        (fun (field, v) ->
          match baseline_field base name field with
          | None ->
            Printf.printf "check: no baseline %s for %s, skipping\n" field name;
            None
          | Some b ->
            let ok = v >= margin *. b in
            Printf.printf "check: %s %s %.3f vs baseline %.3f (floor %.3f) %s\n" name field v b
              (margin *. b)
              (if ok then "ok" else "FAIL");
            if ok then None else Some (Printf.sprintf "%s.%s" name field))
        fields
    in
    let failures =
      List.concat_map
        (fun r ->
          gate r.wname
            [ ("compile_speedup", compile_speedup r); ("fastpath_speedup", fastpath_speedup r) ])
        rows
      (* the parallel-engine ratio: wall(jobs1)/wall(jobs4) of the same
         process cancels host speed the same way the engine ratios do.
         Only epoch-mode rows are gated — per-cycle-barrier rows pay a
         domain round trip every cycle, which makes their ratio a
         measurement of OS scheduling noise on small hosts, not of the
         engine; they stay informational. *)
      @ List.concat_map
          (fun r ->
            if r.mcepoch > 1 then gate r.mcname [ ("speedup_vs_serial_jobs4", mc_speedup r 4) ]
            else begin
              Printf.printf "check: %s speedup_vs_serial_jobs4 %.3f [informational, epoch 1]\n"
                r.mcname (mc_speedup r 4);
              []
            end)
          mc_rows
    in
    let failures = failures @ abs_failures in
    if failures <> [] then begin
      Printf.eprintf "PERF REGRESSION (vs %s: ratio >5%%, calibrated sim_cps >10%% below): %s\n"
        path
        (String.concat ", " failures);
      exit 1
    end

(* ---------------------------------------------------------------- *)
(* Main                                                               *)
(* ---------------------------------------------------------------- *)

let all_figs =
  [
    ("fig12", fig12); ("fig13", fig13); ("fig14", fig14); ("fig15", fig15); ("fig16", fig16);
    ("fig17", fig17); ("fig18", fig18); ("fig19", fig19); ("fig20", fig20); ("fig21", fig21);
    ("ablation-wakeup", ablation_wakeup); ("ablation-bypass", ablation_bypass);
    ("ablation-tlb", ablation_tlb); ("ablation-scheduler", ablation_scheduler);
    ("ablation-mesi", ablation_mesi); ("ablation-prefetch", ablation_prefetch);
    ("ablation-predictors", ablation_predictors);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = ref false and out = ref None and check = ref None and stats_json = ref None in
  let rec parse = function
    | "--scale" :: n :: rest ->
      scale := int_of_string n;
      parsec_scale := int_of_string n;
      parse rest
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--out" :: f :: rest ->
      out := Some f;
      parse rest
    | "--check" :: f :: rest ->
      check := Some f;
      parse rest
    | "--stats-json" :: f :: rest ->
      stats_json := Some f;
      parse rest
    | x :: rest -> x :: parse rest
    | [] -> []
  in
  let named = parse args in
  match named with
  | [ "perf" ] -> perf ~quick:!quick ~out:!out ~check:!check ~stats_json:!stats_json ()
  | [] ->
    Printf.printf "RiscyOO evaluation — reproducing every table and figure (scale %d)\n" !scale;
    List.iter (fun (_, f) -> f ()) all_figs;
    bechamel ()
  | names ->
    List.iter
      (fun n ->
        match List.assoc_opt n all_figs with
        | Some f -> f ()
        | None when n = "bechamel" -> bechamel ()
        | None -> Printf.eprintf "unknown figure %s\n" n)
      names
