let log2 n = log (float_of_int n) /. log 2.0
let sqrtf n = sqrt (float_of_int n)

let paths (cfg : Ooo.Config.t) =
  let w = float_of_int cfg.width in
  [
    (* commit/dispatch select across the ROB: banked select ~ sqrt(N) *)
    ("rob-select", 180.0 +. (91.0 *. sqrtf cfg.rob_size));
    (* IQ wakeup CAM + age-ordered select *)
    ("iq-wakeup-select", 340.0 +. (52.0 *. log2 (cfg.iq_size * (cfg.n_alu + 2))));
    (* rename: intra-group dependency cross-check grows with width^2 *)
    ("rename-xcheck", 300.0 +. (14.0 *. w *. w));
    (* bypass network fan-in *)
    ("bypass", 320.0 +. (26.0 *. float_of_int cfg.n_alu *. w));
    (* LSQ address CAM *)
    ("lsq-cam", 330.0 +. (40.0 *. log2 (cfg.lq_size + cfg.sq_size)));
    (* PRF read: address decode + bitline mux grows with the file depth *)
    ("prf-read", 250.0 +. (30.0 *. log2 cfg.n_phys_regs));
  ]

let critical_path_ps cfg = List.fold_left (fun a (_, d) -> max a d) 0.0 (paths cfg)
let max_freq_ghz cfg = 1000.0 /. critical_path_ps cfg
