(* Primitive costs in NAND2 equivalents (standard-cell folklore numbers). *)
let ff = 6.0 (* D flip-flop *)
let mux2 = 3.0
let cmp_bit = 4.0 (* one bit of a CAM/equality comparator *)
let adder_bit = 9.0

let log2 n = log (float_of_int n) /. log 2.0

let phys_tag_bits (cfg : Ooo.Config.t) = int_of_float (ceil (log2 cfg.n_phys_regs))

(* An N-entry structure with [bits] of state per entry, [rp] read and [wp]
   write ports: FFs plus per-port mux/decode trees. *)
let regfile ~entries ~bits ~rp ~wp =
  let e = float_of_int entries and b = float_of_int bits in
  (e *. b *. ff) +. (float_of_int rp *. e *. b *. mux2 /. 8.0) +. (float_of_int wp *. e *. 2.0)

let breakdown (cfg : Ooo.Config.t) =
  let w = float_of_int cfg.width in
  let tag = float_of_int (phys_tag_bits cfg) in
  let rob_entry_bits =
    (* pc + fault-address/CSR-data field + control + phys tags + spec mask *)
    48 + 64 + 40 + (3 * phys_tag_bits cfg) + cfg.n_spec_tags
  in
  let rob =
    regfile ~entries:cfg.rob_size ~bits:rob_entry_bits ~rp:(2 * cfg.width) ~wp:(2 * cfg.width)
    (* commit/dispatch select trees *)
    +. (w *. float_of_int cfg.rob_size *. 60.0)
  in
  let iq_one =
    (* each entry: uop payload FFs + two wakeup CAM comparators *)
    regfile ~entries:cfg.iq_size ~bits:(64 + (3 * phys_tag_bits cfg)) ~rp:1 ~wp:cfg.width
    +. (float_of_int cfg.iq_size *. 2.0 *. tag *. cmp_bit)
    (* age-ordered select tree *)
    +. (float_of_int cfg.iq_size *. 20.0)
  in
  let n_iqs = cfg.n_alu + 2 in
  let prf =
    regfile ~entries:cfg.n_phys_regs ~bits:64 ~rp:(2 * (cfg.n_alu + 2)) ~wp:(cfg.n_alu + 2)
  in
  let rename =
    (* RAT + RRAT + per-tag snapshots + free list ring *)
    regfile ~entries:32 ~bits:(2 * phys_tag_bits cfg) ~rp:(3 * cfg.width) ~wp:(2 * cfg.width)
    +. (float_of_int cfg.n_spec_tags *. 32.0 *. tag *. ff)
    +. regfile ~entries:cfg.n_phys_regs ~bits:(phys_tag_bits cfg) ~rp:cfg.width ~wp:cfg.width
  in
  let lsq =
    (* address CAMs against every entry, per mem-pipe port *)
    regfile ~entries:cfg.lq_size ~bits:(48 + 24) ~rp:2 ~wp:2
    +. regfile ~entries:cfg.sq_size ~bits:(48 + 64 + 16) ~rp:2 ~wp:2
    +. (float_of_int (cfg.lq_size + cfg.sq_size) *. 48.0 *. cmp_bit)
  in
  let store_buffer =
    regfile ~entries:cfg.sb_size ~bits:(48 + 512 + 64) ~rp:1 ~wp:1
    +. (float_of_int cfg.sb_size *. 48.0 *. cmp_bit)
  in
  let alu = float_of_int cfg.n_alu *. (64.0 *. adder_bit +. 3000.0) in
  let muldiv = 22000.0 in
  let bypass = w *. float_of_int cfg.n_alu *. 64.0 *. mux2 *. 2.0 in
  let frontend_ctl = w *. 9000.0 (* fetch buffers, decoders, epoch logic *) in
  let predictor =
    (* direction-predictor tables + BTB + RAS kept in cells, as the paper
       notes ("significantly affected by the size of the branch
       predictors... could use SRAM"). The table bill depends on which
       predictor the config instantiates. *)
    let dir_tables =
      match cfg.predictor with
      | Branch.Dir_pred.Tournament ->
        (* local counters + local histories + global counters + chooser *)
        (1024.0 *. 10.0) +. (1024.0 *. 3.0) +. (4096.0 *. 2.0) +. (4096.0 *. 2.0)
      | Branch.Dir_pred.Gshare -> (4096.0 *. 2.0) +. 12.0 (* global table + history register *)
      | Branch.Dir_pred.Bimodal -> 1024.0 *. 2.0
    in
    (dir_tables *. ff)
    +. (float_of_int cfg.btb_entries *. (30.0 +. 48.0) *. ff)
    +. (float_of_int cfg.ras_entries *. 48.0 *. ff)
  in
  let cache_ctl =
    (* tag comparators, MSHRs, TLB control; data arrays are SRAM (excluded) *)
    float_of_int cfg.mem.Mem.Mem_sys.l1d_mshrs *. 2200.0
    +. 9000.0 (* L1D control *) +. 6000.0 (* L1I control *)
    +. float_of_int cfg.tlb.Tlb.Tlb_sys.dtlb_entries *. (27.0 +. 44.0) *. (ff +. cmp_bit)
    +. float_of_int cfg.tlb.Tlb.Tlb_sys.itlb_entries *. (27.0 +. 44.0) *. (ff +. cmp_bit)
    +. (match cfg.tlb.Tlb.Tlb_sys.walk_cache_entries with
       | Some n -> float_of_int (2 * n) *. (30.0 +. 44.0) *. (ff +. cmp_bit)
       | None -> 0.0)
    +. float_of_int cfg.tlb.Tlb.Tlb_sys.l2_misses *. 3500.0
  in
  let l2_ctl =
    (* shared-L2 control: per-bank scheduler/tag pipeline + MSHR file,
       plus the directory state machine. MESI carries an extra stable
       state and the exclusive-grant decision per bank. *)
    let banks = float_of_int cfg.mem.Mem.Mem_sys.l2_banks in
    let per_bank =
      7000.0
      +. (float_of_int cfg.mem.Mem.Mem_sys.l2_mshrs /. banks *. 2600.0)
      +. (if cfg.mem.Mem.Mem_sys.mesi then 1400.0 else 0.0)
    in
    banks *. per_bank
  in
  [
    ("rob", rob);
    ("issue-queues", float_of_int n_iqs *. iq_one);
    ("prf", prf);
    ("rename+spec", rename);
    ("lsq", lsq);
    ("store-buffer", store_buffer);
    ("alus", alu);
    ("muldiv", muldiv);
    ("bypass", bypass);
    ("front-end", frontend_ctl);
    ("predictors", predictor);
    ("cache/tlb control", cache_ctl);
    ("l2 control", l2_ctl);
  ]

(* Global calibration: anchors RiscyOO-T+ at the paper's 1.78 M NAND2. *)
let fudge = ref None

let raw_total cfg = List.fold_left (fun a (_, g) -> a +. g) 0.0 (breakdown cfg)

let calibration () =
  match !fudge with
  | Some f -> f
  | None ->
    let f = 1.78e6 /. raw_total Ooo.Config.riscyoo_tplus in
    fudge := Some f;
    f

let total cfg = raw_total cfg *. calibration ()

let breakdown cfg =
  let f = calibration () in
  List.map (fun (n, g) -> (n, g *. f)) (breakdown cfg)
