(** Ephemeral history registers (Rosenband), the primitive from which all
    intra-cycle orderings are built.

    An EHR exposes numbered read/write ports. Within one cycle, a read at
    port [i] observes all writes at ports [< i] (from any rule fired earlier
    in the schedule, or earlier in the same rule); writes at a higher port
    supersede lower ones. The induced conflict matrix is:

    {v  r[i] CF r[j]      r[i] < w[j] iff i <= j
        w[i] < w[j] iff i < j      w[i] < r[j] iff i < j  v} *)

type 'a t

(** [create ?name init] makes an EHR holding [init]. *)
val create : ?name:string -> 'a -> 'a t

(** [read ctx t p] reads through port [p]. *)
val read : Kernel.ctx -> 'a t -> int -> 'a

(** [write ctx t p v] writes through port [p]. *)
val write : Kernel.ctx -> 'a t -> int -> 'a -> unit

(** Untracked read, for tests, statistics and cycle-boundary hooks only. *)
val peek : 'a t -> 'a

(** Untracked write, for initialization and cycle-boundary hooks only. *)
val poke : 'a t -> 'a -> unit

val name : 'a t -> string

(** The EHR's wakeup signal: touched on every tracked or untracked write
    that physically changes the value (and on fault-injection flips). Rules
    whose [can_fire] reads this EHR through {!peek} may watch it. *)
val signal : 'a t -> Wakeup.signal

(** {2 Conflict footprints}

    Every EHR is born its own {!Conflict.prim}; compound primitives built
    from EHRs (FIFOs, pipeline stages) {!adopt} their internals into one
    identity so their own footprint helpers speak for all internal cells. *)

val prim : 'a t -> Conflict.prim

val adopt : 'a t -> Conflict.prim -> unit

(** [fp t ~label accs] is a footprint atom for a method performing the
    [(write?, port)] accesses on this EHR. *)
val fp : 'a t -> label:string -> (bool * int) list -> Conflict.atom

(** Single-access atoms for a direct port read / write. *)
val fp_read : 'a t -> int -> Conflict.atom

val fp_write : 'a t -> int -> Conflict.atom
