(** Rules: the guarded atomic actions that compose modules (paper, Sec. III).

    A rule's body calls interface methods of any number of modules; firing is
    all-or-nothing. The scheduler gathers per-rule firing statistics here.

    {2 Fast-path metadata}

    [can_fire] is an optional {e cheap, untracked} predicate: when it returns
    [false] the scheduler may skip the attempt entirely — no transaction
    context, no exception, no rollback. The contract is one-sided:
    [can_fire () = false] must imply the body could not fire this cycle
    (w.r.t. the state committed so far in the schedule); [true] promises
    nothing, the guard inside the body remains the correctness backstop.
    [Sim]'s [--scheduler-audit] mode checks the contract dynamically.

    [watches] is the rule's sensitivity set: when present, a rule whose
    [can_fire] said [false] is {e parked} and is not even re-polled until one
    of the watched signals is touched. A rule may only declare watches when
    its [can_fire] depends exclusively on state covered by those signals;
    rules reading plain mutable state (no signal) must stay watchless so the
    predicate is re-evaluated every cycle.

    [vacuous] declares that the body wraps its work in [Kernel.attempt] and
    therefore returns normally — "fires" — even when the inner guard fails.
    The scheduler uses this to account a skipped rule exactly as the seed
    scheduler would have (a vacuous fire), keeping cycle-by-cycle firing
    statistics bit-identical with and without the fast path.

    {2 Partition metadata}

    [part] is the partition the rule belongs to, captured from
    [Partition.ambient] at construction. [touches] declares the {e boundary}
    primitives the rule's body may access — primitives also accessible from
    another partition (in practice the conflict-free FIFOs between a core
    cluster and the uncore). Partition-private state needs no declaration;
    the static checker in [Sim] proves no primitive is claimed by two
    parallel partitions, and [--partition-audit] dynamically backstops the
    private-state assumption. *)

type t = {
  name : string;
  body : Kernel.ctx -> unit;
  can_fire : (unit -> bool) option;  (** cheap pre-attempt predicate *)
  watches : Wakeup.signal array;  (** sensitivity set for parking *)
  vacuous : bool;  (** body swallows guard failures via [attempt] *)
  part : int;  (** partition, captured from [Partition.ambient] at [make] *)
  touches : Partition.token array;  (** declared boundary primitives *)
  fp : Conflict.atom list option;
      (** conflict footprint: every tracked primitive method the body may
          call, as [Conflict.atom]s; [None] = opaque (conflicts with
          everything, disables schedule compilation for the whole design) *)
  total : bool;
      (** claims the body never aborts after a tracked write when attempted
          (guards, if any, fail before mutating); lets the compiler drop
          the undo log. Verified by [--compile-audit], backstopped by a
          hard error at run time *)
  mutable fired : int;  (** cycles in which the rule fired *)
  mutable guard_failed : int;  (** attempts aborted by a guard *)
  mutable conflicted : int;  (** attempts aborted by an intra-cycle conflict *)
  mutable skipped : int;  (** attempts pruned by the fast path *)
  mutable parked : bool;  (** scheduler state: waiting on [watches] *)
  mutable park_sum : int;  (** generation sum at park time *)
  mutable last_fired : int;
      (** cycle of the most recent fire, -1 if never; maintained by the
          parallel executor so the firing history can be reconstructed in
          global schedule order after the barrier *)
  mutable rid : int;
      (** stable small-integer id assigned by an observability sink when a
          rule trace is attached (creation-order index into [Sim.rules]);
          -1 when no sink has claimed the rule *)
}

val make :
  ?can_fire:(unit -> bool) ->
  ?watches:Wakeup.signal list ->
  ?touches:Partition.token list ->
  ?fp:Conflict.atom list ->
  ?total:bool ->
  ?vacuous:bool ->
  string ->
  (Kernel.ctx -> unit) ->
  t

(** Reset the statistics counters. *)
val reset_stats : t -> unit
