type t = {
  name : string;
  body : Kernel.ctx -> unit;
  can_fire : (unit -> bool) option;
  watches : Wakeup.signal array;
  vacuous : bool;
  part : int;
  touches : Partition.token array;
  fp : Conflict.atom list option;
  total : bool;
  mutable fired : int;
  mutable guard_failed : int;
  mutable conflicted : int;
  mutable skipped : int;
  mutable parked : bool;
  mutable park_sum : int;
  mutable last_fired : int;
  mutable rid : int;
}

let make ?can_fire ?(watches = []) ?(touches = []) ?fp ?(total = false) ?(vacuous = false) name
    body =
  {
    name;
    body;
    can_fire;
    watches = Array.of_list watches;
    vacuous;
    part = Partition.ambient ();
    touches = Array.of_list touches;
    fp;
    total;
    fired = 0;
    guard_failed = 0;
    conflicted = 0;
    skipped = 0;
    parked = false;
    park_sum = 0;
    last_fired = -1;
    rid = -1;
  }

let reset_stats t =
  t.fired <- 0;
  t.guard_failed <- 0;
  t.conflicted <- 0;
  t.skipped <- 0;
  t.last_fired <- -1
