type 'a t = {
  cell : Kernel.cell;
  mutable v : 'a;
  nm : string;
  sg : Wakeup.signal;
  mutable prim : Conflict.prim;
}

(* Atomic so concurrent machine builds (farm workers) still get unique
   debug names. The snapshot registry entry deliberately uses the stable
   stem instead: counter-suffixed names are not build-deterministic, and
   the State config digest must match across independent builds of the
   same configuration. *)
let counter = Atomic.make 0

(* Fault-injection support: when the Inject registry is armed, every EHR is
   a candidate site. The cell is polymorphic, so a bit can only be flipped
   when the live value is an immediate (int, bool, constant constructor):
   XOR-ing the OCaml-int view preserves the tag bit, so the result is still
   an immediate and the mutation is memory-safe — pattern matches and
   bounds checks downstream turn a nonsense value into a detected fault
   rather than undefined behaviour. Boxed values report [false] (no flip). *)
let inject_width = 8

let flip_immediate t bit =
  if Obj.is_int (Obj.repr t.v) then begin
    t.v <- Obj.magic ((Obj.magic t.v : int) lxor (1 lsl bit));
    Wakeup.touch t.sg;
    true
  end
  else false

let create ?name init =
  let nm =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "ehr#%d" (Atomic.fetch_and_add counter 1 + 1)
  in
  let prim = Conflict.fresh_prim nm in
  let cell = Kernel.make_cell nm in
  Kernel.set_cell_prim cell prim.Conflict.pid;
  let t = { cell; v = init; nm; sg = Wakeup.make (); prim } in
  Inject.register ~name:nm ~width:inject_width (flip_immediate t);
  State.register
    ~name:(match name with Some n -> n | None -> "ehr")
    ~save:(fun () -> Obj.repr t.v)
    ~load:(fun o ->
      let v : 'a = Obj.obj o in
      if v != t.v then Wakeup.touch t.sg;
      t.v <- v);
  t

let read ctx t p =
  Kernel.record_read ctx t.cell p;
  t.v

(* Touch only on a physical value change: parked predicates observe values
   through [peek], so writing back the same immediate (the common idle case,
   e.g. wires re-poked to None at every cycle boundary) cannot change any
   predicate's answer and need not wake anyone. A rolled-back write leaves
   its touch behind — a spurious wakeup, which is harmless. *)
let write ctx t p v =
  Kernel.record_write ctx t.cell p;
  let old = t.v in
  if Kernel.logging ctx then Kernel.on_abort ctx (fun () -> t.v <- old)
  else Kernel.note_elided ctx;
  if v != old then Wakeup.touch t.sg;
  t.v <- v

let peek t = t.v

let poke t v =
  if v != t.v then Wakeup.touch t.sg;
  t.v <- v

let name t = t.nm
let signal t = t.sg
let prim t = t.prim

(* Compound primitives (FIFOs, stages) fold their internal EHRs into one
   conflict-analysis identity: the wrapper's footprint helpers then speak
   for all of them, and the compile audit attributes accesses correctly. *)
let adopt t (prim : Conflict.prim) =
  t.prim <- prim;
  Kernel.set_cell_prim t.cell prim.Conflict.pid

let fp t ~label accs =
  Conflict.atom ~prim:t.prim ~label (List.map (fun (w, p) -> (w, 0, p)) accs)

let fp_read t p = fp t ~label:(Printf.sprintf "r%d" p) [ (false, p) ]
let fp_write t p = fp t ~label:(Printf.sprintf "w%d" p) [ (true, p) ]
