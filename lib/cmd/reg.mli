(** Plain registers: an EHR restricted to one read and one write port.

    Conflict matrix: [read < write], [write C write]. In a cycle, rules that
    read must be scheduled before the rule that writes; a rule may not read a
    register it has already written (use {!Ehr} if you want forwarding). *)

type 'a t

val create : ?name:string -> 'a -> 'a t
val read : Kernel.ctx -> 'a t -> 'a
val write : Kernel.ctx -> 'a t -> 'a -> unit

(** [modify ctx r f] reads then writes — subject to the same CM. *)
val modify : Kernel.ctx -> 'a t -> ('a -> 'a) -> unit

val peek : 'a t -> 'a
val poke : 'a t -> 'a -> unit

(** Footprint atoms for [Rule.make ~fp]: [read < write], [write C write]. *)
val fp_read : 'a t -> Conflict.atom

val fp_write : 'a t -> Conflict.atom
