(* Per-machine snapshot state registry.

   Every primitive that owns live simulation state — an EHR's value, a
   conflict-free FIFO's cycle-start snapshots, the PRF's arrays, a cache's
   line array — registers a (save, load) pair while a machine is being
   built, using the same armed-collector pattern as [Inject] (fault sites)
   and [Verif.Invariant] (checks): registration against the ambient
   collector is a no-op when no machine build is in progress, so ordinary
   primitive construction pays one branch.

   The collector is domain-local so that farm workers can build machines
   concurrently: each domain's build sees only its own registry.

   Serialization marshals ALL saved values as ONE array in a single
   [Marshal.to_string] call. This is load-bearing for bit-identity: a uop
   in flight is typically referenced from several containers at once (ROB
   slot, LSQ entry, issue-queue entry, a stage register), and per-entry
   marshaling would split that shared mutable record into independent
   copies — a later write through one container would no longer be seen
   through the others. One blob preserves the heap sharing, so the restored
   machine has the same object graph shape as the snapshotted one.

   [Marshal.Closures] is required because in-flight atomic-memory requests
   carry their read-modify-write function through cache FIFOs and MSHR
   waiter lists. Closure marshaling only round-trips within the same
   binary, so the image header records a digest of the running executable
   and [load] refuses images from any other build. *)

type entry = { sname : string; save : unit -> Obj.t; load : Obj.t -> unit }
type registry = { entries : entry array }

exception Error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

let collector : entry list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let register ~name ~save ~load =
  match !(Domain.DLS.get collector) with
  | Some l -> l := { sname = name; save; load } :: !l
  | None -> ()

(* Typed convenience wrapper: [get] returns the live value (it is marshaled
   immediately, so returning live structure without copying is fine); [set]
   receives the unmarshaled value and must write it back IN PLACE — rules
   capture the containers, not fresh ones, at build time. *)
let field ~name get set =
  register ~name
    ~save:(fun () -> Obj.repr (get ()))
    ~load:(fun o -> set (Obj.obj o))

let collecting f =
  let c = Domain.DLS.get collector in
  let saved = !c in
  let l = ref [] in
  c := Some l;
  Fun.protect
    ~finally:(fun () -> c := saved)
    (fun () ->
      let r = f () in
      (r, { entries = Array.of_list (List.rev !l) }))

let names t = Array.to_list (Array.map (fun e -> e.sname) t.entries)
let size t = Array.length t.entries

(* ---------------------------------------------------------------------- *)
(* Image codec                                                            *)
(*                                                                        *)
(* magic | exe digest | config digest | payload length | payload digest | *)
(* payload. The payload digest is verified BEFORE unmarshaling: Marshal   *)
(* on corrupted input is undefined behaviour, the digest check turns it   *)
(* into a clean [Error]. The config digest covers the registry's entry    *)
(* names in registration order plus a caller-supplied configuration       *)
(* string, so an image can only be loaded into a machine whose state      *)
(* inventory is structurally identical to the one that wrote it.          *)
(* ---------------------------------------------------------------------- *)

let magic = "riscyoo-snap-v1\n"

(* Not a [lazy]: snapshots are taken concurrently from worker domains and
   forcing a shared lazy from two domains raises [Lazy.Undefined] on the
   loser. A mutex-guarded memo is domain-safe; the digest is computed once,
   by whichever domain snapshots first. *)
let exe_digest_mutex = Mutex.create ()
let exe_digest_memo = ref None

let exe_digest () =
  Mutex.lock exe_digest_mutex;
  let d =
    match !exe_digest_memo with
    | Some d -> d
    | None ->
      let d =
        try Digest.file Sys.executable_name
        with _ -> Digest.string Sys.executable_name
      in
      exe_digest_memo := Some d;
      d
  in
  Mutex.unlock exe_digest_mutex;
  d

let config_digest t ~config =
  Digest.string (String.concat "\x00" (config :: names t))

let header_len = String.length magic + 16 + 16 + 8 + 16

let save t ~config =
  let vals = Array.map (fun e -> e.save ()) t.entries in
  let payload = Marshal.to_string vals [ Marshal.Closures ] in
  let b = Buffer.create (String.length payload + header_len) in
  Buffer.add_string b magic;
  Buffer.add_string b (exe_digest ());
  Buffer.add_string b (config_digest t ~config);
  Buffer.add_int64_be b (Int64.of_int (String.length payload));
  Buffer.add_string b (Digest.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

let load t ~config img =
  let mlen = String.length magic in
  if String.length img < header_len then
    error "snapshot image truncated (%d bytes, header is %d)" (String.length img) header_len;
  if String.sub img 0 mlen <> magic then
    error "bad snapshot magic (not a riscyoo-snap-v1 image)";
  let at = ref mlen in
  let take n =
    let s = String.sub img !at n in
    at := !at + n;
    s
  in
  let exe = take 16 in
  if exe <> exe_digest () then
    error
      "snapshot was written by a different binary (closure marshaling only round-trips within one build)";
  let cfg = take 16 in
  if cfg <> config_digest t ~config then
    error "snapshot configuration mismatch (machine kind/config/state inventory differ)";
  let plen = Int64.to_int (String.get_int64_be img !at) in
  at := !at + 8;
  let pdig = take 16 in
  if plen < 0 || String.length img - !at <> plen then
    error "snapshot payload truncated (%d bytes present, header says %d)"
      (String.length img - !at) plen;
  let payload = String.sub img !at plen in
  if Digest.string payload <> pdig then error "snapshot payload checksum mismatch (corrupted image)";
  let vals : Obj.t array =
    try Marshal.from_string payload 0
    with Failure m -> error "snapshot payload does not unmarshal: %s" m
  in
  if Array.length vals <> Array.length t.entries then
    error "snapshot carries %d state entries, machine registers %d" (Array.length vals)
      (Array.length t.entries);
  Array.iteri (fun i e -> e.load vals.(i)) t.entries
