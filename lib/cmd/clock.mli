(** The simulated clock.

    A {!t} carries the current cycle number and the list of end-of-cycle
    hooks. Hooks are how cycle-boundary primitives ({!Config_reg}, {!Wire})
    commit or reset their state; they run outside any rule, after all rules of
    the cycle have fired, in registration order. *)

type t

(** A fresh clock at cycle 0 with no hooks. *)
val create : unit -> t

(** Current cycle number, starting at 0. Includes the calling domain's
    {!set_skew} offset, so a partition free-running inside an epoch window
    reads the architectural cycle it is simulating. *)
val now : t -> int

(** Process-lifetime cycle identity: advances with {!now} but never goes
    backward — a snapshot restore rewinds {!now} yet {e bumps} [uid], so a
    cycle id observed before the restore can never recur. This is the key
    for lazily-reset per-cycle caches (the kernel's cell access summaries),
    which would otherwise trust stale state when a restored machine's
    clock catches up to a cycle number from an earlier run. Like {!now},
    it includes the domain-local skew. *)
val uid : t -> int

(** Set the calling domain's clock skew: {!now} and {!uid} return their
    base value plus this offset. The epoch engine ([Sim ~epoch]) sets it to
    the local cycle index while a partition free-runs (and while the uncore
    replays), and back to 0 at every synchronization point. Defaults to 0;
    single-cycle execution never touches it. *)
val set_skew : int -> unit

(** Register a hook to run at the end of every cycle. The hook is tagged
    with the ambient {!Partition} at registration time, which determines
    which phase of an epoch window runs it (see {!hooks_by_partition}). *)
val on_cycle_end : t -> (unit -> unit) -> unit

(** Run all end-of-cycle hooks (oldest-first), then advance the cycle
    number. *)
val tick : t -> unit

(** The registered hooks grouped by owning partition, oldest-first within a
    group; index [p] holds partition [p]'s hooks. The array is cached and
    rebuilt on registration. The epoch engine runs group [p] after each of
    partition [p]'s local cycles, so hooks run exactly once per simulated
    cycle on the domain that owns their primitives. *)
val hooks_by_partition : t -> (unit -> unit) array array

(** Advance [now] and [uid] by [cycles] without running any hooks — the
    epoch engine has already run each hook group once per local cycle. *)
val advance : t -> cycles:int -> unit
