(** The simulated clock.

    A {!t} carries the current cycle number and the list of end-of-cycle
    hooks. Hooks are how cycle-boundary primitives ({!Config_reg}, {!Wire})
    commit or reset their state; they run outside any rule, after all rules of
    the cycle have fired, in registration order. *)

type t

(** A fresh clock at cycle 0 with no hooks. *)
val create : unit -> t

(** Current cycle number, starting at 0. *)
val now : t -> int

(** Process-lifetime cycle identity: advances with {!now} but never goes
    backward — a snapshot restore rewinds {!now} yet {e bumps} [uid], so a
    cycle id observed before the restore can never recur. This is the key
    for lazily-reset per-cycle caches (the kernel's cell access summaries),
    which would otherwise trust stale state when a restored machine's
    clock catches up to a cycle number from an earlier run. *)
val uid : t -> int

(** Register a hook to run at the end of every cycle. *)
val on_cycle_end : t -> (unit -> unit) -> unit

(** Run all end-of-cycle hooks, then advance the cycle number. *)
val tick : t -> unit
