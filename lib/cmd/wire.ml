type 'a t = 'a option Ehr.t

let create ?name clk () =
  let t = Ehr.create ?name None in
  Clock.on_cycle_end clk (fun () -> Ehr.poke t None);
  t

let set ctx t v = Ehr.write ctx t 0 (Some v)
let get ctx t = Ehr.read ctx t 1

let get_exn ctx t =
  match get ctx t with
  | Some v -> v
  | None -> raise (Kernel.Guard_fail (Kernel.rule_name ctx ^ ": wire " ^ Ehr.name t ^ " empty"))

let peek = Ehr.peek
let signal = Ehr.signal
let fp_set t = Ehr.fp_write t 0
let fp_get t = Ehr.fp_read t 1
