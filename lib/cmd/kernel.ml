exception Guard_fail of string
exception Retry of string
exception Conflict_error of string
exception Partition_overlap of string
exception Compile_audit_fail of string

type cell = {
  cell_name : string;
  mutable prim : int; (* owning Conflict.prim pid; -1 until adopted *)
  (* Per-cycle access summary, lazily reset via the [stamp] generation. *)
  mutable max_r : int;  (* highest read port this cycle, -1 if none *)
  mutable max_w : int;  (* highest write port this cycle, -1 if none *)
  mutable w_mask : int; (* bitmask of write ports used this cycle *)
  mutable stamp : int;  (* cycle the summary belongs to *)
  (* Partition-audit summary, kept on its own stamp so the hot path stays
     untouched when auditing is off. Masks are never rolled back on abort:
     even an aborted access read the cell concurrently, so it counts. *)
  mutable p_rmask : int; (* partitions that read this cell this cycle *)
  mutable p_wmask : int; (* partitions that wrote this cell this cycle *)
  mutable p_stamp : int;
}

(* Undo entries live in a reusable arena: a growable array of closures with
   a fill pointer. The scheduler keeps one ctx alive across every rule
   attempt of a run, so the steady-state cost of an attempt is writing
   closures into pre-allocated slots instead of consing a fresh list per
   rule per cycle. A "mark" is just a fill-pointer snapshot. *)
type ctx = {
  clk : Clock.t;
  mutable undo : (unit -> unit) array;
  mutable undo_len : int;
  mutable rule : string;
  mutable accesses : int;
  mutable part : int;       (* partition currently executing on this ctx *)
  mutable stats_slot : int; (* shard index for Stats counters; -1 = direct *)
  mutable paudit : bool;    (* record per-partition cell touches *)
  (* Epoch-mode partition audit: [pkey >= 0] keys the audit masks on the
     whole epoch window instead of the cycle, so a cell shared across
     partitions *anywhere* within a window is flagged — free-running
     partitions are only speculation-safe when the window's phases touch
     disjoint state. [pexempt] whitelists the declared boundary-FIFO
     primitives, whose cross-partition protocol the epoch engine itself
     sequences (and the equivalence tests check). *)
  mutable pkey : int;
  mutable pexempt : int -> bool;
  (* Compiled-schedule tier flags (Sim). [chk] gates the per-cell port
     admissibility bookkeeping: the schedule compiler clears it for rules
     whose every conflict pair is statically admissible, so no access of
     theirs can raise or contribute to a [Retry]. [log] gates the undo
     arena: cleared only for rules additionally proven abort-free (total);
     elided entries are counted in [dropped] so a wrong totality claim
     turns into a hard [Conflict_error] instead of a silent divergence. *)
  mutable chk : bool;
  mutable log : bool;
  mutable dropped : int;
  (* Compile-audit instrumentation (cold: all stay 0/None in normal runs).
     [vundo] counts value-undo registrations, distinguishing them from the
     kernel's own bookkeeping undos; [retries] counts Retry raises;
     [audit_total] marks the current rule as claiming abort-free commits;
     [fp_check] is called on every tracked access with the touched cell. *)
  mutable vundo : int;
  mutable retries : int;
  mutable audit_total : bool;
  mutable fp_check : (cell -> write:bool -> unit) option;
}

let no_undo () = ()

let make_cell name =
  {
    cell_name = name;
    prim = -1;
    max_r = -1;
    max_w = -1;
    w_mask = 0;
    stamp = -1;
    p_rmask = 0;
    p_wmask = 0;
    p_stamp = -1;
  }

let make_ctx clk =
  {
    clk;
    undo = Array.make 64 no_undo;
    undo_len = 0;
    rule = "?";
    accesses = 0;
    part = 0;
    stats_slot = -1;
    paudit = false;
    pkey = -1;
    pexempt = (fun _ -> false);
    chk = true;
    log = true;
    dropped = 0;
    vundo = 0;
    retries = 0;
    audit_total = false;
    fp_check = None;
  }

let clock ctx = ctx.clk
let rule_name ctx = ctx.rule
let set_rule_name ctx n = ctx.rule <- n
let partition ctx = ctx.part
let set_partition ctx p = ctx.part <- p
let stats_slot ctx = ctx.stats_slot
let set_stats_slot ctx s = ctx.stats_slot <- s
let set_partition_audit ctx b = ctx.paudit <- b
let set_audit_key ctx k = ctx.pkey <- k
let set_audit_exempt ctx f = ctx.pexempt <- f
let partition_audit ctx = ctx.paudit

let set_tier ctx ~chk ~log =
  ctx.chk <- chk;
  ctx.log <- log;
  ctx.dropped <- 0

let cell_prim c = c.prim
let cell_name c = c.cell_name
let set_cell_prim c pid = c.prim <- pid
let retries ctx = ctx.retries
let dropped ctx = ctx.dropped
let set_total_audit ctx b = ctx.audit_total <- b
let set_fp_check ctx f = ctx.fp_check <- f

let overlap_fail ctx c all =
  let parts = ref [] in
  for p = 60 downto 0 do
    if all land (1 lsl p) <> 0 then parts := string_of_int p :: !parts
  done;
  raise
    (Partition_overlap
       (Printf.sprintf
          "cycle %d: cell %s touched by partitions {%s} with a write involved (last access by rule %s)"
          (Clock.now ctx.clk) c.cell_name
          (String.concat "," !parts)
          ctx.rule))

(* Record a cell touch for the partition audit. Read-read sharing across
   partitions is harmless (no order dependence); any sharing that involves
   a write is an overlap the static checker should have excluded. *)
let audit_touch ctx c ~write =
  if ctx.pexempt c.prim then ()
  else begin
  let now = if ctx.pkey >= 0 then ctx.pkey else Clock.uid ctx.clk in
  if c.p_stamp <> now then begin
    c.p_stamp <- now;
    c.p_rmask <- 0;
    c.p_wmask <- 0
  end;
  let bit = 1 lsl ctx.part in
  if write then c.p_wmask <- c.p_wmask lor bit else c.p_rmask <- c.p_rmask lor bit;
  let all = c.p_rmask lor c.p_wmask in
  if c.p_wmask <> 0 && all land (all - 1) <> 0 then overlap_fail ctx c all
  end

(* Kernel-internal push, used for the port-bookkeeping undos of
   [record_read]/[record_write]; those run only when [chk] is set, and a
   checked rule always logs, so no gating here. *)
let push_undo ctx f =
  let n = ctx.undo_len in
  if n = Array.length ctx.undo then begin
    let bigger = Array.make (2 * n) no_undo in
    Array.blit ctx.undo 0 bigger 0 n;
    ctx.undo <- bigger
  end;
  ctx.undo.(n) <- f;
  ctx.undo_len <- n + 1

(* Value undos from module code. When the schedule compiler has switched
   logging off (a rule proven total), the entry is elided but counted, so
   an abort that would have needed it is a hard error (see [attempt]). *)
let on_abort ctx f =
  if ctx.log then begin
    ctx.vundo <- ctx.vundo + 1;
    push_undo ctx f
  end
  else ctx.dropped <- ctx.dropped + 1

(* Allocation-free variant of the elided path: primitives that sit on the
   per-cycle hot path ([Ehr.write], [Mut.set]) test [logging] first so the
   undo closure is never even allocated when the schedule compiler has
   switched the log off (tier A). The elision still counts into [dropped],
   keeping the wrong-totality check exact. *)
let logging ctx = ctx.log
let note_elided ctx = ctx.dropped <- ctx.dropped + 1

let access_count ctx = ctx.accesses
let undo_depth ctx = ctx.undo_len

let reset_ctx ctx =
  (* Forget committed undos without running them; clear the slots so the
     arena does not pin dead closures (and their captured old values). *)
  for i = 0 to ctx.undo_len - 1 do
    ctx.undo.(i) <- no_undo
  done;
  ctx.undo_len <- 0;
  ctx.accesses <- 0

(* Stamps use [Clock.uid], not [Clock.now]: uid never goes backward across
   a snapshot restore, so a summary written by an earlier run of a reused
   machine can never masquerade as this cycle's. *)
let refresh ctx c =
  let now = Clock.uid ctx.clk in
  if c.stamp <> now then begin
    c.stamp <- now;
    c.max_r <- -1;
    c.max_w <- -1;
    c.w_mask <- 0
  end

let retry ctx c kind port =
  ctx.retries <- ctx.retries + 1;
  raise
    (Retry
       (Printf.sprintf "rule %s: %s port %d of %s inadmissible after this cycle's accesses (max_r=%d max_w=%d)"
          ctx.rule kind port c.cell_name c.max_r c.max_w))

(* When [chk] is off (rule statically proven conflict-admissible), an access
   is a plain read/write: no summary refresh, no admissibility test, no
   bookkeeping undo. The summaries other rules consult stay consistent
   because any pair that could ever retry has both endpoints checked. *)
let record_read ctx c port =
  if ctx.chk then begin
    refresh ctx c;
    if ctx.paudit then audit_touch ctx c ~write:false;
    (match ctx.fp_check with Some f -> f c ~write:false | None -> ());
    (* read[port] may follow write[j] only when j < port *)
    if c.max_w >= port then retry ctx c "read" port;
    ctx.accesses <- ctx.accesses + 1;
    if port > c.max_r then begin
      let old = c.max_r in
      c.max_r <- port;
      push_undo ctx (fun () -> c.max_r <- old)
    end
  end

let record_write ctx c port =
  if ctx.chk then begin
    refresh ctx c;
    if ctx.paudit then audit_touch ctx c ~write:true;
    (match ctx.fp_check with Some f -> f c ~write:true | None -> ());
    (* write[port] may follow read[j] when j <= port, write[j] when j < port *)
    if c.max_r > port || c.max_w >= port || c.w_mask land (1 lsl port) <> 0 then
      retry ctx c "write" port;
    ctx.accesses <- ctx.accesses + 1;
    let old_w = c.max_w and old_mask = c.w_mask in
    push_undo ctx (fun () ->
        c.max_w <- old_w;
        c.w_mask <- old_mask);
    c.max_w <- port;
    c.w_mask <- c.w_mask lor (1 lsl port)
  end

(* No rule-name prefix: guards abort on the hot path (every non-firing
   attempted rule pays one), and the two string concatenations per failure
   dominated the abort cost. The rule is always recoverable from the catch
   site via [rule_name]. *)
let guard _ctx ok msg = if not ok then raise (Guard_fail msg)

let rollback_to ctx mark =
  (* Undo entries are newest-first from the top of the arena; applying them
     top-down restores each location through its successive old values. *)
  for i = ctx.undo_len - 1 downto mark do
    ctx.undo.(i) ();
    ctx.undo.(i) <- no_undo
  done;
  ctx.undo_len <- mark

let rollback ctx = rollback_to ctx 0

let attempt ctx f =
  let save = ctx.undo_len and sdrop = ctx.dropped and svundo = ctx.vundo in
  match f ctx with
  | r -> Some r
  | exception (Guard_fail _ | Retry _) ->
    (* Aborting with elided undos means the totality proof obligation the
       schedule compiler relied on is false: state is already corrupt, so
       fail hard rather than continue silently diverged. *)
    if ctx.dropped > sdrop then
      raise
        (Conflict_error
           (Printf.sprintf
              "rule %s: abort after %d unlogged write(s) in a no-rollback (total) compiled tier; the ~total declaration is wrong for this schedule"
              ctx.rule (ctx.dropped - sdrop)));
    if ctx.audit_total && ctx.vundo > svundo then
      raise
        (Compile_audit_fail
           (Printf.sprintf
              "rule %s claims ~total but aborted after %d tracked write(s); the claim would corrupt state under tier-A compilation"
              ctx.rule (ctx.vundo - svundo)));
    rollback_to ctx save;
    None
