exception Guard_fail of string
exception Retry of string
exception Conflict_error of string
exception Partition_overlap of string

type cell = {
  cell_name : string;
  (* Per-cycle access summary, lazily reset via the [stamp] generation. *)
  mutable max_r : int;  (* highest read port this cycle, -1 if none *)
  mutable max_w : int;  (* highest write port this cycle, -1 if none *)
  mutable w_mask : int; (* bitmask of write ports used this cycle *)
  mutable stamp : int;  (* cycle the summary belongs to *)
  (* Partition-audit summary, kept on its own stamp so the hot path stays
     untouched when auditing is off. Masks are never rolled back on abort:
     even an aborted access read the cell concurrently, so it counts. *)
  mutable p_rmask : int; (* partitions that read this cell this cycle *)
  mutable p_wmask : int; (* partitions that wrote this cell this cycle *)
  mutable p_stamp : int;
}

(* Undo entries live in a reusable arena: a growable array of closures with
   a fill pointer. The scheduler keeps one ctx alive across every rule
   attempt of a run, so the steady-state cost of an attempt is writing
   closures into pre-allocated slots instead of consing a fresh list per
   rule per cycle. A "mark" is just a fill-pointer snapshot. *)
type ctx = {
  clk : Clock.t;
  mutable undo : (unit -> unit) array;
  mutable undo_len : int;
  mutable rule : string;
  mutable accesses : int;
  mutable part : int;       (* partition currently executing on this ctx *)
  mutable stats_slot : int; (* shard index for Stats counters; -1 = direct *)
  mutable paudit : bool;    (* record per-partition cell touches *)
}

let no_undo () = ()

let make_cell name =
  {
    cell_name = name;
    max_r = -1;
    max_w = -1;
    w_mask = 0;
    stamp = -1;
    p_rmask = 0;
    p_wmask = 0;
    p_stamp = -1;
  }

let make_ctx clk =
  {
    clk;
    undo = Array.make 64 no_undo;
    undo_len = 0;
    rule = "?";
    accesses = 0;
    part = 0;
    stats_slot = -1;
    paudit = false;
  }

let clock ctx = ctx.clk
let rule_name ctx = ctx.rule
let set_rule_name ctx n = ctx.rule <- n
let partition ctx = ctx.part
let set_partition ctx p = ctx.part <- p
let stats_slot ctx = ctx.stats_slot
let set_stats_slot ctx s = ctx.stats_slot <- s
let set_partition_audit ctx b = ctx.paudit <- b

let overlap_fail ctx c all =
  let parts = ref [] in
  for p = 60 downto 0 do
    if all land (1 lsl p) <> 0 then parts := string_of_int p :: !parts
  done;
  raise
    (Partition_overlap
       (Printf.sprintf
          "cycle %d: cell %s touched by partitions {%s} with a write involved (last access by rule %s)"
          (Clock.now ctx.clk) c.cell_name
          (String.concat "," !parts)
          ctx.rule))

(* Record a cell touch for the partition audit. Read-read sharing across
   partitions is harmless (no order dependence); any sharing that involves
   a write is an overlap the static checker should have excluded. *)
let audit_touch ctx c ~write =
  let now = Clock.uid ctx.clk in
  if c.p_stamp <> now then begin
    c.p_stamp <- now;
    c.p_rmask <- 0;
    c.p_wmask <- 0
  end;
  let bit = 1 lsl ctx.part in
  if write then c.p_wmask <- c.p_wmask lor bit else c.p_rmask <- c.p_rmask lor bit;
  let all = c.p_rmask lor c.p_wmask in
  if c.p_wmask <> 0 && all land (all - 1) <> 0 then overlap_fail ctx c all

let on_abort ctx f =
  let n = ctx.undo_len in
  if n = Array.length ctx.undo then begin
    let bigger = Array.make (2 * n) no_undo in
    Array.blit ctx.undo 0 bigger 0 n;
    ctx.undo <- bigger
  end;
  ctx.undo.(n) <- f;
  ctx.undo_len <- n + 1

let access_count ctx = ctx.accesses
let undo_depth ctx = ctx.undo_len

let reset_ctx ctx =
  (* Forget committed undos without running them; clear the slots so the
     arena does not pin dead closures (and their captured old values). *)
  for i = 0 to ctx.undo_len - 1 do
    ctx.undo.(i) <- no_undo
  done;
  ctx.undo_len <- 0;
  ctx.accesses <- 0

(* Stamps use [Clock.uid], not [Clock.now]: uid never goes backward across
   a snapshot restore, so a summary written by an earlier run of a reused
   machine can never masquerade as this cycle's. *)
let refresh ctx c =
  let now = Clock.uid ctx.clk in
  if c.stamp <> now then begin
    c.stamp <- now;
    c.max_r <- -1;
    c.max_w <- -1;
    c.w_mask <- 0
  end

let retry ctx c kind port =
  raise
    (Retry
       (Printf.sprintf "rule %s: %s port %d of %s inadmissible after this cycle's accesses (max_r=%d max_w=%d)"
          ctx.rule kind port c.cell_name c.max_r c.max_w))

let record_read ctx c port =
  refresh ctx c;
  if ctx.paudit then audit_touch ctx c ~write:false;
  (* read[port] may follow write[j] only when j < port *)
  if c.max_w >= port then retry ctx c "read" port;
  ctx.accesses <- ctx.accesses + 1;
  if port > c.max_r then begin
    let old = c.max_r in
    c.max_r <- port;
    on_abort ctx (fun () -> c.max_r <- old)
  end

let record_write ctx c port =
  refresh ctx c;
  if ctx.paudit then audit_touch ctx c ~write:true;
  (* write[port] may follow read[j] when j <= port, write[j] when j < port *)
  if c.max_r > port || c.max_w >= port || c.w_mask land (1 lsl port) <> 0 then
    retry ctx c "write" port;
  ctx.accesses <- ctx.accesses + 1;
  let old_w = c.max_w and old_mask = c.w_mask in
  on_abort ctx (fun () ->
      c.max_w <- old_w;
      c.w_mask <- old_mask);
  c.max_w <- port;
  c.w_mask <- c.w_mask lor (1 lsl port)

let guard ctx ok msg = if not ok then raise (Guard_fail (ctx.rule ^ ": " ^ msg))

let rollback_to ctx mark =
  (* Undo entries are newest-first from the top of the arena; applying them
     top-down restores each location through its successive old values. *)
  for i = ctx.undo_len - 1 downto mark do
    ctx.undo.(i) ();
    ctx.undo.(i) <- no_undo
  done;
  ctx.undo_len <- mark

let rollback ctx = rollback_to ctx 0

let attempt ctx f =
  let save = ctx.undo_len in
  match f ctx with
  | r -> Some r
  | exception (Guard_fail _ | Retry _) ->
    rollback_to ctx save;
    None
