type 'a t = 'a Ehr.t

let create ?name init = Ehr.create ?name init
let read ctx t = Ehr.read ctx t 0
let write ctx t v = Ehr.write ctx t 0 v
let modify ctx t f = write ctx t (f (read ctx t))
let peek = Ehr.peek
let poke = Ehr.poke
let fp_read t = Ehr.fp_read t 0
let fp_write t = Ehr.fp_write t 0
