(* Generation-counter wakeup signals.

   A signal is a monotonically increasing counter attached to a state
   element (EHR, FIFO, wire). Primitives [touch] their signal whenever
   their observable value changes. A parked rule remembers the *sum* of
   the generations of the signals it watches; because every counter only
   ever grows, the sum changes iff at least one watched signal was
   touched, so a single integer comparison per cycle suffices to decide
   whether the rule might have become fireable again.

   This deliberately avoids subscriber lists: rules park and unpark every
   cycle in the hot loop, and maintaining waiter sets would either leak
   stale subscriptions or cost an unsubscribe on every wake. Counters
   make spurious wakeups cheap (one predicate re-evaluation) and missed
   wakeups impossible as long as primitives touch on every value change. *)

type signal = { mutable gen : int; owner : int }

let make () = { gen = 0; owner = Partition.ambient () }
let touch s = s.gen <- s.gen + 1
let gen s = s.gen
let owner s = s.owner

let sum (a : signal array) =
  let acc = ref 0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc + (Array.unsafe_get a i).gen
  done;
  !acc
