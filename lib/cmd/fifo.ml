type 'a t = {
  nm : string;
  cap : int;
  sg : Wakeup.signal; (* touched whenever occupancy may have changed *)
  (* Partition-checker tokens. A ring FIFO is one primitive whose sides
     conflict (shared count cell), so both tokens alias one identity — it
     can never legally span two partitions. A conflict-free FIFO's sides
     touch disjoint cells, so each side is its own primitive identity and
     the two sides may live in different partitions (the whole point: cf
     queues are the only legal cross-partition boundary). *)
  tk_enq : Partition.token;
  tk_deq : Partition.token;
  (* Conflict-analysis identity plus per-method footprint atoms; variant
     specific (the port scheme differs), built by the constructor. *)
  prim : Conflict.prim;
  a_enq : Conflict.atom;
  a_deq : Conflict.atom;
  a_first : Conflict.atom;
  a_can_enq : Conflict.atom;
  a_can_deq : Conflict.atom;
  a_clear : Conflict.atom;
  enq_f : Kernel.ctx -> 'a -> unit;
  deq_f : Kernel.ctx -> 'a;
  first_f : Kernel.ctx -> 'a;
  can_enq_f : Kernel.ctx -> bool;
  can_deq_f : Kernel.ctx -> bool;
  clear_f : Kernel.ctx -> unit;
  size_f : unit -> int;
  list_f : unit -> 'a list;
}

let get_slot nm = function
  | Some v -> v
  | None -> invalid_arg (nm ^ ": empty slot read (internal invariant broken)")

let ring_list slots head count cap =
  List.init count (fun i -> get_slot "fifo" (Ehr.peek slots.((head + i) mod cap)))

(* Pipeline and bypass FIFOs share a ring-buffer skeleton; only the port
   assignment differs. [dp] is the port of the deq side, [ep] of the enq
   side: pipeline = (deq 0, enq 1), bypass = (enq 0, deq 1). Port 2 is
   reserved for [clear]. *)
let ring ~nm ~cap ~dp ~ep =
  let count = Ehr.create ~name:(nm ^ ".count") 0 in
  let head = Ehr.create ~name:(nm ^ ".head") 0 in
  let tail = Ehr.create ~name:(nm ^ ".tail") 0 in
  let slots = Array.init cap (fun i -> Ehr.create ~name:(Printf.sprintf "%s.slot%d" nm i) None) in
  let sg = Wakeup.make () in
  (* guard messages are built once: the concatenation was a per-call
     allocation on the hottest kernel operations *)
  let m_full = nm ^ " full" and m_empty = nm ^ " empty" in
  let enq_f ctx v =
    let c = Ehr.read ctx count ep in
    Kernel.guard ctx (c < cap) m_full;
    let t = Ehr.read ctx tail ep in
    Ehr.write ctx slots.(t) ep (Some v);
    Ehr.write ctx tail ep ((t + 1) mod cap);
    Ehr.write ctx count ep (c + 1);
    Wakeup.touch sg
  in
  let first_f ctx =
    let c = Ehr.read ctx count dp in
    Kernel.guard ctx (c > 0) m_empty;
    let h = Ehr.read ctx head dp in
    get_slot nm (Ehr.read ctx slots.(h) dp)
  in
  let deq_f ctx =
    let c = Ehr.read ctx count dp in
    Kernel.guard ctx (c > 0) m_empty;
    let h = Ehr.read ctx head dp in
    let v = get_slot nm (Ehr.read ctx slots.(h) dp) in
    Ehr.write ctx slots.(h) dp None;
    Ehr.write ctx head dp ((h + 1) mod cap);
    Ehr.write ctx count dp (c - 1);
    Wakeup.touch sg;
    v
  in
  let can_enq_f ctx = Ehr.read ctx count ep < cap in
  let can_deq_f ctx = Ehr.read ctx count dp > 0 in
  let clear_f ctx =
    Ehr.write ctx count 2 0;
    Ehr.write ctx head 2 0;
    Ehr.write ctx tail 2 0;
    Array.iter (fun s -> Ehr.write ctx s 2 None) slots;
    Wakeup.touch sg
  in
  let size_f () = Ehr.peek count in
  let list_f () = ring_list slots (Ehr.peek head) (Ehr.peek count) cap in
  let tk = Partition.mk_token nm in
  (* One conflict primitive for the whole ring; abstract cells 0=count,
     1=head, 2=tail, 3=slots (merged — distinct slot cells collapse to one,
     which is conservative). Atoms mirror the accesses of each method. *)
  let prim = Conflict.fresh_prim nm in
  Array.iter (fun s -> Ehr.adopt s prim) slots;
  Ehr.adopt count prim;
  Ehr.adopt head prim;
  Ehr.adopt tail prim;
  let atom = Conflict.atom ~prim in
  let a_enq =
    atom ~label:"enq" [ (false, 0, ep); (false, 2, ep); (true, 3, ep); (true, 2, ep); (true, 0, ep) ]
  in
  let a_first = atom ~label:"first" [ (false, 0, dp); (false, 1, dp); (false, 3, dp) ] in
  let a_deq =
    atom ~label:"deq"
      [ (false, 0, dp); (false, 1, dp); (false, 3, dp); (true, 3, dp); (true, 1, dp); (true, 0, dp) ]
  in
  let a_can_enq = atom ~label:"can_enq" [ (false, 0, ep) ] in
  let a_can_deq = atom ~label:"can_deq" [ (false, 0, dp) ] in
  let a_clear = atom ~label:"clear" [ (true, 0, 2); (true, 1, 2); (true, 2, 2); (true, 3, 2) ] in
  { nm; cap; sg; tk_enq = tk; tk_deq = tk; prim; a_enq; a_deq; a_first; a_can_enq; a_can_deq;
    a_clear; enq_f; deq_f; first_f; can_enq_f; can_deq_f; clear_f; size_f; list_f }

let pipeline ?name ~capacity () =
  let nm = match name with Some n -> n | None -> "pfifo" in
  ring ~nm ~cap:capacity ~dp:0 ~ep:1

let bypass ?name ~capacity () =
  let nm = match name with Some n -> n | None -> "bfifo" in
  ring ~nm ~cap:capacity ~dp:1 ~ep:0

(* Conflict-free FIFO: the enq side and the deq side touch disjoint cells;
   each side's guard compares its own (tracked) total against a cycle-start
   snapshot of the other side's, so guards are conservative by up to one
   cycle — exactly BSV's mkCFFifo. Each side is multi-ported: the k-th enq
   (or deq) of a cycle uses EHR port k, so any number of same-cycle enqs and
   deqs compose, within one rule or across rules (enq_k < enq_{k+1}).

   [?lookahead] declares the minimum number of cycles between an enq into
   this FIFO and the earliest architecturally possible *consequence* flowing
   back to the enqueuer through any path (e.g. an L2 input queue whose
   response pipeline is [latency] deep declares that latency). The epoch
   engine takes the minimum declared lookahead over all cross-partition
   boundaries as the safe free-run bound L; an undeclared boundary
   contributes the trivial bound of 1. The declaration is trusted — but
   checked: under epoch-mode [--partition-audit] the L2 verifies its
   configured latency still covers the value it declared. *)
let cf ?name ?lookahead clk ~capacity () =
  let nm = match name with Some n -> n | None -> "cffifo" in
  let cap = capacity in
  assert (cap <= 56);
  let clear_port = 60 in
  let enq_total = Ehr.create ~name:(nm ^ ".enqTotal") 0 in
  let deq_total = Ehr.create ~name:(nm ^ ".deqTotal") 0 in
  let slots = Array.init cap (fun i -> Ehr.create ~name:(Printf.sprintf "%s.slot%d" nm i) None) in
  let enq_snap = ref 0 (* enq_total at cycle start *)
  and deq_snap = ref 0 (* deq_total at cycle start *)
  and eport = ref 0
  and dport = ref 0 in
  let sg = Wakeup.make () in
  (* The guards compare against cycle-start snapshots, so a parked observer
     whose view depends on them must also be woken when the snapshots
     advance at the cycle boundary. *)
  let refresh_snaps () =
    let e = Ehr.peek enq_total and d = Ehr.peek deq_total in
    if e <> !enq_snap || d <> !deq_snap then Wakeup.touch sg;
    enq_snap := e;
    deq_snap := d;
    eport := 0;
    dport := 0
  in
  Clock.on_cycle_end clk refresh_snaps;
  (* The totals and slots are EHR-backed (registered there); the
     cycle-start snapshots are raw refs and need their own entry. The
     per-cycle port counters are 0 at every cycle boundary — where
     snapshots are taken — but ride along for completeness. *)
  State.field ~name:(nm ^ ".cf")
    (fun () -> (!enq_snap, !deq_snap, !eport, !dport))
    (fun (e, d, ep, dp) ->
      enq_snap := e;
      deq_snap := d;
      eport := ep;
      dport := dp);
  let bump ctx r =
    let old = !r in
    if Kernel.logging ctx then Kernel.on_abort ctx (fun () -> r := old)
    else Kernel.note_elided ctx;
    r := old + 1;
    old
  in
  let m_full = nm ^ " full" and m_empty = nm ^ " empty" in
  let enq_f ctx v =
    let t = Ehr.read ctx enq_total !eport in
    Kernel.guard ctx (t - !deq_snap < cap) m_full;
    let p = bump ctx eport in
    Ehr.write ctx slots.(t mod cap) p (Some v);
    Ehr.write ctx enq_total p (t + 1);
    Wakeup.touch sg
  in
  let first_f ctx =
    let h = Ehr.read ctx deq_total !dport in
    Kernel.guard ctx (h < !enq_snap) m_empty;
    get_slot nm (Ehr.read ctx slots.(h mod cap) !dport)
  in
  let deq_f ctx =
    let h = Ehr.read ctx deq_total !dport in
    Kernel.guard ctx (h < !enq_snap) m_empty;
    let p = bump ctx dport in
    let v = get_slot nm (Ehr.read ctx slots.(h mod cap) p) in
    Ehr.write ctx slots.(h mod cap) p None;
    Ehr.write ctx deq_total p (h + 1);
    Wakeup.touch sg;
    v
  in
  let can_enq_f ctx = Ehr.read ctx enq_total !eport - !deq_snap < cap in
  let can_deq_f ctx = Ehr.read ctx deq_total !dport < !enq_snap in
  let clear_f ctx =
    Ehr.write ctx enq_total clear_port 0;
    Ehr.write ctx deq_total clear_port 0;
    Array.iter (fun s -> Ehr.write ctx s clear_port None) slots;
    (* the snapshots must not keep stale occupancy across the flush cycle *)
    Kernel.on_abort ctx
      (let oe = !enq_snap and od = !deq_snap in
       fun () ->
         enq_snap := oe;
         deq_snap := od);
    enq_snap := 0;
    deq_snap := 0;
    Wakeup.touch sg
  in
  let size_f () = Ehr.peek enq_total - Ehr.peek deq_total in
  let list_f () =
    let h = Ehr.peek deq_total and n = Ehr.peek enq_total - Ehr.peek deq_total in
    List.init n (fun i -> get_slot nm (Ehr.peek slots.((h + i) mod cap)))
  in
  let tk_enq = Partition.mk_token (nm ^ ".enq") in
  let tk_deq = Partition.mk_token (nm ^ ".deq") in
  (* Abstract cells 0=enqTotal, 1=deqTotal, 2=slots. Same-side and
     cross-side accesses use the dynamic ascending ports ([Conflict.dyn]):
     any two compose in either order — the conflict-free design point —
     while the static clear port sits above all of them, so everything is
     admissible strictly before [clear] and nothing after it. Cross-side
     slot accesses can only collide when a side's guard has already failed,
     so the merged slot cell keeps the [dyn] composition sound. *)
  let prim = Conflict.fresh_prim nm in
  Array.iter (fun s -> Ehr.adopt s prim) slots;
  Ehr.adopt enq_total prim;
  Ehr.adopt deq_total prim;
  let atom = Conflict.atom ~prim in
  let dyn = Conflict.dyn in
  let a_enq = atom ~label:"enq" [ (false, 0, dyn); (true, 2, dyn); (true, 0, dyn) ] in
  let a_first = atom ~label:"first" [ (false, 1, dyn); (false, 2, dyn) ] in
  let a_deq = atom ~label:"deq" [ (false, 1, dyn); (false, 2, dyn); (true, 2, dyn); (true, 1, dyn) ] in
  let a_can_enq = atom ~label:"can_enq" [ (false, 0, dyn) ] in
  let a_can_deq = atom ~label:"can_deq" [ (false, 1, dyn) ] in
  let a_clear =
    atom ~label:"clear" [ (true, 0, clear_port); (true, 1, clear_port); (true, 2, clear_port) ]
  in
  (* Register with the ambient boundary collector (a no-op outside machine
     construction): if the two sides end up claimed by different
     partitions, the epoch engine drives these closures to replay the
     boundary's cycle-by-cycle visibility during window synchronization. *)
  Boundary.note
    {
      Boundary.bo_name = nm;
      bo_enq_tk = Partition.prim tk_enq;
      bo_deq_tk = Partition.prim tk_deq;
      bo_ctor_part = Partition.ambient ();
      bo_prim = prim.Conflict.pid;
      bo_lookahead = lookahead;
      bo_enq_total = (fun () -> Ehr.peek enq_total);
      bo_deq_total = (fun () -> Ehr.peek deq_total);
      bo_set_enq_snap = (fun v -> enq_snap := v);
      bo_set_deq_snap = (fun v -> deq_snap := v);
      bo_reset_eport = (fun () -> eport := 0);
      bo_reset_dport = (fun () -> dport := 0);
      bo_touch = (fun () -> Wakeup.touch sg);
      bo_refresh = refresh_snaps;
    };
  { nm; cap; sg; tk_enq; tk_deq; prim; a_enq; a_deq; a_first; a_can_enq; a_can_deq; a_clear;
    enq_f; deq_f; first_f; can_enq_f; can_deq_f; clear_f; size_f; list_f }

let enq ctx t v = t.enq_f ctx v
let deq ctx t = t.deq_f ctx
let first ctx t = t.first_f ctx
let can_enq ctx t = t.can_enq_f ctx
let can_deq ctx t = t.can_deq_f ctx
let clear ctx t = t.clear_f ctx
let capacity t = t.cap
let name t = t.nm
let signal t = t.sg
let enq_token t = t.tk_enq
let deq_token t = t.tk_deq
let prim t = t.prim
let fp_enq t = t.a_enq
let fp_deq t = t.a_deq
let fp_first t = t.a_first
let fp_can_enq t = t.a_can_enq
let fp_can_deq t = t.a_can_deq
let fp_clear t = t.a_clear
let peek_size t = t.size_f ()
let peek_list t = t.list_f ()
