(** Named performance counters.

    Counters live outside the rule-visible state: incrementing one is not an
    architectural effect, so increments from aborted rules must be rolled
    back explicitly with [incr ~ctx] (the common case) or left untracked for
    harness-level bookkeeping. *)

type t

(** A counter group, e.g. one per core. [prefix] prefixes every counter name
    in reports. *)
val create : ?prefix:string -> unit -> t

type counter

(** [counter t name] returns the (memoized) counter called [name]. *)
val counter : t -> string -> counter

(** [incr ?ctx ?by t c] adds [by] (default 1). With [~ctx], the increment is
    undone if the enclosing rule aborts. When the ctx carries a non-negative
    [Kernel.stats_slot] (parallel execution), the increment lands in a
    per-partition shard instead of the shared total, so concurrent rule
    bodies never race; {!merge} folds the shards back at the cycle
    barrier. *)
val incr : ?ctx:Kernel.ctx -> ?by:int -> counter -> unit

(** Current value including any unmerged shards. *)
val get : counter -> int

val set : counter -> int -> unit

(** [prepare t ~slots] pre-sizes every counter's shard array for [slots]
    partitions so no allocation happens inside parallel rule bodies. *)
val prepare : t -> slots:int -> unit

(** Fold all shard accumulators into the shared totals. The scheduler calls
    this at every cycle barrier, before post-cycle hooks run, so invariant
    checks and watchdog monitors observe merged values. *)
val merge : t -> unit

(** [find t name] is the current value of [name], 0 if never touched. *)
val find : t -> string -> int

(** All counters, sorted by name. *)
val to_list : t -> (string * int) list

val reset : t -> unit
val pp : Format.formatter -> t -> unit
