(** Registry of cross-partition boundary FIFOs.

    Conflict-free FIFOs ({!Fifo.cf}) are the only legal cross-partition
    channel. When one is built inside a {!collecting} scope it registers an
    {!ops} record; the epoch engine ([Sim.create ~epoch]) reads the registry
    to derive the safe lookahead bound L (the minimum declared response
    latency over all cross-partition boundaries) and to drive each
    boundary's visibility snapshots cycle-by-cycle during window replay. *)

type ops = {
  bo_name : string;
  bo_enq_tk : int;
      (** {!Partition} token prim id of the enqueuing side; the scheduler
          resolves it to a partition via its rule-ownership table *)
  bo_deq_tk : int;  (** token prim id of the dequeuing side *)
  bo_ctor_part : int;
      (** ambient partition at construction, which owns the FIFO's
          cycle-end hook; the epoch engine requires it to equal the
          non-uncore side's partition *)
  bo_prim : int;      (** [Conflict.prim] pid, for partition-audit exemption *)
  bo_lookahead : int option;
      (** declared minimum response latency in cycles; [None] = undeclared
          (contributes the trivial bound of 1 to the epoch length) *)
  bo_enq_total : unit -> int;
  bo_deq_total : unit -> int;
  bo_set_enq_snap : int -> unit;
  bo_set_deq_snap : int -> unit;
  bo_reset_eport : unit -> unit;
  bo_reset_dport : unit -> unit;
  bo_touch : unit -> unit;  (** wake rules parked on the FIFO's signal *)
  bo_refresh : unit -> unit;  (** the FIFO's own end-of-cycle snapshot hook *)
}

(** Called by {!Fifo.cf} at construction; a no-op outside {!collecting}. *)
val note : ops -> unit

(** [collecting f] arms the calling domain's collector, runs [f], and
    returns its result with every boundary registered during the run
    (registration order). Nested scopes shadow the outer one. *)
val collecting : (unit -> 'a) -> 'a * ops list

(** The boundaries registered so far in the current {!collecting} scope
    (registration order); empty when none is armed. [Sim.create], which
    runs inside machine construction, uses this to see the FIFOs built
    before it. *)
val ambient : unit -> ops list
