(** Per-machine snapshot state registry.

    Primitives register a (save, load) pair at create time against the
    ambient (domain-local) collector; [collecting] scopes a machine build
    and returns the resulting registry. [save]/[load] serialize the whole
    registry as one checksummed image — see [Machine.snapshot]. *)

type registry

(** Raised by [load] on any malformed, corrupted or mismatched image. *)
exception Error of string

(** [register ~name ~save ~load] adds an entry to the ambient registry (a
    no-op when no [collecting] scope is active). [name] must be
    build-deterministic — it participates in the config digest — so
    auto-numbered primitives should register a stable stem, not their
    counter-suffixed debug name. *)
val register : name:string -> save:(unit -> Obj.t) -> load:(Obj.t -> unit) -> unit

(** Typed wrapper over [register]: [get] returns the live value (marshaled
    immediately — no copy needed), [set] must write the unmarshaled value
    back in place (rules capture the live containers). *)
val field : name:string -> (unit -> 'a) -> ('a -> unit) -> unit

(** [collecting f] runs a machine build with a fresh ambient registry and
    returns [f]'s result together with the registry, in registration
    order. Nests; the previous collector is restored on exit. *)
val collecting : (unit -> 'a) -> 'a * registry

val names : registry -> string list
val size : registry -> int

(** [save t ~config] marshals every entry's value as one blob (preserving
    heap sharing between containers) and frames it with magic, an
    executable digest, a config digest (entry names + [config]) and a
    payload checksum. *)
val save : registry -> config:string -> string

(** [load t ~config img] verifies the frame and writes every entry back in
    place. Raises [Error] (never crashes) on truncated, corrupted,
    wrong-binary or wrong-config images. *)
val load : registry -> config:string -> string -> unit
