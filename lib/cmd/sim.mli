(** The rule scheduler and clock loop.

    Each cycle, rules are attempted in a fixed order (the static schedule).
    A rule fires when its guards hold and all its state accesses are
    admissible after what already fired this cycle; otherwise it is rolled
    back and retried next cycle. The net effect of a cycle is therefore
    always equal to executing its fired rules serially in schedule order —
    the paper's atomicity guarantee, enforced dynamically.

    The list order doubles as the intra-cycle logical order, so the
    microarchitectural orderings of Section IV-D ("doRegWrite < doIssue <
    doRename saves a cycle") are expressed by reordering the list. *)

type mode =
  | Multi  (** fire every admissible rule each cycle (the CMD hardware model) *)
  | One_per_cycle  (** reference executor: at most one rule per cycle *)
  | Shuffle of int  (** Multi, but attempt order is reshuffled each cycle
                        from the given seed — for schedule-robustness tests *)

(** Raised in audit mode when a rule's [can_fire] returned [false] but its
    body nevertheless fired (committed effects): the predicate lies, and the
    fast path would silently starve the rule. *)
exception Audit_fail of string

type t

(** [create ?mode ?fastpath ?audit clk rules] builds a scheduler.

    With [fastpath] (the default), a rule carrying a [can_fire] predicate is
    skipped — no transaction, no exception, no rollback — in cycles where
    the predicate returns [false], and parked on its watch set until a
    watched primitive is touched. Skips are accounted exactly as the seed
    scheduler would have accounted the doomed attempt, so cycle counts, fire
    counts, rule-firing history and all architectural state are bit-identical
    with [fastpath] on or off, in every mode. [~fastpath:false] strips the
    predicates (every rule is attempted, as before this optimization).

    [~audit:true] disables skipping but evaluates every [can_fire] and raises
    {!Audit_fail} if a rule fires in a cycle its predicate vetoed — the
    debug oracle for predicate truthfulness ([--scheduler-audit] in the
    driver). *)
val create : ?mode:mode -> ?fastpath:bool -> ?audit:bool -> Clock.t -> Rule.t list -> t

val clock : t -> Clock.t

(** Run one clock cycle; returns the number of rules that fired. *)
val cycle : t -> int

(** [run t n] runs [n] cycles. *)
val run : t -> int -> unit

(** [run_until t ~max_cycles pred] runs until [pred ()] holds at a cycle
    boundary, returning [`Done cycles] or [`Timeout cycles] (how far the run
    got before the budget ran out). [on_cycle] is called with the loop's
    cycle index before each cycle — the fault-injection hook. *)
val run_until :
  ?on_cycle:(int -> unit) ->
  t ->
  max_cycles:int ->
  (unit -> bool) ->
  [ `Done of int | `Timeout of int ]

val cycles : t -> int
val total_fires : t -> int
val rules : t -> Rule.t list

(** {2 Observability (verification layer)} *)

(** Keep a ring buffer of the last [depth] cycles' fired-rule names; the
    watchdog dumps it when it trips. *)
val enable_history : t -> depth:int -> unit

(** Recorded (cycle, fired rule names) pairs, oldest first. Empty unless
    {!enable_history} was called. *)
val history : t -> (int * string list) list

(** [add_monitor t f] — [f t fired] runs after every cycle with the number
    of rules that fired that cycle. Monitors may raise (e.g. a watchdog
    trip); the exception propagates out of {!cycle}. *)
val add_monitor : t -> (t -> int -> unit) -> unit

(** [on_post_cycle t f] — [f cycle] runs after every cycle, before the
    monitors: the invariant-checking hook. *)
val on_post_cycle : t -> (int -> unit) -> unit

(** Per-rule firing report, for debugging schedules. *)
val pp_stats : Format.formatter -> t -> unit
