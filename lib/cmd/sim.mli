(** The rule scheduler and clock loop.

    Each cycle, rules are attempted in a fixed order (the static schedule).
    A rule fires when its guards hold and all its state accesses are
    admissible after what already fired this cycle; otherwise it is rolled
    back and retried next cycle. The net effect of a cycle is therefore
    always equal to executing its fired rules serially in schedule order —
    the paper's atomicity guarantee, enforced dynamically.

    The list order doubles as the intra-cycle logical order, so the
    microarchitectural orderings of Section IV-D ("doRegWrite < doIssue <
    doRename saves a cycle") are expressed by reordering the list. *)

type mode =
  | Multi  (** fire every admissible rule each cycle (the CMD hardware model) *)
  | One_per_cycle  (** reference executor: at most one rule per cycle *)
  | Shuffle of int  (** Multi, but attempt order is reshuffled each cycle
                        from the given seed — for schedule-robustness tests *)

(** Raised in audit mode when a rule's [can_fire] returned [false] but its
    body nevertheless fired (committed effects): the predicate lies, and the
    fast path would silently starve the rule. *)
exception Audit_fail of string

(** Raised by {!create} when the static partition checker finds a primitive
    declared (via [Rule.make ~touches]) by rules in two different
    partitions, or a parallel rule watching a signal it does not own. *)
exception Partition_error of string

type t

(** [create ?mode ?fastpath ?audit ?jobs ?partition_audit ?stats clk rules]
    builds a scheduler.

    With [fastpath] (the default), a rule carrying a [can_fire] predicate is
    skipped — no transaction, no exception, no rollback — in cycles where
    the predicate returns [false], and parked on its watch set until a
    watched primitive is touched. Skips are accounted exactly as the seed
    scheduler would have accounted the doomed attempt, so cycle counts, fire
    counts, rule-firing history and all architectural state are bit-identical
    with [fastpath] on or off, in every mode. [~fastpath:false] strips the
    predicates (every rule is attempted, as before this optimization).

    [~audit:true] disables skipping but evaluates every [can_fire] and raises
    {!Audit_fail} if a rule fires in a cycle its predicate vetoed — the
    debug oracle for predicate truthfulness ([--scheduler-audit] in the
    driver).

    {2 Partitioned parallel execution}

    With [jobs > 1], rules tagged with a non-zero partition (captured from
    [Partition.ambient] at construction — one partition per core cluster)
    are fired concurrently, one OCaml domain per partition, using at most
    [jobs] domains; rules in partition 0 (the {e uncore}) then run serially
    on the main domain. The static checker proves from the declared
    [~touches] tokens and watch sets that no primitive is reachable from
    two partitions (raising {!Partition_error} otherwise), so every
    interleaving of the parallel phase commutes — the paper's conflict-free
    rules — and results are bit-identical to [jobs = 1] in every mode:
    cycle counts, per-rule fire counts, firing history, architectural
    state.

    Parallel execution is inherently about firing {e many} rules per cycle,
    so [One_per_cycle] and the two audit modes execute serially regardless
    of [jobs] (with identical results, as always).

    [~partition_audit:true] executes serially while recording, per cell per
    cycle, which partitions touched it; any cross-partition overlap
    involving a write raises [Kernel.Partition_overlap]. This is the
    dynamic backstop for the static checker's private-state assumption
    ([--partition-audit] in the driver). Overlap detection within a cycle
    is order-independent, so the serial audit certifies the parallel
    schedule.

    [~stats] hands the machine's counter groups to the barrier: their
    per-partition shard accumulators (see [Stats.incr]) are merged at the
    end of every parallel cycle, before post-cycle hooks run.

    {2 Cycle structure and hook ordering}

    Each cycle proceeds: (1) parallel phase — every non-zero partition's
    rules, concurrently; (2) barrier — all partition effects become visible
    to the main domain; (3) uncore phase — partition-0 rules, serially; (4)
    [Clock.tick] — wire resets, conflict-free FIFO snapshot advance; (5)
    stats shard merge; (6) {!on_post_cycle} hooks (invariant checks); (7)
    {!add_monitor} monitors (watchdog). Steps 5–7 run on the main domain
    after the barrier, so invariant checks, watchdog monitors and anything
    else observing the machine between cycles always sees the merged,
    quiescent state — [--watchdog]/[--check-invariants] campaigns behave
    identically at any [jobs]. [run_until]'s [on_cycle] (the fault-injection
    hook) runs on the main domain {e before} the cycle's parallel phase is
    dispatched, so injected flips are ordinary pre-cycle state changes and
    campaigns stay deterministic under [jobs > 1].

    {2 Schedule compilation}

    With [compile] (the default), elaboration derives the pairwise conflict
    matrix from the rules' declared footprints ([Rule.make ~fp]) plus the
    EHR/FIFO port orderings, and specializes a per-rule step closure for
    every rule of a serial fast-path schedule:

    - {e tier A} — every conflict pair the rule forms is statically
      admissible in the schedule order {e and} the rule is declared
      [~total]: runs with neither port-admissibility bookkeeping nor undo
      logging (a wrong totality claim raises [Kernel.Conflict_error] the
      moment it would matter, instead of silently diverging);
    - {e tier B} — statically admissible: bookkeeping off, undo log kept
      (guard aborts still roll back);
    - {e interpreted} — everything else runs fully checked, inside the same
      compiled loop.

    A single rule without a footprint keeps the whole design interpreted
    (an opaque body may touch anything). Compilation never changes results:
    fire counts, history, traces and architectural state are bit-identical
    with [compile] on or off. It applies only to serial ([jobs = 1] or no
    partitions) fast-path runs in [Multi]/[Shuffle] modes; under [Shuffle]
    a pair must be conflict-free both ways to count as admissible.

    [~compile_audit:true] runs interpreted but dynamically discharges the
    compiler's proof obligations: every tracked access must fall on a
    declared (primitive, direction); a [Retry] in a rule classified
    admissible, or an abort that rolls back tracked writes in a rule
    claiming [~total], raises [Kernel.Compile_audit_fail]
    ([--compile-audit] in the driver).

    {2 Epoch execution (lookahead windows)}

    [~epoch] batches partition synchronization: instead of a barrier per
    cycle, each non-zero partition free-runs [E] consecutive cycles between
    barriers, and the uncore then replays the window cycle-by-cycle with
    every cross-partition boundary FIFO's enqueue trajectory installed at
    exactly the cycle it happened (see {!Boundary}). Responses flowing back
    from the uncore become visible at window boundaries, a quantization of
    at most [E - 1] cycles — safe because [E] is capped by the minimum
    [~lookahead] declared on the boundary FIFOs ({!Fifo.cf}), i.e. the
    response latency the design already guarantees. [~epoch:1] (default)
    disables windowing; [~epoch:0] means "auto": use the full derived
    bound; any other value is clamped to the bound. For a {e given} epoch
    length, results are bit-identical at any [jobs], in [Multi] and
    [Shuffle] modes — enforced by [~partition_audit], which in epoch mode
    keys its overlap detection per window. Epoch mode implies interpreted
    execution and is ignored under [One_per_cycle], the audit modes, or
    when no boundary FIFO was registered. *)
val create :
  ?mode:mode ->
  ?fastpath:bool ->
  ?audit:bool ->
  ?jobs:int ->
  ?partition_audit:bool ->
  ?compile:bool ->
  ?compile_audit:bool ->
  ?epoch:int ->
  ?stats:Stats.t ->
  Clock.t ->
  Rule.t list ->
  t

val clock : t -> Clock.t

(** The [jobs] the scheduler was created with. *)
val jobs : t -> int

(** Whether partitioned parallel execution is actually active (i.e.
    [jobs > 1], at least one non-zero partition, and a mode that is not
    inherently serial). *)
val parallel : t -> bool

(** The effective epoch window length [E] (1 = per-cycle synchronization,
    i.e. epoch mode off). May be smaller than the requested [~epoch]: it is
    clamped to the minimum declared boundary lookahead (and to 62, the
    per-window history bitmask width). *)
val epoch_length : t -> int

(** Join the process-global worker-domain pool. Parallel simulations share
    one lazily-spawned pool that persists between runs; on OCaml 5 even
    idle domains tax every minor collection, so call this before timing
    serial code after a parallel run. The pool respawns transparently on
    the next parallel cycle. Also registered via [at_exit].

    Idempotent and reentrancy-safe: a second call — including one from a
    signal handler interrupting the first — returns immediately. Signal
    handlers should nevertheless prefer setting a flag and letting the
    main loop shut down (see [riscyoo farm]): a handler firing mid-cycle
    would block here until the in-flight cycle's tasks drain. *)
val shutdown_pool : unit -> unit

(** [pool_run ~helpers tasks] runs a batch of independent tasks on the same
    shared worker-domain pool the partitioned simulator uses: the calling
    domain participates, at most [helpers] pool workers steal tasks, and
    the call returns when every task has completed. Tasks must trap their
    own exceptions (an escaping one is silently dropped by the barrier).
    This is the simulation farm's job executor — a farm task typically
    builds and runs a whole [jobs:1] machine, which is safe because the
    snapshot/injection/invariant registries are all domain-local. *)
val pool_run : helpers:int -> (unit -> unit) array -> unit

(** [reseed t seed] re-keys a [Shuffle] schedule: attempt order back to
    the canonical rule order, fresh RNG from [seed] — exactly a cold
    [Shuffle seed] build's starting schedule state. Restoring a cycle-0
    snapshot then reseeding is schedule-identical to a cold build with
    that seed (the farm's warm-fork path). No-op in other modes. *)
val reseed : t -> int -> unit

(** Run one clock cycle; returns the number of rules that fired. In epoch
    mode one call advances a whole window of {!epoch_length} cycles and
    returns the window's total fires. *)
val cycle : t -> int

(** [run t n] runs at least [n] cycles (rounded up to a whole number of
    windows in epoch mode). *)
val run : t -> int -> unit

(** [run_until t ~max_cycles pred] runs until [pred ()] holds at a cycle
    boundary, returning [`Done cycles] or [`Timeout cycles] (how far the run
    got before the budget ran out). Counts are simulated cycles, not
    iterations, so they stay comparable across epoch lengths; in epoch mode
    [pred] is sampled at window boundaries. [on_cycle] is called with the
    loop's cycle index before each cycle (each window in epoch mode) — the
    fault-injection hook. *)
val run_until :
  ?on_cycle:(int -> unit) ->
  t ->
  max_cycles:int ->
  (unit -> bool) ->
  [ `Done of int | `Timeout of int ]

val cycles : t -> int
val total_fires : t -> int
val rules : t -> Rule.t list

(** {2 Schedule-compilation introspection} *)

(** Whether this scheduler runs the compiled per-rule step closures. *)
val compiled : t -> bool

(** One-line outcome of the compilation phase: what was compiled, or why
    the schedule stays interpreted. *)
val compile_status : t -> string

(** Tier table plus the full pairwise conflict-matrix dump (empty when no
    analysis ran — e.g. [~compile:false] with no audit). The driver prints
    this under [--compile-audit]; CI archives it when bit-identity fails. *)
val compile_report : t -> string

(** [(tier_a, tier_b, interpreted)] rule counts from the analysis;
    [(0, 0, 0)] when no analysis ran. *)
val compile_stats : t -> int * int * int

(** {2 Observability (verification layer)} *)

(** Keep a ring buffer of the last [depth] cycles' fired-rule names; the
    watchdog dumps it when it trips. *)
val enable_history : t -> depth:int -> unit

(** Recorded (cycle, fired rule names) pairs, oldest first. Empty unless
    {!enable_history} was called. *)
val history : t -> (int * string list) list

(** [add_monitor t f] — [f t fired] runs after every cycle with the number
    of rules that fired that cycle. Monitors may raise (e.g. a watchdog
    trip); the exception propagates out of {!cycle}. *)
val add_monitor : t -> (t -> int -> unit) -> unit

(** [on_post_cycle t f] — [f cycle] runs after every cycle, before the
    monitors: the invariant-checking hook. *)
val on_post_cycle : t -> (int -> unit) -> unit

(** [set_rule_trace t f] — [f rule cycle] runs once per rule fire (including
    vacuous fires accounted for skipped rules, so the trace matches
    [Rule.fired] exactly, fast path on or off). The callback runs on
    whichever domain fired the rule: under [jobs > 1] it must confine its
    writes to per-partition state indexed by [rule.part] (see [Obs] in
    lib/obs). The disabled cost at every fire site is a single flat-[bool]
    load and branch. *)
val set_rule_trace : t -> (Rule.t -> int -> unit) -> unit

(** Detach the rule-trace sink; fire sites go back to the bare branch. *)
val clear_rule_trace : t -> unit

(** Per-rule firing report, for debugging schedules. *)
val pp_stats : Format.formatter -> t -> unit
