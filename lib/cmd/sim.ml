type mode = Multi | One_per_cycle | Shuffle of int

type t = {
  clk : Clock.t;
  rule_list : Rule.t list;
  order : Rule.t array; (* attempt order; permuted in Shuffle mode *)
  mode : mode;
  rng : Random.State.t option;
  mutable n_cycles : int;
  mutable fires : int;
  mutable rr : int; (* rotating start offset for One_per_cycle fairness *)
  (* observability (verification layer): a ring buffer of which rules fired
     each cycle, monitors that watch liveness, and post-cycle checks *)
  mutable history : (int * string list) array; (* (cycle, fired rule names) *)
  mutable history_depth : int;
  mutable monitors : (t -> int -> unit) list; (* called with this cycle's fire count *)
  mutable post_cycle : (int -> unit) list; (* called with the finished cycle's index *)
}

let create ?(mode = Multi) clk rules =
  let rng = match mode with Shuffle seed -> Some (Random.State.make [| seed |]) | Multi | One_per_cycle -> None in
  {
    clk;
    rule_list = rules;
    order = Array.of_list rules;
    mode;
    rng;
    n_cycles = 0;
    fires = 0;
    rr = 0;
    history = [||];
    history_depth = 0;
    monitors = [];
    post_cycle = [];
  }

let clock t = t.clk
let cycles t = t.n_cycles
let total_fires t = t.fires
let rules t = t.rule_list

let enable_history t ~depth =
  t.history_depth <- depth;
  t.history <- Array.make (max 1 depth) (-1, [])

let history t =
  if t.history_depth = 0 then []
  else
    List.filter
      (fun (c, _) -> c >= 0)
      (List.init t.history_depth (fun i ->
           t.history.((t.n_cycles + i) mod t.history_depth)))

let add_monitor t f = t.monitors <- t.monitors @ [ f ]
let on_post_cycle t f = t.post_cycle <- t.post_cycle @ [ f ]

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let cycle t =
  (match t.rng with Some rng -> shuffle rng t.order | None -> ());
  let fired = ref 0 in
  let fired_names = ref [] in
  let n = Array.length t.order in
  let stop = ref false in
  let base = if t.mode = One_per_cycle then t.rr else 0 in
  let i = ref 0 in
  while not !stop && !i < n do
    let r = t.order.((base + !i) mod n) in
    incr i;
    let ctx = Kernel.make_ctx t.clk in
    Kernel.set_rule_name ctx r.Rule.name;
    (match r.Rule.body ctx with
    | () ->
      r.Rule.fired <- r.Rule.fired + 1;
      incr fired;
      if t.history_depth > 0 then fired_names := r.Rule.name :: !fired_names;
      if t.mode = One_per_cycle then stop := true
    | exception Kernel.Guard_fail _ ->
      Kernel.rollback ctx;
      r.Rule.guard_failed <- r.Rule.guard_failed + 1
    | exception Kernel.Retry msg ->
      Kernel.rollback ctx;
      (* If nothing fired yet this cycle, the conflict is within the rule
         itself: no schedule can ever admit it. Fail loudly, like the BSV
         compiler rejecting an ill-formed rule. *)
      if !fired = 0 then raise (Kernel.Conflict_error msg);
      r.Rule.conflicted <- r.Rule.conflicted + 1)
  done;
  if t.mode = One_per_cycle && n > 0 then t.rr <- (t.rr + 1) mod n;
  if t.history_depth > 0 then
    t.history.(t.n_cycles mod t.history_depth) <- (t.n_cycles, List.rev !fired_names);
  Clock.tick t.clk;
  let this_cycle = t.n_cycles in
  t.n_cycles <- t.n_cycles + 1;
  t.fires <- t.fires + !fired;
  List.iter (fun f -> f this_cycle) t.post_cycle;
  List.iter (fun f -> f t !fired) t.monitors;
  !fired

let run t n =
  for _ = 1 to n do
    ignore (cycle t)
  done

let run_until ?on_cycle t ~max_cycles pred =
  let rec go n =
    if pred () then `Done n
    else if n >= max_cycles then `Timeout n
    else begin
      (match on_cycle with Some f -> f n | None -> ());
      ignore (cycle t);
      go (n + 1)
    end
  in
  go 0

let pp_stats fmt t =
  Format.fprintf fmt "@[<v>cycles=%d fires=%d (%.2f rules/cycle)@," t.n_cycles t.fires
    (if t.n_cycles = 0 then 0.0 else float_of_int t.fires /. float_of_int t.n_cycles);
  List.iter
    (fun (r : Rule.t) ->
      Format.fprintf fmt "  %-28s fired=%-9d guard_failed=%-9d conflicted=%d@," r.name r.fired
        r.guard_failed r.conflicted)
    t.rule_list;
  Format.fprintf fmt "@]"
