type mode = Multi | One_per_cycle | Shuffle of int

exception Audit_fail of string
exception Partition_error of string

(* ---------------------------------------------------------------------- *)
(* Domain pool                                                            *)
(*                                                                        *)
(* One process-global pool, grown lazily and shared by every Sim so that  *)
(* repeated Machine builds (tests, fault campaigns) do not spawn domains  *)
(* per machine. Workers block on a condition variable between cycles: on  *)
(* few-core hosts a spinning barrier would fight the partitions for the   *)
(* CPU, and a blocked worker costs nothing. The mutex acquire/release     *)
(* around every task grab and completion also provides the happens-before *)
(* edges that make each partition's writes visible to the main domain at  *)
(* the barrier (and the main domain's inter-cycle writes visible to the   *)
(* partitions at dispatch).                                               *)
(* ---------------------------------------------------------------------- *)

module Pool = struct
  type t = {
    m : Mutex.t;
    work_cv : Condition.t;
    done_cv : Condition.t;
    mutable tasks : (unit -> unit) array;
    mutable next : int; (* index of the next unclaimed task *)
    mutable remaining : int; (* tasks not yet completed *)
    mutable max_helpers : int; (* workers allowed to participate this run *)
    mutable shutdown : bool;
    mutable nworkers : int;
    mutable domains : unit Domain.t list;
  }

  let p =
    {
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      tasks = [||];
      next = 0;
      remaining = 0;
      max_helpers = 0;
      shutdown = false;
      nworkers = 0;
      domains = [];
    }

  let finish_task () =
    Mutex.lock p.m;
    p.remaining <- p.remaining - 1;
    if p.remaining = 0 then Condition.signal p.done_cv;
    Mutex.unlock p.m

  (* Tasks trap their own exceptions (see [run_part]); the catch-all here
     only guards against a raising task deadlocking the barrier. The array
     is re-read and bounds-checked because [shutdown] may clear it between
     a worker claiming an index and executing it. *)
  let exec i =
    let ts = p.tasks in
    if i < Array.length ts then try ts.(i) () with _ -> ()

  let rec worker id =
    Mutex.lock p.m;
    while
      (not p.shutdown)
      && (id >= p.max_helpers || p.next >= Array.length p.tasks)
    do
      Condition.wait p.work_cv p.m
    done;
    if p.shutdown then Mutex.unlock p.m
    else begin
      let i = p.next in
      p.next <- i + 1;
      Mutex.unlock p.m;
      exec i;
      finish_task ();
      worker id
    end

  let shutdown_registered = ref false

  (* Idempotent and reentrancy-safe: the CAS makes a second call — from a
     signal handler interrupting the first, from [at_exit] racing an
     explicit call, or from plain double-shutdown — return immediately
     instead of double-joining the domains or deadlocking on [p.m].
     Signal handlers should still prefer setting a flag and letting the
     main loop call this (see [riscyoo farm]): a handler that interrupts
     the pool mid-cycle would block in [Domain.join] until the cycle's
     tasks drain. *)
  let in_shutdown = Atomic.make false

  let shutdown () =
    if Atomic.compare_and_set in_shutdown false true then
      Fun.protect
        ~finally:(fun () -> Atomic.set in_shutdown false)
        (fun () ->
          Mutex.lock p.m;
          p.shutdown <- true;
          (* Drop any queued work with the workers. A shutdown taken between
             runs is the common case and the queue is already empty; but a
             shutdown that interrupts a run (signal handlers) used to leave
             [tasks]/[next]/[remaining] populated, and the first worker of
             the NEXT generation would claim and execute a stale task — a
             cached per-cycle step closure of a machine that may since have
             been mutated or discarded. Clearing the queue here makes a
             restarted pool start from a blank slate; [max_helpers] is
             zeroed so freshly spawned workers stay parked until a run
             hands them work. *)
          p.tasks <- [||];
          p.next <- 0;
          p.remaining <- 0;
          p.max_helpers <- 0;
          Condition.broadcast p.work_cv;
          Mutex.unlock p.m;
          List.iter Domain.join p.domains;
          p.domains <- [];
          p.nworkers <- 0;
          p.shutdown <- false)

  let ensure_workers n =
    if not !shutdown_registered then begin
      shutdown_registered := true;
      at_exit shutdown
    end;
    while p.nworkers < n do
      let id = p.nworkers in
      p.nworkers <- p.nworkers + 1;
      p.domains <- Domain.spawn (fun () -> worker id) :: p.domains
    done

  (* Run every task to completion; the calling (main) domain participates,
     plus at most [helpers] pool workers. *)
  let run ~helpers tasks =
    ensure_workers helpers;
    Mutex.lock p.m;
    p.tasks <- tasks;
    p.next <- 0;
    p.remaining <- Array.length tasks;
    p.max_helpers <- helpers;
    if helpers > 0 then Condition.broadcast p.work_cv;
    Mutex.unlock p.m;
    let continue = ref true in
    while !continue do
      Mutex.lock p.m;
      if p.next < Array.length p.tasks then begin
        let i = p.next in
        p.next <- i + 1;
        Mutex.unlock p.m;
        exec i;
        finish_task ()
      end
      else begin
        while p.remaining > 0 do
          Condition.wait p.done_cv p.m
        done;
        p.tasks <- [||] (* don't pin dead sims via task closures *);
        continue := false;
        Mutex.unlock p.m
      end
    done
end

(* ---------------------------------------------------------------------- *)

(* One parallel partition: its rules in schedule order, a private
   transaction context (own undo arena, stats shard, partition id), and the
   per-cycle results its domain publishes at the barrier. *)
type part = {
  pid : int;
  pctx : Kernel.ctx;
  porder : Rule.t array; (* refilled in place in Shuffle mode *)
  mutable pfired : int;
  mutable pexn : exn option;
  pfires : int array; (* epoch mode: fires per local window cycle *)
}

(* One cross-partition boundary FIFO under epoch execution. [eb_fwd] says
   the partition owns the enq side (requests flowing into the uncore);
   otherwise the partition owns the deq side (responses flowing out).
   During a partition's free-run its domain records the own-side total
   after every local cycle into [eb_traj]; the uncore replay then installs
   the value as the other side's cycle-start snapshot, cycle by cycle, so
   the uncore sees each message appear at exactly the cycle it was enqueued
   (and each slot freed at exactly the cycle it was dequeued). *)
type ebnd = {
  eb_ops : Boundary.ops;
  eb_fwd : bool;
  eb_pid : int; (* the non-uncore side's partition *)
  eb_traj : int array;
  mutable eb_start : int; (* own-side total at window start *)
  mutable eb_vis : int; (* visibility value currently installed *)
}

type t = {
  clk : Clock.t;
  rule_list : Rule.t list;
  order : Rule.t array; (* attempt order; permuted in Shuffle mode *)
  mode : mode;
  mutable rng : Random.State.t option; (* mutable for [reseed] and restore *)
  ctx : Kernel.ctx; (* one reusable transaction context for all attempts *)
  fastpath : bool; (* consult can_fire / park on watches *)
  audit : bool; (* never skip; dynamically check the can_fire contract *)
  jobs : int;
  paudit : bool; (* serial execution + per-partition cell-touch audit *)
  par : bool; (* partitioned parallel execution active *)
  stats : Stats.t option; (* merged at the cycle barrier when [par] *)
  parts : part array; (* parallel partitions (pid >= 1), ascending *)
  order_of_pid : Rule.t array array; (* pid -> that partition's order *)
  fill : int array; (* scratch fill pointers for Shuffle refills *)
  mutable tasks : (unit -> unit) array; (* one per part, reused *)
  (* Epoch execution (lookahead windows). [elen] > 1 activates the window
     engine: partitions free-run [elen] cycles between barriers, then the
     uncore replays the window cycle-by-cycle against the recorded boundary
     trajectories. [epar] adds pool dispatch; with it off (jobs 1, or the
     partition audit) the same engine runs inline in pid order, which is
     what makes results bit-identical at any [--jobs]. *)
  elen : int;
  epar : bool;
  ebnds : ebnd array; (* all cross-partition boundaries *)
  ebnds_of_pid : ebnd array array; (* boundaries owned by each partition *)
  gorders : Rule.t array array; (* per window cycle: global order *)
  eorders : Rule.t array array array; (* per window cycle: per-pid orders *)
  mutable efmask : int array; (* by rid: bitmask of window cycles fired *)
  mutable n_cycles : int;
  mutable fires : int;
  mutable rr : int; (* rotating start offset for One_per_cycle fairness *)
  (* Schedule compilation (serial Multi/Shuffle with the fast path only).
     [crunners] holds one specialized per-rule step closure per rule,
     indexed by [Rule.rid]; empty = interpreted. [cfired]/[cnames] are the
     compiled cycle's scratch accumulators (the closures write them
     directly instead of threading refs). *)
  caudit : bool; (* compile-audit: interpreted run verifying declarations *)
  mutable crunners : (unit -> unit) array;
  mutable cfired : int;
  mutable cnames : string list;
  mutable cstats : int * int * int; (* rules in tier A / tier B / interpreted *)
  mutable cwhy : string; (* one-line compile status for reports *)
  mutable creport : string; (* tier table + conflict-matrix dump *)
  mutable cchk_free : bool array; (* by rid; consulted by the compile audit *)
  mutable cfp_hooks : (Kernel.cell -> write:bool -> unit) option array; (* by rid *)
  (* observability (verification layer): a ring buffer of which rules fired
     each cycle, monitors that watch liveness, and post-cycle checks *)
  mutable history : (int * string list) array; (* (cycle, fired rule names) *)
  mutable history_depth : int;
  mutable monitors_rev : (t -> int -> unit) list; (* newest-first *)
  mutable post_cycle_rev : (int -> unit) list; (* newest-first *)
  mutable hooks_cache : (int -> int -> unit) array option;
      (* post-cycle checks then monitors, registration order, as one array *)
  (* rule-level trace sink (observability layer). A flat bool guards every
     call site so the disabled cost is one load+branch per fire; the callback
     runs on whichever domain fired the rule, so a sink must write only
     per-partition state (see lib/obs). Skipped-but-vacuous rules are traced
     exactly like real fires, mirroring the fire-count accounting, so traces
     are bit-identical with the fast path on or off. *)
  mutable rtrace_on : bool;
  mutable rtrace : Rule.t -> int -> unit;
}

(* Static partition checker: prove, from the declared boundary tokens and
   watch sets, that no primitive is reachable from two different partitions.
   Rules declare the boundary primitives they touch ([Rule.make ~touches]);
   partition-private state is implicit and backstopped by the dynamic
   [partition_audit]. A conflict-free FIFO contributes one primitive per
   side, so its enq and deq halves may live in different partitions; a ring
   FIFO is a single primitive and is confined to one partition. *)
let check_partitions rules =
  let owner : (int, int * string * string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (r : Rule.t) ->
      Array.iter
        (fun tk ->
          let prim = Partition.prim tk in
          match Hashtbl.find_opt owner prim with
          | None -> Hashtbl.add owner prim (r.part, r.name, Partition.name tk)
          | Some (p0, r0, tk0) ->
            if p0 <> r.part then
              raise
                (Partition_error
                   (Printf.sprintf
                      "primitive %s is touched from partition %d (rule %s) and partition %d (rule %s, token %s); only the two sides of a conflict-free FIFO may cross a partition boundary"
                      tk0 p0 r0 r.part r.name (Partition.name tk))))
        r.touches)
    rules;
  List.iter
    (fun (r : Rule.t) ->
      if r.part > 0 then
        Array.iter
          (fun s ->
            let o = Wakeup.owner s in
            if o <> r.part && o <> Partition.uncore then
              raise
                (Partition_error
                   (Printf.sprintf
                      "rule %s (partition %d) watches a signal owned by partition %d; parallel rules may only watch their own partition's signals (or the uncore's, which are quiescent during the parallel phase)"
                      r.name r.part o)))
          r.watches)
    rules;
  owner

(* Classify the boundary FIFOs the elaboration registered against the
   rule-ownership table: a FIFO whose sides are claimed from two different
   partitions is a cross-partition boundary. Epoch execution requires one
   side to be the uncore (partition-to-partition traffic would need a
   second synchronization tier), and requires the FIFO to have been
   constructed in the non-uncore partition's scope so its cycle-end
   snapshot hook runs during that partition's free-run. An unclaimed side
   (no rule declares the token) is treated as uncore: only harness code
   outside the rule set can touch it, and that runs at the barrier. *)
let classify_boundaries owner boundaries =
  List.filter_map
    (fun (o : Boundary.ops) ->
      let part_of tk =
        match Hashtbl.find_opt owner tk with Some (p, _, _) -> p | None -> Partition.uncore
      in
      let pe = part_of o.Boundary.bo_enq_tk and pd = part_of o.Boundary.bo_deq_tk in
      if pe = pd then None
      else if pe <> Partition.uncore && pd <> Partition.uncore then
        raise
          (Partition_error
             (Printf.sprintf
                "epoch mode: boundary FIFO %s links partitions %d and %d; every cross-partition boundary must touch the uncore"
                o.Boundary.bo_name pe pd))
      else begin
        let fwd = pe <> Partition.uncore in
        let pid = if fwd then pe else pd in
        if o.Boundary.bo_ctor_part <> pid then
          raise
            (Partition_error
               (Printf.sprintf
                  "epoch mode: boundary FIFO %s was constructed in partition %d but its partition-side lives in partition %d; construct boundary FIFOs inside the non-uncore partition's scope so their cycle hook free-runs with it"
                  o.Boundary.bo_name o.Boundary.bo_ctor_part pid));
        Some (o, fwd, pid)
      end)
    boundaries

(* Refill per-partition order arrays from a (possibly just shuffled) global
   order, one pass, preserving relative order — so the parallel schedule
   permutes exactly like the serial one. *)
let refill_orders t (src : Rule.t array) (dst : Rule.t array array) =
  Array.fill t.fill 0 (Array.length t.fill) 0;
  for i = 0 to Array.length src - 1 do
    let r = Array.unsafe_get src i in
    let pid = r.Rule.part in
    let k = t.fill.(pid) in
    dst.(pid).(k) <- r;
    t.fill.(pid) <- k + 1
  done

let refill_partition_orders t = refill_orders t t.order t.order_of_pid

(* ---------------------------------------------------------------------- *)
(* Schedule compilation                                                   *)
(*                                                                        *)
(* At elaboration, derive the pairwise conflict matrix from the rules'    *)
(* declared footprints and classify every rule:                           *)
(*                                                                        *)
(*   tier A  — conflict-admissible in the static order AND declared       *)
(*             [~total]: runs with neither port bookkeeping nor undo      *)
(*             logging (a wrong totality claim is a hard error, not a     *)
(*             silent divergence — see [Kernel.attempt]);                 *)
(*   tier B  — conflict-admissible: port bookkeeping off, undo log on     *)
(*             (guard aborts still roll back);                            *)
(*   interp  — everything else falls back to the fully checked path.      *)
(*                                                                       *)
(* "Conflict-admissible" means: the rule's own atoms admit an execution   *)
(* order, and every pair it forms with another rule is admissible in the  *)
(* schedule's order (canonical order under Multi; both orders — i.e. CF — *)
(* under Shuffle). Any pair that could ever [Retry] keeps BOTH endpoints  *)
(* checked, so the per-cell summaries that checked rules consult remain   *)
(* consistent even though unchecked rules stop contributing to them.      *)
(* A single rule without a footprint disables compilation for the whole   *)
(* design: an opaque body may touch any primitive.                        *)
(* ---------------------------------------------------------------------- *)

type analysis = {
  an_chk_free : bool array;
  an_reasons : string array; (* why a rule stays interpreted; "" otherwise *)
  an_rel : Conflict.order array array;
  an_opaque : string option; (* first footprint-less rule, if any *)
}

let analyze_schedule ~shuffled (rules_arr : Rule.t array) =
  let n = Array.length rules_arr in
  let opaque = ref None in
  Array.iter
    (fun (r : Rule.t) -> if r.Rule.fp = None && !opaque = None then opaque := Some r.Rule.name)
    rules_arr;
  match !opaque with
  | Some _ as o ->
    {
      an_chk_free = Array.make n false;
      an_reasons = Array.make n "opaque footprint in design";
      an_rel = [||];
      an_opaque = o;
    }
  | None ->
    let fp = Array.map (fun (r : Rule.t) -> Option.get r.Rule.fp) rules_arr in
    let relm = Array.make_matrix n n Conflict.Cf in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let r = Conflict.rel fp.(i) fp.(j) in
        relm.(i).(j) <- r;
        relm.(j).(i) <- Conflict.flip r
      done
    done;
    let chk_free = Array.make n true in
    let reasons = Array.make n "" in
    for i = 0 to n - 1 do
      (match Conflict.self_compatible fp.(i) with
      | Some (a, b) ->
        chk_free.(i) <- false;
        reasons.(i) <-
          Printf.sprintf "own atoms %s and %s conflict" (Conflict.atom_name a)
            (Conflict.atom_name b)
      | None -> ());
      let j = ref 0 in
      while chk_free.(i) && !j < n do
        if !j <> i then begin
          let ok =
            if shuffled then relm.(i).(!j) = Conflict.Cf
            else if i < !j then Conflict.allows_before relm.(i).(!j)
            else Conflict.allows_before relm.(!j).(i)
          in
          if not ok then begin
            chk_free.(i) <- false;
            reasons.(i) <-
              Printf.sprintf "%s %s in schedule order vs %s"
                (Conflict.to_string relm.(i).(!j))
                (if shuffled then "(needs CF under Shuffle)" else "inadmissible")
                rules_arr.(!j).Rule.name
          end
        end;
        incr j
      done
    done;
    { an_chk_free = chk_free; an_reasons = reasons; an_rel = relm; an_opaque = None }

let render_compile_report (rules_arr : Rule.t array) an ~tier =
  let b = Buffer.create 4096 in
  Buffer.add_string b "rule tiers (A = unchecked+unlogged, B = unchecked, I = interpreted):\n";
  Array.iteri
    (fun i (r : Rule.t) ->
      Buffer.add_string b
        (Printf.sprintf "  %c %-28s%s\n" (tier i)
           r.Rule.name
           (if an.an_reasons.(i) = "" then "" else "  [" ^ an.an_reasons.(i) ^ "]")))
    rules_arr;
  if an.an_rel <> [||] then begin
    let n = Array.length rules_arr in
    Buffer.add_string b "\nconflict matrix (row rel column, schedule order = listing order):\n";
    Buffer.add_string b "      ";
    for j = 0 to n - 1 do
      Buffer.add_string b (Printf.sprintf "%3d" j)
    done;
    Buffer.add_char b '\n';
    for i = 0 to n - 1 do
      Buffer.add_string b (Printf.sprintf "  %3d " i);
      for j = 0 to n - 1 do
        Buffer.add_string b
          (Printf.sprintf "%3s" (if i = j then "." else Conflict.to_string an.an_rel.(i).(j)))
      done;
      Buffer.add_string b (Printf.sprintf "  %s\n" rules_arr.(i).Rule.name)
    done
  end;
  Buffer.contents b

(* Fast-path decision: should [r] be skipped without an attempt this cycle?
   Only rules carrying a [can_fire] predicate are ever skipped. A skippable
   rule with a (non-empty) watch set parks: while parked, the per-cycle cost
   is one generation-sum comparison; the predicate is re-evaluated only when
   a watched signal was touched. Watchless rules re-evaluate the predicate
   every cycle (still far cheaper than a transactional attempt). *)
let should_skip (r : Rule.t) =
  match r.Rule.can_fire with
  | None -> false
  | Some p ->
    if r.Rule.parked then
      if Wakeup.sum r.Rule.watches = r.Rule.park_sum then true
      else if p () then begin
        r.Rule.parked <- false;
        false
      end
      else begin
        r.Rule.park_sum <- Wakeup.sum r.Rule.watches;
        true
      end
    else if p () then false
    else begin
      if Array.length r.Rule.watches > 0 then begin
        r.Rule.parked <- true;
        r.Rule.park_sum <- Wakeup.sum r.Rule.watches
      end;
      true
    end

(* Per-rule footprint-coverage hook for the compile audit: every tracked
   access must fall on a primitive the rule declared, in the declared
   direction. *)
let mk_fp_hook (r : Rule.t) =
  match r.Rule.fp with
  | None -> None
  | Some atoms ->
    let allowed : (int, int) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (a : Conflict.atom) ->
        List.iter
          (fun (acc : Conflict.acc) ->
            let bit = if acc.Conflict.awrite then 2 else 1 in
            let prev = Option.value (Hashtbl.find_opt allowed a.Conflict.ap.Conflict.pid) ~default:0 in
            Hashtbl.replace allowed a.Conflict.ap.Conflict.pid (prev lor bit))
          a.Conflict.accs)
      atoms;
    Some
      (fun c ~write ->
        let pid = Kernel.cell_prim c in
        if pid < 0 then
          raise
            (Kernel.Compile_audit_fail
               (Printf.sprintf "rule %s: cell %s has no owning primitive" r.Rule.name
                  (Kernel.cell_name c)));
        let need = if write then 2 else 1 in
        let have = Option.value (Hashtbl.find_opt allowed pid) ~default:0 in
        if have land need = 0 then
          raise
            (Kernel.Compile_audit_fail
               (Printf.sprintf
                  "rule %s: undeclared %s of cell %s (prim #%d) — footprint is under-declared"
                  r.Rule.name
                  (if write then "write" else "read")
                  (Kernel.cell_name c) pid)))

(* One specialized per-rule step closure. [chk]/[log] are the kernel tier
   flags this rule runs under (both true = interpreted-but-compiled: the
   closure still saves the per-rule dispatch work of the generic loop).
   Compilation requires [fastpath] and excludes audit modes and
   One_per_cycle, so the skip path applies unconditionally and there is no
   [stop] bookkeeping. Accounting mirrors [cycle_serial] exactly — fire
   counts, history, rule traces and the fired-nothing [Conflict_error]
   escalation — which is what makes compiled runs bit-identical. *)
let mk_runner t (r : Rule.t) ~chk ~log =
  let ctx = t.ctx in
  fun () ->
    if should_skip r then begin
      r.Rule.skipped <- r.Rule.skipped + 1;
      if r.Rule.vacuous then begin
        r.Rule.fired <- r.Rule.fired + 1;
        t.cfired <- t.cfired + 1;
        if t.rtrace_on then t.rtrace r t.n_cycles;
        if t.history_depth > 0 then t.cnames <- r.Rule.name :: t.cnames
      end
      else r.Rule.guard_failed <- r.Rule.guard_failed + 1
    end
    else begin
      Kernel.set_rule_name ctx r.Rule.name;
      (* Every runner (re)sets its tier: the previous rule may have cleared
         the flags. [set_tier] also zeroes the dropped-undo counter, so the
         abort check below sees only this rule's elisions. *)
      Kernel.set_tier ctx ~chk ~log;
      match r.Rule.body ctx with
      | () ->
        Kernel.reset_ctx ctx;
        r.Rule.fired <- r.Rule.fired + 1;
        t.cfired <- t.cfired + 1;
        if t.rtrace_on then t.rtrace r t.n_cycles;
        if t.history_depth > 0 then t.cnames <- r.Rule.name :: t.cnames
      | exception Kernel.Guard_fail _ ->
        (* A tier-A rule (no undo log) must never abort after a tracked
           write; if it elided undos before this guard failure, state is
           already unrecoverable — the [~total] declaration was wrong. *)
        if (not log) && Kernel.dropped ctx > 0 then
          raise
            (Kernel.Conflict_error
               (Printf.sprintf
                  "rule %s: guard abort after %d unlogged write(s); the ~total declaration is wrong for this schedule"
                  r.Rule.name (Kernel.dropped ctx)));
        Kernel.rollback ctx;
        Kernel.reset_ctx ctx;
        r.Rule.guard_failed <- r.Rule.guard_failed + 1
      | exception Kernel.Retry msg ->
        Kernel.rollback ctx;
        Kernel.reset_ctx ctx;
        if t.cfired = 0 then raise (Kernel.Conflict_error msg);
        r.Rule.conflicted <- r.Rule.conflicted + 1
    end

let create ?(mode = Multi) ?(fastpath = true) ?(audit = false) ?(jobs = 1)
    ?(partition_audit = false) ?(compile = true) ?(compile_audit = false) ?(epoch = 1) ?stats clk
    rules =
  if jobs < 1 then invalid_arg "Sim.create: jobs must be >= 1";
  if epoch < 0 then invalid_arg "Sim.create: epoch must be >= 0 (0 = auto)";
  let rng = match mode with Shuffle seed -> Some (Random.State.make [| seed |]) | Multi | One_per_cycle -> None in
  let max_part = List.fold_left (fun m (r : Rule.t) -> max m r.Rule.part) 0 rules in
  (* Epoch eligibility and the safe lookahead bound L. [epoch = 1] (the
     default) is plain per-cycle execution; [epoch = 0] derives the window
     length as the minimum declared lookahead over all cross-partition
     boundary FIFOs; an explicit [epoch = n] is clamped to that bound. An
     undeclared boundary contributes the trivial bound of 1, turning epochs
     off — free-running past state the design never promised to delay
     would silently distort the timing model. One_per_cycle and the
     scheduler/compile audits are inherently per-cycle; the partition
     audit, by contrast, is supported (serially) inside epoch mode. *)
  let want_epoch =
    epoch <> 1 && max_part > 0 && mode <> One_per_cycle && (not audit) && (not compile_audit)
    && rules <> []
  in
  let owner =
    if jobs > 1 || partition_audit || want_epoch then Some (check_partitions rules) else None
  in
  let cross =
    match owner with
    | Some ow when want_epoch -> classify_boundaries ow (Boundary.ambient ())
    | _ -> []
  in
  let elen =
    if (not want_epoch) || cross = [] then 1
    else begin
      let l =
        List.fold_left
          (fun m ((o : Boundary.ops), _, _) ->
            min m (Option.value o.Boundary.bo_lookahead ~default:1))
          max_int cross
      in
      (* the per-window fired bitmask keeps one bit per window cycle *)
      let l = min l 62 in
      max 1 (if epoch = 0 then l else min epoch l)
    end
  in
  let eon = elen > 1 in
  (* Parallel execution applies when something can actually run off-main and
     the execution strategy is not inherently serial: One_per_cycle commits
     a single rule per cycle across the whole machine, and the two audit
     modes deliberately execute serially so their diagnostics are exact.
     Epoch mode replaces the per-cycle parallel engine wholesale. *)
  let par =
    jobs > 1 && max_part > 0 && mode <> One_per_cycle && (not audit)
    && (not partition_audit) && (not compile_audit) && not eon
  in
  (* Partition structure (orders, contexts, stats shards) is shared by the
     per-cycle parallel engine and the epoch engine — the epoch engine
     builds it even at jobs 1, because bit-identity across [--jobs] demands
     the identical execution structure either way. *)
  let pstruct = par || eon in
  let counts = Array.make (max_part + 1) 0 in
  List.iter (fun (r : Rule.t) -> counts.(r.Rule.part) <- counts.(r.Rule.part) + 1) rules;
  let order_of_pid =
    if pstruct then Array.init (max_part + 1) (fun pid -> Array.make counts.(pid) (List.hd rules))
    else [||]
  in
  let fill = if pstruct then Array.make (max_part + 1) 0 else [||] in
  let parts =
    if not pstruct then [||]
    else
      Array.of_list
        (List.filter_map
           (fun pid ->
             if counts.(pid) = 0 then None
             else begin
               let pctx = Kernel.make_ctx clk in
               Kernel.set_partition pctx pid;
               Kernel.set_stats_slot pctx pid;
               Some
                 {
                   pid;
                   pctx;
                   porder = order_of_pid.(pid);
                   pfired = 0;
                   pexn = None;
                   pfires = (if eon then Array.make elen 0 else [||]);
                 }
             end)
           (List.init max_part (fun i -> i + 1)))
  in
  (match stats with Some s when pstruct -> Stats.prepare s ~slots:(max_part + 1) | _ -> ());
  let order = Array.of_list rules in
  let ebnds =
    if not eon then [||]
    else
      Array.of_list
        (List.map
           (fun (o, fwd, pid) ->
             { eb_ops = o; eb_fwd = fwd; eb_pid = pid; eb_traj = Array.make elen 0;
               eb_start = 0; eb_vis = 0 })
           cross)
  in
  let ebnds_of_pid =
    if not eon then [||]
    else
      Array.init (max_part + 1) (fun pid ->
          Array.of_list (List.filter (fun b -> b.eb_pid = pid) (Array.to_list ebnds)))
  in
  (* Per-window-cycle schedules. Multi never permutes, so every window
     cycle aliases the canonical arrays at zero cost; Shuffle gets private
     arrays, refilled from the window's freshly drawn permutations. *)
  let gorders =
    if not eon then [||]
    else
      match mode with
      | Shuffle _ -> Array.init elen (fun _ -> Array.copy order)
      | Multi | One_per_cycle -> Array.make elen order
  in
  let eorders =
    if not eon then [||]
    else
      match mode with
      | Shuffle _ ->
        Array.init elen (fun _ ->
            Array.init (max_part + 1) (fun pid -> Array.make counts.(pid) (List.hd rules)))
      | Multi | One_per_cycle -> Array.make elen order_of_pid
  in
  let t =
    {
      clk;
      rule_list = rules;
      order;
      mode;
      rng;
      ctx = Kernel.make_ctx clk;
      fastpath;
      audit;
      jobs;
      paudit = partition_audit;
      par;
      stats;
      parts;
      order_of_pid;
      fill;
      tasks = [||];
      elen;
      epar = (eon && jobs > 1 && not partition_audit);
      ebnds;
      ebnds_of_pid;
      gorders;
      eorders;
      efmask = [||];
      n_cycles = 0;
      fires = 0;
      rr = 0;
      caudit = compile_audit;
      crunners = [||];
      cfired = 0;
      cnames = [];
      cstats = (0, 0, 0);
      cwhy = "";
      creport = "";
      cchk_free = [||];
      cfp_hooks = [||];
      history = [||];
      history_depth = 0;
      monitors_rev = [];
      post_cycle_rev = [];
      hooks_cache = None;
      rtrace_on = false;
      rtrace = (fun _ _ -> ());
    }
  in
  Kernel.set_partition_audit t.ctx partition_audit;
  if partition_audit && eon then begin
    (* Epoch-mode partition audit: every context records touches (phases
       run inline on the per-partition contexts), masks are keyed per
       window (set in [cycle_epoch]), and the declared boundary FIFOs —
       whose cross-partition handoff the engine itself sequences — are
       exempted so only *undeclared* sharing is flagged. *)
    let exempt = Hashtbl.create 16 in
    Array.iter (fun b -> Hashtbl.replace exempt b.eb_ops.Boundary.bo_prim ()) ebnds;
    let is_exempt pid = Hashtbl.mem exempt pid in
    Kernel.set_audit_exempt t.ctx is_exempt;
    Array.iter
      (fun p ->
        Kernel.set_partition_audit p.pctx true;
        Kernel.set_audit_exempt p.pctx is_exempt)
      t.parts
  end;
  if pstruct then refill_partition_orders t;
  (* Stamp every rule with its index in the canonical (rule_list) order.
     [Obs.Hub] stamps the same indices from the same list, so the two
     agree; the stamps let the snapshot express the current schedule
     permutation as plain indices. *)
  let rules_arr = Array.of_list rules in
  Array.iteri (fun i (r : Rule.t) -> r.Rule.rid <- i) rules_arr;
  (* Schedule compilation. Eligible only for the serial fast path: the
     parallel scheduler has its own per-partition contexts, the audit modes
     deliberately run fully checked, and One_per_cycle's rotating
     single-commit semantics do not match the runners' accounting. The
     compile audit performs the same analysis but keeps the interpreted
     loop (instrumented in [cycle_serial]) to verify the declarations the
     compiled path would trust. *)
  let shuffled = match mode with Shuffle _ -> true | Multi | One_per_cycle -> false in
  let compilable =
    compile && (not par) && (not eon) && fastpath && (not audit) && (not partition_audit)
    && (not compile_audit)
    && mode <> One_per_cycle
    && rules <> []
  in
  if compilable || compile_audit then begin
    let an = analyze_schedule ~shuffled rules_arr in
    let n = Array.length rules_arr in
    let tier i =
      if not an.an_chk_free.(i) then 'I'
      else if rules_arr.(i).Rule.total then 'A'
      else 'B'
    in
    let na = ref 0 and nb = ref 0 and ni = ref 0 in
    for i = 0 to n - 1 do
      match tier i with 'A' -> incr na | 'B' -> incr nb | _ -> incr ni
    done;
    t.cstats <- (!na, !nb, !ni);
    t.creport <- render_compile_report rules_arr an ~tier;
    t.cchk_free <- an.an_chk_free;
    if compile_audit then begin
      t.cwhy <- "compile-audit: interpreted run verifying footprints and totality claims";
      t.cfp_hooks <- Array.map mk_fp_hook rules_arr
    end
    else begin
      match an.an_opaque with
      | Some nm ->
        t.cwhy <- Printf.sprintf "interpreted: rule %s has no declared footprint" nm
      | None ->
        t.cwhy <-
          Printf.sprintf
            "compiled: %d/%d rules run unchecked (%d of those also unlogged), %d interpreted"
            (!na + !nb) n !na !ni;
        if !na + !nb > 0 then
          t.crunners <-
            Array.map
              (fun (r : Rule.t) ->
                let free = an.an_chk_free.(r.Rule.rid) in
                mk_runner t r ~chk:(not free) ~log:(not (free && r.Rule.total)))
              rules_arr
    end
  end
  else
    t.cwhy <-
      (if not compile then "interpreted: compilation disabled"
       else if eon then Printf.sprintf "interpreted: epoch mode (E=%d)" elen
       else if par then "interpreted: parallel partitions active (jobs > 1)"
       else if not fastpath then "interpreted: fast path disabled"
       else if audit then "interpreted: audit mode"
       else if partition_audit then "interpreted: partition-audit mode"
       else if mode = One_per_cycle then "interpreted: One_per_cycle mode"
       else "interpreted: empty rule set");
  State.register ~name:"sim.sched"
    ~save:(fun () ->
      let ord = Array.map (fun (r : Rule.t) -> r.Rule.rid) t.order in
      let per_rule =
        Array.map
          (fun (r : Rule.t) ->
            (r.Rule.fired, r.Rule.guard_failed, r.Rule.conflicted, r.Rule.skipped,
             r.Rule.last_fired))
          rules_arr
      in
      Obj.repr
        ( t.n_cycles,
          t.fires,
          t.rr,
          ord,
          Option.map Random.State.copy t.rng,
          per_rule,
          (Array.copy t.history, t.history_depth) ))
    ~load:(fun o ->
      let ( n_cycles,
            fires,
            rr,
            (ord : int array),
            (rng : Random.State.t option),
            (per_rule : (int * int * int * int * int) array),
            ((history : (int * string list) array), history_depth) ) =
        Obj.obj o
      in
      t.n_cycles <- n_cycles;
      t.fires <- fires;
      t.rr <- rr;
      Array.iteri (fun i rid -> t.order.(i) <- rules_arr.(rid)) ord;
      t.rng <- rng;
      Array.iteri
        (fun i (fired, guard_failed, conflicted, skipped, last_fired) ->
          let r = rules_arr.(i) in
          r.Rule.fired <- fired;
          r.Rule.guard_failed <- guard_failed;
          r.Rule.conflicted <- conflicted;
          r.Rule.skipped <- skipped;
          r.Rule.last_fired <- last_fired;
          (* Wakeup generations are not snapshotted: un-parking every rule
             forces predicate re-evaluation, which cannot change fire
             counts (skip accounting depends only on predicate results). *)
          r.Rule.parked <- false;
          r.Rule.park_sum <- 0)
        per_rule;
      t.history <- history;
      t.history_depth <- history_depth;
      if t.par || t.elen > 1 then refill_partition_orders t);
  t

let clock t = t.clk
let cycles t = t.n_cycles
let total_fires t = t.fires
let rules t = t.rule_list
let jobs t = t.jobs
let parallel t = t.par
let epoch_length t = t.elen
let shutdown_pool () = Pool.shutdown ()
let pool_run ~helpers tasks = Pool.run ~helpers tasks

(* Re-key the Shuffle schedule: reset the attempt order to the canonical
   rule order and replace the RNG, exactly the state a cold machine built
   with [Shuffle seed] starts from. Restoring a cycle-0 snapshot and
   reseeding is therefore schedule-identical to a cold build with that
   seed — the warm-fork path. No-op outside Shuffle mode. *)
let reseed t seed =
  match t.mode with
  | Shuffle _ ->
    List.iteri (fun i r -> t.order.(i) <- r) t.rule_list;
    t.rng <- Some (Random.State.make [| seed |]);
    if t.par || t.elen > 1 then refill_partition_orders t
  | Multi | One_per_cycle -> ()

let enable_history t ~depth =
  t.history_depth <- depth;
  t.history <- Array.make (max 1 depth) (-1, []);
  (* Epoch mode reconstructs per-cycle history from a per-rule bitmask of
     window cycles fired (a [last_fired] stamp alone cannot distinguish two
     fires of one rule within a window). Allocated only when history is on,
     so the common path never pays the per-fire mask update. *)
  if t.elen > 1 && depth > 0 then t.efmask <- Array.make (Array.length t.order) 0

let history t =
  if t.history_depth = 0 then []
  else
    List.filter
      (fun (c, _) -> c >= 0)
      (List.init t.history_depth (fun i ->
           t.history.((t.n_cycles + i) mod t.history_depth)))

let set_rule_trace t f =
  t.rtrace <- f;
  t.rtrace_on <- true

let clear_rule_trace t =
  t.rtrace_on <- false;
  t.rtrace <- (fun _ _ -> ())

let add_monitor t f =
  t.monitors_rev <- f :: t.monitors_rev;
  t.hooks_cache <- None

let on_post_cycle t f =
  t.post_cycle_rev <- f :: t.post_cycle_rev;
  t.hooks_cache <- None

(* One flat array of end-of-cycle callbacks: post-cycle checks first, then
   monitors, each set in registration order. Built lazily so registering a
   hook is O(1) (it used to be an O(n) list append per registration, and
   [cycle] walked two lists every cycle). *)
let end_hooks t =
  match t.hooks_cache with
  | Some a -> a
  | None ->
    let a =
      Array.of_list
        (List.rev_append
           (List.rev_map (fun f -> fun cyc _fired -> f cyc) (List.rev t.post_cycle_rev))
           (List.rev_map (fun f -> fun _cyc fired -> f t fired) t.monitors_rev))
    in
    t.hooks_cache <- Some a;
    a

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let cycle_serial t =
  (match t.rng with Some rng -> shuffle rng t.order | None -> ());
  let fired = ref 0 in
  let fired_names = ref [] in
  let n = Array.length t.order in
  let stop = ref false in
  let base = if t.mode = One_per_cycle then t.rr else 0 in
  let ctx = t.ctx in
  let i = ref 0 in
  while not !stop && !i < n do
    let r = t.order.((base + !i) mod n) in
    incr i;
    if t.fastpath && (not t.audit) && should_skip r then begin
      (* Account the pruned attempt exactly as the seed scheduler would
         have: an attempt-wrapped ([vacuous]) body swallows its inner guard
         failure and "fires" vacuously; a bare guarded body fails its
         guard. This keeps fire counts, the history ring and One_per_cycle
         rotation bit-identical with the fast path on or off. *)
      r.Rule.skipped <- r.Rule.skipped + 1;
      if r.Rule.vacuous then begin
        r.Rule.fired <- r.Rule.fired + 1;
        incr fired;
        if t.rtrace_on then t.rtrace r t.n_cycles;
        if t.history_depth > 0 then fired_names := r.Rule.name :: !fired_names;
        if t.mode = One_per_cycle then stop := true
      end
      else r.Rule.guard_failed <- r.Rule.guard_failed + 1
    end
    else begin
      (* Audit mode: attempt every rule (fast path disabled) and verify the
         one-sided can_fire contract — [false] must imply the body cannot
         commit anything this cycle. *)
      let claimed =
        if not t.audit then true
        else match r.Rule.can_fire with None -> true | Some p -> p ()
      in
      Kernel.set_rule_name ctx r.Rule.name;
      if t.paudit then Kernel.set_partition ctx r.Rule.part;
      (* Compile audit: install this rule's footprint-coverage hook, flag a
         would-be tier-A rule for the totality check in [Kernel.attempt],
         and baseline the Retry counter — a Retry observed in a rule the
         analysis classified conflict-admissible (even one swallowed by an
         inner [attempt]) falsifies the classification. *)
      let rbase =
        if t.caudit then begin
          Kernel.set_fp_check ctx t.cfp_hooks.(r.Rule.rid);
          Kernel.set_total_audit ctx (t.cchk_free.(r.Rule.rid) && r.Rule.total);
          Kernel.retries ctx
        end
        else 0
      in
      let audit_retry_check () =
        if t.caudit && t.cchk_free.(r.Rule.rid) && Kernel.retries ctx > rbase then
          raise
            (Kernel.Compile_audit_fail
               (Printf.sprintf
                  "rule %s was classified conflict-admissible but raised Retry (cycle %d); its footprint or the conflict analysis is wrong"
                  r.Rule.name t.n_cycles))
      in
      (match r.Rule.body ctx with
      | () ->
        audit_retry_check ();
        if (not claimed) && ((not r.Rule.vacuous) || Kernel.undo_depth ctx > 0) then begin
          Kernel.rollback ctx;
          raise
            (Audit_fail
               (Printf.sprintf
                  "rule %s: can_fire returned false but the rule fired (cycle %d)"
                  r.Rule.name t.n_cycles))
        end;
        Kernel.reset_ctx ctx;
        r.Rule.fired <- r.Rule.fired + 1;
        incr fired;
        if t.rtrace_on then t.rtrace r t.n_cycles;
        if t.history_depth > 0 then fired_names := r.Rule.name :: !fired_names;
        if t.mode = One_per_cycle then stop := true
      | exception Kernel.Guard_fail _ ->
        Kernel.rollback ctx;
        Kernel.reset_ctx ctx;
        audit_retry_check ();
        r.Rule.guard_failed <- r.Rule.guard_failed + 1
      | exception Kernel.Retry msg ->
        Kernel.rollback ctx;
        Kernel.reset_ctx ctx;
        audit_retry_check ();
        (* If nothing fired yet this cycle, the conflict is within the rule
           itself: no schedule can ever admit it. Fail loudly, like the BSV
           compiler rejecting an ill-formed rule. *)
        if !fired = 0 then raise (Kernel.Conflict_error msg);
        r.Rule.conflicted <- r.Rule.conflicted + 1)
    end
  done;
  if t.mode = One_per_cycle && n > 0 then t.rr <- (t.rr + 1) mod n;
  if t.history_depth > 0 then
    t.history.(t.n_cycles mod t.history_depth) <- (t.n_cycles, List.rev !fired_names);
  Clock.tick t.clk;
  let this_cycle = t.n_cycles in
  t.n_cycles <- t.n_cycles + 1;
  t.fires <- t.fires + !fired;
  let hooks = end_hooks t in
  for h = 0 to Array.length hooks - 1 do
    hooks.(h) this_cycle !fired
  done;
  !fired

(* Attempt every rule of [order] on [ctx], accumulating into [fired]. Same
   skip accounting as the serial loop; additionally stamps [last_fired] so
   the firing history can be reconstructed in global schedule order after
   the barrier. [fired] starts at 0 for a parallel partition — during the
   parallel phase a partition's cells are touched by that partition alone,
   so a Retry with no local fire is a genuine single-rule conflict — and at
   the parallel total for the uncore, preserving the serial semantics.
   [cyc] is the architectural cycle being simulated (epoch mode runs this
   loop for cycles the shared clock has not reached yet); [kbit >= 0] also
   sets that bit of the rule's window-fire mask for history rebuilds. *)
let run_rules t ctx (order : Rule.t array) (fired : int ref) ~cyc ~kbit =
  for i = 0 to Array.length order - 1 do
    let r = Array.unsafe_get order i in
    if t.fastpath && should_skip r then begin
      r.Rule.skipped <- r.Rule.skipped + 1;
      if r.Rule.vacuous then begin
        r.Rule.fired <- r.Rule.fired + 1;
        r.Rule.last_fired <- cyc;
        incr fired;
        if kbit >= 0 then t.efmask.(r.Rule.rid) <- t.efmask.(r.Rule.rid) lor (1 lsl kbit);
        if t.rtrace_on then t.rtrace r cyc
      end
      else r.Rule.guard_failed <- r.Rule.guard_failed + 1
    end
    else begin
      Kernel.set_rule_name ctx r.Rule.name;
      match r.Rule.body ctx with
      | () ->
        Kernel.reset_ctx ctx;
        r.Rule.fired <- r.Rule.fired + 1;
        r.Rule.last_fired <- cyc;
        incr fired;
        if kbit >= 0 then t.efmask.(r.Rule.rid) <- t.efmask.(r.Rule.rid) lor (1 lsl kbit);
        if t.rtrace_on then t.rtrace r cyc
      | exception Kernel.Guard_fail _ ->
        Kernel.rollback ctx;
        Kernel.reset_ctx ctx;
        r.Rule.guard_failed <- r.Rule.guard_failed + 1
      | exception Kernel.Retry msg ->
        Kernel.rollback ctx;
        Kernel.reset_ctx ctx;
        if !fired = 0 then raise (Kernel.Conflict_error msg);
        r.Rule.conflicted <- r.Rule.conflicted + 1
    end
  done

let run_part t (p : part) =
  match
    let fired = ref 0 in
    run_rules t p.pctx p.porder fired ~cyc:t.n_cycles ~kbit:(-1);
    p.pfired <- !fired
  with
  | () -> ()
  | exception e -> p.pexn <- Some e

let cycle_par t =
  (match t.rng with
  | Some rng ->
    shuffle rng t.order;
    refill_partition_orders t
  | None -> ());
  if Array.length t.tasks = 0 then
    t.tasks <- Array.map (fun p -> fun () -> run_part t p) t.parts;
  Pool.run ~helpers:(min (t.jobs - 1) (Array.length t.parts - 1)) t.tasks;
  (* Barrier passed: every partition's writes are visible. Collect results,
     re-raising the lowest-partition exception (deterministic pick). *)
  let fired = ref 0 in
  let first_exn = ref None in
  Array.iter
    (fun p ->
      (match p.pexn with
      | Some e -> if !first_exn = None then first_exn := Some e
      | None -> ());
      p.pexn <- None;
      fired := !fired + p.pfired)
    t.parts;
  (match !first_exn with Some e -> raise e | None -> ());
  (* Uncore: serial, on the main context, after every partition is done. *)
  run_rules t t.ctx t.order_of_pid.(0) fired ~cyc:t.n_cycles ~kbit:(-1);
  if t.history_depth > 0 then begin
    let names = ref [] in
    for i = Array.length t.order - 1 downto 0 do
      let r = Array.unsafe_get t.order i in
      if r.Rule.last_fired = t.n_cycles then names := r.Rule.name :: !names
    done;
    t.history.(t.n_cycles mod t.history_depth) <- (t.n_cycles, !names)
  end;
  Clock.tick t.clk;
  (match t.stats with Some s -> Stats.merge s | None -> ());
  let this_cycle = t.n_cycles in
  t.n_cycles <- t.n_cycles + 1;
  t.fires <- t.fires + !fired;
  let hooks = end_hooks t in
  for h = 0 to Array.length hooks - 1 do
    hooks.(h) this_cycle !fired
  done;
  !fired

(* ---------------------------------------------------------------------- *)
(* Epoch execution (conservative lookahead windows)                        *)
(*                                                                        *)
(* A window simulates E consecutive cycles in three deterministic steps:  *)
(*                                                                        *)
(*   1. every core partition free-runs its E local cycles (concurrently   *)
(*      across the pool when jobs > 1, inline in pid order otherwise),    *)
(*      running its own clock-hook group after each local cycle and       *)
(*      recording, per boundary FIFO it owns, the own-side total after    *)
(*      every local cycle (the boundary trajectory);                      *)
(*   2. the uncore replays the window cycle-by-cycle on the main domain:  *)
(*      before cycle k it installs each boundary's trajectory value at    *)
(*      k-1 as the other side's cycle-start snapshot, so the uncore sees  *)
(*      each request appear at exactly the cycle it was enqueued — and    *)
(*      runs its own hook group after each replay cycle;                  *)
(*   3. the window closes: the shared clock advances by E without running *)
(*      hooks (each group already ran E times), boundary snapshots are    *)
(*      refreshed to the true totals (waking parked rules on both sides), *)
(*      and the per-partition stats shards merge.                         *)
(*                                                                        *)
(* Responses the uncore enqueues during replay become visible to the      *)
(* partitions only at the window close — a delivery delay of at most E-1  *)
(* extra cycles. With E bounded by the minimum declared boundary          *)
(* lookahead (the architectural response latency), the quantization stays *)
(* within the latency the design already guarantees. Every step is a      *)
(* deterministic function of the window-start state, and jobs only        *)
(* changes which domain executes a phase, so results are bit-identical    *)
(* at any --jobs for a given E.                                           *)
(* ---------------------------------------------------------------------- *)

let run_epoch_part t (p : part) =
  match
    let groups = Clock.hooks_by_partition t.clk in
    let hooks = if p.pid < Array.length groups then groups.(p.pid) else [||] in
    let bnds = t.ebnds_of_pid.(p.pid) in
    let cyc0 = t.n_cycles in
    let hist = Array.length t.efmask > 0 in
    for k = 0 to t.elen - 1 do
      Clock.set_skew k;
      let fired = ref 0 in
      run_rules t p.pctx t.eorders.(k).(p.pid) fired ~cyc:(cyc0 + k)
        ~kbit:(if hist then k else -1);
      p.pfires.(k) <- !fired;
      for h = 0 to Array.length hooks - 1 do
        hooks.(h) ()
      done;
      for b = 0 to Array.length bnds - 1 do
        let bd = bnds.(b) in
        bd.eb_traj.(k) <-
          (if bd.eb_fwd then bd.eb_ops.Boundary.bo_enq_total ()
           else bd.eb_ops.Boundary.bo_deq_total ())
      done
    done;
    Clock.set_skew 0
  with
  | () -> ()
  | exception e ->
    Clock.set_skew 0;
    p.pexn <- Some e

let cycle_epoch t =
  let e = t.elen in
  let cyc0 = t.n_cycles in
  let hist = Array.length t.efmask > 0 in
  (* Draw the window's schedule permutations up front (main domain owns the
     RNG); each permutation is recorded globally (for history) and split
     per partition. *)
  (match t.rng with
  | Some rng ->
    let n = Array.length t.order in
    for k = 0 to e - 1 do
      shuffle rng t.order;
      Array.blit t.order 0 t.gorders.(k) 0 n;
      refill_orders t t.order t.eorders.(k)
    done
  | None -> ());
  (* Window-keyed partition audit: one key per window, so sharing across a
     window's phases is flagged wherever the touches land. *)
  if t.paudit then begin
    let key = Clock.uid t.clk in
    Kernel.set_audit_key t.ctx key;
    Array.iter (fun p -> Kernel.set_audit_key p.pctx key) t.parts
  end;
  (* Capture window-start boundary state. *)
  Array.iter
    (fun b ->
      let v =
        if b.eb_fwd then b.eb_ops.Boundary.bo_enq_total ()
        else b.eb_ops.Boundary.bo_deq_total ()
      in
      b.eb_start <- v;
      b.eb_vis <- v)
    t.ebnds;
  (* Build the hook split before dispatch so worker domains only read the
     cache, never construct it. *)
  let groups = Clock.hooks_by_partition t.clk in
  let uhooks = if Array.length groups > 0 then groups.(0) else [||] in
  (* Phase 1: partition free-run. *)
  if Array.length t.tasks = 0 then
    t.tasks <- Array.map (fun p -> fun () -> run_epoch_part t p) t.parts;
  if t.epar then Pool.run ~helpers:(min (t.jobs - 1) (Array.length t.parts - 1)) t.tasks
  else Array.iter (fun p -> run_epoch_part t p) t.parts;
  let first_exn = ref None in
  Array.iter
    (fun p ->
      (match p.pexn with
      | Some ex -> if !first_exn = None then first_exn := Some ex
      | None -> ());
      p.pexn <- None)
    t.parts;
  (match !first_exn with Some ex -> raise ex | None -> ());
  (* Phase 2: uncore replay, cycle by cycle. *)
  let wfired = ref 0 in
  Fun.protect
    ~finally:(fun () -> Clock.set_skew 0)
    (fun () ->
      for k = 0 to e - 1 do
        Clock.set_skew k;
        Array.iter
          (fun b ->
            let v = if k = 0 then b.eb_start else b.eb_traj.(k - 1) in
            let ops = b.eb_ops in
            if b.eb_fwd then begin
              ops.Boundary.bo_set_enq_snap v;
              ops.Boundary.bo_reset_dport ()
            end
            else begin
              ops.Boundary.bo_set_deq_snap v;
              ops.Boundary.bo_reset_eport ()
            end;
            if v <> b.eb_vis then begin
              ops.Boundary.bo_touch ();
              b.eb_vis <- v
            end)
          t.ebnds;
        let fired = ref 0 in
        Array.iter (fun p -> fired := !fired + p.pfires.(k)) t.parts;
        run_rules t t.ctx t.eorders.(k).(0) fired ~cyc:(cyc0 + k) ~kbit:(if hist then k else -1);
        wfired := !wfired + !fired;
        for h = 0 to Array.length uhooks - 1 do
          uhooks.(h) ()
        done
      done);
  (* Phase 3: window close. *)
  Array.iter (fun b -> b.eb_ops.Boundary.bo_refresh ()) t.ebnds;
  Clock.advance t.clk ~cycles:e;
  (match t.stats with Some s -> Stats.merge s | None -> ());
  if t.history_depth > 0 then begin
    for k = 0 to e - 1 do
      let names = ref [] in
      let go = t.gorders.(k) in
      for i = Array.length go - 1 downto 0 do
        let r = Array.unsafe_get go i in
        if t.efmask.(r.Rule.rid) land (1 lsl k) <> 0 then names := r.Rule.name :: !names
      done;
      t.history.((cyc0 + k) mod t.history_depth) <- (cyc0 + k, !names)
    done;
    Array.fill t.efmask 0 (Array.length t.efmask) 0
  end;
  t.n_cycles <- t.n_cycles + e;
  t.fires <- t.fires + !wfired;
  let hooks = end_hooks t in
  let this_cycle = cyc0 + e - 1 in
  for h = 0 to Array.length hooks - 1 do
    hooks.(h) this_cycle !wfired
  done;
  !wfired

(* The compiled cycle: one indirect call per rule through the specialized
   runner array (indexed by rid so Shuffle permutations cost nothing), with
   the fired count and history names accumulated in the sim record instead
   of per-cycle refs. The tier flags are restored before the end-of-cycle
   hooks so any code sharing [t.ctx] (monitors, snapshot glue, the next
   interpreted consumer) sees a fully checked context. *)
let cycle_compiled t =
  (match t.rng with Some rng -> shuffle rng t.order | None -> ());
  t.cfired <- 0;
  t.cnames <- [];
  let order = t.order in
  let runners = t.crunners in
  for i = 0 to Array.length order - 1 do
    (Array.unsafe_get runners (Array.unsafe_get order i).Rule.rid) ()
  done;
  Kernel.set_tier t.ctx ~chk:true ~log:true;
  let fired = t.cfired in
  if t.history_depth > 0 then
    t.history.(t.n_cycles mod t.history_depth) <- (t.n_cycles, List.rev t.cnames);
  t.cnames <- [];
  Clock.tick t.clk;
  let this_cycle = t.n_cycles in
  t.n_cycles <- t.n_cycles + 1;
  t.fires <- t.fires + fired;
  let hooks = end_hooks t in
  for h = 0 to Array.length hooks - 1 do
    hooks.(h) this_cycle fired
  done;
  fired

let cycle t =
  if t.elen > 1 then cycle_epoch t
  else if t.par then cycle_par t
  else if Array.length t.crunners > 0 then cycle_compiled t
  else cycle_serial t

let compiled t = Array.length t.crunners > 0
let compile_status t = t.cwhy
let compile_report t = t.creport
let compile_stats t = t.cstats

(* Both loops count simulated cycles via [n_cycles], not [cycle] calls: in
   epoch mode one call advances a whole window. *)
let run t n =
  let target = t.n_cycles + n in
  while t.n_cycles < target do
    ignore (cycle t)
  done

let run_until ?on_cycle t ~max_cycles pred =
  let start = t.n_cycles in
  let rec go () =
    let n = t.n_cycles - start in
    if pred () then `Done n
    else if n >= max_cycles then `Timeout n
    else begin
      (match on_cycle with Some f -> f n | None -> ());
      ignore (cycle t);
      go ()
    end
  in
  go ()

let pp_stats fmt t =
  Format.fprintf fmt "@[<v>cycles=%d fires=%d (%.2f rules/cycle)@," t.n_cycles t.fires
    (if t.n_cycles = 0 then 0.0 else float_of_int t.fires /. float_of_int t.n_cycles);
  List.iter
    (fun (r : Rule.t) ->
      Format.fprintf fmt "  %-28s fired=%-9d guard_failed=%-9d conflicted=%-6d skipped=%d@," r.name
        r.fired r.guard_failed r.conflicted r.skipped)
    t.rule_list;
  Format.fprintf fmt "@]"
