type mode = Multi | One_per_cycle | Shuffle of int

exception Audit_fail of string

type t = {
  clk : Clock.t;
  rule_list : Rule.t list;
  order : Rule.t array; (* attempt order; permuted in Shuffle mode *)
  mode : mode;
  rng : Random.State.t option;
  ctx : Kernel.ctx; (* one reusable transaction context for all attempts *)
  fastpath : bool; (* consult can_fire / park on watches *)
  audit : bool; (* never skip; dynamically check the can_fire contract *)
  mutable n_cycles : int;
  mutable fires : int;
  mutable rr : int; (* rotating start offset for One_per_cycle fairness *)
  (* observability (verification layer): a ring buffer of which rules fired
     each cycle, monitors that watch liveness, and post-cycle checks *)
  mutable history : (int * string list) array; (* (cycle, fired rule names) *)
  mutable history_depth : int;
  mutable monitors_rev : (t -> int -> unit) list; (* newest-first *)
  mutable post_cycle_rev : (int -> unit) list; (* newest-first *)
  mutable hooks_cache : (int -> int -> unit) array option;
      (* post-cycle checks then monitors, registration order, as one array *)
}

let create ?(mode = Multi) ?(fastpath = true) ?(audit = false) clk rules =
  let rng = match mode with Shuffle seed -> Some (Random.State.make [| seed |]) | Multi | One_per_cycle -> None in
  {
    clk;
    rule_list = rules;
    order = Array.of_list rules;
    mode;
    rng;
    ctx = Kernel.make_ctx clk;
    fastpath;
    audit;
    n_cycles = 0;
    fires = 0;
    rr = 0;
    history = [||];
    history_depth = 0;
    monitors_rev = [];
    post_cycle_rev = [];
    hooks_cache = None;
  }

let clock t = t.clk
let cycles t = t.n_cycles
let total_fires t = t.fires
let rules t = t.rule_list

let enable_history t ~depth =
  t.history_depth <- depth;
  t.history <- Array.make (max 1 depth) (-1, [])

let history t =
  if t.history_depth = 0 then []
  else
    List.filter
      (fun (c, _) -> c >= 0)
      (List.init t.history_depth (fun i ->
           t.history.((t.n_cycles + i) mod t.history_depth)))

let add_monitor t f =
  t.monitors_rev <- f :: t.monitors_rev;
  t.hooks_cache <- None

let on_post_cycle t f =
  t.post_cycle_rev <- f :: t.post_cycle_rev;
  t.hooks_cache <- None

(* One flat array of end-of-cycle callbacks: post-cycle checks first, then
   monitors, each set in registration order. Built lazily so registering a
   hook is O(1) (it used to be an O(n) list append per registration, and
   [cycle] walked two lists every cycle). *)
let end_hooks t =
  match t.hooks_cache with
  | Some a -> a
  | None ->
    let a =
      Array.of_list
        (List.rev_append
           (List.rev_map (fun f -> fun cyc _fired -> f cyc) (List.rev t.post_cycle_rev))
           (List.rev_map (fun f -> fun _cyc fired -> f t fired) t.monitors_rev))
    in
    t.hooks_cache <- Some a;
    a

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* Fast-path decision: should [r] be skipped without an attempt this cycle?
   Only rules carrying a [can_fire] predicate are ever skipped. A skippable
   rule with a (non-empty) watch set parks: while parked, the per-cycle cost
   is one generation-sum comparison; the predicate is re-evaluated only when
   a watched signal was touched. Watchless rules re-evaluate the predicate
   every cycle (still far cheaper than a transactional attempt). *)
let should_skip (r : Rule.t) =
  match r.can_fire with
  | None -> false
  | Some p ->
    if r.parked then
      if Wakeup.sum r.watches = r.park_sum then true
      else if p () then begin
        r.parked <- false;
        false
      end
      else begin
        r.park_sum <- Wakeup.sum r.watches;
        true
      end
    else if p () then false
    else begin
      if Array.length r.watches > 0 then begin
        r.parked <- true;
        r.park_sum <- Wakeup.sum r.watches
      end;
      true
    end

let cycle t =
  (match t.rng with Some rng -> shuffle rng t.order | None -> ());
  let fired = ref 0 in
  let fired_names = ref [] in
  let n = Array.length t.order in
  let stop = ref false in
  let base = if t.mode = One_per_cycle then t.rr else 0 in
  let ctx = t.ctx in
  let i = ref 0 in
  while not !stop && !i < n do
    let r = t.order.((base + !i) mod n) in
    incr i;
    if t.fastpath && (not t.audit) && should_skip r then begin
      (* Account the pruned attempt exactly as the seed scheduler would
         have: an attempt-wrapped ([vacuous]) body swallows its inner guard
         failure and "fires" vacuously; a bare guarded body fails its
         guard. This keeps fire counts, the history ring and One_per_cycle
         rotation bit-identical with the fast path on or off. *)
      r.Rule.skipped <- r.Rule.skipped + 1;
      if r.Rule.vacuous then begin
        r.Rule.fired <- r.Rule.fired + 1;
        incr fired;
        if t.history_depth > 0 then fired_names := r.Rule.name :: !fired_names;
        if t.mode = One_per_cycle then stop := true
      end
      else r.Rule.guard_failed <- r.Rule.guard_failed + 1
    end
    else begin
      (* Audit mode: attempt every rule (fast path disabled) and verify the
         one-sided can_fire contract — [false] must imply the body cannot
         commit anything this cycle. *)
      let claimed =
        if not t.audit then true
        else match r.Rule.can_fire with None -> true | Some p -> p ()
      in
      Kernel.set_rule_name ctx r.Rule.name;
      (match r.Rule.body ctx with
      | () ->
        if (not claimed) && ((not r.Rule.vacuous) || Kernel.undo_depth ctx > 0) then begin
          Kernel.rollback ctx;
          raise
            (Audit_fail
               (Printf.sprintf
                  "rule %s: can_fire returned false but the rule fired (cycle %d)"
                  r.Rule.name t.n_cycles))
        end;
        Kernel.reset_ctx ctx;
        r.Rule.fired <- r.Rule.fired + 1;
        incr fired;
        if t.history_depth > 0 then fired_names := r.Rule.name :: !fired_names;
        if t.mode = One_per_cycle then stop := true
      | exception Kernel.Guard_fail _ ->
        Kernel.rollback ctx;
        Kernel.reset_ctx ctx;
        r.Rule.guard_failed <- r.Rule.guard_failed + 1
      | exception Kernel.Retry msg ->
        Kernel.rollback ctx;
        Kernel.reset_ctx ctx;
        (* If nothing fired yet this cycle, the conflict is within the rule
           itself: no schedule can ever admit it. Fail loudly, like the BSV
           compiler rejecting an ill-formed rule. *)
        if !fired = 0 then raise (Kernel.Conflict_error msg);
        r.Rule.conflicted <- r.Rule.conflicted + 1)
    end
  done;
  if t.mode = One_per_cycle && n > 0 then t.rr <- (t.rr + 1) mod n;
  if t.history_depth > 0 then
    t.history.(t.n_cycles mod t.history_depth) <- (t.n_cycles, List.rev !fired_names);
  Clock.tick t.clk;
  let this_cycle = t.n_cycles in
  t.n_cycles <- t.n_cycles + 1;
  t.fires <- t.fires + !fired;
  let hooks = end_hooks t in
  for h = 0 to Array.length hooks - 1 do
    hooks.(h) this_cycle !fired
  done;
  !fired

let run t n =
  for _ = 1 to n do
    ignore (cycle t)
  done

let run_until ?on_cycle t ~max_cycles pred =
  let rec go n =
    if pred () then `Done n
    else if n >= max_cycles then `Timeout n
    else begin
      (match on_cycle with Some f -> f n | None -> ());
      ignore (cycle t);
      go (n + 1)
    end
  in
  go 0

let pp_stats fmt t =
  Format.fprintf fmt "@[<v>cycles=%d fires=%d (%.2f rules/cycle)@," t.n_cycles t.fires
    (if t.n_cycles = 0 then 0.0 else float_of_int t.fires /. float_of_int t.n_cycles);
  List.iter
    (fun (r : Rule.t) ->
      Format.fprintf fmt "  %-28s fired=%-9d guard_failed=%-9d conflicted=%-6d skipped=%d@," r.name
        r.fired r.guard_failed r.conflicted r.skipped)
    t.rule_list;
  Format.fprintf fmt "@]"
