type mode = Multi | One_per_cycle | Shuffle of int

exception Audit_fail of string
exception Partition_error of string

(* ---------------------------------------------------------------------- *)
(* Domain pool                                                            *)
(*                                                                        *)
(* One process-global pool, grown lazily and shared by every Sim so that  *)
(* repeated Machine builds (tests, fault campaigns) do not spawn domains  *)
(* per machine. Workers block on a condition variable between cycles: on  *)
(* few-core hosts a spinning barrier would fight the partitions for the   *)
(* CPU, and a blocked worker costs nothing. The mutex acquire/release     *)
(* around every task grab and completion also provides the happens-before *)
(* edges that make each partition's writes visible to the main domain at  *)
(* the barrier (and the main domain's inter-cycle writes visible to the   *)
(* partitions at dispatch).                                               *)
(* ---------------------------------------------------------------------- *)

module Pool = struct
  type t = {
    m : Mutex.t;
    work_cv : Condition.t;
    done_cv : Condition.t;
    mutable tasks : (unit -> unit) array;
    mutable next : int; (* index of the next unclaimed task *)
    mutable remaining : int; (* tasks not yet completed *)
    mutable max_helpers : int; (* workers allowed to participate this run *)
    mutable shutdown : bool;
    mutable nworkers : int;
    mutable domains : unit Domain.t list;
  }

  let p =
    {
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      tasks = [||];
      next = 0;
      remaining = 0;
      max_helpers = 0;
      shutdown = false;
      nworkers = 0;
      domains = [];
    }

  let finish_task () =
    Mutex.lock p.m;
    p.remaining <- p.remaining - 1;
    if p.remaining = 0 then Condition.signal p.done_cv;
    Mutex.unlock p.m

  (* Tasks trap their own exceptions (see [run_part]); the catch-all here
     only guards against a raising task deadlocking the barrier. *)
  let exec i = try (Array.unsafe_get p.tasks i) () with _ -> ()

  let rec worker id =
    Mutex.lock p.m;
    while
      (not p.shutdown)
      && (id >= p.max_helpers || p.next >= Array.length p.tasks)
    do
      Condition.wait p.work_cv p.m
    done;
    if p.shutdown then Mutex.unlock p.m
    else begin
      let i = p.next in
      p.next <- i + 1;
      Mutex.unlock p.m;
      exec i;
      finish_task ();
      worker id
    end

  let shutdown_registered = ref false

  (* Idempotent and reentrancy-safe: the CAS makes a second call — from a
     signal handler interrupting the first, from [at_exit] racing an
     explicit call, or from plain double-shutdown — return immediately
     instead of double-joining the domains or deadlocking on [p.m].
     Signal handlers should still prefer setting a flag and letting the
     main loop call this (see [riscyoo farm]): a handler that interrupts
     the pool mid-cycle would block in [Domain.join] until the cycle's
     tasks drain. *)
  let in_shutdown = Atomic.make false

  let shutdown () =
    if Atomic.compare_and_set in_shutdown false true then
      Fun.protect
        ~finally:(fun () -> Atomic.set in_shutdown false)
        (fun () ->
          Mutex.lock p.m;
          p.shutdown <- true;
          Condition.broadcast p.work_cv;
          Mutex.unlock p.m;
          List.iter Domain.join p.domains;
          p.domains <- [];
          p.nworkers <- 0;
          p.shutdown <- false)

  let ensure_workers n =
    if not !shutdown_registered then begin
      shutdown_registered := true;
      at_exit shutdown
    end;
    while p.nworkers < n do
      let id = p.nworkers in
      p.nworkers <- p.nworkers + 1;
      p.domains <- Domain.spawn (fun () -> worker id) :: p.domains
    done

  (* Run every task to completion; the calling (main) domain participates,
     plus at most [helpers] pool workers. *)
  let run ~helpers tasks =
    ensure_workers helpers;
    Mutex.lock p.m;
    p.tasks <- tasks;
    p.next <- 0;
    p.remaining <- Array.length tasks;
    p.max_helpers <- helpers;
    if helpers > 0 then Condition.broadcast p.work_cv;
    Mutex.unlock p.m;
    let continue = ref true in
    while !continue do
      Mutex.lock p.m;
      if p.next < Array.length p.tasks then begin
        let i = p.next in
        p.next <- i + 1;
        Mutex.unlock p.m;
        exec i;
        finish_task ()
      end
      else begin
        while p.remaining > 0 do
          Condition.wait p.done_cv p.m
        done;
        p.tasks <- [||] (* don't pin dead sims via task closures *);
        continue := false;
        Mutex.unlock p.m
      end
    done
end

(* ---------------------------------------------------------------------- *)

(* One parallel partition: its rules in schedule order, a private
   transaction context (own undo arena, stats shard, partition id), and the
   per-cycle results its domain publishes at the barrier. *)
type part = {
  pid : int;
  pctx : Kernel.ctx;
  porder : Rule.t array; (* refilled in place in Shuffle mode *)
  mutable pfired : int;
  mutable pexn : exn option;
}

type t = {
  clk : Clock.t;
  rule_list : Rule.t list;
  order : Rule.t array; (* attempt order; permuted in Shuffle mode *)
  mode : mode;
  mutable rng : Random.State.t option; (* mutable for [reseed] and restore *)
  ctx : Kernel.ctx; (* one reusable transaction context for all attempts *)
  fastpath : bool; (* consult can_fire / park on watches *)
  audit : bool; (* never skip; dynamically check the can_fire contract *)
  jobs : int;
  paudit : bool; (* serial execution + per-partition cell-touch audit *)
  par : bool; (* partitioned parallel execution active *)
  stats : Stats.t option; (* merged at the cycle barrier when [par] *)
  parts : part array; (* parallel partitions (pid >= 1), ascending *)
  order_of_pid : Rule.t array array; (* pid -> that partition's order *)
  fill : int array; (* scratch fill pointers for Shuffle refills *)
  mutable tasks : (unit -> unit) array; (* one per part, reused *)
  mutable n_cycles : int;
  mutable fires : int;
  mutable rr : int; (* rotating start offset for One_per_cycle fairness *)
  (* observability (verification layer): a ring buffer of which rules fired
     each cycle, monitors that watch liveness, and post-cycle checks *)
  mutable history : (int * string list) array; (* (cycle, fired rule names) *)
  mutable history_depth : int;
  mutable monitors_rev : (t -> int -> unit) list; (* newest-first *)
  mutable post_cycle_rev : (int -> unit) list; (* newest-first *)
  mutable hooks_cache : (int -> int -> unit) array option;
      (* post-cycle checks then monitors, registration order, as one array *)
  (* rule-level trace sink (observability layer). A flat bool guards every
     call site so the disabled cost is one load+branch per fire; the callback
     runs on whichever domain fired the rule, so a sink must write only
     per-partition state (see lib/obs). Skipped-but-vacuous rules are traced
     exactly like real fires, mirroring the fire-count accounting, so traces
     are bit-identical with the fast path on or off. *)
  mutable rtrace_on : bool;
  mutable rtrace : Rule.t -> int -> unit;
}

(* Static partition checker: prove, from the declared boundary tokens and
   watch sets, that no primitive is reachable from two different partitions.
   Rules declare the boundary primitives they touch ([Rule.make ~touches]);
   partition-private state is implicit and backstopped by the dynamic
   [partition_audit]. A conflict-free FIFO contributes one primitive per
   side, so its enq and deq halves may live in different partitions; a ring
   FIFO is a single primitive and is confined to one partition. *)
let check_partitions rules =
  let owner : (int, int * string * string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (r : Rule.t) ->
      Array.iter
        (fun tk ->
          let prim = Partition.prim tk in
          match Hashtbl.find_opt owner prim with
          | None -> Hashtbl.add owner prim (r.part, r.name, Partition.name tk)
          | Some (p0, r0, tk0) ->
            if p0 <> r.part then
              raise
                (Partition_error
                   (Printf.sprintf
                      "primitive %s is touched from partition %d (rule %s) and partition %d (rule %s, token %s); only the two sides of a conflict-free FIFO may cross a partition boundary"
                      tk0 p0 r0 r.part r.name (Partition.name tk))))
        r.touches)
    rules;
  List.iter
    (fun (r : Rule.t) ->
      if r.part > 0 then
        Array.iter
          (fun s ->
            let o = Wakeup.owner s in
            if o <> r.part && o <> Partition.uncore then
              raise
                (Partition_error
                   (Printf.sprintf
                      "rule %s (partition %d) watches a signal owned by partition %d; parallel rules may only watch their own partition's signals (or the uncore's, which are quiescent during the parallel phase)"
                      r.name r.part o)))
          r.watches)
    rules

(* Refill each partition's order array from the (possibly just shuffled)
   global order, one pass, preserving relative order — so the parallel
   schedule permutes exactly like the serial one. *)
let refill_partition_orders t =
  Array.fill t.fill 0 (Array.length t.fill) 0;
  for i = 0 to Array.length t.order - 1 do
    let r = Array.unsafe_get t.order i in
    let pid = r.Rule.part in
    let k = t.fill.(pid) in
    t.order_of_pid.(pid).(k) <- r;
    t.fill.(pid) <- k + 1
  done

let create ?(mode = Multi) ?(fastpath = true) ?(audit = false) ?(jobs = 1)
    ?(partition_audit = false) ?stats clk rules =
  if jobs < 1 then invalid_arg "Sim.create: jobs must be >= 1";
  let rng = match mode with Shuffle seed -> Some (Random.State.make [| seed |]) | Multi | One_per_cycle -> None in
  if jobs > 1 || partition_audit then check_partitions rules;
  let max_part = List.fold_left (fun m (r : Rule.t) -> max m r.Rule.part) 0 rules in
  (* Parallel execution applies when something can actually run off-main and
     the execution strategy is not inherently serial: One_per_cycle commits
     a single rule per cycle across the whole machine, and the two audit
     modes deliberately execute serially so their diagnostics are exact. *)
  let par =
    jobs > 1 && max_part > 0 && mode <> One_per_cycle && (not audit)
    && not partition_audit
  in
  let counts = Array.make (max_part + 1) 0 in
  List.iter (fun (r : Rule.t) -> counts.(r.Rule.part) <- counts.(r.Rule.part) + 1) rules;
  let order_of_pid =
    if par then Array.init (max_part + 1) (fun pid -> Array.make counts.(pid) (List.hd rules))
    else [||]
  in
  let fill = if par then Array.make (max_part + 1) 0 else [||] in
  let parts =
    if not par then [||]
    else
      Array.of_list
        (List.filter_map
           (fun pid ->
             if counts.(pid) = 0 then None
             else begin
               let pctx = Kernel.make_ctx clk in
               Kernel.set_partition pctx pid;
               Kernel.set_stats_slot pctx pid;
               Some { pid; pctx; porder = order_of_pid.(pid); pfired = 0; pexn = None }
             end)
           (List.init max_part (fun i -> i + 1)))
  in
  (match stats with Some s when par -> Stats.prepare s ~slots:(max_part + 1) | _ -> ());
  let t =
    {
      clk;
      rule_list = rules;
      order = Array.of_list rules;
      mode;
      rng;
      ctx = Kernel.make_ctx clk;
      fastpath;
      audit;
      jobs;
      paudit = partition_audit;
      par;
      stats;
      parts;
      order_of_pid;
      fill;
      tasks = [||];
      n_cycles = 0;
      fires = 0;
      rr = 0;
      history = [||];
      history_depth = 0;
      monitors_rev = [];
      post_cycle_rev = [];
      hooks_cache = None;
      rtrace_on = false;
      rtrace = (fun _ _ -> ());
    }
  in
  Kernel.set_partition_audit t.ctx partition_audit;
  if par then refill_partition_orders t;
  (* Stamp every rule with its index in the canonical (rule_list) order.
     [Obs.Hub] stamps the same indices from the same list, so the two
     agree; the stamps let the snapshot express the current schedule
     permutation as plain indices. *)
  let rules_arr = Array.of_list rules in
  Array.iteri (fun i (r : Rule.t) -> r.Rule.rid <- i) rules_arr;
  State.register ~name:"sim.sched"
    ~save:(fun () ->
      let ord = Array.map (fun (r : Rule.t) -> r.Rule.rid) t.order in
      let per_rule =
        Array.map
          (fun (r : Rule.t) ->
            (r.Rule.fired, r.Rule.guard_failed, r.Rule.conflicted, r.Rule.skipped,
             r.Rule.last_fired))
          rules_arr
      in
      Obj.repr
        ( t.n_cycles,
          t.fires,
          t.rr,
          ord,
          Option.map Random.State.copy t.rng,
          per_rule,
          (Array.copy t.history, t.history_depth) ))
    ~load:(fun o ->
      let ( n_cycles,
            fires,
            rr,
            (ord : int array),
            (rng : Random.State.t option),
            (per_rule : (int * int * int * int * int) array),
            ((history : (int * string list) array), history_depth) ) =
        Obj.obj o
      in
      t.n_cycles <- n_cycles;
      t.fires <- fires;
      t.rr <- rr;
      Array.iteri (fun i rid -> t.order.(i) <- rules_arr.(rid)) ord;
      t.rng <- rng;
      Array.iteri
        (fun i (fired, guard_failed, conflicted, skipped, last_fired) ->
          let r = rules_arr.(i) in
          r.Rule.fired <- fired;
          r.Rule.guard_failed <- guard_failed;
          r.Rule.conflicted <- conflicted;
          r.Rule.skipped <- skipped;
          r.Rule.last_fired <- last_fired;
          (* Wakeup generations are not snapshotted: un-parking every rule
             forces predicate re-evaluation, which cannot change fire
             counts (skip accounting depends only on predicate results). *)
          r.Rule.parked <- false;
          r.Rule.park_sum <- 0)
        per_rule;
      t.history <- history;
      t.history_depth <- history_depth;
      if t.par then refill_partition_orders t);
  t

let clock t = t.clk
let cycles t = t.n_cycles
let total_fires t = t.fires
let rules t = t.rule_list
let jobs t = t.jobs
let parallel t = t.par
let shutdown_pool () = Pool.shutdown ()
let pool_run ~helpers tasks = Pool.run ~helpers tasks

(* Re-key the Shuffle schedule: reset the attempt order to the canonical
   rule order and replace the RNG, exactly the state a cold machine built
   with [Shuffle seed] starts from. Restoring a cycle-0 snapshot and
   reseeding is therefore schedule-identical to a cold build with that
   seed — the warm-fork path. No-op outside Shuffle mode. *)
let reseed t seed =
  match t.mode with
  | Shuffle _ ->
    List.iteri (fun i r -> t.order.(i) <- r) t.rule_list;
    t.rng <- Some (Random.State.make [| seed |]);
    if t.par then refill_partition_orders t
  | Multi | One_per_cycle -> ()

let enable_history t ~depth =
  t.history_depth <- depth;
  t.history <- Array.make (max 1 depth) (-1, [])

let history t =
  if t.history_depth = 0 then []
  else
    List.filter
      (fun (c, _) -> c >= 0)
      (List.init t.history_depth (fun i ->
           t.history.((t.n_cycles + i) mod t.history_depth)))

let set_rule_trace t f =
  t.rtrace <- f;
  t.rtrace_on <- true

let clear_rule_trace t =
  t.rtrace_on <- false;
  t.rtrace <- (fun _ _ -> ())

let add_monitor t f =
  t.monitors_rev <- f :: t.monitors_rev;
  t.hooks_cache <- None

let on_post_cycle t f =
  t.post_cycle_rev <- f :: t.post_cycle_rev;
  t.hooks_cache <- None

(* One flat array of end-of-cycle callbacks: post-cycle checks first, then
   monitors, each set in registration order. Built lazily so registering a
   hook is O(1) (it used to be an O(n) list append per registration, and
   [cycle] walked two lists every cycle). *)
let end_hooks t =
  match t.hooks_cache with
  | Some a -> a
  | None ->
    let a =
      Array.of_list
        (List.rev_append
           (List.rev_map (fun f -> fun cyc _fired -> f cyc) (List.rev t.post_cycle_rev))
           (List.rev_map (fun f -> fun _cyc fired -> f t fired) t.monitors_rev))
    in
    t.hooks_cache <- Some a;
    a

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* Fast-path decision: should [r] be skipped without an attempt this cycle?
   Only rules carrying a [can_fire] predicate are ever skipped. A skippable
   rule with a (non-empty) watch set parks: while parked, the per-cycle cost
   is one generation-sum comparison; the predicate is re-evaluated only when
   a watched signal was touched. Watchless rules re-evaluate the predicate
   every cycle (still far cheaper than a transactional attempt). *)
let should_skip (r : Rule.t) =
  match r.can_fire with
  | None -> false
  | Some p ->
    if r.parked then
      if Wakeup.sum r.watches = r.park_sum then true
      else if p () then begin
        r.parked <- false;
        false
      end
      else begin
        r.park_sum <- Wakeup.sum r.watches;
        true
      end
    else if p () then false
    else begin
      if Array.length r.watches > 0 then begin
        r.parked <- true;
        r.park_sum <- Wakeup.sum r.watches
      end;
      true
    end

let cycle_serial t =
  (match t.rng with Some rng -> shuffle rng t.order | None -> ());
  let fired = ref 0 in
  let fired_names = ref [] in
  let n = Array.length t.order in
  let stop = ref false in
  let base = if t.mode = One_per_cycle then t.rr else 0 in
  let ctx = t.ctx in
  let i = ref 0 in
  while not !stop && !i < n do
    let r = t.order.((base + !i) mod n) in
    incr i;
    if t.fastpath && (not t.audit) && should_skip r then begin
      (* Account the pruned attempt exactly as the seed scheduler would
         have: an attempt-wrapped ([vacuous]) body swallows its inner guard
         failure and "fires" vacuously; a bare guarded body fails its
         guard. This keeps fire counts, the history ring and One_per_cycle
         rotation bit-identical with the fast path on or off. *)
      r.Rule.skipped <- r.Rule.skipped + 1;
      if r.Rule.vacuous then begin
        r.Rule.fired <- r.Rule.fired + 1;
        incr fired;
        if t.rtrace_on then t.rtrace r t.n_cycles;
        if t.history_depth > 0 then fired_names := r.Rule.name :: !fired_names;
        if t.mode = One_per_cycle then stop := true
      end
      else r.Rule.guard_failed <- r.Rule.guard_failed + 1
    end
    else begin
      (* Audit mode: attempt every rule (fast path disabled) and verify the
         one-sided can_fire contract — [false] must imply the body cannot
         commit anything this cycle. *)
      let claimed =
        if not t.audit then true
        else match r.Rule.can_fire with None -> true | Some p -> p ()
      in
      Kernel.set_rule_name ctx r.Rule.name;
      if t.paudit then Kernel.set_partition ctx r.Rule.part;
      (match r.Rule.body ctx with
      | () ->
        if (not claimed) && ((not r.Rule.vacuous) || Kernel.undo_depth ctx > 0) then begin
          Kernel.rollback ctx;
          raise
            (Audit_fail
               (Printf.sprintf
                  "rule %s: can_fire returned false but the rule fired (cycle %d)"
                  r.Rule.name t.n_cycles))
        end;
        Kernel.reset_ctx ctx;
        r.Rule.fired <- r.Rule.fired + 1;
        incr fired;
        if t.rtrace_on then t.rtrace r t.n_cycles;
        if t.history_depth > 0 then fired_names := r.Rule.name :: !fired_names;
        if t.mode = One_per_cycle then stop := true
      | exception Kernel.Guard_fail _ ->
        Kernel.rollback ctx;
        Kernel.reset_ctx ctx;
        r.Rule.guard_failed <- r.Rule.guard_failed + 1
      | exception Kernel.Retry msg ->
        Kernel.rollback ctx;
        Kernel.reset_ctx ctx;
        (* If nothing fired yet this cycle, the conflict is within the rule
           itself: no schedule can ever admit it. Fail loudly, like the BSV
           compiler rejecting an ill-formed rule. *)
        if !fired = 0 then raise (Kernel.Conflict_error msg);
        r.Rule.conflicted <- r.Rule.conflicted + 1)
    end
  done;
  if t.mode = One_per_cycle && n > 0 then t.rr <- (t.rr + 1) mod n;
  if t.history_depth > 0 then
    t.history.(t.n_cycles mod t.history_depth) <- (t.n_cycles, List.rev !fired_names);
  Clock.tick t.clk;
  let this_cycle = t.n_cycles in
  t.n_cycles <- t.n_cycles + 1;
  t.fires <- t.fires + !fired;
  let hooks = end_hooks t in
  for h = 0 to Array.length hooks - 1 do
    hooks.(h) this_cycle !fired
  done;
  !fired

(* Attempt every rule of [order] on [ctx], accumulating into [fired]. Same
   skip accounting as the serial loop; additionally stamps [last_fired] so
   the firing history can be reconstructed in global schedule order after
   the barrier. [fired] starts at 0 for a parallel partition — during the
   parallel phase a partition's cells are touched by that partition alone,
   so a Retry with no local fire is a genuine single-rule conflict — and at
   the parallel total for the uncore, preserving the serial semantics. *)
let run_rules t ctx (order : Rule.t array) (fired : int ref) =
  let cyc = t.n_cycles in
  for i = 0 to Array.length order - 1 do
    let r = Array.unsafe_get order i in
    if t.fastpath && should_skip r then begin
      r.Rule.skipped <- r.Rule.skipped + 1;
      if r.Rule.vacuous then begin
        r.Rule.fired <- r.Rule.fired + 1;
        r.Rule.last_fired <- cyc;
        incr fired;
        if t.rtrace_on then t.rtrace r cyc
      end
      else r.Rule.guard_failed <- r.Rule.guard_failed + 1
    end
    else begin
      Kernel.set_rule_name ctx r.Rule.name;
      match r.Rule.body ctx with
      | () ->
        Kernel.reset_ctx ctx;
        r.Rule.fired <- r.Rule.fired + 1;
        r.Rule.last_fired <- cyc;
        incr fired;
        if t.rtrace_on then t.rtrace r cyc
      | exception Kernel.Guard_fail _ ->
        Kernel.rollback ctx;
        Kernel.reset_ctx ctx;
        r.Rule.guard_failed <- r.Rule.guard_failed + 1
      | exception Kernel.Retry msg ->
        Kernel.rollback ctx;
        Kernel.reset_ctx ctx;
        if !fired = 0 then raise (Kernel.Conflict_error msg);
        r.Rule.conflicted <- r.Rule.conflicted + 1
    end
  done

let run_part t (p : part) =
  match
    let fired = ref 0 in
    run_rules t p.pctx p.porder fired;
    p.pfired <- !fired
  with
  | () -> ()
  | exception e -> p.pexn <- Some e

let cycle_par t =
  (match t.rng with
  | Some rng ->
    shuffle rng t.order;
    refill_partition_orders t
  | None -> ());
  if Array.length t.tasks = 0 then
    t.tasks <- Array.map (fun p -> fun () -> run_part t p) t.parts;
  Pool.run ~helpers:(min (t.jobs - 1) (Array.length t.parts - 1)) t.tasks;
  (* Barrier passed: every partition's writes are visible. Collect results,
     re-raising the lowest-partition exception (deterministic pick). *)
  let fired = ref 0 in
  let first_exn = ref None in
  Array.iter
    (fun p ->
      (match p.pexn with
      | Some e -> if !first_exn = None then first_exn := Some e
      | None -> ());
      p.pexn <- None;
      fired := !fired + p.pfired)
    t.parts;
  (match !first_exn with Some e -> raise e | None -> ());
  (* Uncore: serial, on the main context, after every partition is done. *)
  run_rules t t.ctx t.order_of_pid.(0) fired;
  if t.history_depth > 0 then begin
    let names = ref [] in
    for i = Array.length t.order - 1 downto 0 do
      let r = Array.unsafe_get t.order i in
      if r.Rule.last_fired = t.n_cycles then names := r.Rule.name :: !names
    done;
    t.history.(t.n_cycles mod t.history_depth) <- (t.n_cycles, !names)
  end;
  Clock.tick t.clk;
  (match t.stats with Some s -> Stats.merge s | None -> ());
  let this_cycle = t.n_cycles in
  t.n_cycles <- t.n_cycles + 1;
  t.fires <- t.fires + !fired;
  let hooks = end_hooks t in
  for h = 0 to Array.length hooks - 1 do
    hooks.(h) this_cycle !fired
  done;
  !fired

let cycle t = if t.par then cycle_par t else cycle_serial t

let run t n =
  for _ = 1 to n do
    ignore (cycle t)
  done

let run_until ?on_cycle t ~max_cycles pred =
  let rec go n =
    if pred () then `Done n
    else if n >= max_cycles then `Timeout n
    else begin
      (match on_cycle with Some f -> f n | None -> ());
      ignore (cycle t);
      go (n + 1)
    end
  in
  go 0

let pp_stats fmt t =
  Format.fprintf fmt "@[<v>cycles=%d fires=%d (%.2f rules/cycle)@," t.n_cycles t.fires
    (if t.n_cycles = 0 then 0.0 else float_of_int t.fires /. float_of_int t.n_cycles);
  List.iter
    (fun (r : Rule.t) ->
      Format.fprintf fmt "  %-28s fired=%-9d guard_failed=%-9d conflicted=%-6d skipped=%d@," r.name
        r.fired r.guard_failed r.conflicted r.skipped)
    t.rule_list;
  Format.fprintf fmt "@]"
