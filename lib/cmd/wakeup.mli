(** Generation-counter wakeup signals for the fast-path scheduler.

    Every state primitive that can unblock a rule (EHR, FIFO, wire) owns a
    signal and {!touch}es it when its observable value changes. A rule
    parked by the scheduler records {!sum} over its watch set; since
    generations only grow, the sum changes iff any watched signal was
    touched since parking. Spurious touches are harmless (one extra
    predicate evaluation); a missed touch could strand a parked rule, so
    primitives touch conservatively. *)

type signal

val make : unit -> signal

(** Bump the generation: some observer's view of this primitive may have
    changed. *)
val touch : signal -> unit

val gen : signal -> int

(** The partition that was ambient when the signal was created — i.e. the
    partition whose primitives may touch it. The static partition checker
    requires every signal watched by a parallel rule to be owned by that
    rule's partition or by the uncore (uncore touches happen strictly
    between parallel phases, so they are race-free and monotone). *)
val owner : signal -> int

(** Sum of the generations of a watch set (O(n), allocation-free). *)
val sum : signal array -> int
