(* Registry of cross-partition boundary FIFOs (Fifo.cf), collected at
   elaboration the same way State collects snapshot fields: construction
   code runs inside [collecting], and every conflict-free FIFO built in
   that scope registers an [ops] record via [note]. The epoch engine
   (Sim ~epoch) is the only consumer: the records carry everything it
   needs to derive the lookahead bound and to replay boundary visibility
   cycle-by-cycle without knowing the FIFO's element type. *)

type ops = {
  bo_name : string;
  (* Partition-token prim ids of the two sides. Which partition each side
     lives in is decided by the rules that claim the tokens, so the
     scheduler resolves these against its ownership table at create. *)
  bo_enq_tk : int;
  bo_deq_tk : int;
  bo_ctor_part : int; (* ambient partition at construction: owns the
                         FIFO's cycle-end hook *)
  bo_prim : int;      (* Conflict.prim pid, for partition-audit exemption *)
  bo_lookahead : int option;
      (* declared minimum response latency in cycles; [None] = undeclared
         (contributes the trivial bound of 1 to the epoch length) *)
  bo_enq_total : unit -> int;
  bo_deq_total : unit -> int;
  bo_set_enq_snap : int -> unit;
  bo_set_deq_snap : int -> unit;
  bo_reset_eport : unit -> unit;
  bo_reset_dport : unit -> unit;
  bo_touch : unit -> unit; (* wake rules parked on the FIFO's signal *)
  bo_refresh : unit -> unit; (* the FIFO's own end-of-cycle snapshot hook *)
}

(* Domain-local armed collector: [note] is a no-op unless the calling
   domain is inside [collecting]. Machine construction is single-domain,
   so a plain DLS slot suffices (and nested machines each see only their
   own boundaries). *)
let collector : ops list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let note o =
  match !(Domain.DLS.get collector) with
  | None -> ()
  | Some l -> l := o :: !l

let collecting f =
  let slot = Domain.DLS.get collector in
  let saved = !slot in
  let l = ref [] in
  slot := Some l;
  Fun.protect
    ~finally:(fun () -> slot := saved)
    (fun () ->
      let r = f () in
      (r, List.rev !l))

(* The boundaries registered so far in the current [collecting] scope —
   [Sim.create] runs inside machine construction and reads the registry
   before the scope closes. Empty when no collection is armed. *)
let ambient () =
  match !(Domain.DLS.get collector) with None -> [] | Some l -> List.rev !l
