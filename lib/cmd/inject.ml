(* Registry of injectable state for fault-injection campaigns.

   Primitive state elements (EHRs — and through them Regs and FIFOs — plus
   any module that owns raw arrays, like the PRF) register a [site] when the
   registry is armed: a name, a notional bit-width, and a closure that flips
   one bit of the live value in place. A campaign driver picks a site, a bit
   and a cycle, and calls [fire].

   The registry is disarmed by default so ordinary simulations pay nothing
   (one branch per state-element construction) and hold no closures over
   dead machines. A campaign arms it, builds a fresh machine, reads the
   sites, runs the trial, and re-arms (which clears) for the next trial. *)

type site = {
  id : int;
  name : string;
  width : int;  (** bits eligible for flipping: [0, width) *)
  flip : int -> bool;
      (** [flip bit] XORs bit [bit] into the current value; returns [false]
          when the value's runtime representation cannot be flipped safely
          (e.g. a boxed value behind a polymorphic cell). *)
}

let armed = ref false
let store : site list ref = ref []
let n = ref 0

let arm () =
  armed := true;
  store := [];
  n := 0

let disarm () =
  armed := false;
  store := [];
  n := 0

let is_armed () = !armed

let register ~name ~width flip =
  if !armed then begin
    store := { id = !n; name; width = max 1 width; flip } :: !store;
    incr n
  end

let n_sites () = !n
let sites () = Array.of_list (List.rev !store)

let fire site bit = site.flip (bit mod site.width)
