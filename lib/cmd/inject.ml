(* Registry of injectable state for fault-injection campaigns.

   Primitive state elements (EHRs — and through them Regs and FIFOs — plus
   any module that owns raw arrays, like the PRF) register a [site] when the
   registry is armed: a name, a notional bit-width, and a closure that flips
   one bit of the live value in place. A campaign driver picks a site, a bit
   and a cycle, and calls [fire].

   The registry is disarmed by default so ordinary simulations pay nothing
   (one branch per state-element construction) and hold no closures over
   dead machines. A campaign arms it, builds a fresh machine, reads the
   sites, runs the trial, and re-arms (which clears) for the next trial. *)

type site = {
  id : int;
  name : string;
  width : int;  (** bits eligible for flipping: [0, width) *)
  flip : int -> bool;
      (** [flip bit] XORs bit [bit] into the current value; returns [false]
          when the value's runtime representation cannot be flipped safely
          (e.g. a boxed value behind a polymorphic cell). *)
}

(* Domain-local: fault campaigns running as farm jobs arm/build/disarm on
   their own worker domain without seeing each other's sites. *)
type reg = { mutable armed : bool; mutable store : site list; mutable n : int }

let reg : reg Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { armed = false; store = []; n = 0 })

let arm () =
  let r = Domain.DLS.get reg in
  r.armed <- true;
  r.store <- [];
  r.n <- 0

let disarm () =
  let r = Domain.DLS.get reg in
  r.armed <- false;
  r.store <- [];
  r.n <- 0

let is_armed () = (Domain.DLS.get reg).armed

let register ~name ~width flip =
  let r = Domain.DLS.get reg in
  if r.armed then begin
    r.store <- { id = r.n; name; width = max 1 width; flip } :: r.store;
    r.n <- r.n + 1
  end

let n_sites () = (Domain.DLS.get reg).n
let sites () = Array.of_list (List.rev (Domain.DLS.get reg).store)

let fire site bit = site.flip (bit mod site.width)
