type 'a t = {
  wcell : Kernel.cell; (* write/write conflicts only; reads are untracked *)
  prim : Conflict.prim;
  mutable cur : 'a;
  mutable nxt : 'a option;
}

let create ?name clk init =
  let nm = match name with Some n -> n ^ ".w" | None -> "configreg.w" in
  let prim = Conflict.fresh_prim nm in
  let wcell = Kernel.make_cell nm in
  Kernel.set_cell_prim wcell prim.Conflict.pid;
  let t = { wcell; prim; cur = init; nxt = None } in
  Clock.on_cycle_end clk (fun () ->
      (match t.nxt with Some v -> t.cur <- v | None -> ());
      t.nxt <- None);
  State.field ~name:(match name with Some n -> n | None -> "configreg")
    (fun () -> (t.cur, t.nxt))
    (fun (cur, nxt) ->
      t.cur <- cur;
      t.nxt <- nxt);
  t

let read _ctx t = t.cur

let write ctx t v =
  Kernel.record_write ctx t.wcell 0;
  let old = t.nxt in
  Kernel.on_abort ctx (fun () -> t.nxt <- old);
  t.nxt <- Some v

let peek t = match t.nxt with Some v -> v | None -> t.cur
let poke t v = t.cur <- v
let fp_write t = Conflict.atom ~prim:t.prim ~label:"w" [ (true, 0, 0) ]
