type t = {
  mutable now : int;
  mutable uid : int;
  mutable hooks : (unit -> unit) list;
  mutable cache : (unit -> unit) array option;
}

(* [now] is architectural time: it is snapshotted, and a restore rewinds
   it. [uid] is a process-lifetime cycle identity for the kernel's lazily
   reset per-cycle caches (cell access summaries): it ticks with [now] but
   never goes backward — a restore bumps it instead, so every stamp
   written before the restore is strictly older than the post-restore
   cycle. Keying those caches on [now] would let a stale summary alias a
   later run of the same machine when the rewound clock catches up to the
   cycle the stamp was written at. *)
let create () =
  let t = { now = 0; uid = 0; hooks = []; cache = None } in
  State.field ~name:"clock"
    (fun () -> t.now)
    (fun v ->
      t.now <- v;
      t.uid <- t.uid + 1);
  t

let now t = t.now
let uid t = t.uid

let on_cycle_end t f =
  t.hooks <- f :: t.hooks;
  t.cache <- None

let tick t =
  let hooks =
    match t.cache with
    | Some a -> a
    | None ->
      (* Hooks affect independent primitives, so order is immaterial; we run
         them oldest-first for reproducibility. *)
      let a = Array.of_list (List.rev t.hooks) in
      t.cache <- Some a;
      a
  in
  Array.iter (fun f -> f ()) hooks;
  t.now <- t.now + 1;
  t.uid <- t.uid + 1
