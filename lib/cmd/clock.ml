type t = {
  mutable now : int;
  mutable uid : int;
  mutable hooks : (int * (unit -> unit)) list; (* (owning partition, hook) *)
  mutable cache : (unit -> unit) array option;
  mutable split : (unit -> unit) array array option;
}

(* [now] is architectural time: it is snapshotted, and a restore rewinds
   it. [uid] is a process-lifetime cycle identity for the kernel's lazily
   reset per-cycle caches (cell access summaries): it ticks with [now] but
   never goes backward — a restore bumps it instead, so every stamp
   written before the restore is strictly older than the post-restore
   cycle. Keying those caches on [now] would let a stale summary alias a
   later run of the same machine when the rewound clock catches up to the
   cycle the stamp was written at.

   [skew] is a domain-local offset added to both [now] and [uid]: during an
   epoch window (Sim ~epoch) a partition free-running local cycle [k] of
   the window reads architectural time [window_start + k] even though the
   shared clock fields only advance once per window (Sim calls [advance]
   at the window close). Keeping the offset in domain-local storage means
   concurrently free-running partitions each see their own local cycle
   without touching the shared record. Outside epoch mode the skew is 0
   and both reads behave exactly as before. *)
let skew_key = Domain.DLS.new_key (fun () -> ref 0)

let set_skew k = Domain.DLS.get skew_key := k

let create () =
  let t = { now = 0; uid = 0; hooks = []; cache = None; split = None } in
  State.field ~name:"clock"
    (fun () -> t.now)
    (fun v ->
      t.now <- v;
      t.uid <- t.uid + 1);
  t

let now t = t.now + !(Domain.DLS.get skew_key)
let uid t = t.uid + !(Domain.DLS.get skew_key)

let on_cycle_end t f =
  t.hooks <- (Partition.ambient (), f) :: t.hooks;
  t.cache <- None;
  t.split <- None

let tick t =
  let hooks =
    match t.cache with
    | Some a -> a
    | None ->
      (* Hooks affect independent primitives, so order is immaterial; we run
         them oldest-first for reproducibility. *)
      let a = Array.of_list (List.rev_map snd t.hooks) in
      t.cache <- Some a;
      a
  in
  Array.iter (fun f -> f ()) hooks;
  t.now <- t.now + 1;
  t.uid <- t.uid + 1

(* Epoch support: the same hooks, grouped by the partition that registered
   them (oldest-first within a group, as in [tick]). The epoch engine runs
   group [p] after each of partition [p]'s local cycles and group 0 after
   each uncore replay cycle, so every hook still runs exactly once per
   simulated cycle, on the domain that owns its primitives. *)
let hooks_by_partition t =
  match t.split with
  | Some s -> s
  | None ->
    let maxp = List.fold_left (fun m (p, _) -> max m p) 0 t.hooks in
    let s = Array.make (maxp + 1) [] in
    List.iter (fun (p, f) -> s.(p) <- f :: s.(p)) t.hooks;
    let s = Array.map Array.of_list s in
    t.split <- Some s;
    s

(* Advance time without running any hooks: the epoch engine has already run
   each partition's hook group once per local cycle. *)
let advance t ~cycles =
  t.now <- t.now + cycles;
  t.uid <- t.uid + cycles
