type counter = { name : string; mutable v : int; mutable shards : int array }
type t = { prefix : string; tbl : (string, counter) Hashtbl.t }

let shard_sum c =
  let acc = ref 0 in
  for i = 0 to Array.length c.shards - 1 do
    acc := !acc + c.shards.(i)
  done;
  !acc

let create ?(prefix = "") () =
  let t = { prefix; tbl = Hashtbl.create 64 } in
  (* Snapshot as sorted (name, folded value) pairs: counter records are
     captured by rule closures at build time, so restore writes values back
     into the existing records by name. Taken at a cycle barrier the shards
     are already folded; [set] zeroes them regardless. *)
  State.register ~name:"stats"
    ~save:(fun () ->
      Obj.repr
        (Array.of_list
           (Hashtbl.fold (fun _ c acc -> (c.name, c.v + shard_sum c) :: acc) t.tbl []
           |> List.sort (fun (a, _) (b, _) -> String.compare a b))))
    ~load:(fun o ->
      let pairs : (string * int) array = Obj.obj o in
      Hashtbl.iter
        (fun _ c ->
          c.v <- 0;
          Array.fill c.shards 0 (Array.length c.shards) 0)
        t.tbl;
      Array.iter
        (fun (name, v) ->
          match Hashtbl.find_opt t.tbl name with
          | Some c -> c.v <- v
          | None -> Hashtbl.add t.tbl name { name; v; shards = [||] })
        pairs);
  t

let counter t name =
  let name = t.prefix ^ name in
  match Hashtbl.find_opt t.tbl name with
  | Some c -> c
  | None ->
    let c = { name; v = 0; shards = [||] } in
    Hashtbl.add t.tbl name c;
    c

(* Parallel rule bodies accumulate into a per-partition shard (indexed by
   the ctx's stats_slot) instead of the shared [v]; the scheduler folds the
   shards into [v] at every cycle barrier. Each counter is only ever
   incremented by one parallel partition (its owning core cluster) plus
   possibly the serial uncore, so growing the shard array inside [incr] is
   single-writer and safe; [Sim] pre-sizes every counter anyway so growth
   never happens mid-run in practice. *)
let ensure_shards c n =
  if Array.length c.shards < n then begin
    let bigger = Array.make n 0 in
    Array.blit c.shards 0 bigger 0 (Array.length c.shards);
    c.shards <- bigger
  end

let incr ?ctx ?(by = 1) c =
  match ctx with
  | Some ctx ->
    let s = Kernel.stats_slot ctx in
    if s >= 0 then begin
      ensure_shards c (s + 1);
      let old = c.shards.(s) in
      Kernel.on_abort ctx (fun () -> c.shards.(s) <- old);
      c.shards.(s) <- old + by
    end
    else begin
      let old = c.v in
      Kernel.on_abort ctx (fun () -> c.v <- old);
      c.v <- c.v + by
    end
  | None -> c.v <- c.v + by

let get c = c.v + shard_sum c

let set c v =
  c.v <- v;
  Array.fill c.shards 0 (Array.length c.shards) 0

let find t name =
  match Hashtbl.find_opt t.tbl (t.prefix ^ name) with Some c -> get c | None -> 0

let prepare t ~slots = Hashtbl.iter (fun _ c -> ensure_shards c slots) t.tbl

let merge t =
  Hashtbl.iter
    (fun _ c ->
      let sh = c.shards in
      for i = 0 to Array.length sh - 1 do
        let s = Array.unsafe_get sh i in
        if s <> 0 then begin
          c.v <- c.v + s;
          Array.unsafe_set sh i 0
        end
      done)
    t.tbl

let to_list t =
  Hashtbl.fold (fun _ c acc -> (c.name, get c) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.iter
    (fun _ c ->
      c.v <- 0;
      Array.fill c.shards 0 (Array.length c.shards) 0)
    t.tbl

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (n, v) -> Format.fprintf fmt "%-32s %d@," n v) (to_list t);
  Format.fprintf fmt "@]"
