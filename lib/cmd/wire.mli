(** Intra-cycle wires (BSV's [RWire]): the carrier of bypass paths.

    A wire holds a value only within a cycle: [set] publishes a value, [get]
    observes it from rules scheduled later in the same cycle, and the wire
    empties at the cycle boundary. Conflict matrix: [set < get],
    [set C set]. The OOO core's bypass network (paper, Section V-A) is a set
    of wires: Exec/Reg-Write rules [set] ALU results, Reg-Read rules [get]
    them in the same cycle. *)

type 'a t

val create : ?name:string -> Clock.t -> unit -> 'a t

(** Publish a value for the remainder of the cycle. *)
val set : Kernel.ctx -> 'a t -> 'a -> unit

(** [get ctx w] is [Some v] if an earlier rule [set v] this cycle. *)
val get : Kernel.ctx -> 'a t -> 'a option

(** [get_exn] guards on the wire being set. *)
val get_exn : Kernel.ctx -> 'a t -> 'a

val peek : 'a t -> 'a option

(** The underlying EHR's wakeup signal (touched on [set] and on the
    cycle-boundary drain of a non-empty wire). *)
val signal : 'a t -> Wakeup.signal

(** Footprint atoms for [Rule.make ~fp]: [set < get], [set C set]. *)
val fp_set : 'a t -> Conflict.atom

val fp_get : 'a t -> Conflict.atom
