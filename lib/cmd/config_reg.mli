(** Configuration registers: reads are conflict-free with the write.

    A read always returns the value the register held at the start of the
    cycle, no matter which rules have written it meanwhile; the last write of
    the cycle takes effect at the cycle boundary. Conflict matrix:
    [read CF read], [read CF write], [write C write].

    Use these for state consulted by many rules whose relative schedule order
    should not be constrained (epoch registers, mode bits, counters read for
    heuristics). *)

type 'a t

val create : ?name:string -> Clock.t -> 'a -> 'a t
val read : Kernel.ctx -> 'a t -> 'a
val write : Kernel.ctx -> 'a t -> 'a -> unit

(** Untracked current value (tests / stats). *)
val peek : 'a t -> 'a

(** Untracked set of the current value (initialization). *)
val poke : 'a t -> 'a -> unit

(** Footprint atom of {!write} for [Rule.make ~fp]; reads are untracked and
    need no atom. *)
val fp_write : 'a t -> Conflict.atom
