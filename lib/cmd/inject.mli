(** Registry of injectable state for fault-injection campaigns.

    EHRs (and therefore Regs and FIFOs, which are built from them) register
    themselves here when the registry is {e armed}; modules owning raw
    state (e.g. a physical register file) may register sites explicitly.
    A campaign driver arms the registry, builds a machine, then flips a
    chosen bit of a chosen site at a chosen cycle. Disarmed (the default),
    registration is a no-op, so normal runs keep no references to machine
    state. *)

type site = {
  id : int;
  name : string;
  width : int;  (** bits eligible for flipping: [0, width) *)
  flip : int -> bool;
      (** [flip bit] XORs the bit into the live value; [false] when the
          value's representation cannot be flipped safely. *)
}

(** Arm and clear the registry: subsequent state-element constructions
    register sites. *)
val arm : unit -> unit

(** Disarm and clear the registry (the default state). *)
val disarm : unit -> unit

val is_armed : unit -> bool

(** [register ~name ~width flip] — called by state-element constructors.
    No-op unless armed. *)
val register : name:string -> width:int -> (int -> bool) -> unit

val n_sites : unit -> int

(** All sites registered since the last [arm], in registration order. *)
val sites : unit -> site array

(** [fire site bit] flips [bit mod site.width]; returns whether the flip
    was applied. *)
val fire : site -> int -> bool
