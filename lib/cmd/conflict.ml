type order = C | Lt | Gt | Cf

let to_string = function C -> "C" | Lt -> "<" | Gt -> ">" | Cf -> "CF"
let pp fmt o = Format.pp_print_string fmt (to_string o)

let flip = function Lt -> Gt | Gt -> Lt | (C | Cf) as o -> o

let join a b =
  match a, b with
  | Cf, o | o, Cf -> o
  | Lt, Lt -> Lt
  | Gt, Gt -> Gt
  | C, _ | _, C | Lt, Gt | Gt, Lt -> C

let ehr_order (w1, p1) (w2, p2) =
  match w1, w2 with
  | false, false -> Cf
  | false, true -> if p1 <= p2 then Lt else Gt
  | true, false -> if p1 < p2 then Lt else Gt
  | true, true -> if p1 < p2 then Lt else if p2 < p1 then Gt else C

let allows_before = function Lt | Cf -> true | Gt | C -> false

(* ---------------------------------------------------------------------- *)
(* Footprints: the declarations the schedule compiler consumes.           *)
(*                                                                        *)
(* A primitive is a unit of conflict analysis (one EHR, one FIFO, one     *)
(* wire). A rule's footprint is a list of atoms, each describing one      *)
(* method call on one primitive as the EHR-style accesses it performs on  *)
(* the primitive's abstract cells. The relation between two rules is the  *)
(* join over all their atom pairs — exactly how the BSV compiler derives  *)
(* a compound conflict matrix from primitive register accesses.           *)
(* ---------------------------------------------------------------------- *)

type prim = { pid : int; pname : string }

(* Atomic: farm workers build machines concurrently in separate domains. *)
let prim_counter = Atomic.make 0

let fresh_prim pname = { pid = Atomic.fetch_and_add prim_counter 1; pname }

type acc = { acell : int; awrite : bool; aport : int }

(* Pseudo-port for conflict-free FIFO sides: the k-th same-cycle access
   uses EHR port k, so any two dynamic accesses of the same cell compose
   in either order, while a static port (the clear port, above every
   dynamic one) must come after all of them. *)
let dyn = -1

let acc_order a b =
  if a.acell <> b.acell then Cf
  else if a.aport = dyn || b.aport = dyn then
    if a.aport = dyn && b.aport = dyn then Cf else if a.aport = dyn then Lt else Gt
  else ehr_order (a.awrite, a.aport) (b.awrite, b.aport)

type atom = { ap : prim; alabel : string; accs : acc list }

let atom ~prim ~label accs =
  { ap = prim; alabel = label; accs = List.map (fun (awrite, acell, aport) -> { acell; awrite; aport }) accs }

let atom_order a b =
  if a.ap.pid <> b.ap.pid then Cf
  else
    List.fold_left
      (fun o aa -> List.fold_left (fun o bb -> join o (acc_order aa bb)) o b.accs)
      Cf a.accs

(* Relation of footprint [fa] w.r.t. footprint [fb]: Lt means every shared
   primitive admits fa's rule strictly before fb's, Cf means the order is
   immaterial, C means no serial order within a cycle is admissible. *)
let rel fa fb =
  List.fold_left
    (fun o a -> List.fold_left (fun o b -> join o (atom_order a b)) o fb)
    Cf fa

(* A footprint is self-compatible when every pair of its atoms admits at
   least one execution order; the body is then assumed (and [--compile-audit]
   dynamically verifies) to perform them in an admissible order. *)
let self_compatible fp =
  let rec go = function
    | [] -> None
    | a :: rest -> (
      match List.find_opt (fun b -> atom_order a b = C) rest with
      | Some b -> Some (a, b)
      | None -> go rest)
  in
  go fp

let atom_name a = a.ap.pname ^ "." ^ a.alabel
