(* Every setter branches on [Kernel.logging] before building its undo
   closure: under tier-A compilation (log off) the elision is then
   allocation-free, which is the point of the tier. *)

let set ctx r v =
  let old = !r in
  if Kernel.logging ctx then Kernel.on_abort ctx (fun () -> r := old)
  else Kernel.note_elided ctx;
  r := v

let set_arr ctx a i v =
  let old = a.(i) in
  if Kernel.logging ctx then Kernel.on_abort ctx (fun () -> a.(i) <- old)
  else Kernel.note_elided ctx;
  a.(i) <- v

let field ctx ~get ~set v =
  let old = get () in
  if Kernel.logging ctx then Kernel.on_abort ctx (fun () -> set old)
  else Kernel.note_elided ctx;
  set v

let blit ctx ~src ~src_pos ~dst ~dst_pos ~len =
  if Kernel.logging ctx then begin
    let old = Bytes.sub dst dst_pos len in
    Kernel.on_abort ctx (fun () -> Bytes.blit old 0 dst dst_pos len)
  end
  else Kernel.note_elided ctx;
  Bytes.blit src src_pos dst dst_pos len

let set_int64 ctx b off v =
  let old = Bytes.get_int64_le b off in
  if Kernel.logging ctx then Kernel.on_abort ctx (fun () -> Bytes.set_int64_le b off old)
  else Kernel.note_elided ctx;
  Bytes.set_int64_le b off v
