(** Conflict-matrix algebra for CMD interfaces (paper, Section IV-B).

    For two methods [f1] and [f2] of a module, the conflict matrix records one
    of four relations:
    - [C]: the methods conflict and cannot be called in the same cycle;
    - [Lt] ([<]): they may be called concurrently, and the net effect is as if
      [f1] executed before [f2];
    - [Gt] ([>]): concurrent, net effect as if [f2] executed before [f1];
    - [Cf]: conflict free — concurrent, and the order does not matter.

    In this embedding, the conflict matrix of a compound module is not written
    down by hand; it is induced by the EHR ports its methods touch (exactly as
    the BSV compiler derives it from primitive register accesses). This module
    provides the algebra used by tests and by {!Conflict.infer} helpers. *)

type order =
  | C   (** conflict: never in the same cycle *)
  | Lt  (** first method logically before the second *)
  | Gt  (** first method logically after the second *)
  | Cf  (** conflict-free: order immaterial *)

val pp : Format.formatter -> order -> unit

val to_string : order -> string

(** [flip o] is the relation seen from the second method's point of view:
    [flip Lt = Gt], [flip Gt = Lt], [C] and [Cf] are symmetric. *)
val flip : order -> order

(** [join a b] combines the relations induced by two pairs of primitive
    accesses into the relation of the enclosing methods: a method pair is
    [Lt] only if every constituent access pair is [Lt] or [Cf], etc. Any
    disagreement collapses to [C]. *)
val join : order -> order -> order

(** Relation between two accesses of the same EHR, given as
    [(write?, port)] pairs, in the EHR semantics of Rosenband's ephemeral
    history registers: reads at port [i] observe writes at ports [< i]. *)
val ehr_order : bool * int -> bool * int -> order

(** [allows_before a b] is [true] when relation [a]-then-[b] is admissible in
    a serial schedule that places the first method's rule earlier, i.e. the
    relation is [Lt] or [Cf]. *)
val allows_before : order -> bool

(** {2 Footprints}

    The declarations the schedule compiler in [Sim] consumes. A {!prim} is a
    unit of conflict analysis (one EHR, one FIFO, one wire); primitives mint
    their identity at construction via {!fresh_prim}. A rule's footprint is
    an {!atom} list: each atom names one method call on one primitive,
    expanded to the EHR-style accesses the method performs on the
    primitive's abstract cells, so the relation between two rules is derived
    by {!rel} exactly as the BSV compiler derives a compound conflict matrix
    from primitive register accesses. *)

type prim = { pid : int; pname : string }

(** Mint a fresh primitive identity (thread-safe: farm workers build
    machines concurrently). *)
val fresh_prim : string -> prim

(** One primitive-cell access: [(write?, abstract cell, port)]. *)
type acc = { acell : int; awrite : bool; aport : int }

(** Pseudo-port for conflict-free FIFO sides: the k-th same-cycle access
    uses EHR port [k], so two [dyn] accesses of the same cell compose in
    either order, while a static port (the clear port, above every dynamic
    one) must come after all of them. *)
val dyn : int

type atom = { ap : prim; alabel : string; accs : acc list }

(** [atom ~prim ~label accs] with [accs] as [(write?, cell, port)] triples. *)
val atom : prim:prim -> label:string -> (bool * int * int) list -> atom

(** Relation between two single accesses of the same primitive. *)
val acc_order : acc -> acc -> order

(** Relation between two method calls; [Cf] when the primitives differ. *)
val atom_order : atom -> atom -> order

(** [rel fa fb] is the relation of footprint [fa]'s rule w.r.t. [fb]'s:
    [Lt] means every shared primitive admits [fa] strictly before [fb],
    [Cf] that the order is immaterial, [C] that no same-cycle serial order
    is admissible. *)
val rel : atom list -> atom list -> order

(** [self_compatible fp] is [None] when every pair of atoms in [fp] admits
    at least one execution order, or [Some (a, b)] naming an irreconcilable
    pair. The body is assumed — and [--compile-audit] dynamically verifies —
    to perform compatible atoms in an admissible order. *)
val self_compatible : atom list -> (atom * atom) option

(** "prim.method" display name of an atom. *)
val atom_name : atom -> string
