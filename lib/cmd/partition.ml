(* Ambient partition scoping and boundary-primitive tokens.

   A partition is an integer: 0 is the "uncore" (always executed serially),
   1.. are parallel partitions (one per core). Module constructors and rule
   constructors capture the ambient partition, so a machine builder tags a
   whole subtree (core + private caches + TLB) by wrapping its construction
   in [scoped].

   A [token] names one primitive (an EHR cell group, a FIFO, a wire) for the
   static partition checker. Rules declare the boundary primitives they
   touch via [Rule.make ~touches]; the checker proves that no primitive is
   claimed by two different parallel partitions. Partition-private state
   needs no declaration — the dynamic [--partition-audit] mode backstops the
   static argument by recording every cell actually touched per partition
   per cycle. *)

let uncore = 0

(* Domain-local so farm workers can build machines concurrently: each
   domain's ambient partition is its own. *)
let cur : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref uncore)
let ambient () = !(Domain.DLS.get cur)

let scoped p f =
  if p < 0 || p > 60 then invalid_arg "Partition.scoped: partition out of range";
  let cur = Domain.DLS.get cur in
  let old = !cur in
  cur := p;
  Fun.protect ~finally:(fun () -> cur := old) f

type token = { tk_name : string; prim : int }

(* Atomic, not domain-local: primitive identities need only be unique, and
   machines built on different domains must never alias each other's. *)
let prim_ctr = Atomic.make 0
let fresh_prim () = Atomic.fetch_and_add prim_ctr 1 + 1

let token ~prim tk_name = { tk_name; prim }
let mk_token tk_name = { tk_name; prim = fresh_prim () }
let name tk = tk.tk_name
let prim tk = tk.prim
