(* Ambient partition scoping and boundary-primitive tokens.

   A partition is an integer: 0 is the "uncore" (always executed serially),
   1.. are parallel partitions (one per core). Module constructors and rule
   constructors capture the ambient partition, so a machine builder tags a
   whole subtree (core + private caches + TLB) by wrapping its construction
   in [scoped].

   A [token] names one primitive (an EHR cell group, a FIFO, a wire) for the
   static partition checker. Rules declare the boundary primitives they
   touch via [Rule.make ~touches]; the checker proves that no primitive is
   claimed by two different parallel partitions. Partition-private state
   needs no declaration — the dynamic [--partition-audit] mode backstops the
   static argument by recording every cell actually touched per partition
   per cycle. *)

let uncore = 0
let cur = ref uncore
let ambient () = !cur

let scoped p f =
  if p < 0 || p > 60 then invalid_arg "Partition.scoped: partition out of range";
  let old = !cur in
  cur := p;
  Fun.protect ~finally:(fun () -> cur := old) f

type token = { tk_name : string; prim : int }

let prim_ctr = ref 0

let fresh_prim () =
  incr prim_ctr;
  !prim_ctr

let token ~prim tk_name = { tk_name; prim }
let mk_token tk_name = { tk_name; prim = fresh_prim () }
let name tk = tk.tk_name
let prim tk = tk.prim
