(** Ambient partition scoping and boundary-primitive tokens.

    Partitions shard the rule set for parallel simulation: partition 0 (the
    {e uncore}) always executes serially on the main domain; partitions 1..
    may execute concurrently, one domain each. Constructors ([Rule.make],
    [Wakeup.make], [Fifo.ring]/[Fifo.cf]) capture the ambient partition, so
    wrapping a core's construction in [scoped (hart_id + 1)] tags every rule
    and primitive it builds. *)

val uncore : int
(** The serial partition, [0]. The ambient default. *)

val ambient : unit -> int
(** Current ambient partition (set by an enclosing [scoped]). *)

val scoped : int -> (unit -> 'a) -> 'a
(** [scoped p f] runs [f] with ambient partition [p] (restored on exit,
    including on exception). Raises [Invalid_argument] unless
    [0 <= p <= 60]. *)

type token
(** Names one shared primitive for the static partition checker. A
    conflict-free FIFO exposes two tokens (enq side, deq side) over the same
    primitive; a ring FIFO exposes one token for both sides. *)

val fresh_prim : unit -> int
(** A fresh primitive identity (process-global). *)

val token : prim:int -> string -> token
(** A token over an existing primitive identity. *)

val mk_token : string -> token
(** A token over a fresh primitive identity. *)

val name : token -> string
val prim : token -> int
