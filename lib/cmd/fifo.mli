(** Latency-insensitive FIFOs with explicit concurrency semantics.

    All three variants share the guarded interface [enq]/[deq]/[first]/
    [clear]; they differ only in their conflict matrices, which is exactly the
    paper's point: module refinement may change the CM, and composition
    remains correct (possibly with less concurrency).

    - {!pipeline}: [first < deq < enq < clear]. When full, a [deq] earlier in
      the schedule frees the slot an [enq] fills the same cycle (the classic
      pipeline register).
    - {!bypass}: [enq < deq < clear]. When empty, a value enqueued earlier in
      the schedule can be dequeued the same cycle (a same-cycle forwarding
      path).
    - {!cf}: [enq CF deq], both [< clear]. Guards are conservative — they see
      the occupancy at the start of the cycle — so enqueue and dequeue rules
      may be scheduled in either order. *)

type 'a t

val pipeline : ?name:string -> capacity:int -> unit -> 'a t

val bypass : ?name:string -> capacity:int -> unit -> 'a t

(** [?lookahead] declares, for a {!cf} queue used as a cross-partition
    boundary, the minimum number of cycles between an enq and the earliest
    consequence flowing back to the enqueuer (e.g. an L2 input queue whose
    response pipeline is [latency] deep). The epoch engine takes the
    minimum declared lookahead over all boundaries as the safe free-run
    bound; an undeclared boundary contributes the trivial bound of 1. *)
val cf : ?name:string -> ?lookahead:int -> Clock.t -> capacity:int -> unit -> 'a t

(** [enq ctx q v] appends [v]; guarded on the queue not being full. *)
val enq : Kernel.ctx -> 'a t -> 'a -> unit

(** [deq ctx q] removes and returns the oldest element; guarded on
    non-emptiness. *)
val deq : Kernel.ctx -> 'a t -> 'a

(** [first ctx q] returns the oldest element without removing it. *)
val first : Kernel.ctx -> 'a t -> 'a

(** Non-aborting guard probes, reading through the same ports as the
    corresponding action. *)
val can_enq : Kernel.ctx -> 'a t -> bool

val can_deq : Kernel.ctx -> 'a t -> bool

(** [clear ctx q] empties the queue; logically ordered after every other
    method of the cycle (used by wrong-path flushes). *)
val clear : Kernel.ctx -> 'a t -> unit

val capacity : 'a t -> int
val name : 'a t -> string

(** The queue's wakeup signal: touched on every successful [enq], [deq] and
    [clear] (and, for {!cf}, when the cycle-boundary snapshots advance).
    Rules whose [can_fire] consults {!peek_size} may watch it. *)
val signal : 'a t -> Wakeup.signal

(** Partition-checker tokens for [Rule.make ~touches]. A {!pipeline} or
    {!bypass} FIFO is a single primitive (its sides share the count cell),
    so both tokens carry the same identity and the queue can never legally
    span two partitions. A {!cf} FIFO's sides touch disjoint cells, so each
    side is its own primitive identity — the enq side and the deq side may
    live in different partitions, which makes cf queues the only legal
    cross-partition boundary. *)
val enq_token : 'a t -> Partition.token

val deq_token : 'a t -> Partition.token

(** {2 Conflict footprints}

    One {!Conflict.prim} per queue (both sides of a {!cf} queue included:
    its methods are conflict-free by construction, which the atoms encode
    via {!Conflict.dyn} ports). Pass the atoms of the methods a rule's body
    may call to [Rule.make ~fp]. The [can_enq]/[can_deq] probes are tracked
    reads and need their own atoms when called through a ctx. *)

val prim : 'a t -> Conflict.prim

val fp_enq : 'a t -> Conflict.atom
val fp_deq : 'a t -> Conflict.atom
val fp_first : 'a t -> Conflict.atom
val fp_can_enq : 'a t -> Conflict.atom
val fp_can_deq : 'a t -> Conflict.atom
val fp_clear : 'a t -> Conflict.atom

(** Untracked occupancy / contents, for statistics and tests. *)
val peek_size : 'a t -> int

val peek_list : 'a t -> 'a list
