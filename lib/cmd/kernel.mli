(** The CMD execution kernel: transactional guarded atomic actions.

    A design is a set of modules whose interface methods read and atomically
    update internal state, composed by {e rules}. A rule either updates the
    state of every module it calls or does nothing (paper, Section I). Within
    a clock cycle many rules may fire, but the net effect always equals
    executing the fired rules serially in schedule order.

    Every piece of rule-visible state bottoms out in a {e cell} — the port
    bookkeeping of one ephemeral history register (EHR). When a rule's method
    call touches port [p] of a cell, the kernel checks the access is
    admissible {e after} everything already performed this cycle (by earlier
    rules and by the same rule):

    - read port [i] after write port [j] requires [j < i];
    - write port [i] after read port [j] requires [j <= i];
    - write port [i] after write port [j] requires [j < i].

    These are exactly the EHR orderings, so the induced conflict matrix of any
    compound module matches what the BSV compiler would derive. An
    inadmissible access aborts the whole rule ({!Retry}), and every state
    change it made is rolled back — atomicity with no effort from the module
    author. *)

(** Raised by a method whose guard is not ready; aborts (and rolls back) the
    calling rule for this cycle. *)
exception Guard_fail of string

(** Raised internally when an access conflicts with the cycle's history; the
    scheduler rolls the rule back and retries it next cycle. *)
exception Retry of string

(** A genuine design error: the conflict arises within a single rule (e.g.
    writing a register twice, or reading a plain register after writing it),
    which no schedule can fix. *)
exception Conflict_error of string

(** Raised by the partition audit ([Sim.create ~partition_audit:true]) when a
    cell is touched by two different partitions within one cycle with at
    least one write involved — an overlap the static partition checker
    should have made impossible. Read-read sharing across partitions is
    order-independent and is not reported. *)
exception Partition_overlap of string

(** Raised by the compile audit ([Sim.create ~compile_audit:true]) when a
    rule's declared footprint or totality claim is contradicted by an actual
    access — the dynamic discharge of the schedule compiler's proof
    obligations. *)
exception Compile_audit_fail of string

type cell
type ctx

(** [make_cell name] allocates the conflict-tracking bookkeeping for one EHR.
    [name] appears in conflict diagnostics. *)
val make_cell : string -> cell

(** A transaction context. Method implementations thread it through every
    state access. The context owns a reusable undo arena, so the scheduler
    keeps one context alive across all rule attempts of a run; call
    {!reset_ctx} between attempts after a commit. *)
val make_ctx : Clock.t -> ctx

(** Forget the committed undo log (without running it) and reset the access
    counter, readying the context for the next rule attempt. *)
val reset_ctx : ctx -> unit

(** The clock this context runs under. *)
val clock : ctx -> Clock.t

(** Name of the rule currently executing (for diagnostics). *)
val rule_name : ctx -> string
val set_rule_name : ctx -> string -> unit

(** Partition attributed to accesses made through this context. The
    scheduler sets it per execution context (parallel mode) or per rule
    (partition-audit mode); module code never touches it. *)
val partition : ctx -> int
val set_partition : ctx -> int -> unit

(** Shard index used by [Stats.incr] for counters incremented through this
    context; [-1] (the default) increments the counter directly. Parallel
    partitions each get a distinct slot so counter updates never race. *)
val stats_slot : ctx -> int
val set_stats_slot : ctx -> int -> unit

(** Enable per-partition cell-touch recording on this context; any
    cross-partition overlap involving a write raises {!Partition_overlap}.
    Audit masks are deliberately not rolled back on abort — even an aborted
    access read the cell concurrently. *)
val set_partition_audit : ctx -> bool -> unit

(** Whether partition-audit recording is enabled on this context. Modules
    with engine-sequenced latency contracts (the L2's declared lookahead)
    use it to run their own extra checks only under the audit. *)
val partition_audit : ctx -> bool

(** Key the partition-audit masks on a fixed value instead of the current
    cycle: under epoch execution the masks accumulate over the whole
    window, flagging state shared across a window's free-running phases
    even when the touches land on different local cycles. [-1] (default)
    restores per-cycle keying. *)
val set_audit_key : ctx -> int -> unit

(** Exempt cells owned by the given [Conflict.prim] pids from the audit:
    the epoch engine whitelists declared boundary FIFOs, whose
    cross-partition handoff it sequences itself. *)
val set_audit_exempt : ctx -> (int -> bool) -> unit

(** {2 Compiled-schedule support (used by [Sim])}

    The schedule compiler proves, per rule, that the per-cell admissibility
    bookkeeping ([chk]) and/or the undo arena ([log]) are unnecessary, and
    clears the corresponding flag before running the rule's body. Both
    default to [true]; with both set the kernel behaves exactly as before.
    Clearing [log] elides value undos but counts them, so an abort that
    would have needed one raises {!Conflict_error} from {!attempt} instead
    of silently leaving corrupt state. *)

val set_tier : ctx -> chk:bool -> log:bool -> unit

(** Owning [Conflict.prim] pid of a cell; [-1] until adopted by a primitive
    wrapper (EHR, FIFO, …). Used by the compile audit to map accesses back
    to declared footprints. *)
val cell_prim : cell -> int

val set_cell_prim : cell -> int -> unit

(** Diagnostic name of a cell. *)
val cell_name : cell -> string

(** Number of {!Retry} raises observed on this context (monotonic; the
    compile audit diffs it around each rule attempt). *)
val retries : ctx -> int

(** Undo registrations elided since the last {!set_tier}; any abort while
    this is positive means irreversibly lost rollback state. *)
val dropped : ctx -> int

(** Mark the currently executing rule as claiming [~total] (abort-free
    commits) under audit: an {!attempt} abort that rolls back tracked
    writes then raises {!Compile_audit_fail}. *)
val set_total_audit : ctx -> bool -> unit

(** Install a hook called on every tracked access with the touched cell
    ([write] says in which direction); the compile audit uses it to verify
    footprint coverage. [None] (the default) costs one load per access. *)
val set_fp_check : ctx -> (cell -> write:bool -> unit) option -> unit

(** [record_read ctx cell port] declares a port-[port] read of [cell],
    aborting with {!Retry} if inadmissible after this cycle's history. *)
val record_read : ctx -> cell -> int -> unit

(** [record_write ctx cell port] declares a port-[port] write of [cell]. *)
val record_write : ctx -> cell -> int -> unit

(** [on_abort ctx undo] registers [undo] to run if the enclosing rule (or
    {!attempt}) aborts. State primitives call this before each mutation. *)
val on_abort : ctx -> (unit -> unit) -> unit

(** True when undo logging is on (the default; the schedule compiler turns
    it off for tier-A rules). Hot-path primitives branch on this before
    building their undo closure, so an elided undo costs no allocation;
    when false, call {!note_elided} instead of {!on_abort}. *)
val logging : ctx -> bool

val note_elided : ctx -> unit

(** [guard ctx ok msg] raises [Guard_fail msg] when [ok] is false. Guards are
    how methods refuse to be applied before they are ready (paper, Sec. III). *)
val guard : ctx -> bool -> string -> unit

(** [abort ctx] rolls back everything the transaction did and re-raises the
    given exception. Used by the scheduler. *)
val rollback : ctx -> unit

(** [attempt ctx f] runs [f ctx] as a nested transaction: if it raises
    {!Guard_fail} or {!Retry}, its effects are rolled back and the result is
    [None]; otherwise [Some] of its result. This expresses superscalar
    "do as many ways as are ready" loops without aborting the whole rule. *)
val attempt : ctx -> (ctx -> 'a) -> 'a option

(** Number of accesses recorded so far in this transaction (diagnostics). *)
val access_count : ctx -> int

(** Current depth of the undo arena: 0 right after {!make_ctx},
    {!reset_ctx} or a full {!rollback}; positive once the transaction has
    committed-but-revocable effects. The scheduler's audit mode uses this
    to detect that a rule claiming [can_fire = false] actually did
    something. *)
val undo_depth : ctx -> int
