(** Full-system harness: assembles cores, TLBs, the coherent cache hierarchy
    and DRAM into a runnable machine, loads a program, and runs to exit.

    One [program] serves every model — the golden ISA simulator, the in-order
    baseline and any {!Ooo.Config.t} — which is how the benchmark harness
    compares them. All harts start at the entry point; multi-threaded kernels
    branch on [mhartid]. *)

type kind =
  | Golden_only
  | In_order of { mem : Mem.Mem_sys.config; tlb : Tlb.Tlb_sys.config }
  | Out_of_order of Ooo.Config.t

type program = {
  asm : Isa.Asm.t;
  init_mem : (Isa.Phys_mem.t -> unit) option;  (** data-segment initialization *)
  regs : (int * int64) list;  (** initial registers, applied to every hart *)
}

val program : ?init_mem:(Isa.Phys_mem.t -> unit) -> ?regs:(int * int64) list -> Isa.Asm.t -> program

type t

(** [create kind prog] — [paging] builds identity Sv39 tables over
    [mapped_mb] megabytes from DRAM base and enables translation; [cosim]
    runs the golden model in lockstep with every OOO commit (single-core
    only). [watchdog] (cycles, 0 = off) attaches a liveness monitor that
    raises {!Verif.Watchdog.Trip} when no rule fires or no instruction
    commits for that many consecutive cycles; [invariants] collects the
    structural checks registered by the ROB, free list, LSQ, store buffer
    and L2 directory during construction and runs them once per cycle
    (raising {!Verif.Invariant.Violation} on corruption).

    [jobs] (default 1) enables domain-parallel rule execution: each core's
    pipeline, L1 caches and TLB form a private partition fired concurrently
    with the others, while the crossbar, L2 and DRAM run serially after a
    cycle barrier (see {!Cmd.Sim.create}). Results are bit-identical to
    [jobs:1]. Forced back to 1 under [cosim], whose golden model is shared
    across harts. [partition_audit] runs serially while checking every
    EHR/FIFO/wire access against the partition that makes it, raising
    {!Cmd.Kernel.Partition_overlap} on an undeclared cross-partition
    touch.

    [epoch] (default 1) sets the lookahead-window length for epoch
    execution (see {!Cmd.Sim.create}): partitions free-run that many cycles
    between synchronizations. [epoch:0] asks for the full bound derived
    from the boundary FIFOs' declared lookahead (the L2 response latency
    plus the crossbar round trip). Results at a given window length are
    bit-identical at any [jobs]. Forced back to 1 under [cosim] — the
    golden models share private memory, so commit interleaving across harts
    must not depend on the window length.

    [obs] plugs an observability hub in: every core is built against the
    hub's per-hart instruction tracer and the hub is attached to the
    simulator (rule numbering, rule-fire sink, capture window) — see
    {!Obs.Hub}. Without it the cores trace into [Obs.Pipe.null] and pay one
    load-and-branch per potential event. *)
val create :
  ?ncores:int ->
  ?paging:bool ->
  ?megapages:bool ->
  ?mapped_mb:int ->
  ?cosim:bool ->
  ?schedule:Ooo.Core.schedule ->
  ?mode:Cmd.Sim.mode ->
  ?fastpath:bool ->
  ?audit:bool ->
  ?jobs:int ->
  ?partition_audit:bool ->
  ?compile:bool ->
  ?compile_audit:bool ->
  ?epoch:int ->
  ?watchdog:int ->
  ?invariants:bool ->
  ?obligations:bool ->
  ?obs:Obs.Hub.t ->
  kind ->
  program ->
  t

type outcome = { exits : int64 array; cycles : int; timed_out : bool }

(** Run until every hart exits (or [max_cycles]). [on_cycle] is called with
    the loop's cycle index before each cycle — the fault-injection hook. *)
val run : ?max_cycles:int -> ?on_cycle:(int -> unit) -> t -> outcome

val stats : t -> Cmd.Stats.t

(** Architectural (committed) value of register [r] on [hart], read after a
    run — how the litmus harness extracts observed load values. *)
val reg : t -> hart:int -> int -> int64

(** Every OOO core's store queue and store buffer are empty. Combined with
    all harts having exited, this means every store has reached the
    coherent hierarchy. Vacuously true for golden/in-order machines. *)
val quiesced : t -> bool

(** True when the machine's simulator took the domain-parallel path (i.e.
    [jobs > 1], partitions exist, and no serializing option forced the
    fall-back). *)
val parallel : t -> bool

(** The effective epoch window length the simulator settled on (1 when
    epochs are off or the machine has no simulator). *)
val epoch_length : t -> int

val console : t -> string

(** Committed instructions, summed over harts. *)
val instrs : t -> int

val find_stat : t -> string -> int

(** Times the watchdog tripped (0 when none was attached). *)
val watchdog_trips : t -> int

(** Names of the invariant checks collected at construction. *)
val invariant_names : t -> string list

(** Interface-obligation monitors collected at construction (empty unless
    [~obligations:true]). A violating cycle raises
    {!Mcheck.Obligation.Violation} out of {!run}. *)
val obligation_monitors : t -> Mcheck.Obligation.monitor list

(** [(name, committed boundary events)] per monitor — evidence the contracts
    actually observed traffic. *)
val obligation_stats : t -> (string * int) list

(** Record every committed instruction of the OOO cores; {!flush_trace}
    prints them to the formatter after the run, hart-ordered (all of hart
    0's commits, then hart 1's, ...) so the output is deterministic at any
    [jobs] and schedule mode. *)
val trace_commits : t -> Format.formatter -> unit

(** Print the recorded commit trace (no-op when {!trace_commits} was never
    called). *)
val flush_trace : t -> unit

(** Per-rule firing statistics of the underlying scheduler (debugging). *)
val pp_rule_stats : Format.formatter -> t -> unit

(** The scheduler's rules, in schedule order (empty for golden-only) — the
    per-rule [fired] counters are how the snapshot tests check bit-identity. *)
val rule_list : t -> Cmd.Rule.t list

(** {2 Schedule compilation} — see {!Cmd.Sim.compiled} and friends. *)

val compiled : t -> bool

val compile_status : t -> string
val compile_report : t -> string
val pp_core_debug : Format.formatter -> t -> unit

(** {2 Snapshot / restore}

    Every stateful primitive registers into a per-machine state registry as
    the machine is built (see {!Cmd.State}); [snapshot] serializes the whole
    registry into a self-describing image with a format-version magic, a
    binary digest, a configuration digest and a payload checksum.
    [restore] writes an image back into a machine built with the {e same}
    configuration (kind, cores, paging, program — [jobs]/[fastpath]/[audit]
    excluded: they are state-identical by design), raising
    {!Cmd.State.Error} on any mismatch, truncation or corruption before
    touching machine state. A restored machine continues bit-identically to
    the one that was snapshotted: same cycles, instret and per-rule fire
    counts. *)

val snapshot : t -> string

(** Raises {!Cmd.State.Error} on mismatched, truncated or corrupt images. *)
val restore : t -> string -> unit

(** Names of the registered snapshot entries, in registration order. *)
val snapshot_entries : t -> string list

(** Re-seed the shuffle scheduler (no-op in other modes): after restoring a
    cycle-0 image, [reseed_schedule t seed] makes the run schedule-identical
    to a cold machine built with [mode = Shuffle seed] — the warm-fork path
    of the simulation farm. *)
val reseed_schedule : t -> int -> unit
