(** SPEC CINT2006-shaped single-core kernels (paper, Section VI-A).

    Eleven synthetic kernels carrying the same names as the paper's
    benchmarks, each engineered to reproduce that benchmark's bottleneck
    profile from Fig. 16:

    - [mcf], [astar], [omnetpp]: large-footprint pointer chasing — very high
      D-TLB and L2-TLB miss rates (these are the ones the non-blocking TLB +
      walk cache of RiscyOO-T+ accelerates most);
    - [hmmer], [h264ref]: dense compute, near-zero miss rates;
    - [sjeng], [gobmk]: data-dependent branches — high misprediction rates;
    - [libquantum]: streaming over an L2-sized array — cache-bandwidth bound;
    - [bzip2], [gcc], [xalancbmk]: mixed profiles.

    Every kernel exits with a data-dependent checksum, so each run is
    validated against the golden ISA simulator. [scale] multiplies the
    dynamic instruction count (1 ≈ 100–300k instructions). *)

val all : (string * (scale:int -> Machine.program)) list

(** Also accepts ["smoke"], a deliberately tiny (~3k instruction) mixed
    loop for fault-injection campaigns and CI — not listed in [all]. *)
val find : string -> scale:int -> Machine.program

(** Kernel names in the paper's presentation order. *)
val names : string list
