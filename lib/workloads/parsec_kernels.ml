open Isa
open Reg_name

let data0 = 0x8020_0000L (* input arrays *)
let data1 = 0x8040_0000L (* output / scratch *)
let lock_addr = 0x8018_0000L
let done_addr = 0x8018_0040L
let result_addr = 0x8018_0080L
let barrier0 = 0x8018_0200L

(* accumulate t-reg into the shared result with an amoadd *)
let accumulate p ~value_reg ~tmp =
  Asm.li p tmp result_addr;
  Asm.amoadd_d p zero value_reg tmp

(* standard epilogue *)
let join p ~harts = Kernel_lib.worker_join p ~harts ~done_addr ~result_addr

(* partition [0, n) among harts; leaves lo in s4, hi in s5; n in s3 *)
let part p ~harts ~n =
  Asm.li p s3 (Int64.of_int n);
  Kernel_lib.partition p ~n_reg:s3 ~harts ~lo_reg:s4 ~hi_reg:s5 ~tmp:t0

(* --- blackscholes: independent per-element pricing ------------------------ *)
let blackscholes ~harts ~scale =
  let n = 1200 * scale in
  let p = Asm.create () in
  part p ~harts ~n;
  Asm.li p s0 data0;
  Asm.li p a1 0L (* partial *);
  Asm.mv p t0 s4;
  Asm.bge p t0 s5 "done";
  Asm.label p "loop";
  Asm.slli p t2 t0 3;
  Asm.add p t2 t2 s0;
  Asm.ld p t3 0L t2 (* spot *);
  (* fixed-point pseudo Black-Scholes: a few mul/div rounds *)
  Asm.addi p t4 t3 100L;
  Asm.mul p t5 t3 t4;
  Asm.ori p t4 t4 1L;
  Asm.divu p t5 t5 t4;
  Asm.mul p t5 t5 t3;
  Asm.srli p t5 t5 7;
  Asm.add p a1 a1 t5;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s5 "loop";
  Asm.label p "done";
  Asm.li p t6 0xFFFFFFL;
  Asm.and_ p a1 a1 t6;
  accumulate p ~value_reg:a1 ~tmp:t5;
  join p ~harts;
  Machine.program
    ~init_mem:(fun m -> Kernel_lib.init_random_words m ~base:data0 ~n ~bound:10000L ~seed:0xB5)
    p

(* --- swaptions: heavier per-element inner loop ---------------------------- *)
let swaptions ~harts ~scale =
  let n = 160 * scale in
  let p = Asm.create () in
  part p ~harts ~n;
  Asm.li p s0 data0;
  Asm.li p a1 0L;
  Asm.mv p t0 s4;
  Asm.bge p t0 s5 "done";
  Asm.label p "loop";
  Asm.slli p t2 t0 3;
  Asm.add p t2 t2 s0;
  Asm.ld p t3 0L t2;
  (* inner simulation: 12 rounds of mul/shift/add *)
  Asm.li p t4 12L;
  Asm.mv p t5 t3;
  Asm.label p "inner";
  Asm.mul p t5 t5 t3;
  Asm.srli p t5 t5 11;
  Asm.addi p t5 t5 17L;
  Asm.addi p t4 t4 (-1L);
  Asm.bne p t4 zero "inner";
  Asm.add p a1 a1 t5;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s5 "loop";
  Asm.label p "done";
  Asm.li p t6 0xFFFFFFL;
  Asm.and_ p a1 a1 t6;
  accumulate p ~value_reg:a1 ~tmp:t5;
  join p ~harts;
  Machine.program
    ~init_mem:(fun m -> Kernel_lib.init_random_words m ~base:data0 ~n ~bound:99991L ~seed:0x5A)
    p

(* --- fluidanimate: stencil with neighbour sharing and a barrier ----------- *)
let fluidanimate ~harts ~scale =
  let n = 1600 * scale in
  let p = Asm.create () in
  part p ~harts ~n;
  Asm.li p s0 data0;
  Asm.li p s1 data1;
  (* pass 1: new[i] = (old[max(i-1,0)] + old[i] + old[min(i+1,n-1)]) / 3 *)
  Asm.mv p t0 s4;
  Asm.bge p t0 s5 "p1_done";
  Asm.label p "p1";
  Asm.slli p t2 t0 3;
  Asm.add p t2 t2 s0;
  Asm.ld p t3 0L t2;
  Asm.ld p t4 (-8L) t2;
  Asm.ld p t5 8L t2;
  Asm.add p t3 t3 t4;
  Asm.add p t3 t3 t5;
  Asm.li p t4 3L;
  Asm.divu p t3 t3 t4;
  Asm.slli p t2 t0 3;
  Asm.add p t2 t2 s1;
  Asm.sd p t3 0L t2;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s5 "p1";
  Asm.label p "p1_done";
  (* barrier between passes *)
  Asm.li p t1 barrier0;
  Kernel_lib.barrier p ~addr_reg:t1 ~harts ~tmp1:t2 ~tmp2:t3;
  (* pass 2: checksum of my slice of new[] *)
  Asm.li p a1 0L;
  Asm.mv p t0 s4;
  Asm.bge p t0 s5 "p2_done";
  Asm.label p "p2";
  Asm.slli p t2 t0 3;
  Asm.add p t2 t2 s1;
  Asm.ld p t3 0L t2;
  Asm.add p a1 a1 t3;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s5 "p2";
  Asm.label p "p2_done";
  Asm.li p t6 0xFFFFFFL;
  Asm.and_ p a1 a1 t6;
  accumulate p ~value_reg:a1 ~tmp:t5;
  join p ~harts;
  Machine.program
    ~init_mem:(fun m ->
      (* pad one word before and after so the stencil never reads junk *)
      Kernel_lib.init_random_words m
        ~base:(Int64.sub data0 8L)
        ~n:(n + 2) ~bound:1000L ~seed:0xF1)
    p

(* --- facesim: blocked matrix-vector products ------------------------------ *)
let facesim ~harts ~scale =
  let rows = 96 * scale in
  let cols = 32 in
  let p = Asm.create () in
  part p ~harts ~n:rows;
  Asm.li p s0 data0 (* matrix, row-major *);
  Asm.li p s1 data1 (* vector *);
  Asm.li p a1 0L;
  Asm.mv p t0 s4;
  Asm.bge p t0 s5 "done";
  Asm.label p "row";
  Asm.li p t2 (Int64.of_int (cols * 8));
  Asm.mul p t2 t0 t2;
  Asm.add p t2 t2 s0 (* row base *);
  Asm.mv p t3 s1;
  Asm.li p t4 (Int64.of_int cols);
  Asm.li p t5 0L;
  Asm.label p "dot";
  Asm.ld p t6 0L t2;
  Asm.ld p a2 0L t3;
  Asm.mul p t6 t6 a2;
  Asm.add p t5 t5 t6;
  Asm.addi p t2 t2 8L;
  Asm.addi p t3 t3 8L;
  Asm.addi p t4 t4 (-1L);
  Asm.bne p t4 zero "dot";
  Asm.srli p t5 t5 9;
  Asm.add p a1 a1 t5;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s5 "row";
  Asm.label p "done";
  Asm.li p t6 0xFFFFFFL;
  Asm.and_ p a1 a1 t6;
  accumulate p ~value_reg:a1 ~tmp:t5;
  join p ~harts;
  Machine.program
    ~init_mem:(fun m ->
      Kernel_lib.init_random_words m ~base:data0 ~n:(rows * cols) ~bound:256L ~seed:0xFA;
      Kernel_lib.init_random_words m ~base:data1 ~n:cols ~bound:256L ~seed:0xCE)
    p

(* --- ferret: hash queries into a lock-protected shared table --------------- *)
let ferret ~harts ~scale =
  let n = 700 * scale in
  let table = 0x8030_0000L in
  let p = Asm.create () in
  part p ~harts ~n;
  Asm.li p s0 data0;
  Asm.li p s1 table;
  Asm.li p s2 lock_addr;
  Asm.li p a1 0L;
  Asm.mv p t0 s4;
  Asm.bge p t0 s5 "done";
  Asm.label p "loop";
  Asm.slli p t2 t0 3;
  Asm.add p t2 t2 s0;
  Asm.ld p t3 0L t2 (* item *);
  (* hash *)
  Asm.li p t4 0x9E3779B9L;
  Asm.mul p t3 t3 t4;
  Asm.srli p t4 t3 13;
  Asm.li p t5 1023L;
  Asm.and_ p t4 t4 t5;
  Asm.slli p t4 t4 3;
  Asm.add p t4 t4 s1 (* bucket *);
  (* lock-protected read-modify-write of the shared bucket *)
  Kernel_lib.spin_lock p ~addr_reg:s2 ~tmp1:t5 ~tmp2:t6;
  Asm.ld p t5 0L t4;
  Asm.add p t5 t5 t3;
  Asm.sd p t5 0L t4;
  Kernel_lib.spin_unlock p ~addr_reg:s2;
  (* checksum uses only thread-local values so it is schedule-independent *)
  Asm.andi p t5 t3 0xFFL;
  Asm.add p a1 a1 t5;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s5 "loop";
  Asm.label p "done";
  Asm.li p t6 0xFFFFFFL;
  Asm.and_ p a1 a1 t6;
  accumulate p ~value_reg:a1 ~tmp:t5;
  join p ~harts;
  Machine.program
    ~init_mem:(fun m -> Kernel_lib.init_random_words m ~base:data0 ~n ~bound:1_000_000L ~seed:0xFE)
    p

(* --- freqmine: shared read-only scan, private counting -------------------- *)
let freqmine ~harts ~scale =
  let n = 2400 * scale in
  let priv_tables = 0x8030_0000L in
  let p = Asm.create () in
  part p ~harts ~n;
  Asm.li p s0 data0;
  (* private 256-entry table at priv_tables + hart*8KB *)
  Asm.csrr p t0 Csr.mhartid;
  Asm.slli p t0 t0 13;
  Asm.li p s1 priv_tables;
  Asm.add p s1 s1 t0;
  Asm.li p a1 0L;
  Asm.mv p t0 s4;
  Asm.bge p t0 s5 "done";
  Asm.label p "loop";
  Asm.add p t2 s0 t0;
  Asm.lbu p t3 0L t2 (* transaction item *);
  Asm.slli p t4 t3 3;
  Asm.add p t4 t4 s1;
  Asm.ld p t5 0L t4;
  Asm.addi p t5 t5 1L;
  Asm.sd p t5 0L t4;
  (* pattern check: pairs of consecutive equal items *)
  Asm.lbu p t6 1L t2;
  Asm.bne p t3 t6 "no_pair";
  Asm.addi p a1 a1 1L;
  Asm.label p "no_pair";
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s5 "loop";
  Asm.label p "done";
  accumulate p ~value_reg:a1 ~tmp:t5;
  join p ~harts;
  Machine.program
    ~init_mem:(fun m -> Kernel_lib.init_random_bytes m ~base:data0 ~n:(n + 1) ~seed:0xF2)
    p

(* --- streamcluster: shared reads + contended shared updates ---------------- *)
let streamcluster ~harts ~scale =
  let points = 600 * scale in
  let centers = 0x8030_0000L in
  let n_centers = 8 in
  let p = Asm.create () in
  part p ~harts ~n:points;
  Asm.li p s0 data0 (* points, read-shared *);
  Asm.li p s1 centers (* center accumulators, write-shared *);
  Asm.li p s2 lock_addr;
  Asm.li p a1 0L;
  Asm.mv p t0 s4;
  Asm.bge p t0 s5 "done";
  Asm.label p "loop";
  Asm.slli p t2 t0 3;
  Asm.add p t2 t2 s0;
  Asm.ld p t3 0L t2 (* point *);
  (* nearest-center: argmin over 8 centers of |p - c_k| (c_k = k*1000) *)
  Asm.li p t4 0L (* best k *);
  Asm.li p t5 0x7FFFFFFFL (* best dist *);
  Asm.li p t6 0L (* k *);
  Asm.label p "ctr";
  Asm.li p a2 1000L;
  Asm.mul p a2 t6 a2;
  Asm.sub p a2 t3 a2;
  Asm.bge p a2 zero "abs_ok";
  Asm.sub p a2 zero a2;
  Asm.label p "abs_ok";
  Asm.bge p a2 t5 "not_better";
  Asm.mv p t5 a2;
  Asm.mv p t4 t6;
  Asm.label p "not_better";
  Asm.addi p t6 t6 1L;
  Asm.li p a2 (Int64.of_int n_centers);
  Asm.blt p t6 a2 "ctr";
  (* contended shared update: centers[best] += point (all threads hit the
     same few lines; under TSO this is where eviction kills bite) *)
  Asm.slli p t4 t4 3;
  Asm.add p t4 t4 s1;
  Asm.amoadd_d p zero t3 t4;
  Asm.andi p t3 t3 0xFFL;
  Asm.add p a1 a1 t3;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s5 "loop";
  Asm.label p "done";
  Asm.li p t6 0xFFFFFFL;
  Asm.and_ p a1 a1 t6;
  accumulate p ~value_reg:a1 ~tmp:t5;
  join p ~harts;
  Machine.program
    ~init_mem:(fun m ->
      Kernel_lib.init_random_words m ~base:data0 ~n:points ~bound:8000L ~seed:0x5C)
    p

let all =
  [
    ("blackscholes", fun ~harts ~scale -> blackscholes ~harts ~scale);
    ("facesim", fun ~harts ~scale -> facesim ~harts ~scale);
    ("ferret", fun ~harts ~scale -> ferret ~harts ~scale);
    ("fluidanimate", fun ~harts ~scale -> fluidanimate ~harts ~scale);
    ("freqmine", fun ~harts ~scale -> freqmine ~harts ~scale);
    ("swaptions", fun ~harts ~scale -> swaptions ~harts ~scale);
    ("streamcluster", fun ~harts ~scale -> streamcluster ~harts ~scale);
  ]

let names = List.map fst all

let find name ~harts ~scale =
  match List.assoc_opt name all with
  | Some f -> f ~harts ~scale
  | None -> invalid_arg ("Parsec_kernels.find: unknown kernel " ^ name)
