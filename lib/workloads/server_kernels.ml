open Isa
open Reg_name

(* Server-shaped kernels: request/response traffic, bounded rings and lock
   ladders over the coherent hierarchy. Where the PARSEC-shaped kernels are
   compute loops with occasional sharing, these are communication loops —
   nearly every iteration crosses a cache line some other hart wrote, which
   is the traffic pattern that separates MSI from MESI, few from many L2
   banks, and TSO from WMM.

   Same conventions as {!Parsec_kernels}: all harts run the same code and
   branch on [mhartid]; hart 0 reduces the per-hart partial sums (amoadd'd
   into [result_addr]) and exits with a checksum that is
   schedule-independent for a fixed hart count. *)

let done_addr = 0x8018_0040L
let result_addr = 0x8018_0080L
let barrier1 = 0x8018_0240L (* distinct from Parsec_kernels.barrier0 *)
let req_base = 0x8034_0000L (* per-client request slot, 64 B apart *)
let rsp_base = 0x8035_0000L (* per-client response slot, 64 B apart *)
let seen_base = 0x8036_0000L (* server-private last-served sequence numbers *)
let ring_base = 0x8037_0000L (* per-pair SPSC ring, 4 KB apart *)
let locks_base = 0x8038_0000L (* lock ladder: 4 locks, 64 B apart *)
let ctrs_base = 0x8038_0400L (* lock ladder: 4 counters, 64 B apart *)

let accumulate p ~value_reg ~tmp =
  Asm.li p tmp result_addr;
  Asm.amoadd_d p zero value_reg tmp

let join p ~harts = Kernel_lib.worker_join p ~harts ~done_addr ~result_addr

(* response payload for request (sequence number) in [req]: a cheap hash,
   masked so (payload << 8 | tag) stays well inside 63 bits *)
let payload p ~req ~out ~tmp =
  Asm.li p tmp 0x9E37L;
  Asm.mul p out req tmp;
  Asm.srli p out out 5;
  Asm.li p tmp 0xFFFFL;
  Asm.and_ p out out tmp

(* --- reqresp: request/response slots between clients and a server hart ----

   Hart 0 is the server; every other hart is a client with a private
   request and response slot (64 B apart, so each handshake is its own
   line). A client publishes monotonically increasing sequence numbers into
   its request slot; the server scans the slots, and for each fresh
   sequence number writes back (payload(seq) << 8) | (seq & 0xff). The
   single-word message carries both data and flag, so no fence is needed on
   the fast path even under WMM — the tag check is what the client spins
   on. Sequence numbers are never reset, so there is no clear-to-zero race.

   Clients checksum the payloads (a deterministic function of the sequence
   number); the server contributes the count of requests it served, which
   is exactly (harts-1) * reqs_per_client. *)
let reqresp ~harts ~scale =
  let reqs = 24 * scale in
  let p = Asm.create () in
  Asm.csrr p s0 Csr.mhartid;
  if harts = 1 then begin
    (* no clients: serve the ladder of requests locally *)
    Asm.li p a1 0L;
    Asm.li p t0 1L;
    Asm.li p t1 (Int64.of_int reqs);
    Asm.label p "self";
    payload p ~req:t0 ~out:t2 ~tmp:t3;
    Asm.add p a1 a1 t2;
    Asm.addi p t0 t0 1L;
    Asm.bge p t1 t0 "self"
  end
  else begin
    Asm.bne p s0 zero "client";
    (* --- server: scan client slots until every request is served --- *)
    Asm.li p s1 req_base;
    Asm.li p s2 rsp_base;
    Asm.li p s3 seen_base;
    Asm.li p s4 (Int64.of_int ((harts - 1) * reqs)) (* total to serve *);
    Asm.li p s5 0L (* served so far *);
    Asm.label p "serve";
    Asm.bge p s5 s4 "server_done";
    Asm.li p t0 1L (* client index *);
    Asm.label p "scan";
    Asm.slli p t1 t0 6;
    Asm.add p t2 t1 s1;
    Asm.ld p t3 0L t2 (* current request seq *);
    Asm.add p t4 t1 s3;
    Asm.ld p t5 0L t4 (* last seq served for this client *);
    Asm.beq p t3 t5 "next_client";
    (* fresh request: remember it, compute, respond *)
    Asm.sd p t3 0L t4;
    payload p ~req:t3 ~out:a2 ~tmp:a3;
    Asm.slli p a2 a2 8;
    Asm.andi p t3 t3 0xFFL;
    Asm.or_ p a2 a2 t3;
    Asm.add p t2 t1 s2;
    Asm.sd p a2 0L t2;
    Asm.addi p s5 s5 1L;
    Asm.label p "next_client";
    Asm.addi p t0 t0 1L;
    Asm.li p t6 (Int64.of_int harts);
    Asm.blt p t0 t6 "scan";
    Asm.j p "serve";
    Asm.label p "server_done";
    Asm.mv p a1 s5;
    Asm.j p "reduce";
    (* --- client: issue sequence numbers, spin on the tagged response --- *)
    Asm.label p "client";
    Asm.slli p t1 s0 6;
    Asm.li p s1 req_base;
    Asm.add p s1 s1 t1 (* my request slot *);
    Asm.li p s2 rsp_base;
    Asm.add p s2 s2 t1 (* my response slot *);
    Asm.li p a1 0L;
    Asm.li p t0 1L (* seq *);
    Asm.li p s3 (Int64.of_int reqs);
    Asm.label p "issue";
    Asm.sd p t0 0L s1;
    Asm.andi p t4 t0 0xFFL (* expected tag *);
    Asm.label p "await";
    Asm.ld p t2 0L s2;
    Asm.andi p t3 t2 0xFFL;
    Asm.bne p t3 t4 "await";
    Asm.srli p t2 t2 8;
    Asm.add p a1 a1 t2;
    Asm.addi p t0 t0 1L;
    Asm.bge p s3 t0 "issue";
    Asm.label p "reduce"
  end;
  Asm.li p t6 0xFFFFFFL;
  Asm.and_ p a1 a1 t6;
  accumulate p ~value_reg:a1 ~tmp:t5;
  join p ~harts;
  Machine.program p

(* --- prodcons: bounded SPSC rings between hart pairs ----------------------

   Hart 2p produces into a 16-slot ring; hart 2p+1 consumes. The producer
   publishes a head counter after a fence (so slot data is globally visible
   first); the consumer fences between observing head and reading the slot
   — the load-load ordering WMM does not give for free (this is exactly the
   MP litmus shape). Values are a deterministic function of (pair, index),
   so the consumer's sum is schedule-independent; the producer contributes
   the item count. An odd trailing hart (or a single-hart run) feeds its
   own ring, which exercises the same code with no sharing. *)
let prodcons ~harts ~scale =
  let items = 48 * scale in
  let slots = 16 in
  let p = Asm.create () in
  Asm.csrr p s0 Csr.mhartid;
  (* pair = hart / 2; my ring at ring_base + pair * 4096; head at +1024,
     tail at +1088 (all separate lines) *)
  Asm.srli p t0 s0 1;
  Asm.slli p t0 t0 12;
  Asm.li p s1 ring_base;
  Asm.add p s1 s1 t0 (* ring slots *);
  Asm.addi p s2 s1 1024L (* head (producer-published count) *);
  Asm.addi p s3 s2 64L (* tail (consumer-published count) *);
  Asm.li p s4 (Int64.of_int items);
  Asm.li p a1 0L;
  (* last hart of an odd machine pairs with nobody: run both roles locally *)
  let solo = harts land 1 = 1 in
  if solo then begin
    Asm.li p t0 (Int64.of_int (harts - 1));
    Asm.bne p s0 t0 "paired";
    Asm.li p t0 0L (* index *);
    Asm.label p "solo_loop";
    Asm.bge p t0 s4 "reduce";
    (* produce value f(pair, i) then immediately consume it *)
    Asm.li p t2 37L;
    Asm.mul p t2 t0 t2;
    Asm.srli p t3 s0 1;
    Asm.li p t4 11L;
    Asm.mul p t3 t3 t4;
    Asm.add p t2 t2 t3;
    Asm.li p t3 0x3FFL;
    Asm.and_ p t2 t2 t3;
    Asm.add p a1 a1 t2;
    Asm.addi p t0 t0 1L;
    Asm.j p "solo_loop";
    Asm.label p "paired"
  end;
  Asm.andi p t0 s0 1L;
  Asm.bne p t0 zero "consumer";
  (* --- producer (even hart) --- *)
  Asm.li p t0 0L (* produced count *);
  Asm.label p "produce";
  Asm.bge p t0 s4 "producer_done";
  Asm.label p "full";
  Asm.ld p t1 0L s3 (* tail *);
  Asm.sub p t2 t0 t1;
  Asm.li p t3 (Int64.of_int slots);
  Asm.bge p t2 t3 "full";
  (* value f(pair, i) = (37*i + 11*pair) & 0x3ff *)
  Asm.li p t2 37L;
  Asm.mul p t2 t0 t2;
  Asm.srli p t3 s0 1;
  Asm.li p t4 11L;
  Asm.mul p t3 t3 t4;
  Asm.add p t2 t2 t3;
  Asm.li p t3 0x3FFL;
  Asm.and_ p t2 t2 t3;
  Asm.andi p t3 t0 (Int64.of_int (slots - 1));
  Asm.slli p t3 t3 3;
  Asm.add p t3 t3 s1;
  Asm.sd p t2 0L t3;
  (* publish: slot data must be visible before the head that covers it *)
  Asm.fence p;
  Asm.addi p t0 t0 1L;
  Asm.sd p t0 0L s2;
  Asm.j p "produce";
  Asm.label p "producer_done";
  Asm.mv p a1 s4 (* producer contributes the item count *);
  Asm.j p "reduce";
  (* --- consumer (odd hart) --- *)
  Asm.label p "consumer";
  Asm.li p t0 0L (* consumed count *);
  Asm.label p "consume";
  Asm.bge p t0 s4 "reduce";
  Asm.label p "empty";
  Asm.ld p t1 0L s2 (* head *);
  Asm.bge p t0 t1 "empty";
  (* order the slot read after the head read (MP shape under WMM) *)
  Asm.fence p;
  Asm.andi p t3 t0 (Int64.of_int (slots - 1));
  Asm.slli p t3 t3 3;
  Asm.add p t3 t3 s1;
  Asm.ld p t2 0L t3;
  Asm.add p a1 a1 t2;
  Asm.addi p t0 t0 1L;
  Asm.sd p t0 0L s3 (* free the slot *);
  Asm.j p "consume";
  Asm.label p "reduce";
  Asm.li p t6 0xFFFFFFL;
  Asm.and_ p a1 a1 t6;
  accumulate p ~value_reg:a1 ~tmp:t5;
  join p ~harts;
  Machine.program p

(* --- lockladder: rotating contention over a ladder of four locks ----------

   Every hart climbs the same ladder of four line-separated locks, starting
   at a different rung ((hart + step) mod 4), and increments the counter
   each lock protects. Consecutive steps hand each line to a different
   hart, so the locks and counters ping-pong through the coherence protocol
   — peak line migration traffic. After a barrier, hart 0 folds the four
   counters into the checksum; mutual exclusion makes that sum exactly
   harts * steps, so any lost update breaks the checksum. *)
let lockladder ~harts ~scale =
  let steps = 20 * scale in
  let p = Asm.create () in
  Asm.li p s1 locks_base;
  Asm.li p s2 ctrs_base;
  Asm.csrr p s0 Csr.mhartid;
  Asm.li p a1 0L;
  Asm.li p t0 0L (* step *);
  Asm.li p s3 (Int64.of_int steps);
  Asm.label p "step";
  Asm.bge p t0 s3 "climbed";
  (* rung = (hart + step) & 3, each rung 64 B apart *)
  Asm.add p t1 s0 t0;
  Asm.andi p t1 t1 3L;
  Asm.slli p t1 t1 6;
  Asm.add p t2 t1 s1 (* lock *);
  Asm.add p t3 t1 s2 (* counter *);
  Kernel_lib.spin_lock p ~addr_reg:t2 ~tmp1:t4 ~tmp2:t5;
  Asm.ld p t4 0L t3;
  Asm.addi p t4 t4 1L;
  Asm.sd p t4 0L t3;
  Kernel_lib.spin_unlock p ~addr_reg:t2;
  Asm.addi p a1 a1 1L (* local contribution: one per step *);
  Asm.addi p t0 t0 1L;
  Asm.j p "step";
  Asm.label p "climbed";
  Asm.li p t1 barrier1;
  Kernel_lib.barrier p ~addr_reg:t1 ~harts ~tmp1:t2 ~tmp2:t3;
  (* hart 0 audits the ladder: the counters must sum to harts * steps *)
  Asm.bne p s0 zero "reduce";
  Asm.li p t0 0L;
  Asm.label p "audit";
  Asm.slli p t1 t0 6;
  Asm.add p t1 t1 s2;
  Asm.ld p t2 0L t1;
  Asm.add p a1 a1 t2;
  Asm.addi p t0 t0 1L;
  Asm.li p t3 4L;
  Asm.blt p t0 t3 "audit";
  Asm.label p "reduce";
  Asm.li p t6 0xFFFFFFL;
  Asm.and_ p a1 a1 t6;
  accumulate p ~value_reg:a1 ~tmp:t5;
  join p ~harts;
  Machine.program p

let all =
  [
    ("reqresp", fun ~harts ~scale -> reqresp ~harts ~scale);
    ("prodcons", fun ~harts ~scale -> prodcons ~harts ~scale);
    ("lockladder", fun ~harts ~scale -> lockladder ~harts ~scale);
  ]

let names = List.map fst all

let find name ~harts ~scale =
  match List.assoc_opt name all with
  | Some f -> f ~harts ~scale
  | None -> invalid_arg ("Server_kernels.find: unknown kernel " ^ name)
