open Isa
open Reg_name

let data0 = 0x8020_0000L
let data1 = 0x8060_0000L

(* emit an in-register LCG step: r = r * K + C (K in kreg) *)
let lcg_step p ~r ~kreg =
  Asm.mul p r r kreg;
  Asm.addi p r r 0x2EFL

let finish p =
  Kernel_lib.exit_a0 p

(* --- bzip2: run-length scanning over random bytes ----------------------- *)
let bzip2 ~scale =
  let n = 24_000 * scale in
  let p = Asm.create () in
  Asm.li p s0 data0;
  Asm.li p s1 (Int64.of_int n);
  Asm.li p a0 0L;
  Asm.li p t0 0L (* i *);
  Asm.li p t1 (-1L) (* prev *);
  Asm.li p t2 0L (* run *);
  Asm.label p "loop";
  Asm.add p t3 s0 t0;
  Asm.lbu p t4 0L t3;
  Asm.bne p t4 t1 "break_run";
  Asm.addi p t2 t2 1L;
  Asm.j p "next";
  Asm.label p "break_run";
  Asm.mul p t5 t2 t2;
  Asm.add p a0 a0 t5;
  Asm.li p t2 1L;
  Asm.mv p t1 t4;
  Asm.label p "next";
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s1 "loop";
  finish p;
  Machine.program
    ~init_mem:(fun m ->
      (* an 8-symbol alphabet: runs are short but common, so the run-break
         branch is genuinely data-dependent (bzip2's profile) *)
      Kernel_lib.init_random_words m ~base:data0 ~n:(n / 8) ~bound:0x0707070707070708L ~seed:0x1234)
    p

(* --- gcc: opcode dispatch ladder over a random "IR" --------------------- *)
let gcc ~scale =
  let n = 12_000 * scale in
  let p = Asm.create () in
  Asm.li p s0 data0;
  Asm.li p s1 (Int64.of_int n);
  Asm.li p a0 1L;
  Asm.li p t0 0L;
  Asm.label p "loop";
  Asm.slli p t3 t0 3;
  Asm.add p t3 t3 s0;
  Asm.ld p t4 0L t3 (* opcode 0..7 *);
  Asm.li p t5 0L;
  Asm.beq p t4 t5 "op0";
  Asm.li p t5 1L;
  Asm.beq p t4 t5 "op1";
  Asm.li p t5 2L;
  Asm.beq p t4 t5 "op2";
  Asm.li p t5 3L;
  Asm.beq p t4 t5 "op3";
  (* 4..7: arithmetic mix *)
  Asm.xori p a0 a0 0x55L;
  Asm.add p a0 a0 t4;
  Asm.j p "next";
  Asm.label p "op0";
  Asm.addi p a0 a0 3L;
  Asm.j p "next";
  Asm.label p "op1";
  Asm.slli p a0 a0 1;
  Asm.j p "next";
  Asm.label p "op2";
  Asm.srli p a0 a0 1;
  Asm.addi p a0 a0 7L;
  Asm.j p "next";
  Asm.label p "op3";
  Asm.mul p a0 a0 t4;
  Asm.addi p a0 a0 1L;
  Asm.label p "next";
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s1 "loop";
  Asm.li p t0 0xFFFFFFL;
  Asm.and_ p a0 a0 t0;
  finish p;
  Machine.program
    ~init_mem:(fun m -> Kernel_lib.init_random_words m ~base:data0 ~n ~bound:8L ~seed:0x777)
    p

(* --- mcf: giant-footprint pointer chases (TLB killer) -------------------- *)
(* Four independent chains interleaved, so the non-blocking TLB's parallel
   miss handling has independent misses to overlap — like mcf's multiple
   arc-list traversals. *)
let mcf ~scale =
  let nodes = 3072 in
  let stride = 4096 + 64 in
  let hops = 3_500 * scale in
  let p = Asm.create () in
  Asm.li p s1 (Int64.of_int hops);
  Asm.li p a0 0L;
  Asm.li p t0 0L;
  (* four entry pointers, patched into memory after the code *)
  Asm.la p t1 "entry_ptrs";
  Asm.ld p s2 0L t1;
  Asm.ld p s3 8L t1;
  Asm.ld p s4 16L t1;
  Asm.ld p s5 24L t1;
  Asm.label p "loop";
  Asm.ld p t2 8L s2;
  Asm.add p a0 a0 t2;
  Asm.ld p t3 8L s3;
  Asm.add p a0 a0 t3;
  Asm.ld p t4 8L s4;
  Asm.add p a0 a0 t4;
  Asm.ld p t5 8L s5;
  Asm.add p a0 a0 t5;
  Asm.ld p s2 0L s2;
  Asm.ld p s3 0L s3;
  Asm.ld p s4 0L s4;
  Asm.ld p s5 0L s5;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s1 "loop";
  finish p;
  Asm.label p "entry_ptrs";
  for _ = 1 to 8 do
    Asm.nop p
  done;
  let entry_off = Asm.addr_of p ~base:Addr_map.dram_base "entry_ptrs" in
  Machine.program
    ~init_mem:(fun m ->
      let first = Kernel_lib.init_pointer_chase m ~base:data0 ~n:nodes ~stride ~seed:0xBEEF in
      (* four entries spread around the same cycle *)
      let nth_next a k =
        let rec go a k = if k = 0 then a else go (Phys_mem.load m ~bytes:8 a) (k - 1) in
        go a k
      in
      Phys_mem.store m ~bytes:8 entry_off first;
      Phys_mem.store m ~bytes:8 (Int64.add entry_off 8L) (nth_next first (nodes / 4));
      Phys_mem.store m ~bytes:8 (Int64.add entry_off 16L) (nth_next first (nodes / 2));
      Phys_mem.store m ~bytes:8 (Int64.add entry_off 24L) (nth_next first (3 * nodes / 4)))
    p

(* --- gobmk: board-scan with data-dependent pattern branches -------------- *)
let gobmk ~scale =
  let iters = 12_000 * scale in
  let p = Asm.create () in
  Asm.li p s0 data0 (* 1K of random words *);
  Asm.li p s1 (Int64.of_int iters);
  Asm.li p s2 0x5851F42DL;
  Asm.li p a0 0L;
  Asm.li p t0 0L;
  Asm.li p t1 0x9E37L;
  Asm.label p "loop";
  lcg_step p ~r:t1 ~kreg:s2;
  Asm.srli p t2 t1 7;
  Asm.andi p t2 t2 127L;
  Asm.slli p t2 t2 3;
  Asm.add p t2 t2 s0;
  Asm.ld p t3 0L t2 (* board word *);
  (* arithmetic liberty count of the low nibbles (no branches) *)
  Asm.andi p t4 t3 15L;
  Asm.add p a0 a0 t4;
  Asm.srli p t5 t3 4;
  Asm.andi p t5 t5 15L;
  Asm.add p a0 a0 t5;
  (* one genuinely data-dependent pattern branch per position *)
  Asm.srli p t6 t3 17;
  Asm.andi p t6 t6 3L;
  Asm.beq p t6 zero "atari";
  Asm.addi p a0 a0 1L;
  Asm.j p "next";
  Asm.label p "atari";
  Asm.slli p a0 a0 1;
  Asm.li p t6 0xFFFFFFL;
  Asm.and_ p a0 a0 t6;
  Asm.label p "next";
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s1 "loop";
  finish p;
  Machine.program
    ~init_mem:(fun m ->
      Kernel_lib.init_random_words m ~base:data0 ~n:128 ~bound:Int64.max_int ~seed:0x60)
    p

(* --- hmmer: dense Viterbi-like adds and maxes, sequential ---------------- *)
let hmmer ~scale =
  let n = 4_000 in
  let passes = 6 * scale in
  let p = Asm.create () in
  Asm.li p s3 (Int64.of_int passes);
  Asm.li p a0 0L;
  Asm.label p "pass";
  Asm.li p s0 data0;
  Asm.li p s1 (Int64.of_int n);
  Asm.li p t0 0L;
  Asm.li p t6 0L (* best *);
  Asm.label p "loop";
  Asm.slli p t2 t0 3;
  Asm.add p t2 t2 s0;
  Asm.ld p t3 0L t2;
  Asm.ld p t4 8L t2;
  Asm.add p t5 t3 t4;
  Asm.add p t5 t5 t6;
  Asm.blt p t5 t6 "no_update";
  Asm.mv p t6 t5;
  Asm.label p "no_update";
  Asm.andi p t6 t6 0x7FFL;
  Asm.addi p t0 t0 2L;
  Asm.blt p t0 s1 "loop";
  Asm.add p a0 a0 t6;
  Asm.addi p s3 s3 (-1L);
  Asm.bne p s3 zero "pass";
  finish p;
  Machine.program
    ~init_mem:(fun m -> Kernel_lib.init_random_words m ~base:data0 ~n ~bound:1000L ~seed:0x42)
    p

(* --- sjeng: hash-driven lookups with unpredictable branches and divides -- *)
let sjeng ~scale =
  let iters = 9_000 * scale in
  let p = Asm.create () in
  Asm.li p s0 data0 (* 64KB table *);
  Asm.li p s1 (Int64.of_int iters);
  Asm.li p s2 0x5851F42DL;
  Asm.li p a0 0L;
  Asm.li p t0 0L;
  Asm.li p t1 0x1234L;
  Asm.label p "loop";
  lcg_step p ~r:t1 ~kreg:s2;
  Asm.srli p t2 t1 9;
  Asm.li p t3 8191L;
  Asm.and_ p t2 t2 t3;
  Asm.slli p t2 t2 3;
  Asm.add p t2 t2 s0;
  Asm.ld p t3 0L t2 (* hash entry *);
  Asm.andi p t4 t3 3L;
  Asm.beq p t4 zero "miss";
  Asm.li p t5 1L;
  Asm.beq p t4 t5 "cut";
  (* search deeper: a divide models evaluation *)
  Asm.ori p t5 t3 1L;
  Asm.divu p t5 t1 t5;
  Asm.add p a0 a0 t5;
  Asm.j p "next";
  Asm.label p "miss";
  Asm.sd p t1 0L t2;
  Asm.addi p a0 a0 1L;
  Asm.j p "next";
  Asm.label p "cut";
  Asm.xor p a0 a0 t3;
  Asm.label p "next";
  Asm.li p t5 0xFFFFFFL;
  Asm.and_ p a0 a0 t5;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s1 "loop";
  finish p;
  Machine.program
    ~init_mem:(fun m ->
      Kernel_lib.init_random_words m ~base:data0 ~n:8192 ~bound:Int64.max_int ~seed:0x99)
    p

(* --- libquantum: streaming toggle over an L2-sized array ----------------- *)
let libquantum ~scale =
  let n = 256 * 1024 (* words = 2MB, larger than most L2 configs *) in
  let passes = scale in
  let p = Asm.create () in
  Asm.li p s3 (Int64.of_int passes);
  Asm.li p a0 0L;
  Asm.label p "pass";
  Asm.li p s0 data0;
  Asm.li p s1 (Int64.of_int n);
  Asm.li p t0 0L;
  Asm.li p t4 0x40L;
  Asm.label p "loop";
  Asm.slli p t2 t0 3;
  Asm.add p t2 t2 s0;
  Asm.ld p t3 0L t2;
  Asm.xor p t3 t3 t4;
  Asm.sd p t3 0L t2;
  Asm.add p a0 a0 t3;
  Asm.addi p t0 t0 8L;
  Asm.blt p t0 s1 "loop";
  Asm.addi p s3 s3 (-1L);
  Asm.bne p s3 zero "pass";
  Asm.li p t5 0xFFFFFFL;
  Asm.and_ p a0 a0 t5;
  finish p;
  Machine.program
    ~init_mem:(fun m -> Kernel_lib.init_random_words m ~base:data0 ~n:64 ~bound:255L ~seed:0x7)
    p

(* --- h264ref: block SAD with good locality and high ILP ------------------ *)
let h264ref ~scale =
  let blocks = 500 * scale in
  let p = Asm.create () in
  Asm.li p s0 data0 (* frame A *);
  Asm.li p s1 data1 (* frame B *);
  Asm.li p s2 (Int64.of_int blocks);
  Asm.li p s3 0L (* block index *);
  Asm.li p a0 0L;
  Asm.label p "block";
  (* block offset: (idx * 67) mod 32768, word aligned *)
  Asm.li p t0 67L;
  Asm.mul p t0 s3 t0;
  Asm.li p t1 32767L;
  Asm.and_ p t0 t0 t1;
  Asm.andi p t0 t0 (-8L);
  Asm.add p t2 s0 t0;
  Asm.add p t3 s1 t0;
  (* 16 byte-pairs of abs-diff *)
  Asm.li p t4 16L;
  Asm.label p "sad";
  Asm.lbu p t5 0L t2;
  Asm.lbu p t6 0L t3;
  Asm.sub p t5 t5 t6;
  (* branchless |x|: video kernels keep their inner loops branch-free *)
  Asm.srai p t6 t5 63;
  Asm.xor p t5 t5 t6;
  Asm.sub p t5 t5 t6;
  Asm.add p a0 a0 t5;
  Asm.addi p t2 t2 1L;
  Asm.addi p t3 t3 1L;
  Asm.addi p t4 t4 (-1L);
  Asm.bne p t4 zero "sad";
  Asm.addi p s3 s3 1L;
  Asm.blt p s3 s2 "block";
  finish p;
  Machine.program
    ~init_mem:(fun m ->
      Kernel_lib.init_random_bytes m ~base:data0 ~n:33000 ~seed:0x11;
      Kernel_lib.init_random_bytes m ~base:data1 ~n:33000 ~seed:0x22)
    p

(* --- astar: data-dependent grid walk + sparse node info (TLB heavy) ------ *)
let astar ~scale =
  let steps = 30_000 * scale in
  let p = Asm.create () in
  Asm.li p s0 data0 (* 64KB grid of bytes *);
  Asm.li p s1 data1 (* sparse node info, 4096 pages *);
  Asm.li p s2 (Int64.of_int steps);
  Asm.li p s3 0x5851F42DL (* lcg multiplier *);
  Asm.li p s4 0xACE1L (* lcg state: models the open-list ordering *);
  Asm.li p a0 0L;
  Asm.li p t0 0L (* step *);
  Asm.li p t1 777L (* pos *);
  Asm.label p "loop";
  lcg_step p ~r:s4 ~kreg:s3;
  Asm.li p t2 65535L;
  Asm.and_ p t3 t1 t2;
  Asm.add p t3 t3 s0;
  Asm.lbu p t4 0L t3 (* cell *);
  (* sparse node record: page selected by position + search order; the
     payload sits at a page-dependent set offset so the lines spread over
     the caches (TLB-bound, not DRAM-bound — astar's profile) *)
  Asm.srli p t6 s4 9;
  Asm.add p t6 t6 t1;
  Asm.li p t5 4095L;
  Asm.and_ p t6 t6 t5;
  Asm.srli p t5 t6 6;
  Asm.andi p t5 t5 63L;
  Asm.slli p t5 t5 6;
  Asm.slli p t6 t6 12;
  Asm.add p t6 t6 t5;
  Asm.add p t6 t6 s1;
  Asm.ld p t5 0L t6;
  Asm.add p a0 a0 t5;
  (* direction branch on cell low bits *)
  Asm.andi p t5 t4 3L;
  Asm.beq p t5 zero "d0";
  Asm.li p t2 1L;
  Asm.beq p t5 t2 "d1";
  Asm.li p t2 2L;
  Asm.beq p t5 t2 "d2";
  Asm.addi p t1 t1 257L;
  Asm.j p "go";
  Asm.label p "d0";
  Asm.addi p t1 t1 1L;
  Asm.j p "go";
  Asm.label p "d1";
  Asm.addi p t1 t1 255L;
  Asm.j p "go";
  Asm.label p "d2";
  Asm.addi p t1 t1 511L;
  Asm.label p "go";
  Asm.add p t1 t1 t4;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s2 "loop";
  Asm.li p t5 0xFFFFFFL;
  Asm.and_ p a0 a0 t5;
  finish p;
  Machine.program
    ~init_mem:(fun m ->
      Kernel_lib.init_random_bytes m ~base:data0 ~n:65536 ~seed:0x33;
      (* one payload word at the start of each sparse page *)
      let rng = ref 5 in
      for k = 0 to 4095 do
        Phys_mem.store m ~bytes:8
          (Int64.add data1 (Int64.of_int ((k * 4096) + ((k lsr 6) land 63 * 64))))
          (Int64.of_int (Kernel_lib.lcg rng land 0xFF))
      done)
    p

(* --- omnetpp: event-heap delete-min over sparse nodes (TLB + branches) --- *)
(* Percolate-to-leaf delete-min: each operation walks root-to-leaf choosing
   the smaller child, touching ~13 scattered pages — omnetpp's event-queue
   churn. *)
let omnetpp ~scale =
  let heap_nodes = 8192 in
  let node_stride = 4096 (* one node per page: 32MB footprint *) in
  let ops = 1_200 * scale in
  let p = Asm.create () in
  Asm.li p s0 data1;
  Asm.li p s1 (Int64.of_int ops);
  Asm.li p s2 0x5851F42DL;
  Asm.li p s3 (Int64.of_int heap_nodes);
  Asm.li p a0 0L;
  Asm.li p t0 0L;
  Asm.li p t1 0xACEL;
  Asm.label p "loop";
  lcg_step p ~r:t1 ~kreg:s2;
  Asm.li p t4 1L (* node index (1-based heap) *);
  Asm.label p "sift";
  Asm.slli p t5 t4 1 (* left child *);
  Asm.bge p t5 s3 "at_leaf";
  (* load both children's keys; node k lives at k*4096 + (k&63)*64 so the
     key lines spread over cache sets while still costing a page each *)
  let node_addr ~idx ~dst ~tmp =
    Asm.slli p dst idx 12;
    Asm.srli p tmp idx 6;
    Asm.andi p tmp tmp 63L;
    Asm.slli p tmp tmp 6;
    Asm.add p dst dst tmp;
    Asm.add p dst dst s0
  in
  node_addr ~idx:t5 ~dst:t6 ~tmp:a2;
  Asm.ld p t2 0L t6 (* left key *);
  Asm.addi p a2 t5 1L;
  node_addr ~idx:a2 ~dst:t3 ~tmp:a3;
  Asm.ld p t3 0L t3 (* right key *);
  (* pick the smaller child (data-dependent branch) *)
  Asm.blt p t2 t3 "go_left";
  Asm.addi p t5 t5 1L;
  Asm.mv p t2 t3;
  Asm.label p "go_left";
  (* hoist the chosen key into the parent slot *)
  Asm.slli p t6 t4 12;
  Asm.srli p a2 t4 6;
  Asm.andi p a2 a2 63L;
  Asm.slli p a2 a2 6;
  Asm.add p t6 t6 a2;
  Asm.add p t6 t6 s0;
  Asm.sd p t2 0L t6;
  Asm.add p a0 a0 t2;
  Asm.mv p t4 t5;
  Asm.j p "sift";
  Asm.label p "at_leaf";
  (* insert a fresh random key at the vacated leaf *)
  Asm.srli p t2 t1 5;
  Asm.li p t3 0xFFFFFL;
  Asm.and_ p t2 t2 t3;
  Asm.slli p t6 t4 12;
  Asm.srli p a2 t4 6;
  Asm.andi p a2 a2 63L;
  Asm.slli p a2 a2 6;
  Asm.add p t6 t6 a2;
  Asm.add p t6 t6 s0;
  Asm.sd p t2 0L t6;
  Asm.li p t6 0xFFFFFFL;
  Asm.and_ p a0 a0 t6;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s1 "loop";
  finish p;
  Machine.program
    ~init_mem:(fun m ->
      let rng = ref 9 in
      for k = 1 to heap_nodes - 1 do
        Phys_mem.store m ~bytes:8
          (Int64.add data1 (Int64.of_int ((k * node_stride) + ((k lsr 6) land 63 * 64))))
          (Int64.of_int (Kernel_lib.lcg rng land 0xFFFFF))
      done)
    p

(* --- xalancbmk: byte scanning with tag dispatch --------------------------- *)
let xalancbmk ~scale =
  let n = 16_000 * scale in
  let p = Asm.create () in
  Asm.li p s0 data0;
  Asm.li p s1 (Int64.of_int n);
  Asm.li p s2 data1 (* 256-entry action table *);
  Asm.li p a0 0L;
  Asm.li p t0 0L;
  Asm.label p "loop";
  Asm.add p t2 s0 t0;
  Asm.lbu p t3 0L t2;
  Asm.slli p t4 t3 3;
  Asm.add p t4 t4 s2;
  Asm.ld p t5 0L t4 (* action *);
  Asm.andi p t6 t3 7L;
  Asm.beq p t6 zero "open_tag";
  Asm.andi p t6 t3 15L;
  Asm.li p t2 3L;
  Asm.beq p t6 t2 "close_tag";
  Asm.add p a0 a0 t5;
  Asm.j p "next";
  Asm.label p "open_tag";
  Asm.slli p a0 a0 1;
  Asm.xor p a0 a0 t5;
  Asm.j p "next";
  Asm.label p "close_tag";
  Asm.srli p a0 a0 1;
  Asm.add p a0 a0 t3;
  Asm.label p "next";
  Asm.li p t2 0xFFFFFFL;
  Asm.and_ p a0 a0 t2;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s1 "loop";
  finish p;
  Machine.program
    ~init_mem:(fun m ->
      Kernel_lib.init_random_bytes m ~base:data0 ~n ~seed:0x55;
      Kernel_lib.init_random_words m ~base:data1 ~n:256 ~bound:65536L ~seed:0x66)
    p

(* --- smoke: a tiny mixed loop (loads, stores, data-dependent branches) for
   fault-injection campaigns and CI, where full kernels are too long ------ *)
let smoke ~scale =
  let n = 256 * scale in
  let p = Asm.create () in
  Asm.li p s0 data0;
  Asm.li p s1 (Int64.of_int n);
  Asm.li p a0 0L;
  Asm.li p t0 0L;
  Asm.label p "loop";
  Asm.slli p t1 t0 3;
  Asm.add p t3 s0 t1;
  Asm.ld p t4 0L t3;
  Asm.xor p a0 a0 t4;
  Asm.add p a0 a0 t0;
  Asm.andi p t2 t4 1L;
  Asm.beq p t2 zero "even";
  Asm.mul p a0 a0 t4;
  Asm.label p "even";
  Asm.sd p a0 0L t3;
  Asm.addi p t0 t0 1L;
  Asm.blt p t0 s1 "loop";
  Asm.li p t2 0xFFFFFFL;
  Asm.and_ p a0 a0 t2;
  finish p;
  Machine.program
    ~init_mem:(fun m ->
      Kernel_lib.init_random_words m ~base:data0 ~n ~bound:0x10000000L ~seed:0x5E0)
    p

let all =
  [
    ("bzip2", fun ~scale -> bzip2 ~scale);
    ("gcc", fun ~scale -> gcc ~scale);
    ("mcf", fun ~scale -> mcf ~scale);
    ("gobmk", fun ~scale -> gobmk ~scale);
    ("hmmer", fun ~scale -> hmmer ~scale);
    ("sjeng", fun ~scale -> sjeng ~scale);
    ("libquantum", fun ~scale -> libquantum ~scale);
    ("h264ref", fun ~scale -> h264ref ~scale);
    ("astar", fun ~scale -> astar ~scale);
    ("omnetpp", fun ~scale -> omnetpp ~scale);
    ("xalancbmk", fun ~scale -> xalancbmk ~scale);
  ]

let names = List.map fst all

let find name ~scale =
  (* [smoke] is findable but deliberately absent from [all]: it is far too
     short to count as a benchmark and only exists for fault-injection
     campaigns and CI *)
  if name = "smoke" then smoke ~scale
  else
    match List.assoc_opt name all with
    | Some f -> f ~scale
    | None -> invalid_arg ("Spec_kernels.find: unknown kernel " ^ name)
