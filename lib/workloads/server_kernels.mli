(** Server-shaped multi-threaded kernels: communication-dominated loops that
    stress the coherent memory system rather than the ALUs.

    [reqresp] bounces single-word request/response handshakes between client
    harts and a server hart; [prodcons] streams values through bounded
    SPSC rings between hart pairs (fenced in the MP-litmus places, so it is
    correct under WMM); [lockladder] rotates every hart over a ladder of
    four contended spin locks and audits the protected counters.

    Conventions match {!Parsec_kernels}: all harts run the same code and
    branch on [mhartid]; hart 0 reduces per-hart partial sums and exits
    with a checksum that is schedule-independent for a fixed hart count —
    [lockladder]'s checksum additionally proves mutual exclusion held. *)

val all : (string * (harts:int -> scale:int -> Machine.program)) list

val find : string -> harts:int -> scale:int -> Machine.program
val names : string list
