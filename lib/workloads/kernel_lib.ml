open Isa
open Reg_name

let exit_a0 p =
  Asm.li p a7 93L;
  Asm.ecall p

let worker_join p ~harts ~done_addr ~result_addr =
  Asm.li p t5 done_addr;
  Asm.li p t6 1L;
  Asm.fence p;
  Asm.amoadd_d p zero t6 t5;
  Asm.csrr p t6 Csr.mhartid;
  Asm.bne p t6 zero "kl_worker_exit";
  Asm.li p t6 (Int64.of_int harts);
  Asm.label p "kl_wait_all";
  Asm.ld p t4 0L t5;
  Asm.bne p t4 t6 "kl_wait_all";
  Asm.fence p;
  Asm.li p t5 result_addr;
  Asm.ld p a0 0L t5;
  exit_a0 p;
  Asm.label p "kl_worker_exit";
  Asm.li p a0 0L;
  exit_a0 p

let spin_lock p ~addr_reg ~tmp1 ~tmp2 =
  let l = Asm.fresh p "lock" in
  Asm.label p l;
  Asm.li p tmp1 1L;
  Asm.amoswap_w p tmp2 tmp1 addr_reg;
  Asm.bne p tmp2 zero l;
  Asm.fence p

let spin_unlock p ~addr_reg =
  Asm.fence p;
  Asm.sw p zero 0L addr_reg

let barrier p ~addr_reg ~harts ~tmp1 ~tmp2 =
  Asm.li p tmp1 1L;
  Asm.fence p;
  Asm.amoadd_d p zero tmp1 addr_reg;
  Asm.li p tmp1 (Int64.of_int harts);
  let l = Asm.fresh p "bar" in
  Asm.label p l;
  Asm.ld p tmp2 0L addr_reg;
  Asm.blt p tmp2 tmp1 l;
  Asm.fence p

let partition p ~n_reg ~harts ~lo_reg ~hi_reg ~tmp =
  Asm.csrr p tmp Csr.mhartid;
  Asm.addi p hi_reg n_reg (Int64.of_int (harts - 1));
  Asm.li p lo_reg (Int64.of_int harts);
  Asm.divu p hi_reg hi_reg lo_reg;
  Asm.mul p lo_reg hi_reg tmp;
  Asm.add p hi_reg lo_reg hi_reg;
  let clamp r =
    let l = Asm.fresh p "clamp" in
    Asm.bge p n_reg r l;
    Asm.mv p r n_reg;
    Asm.label p l
  in
  clamp lo_reg;
  clamp hi_reg

let lcg state =
  state := ((!state * 0x5851F42D4C957F2D) + 0x14057B7EF767814F) land max_int;
  !state

let init_pointer_chase pmem ~base ~n ~stride ~seed =
  let rng = ref seed in
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = lcg rng mod (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  let addr k = Int64.add base (Int64.of_int (perm.(k) * stride)) in
  for k = 0 to n - 1 do
    let next = addr ((k + 1) mod n) in
    Phys_mem.store pmem ~bytes:8 (addr k) next;
    (* a payload value next to the pointer *)
    Phys_mem.store pmem ~bytes:8 (Int64.add (addr k) 8L) (Int64.of_int (perm.(k) land 0xFF))
  done;
  addr 0

let init_random_bytes pmem ~base ~n ~seed =
  let rng = ref seed in
  for i = 0 to n - 1 do
    Phys_mem.store pmem ~bytes:1
      (Int64.add base (Int64.of_int i))
      (Int64.of_int (lcg rng land 0xFF))
  done

let init_random_words pmem ~base ~n ~bound ~seed =
  let rng = ref seed in
  for i = 0 to n - 1 do
    Phys_mem.store pmem ~bytes:8
      (Int64.add base (Int64.of_int (i * 8)))
      (Int64.rem (Int64.of_int (lcg rng)) bound)
  done
