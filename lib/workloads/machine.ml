open Cmd
open Isa

type kind =
  | Golden_only
  | In_order of { mem : Mem.Mem_sys.config; tlb : Tlb.Tlb_sys.config }
  | Out_of_order of Ooo.Config.t

type program = {
  asm : Asm.t;
  init_mem : (Phys_mem.t -> unit) option;
  regs : (int * int64) list;
}

let program ?init_mem ?(regs = []) asm = { asm; init_mem; regs }

type core_handle =
  | HGolden
  | HInorder of Inorder.Inorder_core.t
  | HOoo of Ooo.Core.t

type t = {
  kind : kind;
  ncores : int;
  pmem : Phys_mem.t;
  mmio : Mmio.t;
  sim : Sim.t option; (* None for golden-only *)
  golden : Golden.t option; (* used directly when Golden_only *)
  cores : core_handle array;
  stats_t : Stats.t;
  mutable spent_cycles : int;
  mutable wd : Verif.Watchdog.t option;
  mutable checks : Verif.Invariant.check list;
  mutable monitors : Mcheck.Obligation.monitor list;
  mutable tlog : (Obs.Commit_log.t * Format.formatter) option;
  mutable registry : State.registry option;
  mutable config_key : string;
}

type outcome = { exits : int64 array; cycles : int; timed_out : bool }

let base = Addr_map.dram_base

let load_program pmem (p : program) =
  Array.iteri
    (fun i w ->
      Phys_mem.store pmem ~bytes:4 (Int64.add base (Int64.of_int (i * 4))) (Int64.of_int w))
    (Asm.words p.asm ~base);
  match p.init_mem with Some f -> f pmem | None -> ()

let instrs t =
  let total = ref 0 in
  Array.iteri
    (fun h c ->
      match c with
      | HGolden -> (
        match t.golden with
        | Some g -> total := !total + Int64.to_int (Golden.instret g ~hart:h)
        | None -> ())
      | HInorder c -> total := !total + Inorder.Inorder_core.instret c
      | HOoo c -> total := !total + Ooo.Core.instret c)
    t.cores;
  !total

let create ?(ncores = 1) ?(paging = false) ?(megapages = false) ?(mapped_mb = 64)
    ?(cosim = false) ?schedule ?(mode = Sim.Multi) ?(fastpath = true) ?(audit = false)
    ?(jobs = 1) ?(partition_audit = false) ?(compile = true) ?(compile_audit = false)
    ?(epoch = 1) ?(watchdog = 0) ?(invariants = false) ?(obligations = false) ?obs kind prog =
  (* Cosim shares one Golden.t across every hart's commit hook, so its state
     is not partition-private; force serial execution under cosim — and
     per-cycle synchronization: the goldens share a private memory, so the
     cross-hart commit interleaving must not depend on the window length. *)
  let jobs = if cosim then 1 else jobs in
  let epoch = if cosim then 1 else epoch in
  (* The whole build runs inside a [State.collecting] scope: every primitive
     constructed along the way (EHRs, FIFOs, the PRF, caches, TLBs, the
     scheduler) registers its snapshot entry as a side effect, and the
     machine-level state the ISA layer cannot self-register (physical
     memory, MMIO devices, the golden models, spent cycles) is appended
     below. The resulting registry is what {!snapshot}/{!restore} walk. *)
  let construct () =
  let pmem = Phys_mem.create () in
  let mmio = Mmio.create () in
  let stats_t = Stats.create () in
  load_program pmem prog;
  let satp =
    if paging then begin
      let pt = Page_table.create pmem ~alloc_base:0xA000_0000L in
      let len = Int64.of_int (mapped_mb * 1024 * 1024) in
      if megapages then Page_table.map_mega_range pt ~va:base ~pa:base ~len
      else Page_table.map_range pt ~va:base ~pa:base ~len;
      Page_table.root pt
    end
    else 0L
  in
  (* cores built with no hub get the shared inactive Pipe.null: emission
     sites then cost one load-and-branch and record nothing *)
  let pipe_for i =
    match obs with Some hub -> Obs.Hub.pipe hub ~hart:i | None -> Obs.Pipe.null
  in
  let mk_sim clk rules =
    (* [compile] is pure strategy — compiled and interpreted schedules are
       bit-identical — so it stays out of [config_key] below and snapshots
       move freely between the two. *)
    let sim =
      Sim.create ~mode ~fastpath ~audit ~jobs ~partition_audit ~compile ~compile_audit ~epoch
        ~stats:stats_t clk rules
    in
    (match obs with Some hub -> Obs.Hub.attach hub sim | None -> ());
    sim
  in
  let build () =
  match kind with
  | Golden_only ->
    let g = Golden.create ~nharts:ncores pmem mmio in
    for h = 0 to ncores - 1 do
      Golden.set_pc g ~hart:h base;
      if satp <> 0L then Golden.set_satp g ~hart:h satp;
      List.iter (fun (r, v) -> Golden.set_reg g ~hart:h r v) prog.regs
    done;
    {
      kind;
      ncores;
      pmem;
      mmio;
      sim = None;
      golden = Some g;
      cores = Array.make ncores HGolden;
      stats_t;
      spent_cycles = 0;
      wd = None;
      checks = [];
      monitors = [];
      tlog = None;
      registry = None;
      config_key = "";
    }
  | In_order { mem; tlb } ->
    let clk = Clock.create () in
    let ms = Mem.Mem_sys.create clk pmem mem ~ncores ~fetch_width:2 ~stats:stats_t in
    let tlbs =
      Array.init ncores (fun i ->
          Partition.scoped (i + 1) (fun () ->
              let tl =
                Tlb.Tlb_sys.create ~name:(Printf.sprintf "c%d.tlb" i)
                  ~walk_lookahead:(Mem.Mem_sys.lookahead ms) clk tlb ~stats:stats_t ()
              in
              Tlb.Tlb_sys.set_satp tl satp;
              tl))
    in
    let cores =
      Array.init ncores (fun i ->
          let c =
            Inorder.Inorder_core.create ~name:(Printf.sprintf "c%d" i) ~pipe:(pipe_for i) clk
              ~hart_id:i
              ~icache:(Mem.Mem_sys.icache ms i) ~dcache:(Mem.Mem_sys.dcache ms i) ~tlb:tlbs.(i)
              ~mmio ~stats:stats_t ()
          in
          Inorder.Inorder_core.set_pc c base;
          List.iter (fun (r, v) -> Inorder.Inorder_core.set_reg c r v) prog.regs;
          c)
    in
    let rules =
      List.concat_map Inorder.Inorder_core.rules (Array.to_list cores)
      @ List.concat_map Tlb.Tlb_sys.rules (Array.to_list tlbs)
      @ Tlb.Walk_xbar.rules tlbs ~banks:(Mem.Mem_sys.l2_banks ms) ~bank_of:(Mem.Mem_sys.bank_of ms)
      @ Mem.Mem_sys.rules ms
    in
    {
      kind;
      ncores;
      pmem;
      mmio;
      sim = Some (mk_sim clk rules);
      golden = None;
      cores = Array.map (fun c -> HInorder c) cores;
      stats_t;
      spent_cycles = 0;
      wd = None;
      checks = [];
      monitors = [];
      tlog = None;
      registry = None;
      config_key = "";
    }
  | Out_of_order cfg ->
    let clk = Clock.create () in
    let ms =
      Mem.Mem_sys.create clk pmem cfg.Ooo.Config.mem ~ncores ~fetch_width:cfg.width
        ~stats:stats_t
    in
    let golden =
      if cosim then begin
        let g = Golden.create ~nharts:ncores (Phys_mem.copy pmem) (Mmio.create ()) in
        for h = 0 to ncores - 1 do
          Golden.set_pc g ~hart:h base;
          if satp <> 0L then Golden.set_satp g ~hart:h satp;
          List.iter (fun (r, v) -> Golden.set_reg g ~hart:h r v) prog.regs
        done;
        Some g
      end
      else None
    in
    (* The cosim golden model (and its private memory/device copies) is
       reachable only from the cores' commit hooks, so its snapshot entry
       must be registered here while it is in scope. *)
    (match golden with
    | Some g ->
      State.field ~name:"cosim.golden"
        (fun () -> (Golden.export g, Phys_mem.export (Golden.mem g), Mmio.export (Golden.mmio g)))
        (fun (hs, pm, mm) ->
          Golden.import g hs;
          Phys_mem.import (Golden.mem g) pm;
          Mmio.import (Golden.mmio g) mm)
    | None -> ());
    let tlbs =
      Array.init ncores (fun i ->
          Partition.scoped (i + 1) (fun () ->
              let tl =
                Tlb.Tlb_sys.create ~name:(Printf.sprintf "c%d.tlb" i)
                  ~walk_lookahead:(Mem.Mem_sys.lookahead ms) clk cfg.Ooo.Config.tlb
                  ~stats:stats_t ()
              in
              Tlb.Tlb_sys.set_satp tl satp;
              tl))
    in
    let cores =
      Array.init ncores (fun i ->
          let c =
            Ooo.Core.create ~name:(Printf.sprintf "c%d" i) ?cosim:golden ~pipe:(pipe_for i) clk
              cfg ~hart_id:i
              ~icache:(Mem.Mem_sys.icache ms i) ~dcache:(Mem.Mem_sys.dcache ms i) ~tlb:tlbs.(i)
              ~mmio ~stats:stats_t ()
          in
          Ooo.Core.set_pc c base;
          List.iter (fun (r, v) -> Ooo.Core.set_reg c r v) prog.regs;
          c)
    in
    let rules =
      List.concat_map (fun c -> Ooo.Core.rules ?schedule c) (Array.to_list cores)
      @ List.concat_map Tlb.Tlb_sys.rules (Array.to_list tlbs)
      @ Tlb.Walk_xbar.rules tlbs ~banks:(Mem.Mem_sys.l2_banks ms) ~bank_of:(Mem.Mem_sys.bank_of ms)
      @ Mem.Mem_sys.rules ms
    in
    {
      kind;
      ncores;
      pmem;
      mmio;
      sim = Some (mk_sim clk rules);
      golden = None;
      cores = Array.map (fun c -> HOoo c) cores;
      stats_t;
      spent_cycles = 0;
      wd = None;
      checks = [];
      monitors = [];
      tlog = None;
      registry = None;
      config_key = "";
    }
  in
  (* With [invariants], construction runs inside a collector scope: every
     ROB/free-list/LSQ/store-buffer/L2 built above registers its structural
     check, and the whole set is then evaluated once per cycle. [obligations]
     nests the same way for interface monitors: each LSQ/store-buffer/L2
     declares its message contracts during construction and checks them at
     the boundary as the machine runs. *)
  let with_invariants () =
    if invariants then Verif.Invariant.collecting build else (build (), [])
  in
  let (t, checks), monitors =
    if obligations then Mcheck.Obligation.collecting with_invariants else (with_invariants (), [])
  in
  t.checks <- checks;
  t.monitors <- monitors;
  State.field ~name:"machine.pmem" (fun () -> Phys_mem.export pmem) (Phys_mem.import pmem);
  State.field ~name:"machine.mmio" (fun () -> Mmio.export mmio) (Mmio.import mmio);
  State.field ~name:"machine.cycles"
    (fun () -> t.spent_cycles)
    (fun v -> t.spent_cycles <- v);
  (match t.golden with
  | Some g -> State.field ~name:"machine.golden" (fun () -> Golden.export g) (Golden.import g)
  | None -> ());
  (match t.sim with
  | Some sim ->
    Verif.Invariant.attach sim checks;
    Mcheck.Obligation.attach sim monitors;
    if watchdog > 0 then
      t.wd <- Some (Verif.Watchdog.attach ~progress:(fun () -> instrs t) ~limit:watchdog sim)
  | None -> ());
  t
  in
  (* Boundary collection wraps state collection: [Sim.create] (inside
     [construct]) reads the boundary-FIFO registry accumulated so far to
     derive the epoch lookahead bound. *)
  let (t, registry), _boundaries = Boundary.collecting (fun () -> State.collecting construct) in
  t.registry <- Some registry;
  (* The configuration key covers everything that shapes the machine's state
     inventory or its cycle-accurate behaviour: kind (including the full OOO
     config), topology, paging, the program image and initial registers.
     [jobs]/[fastpath]/[audit] are excluded on purpose — they are
     state-identical by design, so an image snapshotted at [--jobs 1] loads
     into a [--jobs 4] machine (and the round-trip tests rely on that).
     The [Shuffle] seed is normalized away: the schedule RNG travels inside
     the image ("sim.sched"), so a cycle-0 snapshot plus {!reseed_schedule}
     forks one warm image across arbitrarily many seeds. The {e effective}
     epoch window length is included — different window lengths quantize
     boundary traffic differently, so they are distinct timing models (while
     [jobs] at a fixed window length is not). *)
  let mode_key = match mode with Sim.Shuffle _ -> Sim.Shuffle 0 | m -> m in
  let elen = match t.sim with Some sim -> Sim.epoch_length sim | None -> 1 in
  t.config_key <-
    Digest.string
      (Marshal.to_string
         ( kind,
           ncores,
           paging,
           megapages,
           mapped_mb,
           cosim,
           schedule,
           mode_key,
           elen,
           Asm.words prog.asm ~base,
           prog.regs )
         []);
  t

let hart_halted t h =
  match t.cores.(h) with
  | HGolden -> ( match t.golden with Some g -> Golden.halted g ~hart:h | None -> true)
  | HInorder c -> Inorder.Inorder_core.halted c
  | HOoo c -> Ooo.Core.halted c

let all_halted t =
  let ok = ref true in
  for h = 0 to t.ncores - 1 do
    if not (hart_halted t h) then ok := false
  done;
  !ok

let reg t ~hart r =
  if hart < 0 || hart >= t.ncores then invalid_arg "Machine.reg: bad hart";
  match t.cores.(hart) with
  | HGolden -> (
    match t.golden with
    | Some g -> Golden.reg g ~hart r
    | None -> invalid_arg "Machine.reg: empty machine")
  | HInorder c -> Inorder.Inorder_core.reg c r
  | HOoo c -> Ooo.Core.reg c r

let quiesced t =
  Array.for_all
    (function HGolden | HInorder _ -> true | HOoo c -> Ooo.Core.quiesced c)
    t.cores

let run ?(max_cycles = 50_000_000) ?on_cycle t =
  (match t.sim, t.golden with
  | Some sim, _ ->
    (match Sim.run_until ?on_cycle sim ~max_cycles (fun () -> all_halted t) with
    | `Done n | `Timeout n -> t.spent_cycles <- t.spent_cycles + n)
  | None, Some g ->
    (* golden-only: round-robin the harts *)
    let budget = ref max_cycles in
    let live = ref true in
    while !live && !budget > 0 do
      live := false;
      for h = 0 to t.ncores - 1 do
        match Golden.step g ~hart:h with Some _ -> live := true | None -> ()
      done;
      decr budget;
      t.spent_cycles <- t.spent_cycles + 1
    done
  | None, None -> invalid_arg "Machine.run: empty machine");
  let exits =
    Array.init t.ncores (fun h ->
        match Mmio.exit_code t.mmio ~hart:h with Some v -> v | None -> -1L)
  in
  { exits; cycles = t.spent_cycles; timed_out = not (all_halted t) }

let stats t = t.stats_t

let parallel t = match t.sim with Some s -> Sim.parallel s | None -> false
let epoch_length t = match t.sim with Some s -> Sim.epoch_length s | None -> 1

let console t = Mmio.console t.mmio

let find_stat t name = Stats.find t.stats_t name

let watchdog_trips t = match t.wd with Some w -> Verif.Watchdog.trips w | None -> 0
let invariant_names t = Verif.Invariant.names t.checks
let obligation_monitors t = t.monitors
let obligation_stats t = Mcheck.Obligation.stats t.monitors

let pp_rule_stats fmt t =
  match t.sim with Some sim -> Sim.pp_stats fmt sim | None -> ()

let rule_list t = match t.sim with Some sim -> Sim.rules sim | None -> []
let compiled t = match t.sim with Some sim -> Sim.compiled sim | None -> false
let compile_status t = match t.sim with Some sim -> Sim.compile_status sim | None -> "no scheduler"
let compile_report t = match t.sim with Some sim -> Sim.compile_report sim | None -> ""

(* Trace committed instructions of every OOO core. Lines land in a
   per-hart Obs.Commit_log (abort-safe, single writer per partition) and
   [flush_trace] prints them hart-ordered after the run — printing straight
   from the hook would interleave harts in rule-firing order. *)
let trace_commits t fmt =
  let log = Obs.Commit_log.create ~nharts:t.ncores in
  Obs.Commit_log.set_active log true;
  t.tlog <- Some (log, fmt);
  Array.iteri
    (fun h c ->
      match c with
      | HOoo core ->
        Ooo.Core.set_commit_hook core (fun ctx u ->
            Obs.Commit_log.line ctx log ~hart:h
              (Printf.sprintf "C%d %8d: %Lx %s -> %Lx" h (Ooo.Core.instret core) u.Ooo.Uop.pc
                 (Isa.Instr.to_string u.Ooo.Uop.instr) u.Ooo.Uop.result))
      | HInorder _ | HGolden -> ())
    t.cores

let flush_trace t =
  match t.tlog with Some (log, fmt) -> Obs.Commit_log.dump log fmt | None -> ()

(* -------------------------------------------------------------------- *)
(* Snapshot / restore                                                   *)
(* -------------------------------------------------------------------- *)

let registry t =
  match t.registry with
  | Some r -> r
  | None -> invalid_arg "Machine: no state registry (machine not built via create?)"

let snapshot t = State.save (registry t) ~config:t.config_key
let restore t img = State.load (registry t) ~config:t.config_key img
let snapshot_entries t = State.names (registry t)

let reseed_schedule t seed =
  match t.sim with Some sim -> Sim.reseed sim seed | None -> ()

let pp_core_debug fmt t =
  Array.iter
    (fun c -> match c with HOoo c -> Ooo.Core.pp_debug fmt c | HInorder _ | HGolden -> ())
    t.cores
