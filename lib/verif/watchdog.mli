(** Liveness watchdog: detects a wedged or livelocked design.

    Trips when no rule fires — or, when a [progress] counter is supplied,
    when that counter stands still — for [limit] consecutive cycles. The
    trip report names every starved rule with its guard-fail and conflict
    counters and dumps the last cycles of rule-firing history (recorded in
    a ring buffer inside {!Cmd.Sim}). *)

type info = { at_cycle : int; reason : string; report : string }

exception Trip of info

type t

(** [attach ~limit sim] arms the watchdog on [sim]. [history] is the depth
    of the rule-firing ring buffer dumped on a trip; [progress] is a
    monotonic counter (typically committed instructions) whose stall also
    counts as a hang. Raises {!Trip} out of [Sim.cycle] when it fires;
    streak counters are reset on trip, so catching the exception and
    continuing re-arms a full window. *)
val attach : ?history:int -> ?progress:(unit -> int) -> limit:int -> Cmd.Sim.t -> t

(** Clear the idle/stall streaks (e.g. after deliberately pausing). *)
val reset : t -> unit

(** Number of times this watchdog has tripped. *)
val trips : t -> int
