(** Deterministic, seeded bit-flip fault-injection campaigns.

    Each trial builds a fresh machine with the {!Cmd.Inject} registry
    armed, flips one bit of one state element at one cycle, and classifies
    the run: {e masked} (architectural results unchanged), {e detected
    divergence} (golden-model mismatch, invariant violation, exit-code
    mismatch, or any internal sanity failure) or {e detected hang}
    (watchdog trip; a raw timeout is also a hang but counts as
    undiagnosed). The driver is generic over the machine type — callers
    supply build/exec closures — so it lives below the workloads layer. *)

type outcome =
  | Masked
  | Detected_divergence of string
  | Detected_hang of string

type trial = {
  id : int;
  site : string;  (** name of the injected state element *)
  bit : int;
  at_cycle : int;
  applied : bool;  (** false: the site held an unflippable (boxed) value *)
  outcome : outcome;
  diagnosed : bool;  (** hangs: watchdog-diagnosed rather than raw timeout *)
}

type summary = {
  trials : trial list;
  n_trials : int;
  n_masked : int;
  n_divergence : int;
  n_hang : int;
  n_not_applied : int;
  n_undiagnosed : int;  (** raw timeouts — 0 under a correctly-sized watchdog *)
}

type 'm harness = {
  build : unit -> 'm;  (** fresh machine; runs with the Inject registry armed *)
  exec : 'm -> on_cycle:(int -> unit) -> [ `Exit of int64 array | `Timeout of int ];
      (** run to completion, calling [on_cycle] before every cycle; must let
          exceptions (watchdog trips, invariant violations, cosim
          mismatches) propagate *)
  reference : int64 array;  (** golden-model exit codes *)
}

(** [run ~trials ~horizon h] — [horizon] bounds the injection cycle
    (typically the fault-free run's cycle count). Same [seed] (default
    [0xFA17]) ⇒ identical trial plan and classification. *)
val run : ?seed:int -> trials:int -> horizon:int -> 'm harness -> summary

(** Farm job producer: trial [id] of a [(seed, trials, horizon)] campaign,
    with an RNG derived from those four values alone — independent of
    every other trial, so trials can run in any order on any domain (and
    be retried after a crash) and still reproduce bit-identically. The
    sequential {!run} instead threads one RNG through all trials.
    [on_cycle] is composed with the injection hook (the farm's
    cancellation poll). *)
val farm_trial :
  ?on_cycle:(int -> unit) ->
  'm harness ->
  seed:int ->
  trials:int ->
  horizon:int ->
  id:int ->
  trial

val summarize : trial list -> summary
