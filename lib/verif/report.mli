(** Pretty-printing of fault-injection campaign results. *)

val pp_trial : Format.formatter -> Fault.trial -> unit

(** Counts per outcome class plus up to [exemplars] (default 5) sample
    non-masked trials. *)
val pp_summary : ?exemplars:int -> Format.formatter -> Fault.summary -> unit

val print : ?exemplars:int -> Fault.summary -> unit
val to_string : ?exemplars:int -> Fault.summary -> string
