(* Liveness watchdog over a Sim.

   In a CMD design misbehaviour can only surface as a guard that never
   lifts (every rule blocked — the whole design wedges) or as a livelock
   where rules still fire but no instruction ever commits (e.g. a fetch
   loop spinning against a stuck commit). The watchdog watches both: it
   trips when no rule fires, or the progress counter stands still, for
   [limit] consecutive cycles, and its report carries the last cycles of
   rule-firing history plus every rule's guard-fail/conflict counters —
   the scheduler diagnosing its own pathology, as the open-source BSV
   compiler note advocates. *)

type info = { at_cycle : int; reason : string; report : string }

exception Trip of info

type t = {
  sim : Cmd.Sim.t;
  limit : int;
  progress : (unit -> int) option;
  mutable idle : int; (* consecutive cycles with zero fires *)
  mutable stalled : int; (* consecutive cycles with no progress *)
  mutable last_progress : int;
  mutable trips : int;
}

let reset t =
  t.idle <- 0;
  t.stalled <- 0;
  (match t.progress with Some f -> t.last_progress <- f () | None -> ());
  ()

let trips t = t.trips

(* Rules that want to fire but can't: never fired since the last trip
   window started is approximated by "has guard-failed or conflicted a lot
   recently"; we report the full counter table sorted by starvation. *)
let report_of t reason =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "@[<v>WATCHDOG: %s at cycle %d@," reason (Cmd.Sim.cycles t.sim);
  let rules =
    List.sort
      (fun (a : Cmd.Rule.t) (b : Cmd.Rule.t) ->
        compare (b.guard_failed + b.conflicted) (a.guard_failed + a.conflicted))
      (Cmd.Sim.rules t.sim)
  in
  Format.fprintf fmt "starved rules (fired / guard-failed / conflicted):@,";
  List.iter
    (fun (r : Cmd.Rule.t) ->
      if r.guard_failed > 0 || r.conflicted > 0 || r.fired = 0 then
        Format.fprintf fmt "  %-32s %9d %9d %9d@," r.name r.fired r.guard_failed r.conflicted)
    rules;
  (match Cmd.Sim.history t.sim with
  | [] -> ()
  | h ->
    Format.fprintf fmt "last %d cycles of rule firings:@," (List.length h);
    List.iter
      (fun (c, names) ->
        Format.fprintf fmt "  cycle %-9d %s@," c
          (if names = [] then "(nothing fired)" else String.concat " " names))
      h);
  Format.fprintf fmt "@]";
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let trip t reason =
  t.trips <- t.trips + 1;
  let info = { at_cycle = Cmd.Sim.cycles t.sim; reason; report = report_of t reason } in
  (* reset the streaks so a caller that catches the trip can keep running
     and will only be re-tripped after another full window *)
  reset t;
  raise (Trip info)

let monitor t _sim fired =
  if fired = 0 then t.idle <- t.idle + 1 else t.idle <- 0;
  (match t.progress with
  | Some f ->
    let p = f () in
    if p <> t.last_progress then begin
      t.last_progress <- p;
      t.stalled <- 0
    end
    else t.stalled <- t.stalled + 1
  | None -> ());
  if t.idle >= t.limit then
    trip t (Printf.sprintf "no rule fired for %d consecutive cycles" t.limit)
  else if t.progress <> None && t.stalled >= t.limit then
    trip t (Printf.sprintf "no instruction committed for %d consecutive cycles" t.limit)

let attach ?(history = 32) ?progress ~limit sim =
  if limit <= 0 then invalid_arg "Watchdog.attach: limit must be positive";
  Cmd.Sim.enable_history sim ~depth:history;
  let t =
    {
      sim;
      limit;
      progress;
      idle = 0;
      stalled = 0;
      last_progress = (match progress with Some f -> f () | None -> 0);
      trips = 0;
    }
  in
  Cmd.Sim.add_monitor sim (monitor t);
  t
