exception Violation of string * string

type check = { name : string; run : unit -> unit }

let fail name fmt = Printf.ksprintf (fun msg -> raise (Violation (name, msg))) fmt

(* Modules register their checks against whichever collector is active.
   With no collector (the default), registration is a no-op: a machine
   built without [~invariants] keeps no check closures alive. The
   collector is domain-local so farm workers can build machines
   concurrently. *)

let collector : check list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let register ~name run =
  match !(Domain.DLS.get collector) with
  | Some l -> l := { name; run } :: !l
  | None -> ()

let collecting f =
  let c = Domain.DLS.get collector in
  let saved = !c in
  let l = ref [] in
  c := Some l;
  Fun.protect
    ~finally:(fun () -> c := saved)
    (fun () ->
      let r = f () in
      (r, List.rev !l))

let run_checks checks = List.iter (fun c -> c.run ()) checks

let attach sim checks =
  if checks <> [] then Cmd.Sim.on_post_cycle sim (fun _cycle -> run_checks checks)

let names checks = List.map (fun c -> c.name) checks
