(* Human-readable campaign summaries for the CLI and CI logs. *)

let outcome_tag = function
  | Fault.Masked -> "masked"
  | Fault.Detected_divergence _ -> "divergence"
  | Fault.Detected_hang _ -> "hang"

let outcome_detail = function
  | Fault.Masked -> ""
  | Fault.Detected_divergence m | Fault.Detected_hang m -> m

let pp_trial fmt (t : Fault.trial) =
  Format.fprintf fmt "#%-4d %-36s bit %-2d @@ cycle %-8d %-10s%s%s" t.id t.site t.bit
    t.at_cycle (outcome_tag t.outcome)
    (if t.applied then "" else " (flip not applied)")
    (match outcome_detail t.outcome with "" -> "" | d -> "  " ^ d)

let pp_summary ?(exemplars = 5) fmt (s : Fault.summary) =
  Format.fprintf fmt "@[<v>fault-injection campaign: %d trials@," s.n_trials;
  let pct n = if s.n_trials = 0 then 0. else 100. *. float_of_int n /. float_of_int s.n_trials in
  Format.fprintf fmt "  masked               %5d  (%5.1f%%)@," s.n_masked (pct s.n_masked);
  Format.fprintf fmt "  detected divergence  %5d  (%5.1f%%)@," s.n_divergence (pct s.n_divergence);
  Format.fprintf fmt "  detected hang        %5d  (%5.1f%%)@," s.n_hang (pct s.n_hang);
  Format.fprintf fmt "  flips not applied    %5d@," s.n_not_applied;
  Format.fprintf fmt "  undiagnosed timeouts %5d%s@," s.n_undiagnosed
    (if s.n_undiagnosed = 0 then "" else "  <-- should be zero");
  let interesting =
    List.filter (fun (t : Fault.trial) -> t.outcome <> Fault.Masked) s.trials
  in
  if interesting <> [] then begin
    Format.fprintf fmt "sample detections:@,";
    List.iteri
      (fun i t -> if i < exemplars then Format.fprintf fmt "  %a@," pp_trial t)
      interesting;
    if List.length interesting > exemplars then
      Format.fprintf fmt "  ... and %d more@," (List.length interesting - exemplars)
  end;
  Format.fprintf fmt "@]"

let print ?exemplars s = Format.printf "%a@." (pp_summary ?exemplars) s

let to_string ?exemplars s = Format.asprintf "%a" (pp_summary ?exemplars) s
