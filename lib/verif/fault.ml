(* Deterministic, seeded bit-flip campaign driver.

   One trial = build a fresh machine with the Inject registry armed, pick
   (site, bit, cycle) from the seeded RNG, run with a hook that applies the
   flip at that cycle, and classify the result. The CMD composition claim
   is that every trial lands in exactly one of three buckets — the fault is
   architecturally masked, or a checker (golden-model lockstep, invariant,
   exit-code compare, or any internal sanity failure) detects divergence,
   or the watchdog diagnoses a hang. Silent corruption or an undiagnosed
   timeout would falsify the claim; the summary counts them separately so
   tests can assert zero. *)

type outcome =
  | Masked
  | Detected_divergence of string
  | Detected_hang of string

type trial = {
  id : int;
  site : string;
  bit : int;
  at_cycle : int;
  applied : bool; (* false: the chosen site's value was not flippable *)
  outcome : outcome;
  diagnosed : bool; (* hangs only: tripped by the watchdog, not a raw timeout *)
}

type summary = {
  trials : trial list;
  n_trials : int;
  n_masked : int;
  n_divergence : int;
  n_hang : int;
  n_not_applied : int;
  n_undiagnosed : int; (* raw timeouts — should always be 0 under a watchdog *)
}

type 'm harness = {
  build : unit -> 'm;
  exec : 'm -> on_cycle:(int -> unit) -> [ `Exit of int64 array | `Timeout of int ];
  reference : int64 array; (* golden-model exit codes *)
}

let summarize trials =
  let n = List.length trials in
  let count f = List.length (List.filter f trials) in
  {
    trials;
    n_trials = n;
    n_masked = count (fun t -> t.outcome = Masked);
    n_divergence = count (fun t -> match t.outcome with Detected_divergence _ -> true | _ -> false);
    n_hang = count (fun t -> match t.outcome with Detected_hang _ -> true | _ -> false);
    n_not_applied = count (fun t -> not t.applied);
    n_undiagnosed =
      count (fun t -> match t.outcome with Detected_hang _ -> not t.diagnosed | _ -> false);
  }

let pp_exits fmt exits =
  Array.iter (fun v -> Format.fprintf fmt " %Ld" v) exits

(* Exceptions escaping the caller-supplied hook (e.g. the farm's
   cancellation poll) are the harness's business, not the DUT's — wrap
   them so the classifier's catch-all re-raises instead of recording a
   bogus divergence. *)
exception Hook_abort of exn

let run_trial ?(on_cycle = fun _ -> ()) h ~rng ~horizon ~id =
  Cmd.Inject.arm ();
  let m = h.build () in
  let sites = Cmd.Inject.sites () in
  Cmd.Inject.disarm ();
  if Array.length sites = 0 then
    invalid_arg "Fault.run: machine registered no injectable sites";
  let site = sites.(Random.State.int rng (Array.length sites)) in
  let bit = Random.State.int rng site.width in
  let at_cycle = Random.State.int rng (max 1 horizon) in
  let applied = ref false in
  let extra = on_cycle in
  let on_cycle c =
    (try extra c with e -> raise (Hook_abort e));
    if c = at_cycle then applied := Cmd.Inject.fire site bit
  in
  let outcome, diagnosed =
    match h.exec m ~on_cycle with
    | `Exit exits ->
      if exits = h.reference then (Masked, true)
      else
        ( Detected_divergence
            (Format.asprintf "exit codes%a differ from golden%a" pp_exits exits pp_exits
               h.reference),
          true )
    | `Timeout n ->
      ( Detected_hang (Printf.sprintf "raw timeout after %d cycles (no watchdog diagnosis)" n),
        false )
    | exception Hook_abort e -> raise e
    | exception Watchdog.Trip info ->
      (Detected_hang (Printf.sprintf "%s (cycle %d)" info.reason info.at_cycle), true)
    | exception Invariant.Violation (name, msg) ->
      (Detected_divergence (Printf.sprintf "invariant %s: %s" name msg), true)
    | exception e -> (Detected_divergence ("exception: " ^ Printexc.to_string e), true)
  in
  { id; site = site.name; bit; at_cycle; applied = !applied; outcome; diagnosed }

(* Farm job producer: trial [id]'s RNG is derived from the campaign key and
   its own id, independent of every other trial — so trials can run in any
   order, on any domain, be retried after a crash, and still reproduce
   bit-identically. (The sequential {!run} below instead threads one RNG
   through all trials, matching the original campaign semantics.) *)
let farm_trial ?on_cycle h ~seed ~trials ~horizon ~id =
  run_trial ?on_cycle h ~rng:(Random.State.make [| seed; trials; horizon; id |]) ~horizon ~id

let run ?(seed = 0xFA17) ~trials ~horizon h =
  let rng = Random.State.make [| seed; trials; horizon |] in
  let out = ref [] in
  for id = 0 to trials - 1 do
    out := run_trial h ~rng ~horizon ~id :: !out
  done;
  Cmd.Inject.disarm ();
  summarize (List.rev !out)
