(** Per-module invariant checking (RealityCheck-style, PAPERS.md).

    Hardware modules register cheap structural checks at construction time
    — ROB age order, free-list/rename-table partition, LSQ ordering, L2
    directory exclusivity. A machine built with invariant checking active
    collects the checks registered during its construction and runs them
    once per cycle via {!Cmd.Sim.on_post_cycle}; a violation raises
    {!Violation} out of the simulation loop, turning silent state
    corruption into a detected fault. *)

(** [Violation (check_name, message)] *)
exception Violation of string * string

type check = { name : string; run : unit -> unit }

(** [fail name fmt ...] raises {!Violation} — for use inside checks. *)
val fail : string -> ('a, unit, string, 'b) format4 -> 'a

(** Called by module constructors. A no-op unless a {!collecting} scope is
    active, so ordinary construction registers (and retains) nothing. *)
val register : name:string -> (unit -> unit) -> unit

(** [collecting f] runs [f] with a fresh collector and returns [f]'s result
    together with every check registered during its execution. Nestable;
    restores the previous collector on exit. *)
val collecting : (unit -> 'a) -> 'a * check list

(** Run every check once; raises {!Violation} on the first failure. *)
val run_checks : check list -> unit

(** Check once per cycle from here on. *)
val attach : Cmd.Sim.t -> check list -> unit

val names : check list -> string list
