(** Sparse byte-addressable physical memory.

    Backed by 4 KiB pages allocated on first touch, so multi-gigabyte address
    spaces with small working sets cost nothing. All accesses are
    little-endian; accesses may straddle page boundaries. *)

type t

val create : unit -> t

(** [load t ~bytes addr] reads [bytes] ∈ {1,2,4,8} little-endian, zero-
    extended into the result. *)
val load : t -> bytes:int -> int64 -> int64

(** [store t ~bytes addr v] writes the low [bytes] of [v]. *)
val store : t -> bytes:int -> int64 -> int64 -> unit

(** Cache-line (or any power-of-two block) bulk accessors used by the memory
    hierarchy. *)
val load_block : t -> int64 -> int -> Bytes.t

val store_block : t -> int64 -> Bytes.t -> unit

(** Number of pages touched so far (footprint diagnostics). *)
val pages_touched : t -> int

(** Memory contents as a plain (marshalable) value, index-sorted; [import]
    replaces the whole contents. Used by the machine snapshot registry. *)
type image

val export : t -> image
val import : t -> image -> unit

(** [copy t] makes an independent snapshot (used to fork the golden model's
    memory from the core's). *)
val copy : t -> t
