exception Fatal of string

type hart = {
  id : int;
  mutable pc : int64;
  regs : int64 array;
  mutable satp : int64; (* root table PA, 0 = bare *)
  mutable instret : int64;
  mutable reservation : int64 option; (* reserved cache line *)
  mutable ecall_halt : bool;
  tlb : (int64, int64) Hashtbl.t; (* vpn -> page pa; pure speedup *)
}

type t = { pmem : Phys_mem.t; mmio : Mmio.t; harts : hart array }

type commit = {
  pc : int64;
  instr : Instr.t;
  rd_write : (int * int64) option;
  store : (int64 * int * int64) option;
  next_pc : int64;
}

let create ~nharts pmem mmio =
  let mk id =
    {
      id;
      pc = 0L;
      regs = Array.make 32 0L;
      satp = 0L;
      instret = 0L;
      reservation = None;
      ecall_halt = false;
      tlb = Hashtbl.create 256;
    }
  in
  { pmem; mmio; harts = Array.init nharts mk }

let mem t = t.pmem
let mmio t = t.mmio

(* Architectural hart state as a plain value, for the machine snapshot
   registry (this library does not depend on the CMD kernel). The private
   translation cache is a pure speedup keyed on current page tables, so it
   survives export/import untouched. *)
type hart_image = {
  h_pc : int64;
  h_regs : int64 array;
  h_satp : int64;
  h_instret : int64;
  h_reservation : int64 option;
  h_ecall_halt : bool;
}

let export t =
  Array.map
    (fun (h : hart) ->
      {
        h_pc = h.pc;
        h_regs = Array.copy h.regs;
        h_satp = h.satp;
        h_instret = h.instret;
        h_reservation = h.reservation;
        h_ecall_halt = h.ecall_halt;
      })
    t.harts

let import t img =
  Array.iteri
    (fun i hi ->
      let h = t.harts.(i) in
      h.pc <- hi.h_pc;
      Array.blit hi.h_regs 0 h.regs 0 32;
      h.satp <- hi.h_satp;
      h.instret <- hi.h_instret;
      h.reservation <- hi.h_reservation;
      h.ecall_halt <- hi.h_ecall_halt;
      Hashtbl.reset h.tlb)
    img
let set_pc t ~hart v = t.harts.(hart).pc <- v
let pc t ~hart = t.harts.(hart).pc
let set_reg t ~hart r v = if r <> 0 then t.harts.(hart).regs.(r) <- v
let reg t ~hart r = t.harts.(hart).regs.(r)

let set_satp t ~hart v =
  t.harts.(hart).satp <- v;
  Hashtbl.reset t.harts.(hart).tlb

let instret t ~hart = t.harts.(hart).instret
let halted t ~hart = t.harts.(hart).ecall_halt || Mmio.exit_code t.mmio ~hart <> None

let xlate t (h : hart) va =
  if h.satp = 0L then va
  else begin
    let vpn = Int64.shift_right_logical va 12 in
    match Hashtbl.find_opt h.tlb vpn with
    | Some page -> Int64.logor page (Int64.logand va 0xFFFL)
    | None -> (
      match Page_table.translate t.pmem ~root:h.satp va with
      | Some pa ->
        Hashtbl.replace h.tlb vpn (Int64.logand pa (Int64.lognot 0xFFFL));
        pa
      | None -> raise (Fatal (Printf.sprintf "golden: page fault at 0x%Lx (hart %d)" va h.id)))
  end

let translate t ~hart va = xlate t t.harts.(hart) va

let line_of a = Int64.logand a (Int64.lognot 63L)

let width_bytes = Instr.bytes_of_width

let load_val t pa width unsigned =
  let bytes = width_bytes width in
  let raw = Phys_mem.load t.pmem ~bytes pa in
  if unsigned then raw else Xlen.sext ~bits:(bytes * 8) raw

let step t ~hart =
  let h = t.harts.(hart) in
  if halted t ~hart then None
  else begin
    let pc = h.pc in
    let ipa = xlate t h pc in
    let word = Int64.to_int (Phys_mem.load t.pmem ~bytes:4 ipa) in
    let i = Decode.decode word in
    let rs1 = h.regs.(i.rs1) and rs2 = h.regs.(i.rs2) in
    let next = Int64.add pc 4L in
    let rd_write = ref None in
    let store = ref None in
    let next_pc = ref next in
    let wr v = if i.rd <> 0 then rd_write := Some (i.rd, v) in
    let do_store pa bytes v =
      if Addr_map.is_mmio pa then ignore (Mmio.store t.mmio ~hart pa v)
      else Phys_mem.store t.pmem ~bytes pa v;
      store := Some (pa, bytes, v)
    in
    (match i.op with
    | Instr.Lui -> wr i.imm
    | Instr.Auipc -> wr (Int64.add pc i.imm)
    | Instr.Jal ->
      wr next;
      next_pc := Int64.add pc i.imm
    | Instr.Jalr ->
      wr next;
      next_pc := Int64.logand (Int64.add rs1 i.imm) (Int64.lognot 1L)
    | Instr.Br c ->
      let taken =
        match c with
        | Instr.Beq -> rs1 = rs2
        | Instr.Bne -> rs1 <> rs2
        | Instr.Blt -> Int64.compare rs1 rs2 < 0
        | Instr.Bge -> Int64.compare rs1 rs2 >= 0
        | Instr.Bltu -> Xlen.ucompare rs1 rs2 < 0
        | Instr.Bgeu -> Xlen.ucompare rs1 rs2 >= 0
      in
      if taken then next_pc := Int64.add pc i.imm
    | Instr.Ld { width; unsigned } ->
      let pa = xlate t h (Int64.add rs1 i.imm) in
      if Addr_map.is_mmio pa then wr (Mmio.load t.mmio ~hart pa)
      else wr (load_val t pa width unsigned)
    | Instr.St width ->
      let pa = xlate t h (Int64.add rs1 i.imm) in
      do_store pa (width_bytes width) rs2
    | Instr.OpA { alu; word; imm } ->
      let b = if imm then i.imm else rs2 in
      let f =
        match alu, word with
        | Instr.Add, false -> Xlen.add
        | Instr.Add, true -> Xlen.addw
        | Instr.Sub, false -> Xlen.sub
        | Instr.Sub, true -> Xlen.subw
        | Instr.Sll, false -> Xlen.sll
        | Instr.Sll, true -> Xlen.sllw
        | Instr.Srl, false -> Xlen.srl
        | Instr.Srl, true -> Xlen.srlw
        | Instr.Sra, false -> Xlen.sra
        | Instr.Sra, true -> Xlen.sraw
        | Instr.Slt, _ -> Xlen.slt
        | Instr.Sltu, _ -> Xlen.sltu
        | Instr.Xor, _ -> Xlen.logxor
        | Instr.Or, _ -> Xlen.logor
        | Instr.And, _ -> Xlen.logand
      in
      wr (f rs1 b)
    | Instr.MulDiv { op; word } ->
      let f =
        match op, word with
        | Instr.Mul, false -> Xlen.mul
        | Instr.Mul, true -> Xlen.mulw
        | Instr.Mulh, _ -> Xlen.mulh
        | Instr.Mulhsu, _ -> Xlen.mulhsu
        | Instr.Mulhu, _ -> Xlen.mulhu
        | Instr.Div, false -> Xlen.div
        | Instr.Div, true -> Xlen.divw
        | Instr.Divu, false -> Xlen.divu
        | Instr.Divu, true -> Xlen.divuw
        | Instr.Rem, false -> Xlen.rem
        | Instr.Rem, true -> Xlen.remw
        | Instr.Remu, false -> Xlen.remu
        | Instr.Remu, true -> Xlen.remuw
      in
      wr (f rs1 rs2)
    | Instr.Lr width ->
      let pa = xlate t h rs1 in
      h.reservation <- Some (line_of pa);
      wr (load_val t pa width false)
    | Instr.Sc width ->
      let pa = xlate t h rs1 in
      (match h.reservation with
      | Some line when line = line_of pa ->
        do_store pa (width_bytes width) rs2;
        wr 0L
      | _ -> wr 1L);
      h.reservation <- None
    | Instr.Amo { op; width } ->
      let pa = xlate t h rs1 in
      let old = load_val t pa width false in
      let nv =
        match op with
        | Instr.Amoswap -> rs2
        | Instr.Amoadd -> Int64.add old rs2
        | Instr.Amoxor -> Int64.logxor old rs2
        | Instr.Amoand -> Int64.logand old rs2
        | Instr.Amoor -> Int64.logor old rs2
        | Instr.Amomin -> if Int64.compare old rs2 <= 0 then old else rs2
        | Instr.Amomax -> if Int64.compare old rs2 >= 0 then old else rs2
        | Instr.Amominu -> if Xlen.ucompare old rs2 <= 0 then old else rs2
        | Instr.Amomaxu -> if Xlen.ucompare old rs2 >= 0 then old else rs2
      in
      let nv = if width = Instr.W then Xlen.sext ~bits:32 nv else nv in
      do_store pa (width_bytes width) nv;
      wr old
    | Instr.Fence | Instr.FenceI -> ()
    | Instr.Ecall ->
      (* runtime convention: a7=93 is exit(a0) *)
      if h.regs.(17) = 93L then begin
        ignore (Mmio.store t.mmio ~hart Addr_map.mmio_exit h.regs.(10));
        h.ecall_halt <- true
      end
      else raise (Fatal (Printf.sprintf "golden: unknown ecall a7=%Ld at 0x%Lx" h.regs.(17) pc))
    | Instr.Ebreak -> raise (Fatal (Printf.sprintf "golden: ebreak at 0x%Lx" pc))
    | Instr.Csr { op; imm } ->
      let addr = Int64.to_int i.imm in
      let old =
        if addr = Csr.mhartid then Int64.of_int h.id
        else if addr = Csr.satp then h.satp
        else if addr = Csr.instret then h.instret
        else if addr = Csr.cycle || addr = Csr.time then h.instret
        else 0L
      in
      let src = if imm then Int64.of_int i.rs1 else rs1 in
      let nv =
        match op with
        | Instr.Csrrw -> Some src
        | Instr.Csrrs -> if i.rs1 = 0 then None else Some (Int64.logor old src)
        | Instr.Csrrc -> if i.rs1 = 0 then None else Some (Int64.logand old (Int64.lognot src))
      in
      (match nv with
      | Some v when addr = Csr.satp ->
        h.satp <- v;
        Hashtbl.reset h.tlb
      | _ -> ());
      wr old
    | Instr.Illegal w -> raise (Fatal (Printf.sprintf "golden: illegal instr 0x%x at 0x%Lx" w pc)));
    (match !rd_write with Some (r, v) -> h.regs.(r) <- v | None -> ());
    h.pc <- !next_pc;
    h.instret <- Int64.add h.instret 1L;
    Some { pc; instr = i; rd_write = !rd_write; store = !store; next_pc = !next_pc }
  end

let run t ~hart ~max =
  let rec go n =
    if n >= max then `Timeout
    else
      match step t ~hart with
      | None -> `Halted n
      | Some _ -> go (n + 1)
  in
  go 0
