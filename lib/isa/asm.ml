open Instr

type item =
  | Fixed of Instr.t
  | Branch of branch_cond * int * int * string
  | Jump of int * string (* jal rd, label *)
  | La_hi of int * string (* auipc rd, pcrel_hi *)
  | La_lo of int * string (* addi rd, rd, pcrel_lo relative to previous auipc *)

type t = {
  mutable items : item list; (* newest first *)
  mutable count : int;
  labels : (string, int) Hashtbl.t; (* label -> instruction index *)
  mutable freshes : int;
}

let create () = { items = []; count = 0; labels = Hashtbl.create 64; freshes = 0 }

let label t name =
  if Hashtbl.mem t.labels name then invalid_arg ("Asm.label: duplicate " ^ name);
  Hashtbl.add t.labels name t.count

let fresh t prefix =
  t.freshes <- t.freshes + 1;
  Printf.sprintf ".%s_%d" prefix t.freshes

let emit t item =
  t.items <- item :: t.items;
  t.count <- t.count + 1

let insn t i = emit t (Fixed i)
let length t = t.count

(* computational *)
let addi t rd rs1 imm = insn t (make ~rd ~rs1 ~imm (OpA { alu = Add; word = false; imm = true }))
let rtype alu t rd rs1 rs2 = insn t (make ~rd ~rs1 ~rs2 (OpA { alu; word = false; imm = false }))
let add = rtype Add
let sub = rtype Sub
let and_ = rtype And
let or_ = rtype Or
let xor = rtype Xor
let sll = rtype Sll
let srl = rtype Srl
let slt = rtype Slt
let sltu = rtype Sltu
let itype alu t rd rs1 imm = insn t (make ~rd ~rs1 ~imm (OpA { alu; word = false; imm = true }))
let slli t rd rs1 sh = itype Sll t rd rs1 (Int64.of_int sh)
let srli t rd rs1 sh = itype Srl t rd rs1 (Int64.of_int sh)
let srai t rd rs1 sh = itype Sra t rd rs1 (Int64.of_int sh)
let andi = itype And
let ori = itype Or
let xori = itype Xor
let sltiu = itype Sltu
let addw t rd rs1 rs2 = insn t (make ~rd ~rs1 ~rs2 (OpA { alu = Add; word = true; imm = false }))
let addiw t rd rs1 imm = insn t (make ~rd ~rs1 ~imm (OpA { alu = Add; word = true; imm = true }))
let mtype op t rd rs1 rs2 = insn t (make ~rd ~rs1 ~rs2 (MulDiv { op; word = false }))
let mul = mtype Mul
let mulh = mtype Mulh
let div = mtype Div
let divu = mtype Divu
let rem = mtype Rem
let remu = mtype Remu

(* memory *)
let load_ width unsigned t rd imm rs1 = insn t (make ~rd ~rs1 ~imm (Ld { width; unsigned }))
let ld = load_ D false
let lw = load_ W false
let lwu = load_ W true
let lh = load_ H false
let lb = load_ B false
let lbu = load_ B true
let store_ width t rs2 imm rs1 = insn t (make ~rs1 ~rs2 ~imm (St width))
let sd = store_ D
let sw = store_ W
let sh = store_ H
let sb = store_ B
let fence t = insn t (make Fence)
let lr_d t rd rs1 = insn t (make ~rd ~rs1 (Lr D))
let sc_d t rd rs2 rs1 = insn t (make ~rd ~rs1 ~rs2 (Sc D))
let lr_w t rd rs1 = insn t (make ~rd ~rs1 (Lr W))
let sc_w t rd rs2 rs1 = insn t (make ~rd ~rs1 ~rs2 (Sc W))
let amoadd_d t rd rs2 rs1 = insn t (make ~rd ~rs1 ~rs2 (Amo { op = Amoadd; width = D }))
let amoadd_w t rd rs2 rs1 = insn t (make ~rd ~rs1 ~rs2 (Amo { op = Amoadd; width = W }))
let amoswap_w t rd rs2 rs1 = insn t (make ~rd ~rs1 ~rs2 (Amo { op = Amoswap; width = W }))
let amoxor_w t rd rs2 rs1 = insn t (make ~rd ~rs1 ~rs2 (Amo { op = Amoxor; width = W }))

(* control flow *)
let branch c t rs1 rs2 lbl = emit t (Branch (c, rs1, rs2, lbl))
let beq = branch Beq
let bne = branch Bne
let blt = branch Blt
let bge = branch Bge
let bltu = branch Bltu
let bgeu = branch Bgeu
let jal t rd lbl = emit t (Jump (rd, lbl))
let j t lbl = jal t 0 lbl
let jalr t rd rs1 imm = insn t (make ~rd ~rs1 ~imm Jalr)
let ret t = jalr t 0 Reg_name.ra 0L
let call t lbl = jal t Reg_name.ra lbl

(* pseudo *)
let mv t rd rs1 = addi t rd rs1 0L
let nop t = addi t 0 0 0L

let rec li t rd v =
  if Encode.fits_simm12 v then addi t rd 0 v
  else if Xlen.sext ~bits:32 v = v then begin
    let lo = Xlen.sext ~bits:12 v in
    let hi = Xlen.sext ~bits:32 (Int64.sub v lo) in
    insn t (make ~rd ~imm:hi Lui);
    if lo <> 0L then addiw t rd rd lo
  end
  else begin
    let lo = Xlen.sext ~bits:12 v in
    let hi = Int64.shift_right (Int64.sub v lo) 12 in
    li t rd hi;
    slli t rd rd 12;
    if lo <> 0L then addi t rd rd lo
  end

let la t rd lbl =
  emit t (La_hi (rd, lbl));
  emit t (La_lo (rd, lbl))

(* system *)
let ecall t = insn t (make Ecall)
let csrr t rd csr = insn t (make ~rd ~imm:(Int64.of_int csr) (Csr { op = Csrrs; imm = false }))

let assemble t ~base =
  let items = Array.of_list (List.rev t.items) in
  let addr idx = Int64.add base (Int64.of_int (idx * 4)) in
  let resolve lbl =
    match Hashtbl.find_opt t.labels lbl with
    | Some i -> addr i
    | None -> invalid_arg ("Asm.assemble: undefined label " ^ lbl)
  in
  Array.mapi
    (fun i item ->
      let pc = addr i in
      match item with
      | Fixed ins -> ins
      | Branch (c, rs1, rs2, lbl) -> make ~rs1 ~rs2 ~imm:(Int64.sub (resolve lbl) pc) (Br c)
      | Jump (rd, lbl) -> make ~rd ~imm:(Int64.sub (resolve lbl) pc) Jal
      | La_hi (rd, lbl) ->
        let delta = Int64.sub (resolve lbl) pc in
        let lo = Xlen.sext ~bits:12 delta in
        make ~rd ~imm:(Xlen.sext ~bits:32 (Int64.sub delta lo)) Auipc
      | La_lo (rd, lbl) ->
        (* the matching auipc sits one instruction earlier *)
        let delta = Int64.sub (resolve lbl) (addr (i - 1)) in
        let lo = Xlen.sext ~bits:12 delta in
        make ~rd ~rs1:rd ~imm:lo (OpA { alu = Add; word = false; imm = true }))
    items

let words t ~base = Array.map Encode.encode (assemble t ~base)

let addr_of t ~base lbl =
  match Hashtbl.find_opt t.labels lbl with
  | Some i -> Int64.add base (Int64.of_int (i * 4))
  | None -> invalid_arg ("Asm.addr_of: undefined label " ^ lbl)
