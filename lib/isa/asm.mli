(** A two-pass assembler eDSL with labels.

    Workload kernels are written against this interface; {!assemble} resolves
    labels and produces the instruction words to load at a base address.
    Convenience emitters cover the common pseudo-instructions ([li], [la],
    [mv], [j], [call], [ret], [nop]). All registers are {!Reg_name} ints. *)

type t

val create : unit -> t

(** Define a label at the current position. *)
val label : t -> string -> unit

(** [fresh t prefix] makes a unique label name (not yet placed). *)
val fresh : t -> string -> string

(** Emit a raw typed instruction. *)
val insn : t -> Instr.t -> unit

(** {2 Integer computational} *)

val addi : t -> int -> int -> int64 -> unit
val add : t -> int -> int -> int -> unit
val sub : t -> int -> int -> int -> unit
val slli : t -> int -> int -> int -> unit
val srli : t -> int -> int -> int -> unit
val srai : t -> int -> int -> int -> unit
val andi : t -> int -> int -> int64 -> unit
val ori : t -> int -> int -> int64 -> unit
val xori : t -> int -> int -> int64 -> unit
val and_ : t -> int -> int -> int -> unit
val or_ : t -> int -> int -> int -> unit
val xor : t -> int -> int -> int -> unit
val sll : t -> int -> int -> int -> unit
val srl : t -> int -> int -> int -> unit
val slt : t -> int -> int -> int -> unit
val sltu : t -> int -> int -> int -> unit
val sltiu : t -> int -> int -> int64 -> unit
val addw : t -> int -> int -> int -> unit
val addiw : t -> int -> int -> int64 -> unit
val mul : t -> int -> int -> int -> unit
val mulh : t -> int -> int -> int -> unit
val div : t -> int -> int -> int -> unit
val divu : t -> int -> int -> int -> unit
val rem : t -> int -> int -> int -> unit
val remu : t -> int -> int -> int -> unit

(** {2 Memory} *)

val ld : t -> int -> int64 -> int -> unit

val lw : t -> int -> int64 -> int -> unit
val lwu : t -> int -> int64 -> int -> unit
val lh : t -> int -> int64 -> int -> unit
val lb : t -> int -> int64 -> int -> unit
val lbu : t -> int -> int64 -> int -> unit
val sd : t -> int -> int64 -> int -> unit
val sw : t -> int -> int64 -> int -> unit
val sh : t -> int -> int64 -> int -> unit
val sb : t -> int -> int64 -> int -> unit
val fence : t -> unit
val lr_d : t -> int -> int -> unit
val sc_d : t -> int -> int -> int -> unit
val lr_w : t -> int -> int -> unit
val sc_w : t -> int -> int -> int -> unit
val amoadd_d : t -> int -> int -> int -> unit
val amoadd_w : t -> int -> int -> int -> unit
val amoswap_w : t -> int -> int -> int -> unit
val amoxor_w : t -> int -> int -> int -> unit

(** {2 Control flow (label targets)} *)

val beq : t -> int -> int -> string -> unit

val bne : t -> int -> int -> string -> unit
val blt : t -> int -> int -> string -> unit
val bge : t -> int -> int -> string -> unit
val bltu : t -> int -> int -> string -> unit
val bgeu : t -> int -> int -> string -> unit
val j : t -> string -> unit
val jal : t -> int -> string -> unit
val jalr : t -> int -> int -> int64 -> unit
val ret : t -> unit
val call : t -> string -> unit

(** {2 Pseudo} *)

val li : t -> int -> int64 -> unit

(** Load a label's address (pc-relative [auipc]+[addi] pair). *)
val la : t -> int -> string -> unit

val mv : t -> int -> int -> unit
val nop : t -> unit

(** {2 System} *)

val ecall : t -> unit

val csrr : t -> int -> int -> unit

(** {2 Assembly} *)

(** Number of instructions emitted so far. *)
val length : t -> int

(** [assemble t ~base] resolves labels against [base] and returns the typed
    program (one {!Instr.t} per word, label displacements folded in). *)
val assemble : t -> base:int64 -> Instr.t array

(** Encoded 32-bit words of the assembled program. *)
val words : t -> base:int64 -> int array

(** Address of [label] once assembled at [base]. *)
val addr_of : t -> base:int64 -> string -> int64
