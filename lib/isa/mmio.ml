(* Device state is sharded per hart so commit rules running on different
   simulation domains never touch a shared buffer: each hart appends console
   bytes to its own buffer and records its own exit code. [console] reports
   the concatenation in hart order, which is also what the previous shared
   buffer produced for the deterministic serial schedule (harts drain in
   schedule order within a cycle). *)

let max_harts = 64

type t = { bufs : Buffer.t array; exits : int64 option array }

let create () =
  { bufs = Array.init max_harts (fun _ -> Buffer.create 16); exits = Array.make max_harts None }

let store t ~hart addr v =
  if addr = Addr_map.mmio_console then begin
    Buffer.add_char t.bufs.(hart) (Char.chr (Int64.to_int v land 0xFF));
    true
  end
  else if addr = Addr_map.mmio_exit then begin
    if t.exits.(hart) = None then t.exits.(hart) <- Some v;
    true
  end
  else Addr_map.is_mmio addr

let load _t ~hart:_ _addr = 0L
let exit_code t ~hart = t.exits.(hart)

(* Snapshot support for the machine state registry. *)
type image = string array * int64 option array

let export t : image = (Array.map Buffer.contents t.bufs, Array.copy t.exits)

let import t ((bufs, exits) : image) =
  Array.iteri
    (fun i s ->
      Buffer.clear t.bufs.(i);
      Buffer.add_string t.bufs.(i) s)
    bufs;
  Array.blit exits 0 t.exits 0 (Array.length exits)

let console t =
  let b = Buffer.create 256 in
  Array.iter (fun hb -> Buffer.add_buffer b hb) t.bufs;
  Buffer.contents b
