(** The golden ISA-level simulator — the stand-in for Spike, the "golden
    model for RISC-V implementations" the paper validates against.

    Executes one instruction per step with architectural semantics only (no
    timing). The OOO core runs in lockstep against it: every committed
    instruction is compared on pc, destination register and value. *)

exception Fatal of string

type t

type commit = {
  pc : int64;
  instr : Instr.t;
  rd_write : (int * int64) option;  (** destination register and value *)
  store : (int64 * int * int64) option;  (** physical addr, bytes, value *)
  next_pc : int64;
}

(** [create ~nharts mem mmio] — harts start halted at pc 0 with zero
    registers; position them with {!set_pc}/{!set_reg}/{!set_satp}. *)
val create : nharts:int -> Phys_mem.t -> Mmio.t -> t

val mem : t -> Phys_mem.t
val mmio : t -> Mmio.t

(** Architectural hart state as a plain (marshalable) value, for the
    machine snapshot registry. [import] writes it back in place. *)
type hart_image

val export : t -> hart_image array
val import : t -> hart_image array -> unit
val set_pc : t -> hart:int -> int64 -> unit
val pc : t -> hart:int -> int64
val set_reg : t -> hart:int -> int -> int64 -> unit
val reg : t -> hart:int -> int -> int64

(** Enable Sv39 translation with the given root page ([0] = bare). *)
val set_satp : t -> hart:int -> int64 -> unit

val instret : t -> hart:int -> int64

(** [halted t ~hart] — the hart has stored to the exit device (or exited via
    ecall). *)
val halted : t -> hart:int -> bool

(** Execute one instruction; [None] when halted. Raises {!Fatal} on illegal
    instructions or unmapped addresses. *)
val step : t -> hart:int -> commit option

(** Run until the hart halts or [max] instructions retire; returns retired
    count, [`Timeout] if the budget ran out first. *)
val run : t -> hart:int -> max:int -> [ `Halted of int | `Timeout ]

(** Translate a virtual address under the hart's current [satp] (identity
    when bare). Used by loaders and debuggers. *)
val translate : t -> hart:int -> int64 -> int64
