(** Memory-mapped devices: console output and the exit ("tohost") register.

    MMIO accesses happen only at commit (paper, Section V-B), so a single
    non-speculative [store]/[load] interface suffices for every model. *)

type t

val create : unit -> t

(** [store t ~hart addr v] performs an uncached device store. Returns [true]
    when the address belongs to a device; a store to {!Addr_map.mmio_exit}
    records the hart's exit code. *)
val store : t -> hart:int -> int64 -> int64 -> bool

(** Device load; currently every device reads as 0. *)
val load : t -> hart:int -> int64 -> int64

(** Exit code of a hart, if it has exited. *)
val exit_code : t -> hart:int -> int64 option

(** Console output accumulated so far. *)
val console : t -> string

(** Device state as a plain (marshalable) value, for the machine snapshot
    registry; [import] writes it back in place. *)
type image

val export : t -> image
val import : t -> image -> unit
