let page_bits = 12
let page_size = 1 lsl page_bits

(* Two-level radix over the page index (no hashing): a fixed root of 2^16
   slots, each pointing at a leaf of 2^12 page slots — covering physical
   addresses up to 2^40 (1 TiB). The flat layout replaces the original
   hashtable for two reasons:

   - lookups on the hot load/store path are two array indexes instead of a
     hash + probe;
   - several simulator partitions (L2 banks interleaved by line address)
     may fault pages in concurrently during a parallel phase. A hashtable
     add can resize mid-read; here readers only ever follow immutable-once-
     published pointers. Slot publication happens under [t.lock] (so two
     banks racing to allocate the same page agree on one Bytes), and a
     racy reader either sees [None] — and takes the locked slow path — or
     sees the published pointer, whose zero-filled contents it reaches
     through an address dependency. Byte-level writes need no
     synchronization: the partition checker guarantees disjoint lines, and
     cross-partition data only flows across the scheduler barrier. *)
let leaf_bits = 12
let leaf_size = 1 lsl leaf_bits
let root_bits = 16
let root_size = 1 lsl root_bits

type t = {
  root : Bytes.t option array option array;
  lock : Mutex.t;
}

let create () = { root = Array.make root_size None; lock = Mutex.create () }

let bad_addr idx =
  invalid_arg (Printf.sprintf "Phys_mem: address out of range (page %#x)" idx)

let alloc_slow t hi lo =
  Mutex.lock t.lock;
  let leaf =
    match Array.unsafe_get t.root hi with
    | Some l -> l
    | None ->
      let l = Array.make leaf_size None in
      Array.unsafe_set t.root hi (Some l);
      l
  in
  let p =
    match Array.unsafe_get leaf lo with
    | Some p -> p
    | None ->
      let p = Bytes.make page_size '\000' in
      Array.unsafe_set leaf lo (Some p);
      p
  in
  Mutex.unlock t.lock;
  p

let page t idx =
  if idx lsr (root_bits + leaf_bits) <> 0 then bad_addr idx;
  let hi = idx lsr leaf_bits in
  let lo = idx land (leaf_size - 1) in
  match Array.unsafe_get t.root hi with
  | Some leaf -> (
    match Array.unsafe_get leaf lo with
    | Some p -> p
    | None -> alloc_slow t hi lo)
  | None -> alloc_slow t hi lo

let load_byte t addr =
  let addr = Int64.to_int addr in
  let p = page t (addr lsr page_bits) in
  Char.code (Bytes.unsafe_get p (addr land (page_size - 1)))

let store_byte t addr v =
  let addr = Int64.to_int addr in
  let p = page t (addr lsr page_bits) in
  Bytes.unsafe_set p (addr land (page_size - 1)) (Char.unsafe_chr (v land 0xFF))

let load t ~bytes addr =
  let a = Int64.to_int addr in
  let off = a land (page_size - 1) in
  if off + bytes <= page_size then begin
    let p = page t (a lsr page_bits) in
    match bytes with
    | 1 -> Int64.of_int (Char.code (Bytes.unsafe_get p off))
    | 2 -> Int64.of_int (Bytes.get_uint16_le p off)
    | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le p off)) 0xFFFFFFFFL
    | 8 -> Bytes.get_int64_le p off
    | _ -> invalid_arg "Phys_mem.load: bad width"
  end
  else begin
    (* page-straddling slow path *)
    let v = ref 0L in
    for i = bytes - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (load_byte t (Int64.add addr (Int64.of_int i))))
    done;
    !v
  end

let store t ~bytes addr v =
  let a = Int64.to_int addr in
  let off = a land (page_size - 1) in
  if off + bytes <= page_size then begin
    let p = page t (a lsr page_bits) in
    match bytes with
    | 1 -> Bytes.unsafe_set p off (Char.unsafe_chr (Int64.to_int v land 0xFF))
    | 2 -> Bytes.set_uint16_le p off (Int64.to_int v land 0xFFFF)
    | 4 -> Bytes.set_int32_le p off (Int64.to_int32 v)
    | 8 -> Bytes.set_int64_le p off v
    | _ -> invalid_arg "Phys_mem.store: bad width"
  end
  else
    for i = 0 to bytes - 1 do
      store_byte t (Int64.add addr (Int64.of_int i)) (Int64.to_int (Int64.shift_right_logical v (8 * i)))
    done

let load_block t addr n =
  let b = Bytes.create n in
  for i = 0 to (n / 8) - 1 do
    Bytes.set_int64_le b (i * 8) (load t ~bytes:8 (Int64.add addr (Int64.of_int (i * 8))))
  done;
  b

let store_block t addr b =
  for i = 0 to (Bytes.length b / 8) - 1 do
    store t ~bytes:8 (Int64.add addr (Int64.of_int (i * 8))) (Bytes.get_int64_le b (i * 8))
  done

(* Iterate allocated pages in index order (the radix is sorted by
   construction). Only used off the hot path: diagnostics and snapshots. *)
let iter_pages t f =
  for hi = 0 to root_size - 1 do
    match Array.unsafe_get t.root hi with
    | None -> ()
    | Some leaf ->
      for lo = 0 to leaf_size - 1 do
        match Array.unsafe_get leaf lo with
        | None -> ()
        | Some p -> f ((hi lsl leaf_bits) lor lo) p
      done
  done

let pages_touched t =
  let n = ref 0 in
  iter_pages t (fun _ _ -> incr n);
  !n

(* Snapshot support for the machine state registry (this library does not
   depend on the CMD kernel, so the registry hands these plain values
   around). Pages come out index-sorted, so two exports of equal memories
   are structurally equal regardless of allocation history. *)
type image = (int * Bytes.t) array

let export t : image =
  let l = ref [] in
  iter_pages t (fun idx p -> l := (idx, Bytes.copy p) :: !l);
  let a = Array.of_list !l in
  Array.sort (fun (a, _) (b, _) -> compare (a : int) b) a;
  a

let set_page t idx p =
  if idx lsr (root_bits + leaf_bits) <> 0 then bad_addr idx;
  let hi = idx lsr leaf_bits in
  let lo = idx land (leaf_size - 1) in
  let leaf =
    match Array.unsafe_get t.root hi with
    | Some l -> l
    | None ->
      let l = Array.make leaf_size None in
      Array.unsafe_set t.root hi (Some l);
      l
  in
  Array.unsafe_set leaf lo (Some p)

let import t (img : image) =
  Array.fill t.root 0 root_size None;
  Array.iter (fun (k, v) -> set_page t k (Bytes.copy v)) img

let copy t =
  let c = create () in
  iter_pages t (fun idx p -> set_page c idx (Bytes.copy p));
  c
