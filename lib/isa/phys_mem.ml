let page_bits = 12
let page_size = 1 lsl page_bits

type t = { pages : (int, Bytes.t) Hashtbl.t }

let create () = { pages = Hashtbl.create 1024 }

let page t idx =
  match Hashtbl.find_opt t.pages idx with
  | Some p -> p
  | None ->
    let p = Bytes.make page_size '\000' in
    Hashtbl.add t.pages idx p;
    p

let load_byte t addr =
  let addr = Int64.to_int addr in
  let p = page t (addr lsr page_bits) in
  Char.code (Bytes.unsafe_get p (addr land (page_size - 1)))

let store_byte t addr v =
  let addr = Int64.to_int addr in
  let p = page t (addr lsr page_bits) in
  Bytes.unsafe_set p (addr land (page_size - 1)) (Char.unsafe_chr (v land 0xFF))

let load t ~bytes addr =
  let a = Int64.to_int addr in
  let off = a land (page_size - 1) in
  if off + bytes <= page_size then begin
    let p = page t (a lsr page_bits) in
    match bytes with
    | 1 -> Int64.of_int (Char.code (Bytes.unsafe_get p off))
    | 2 -> Int64.of_int (Bytes.get_uint16_le p off)
    | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le p off)) 0xFFFFFFFFL
    | 8 -> Bytes.get_int64_le p off
    | _ -> invalid_arg "Phys_mem.load: bad width"
  end
  else begin
    (* page-straddling slow path *)
    let v = ref 0L in
    for i = bytes - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (load_byte t (Int64.add addr (Int64.of_int i))))
    done;
    !v
  end

let store t ~bytes addr v =
  let a = Int64.to_int addr in
  let off = a land (page_size - 1) in
  if off + bytes <= page_size then begin
    let p = page t (a lsr page_bits) in
    match bytes with
    | 1 -> Bytes.unsafe_set p off (Char.unsafe_chr (Int64.to_int v land 0xFF))
    | 2 -> Bytes.set_uint16_le p off (Int64.to_int v land 0xFFFF)
    | 4 -> Bytes.set_int32_le p off (Int64.to_int32 v)
    | 8 -> Bytes.set_int64_le p off v
    | _ -> invalid_arg "Phys_mem.store: bad width"
  end
  else
    for i = 0 to bytes - 1 do
      store_byte t (Int64.add addr (Int64.of_int i)) (Int64.to_int (Int64.shift_right_logical v (8 * i)))
    done

let load_block t addr n =
  let b = Bytes.create n in
  for i = 0 to (n / 8) - 1 do
    Bytes.set_int64_le b (i * 8) (load t ~bytes:8 (Int64.add addr (Int64.of_int (i * 8))))
  done;
  b

let store_block t addr b =
  for i = 0 to (Bytes.length b / 8) - 1 do
    store t ~bytes:8 (Int64.add addr (Int64.of_int (i * 8))) (Bytes.get_int64_le b (i * 8))
  done

let pages_touched t = Hashtbl.length t.pages

(* Snapshot support for the machine state registry (this library does not
   depend on the CMD kernel, so the registry hands these plain values
   around). Pages sort by index so two exports of equal memories are
   structurally equal regardless of hashtable insertion history. *)
type image = (int * Bytes.t) array

let export t : image =
  let a = Array.of_seq (Seq.map (fun (k, v) -> (k, Bytes.copy v)) (Hashtbl.to_seq t.pages)) in
  Array.sort (fun (a, _) (b, _) -> compare (a : int) b) a;
  a

let import t (img : image) =
  Hashtbl.reset t.pages;
  Array.iter (fun (k, v) -> Hashtbl.replace t.pages k (Bytes.copy v)) img

let copy t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter (fun k v -> Hashtbl.add pages k (Bytes.copy v)) t.pages;
  { pages }
