(** Stateless-model-checking exploration engines over process systems.

    A {!system} is a transition system factored into [nprocs] processes: at
    every state each process is enabled or not, an enabled process steps to
    one or more successor states (value nondeterminism inside one process
    step — e.g. a weak-memory load choosing among stale values — is a list
    of variants), and each process's next step at a state declares a
    {e footprint}: the resources it reads and writes. Two steps of different
    processes {e conflict} when their footprints share a resource and at
    least one writes it; conflict-free steps commute, which is what both the
    happens-before relation and the reduction below rely on. All variants of
    one [step] call must be decided by the declared footprint alone.

    {!explore} is dynamic partial-order reduction in the Flanagan–Godefroid
    style: depth-first search with per-state backtrack sets grown lazily by
    vector-clock race detection, plus sleep sets to kill redundant
    commutations. It visits at least one interleaving per Mazurkiewicz trace,
    so every reachable {e terminal} state (no process enabled) is reported —
    the property litmus enumeration needs — while the visited-state count
    stays near-linear for mostly-independent threads where plain DFS is
    exponential.

    {!explore_dfs} is the exhaustive memoized baseline the reduction is
    checked against: same system, same [on_terminal] contract, no reduction.

    Both raise {!Budget_exceeded} once more than [budget] states have been
    visited, leaving [stats] at the point of abandonment. *)

type 's system = {
  nprocs : int;
  enabled : 's -> int -> bool;
  step : 's -> int -> 's list;
      (** successor variants for an enabled process; never called (and must
          not be empty) unless [enabled] holds *)
  footprint : 's -> int -> (int * bool) list;
      (** resources the process's next step touches, [(resource, is_write)];
          must cover everything [step] reads to decide its variants *)
}

type stats = {
  mutable states : int;  (** states visited (DPOR counts re-visits) *)
  mutable transitions : int;  (** successor variants executed *)
  mutable sleep_prunes : int;  (** nodes cut because every runnable process slept *)
  mutable races : int;  (** backtrack points added by race detection *)
}

val stats_zero : unit -> stats

exception Budget_exceeded

(** [explore sys ~init ~on_terminal] runs DPOR from [init] and calls
    [on_terminal] on every terminal state reached (possibly more than once
    for the same state — callers dedupe). *)
val explore : ?budget:int -> 's system -> init:'s -> on_terminal:('s -> unit) -> stats

(** Exhaustive DFS memoized on [key] (which must injectively encode the
    state). [on_terminal] fires exactly once per distinct terminal state. *)
val explore_dfs :
  ?budget:int -> key:('s -> string) -> 's system -> init:'s -> on_terminal:('s -> unit) -> stats
