exception Violation of string * string * string

type monitor = {
  module_ : string;
  interface : string;
  m_doc : string;
  m_armed : bool;
  mutable events : int;
  mutable pending : string list;
      (* violations committed this cycle; appended under the undo log so an
         aborting rule takes its evidence away with it *)
}

let disarmed =
  { module_ = "-"; interface = "-"; m_doc = ""; m_armed = false; events = 0; pending = [] }

(* Same domain-local collector shape as Verif.Invariant: no scope, no
   retention — [declare] hands back the shared disarmed monitor. *)
let collector : monitor list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let declare ~module_ ~interface ~doc () =
  match !(Domain.DLS.get collector) with
  | Some l ->
      let m =
        { module_; interface; m_doc = doc; m_armed = true; events = 0; pending = [] }
      in
      l := m :: !l;
      m
  | None -> disarmed

let armed m = m.m_armed

let check ctx m f =
  if m.m_armed then begin
    Cmd.Mut.field ctx ~get:(fun () -> m.events) ~set:(fun v -> m.events <- v) (m.events + 1);
    match f () with
    | None -> ()
    | Some msg ->
        Cmd.Mut.field ctx
          ~get:(fun () -> m.pending)
          ~set:(fun v -> m.pending <- v)
          (msg :: m.pending)
  end

let collecting f =
  let c = Domain.DLS.get collector in
  let saved = !c in
  let l = ref [] in
  c := Some l;
  Fun.protect
    ~finally:(fun () -> c := saved)
    (fun () ->
      let r = f () in
      (r, List.rev !l))

let attach sim monitors =
  if monitors <> [] then
    Cmd.Sim.on_post_cycle sim (fun _cycle ->
        List.iter
          (fun m ->
            match m.pending with
            | [] -> ()
            | msg :: _ -> raise (Violation (m.module_, m.interface, msg)))
          monitors)

let name m = m.module_ ^ "/" ^ m.interface
let doc m = m.m_doc
let events m = m.events
let stats monitors = List.map (fun m -> (name m, m.events)) monitors
