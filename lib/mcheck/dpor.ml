type 's system = {
  nprocs : int;
  enabled : 's -> int -> bool;
  step : 's -> int -> 's list;
  footprint : 's -> int -> (int * bool) list;
}

type stats = {
  mutable states : int;
  mutable transitions : int;
  mutable sleep_prunes : int;
  mutable races : int;
}

let stats_zero () = { states = 0; transitions = 0; sleep_prunes = 0; races = 0 }

exception Budget_exceeded

(* -- vector clocks ------------------------------------------------------- *)

let vc_leq a b =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let vc_join a b = Array.init (Array.length a) (fun i -> max a.(i) b.(i))

let conflict fp1 fp2 =
  List.exists (fun (r1, w1) -> List.exists (fun (r2, w2) -> r1 = r2 && (w1 || w2)) fp2) fp1

(* -- DPOR ---------------------------------------------------------------- *)

(* A frame is a node on the current DFS path. Its backtrack set is mutable
   on purpose: descendants reach back through the trace to schedule more
   processes here when they detect a race. *)
type frame = { backtrack : bool array; f_enabled : int list }

type event = { e_proc : int; e_fp : (int * bool) list; e_clock : int array; e_frame : frame }

let explore ?budget sys ~init ~on_terminal =
  let st = stats_zero () in
  let n = sys.nprocs in
  let procs = List.init n Fun.id in
  let check_budget () =
    match budget with Some b when st.states > b -> raise Budget_exceeded | _ -> ()
  in
  (* [clocks.(p)] is the vector clock of [p]'s latest executed event;
     [rw]/[rall] map a resource to the clock of its last write / the join of
     all its accesses. All three are copied on push so siblings never see a
     branch's updates. [trace] lists executed events, newest first. *)
  let rec visit s sleep clocks rw rall trace =
    st.states <- st.states + 1;
    check_budget ();
    let en = List.filter (fun p -> sys.enabled s p) procs in
    match en with
    | [] -> on_terminal s
    | _ -> (
        match List.filter (fun p -> not sleep.(p)) en with
        | [] -> st.sleep_prunes <- st.sleep_prunes + 1
        | p0 :: _ ->
            let backtrack = Array.make n false in
            backtrack.(p0) <- true;
            let frame = { backtrack; f_enabled = en } in
            (* Race detection: for each enabled process, every earlier event
               that conflicts with its next step and is not already
               happens-before it is a race — schedule this process (or, when
               it was not yet enabled there, everything that was) at the
               racing event's pre-state. Adding a point at every racing
               event, not only the newest, keeps the search complete when a
               nearer conflict masks a farther one (e.g. a buffered store
               masking the memory write its drain races with). Every process
               executed from this frame is enabled here, so each executed
               event gets checked against the whole prefix. *)
            List.iter
              (fun p ->
                let fp = sys.footprint s p in
                List.iter
                  (fun e ->
                    if e.e_proc <> p && conflict e.e_fp fp && not (vc_leq e.e_clock clocks.(p))
                    then begin
                      st.races <- st.races + 1;
                      if List.mem p e.e_frame.f_enabled then e.e_frame.backtrack.(p) <- true
                      else List.iter (fun q -> e.e_frame.backtrack.(q) <- true) e.e_frame.f_enabled
                    end)
                  trace)
              en;
            let done_ = Array.make n false in
            let sleep_here = Array.copy sleep in
            (* The pick deliberately ignores [sleep_here]: every backtracked
               process other than [p0] got there through a race, and a race is
               evidence that the commuted-sibling coverage argument behind its
               sleep mark does not extend to the reordering the race demands.
               Waking it (exploring anyway) is conservative — naive
               sleep-blocking of race-added processes loses outcomes even
               under static independence (4-reader IRIW is a witness: the
               unique interleaving of one outcome is only demanded by races
               inside subtrees that the block prunes). Sleep still prunes via
               inheritance and the all-asleep cutoff above. *)
            let rec loop () =
              match
                List.find_opt (fun q -> frame.backtrack.(q) && not done_.(q)) procs
              with
              | None -> ()
              | Some q ->
                  done_.(q) <- true;
                  let fp = sys.footprint s q in
                  (* event clock: join of q's history with the ordering the
                     footprint imposes (reads after prior writes, writes
                     after all prior accesses), then tick q's component *)
                  let v = ref (Array.copy clocks.(q)) in
                  List.iter
                    (fun (r, w) ->
                      match Hashtbl.find_opt (if w then rall else rw) r with
                      | Some c -> v := vc_join !v c
                      | None -> ())
                    fp;
                  let v = !v in
                  v.(q) <- v.(q) + 1;
                  let clocks' = Array.copy clocks in
                  clocks'.(q) <- v;
                  let rw' = Hashtbl.copy rw and rall' = Hashtbl.copy rall in
                  List.iter
                    (fun (r, w) ->
                      if w then Hashtbl.replace rw' r v;
                      let j =
                        match Hashtbl.find_opt rall' r with Some c -> vc_join c v | None -> v
                      in
                      Hashtbl.replace rall' r j)
                    fp;
                  (* sleeping processes stay asleep below q only if they are
                     still runnable and commute with q *)
                  let child_sleep = Array.make n false in
                  Array.iteri
                    (fun r asleep ->
                      if
                        asleep && r <> q
                        && sys.enabled s r
                        && not (conflict (sys.footprint s r) fp)
                      then child_sleep.(r) <- true)
                    sleep_here;
                  let ev = { e_proc = q; e_fp = fp; e_clock = v; e_frame = frame } in
                  let trace' = ev :: trace in
                  List.iter
                    (fun s' ->
                      st.transitions <- st.transitions + 1;
                      visit s' child_sleep clocks' rw' rall' trace')
                    (sys.step s q);
                  sleep_here.(q) <- true;
                  loop ()
            in
            loop ())
  in
  let clocks0 = Array.init n (fun _ -> Array.make n 0) in
  visit init (Array.make n false) clocks0 (Hashtbl.create 64) (Hashtbl.create 64) [];
  st

(* -- exhaustive baseline ------------------------------------------------- *)

let explore_dfs ?budget ~key sys ~init ~on_terminal =
  let st = stats_zero () in
  let seen = Hashtbl.create 4096 in
  let procs = List.init sys.nprocs Fun.id in
  let rec go s =
    let k = key s in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      st.states <- st.states + 1;
      (match budget with Some b when st.states > b -> raise Budget_exceeded | _ -> ());
      let any = ref false in
      List.iter
        (fun p ->
          if sys.enabled s p then begin
            any := true;
            List.iter
              (fun s' ->
                st.transitions <- st.transitions + 1;
                go s')
              (sys.step s p)
          end)
        procs;
      if not !any then on_terminal s
    end
  in
  go init;
  st
