(** Modular interface-obligation checking (RealityCheck-style, PAPERS.md).

    Where {!Verif.Invariant} checks a module's {e internal} structure, an
    obligation is a contract on the {e messages} a module exchanges at a CMD
    boundary — "a load may not be sent to the cache past an older overlapping
    store", "an exclusive grant requires every other child invalidated". Each
    module declares its obligations at construction time and calls {!check}
    at the boundary, passing the rule context; the closure re-derives what
    the contract demands from the module's visible state and compares it with
    the message actually being sent. Because modules verify their own
    interfaces independently, checking cost grows with module count, not with
    the interleaving count of the whole system — the RealityCheck argument
    for why modular memory-model verification scales.

    Bookkeeping uses undo-logged mutation ({!Cmd.Mut.field}), so events
    recorded by a rule attempt that later aborts are rolled back with it —
    only architecturally committed message traffic is judged. Violations are
    raised at end of cycle by the {!attach} hook.

    Like invariants, declaration is a no-op (a disarmed monitor) outside a
    {!collecting} scope, so ordinary machines pay one branch per boundary
    event and retain nothing. *)

(** [Violation (module_, interface, message)] *)
exception Violation of string * string * string

type monitor

(** Declare an obligation on [module_]'s [interface]. Armed only inside
    {!collecting}. *)
val declare : module_:string -> interface:string -> doc:string -> unit -> monitor

val armed : monitor -> bool

(** [check ctx m f] records one boundary event against [m]. [f ()] returns
    [Some msg] to flag a contract violation, [None] if the event conforms.
    [f] is not even called when [m] is disarmed. The event count and any
    pending violation are undo-logged through [ctx]. *)
val check : Cmd.Kernel.ctx -> monitor -> (unit -> string option) -> unit

(** [collecting f] runs [f] with a fresh collector and returns [f]'s result
    plus every monitor declared during it. Nestable; restores the previous
    collector on exit. *)
val collecting : (unit -> 'a) -> 'a * monitor list

(** Raise {!Violation} at the end of any cycle that committed a violating
    event. *)
val attach : Cmd.Sim.t -> monitor list -> unit

(** ["module/interface"] *)
val name : monitor -> string

val doc : monitor -> string

(** Committed boundary events checked so far — lets reports prove the
    monitors actually observed traffic. *)
val events : monitor -> int

val stats : monitor list -> (string * int) list
