open Cmd

type ld_state = LdIdle | LdIssued | LdDone
type stall = SNone | SSq of int (* blocking store's seq *) | SSb of int (* store buffer idx *)

type lq_entry = {
  mutable lu : Uop.t option;
  mutable lidx : int; (* absolute index of current occupant *)
  mutable lstate : ld_state;
  mutable lstall : stall;
  mutable laddr_ok : bool;
  mutable wrong_path : bool; (* stale response still owed to this slot *)
}

type sq_entry = {
  mutable su : Uop.t option;
  mutable saddr_ok : bool;
  mutable scommitted : bool;
  mutable sissued : bool;
  mutable sprefetched : bool;
}

type t = {
  lq : lq_entry array;
  sq : sq_entry array;
  mutable l_head : int;
  mutable l_tail : int;
  mutable s_head : int;
  mutable s_tail : int;
  mutable fences : Uop.t list;
  tso : bool;
  mutable tag_ctr : int; (* unique tags for in-flight load requests *)
  outstanding : (int, int) Hashtbl.t; (* tag -> absolute LQ index *)
  ob_ld : Mcheck.Obligation.monitor;
  bug_bypass_sq : bool;
}

type issue_result = Forward of int64 * int | ToCache of int | Stalled

let wp_sets = ref 0
let wp_clears = ref 0

(* Age ordering: occupied LQ/SQ slots hold strictly increasing sequence
   numbers from head to tail (the LQ tolerates holes — a killed load's slot
   is vacated while a stale response is still owed), and committed SQ
   entries form a prefix: a store can only commit after every older store
   committed, and a committed store may never be dropped before issue. *)
let check_age_order t () =
  let fail fmt = Verif.Invariant.fail "lsq.age-order" fmt in
  let lq_n = t.l_tail - t.l_head and lq_cap = Array.length t.lq in
  if lq_n < 0 || lq_n > lq_cap then
    fail "LQ window [%d,%d) outside capacity %d" t.l_head t.l_tail lq_cap;
  let sq_n = t.s_tail - t.s_head and sq_cap = Array.length t.sq in
  if sq_n < 0 || sq_n > sq_cap then
    fail "SQ window [%d,%d) outside capacity %d" t.s_head t.s_tail sq_cap;
  let last = ref min_int in
  for i = t.l_head to t.l_tail - 1 do
    let e = t.lq.(i mod lq_cap) in
    match e.lu with
    | Some u when e.lidx = i ->
      if u.Uop.seq <= !last then
        fail "LQ slot %d seq %d not younger than predecessor seq %d" i u.Uop.seq !last;
      last := u.Uop.seq
    | _ -> ()
  done;
  let last = ref min_int in
  let uncommitted_seen = ref false in
  for i = t.s_head to t.s_tail - 1 do
    let e = t.sq.(i mod sq_cap) in
    match e.su with
    | Some u ->
      if u.Uop.seq <= !last then
        fail "SQ slot %d seq %d not younger than predecessor seq %d" i u.Uop.seq !last;
      last := u.Uop.seq;
      if e.scommitted then begin
        if !uncommitted_seen then
          fail "SQ slot %d committed after an uncommitted older store" i
      end
      else uncommitted_seen := true
    | None -> if e.scommitted then fail "SQ slot %d committed store lost (empty slot)" i
  done

let create (cfg : Config.t) =
  let t =
  {
    lq =
      Array.init cfg.Config.lq_size (fun _ ->
          { lu = None; lidx = -1; lstate = LdIdle; lstall = SNone; laddr_ok = false; wrong_path = false });
    sq =
      Array.init cfg.Config.sq_size (fun _ ->
          { su = None; saddr_ok = false; scommitted = false; sissued = false; sprefetched = false });
    l_head = 0;
    l_tail = 0;
    s_head = 0;
    s_tail = 0;
    fences = [];
    tso = cfg.Config.mem_model = Config.TSO;
    tag_ctr = 0;
    outstanding = Hashtbl.create 64;
    ob_ld =
      Mcheck.Obligation.declare ~module_:"ooo.lsq" ~interface:"ld-issue"
        ~doc:
          "a load request leaving the LSQ must not bypass an older overlapping \
           store whose address is already known"
        ();
    bug_bypass_sq = cfg.Config.bug_ld_bypass_sq;
  }
  in
  Verif.Invariant.register ~name:"lsq.age-order" (check_age_order t);
  State.field ~name:"lsq"
    (fun () ->
      ( t.lq,
        t.sq,
        t.l_head,
        t.l_tail,
        t.s_head,
        t.s_tail,
        t.fences,
        t.tag_ctr,
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.outstanding [] ))
    (fun (lq, sq, l_head, l_tail, s_head, s_tail, fences, tag_ctr, outstanding) ->
      Array.blit lq 0 t.lq 0 (Array.length t.lq);
      Array.blit sq 0 t.sq 0 (Array.length t.sq);
      t.l_head <- l_head;
      t.l_tail <- l_tail;
      t.s_head <- s_head;
      t.s_tail <- s_tail;
      t.fences <- fences;
      t.tag_ctr <- tag_ctr;
      Hashtbl.reset t.outstanding;
      List.iter (fun (k, v) -> Hashtbl.replace t.outstanding k v) outstanding);
  t

let fld (ctx : Kernel.ctx) get set v = Mut.field ctx ~get ~set v
let lslot t i = t.lq.(i mod Array.length t.lq)
let sslot t i = t.sq.(i mod Array.length t.sq)
let can_enq_ld t = t.l_tail - t.l_head < Array.length t.lq
let can_enq_st t = t.s_tail - t.s_head < Array.length t.sq

let bytes_of (u : Uop.t) =
  match u.instr.op with
  | Isa.Instr.Ld { width; _ } | Isa.Instr.St width | Isa.Instr.Lr width | Isa.Instr.Sc width
  | Isa.Instr.Amo { width; _ } ->
    Isa.Instr.bytes_of_width width
  | _ -> 8

let overlap a1 b1 a2 b2 =
  (* [a1, a1+b1) intersects [a2, a2+b2) *)
  Int64.compare a1 (Int64.add a2 (Int64.of_int b2)) < 0
  && Int64.compare a2 (Int64.add a1 (Int64.of_int b1)) < 0

let covers sa sb la lb =
  Int64.compare sa la <= 0 && Int64.compare (Int64.add la (Int64.of_int lb)) (Int64.add sa (Int64.of_int sb)) <= 0

(* --- rename side ---------------------------------------------------------- *)

let reserve_ld ctx t =
  Kernel.guard ctx (can_enq_ld t) "lq full";
  let idx = t.l_tail in
  fld ctx (fun () -> t.l_tail) (fun v -> t.l_tail <- v) (t.l_tail + 1);
  idx

let fill_ld ctx t idx u =
  let e = lslot t idx in
  fld ctx (fun () -> e.lu) (fun v -> e.lu <- v) (Some u);
  fld ctx (fun () -> e.lidx) (fun v -> e.lidx <- v) idx;
  fld ctx (fun () -> e.lstate) (fun v -> e.lstate <- v) LdIdle;
  fld ctx (fun () -> e.lstall) (fun v -> e.lstall <- v) SNone;
  fld ctx (fun () -> e.laddr_ok) (fun v -> e.laddr_ok <- v) false

let reserve_st ctx t =
  Kernel.guard ctx (can_enq_st t) "sq full";
  let idx = t.s_tail in
  fld ctx (fun () -> t.s_tail) (fun v -> t.s_tail <- v) (t.s_tail + 1);
  idx

let fill_st ctx t idx u =
  let e = sslot t idx in
  fld ctx (fun () -> e.su) (fun v -> e.su <- v) (Some u);
  fld ctx (fun () -> e.saddr_ok) (fun v -> e.saddr_ok <- v) false;
  fld ctx (fun () -> e.scommitted) (fun v -> e.scommitted <- v) false;
  fld ctx (fun () -> e.sissued) (fun v -> e.sissued <- v) false;
  fld ctx (fun () -> e.sprefetched) (fun v -> e.sprefetched <- v) false

let add_fence ctx t u = fld ctx (fun () -> t.fences) (fun v -> t.fences <- v) (u :: t.fences)

let remove_fence ctx t u =
  fld ctx (fun () -> t.fences) (fun v -> t.fences <- v)
    (List.filter (fun (f : Uop.t) -> f.seq <> u.Uop.seq) t.fences)

(* --- update --------------------------------------------------------------- *)

let update_ld ctx t (u : Uop.t) =
  match u.lsq with
  | Uop.LQ idx ->
    let e = lslot t idx in
    if e.lidx = idx && e.lu <> None then fld ctx (fun () -> e.laddr_ok) (fun v -> e.laddr_ok <- v) true
  | Uop.SQ _ | Uop.LNone -> ()

let update_st ctx t (u : Uop.t) =
  (match u.lsq with
  | Uop.SQ idx ->
    let e = sslot t idx in
    (match e.su with
    | Some x when x.Uop.seq = u.seq -> fld ctx (fun () -> e.saddr_ok) (fun v -> e.saddr_ok <- v) true
    | Some _ | None -> ())
  | Uop.LQ _ | Uop.LNone -> ());
  (* kill search: younger loads that already read data overlapping us *)
  let sb = bytes_of u in
  for i = t.l_head to t.l_tail - 1 do
    let e = lslot t i in
    if e.lidx = i then
      match e.lu with
      | Some lu
        when lu.Uop.seq > u.seq && e.laddr_ok
             && (e.lstate = LdIssued || e.lstate = LdDone)
             && (not lu.killed)
             && overlap u.paddr sb lu.paddr (bytes_of lu) ->
        Uop.mk_set_ld_kill ctx lu true
      | _ -> ()
  done

(* --- load issue ------------------------------------------------------------ *)

let fence_blocks t (u : Uop.t) = List.exists (fun (f : Uop.t) -> f.seq < u.seq) t.fences

let has_issue_ld t =
  let found = ref false in
  for i = t.l_head to t.l_tail - 1 do
    if not !found then begin
      let e = lslot t i in
      if e.lidx = i && (not e.wrong_path) && e.laddr_ok && e.lstate = LdIdle && e.lstall = SNone then
        match e.lu with
        | Some u
          when (not u.killed) && (not u.mmio) && (not u.fault)
               && (match u.instr.op with Isa.Instr.Ld _ -> true | _ -> false)
               && not (fence_blocks t u) ->
          found := true
        | _ -> ()
    end
  done;
  !found

let get_issue_ld _ctx t =
  let found = ref None in
  for i = t.l_head to t.l_tail - 1 do
    if !found = None then begin
      let e = lslot t i in
      if e.lidx = i && (not e.wrong_path) && e.laddr_ok && e.lstate = LdIdle && e.lstall = SNone then
        match e.lu with
        | Some u
          when (not u.killed) && (not u.mmio) && (not u.fault)
               && (match u.instr.op with Isa.Instr.Ld _ -> true | _ -> false)
               && not (fence_blocks t u) ->
          found := Some (i, u)
        | _ -> ()
    end
  done;
  match !found with
  | Some r -> r
  | None -> raise (Kernel.Guard_fail "no issuable load")

let extract_store_data (st : Uop.t) la lb =
  let shift = Int64.to_int (Int64.sub la st.paddr) in
  (Int64.shift_right_logical st.st_data (8 * shift), lb)

let load_extend (u : Uop.t) raw lb =
  match u.instr.op with
  | Isa.Instr.Ld { unsigned; _ } ->
    if unsigned then Isa.Xlen.zext ~bits:(lb * 8) raw else Isa.Xlen.sext ~bits:(lb * 8) raw
  | _ -> raw

let issue_ld ctx t idx (u : Uop.t) ~sb_search =
  let e = lslot t idx in
  let lb = bytes_of u in
  (* youngest overlapping older store with a known address *)
  let honest = ref None in
  for i = t.s_head to t.s_tail - 1 do
    let s = sslot t i in
    match s.su with
    | Some su
      when su.Uop.seq < u.seq && s.saddr_ok && (not su.killed)
           && overlap su.paddr (bytes_of su) u.paddr lb ->
      (match !honest with
      | Some (bu : Uop.t) when bu.seq > su.Uop.seq -> ()
      | _ -> honest := Some su)
    | _ -> ()
  done;
  (* the injected bug drops the scan result on the floor; the obligation
     below still judges the issued request against the honest scan *)
  let best = if t.bug_bypass_sq then ref None else honest in
  let check_no_bypass () =
    Mcheck.Obligation.check ctx t.ob_ld (fun () ->
        match !honest with
        | Some su ->
          Some
            (Printf.sprintf
               "load seq %d (paddr 0x%Lx) issued past older overlapping store seq %d (paddr 0x%Lx)"
               u.seq u.paddr su.Uop.seq su.paddr)
        | None -> None)
  in
  let set_state st = fld ctx (fun () -> e.lstate) (fun v -> e.lstate <- v) st in
  let set_stall s = fld ctx (fun () -> e.lstall) (fun v -> e.lstall <- v) s in
  let new_tag () =
    let tag = t.tag_ctr in
    fld ctx (fun () -> t.tag_ctr) (fun v -> t.tag_ctr <- v) (tag + 1);
    Hashtbl.replace t.outstanding tag idx;
    Kernel.on_abort ctx (fun () -> Hashtbl.remove t.outstanding tag);
    tag
  in
  match !best with
  | Some su when (match su.instr.op with Isa.Instr.St _ -> true | _ -> false)
                 && covers su.paddr (bytes_of su) u.paddr lb ->
    let raw, _ = extract_store_data su u.paddr lb in
    set_state LdIssued;
    Forward (load_extend u raw lb, new_tag ())
  | Some su ->
    (* partial overlap, or an atomic (SC/AMO) whose result isn't forwardable
       before commit: stall until it leaves the SQ *)
    set_stall (SSq su.Uop.seq);
    Stalled
  | None -> (
    match sb_search with
    | Store_buffer.Full raw ->
      check_no_bypass ();
      set_state LdIssued;
      Forward (load_extend u raw lb, new_tag ())
    | Store_buffer.Partial sbidx ->
      set_stall (SSb sbidx);
      Stalled
    | Store_buffer.NoMatch ->
      check_no_bypass ();
      set_state LdIssued;
      ToCache (new_tag ()))

let resp_ld ctx t tag value =
  let idx =
    match Hashtbl.find_opt t.outstanding tag with
    | Some i -> i
    | None -> failwith "lsq: response with unknown tag"
  in
  Hashtbl.remove t.outstanding tag;
  Kernel.on_abort ctx (fun () -> Hashtbl.replace t.outstanding tag idx);
  let e = lslot t idx in
  if e.lidx <> idx || e.lu = None || e.lstate <> LdIssued then begin
    (* stale response: the load it belonged to was killed *)
    if e.wrong_path then incr wp_clears;
    fld ctx (fun () -> e.wrong_path) (fun v -> e.wrong_path <- v) false;
    `WrongPath
  end
  else
    match e.lu with
    | Some u when not u.killed ->
      fld ctx (fun () -> e.lstate) (fun v -> e.lstate <- v) LdDone;
      Uop.mk_set_result ctx u value;
      `Ok u
    | _ ->
      (* killed but not yet collected: the slot owes no further response *)
      if e.wrong_path then incr wp_clears;
      fld ctx (fun () -> e.wrong_path) (fun v -> e.wrong_path <- v) false;
      fld ctx (fun () -> e.lu) (fun v -> e.lu <- v) None;
      fld ctx (fun () -> e.lstate) (fun v -> e.lstate <- v) LdIdle;
      `WrongPath

(* --- store commit side ------------------------------------------------------ *)

let set_at_commit ctx t (u : Uop.t) =
  match u.lsq with
  | Uop.SQ idx ->
    let e = sslot t idx in
    fld ctx (fun () -> e.scommitted) (fun v -> e.scommitted <- v) true
  | Uop.LQ _ | Uop.LNone -> ()

let is_normal_store (u : Uop.t) = match u.instr.op with Isa.Instr.St _ -> true | _ -> false

let oldest_committed_store t =
  let r = ref None in
  for i = t.s_tail - 1 downto t.s_head do
    let e = sslot t i in
    match e.su with
    | Some u when e.scommitted && (not e.sissued) && is_normal_store u && not u.mmio -> r := Some (i, u)
    | _ -> ()
  done;
  !r

let mark_store_issued ctx t idx =
  let e = sslot t idx in
  fld ctx (fun () -> e.sissued) (fun v -> e.sissued <- v) true

(* A translated store that has not been prefetched yet (paper: "SQ can
   issue as many store-prefetch requests as it wants"). *)
let prefetch_candidate t =
  let r = ref None in
  for i = t.s_tail - 1 downto t.s_head do
    let e = sslot t i in
    match e.su with
    | Some u
      when e.saddr_ok && (not e.sissued) && (not e.sprefetched) && (not u.killed)
           && is_normal_store u && not u.mmio ->
      r := Some (i, u)
    | _ -> ()
  done;
  !r

let mark_prefetched ctx t idx =
  let e = sslot t idx in
  fld ctx (fun () -> e.sprefetched) (fun v -> e.sprefetched <- v) true

let committed_store_head t =
  if t.s_tail - t.s_head > 0 then begin
    let e = sslot t t.s_head in
    match e.su with
    | Some u when e.scommitted && is_normal_store u && not u.mmio -> Some (t.s_head, u)
    | _ -> None
  end
  else None

let clear_sq_stalls ctx t seq =
  for i = t.l_head to t.l_tail - 1 do
    let e = lslot t i in
    match e.lstall with
    | SSq s when s = seq -> fld ctx (fun () -> e.lstall) (fun v -> e.lstall <- v) SNone
    | _ -> ()
  done

let deq_st ctx t =
  Kernel.guard ctx (t.s_tail - t.s_head > 0) "sq empty";
  let e = sslot t t.s_head in
  (match e.su with Some u -> clear_sq_stalls ctx t u.Uop.seq | None -> ());
  fld ctx (fun () -> e.su) (fun v -> e.su <- v) None;
  fld ctx (fun () -> e.scommitted) (fun v -> e.scommitted <- v) false;
  fld ctx (fun () -> e.sissued) (fun v -> e.sissued <- v) false;
  fld ctx (fun () -> t.s_head) (fun v -> t.s_head <- v) (t.s_head + 1)

let sq_head_is t (u : Uop.t) =
  t.s_tail - t.s_head > 0
  && match (sslot t t.s_head).su with Some x -> x.Uop.seq = u.seq | None -> false

let sq_head_issued t = t.s_tail - t.s_head > 0 && (sslot t t.s_head).sissued
let sq_empty t = t.s_tail = t.s_head

(* No committed store still waiting to reach memory. Speculative entries
   (e.g. wrong-path stores fetched past a halting ecall) don't count: they
   can never issue. *)
let sq_quiesced t =
  let ok = ref true in
  for i = t.s_head to t.s_tail - 1 do
    if (sslot t i).scommitted then ok := false
  done;
  !ok

(* stores older than [seq] still pending? (the SQ head is the oldest) *)
let no_older_stores t seq =
  t.s_tail = t.s_head
  || match (sslot t t.s_head).su with Some u -> u.Uop.seq > seq | None -> true

let wakeup_by_sb_deq ctx t sbidx =
  for i = t.l_head to t.l_tail - 1 do
    let e = lslot t i in
    match e.lstall with
    | SSb s when s = sbidx -> fld ctx (fun () -> e.lstall) (fun v -> e.lstall <- v) SNone
    | _ -> ()
  done

(* --- commit / speculation ---------------------------------------------------- *)

let deq_ld ctx t =
  Kernel.guard ctx (t.l_tail - t.l_head > 0) "lq empty";
  let e = lslot t t.l_head in
  fld ctx (fun () -> e.lu) (fun v -> e.lu <- v) None;
  fld ctx (fun () -> e.laddr_ok) (fun v -> e.laddr_ok <- v) false;
  fld ctx (fun () -> e.lstate) (fun v -> e.lstate <- v) LdIdle;
  fld ctx (fun () -> e.lstall) (fun v -> e.lstall <- v) SNone;
  fld ctx (fun () -> t.l_head) (fun v -> t.l_head <- v) (t.l_head + 1)

let cache_evict ctx t line =
  if t.tso then
    for i = t.l_head to t.l_tail - 1 do
      let e = lslot t i in
      if e.lidx = i && e.lstate = LdDone then
        match e.lu with
        | Some u
          when (not u.killed) && (not u.ld_kill)
               && Mem.Cache_geom.line_addr u.paddr = line ->
          Uop.mk_set_ld_kill ctx u true
        | _ -> ()
    done

let release_lq_slot ctx e =
  (match e.lstate with
  | LdIssued ->
    incr wp_sets;
    fld ctx (fun () -> e.wrong_path) (fun v -> e.wrong_path <- v) true
  | LdIdle | LdDone -> ());
  fld ctx (fun () -> e.lu) (fun v -> e.lu <- v) None;
  fld ctx (fun () -> e.laddr_ok) (fun v -> e.laddr_ok <- v) false;
  fld ctx (fun () -> e.lstate) (fun v -> e.lstate <- v) LdIdle;
  fld ctx (fun () -> e.lstall) (fun v -> e.lstall <- v) SNone

let kill_suffix ctx t =
  let continue = ref true in
  while !continue && t.l_tail > t.l_head do
    let e = lslot t (t.l_tail - 1) in
    match e.lu with
    | Some u when u.Uop.killed ->
      release_lq_slot ctx e;
      fld ctx (fun () -> t.l_tail) (fun v -> t.l_tail <- v) (t.l_tail - 1)
    | _ -> continue := false
  done;
  let continue = ref true in
  while !continue && t.s_tail > t.s_head do
    let e = sslot t (t.s_tail - 1) in
    match e.su with
    | Some u when u.Uop.killed ->
      fld ctx (fun () -> e.su) (fun v -> e.su <- v) None;
      fld ctx (fun () -> e.saddr_ok) (fun v -> e.saddr_ok <- v) false;
      fld ctx (fun () -> t.s_tail) (fun v -> t.s_tail <- v) (t.s_tail - 1)
    | _ -> continue := false
  done;
  (* killed fences *)
  fld ctx (fun () -> t.fences) (fun v -> t.fences <- v)
    (List.filter (fun (f : Uop.t) -> not f.killed) t.fences)

let flush ctx t =
  for i = t.l_head to t.l_tail - 1 do
    let e = lslot t i in
    if e.lu <> None then release_lq_slot ctx e
  done;
  fld ctx (fun () -> t.l_tail) (fun v -> t.l_tail <- v) t.l_head;
  (* Careful: l_head must keep advancing monotonically so absolute indices
     stay unique; collapse both pointers to the max instead. *)
  let m = max t.l_head t.l_tail in
  fld ctx (fun () -> t.l_head) (fun v -> t.l_head <- v) m;
  fld ctx (fun () -> t.l_tail) (fun v -> t.l_tail <- v) m;
  for i = t.s_head to t.s_tail - 1 do
    let e = sslot t i in
    (* committed stores must survive a flush: they are architecturally done *)
    if not e.scommitted then begin
      fld ctx (fun () -> e.su) (fun v -> e.su <- v) None;
      fld ctx (fun () -> e.saddr_ok) (fun v -> e.saddr_ok <- v) false
    end
  done;
  (* drop the uncommitted suffix *)
  let new_tail = ref t.s_head in
  for i = t.s_head to t.s_tail - 1 do
    if (sslot t i).scommitted then new_tail := i + 1
  done;
  fld ctx (fun () -> t.s_tail) (fun v -> t.s_tail <- v) !new_tail;
  fld ctx (fun () -> t.fences) (fun v -> t.fences <- v) []

let pp_debug fmt t =
  Format.fprintf fmt "LQ[%d,%d) SQ[%d,%d) fences=%d@." t.l_head t.l_tail t.s_head t.s_tail
    (List.length t.fences);
  for i = t.l_head to t.l_tail - 1 do
    let e = lslot t i in
    Format.fprintf fmt "  LQ%d: lidx=%d wp=%b addr_ok=%b state=%s stall=%s u=%s@." i e.lidx
      e.wrong_path e.laddr_ok
      (match e.lstate with LdIdle -> "idle" | LdIssued -> "iss" | LdDone -> "done")
      (match e.lstall with SNone -> "-" | SSq s -> Printf.sprintf "sq%d" s | SSb s -> Printf.sprintf "sb%d" s)
      (match e.lu with Some u -> Format.asprintf "%a" Uop.pp u | None -> "-")
  done;
  for i = t.s_head to t.s_tail - 1 do
    let e = sslot t i in
    Format.fprintf fmt "  SQ%d: addr_ok=%b committed=%b issued=%b u=%s@." i e.saddr_ok e.scommitted
      e.sissued
      (match e.su with Some u -> Format.asprintf "%a" Uop.pp u | None -> "-")
  done
