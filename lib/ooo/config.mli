(** RiscyOO processor configurations (paper, Figs. 12 and 14).

    Everything the evaluation varies is a field here: superscalar width,
    ROB/IQ/LSQ sizes, speculation depth, memory model, TLB personality and
    cache geometry. *)

type mem_model = TSO | WMM

type t = {
  name : string;
  width : int;  (** fetch/decode/rename/commit width *)
  rob_size : int;
  n_alu : int;  (** ALU pipelines, each with its own IQ *)
  iq_size : int;  (** per-pipeline issue queue entries *)
  lq_size : int;
  sq_size : int;
  sb_size : int;  (** store buffer entries (WMM only) *)
  n_phys_regs : int;
      (** physical-register-file entries (>= 33: the 32 architectural
          registers plus the free window rename draws on). Classically sized
          as [phys_regs_for ~rob_size]; the config-space explorer varies it
          independently. *)
  n_spec_tags : int;  (** branch speculation tags / bit-mask width *)
  muldiv_latency : int;
  mem_model : mem_model;
  tlb : Tlb.Tlb_sys.config;
  mem : Mem.Mem_sys.config;
  btb_entries : int;
  ras_entries : int;
  bypass : bool;  (** ablation: ALU-result bypass network on/off *)
  predictor : Branch.Dir_pred.kind;  (** direction predictor to instantiate *)
  st_prefetch : bool;
      (** issue store-prefetch (acquire-M) requests for queued stores — the
          feature the paper describes but had not implemented *)
  bug_ld_bypass_sq : bool;
      (** fault injection for {!Mcheck.Obligation} testing: load issue skips
          the store-queue age/overlap scan, letting loads bypass older
          overlapping stores. The [ooo.lsq/ld-issue] obligation catches the
          first load that reaches the cache past such a store. *)
}

(** The classic PRF sizing: 32 architectural + ROB window + 8 slack. *)
val phys_regs_for : rob_size:int -> int

(** RiscyOO-B: the paper's baseline (Fig. 12): 2-wide, 64-entry ROB, 2 ALU +
    1 MEM pipelines, 16-entry IQs, 24/14-entry LQ/SQ, blocking TLBs, 32 KB
    L1s, 1 MB L2, 120-cycle memory. *)
val riscyoo_b : t

(** RiscyOO-C-: RiscyOO-B with 16 KB L1s and a 256 KB L2 (Fig. 14). *)
val riscyoo_cminus : t

(** RiscyOO-T+: RiscyOO-B with non-blocking TLBs and the translation walk
    cache (Fig. 14). *)
val riscyoo_tplus : t

(** RiscyOO-T+R+: RiscyOO-T+ with an 80-entry ROB (Fig. 14). *)
val riscyoo_tplus_rplus : t

(** Width/cache-scaled stand-ins for the commercial cores of Fig. 13. *)
val a57_proxy : t

val denver_proxy : t

(** Quad-core configuration used for PARSEC (Sec. VI-B): 48-entry ROB,
    reduced buffers, TSO or WMM. *)
val multicore : mem_model -> t

(** Sixteen-core scale-up of {!multicore}: smaller private L1s, a 2 MB L2
    interleaved across 4 banks (each bank its own scheduler partition and
    DRAM channel), deeper MSHR/memory parallelism. Built for
    [Machine.create ~ncores:16 ~jobs ~epoch]. *)
val multicore16 : mem_model -> t

val pp : Format.formatter -> t -> unit
