open Cmd

type 'a t = { slot : 'a option Ehr.t; dead : 'a -> bool; nm : string }

let create ~name ~dead = { slot = Ehr.create ~name None; dead; nm = name }

(* ports: take/peek 0, put 1, squash 2 *)

let drop_if_dead ctx t port =
  match Ehr.read ctx t.slot port with
  | Some v when t.dead v ->
    Ehr.write ctx t.slot port None;
    None
  | x -> x

let put ctx t v =
  Kernel.guard ctx (Ehr.read ctx t.slot 1 = None) (t.nm ^ " occupied");
  Ehr.write ctx t.slot 1 (Some v)

let can_put ctx t = Ehr.read ctx t.slot 1 = None

let peek ctx t =
  match drop_if_dead ctx t 0 with
  | Some v -> v
  | None -> raise (Kernel.Guard_fail (t.nm ^ " empty"))

let take ctx t =
  match drop_if_dead ctx t 0 with
  | Some v ->
    Ehr.write ctx t.slot 0 None;
    v
  | None -> raise (Kernel.Guard_fail (t.nm ^ " empty"))

let squash ctx t =
  match Ehr.read ctx t.slot 2 with
  | Some v when t.dead v -> Ehr.write ctx t.slot 2 None
  | _ -> ()

let peek_opt t = Ehr.peek t.slot
let occupied t = Ehr.peek t.slot <> None
let signal t = Ehr.signal t.slot
