open Cmd

type 'a t = {
  slot : 'a option Ehr.t;
  dead : 'a -> bool;
  nm : string;
  m_occupied : string; (* guard messages precomputed: stages sit on the *)
  m_empty : string; (* hottest per-cycle paths *)
}

let create ~name ~dead =
  { slot = Ehr.create ~name None; dead; nm = name;
    m_occupied = name ^ " occupied"; m_empty = name ^ " empty" }

(* ports: take/peek 0, put 1, squash 2 *)

let drop_if_dead ctx t port =
  match Ehr.read ctx t.slot port with
  | Some v when t.dead v ->
    Ehr.write ctx t.slot port None;
    None
  | x -> x

let put ctx t v =
  Kernel.guard ctx (Ehr.read ctx t.slot 1 = None) t.m_occupied;
  Ehr.write ctx t.slot 1 (Some v)

let can_put ctx t = Ehr.read ctx t.slot 1 = None

let peek ctx t =
  match drop_if_dead ctx t 0 with
  | Some v -> v
  | None -> raise (Kernel.Guard_fail t.m_empty)

let take ctx t =
  match drop_if_dead ctx t 0 with
  | Some v ->
    Ehr.write ctx t.slot 0 None;
    v
  | None -> raise (Kernel.Guard_fail t.m_empty)

let squash ctx t =
  match Ehr.read ctx t.slot 2 with
  | Some v when t.dead v -> Ehr.write ctx t.slot 2 None
  | _ -> ()

let peek_opt t = Ehr.peek t.slot
let occupied t = Ehr.peek t.slot <> None
let signal t = Ehr.signal t.slot

(* Conflict footprints. [take]/[peek] go through [drop_if_dead], which may
   WRITE port 0 (dropping a dead occupant), so both declare the write. *)
let fp_take t = Ehr.fp t.slot ~label:(t.nm ^ ".take") [ (false, 0); (true, 0) ]
let fp_peek t = Ehr.fp t.slot ~label:(t.nm ^ ".peek") [ (false, 0); (true, 0) ]
let fp_put t = Ehr.fp t.slot ~label:(t.nm ^ ".put") [ (false, 1); (true, 1) ]
let fp_can_put t = Ehr.fp t.slot ~label:(t.nm ^ ".can_put") [ (false, 1) ]
let fp_squash t = Ehr.fp t.slot ~label:(t.nm ^ ".squash") [ (false, 2); (true, 2) ]
