open Cmd
open Isa

type schedule = [ `Aggressive | `Conservative ]

(* fetch in-flight slot *)
type fstate = FFree | FWaitTlb | FReady of int64 | FWaitMem

type fslot = {
  mutable fst : fstate;
  mutable vpc : int64;
  mutable flen : int;
  mutable fpred : int64;
  mutable fepoch : int;
  mutable fcyc : int; (* cycle the fetch was issued; only kept when tracing *)
}

type fgroup = {
  gpc : int64;
  gwords : int array;
  gpred : int64;
  gepoch : int;
  gfcyc : int;
}

type dec = {
  dpc : int64;
  dinstr : Instr.t;
  dpred : int64;
  dghist : Branch.Dir_pred.snapshot option;
  dras : Branch.Ras.snapshot;
  dtid : int; (* observability trace id, -1 when tracing is off *)
}

type t = {
  name : string;
  cfg : Config.t;
  clk : Clock.t;
  hart_id : int;
  ic : Mem.L1_icache.t;
  dc : Mem.L1_dcache.t;
  tlbs : Tlb.Tlb_sys.t;
  mmio : Mmio.t;
  cosim : Golden.t option;
  (* front-end *)
  btb : Branch.Btb.t;
  tour : Branch.Dir_pred.t;
  ras : Branch.Ras.t;
  mutable fpc : int64;
  mutable epoch : int;
  fslots : fslot array;
  mutable f_alloc : int;
  mutable f_mem : int;
  f2d : fgroup Fifo.t;
  d2r : dec Fifo.t;
  (* rename *)
  rat : Rename_table.t;
  fl : Free_list.t;
  spec : Spec_manager.t;
  fl_snaps : Free_list.snapshot array; (* free-list snapshot per tag *)
  prf : Prf.t;
  mutable seq_ctr : int;
  (* execution engine *)
  rob : Rob.t;
  alu_iqs : Issue_queue.t array;
  md_iq : Issue_queue.t;
  mem_iq : Issue_queue.t;
  alu_rr : Uop.t Stage.t array;
  alu_ex : (Uop.t * int64 * int64) Stage.t array;
  alu_wb : (Uop.t * int64) Stage.t array;
  md_rr : Uop.t Stage.t;
  md_ex : (Uop.t * int64 * int64 * int) Stage.t;
  md_wb : (Uop.t * int64) Stage.t;
  mem_rr : Uop.t Stage.t;
  byp : Bypass.t;
  (* load-store unit *)
  lsq : Lsq.t;
  sb : Store_buffer.t;
  tlb_pending : Uop.t option array;
  forward_q : (int * int64) Fifo.t;
  mutable reservation : int64 option;
  mutable atomic_busy : bool;
  mutable halted_f : bool;
  mutable n_instret : int;
  mutable commit_hook : (Kernel.ctx -> Uop.t -> unit) option;
  (* observability *)
  pipe : Obs.Pipe.t;
  (* statistics *)
  c_cycles : Stats.counter;
  c_instrs : Stats.counter;
  c_mispred : Stats.counter;
  c_branches : Stats.counter;
  c_ld_kill_flush : Stats.counter;
  c_tso_kills : Stats.counter;
  c_rob_occ : Stats.counter;
  c_rob_full : Stats.counter;
  c_iq_occ : Stats.counter;
  c_iq_full : Stats.counter;
}

exception Cosim_mismatch of string

let create ?(name = "ooo") ?cosim ?(pipe = Obs.Pipe.null) clk (cfg : Config.t) ~hart_id ~icache
    ~dcache ~tlb ~mmio ~stats () =
  (* Everything a core builds — pipeline FIFOs, stages, bypass wires — is
     private to it, so the whole construction runs in the core's partition
     (hart 0 -> partition 1; partition 0 is the uncore). *)
  Partition.scoped (hart_id + 1) @@ fun () ->
  let nregs = cfg.n_phys_regs in
  let dead_u (u : Uop.t) = u.killed in
  let dead_2 ((u : Uop.t), _) = u.killed in
  let dead_3 ((u : Uop.t), _, _) = u.killed in
  let dead_4 ((u : Uop.t), _, _, _) = u.killed in
  let fl = Free_list.create ~nregs in
  let t =
  {
    name;
    cfg;
    clk;
    hart_id;
    ic = icache;
    dc = dcache;
    tlbs = tlb;
    mmio;
    cosim;
    btb = Branch.Btb.create ~entries:cfg.btb_entries ();
    tour = Branch.Dir_pred.create cfg.predictor;
    ras = Branch.Ras.create ~entries:cfg.ras_entries ~stats ~name:(name ^ ".ras") ();
    fpc = Addr_map.dram_base;
    epoch = 0;
    fslots =
      Array.init 8 (fun _ -> { fst = FFree; vpc = 0L; flen = 0; fpred = 0L; fepoch = 0; fcyc = 0 });
    f_alloc = 0;
    f_mem = 0;
    f2d = Fifo.cf ~name:(name ^ ".f2d") clk ~capacity:4 ();
    d2r = Fifo.cf ~name:(name ^ ".d2r") clk ~capacity:(2 * cfg.width + 2) ();
    rat = Rename_table.create ~n_tags:cfg.n_spec_tags;
    fl;
    spec = Spec_manager.create ~n_tags:cfg.n_spec_tags;
    fl_snaps = Array.make cfg.n_spec_tags (Free_list.snapshot fl);
    prf = Prf.create ~name:(name ^ ".prf") ~nregs ();
    seq_ctr = 0;
    rob = Rob.create ~size:cfg.rob_size;
    alu_iqs =
      Array.init cfg.n_alu (fun i ->
          Issue_queue.create ~name:(Printf.sprintf "%s.iq.alu%d" name i) ~size:cfg.iq_size);
    md_iq = Issue_queue.create ~name:(name ^ ".iq.md") ~size:cfg.iq_size;
    mem_iq = Issue_queue.create ~name:(name ^ ".iq.mem") ~size:cfg.iq_size;
    alu_rr = Array.init cfg.n_alu (fun i -> Stage.create ~name:(Printf.sprintf "%s.alu%d.rr" name i) ~dead:dead_u);
    alu_ex = Array.init cfg.n_alu (fun i -> Stage.create ~name:(Printf.sprintf "%s.alu%d.ex" name i) ~dead:dead_3);
    alu_wb = Array.init cfg.n_alu (fun i -> Stage.create ~name:(Printf.sprintf "%s.alu%d.wb" name i) ~dead:dead_2);
    md_rr = Stage.create ~name:(name ^ ".md.rr") ~dead:dead_u;
    md_ex = Stage.create ~name:(name ^ ".md.ex") ~dead:dead_4;
    md_wb = Stage.create ~name:(name ^ ".md.wb") ~dead:dead_2;
    mem_rr = Stage.create ~name:(name ^ ".mem.rr") ~dead:dead_u;
    byp = Bypass.create clk ~n_wires:(2 * cfg.n_alu);
    lsq = Lsq.create cfg;
    sb = Store_buffer.create ~size:cfg.sb_size;
    tlb_pending = Array.make 4 None;
    forward_q = Fifo.cf ~name:(name ^ ".fwd") clk ~capacity:8 ();
    reservation = None;
    atomic_busy = false;
    halted_f = false;
    n_instret = 0;
    commit_hook = None;
    pipe;
    c_cycles = Stats.counter stats (name ^ ".cycles");
    c_instrs = Stats.counter stats (name ^ ".instrs");
    c_mispred = Stats.counter stats (name ^ ".mispredicts");
    c_branches = Stats.counter stats (name ^ ".branches");
    c_ld_kill_flush = Stats.counter stats (name ^ ".ldKillFlushes");
    c_tso_kills = Stats.counter stats (name ^ ".tsoKills");
    c_rob_occ = Stats.counter stats (name ^ ".robOccSum");
    c_rob_full = Stats.counter stats (name ^ ".robFullCycles");
    c_iq_occ = Stats.counter stats (name ^ ".iqOccSum");
    c_iq_full = Stats.counter stats (name ^ ".iqFullCycles");
  }
  in
  (* Free and architecturally-live registers must be disjoint: a register
     the RRAT maps (committed state) that also sits on the free list would
     be overwritten by the next rename. *)
  (* The cycle counter used to be bumped inside the (always-firing) commit
     rule's body; counting at the clock edge instead lets the commit rule
     carry a [can_fire] predicate and be skipped on idle cycles. Structure
     occupancies are sampled here too: the hook runs on the main domain
     after the barrier, so untracked increments are race- and
     rollback-free, and sampling at the edge sees the settled state. *)
  Clock.on_cycle_end clk (fun () ->
      Stats.incr t.c_cycles;
      let rc = Rob.count t.rob in
      if rc > 0 then Stats.incr ~by:rc t.c_rob_occ;
      if not (Rob.can_enq t.rob) then Stats.incr t.c_rob_full;
      let occ = ref (Issue_queue.count t.md_iq + Issue_queue.count t.mem_iq) in
      Array.iter (fun q -> occ := !occ + Issue_queue.count q) t.alu_iqs;
      if !occ > 0 then Stats.incr ~by:!occ t.c_iq_occ;
      if (not (Issue_queue.can_enter t.md_iq))
         || (not (Issue_queue.can_enter t.mem_iq))
         || Array.exists (fun q -> not (Issue_queue.can_enter q)) t.alu_iqs
      then Stats.incr t.c_iq_full);
  Verif.Invariant.register ~name:"rename.partition" (fun () ->
      let live = Array.make nregs false in
      Array.iter (fun p -> if p >= 0 then live.(p) <- true) (Rename_table.rrat t.rat);
      Free_list.iter_free t.fl (fun p ->
          if p >= 0 && p < nregs && live.(p) then
            Verif.Invariant.fail "rename.partition"
              "%s: physical register %d is on the free list and live in the RRAT" name p));
  (* Raw (non-EHR) core state; the sub-modules built above registered
     their own entries. [commit_hook] and the stats counters are not
     state: hooks are re-attached by the machine builder, counters
     register through [Stats]. *)
  State.field ~name:(name ^ ".core")
    (fun () ->
      ( (t.fpc, t.epoch, t.f_alloc, t.f_mem, t.seq_ctr),
        (t.reservation, t.atomic_busy, t.halted_f, t.n_instret),
        t.fslots,
        t.fl_snaps,
        t.tlb_pending ))
    (fun ( (fpc, epoch, f_alloc, f_mem, seq_ctr),
           (reservation, atomic_busy, halted_f, n_instret),
           fslots,
           fl_snaps,
           tlb_pending ) ->
      t.fpc <- fpc;
      t.epoch <- epoch;
      t.f_alloc <- f_alloc;
      t.f_mem <- f_mem;
      t.seq_ctr <- seq_ctr;
      t.reservation <- reservation;
      t.atomic_busy <- atomic_busy;
      t.halted_f <- halted_f;
      t.n_instret <- n_instret;
      Array.blit fslots 0 t.fslots 0 (Array.length t.fslots);
      Array.blit fl_snaps 0 t.fl_snaps 0 (Array.length t.fl_snaps);
      Array.blit tlb_pending 0 t.tlb_pending 0 (Array.length t.tlb_pending));
  t

let fld (ctx : Kernel.ctx) get set v = Mut.field ctx ~get ~set v
let set_pc t pc = t.fpc <- pc
let set_commit_hook t f = t.commit_hook <- Some f

(* Observability emission. A uop whose [tid] is -1 was decoded while tracing
   was off; the [tid >= 0] check is the whole disabled-path cost. *)
let emit_stage ctx t tid code =
  if tid >= 0 then Obs.Pipe.stage ctx t.pipe tid code ~at:(Clock.now t.clk)

let emit_retire ctx t tid ~flushed =
  if tid >= 0 then Obs.Pipe.retire ctx t.pipe tid ~flushed ~at:(Clock.now t.clk)
let halted t = t.halted_f
let instret t = t.n_instret

let set_reg t r v =
  if r <> 0 then begin
    let p = Rename_table.lookup t.rat r in
    (* pre-run initialization: registers p1..p31 back x1..x31 *)
    if p >= 0 then begin
      let ctx = Kernel.make_ctx t.clk in
      Prf.write ctx t.prf p v
    end
  end

let reg t r = if r = 0 then 0L else Prf.read t.prf (Rename_table.rrat t.rat).(r)

(* ------------------------------------------------------------------ *)
(* Fetch                                                               *)
(* ------------------------------------------------------------------ *)

let step_fetch_issue ctx t =
  Kernel.guard ctx (not t.halted_f) "halted";
  let slot = t.fslots.(t.f_alloc mod 8) in
  Kernel.guard ctx (slot.fst = FFree) "fetch slots full";
  let avail = min t.cfg.width ((Mem.Cache_geom.line_bytes - Mem.Cache_geom.offset t.fpc) / 4) in
  let rec scan k =
    if k >= avail then (avail, Int64.add t.fpc (Int64.of_int (4 * avail)))
    else
      match Branch.Btb.predict t.btb (Int64.add t.fpc (Int64.of_int (4 * k))) with
      | Some tgt -> (k + 1, tgt)
      | None -> scan (k + 1)
  in
  let len, pred = scan 0 in
  Tlb.Tlb_sys.itlb_req ctx t.tlbs ~tag:(t.f_alloc mod 8) t.fpc;
  fld ctx (fun () -> slot.fst) (fun v -> slot.fst <- v) FWaitTlb;
  fld ctx (fun () -> slot.vpc) (fun v -> slot.vpc <- v) t.fpc;
  fld ctx (fun () -> slot.flen) (fun v -> slot.flen <- v) len;
  fld ctx (fun () -> slot.fpred) (fun v -> slot.fpred <- v) pred;
  fld ctx (fun () -> slot.fepoch) (fun v -> slot.fepoch <- v) t.epoch;
  if Obs.Pipe.is_active t.pipe then
    fld ctx (fun () -> slot.fcyc) (fun v -> slot.fcyc <- v) (Clock.now t.clk);
  fld ctx (fun () -> t.f_alloc) (fun v -> t.f_alloc <- v) (t.f_alloc + 1);
  fld ctx (fun () -> t.fpc) (fun v -> t.fpc <- v) pred

let step_fetch_tlb ctx t =
  let tag, res = Tlb.Tlb_sys.itlb_resp ctx t.tlbs in
  let slot = t.fslots.(tag) in
  match res with
  | Tlb.Tlb_sys.Hit pa -> fld ctx (fun () -> slot.fst) (fun v -> slot.fst <- v) (FReady pa)
  | Tlb.Tlb_sys.Fault -> failwith (t.name ^ ": instruction page fault")

(* dispatch I$ requests in fetch order even when I-TLB responses reorder *)
let step_fetch_dispatch ctx t =
  let idx = t.f_mem mod 8 in
  let slot = t.fslots.(idx) in
  match slot.fst with
  | FReady pa ->
    if slot.fepoch <> t.epoch then begin
      fld ctx (fun () -> slot.fst) (fun v -> slot.fst <- v) FFree;
      fld ctx (fun () -> t.f_mem) (fun v -> t.f_mem <- v) (t.f_mem + 1)
    end
    else begin
      Mem.L1_icache.req ctx t.ic ~tag:idx pa;
      fld ctx (fun () -> slot.fst) (fun v -> slot.fst <- v) FWaitMem;
      fld ctx (fun () -> t.f_mem) (fun v -> t.f_mem <- v) (t.f_mem + 1)
    end
  | FFree | FWaitTlb | FWaitMem -> raise (Kernel.Guard_fail "no slot ready for i$")

let step_fetch_mem ctx t =
  let tag, _pa, words = Mem.L1_icache.resp ctx t.ic in
  let slot = t.fslots.(tag) in
  if slot.fepoch = t.epoch then begin
    let n = min slot.flen (Array.length words) in
    Fifo.enq ctx t.f2d
      {
        gpc = slot.vpc;
        gwords = Array.sub words 0 n;
        gpred = (if n = slot.flen then slot.fpred else Int64.add slot.vpc (Int64.of_int (4 * n)));
        gepoch = slot.fepoch;
        gfcyc = slot.fcyc;
      }
  end;
  fld ctx (fun () -> slot.fst) (fun v -> slot.fst <- v) FFree

(* ------------------------------------------------------------------ *)
(* Decode                                                              *)
(* ------------------------------------------------------------------ *)

let redirect_front ctx t target =
  fld ctx (fun () -> t.fpc) (fun v -> t.fpc <- v) target;
  fld ctx (fun () -> t.epoch) (fun v -> t.epoch <- v) (t.epoch + 1)

let step_decode ctx t =
  let g = Fifo.deq ctx t.f2d in
  if g.gepoch = t.epoch then begin
    let n = Array.length g.gwords in
    let stop = ref false in
    for k = 0 to n - 1 do
      if not !stop then begin
        let pc = Int64.add g.gpc (Int64.of_int (4 * k)) in
        let i = Decode.decode g.gwords.(k) in
        let my_pred = if k = n - 1 then g.gpred else Int64.add pc 4L in
        let fallthrough = Int64.add pc 4L in
        let ghist = ref None in
        let pred =
          match i.op with
          | Instr.Br _ ->
            let taken, snap = Branch.Dir_pred.predict ctx t.tour pc in
            ghist := Some snap;
            if taken then Int64.add pc i.imm else fallthrough
          | Instr.Jal ->
            if i.rd = Reg_name.ra then Branch.Ras.push ctx t.ras fallthrough;
            Int64.add pc i.imm
          | Instr.Jalr ->
            if i.rd = 0 && i.rs1 = Reg_name.ra then Branch.Ras.pop ctx t.ras
            else begin
              if i.rd = Reg_name.ra then Branch.Ras.push ctx t.ras fallthrough;
              fallthrough
            end
          | _ -> fallthrough
        in
        let ras_snap = Branch.Ras.snapshot t.ras in
        (* Trace ids are born at decode: the first point where an
           instruction exists as such. The fetch stage is backdated to the
           cycle recorded at fetch-issue; wrong-path fetch groups that never
           decode stay invisible. *)
        let dtid =
          if Obs.Pipe.is_active t.pipe then begin
            let tid = Obs.Pipe.start ctx t.pipe ~pc ~at:g.gfcyc in
            Obs.Pipe.set_text t.pipe tid (Instr.to_string i);
            Obs.Pipe.stage ctx t.pipe tid Obs.Pipe.s_decode ~at:(Clock.now t.clk);
            tid
          end
          else -1
        in
        Fifo.enq ctx t.d2r
          { dpc = pc; dinstr = i; dpred = pred; dghist = !ghist; dras = ras_snap; dtid };
        if pred <> my_pred then begin
          redirect_front ctx t pred;
          stop := true
        end
      end
    done
  end

(* ------------------------------------------------------------------ *)
(* Rename                                                              *)
(* ------------------------------------------------------------------ *)

let pipe_of (i : Instr.t) =
  match Instr.exec_class i with
  | Instr.EC_alu | Instr.EC_branch -> `Alu
  | Instr.EC_muldiv -> `Md
  | Instr.EC_mem -> (
    match i.op with Instr.Fence | Instr.FenceI -> `System | _ -> `Mem)
  | Instr.EC_system -> `System

let needs_tag (i : Instr.t) = match i.op with Instr.Br _ | Instr.Jalr -> true | _ -> false

let wakeup_all ctx t preg =
  Array.iter (fun q -> Issue_queue.wakeup ctx q preg) t.alu_iqs;
  Issue_queue.wakeup ctx t.md_iq preg;
  Issue_queue.wakeup ctx t.mem_iq preg

let rename_one ctx t =
  let de = Fifo.first ctx t.d2r in
  let i = de.dinstr in
  Kernel.guard ctx (Rob.can_enq t.rob) "rob full";
  let pipe = pipe_of i in
  (* pick the least-occupied ALU IQ *)
  let target_iq =
    match pipe with
    | `Alu ->
      let best = ref t.alu_iqs.(0) in
      Array.iter (fun q -> if Issue_queue.count q < Issue_queue.count !best then best := q) t.alu_iqs;
      Some !best
    | `Md -> Some t.md_iq
    | `Mem -> Some t.mem_iq
    | `System -> None
  in
  (match target_iq with
  | Some q -> Kernel.guard ctx (Issue_queue.can_enter q) "iq full"
  | None -> ());
  let seq = t.seq_ctr in
  fld ctx (fun () -> t.seq_ctr) (fun v -> t.seq_ctr <- v) (seq + 1);
  let prs1 = if Instr.uses_rs1 i && i.rs1 <> 0 then Rename_table.lookup t.rat i.rs1 else -1 in
  let prs2 = if Instr.uses_rs2 i && i.rs2 <> 0 then Rename_table.lookup t.rat i.rs2 else -1 in
  let writes = Instr.writes_rd i in
  let prd = if writes then Free_list.alloc ctx t.fl else -1 in
  let prd_old = if writes then Rename_table.lookup t.rat i.rd else -1 in
  let tag = if needs_tag i then Spec_manager.alloc ctx t.spec else -1 in
  let mask = Spec_manager.active_mask t.spec land lnot (if tag >= 0 then 1 lsl tag else 0) in
  let lsq_slot =
    match i.op with
    | Instr.Ld _ | Instr.Lr _ -> Uop.LQ (Lsq.reserve_ld ctx t.lsq)
    | Instr.St _ | Instr.Sc _ | Instr.Amo _ -> Uop.SQ (Lsq.reserve_st ctx t.lsq)
    | _ -> Uop.LNone
  in
  let u : Uop.t =
    {
      seq;
      pc = de.dpc;
      instr = i;
      rob_idx = Rob.next_idx t.rob;
      prd;
      prs1;
      prs2;
      prd_old;
      spec_tag = tag;
      lsq = lsq_slot;
      pred_next = de.dpred;
      ras_sp = de.dras;
      ghist = de.dghist;
      spec_mask = mask;
      killed = false;
      completed = false;
      ld_kill = false;
      fault = false;
      mmio = false;
      translated = false;
      paddr = 0L;
      st_data = 0L;
      result = 0L;
      actual_next = Int64.add de.dpc 4L;
      tid = de.dtid;
    }
  in
  ignore (Rob.enq ctx t.rob u);
  (match lsq_slot with
  | Uop.LQ idx -> Lsq.fill_ld ctx t.lsq idx u
  | Uop.SQ idx -> Lsq.fill_st ctx t.lsq idx u
  | Uop.LNone -> ());
  if writes then begin
    Rename_table.set ctx t.rat i.rd prd;
    Prf.alloc_clear ctx t.prf prd
  end;
  if tag >= 0 then begin
    Rename_table.snapshot ctx t.rat ~tag;
    Mut.set_arr ctx t.fl_snaps tag (Free_list.snapshot t.fl)
  end;
  (match target_iq with
  | Some q ->
    Issue_queue.enter ctx q u ~rdy1:(Prf.sb_ready t.prf prs1) ~rdy2:(Prf.sb_ready t.prf prs2)
  | None -> ());
  (match i.op with
  | Instr.Fence | Instr.FenceI -> Lsq.add_fence ctx t.lsq u
  | _ -> ());
  emit_stage ctx t u.Uop.tid Obs.Pipe.s_rename;
  if target_iq <> None then emit_stage ctx t u.Uop.tid Obs.Pipe.s_dispatch;
  ignore (Fifo.deq ctx t.d2r)

let step_rename ctx t =
  for _ = 1 to t.cfg.width do
    ignore (Kernel.attempt ctx (fun ctx -> rename_one ctx t))
  done

(* ------------------------------------------------------------------ *)
(* Speculation events                                                  *)
(* ------------------------------------------------------------------ *)

let squash_everything ctx t =
  Array.iter (fun q -> Issue_queue.squash ctx q) t.alu_iqs;
  Issue_queue.squash ctx t.md_iq;
  Issue_queue.squash ctx t.mem_iq;
  Array.iter (fun s -> Stage.squash ctx s) t.alu_rr;
  Array.iter (fun s -> Stage.squash ctx s) t.alu_ex;
  Array.iter (fun s -> Stage.squash ctx s) t.alu_wb;
  Stage.squash ctx t.md_rr;
  Stage.squash ctx t.md_ex;
  Stage.squash ctx t.md_wb;
  Stage.squash ctx t.mem_rr;
  Lsq.kill_suffix ctx t.lsq

let do_correct ctx t tag =
  Spec_manager.correct ctx t.spec tag;
  let bit = 1 lsl tag in
  Rob.iter_live t.rob (fun u ->
      if u.Uop.spec_mask land bit <> 0 then Uop.mk_set_mask ctx u (u.Uop.spec_mask land lnot bit))

let do_mispredict ctx t (u : Uop.t) actual =
  Stats.incr ~ctx t.c_mispred;
  (match u.ghist with
  | Some snap -> Branch.Dir_pred.restore ctx t.tour ~snap ~taken:(actual <> Int64.add u.pc 4L)
  | None -> ());
  Branch.Ras.restore ctx t.ras u.ras_sp;
  redirect_front ctx t actual;
  Fifo.clear ctx t.d2r;
  let dead = Spec_manager.wrong ctx t.spec u.spec_tag in
  let dead_mask = Spec_manager.mask_of dead in
  Rob.iter_live t.rob (fun v ->
      if v.Uop.spec_mask land dead_mask <> 0 then begin
        Uop.mk_set_killed ctx v true;
        emit_retire ctx t v.Uop.tid ~flushed:true
      end);
  ignore (Rob.truncate_after ctx t.rob u.rob_idx);
  squash_everything ctx t;
  Rename_table.restore ctx t.rat ~tag:u.spec_tag;
  Free_list.restore ctx t.fl t.fl_snaps.(u.spec_tag)

(* commit-time flush: load-speculation kill (or any deferred event) *)
let commit_flush ctx t (u : Uop.t) =
  Stats.incr ~ctx t.c_ld_kill_flush;
  redirect_front ctx t u.pc;
  Fifo.clear ctx t.d2r;
  (* every in-flight uop (including the head itself) is squashed and will
     re-enter the pipeline under a fresh trace id *)
  Rob.iter_live t.rob (fun v -> emit_retire ctx t v.Uop.tid ~flushed:true);
  Rob.flush ctx t.rob;
  squash_everything ctx t;
  Lsq.flush ctx t.lsq;
  Spec_manager.reset ctx t.spec;
  Rename_table.restore_from_rrat ctx t.rat;
  let live = Rename_table.rrat t.rat in
  Free_list.reset ctx t.fl ~live;
  Prf.reset_presence ctx t.prf ~live

(* ------------------------------------------------------------------ *)
(* ALU pipelines                                                       *)
(* ------------------------------------------------------------------ *)

let step_issue_alu ctx t i =
  let q = t.alu_iqs.(i) in
  Kernel.guard ctx (Stage.can_put ctx t.alu_rr.(i)) "rr busy";
  let u = Issue_queue.issue ctx q in
  emit_stage ctx t u.Uop.tid Obs.Pipe.s_issue;
  Stage.put ctx t.alu_rr.(i) u;
  (* single-cycle result: optimistic scoreboard wakeup at issue *)
  if u.Uop.prd >= 0 then begin
    Prf.set_sb ctx t.prf u.Uop.prd;
    wakeup_all ctx t u.Uop.prd
  end

let read_operand ctx t preg =
  if preg < 0 then Some 0L
  else if Prf.present t.prf preg then Some (Prf.read t.prf preg)
  else if t.cfg.bypass then Bypass.get ctx t.byp preg
  else None

let operands ctx t (u : Uop.t) =
  let v1 = read_operand ctx t u.prs1 in
  let v2 =
    match u.instr.op with
    | Instr.OpA { imm = true; _ } -> Some u.instr.imm
    | _ -> read_operand ctx t u.prs2
  in
  match v1, v2 with
  | Some a, Some b -> (a, b)
  | _ -> raise (Kernel.Guard_fail "operand not ready")

let step_regread_alu ctx t i =
  let u = Stage.peek ctx t.alu_rr.(i) in
  Kernel.guard ctx (Stage.can_put ctx t.alu_ex.(i)) "ex busy";
  let v1, v2 = operands ctx t u in
  ignore (Stage.take ctx t.alu_rr.(i));
  Stage.put ctx t.alu_ex.(i) (u, v1, v2)

let exec_alu (u : Uop.t) v1 v2 =
  let pc = u.pc in
  let fallthrough = Int64.add pc 4L in
  match u.instr.op with
  | Instr.Lui -> (u.instr.imm, fallthrough)
  | Instr.Auipc -> (Int64.add pc u.instr.imm, fallthrough)
  | Instr.OpA { alu; word; _ } -> (Exec_unit.alu alu ~word v1 v2, fallthrough)
  | Instr.Jal -> (fallthrough, Int64.add pc u.instr.imm)
  | Instr.Jalr -> (fallthrough, Int64.logand (Int64.add v1 u.instr.imm) (Int64.lognot 1L))
  | Instr.Br c -> (0L, if Exec_unit.branch_taken c v1 v2 then Int64.add pc u.instr.imm else fallthrough)
  | _ -> assert false

let step_exec_alu ctx t i =
  let u, v1, v2 = Stage.peek ctx t.alu_ex.(i) in
  Kernel.guard ctx (Stage.can_put ctx t.alu_wb.(i)) "wb busy";
  let result, actual = exec_alu u v1 v2 in
  ignore (Stage.take ctx t.alu_ex.(i));
  emit_stage ctx t u.Uop.tid Obs.Pipe.s_exec;
  Uop.mk_set_result ctx u result;
  Uop.mk_set_actual_next ctx u actual;
  if u.Uop.prd >= 0 then Bypass.set ctx t.byp (2 * i) u.Uop.prd result;
  Stage.put ctx t.alu_wb.(i) (u, result);
  if Instr.is_branch u.instr then begin
    Stats.incr ~ctx t.c_branches;
    let taken = actual <> Int64.add u.pc 4L in
    (match u.ghist with
    | Some snap -> Branch.Dir_pred.update ctx t.tour ~pc:u.pc ~taken ~snap
    | None -> ());
    if taken || u.pred_next <> actual then Branch.Btb.update ctx t.btb ~pc:u.pc ~target:actual ~taken;
    if u.spec_tag >= 0 then
      if actual <> u.pred_next then do_mispredict ctx t u actual else do_correct ctx t u.spec_tag
  end

let step_wb_alu ctx t i =
  let u, result = Stage.take ctx t.alu_wb.(i) in
  emit_stage ctx t u.Uop.tid Obs.Pipe.s_writeback;
  if u.Uop.prd >= 0 then begin
    Prf.write ctx t.prf u.Uop.prd result;
    Bypass.set ctx t.byp ((2 * i) + 1) u.Uop.prd result
  end;
  Uop.mk_set_completed ctx u true

(* ------------------------------------------------------------------ *)
(* MULDIV pipeline                                                     *)
(* ------------------------------------------------------------------ *)

let step_issue_md ctx t =
  Kernel.guard ctx (Stage.can_put ctx t.md_rr) "md rr busy";
  let u = Issue_queue.issue ctx t.md_iq in
  emit_stage ctx t u.Uop.tid Obs.Pipe.s_issue;
  Stage.put ctx t.md_rr u

let step_regread_md ctx t =
  let u = Stage.peek ctx t.md_rr in
  Kernel.guard ctx (Stage.can_put ctx t.md_ex) "md ex busy";
  let v1, v2 = operands ctx t u in
  ignore (Stage.take ctx t.md_rr);
  Stage.put ctx t.md_ex (u, v1, v2, Clock.now t.clk + t.cfg.muldiv_latency)

let step_exec_md ctx t =
  let u, v1, v2, ready = Stage.peek ctx t.md_ex in
  Kernel.guard ctx (Clock.now t.clk >= ready) "md busy";
  Kernel.guard ctx (Stage.can_put ctx t.md_wb) "md wb busy";
  let result =
    match u.Uop.instr.op with
    | Instr.MulDiv { op; word } -> Exec_unit.muldiv op ~word v1 v2
    | _ -> assert false
  in
  ignore (Stage.take ctx t.md_ex);
  emit_stage ctx t u.Uop.tid Obs.Pipe.s_exec;
  Uop.mk_set_result ctx u result;
  Stage.put ctx t.md_wb (u, result);
  if u.Uop.prd >= 0 then begin
    Prf.set_sb ctx t.prf u.Uop.prd;
    wakeup_all ctx t u.Uop.prd
  end

let step_wb_md ctx t =
  let u, result = Stage.take ctx t.md_wb in
  emit_stage ctx t u.Uop.tid Obs.Pipe.s_writeback;
  if u.Uop.prd >= 0 then Prf.write ctx t.prf u.Uop.prd result;
  Uop.mk_set_completed ctx u true

(* ------------------------------------------------------------------ *)
(* Memory pipeline                                                     *)
(* ------------------------------------------------------------------ *)

let step_issue_mem ctx t =
  Kernel.guard ctx (Stage.can_put ctx t.mem_rr) "mem rr busy";
  let u = Issue_queue.issue ctx t.mem_iq in
  emit_stage ctx t u.Uop.tid Obs.Pipe.s_issue;
  Stage.put ctx t.mem_rr u

let step_regread_mem ctx t =
  let u = Stage.peek ctx t.mem_rr in
  let free = ref (-1) in
  Array.iteri (fun k s -> if s = None && !free < 0 then free := k) t.tlb_pending;
  Kernel.guard ctx (!free >= 0) "tlb pending full";
  let v1, v2 = operands ctx t u in
  let va = Int64.add v1 u.Uop.instr.imm in
  Tlb.Tlb_sys.dtlb_req ctx t.tlbs ~tag:!free va;
  Uop.mk_set_st_data ctx u v2;
  Mut.set_arr ctx t.tlb_pending !free (Some u);
  emit_stage ctx t u.Uop.tid Obs.Pipe.s_exec;
  ignore (Stage.take ctx t.mem_rr)

let step_update_lsq ctx t =
  let tag, res = Tlb.Tlb_sys.dtlb_resp ctx t.tlbs in
  let u = match t.tlb_pending.(tag) with Some u -> u | None -> failwith "orphan dtlb resp" in
  Mut.set_arr ctx t.tlb_pending tag None;
  if not u.Uop.killed then begin
    emit_stage ctx t u.Uop.tid Obs.Pipe.s_mem;
    match res with
    | Tlb.Tlb_sys.Fault ->
      Uop.mk_set_fault ctx u true;
      Uop.mk_set_completed ctx u true
    | Tlb.Tlb_sys.Hit pa ->
      Uop.mk_set_paddr ctx u pa;
      Uop.mk_set_translated ctx u true;
      if Addr_map.is_mmio pa then Uop.mk_set_mmio ctx u true
      else begin
        match u.Uop.instr.op with
        | Instr.Ld _ -> Lsq.update_ld ctx t.lsq u
        | Instr.Lr _ -> Lsq.update_ld ctx t.lsq u
        | Instr.St _ ->
          Lsq.update_st ctx t.lsq u;
          Uop.mk_set_completed ctx u true
        | Instr.Sc _ | Instr.Amo _ -> Lsq.update_st ctx t.lsq u
        | _ -> assert false
      end
  end

let ld_params (u : Uop.t) =
  match u.instr.op with
  | Instr.Ld { width; unsigned } -> (Instr.bytes_of_width width, unsigned)
  | Instr.Lr width -> (Instr.bytes_of_width width, false)
  | _ -> (8, false)

let step_issue_ld ctx t =
  let idx, u = Lsq.get_issue_ld ctx t.lsq in
  let bytes, unsigned = ld_params u in
  let sb_search =
    if t.cfg.mem_model = Config.WMM then Store_buffer.search t.sb ~addr:u.paddr ~bytes
    else Store_buffer.NoMatch
  in
  match Lsq.issue_ld ctx t.lsq idx u ~sb_search with
  | Lsq.Forward (v, tag) -> Fifo.enq ctx t.forward_q (tag, v)
  | Lsq.ToCache tag ->
    Mem.L1_dcache.req ctx t.dc (Mem.L1_dcache.Ld { tag; addr = u.paddr; bytes; unsigned })
  | Lsq.Stalled -> ()

let handle_ld_resp ctx t tag v =
  match Lsq.resp_ld ctx t.lsq tag v with
  | `WrongPath -> ()
  | `Ok u ->
    emit_stage ctx t u.Uop.tid Obs.Pipe.s_writeback;
    if u.Uop.prd >= 0 then begin
      Prf.write ctx t.prf u.Uop.prd v;
      wakeup_all ctx t u.Uop.prd
    end;
    Uop.mk_set_completed ctx u true

let step_resp_ld_cache ctx t =
  let tag, v = Mem.L1_dcache.resp_ld ctx t.dc in
  handle_ld_resp ctx t tag v

let step_resp_ld_fwd ctx t =
  let tag, v = Fifo.deq ctx t.forward_q in
  handle_ld_resp ctx t tag v

let store_bytes (u : Uop.t) =
  match u.instr.op with
  | Instr.St w | Instr.Sc w -> Instr.bytes_of_width w
  | Instr.Amo { width; _ } -> Instr.bytes_of_width width
  | _ -> 8

let step_st_prefetch ctx t =
  match Lsq.prefetch_candidate t.lsq with
  | Some (idx, u) ->
    Mem.L1_dcache.req ctx t.dc (Mem.L1_dcache.Pf { line = Mem.Cache_geom.line_addr u.paddr });
    Lsq.mark_prefetched ctx t.lsq idx
  | None -> raise (Kernel.Guard_fail "nothing to prefetch")

(* TSO: issue the oldest committed store to the cache; dequeue on hit *)
let step_issue_st_tso ctx t =
  Kernel.guard ctx (not (Lsq.sq_head_issued t.lsq)) "store already issued";
  match Lsq.committed_store_head t.lsq with
  | Some (idx, u) ->
    Mem.L1_dcache.req ctx t.dc (Mem.L1_dcache.St { tag = idx; line = Mem.Cache_geom.line_addr u.paddr });
    Lsq.mark_store_issued ctx t.lsq idx
  | None -> raise (Kernel.Guard_fail "no committed store")

let line_write_of (u : Uop.t) =
  let bytes = store_bytes u in
  let line = Mem.Cache_geom.line_addr u.paddr in
  let off = Mem.Cache_geom.offset u.paddr in
  let data = Bytes.make Mem.Cache_geom.line_bytes '\000' in
  for k = 0 to bytes - 1 do
    Bytes.set data (off + k) (Char.chr (Int64.to_int (Int64.shift_right_logical u.st_data (8 * k)) land 0xFF))
  done;
  (line, data, Int64.shift_left (Int64.sub (Int64.shift_left 1L bytes) 1L) off)

let step_resp_st_tso ctx t =
  let tag = Mem.L1_dcache.resp_st ctx t.dc in
  match Lsq.committed_store_head t.lsq with
  | Some (idx, u) when idx = tag ->
    let line, data, mask = line_write_of u in
    Mem.L1_dcache.write_data ctx t.dc ~line ~data ~mask;
    Lsq.deq_st ctx t.lsq
  | _ -> failwith "tso: store response does not match SQ head"

(* WMM: committed stores drain into the store buffer *)
let step_deq_st_wmm ctx t =
  match Lsq.committed_store_head t.lsq with
  | Some (_, u) ->
    Kernel.guard ctx (Store_buffer.can_enq t.sb ~addr:u.paddr) "sb full";
    Store_buffer.enq ctx t.sb ~addr:u.paddr ~bytes:(store_bytes u) u.st_data;
    Lsq.deq_st ctx t.lsq
  | None -> raise (Kernel.Guard_fail "no committed store")

let step_sb_issue ctx t =
  let idx, line = Store_buffer.issue ctx t.sb in
  Mem.L1_dcache.req ctx t.dc (Mem.L1_dcache.St { tag = idx; line })

let step_resp_st_wmm ctx t =
  let tag = Mem.L1_dcache.resp_st ctx t.dc in
  let line, data, mask = Store_buffer.deq ctx t.sb tag in
  Mem.L1_dcache.write_data ctx t.dc ~line ~data ~mask;
  Lsq.wakeup_by_sb_deq ctx t.lsq tag

(* ------------------------------------------------------------------ *)
(* Commit                                                              *)
(* ------------------------------------------------------------------ *)

let csr_read t addr =
  if addr = Csr.mhartid then Int64.of_int t.hart_id
  else if addr = Csr.satp then Tlb.Tlb_sys.satp t.tlbs
  else if addr = Csr.cycle || addr = Csr.time then Int64.of_int (Clock.now t.clk)
  else if addr = Csr.instret then Int64.of_int t.n_instret
  else 0L

let cosim_check _ctx t (u : Uop.t) =
  match t.cosim with
  | None -> ()
  | Some g -> (
    let gpc = Golden.pc g ~hart:t.hart_id in
    if gpc <> u.pc then
      raise
        (Cosim_mismatch
           (Printf.sprintf "%s: pc mismatch: core %Lx golden %Lx (%s)" t.name u.pc gpc
              (Instr.to_string u.instr)));
    match Golden.step g ~hart:t.hart_id with
    | None -> raise (Cosim_mismatch (t.name ^ ": golden halted early"))
    | Some c -> (
      match c.Golden.rd_write with
      | Some (rd, gv) -> (
        match u.instr.op with
        | Instr.Csr _ ->
          (* cycle/time values legitimately differ: adopt the core's *)
          Golden.set_reg g ~hart:t.hart_id rd u.result
        | _ ->
          if gv <> u.result then
            raise
              (Cosim_mismatch
                 (Printf.sprintf "%s: value mismatch at %Lx (%s): core %Lx golden %Lx" t.name u.pc
                    (Instr.to_string u.instr) u.result gv)))
      | None -> ()))

let commit_common ctx t (u : Uop.t) =
  (* the uop's LSQ slot is released first (fallible guards live there); the
     golden-model step comes last so an aborted attempt never desyncs it *)
  (match u.instr.op with
  | Instr.Ld _ when not u.mmio -> Lsq.deq_ld ctx t.lsq
  | Instr.St _ when not u.mmio -> Lsq.set_at_commit ctx t.lsq u
  | Instr.Ld _ -> Lsq.deq_ld ctx t.lsq
  | Instr.St _ -> Lsq.deq_st ctx t.lsq
  | Instr.Lr _ -> Lsq.deq_ld ctx t.lsq
  | Instr.Sc _ | Instr.Amo _ -> Lsq.deq_st ctx t.lsq
  | _ -> ());
  if Instr.writes_rd u.instr then begin
    if u.prd_old >= 0 then Free_list.free ctx t.fl u.prd_old;
    Rename_table.rrat_set ctx t.rat u.instr.rd u.prd
  end;
  fld ctx (fun () -> t.n_instret) (fun v -> t.n_instret <- v) (t.n_instret + 1);
  Stats.incr ~ctx t.c_instrs;
  Rob.deq ctx t.rob;
  emit_retire ctx t u.tid ~flushed:false;
  (match t.commit_hook with Some f -> f ctx u | None -> ());
  cosim_check ctx t u

let atomic_f t (u : Uop.t) =
  match u.instr.op with
  | Instr.Lr _ -> fun old -> (None, old)
  | Instr.Sc _ ->
    fun _old ->
      if t.reservation = Some (Mem.Cache_geom.line_addr u.paddr) then (Some u.st_data, 0L)
      else (None, 1L)
  | Instr.Amo { op; width } ->
    fun old -> (Some (Exec_unit.amo op width ~old ~src:u.st_data), old)
  | _ -> assert false

let sb_empty t = Store_buffer.is_empty t.sb
let quiesced t = sb_empty t && Lsq.sq_quiesced t.lsq

let commit_one ctx t =
  Kernel.guard ctx (not t.halted_f) "halted";
  match Rob.head t.rob with
  | None -> raise (Kernel.Guard_fail "rob empty")
  | Some u ->
    if u.fault then failwith (Printf.sprintf "%s: page fault at pc=%Lx" t.name u.pc);
    if u.ld_kill then begin
      commit_flush ctx t u;
      `Stop
    end
    else begin
      try
      (match u.instr.op with
      | Instr.Ld _ when not u.mmio ->
        Kernel.guard ctx u.completed "load not done";
        commit_common ctx t u
      | Instr.St _ when not u.mmio ->
        Kernel.guard ctx u.completed "store not translated";
        commit_common ctx t u
      | Instr.Ld _ (* mmio *) ->
        Kernel.guard ctx u.translated "mmio load not translated";
        Kernel.guard ctx (Lsq.no_older_stores t.lsq u.seq && sb_empty t) "mmio load: stores pending";
        let v = Mmio.load t.mmio ~hart:t.hart_id u.paddr in
        if u.prd >= 0 then begin
          Prf.write ctx t.prf u.prd v;
          wakeup_all ctx t u.prd
        end;
        Uop.mk_set_result ctx u v;
        commit_common ctx t u
      | Instr.St _ (* mmio *) ->
        Kernel.guard ctx u.translated "mmio store not translated";
        Kernel.guard ctx (Lsq.sq_head_is t.lsq u && sb_empty t) "mmio store: stores pending";
        ignore (Mmio.store t.mmio ~hart:t.hart_id u.paddr u.st_data);
        if u.paddr = Addr_map.mmio_exit then fld ctx (fun () -> t.halted_f) (fun v -> t.halted_f <- v) true;
        commit_common ctx t u
      | Instr.Lr _ | Instr.Sc _ | Instr.Amo _ ->
        if not u.completed then begin
          Kernel.guard ctx u.translated "atomic not translated";
          Kernel.guard ctx (not u.mmio) "mmio atomics unsupported";
          (match u.instr.op with
          | Instr.Lr _ ->
            Kernel.guard ctx (Lsq.no_older_stores t.lsq u.seq && sb_empty t) "lr: stores pending"
          | _ -> Kernel.guard ctx (Lsq.sq_head_is t.lsq u && sb_empty t) "atomic: stores pending");
          Kernel.guard ctx (not t.atomic_busy) "atomic in flight";
          Kernel.guard ctx (Mem.L1_dcache.can_req ctx t.dc) "d$ req full";
          let bytes =
            match u.instr.op with
            | Instr.Lr w | Instr.Sc w -> Instr.bytes_of_width w
            | Instr.Amo { width; _ } -> Instr.bytes_of_width width
            | _ -> assert false
          in
          Mem.L1_dcache.req ctx t.dc (Mem.L1_dcache.At { tag = 0; addr = u.paddr; bytes; f = atomic_f t u });
          (match u.instr.op with
          | Instr.Lr _ ->
            fld ctx (fun () -> t.reservation) (fun v -> t.reservation <- v)
              (Some (Mem.Cache_geom.line_addr u.paddr))
          | Instr.Sc _ -> ()
          | _ -> ());
          fld ctx (fun () -> t.atomic_busy) (fun v -> t.atomic_busy <- v) true;
          (* issued: the effects must commit, but the group stops here *)
          raise Exit
        end
        else begin
          commit_common ctx t u;
          (match u.instr.op with
          | Instr.Sc _ -> fld ctx (fun () -> t.reservation) (fun v -> t.reservation <- v) None
          | _ -> ())
        end
      | Instr.Fence | Instr.FenceI ->
        Kernel.guard ctx (Lsq.no_older_stores t.lsq u.seq && sb_empty t) "fence: stores pending";
        Lsq.remove_fence ctx t.lsq u;
        Uop.mk_set_completed ctx u true;
        commit_common ctx t u
      | Instr.Csr { op; imm } ->
        let addr = Int64.to_int u.instr.imm in
        let old = csr_read t addr in
        ignore (op, imm);
        if u.prd >= 0 then begin
          Prf.write ctx t.prf u.prd old;
          wakeup_all ctx t u.prd
        end;
        Uop.mk_set_result ctx u old;
        Uop.mk_set_completed ctx u true;
        commit_common ctx t u
      | Instr.Ecall ->
        let a7 = Prf.read t.prf (Rename_table.rrat t.rat).(Reg_name.a7) in
        let a0 = Prf.read t.prf (Rename_table.rrat t.rat).(Reg_name.a0) in
        if a7 = 93L then begin
          ignore (Mmio.store t.mmio ~hart:t.hart_id Addr_map.mmio_exit a0);
          fld ctx (fun () -> t.halted_f) (fun v -> t.halted_f <- v) true
        end
        else failwith (t.name ^ ": unknown ecall");
        Uop.mk_set_completed ctx u true;
        commit_common ctx t u
      | Instr.Ebreak | Instr.Illegal _ -> failwith (t.name ^ ": illegal instruction committed")
      | _ ->
        (* ALU / branch / muldiv *)
        Kernel.guard ctx u.completed "not done";
        commit_common ctx t u);
      `Ok
      with Exit -> `Stop
    end

let step_commit ctx t =
  let stop = ref false in
  for _ = 1 to t.cfg.width do
    if not !stop then
      match Kernel.attempt ctx (fun ctx -> commit_one ctx t) with
      | Some `Ok -> ()
      | Some `Stop | None -> stop := true
  done

let step_resp_at ctx t =
  let _tag, result = Mem.L1_dcache.resp_at ctx t.dc in
  match Rob.head t.rob with
  | Some u when t.atomic_busy ->
    let result =
      match u.instr.op with
      | Instr.Lr Instr.W | Instr.Amo { width = Instr.W; _ } -> Xlen.sext ~bits:32 result
      | _ -> result
    in
    emit_stage ctx t u.tid Obs.Pipe.s_writeback;
    if u.prd >= 0 then begin
      Prf.write ctx t.prf u.prd result;
      wakeup_all ctx t u.prd
    end;
    Uop.mk_set_result ctx u result;
    Uop.mk_set_completed ctx u true;
    fld ctx (fun () -> t.atomic_busy) (fun v -> t.atomic_busy <- v) false
  | _ -> failwith (t.name ^ ": orphan atomic response")

(* ------------------------------------------------------------------ *)
(* Rule list                                                           *)
(* ------------------------------------------------------------------ *)

(* Attempt-wrapped rule bodies swallow their own guard failures, so these
   rules fire vacuously even with nothing to do — [vacuous] tells the
   fast-path scheduler to account a skip as a (vacuous) firing. [can_fire]
   and [watches] follow the one-sided contract documented in {!Cmd.Rule}:
   the predicate may be conservatively true, but must never be false when
   the body could commit an effect. *)
let mk ?can_fire ?watches ?fp ?total name f =
  Rule.make ?can_fire ?watches ?fp ?total ~vacuous:true name
    (fun ctx -> ignore (Kernel.attempt ctx (fun ctx -> f ctx)))

let rules ?(schedule = `Aggressive) t =
  Partition.scoped (t.hart_id + 1) @@ fun () ->
  (* eviction hook: TSO load kills + LR/SC reservation *)
  Mem.L1_dcache.set_evict_hook t.dc (fun ctx line ->
      (match t.reservation with
      | Some l when l = line -> fld ctx (fun () -> t.reservation) (fun v -> t.reservation <- v) None
      | _ -> ());
      if t.cfg.mem_model = Config.TSO then begin
        Stats.incr ~ctx t.c_tso_kills;
        Lsq.cache_evict ctx t.lsq line
      end);
  let n = t.name in
  (* predicate/watch helpers *)
  let stage s = (Some (fun () -> Stage.occupied s), Some [ Stage.signal s ]) in
  let fifo q = (Some (fun () -> Fifo.peek_size q > 0), Some [ Fifo.signal q ]) in
  let mk_stage s ~fp name f = let can_fire, watches = stage s in mk ?can_fire ?watches ~fp name f in
  let mk_fifo q ~fp name f = let can_fire, watches = fifo q in mk ?can_fire ?watches ~fp name f in
  (* conflict footprints ([Rule.make ~fp]): only EHR-backed state counts —
     cf queues, stage slots, bypass wires, and the cache/TLB interface
     queues. Everything else in the core is plain [Mut] state, invisible to
     the port-order matrix. *)
  let squash_fps =
    Array.to_list (Array.map Stage.fp_squash t.alu_rr)
    @ Array.to_list (Array.map Stage.fp_squash t.alu_ex)
    @ Array.to_list (Array.map Stage.fp_squash t.alu_wb)
    @ [ Stage.fp_squash t.md_rr; Stage.fp_squash t.md_ex; Stage.fp_squash t.md_wb;
        Stage.fp_squash t.mem_rr ]
  in
  (* both flush paths (mispredict, commit-time load kill) clear d2r and
     squash every stage slot *)
  let flush_fps = Fifo.fp_clear t.d2r :: squash_fps in
  let byp_read = if t.cfg.bypass then Bypass.fp_get_all t.byp else [] in
  let commit =
    (* [commit_one] guards on [not halted] and a ROB head; ROB occupancy is
       plain mutable state, so the rule is watchless (predicate re-checked
       every cycle). *)
    Rule.make ~vacuous:true
      ~can_fire:(fun () -> (not t.halted_f) && Rob.count t.rob > 0)
      ~fp:(Mem.L1_dcache.fp_req t.dc @ flush_fps)
      (n ^ ".commit")
      (fun ctx -> step_commit ctx t)
  in
  let resp_at =
    mk
      ~can_fire:(fun () -> Mem.L1_dcache.resp_at_ready t.dc)
      ~watches:[ Mem.L1_dcache.resp_at_signal t.dc ]
      ~fp:(Mem.L1_dcache.fp_resp_at t.dc)
      (n ^ ".respAt")
      (fun ctx -> step_resp_at ctx t)
  in
  let wb_alu =
    List.init t.cfg.n_alu (fun i ->
        mk_stage t.alu_wb.(i)
          ~fp:[ Stage.fp_take t.alu_wb.(i); Bypass.fp_set t.byp ((2 * i) + 1) ]
          (Printf.sprintf "%s.alu%d.wb" n i)
          (fun ctx -> step_wb_alu ctx t i))
  in
  let ex_alu =
    List.init t.cfg.n_alu (fun i ->
        mk_stage t.alu_ex.(i)
          ~fp:
            ([ Stage.fp_can_put t.alu_wb.(i);
               Stage.fp_take t.alu_ex.(i); Bypass.fp_set t.byp (2 * i);
               Stage.fp_put t.alu_wb.(i) ]
            @ flush_fps)
          (Printf.sprintf "%s.alu%d.ex" n i)
          (fun ctx -> step_exec_alu ctx t i))
  in
  let md =
    [
      mk_stage t.md_wb ~fp:[ Stage.fp_take t.md_wb ] (n ^ ".md.wb") (fun ctx -> step_wb_md ctx t);
      (* the multiplier's completion-time guard is ignored by the predicate:
         an occupied-but-not-ready stage attempts and guard-fails, as before *)
      mk_stage t.md_ex
        ~fp:
          [ Stage.fp_can_put t.md_wb; Stage.fp_take t.md_ex;
            Stage.fp_put t.md_wb ]
        (n ^ ".md.ex")
        (fun ctx -> step_exec_md ctx t);
    ]
  in
  let resp_ld =
    [
      mk
        ~can_fire:(fun () -> Mem.L1_dcache.resp_ld_ready t.dc)
        ~watches:[ Mem.L1_dcache.resp_ld_signal t.dc ]
        ~fp:(Mem.L1_dcache.fp_resp_ld t.dc)
        (n ^ ".respLd")
        (fun ctx -> step_resp_ld_cache ctx t);
      mk_fifo t.forward_q ~fp:[ Fifo.fp_deq t.forward_q ] (n ^ ".respLdFwd")
        (fun ctx -> step_resp_ld_fwd ctx t);
    ]
  in
  let rr_alu =
    List.init t.cfg.n_alu (fun i ->
        mk_stage t.alu_rr.(i)
          ~fp:
            ([ Stage.fp_can_put t.alu_ex.(i) ]
            @ byp_read
            @ [ Stage.fp_take t.alu_rr.(i); Stage.fp_put t.alu_ex.(i) ])
          (Printf.sprintf "%s.alu%d.rr" n i)
          (fun ctx -> step_regread_alu ctx t i))
  in
  let rr_md =
    [
      mk_stage t.md_rr
        ~fp:
          ([ Stage.fp_can_put t.md_ex ]
          @ byp_read
          @ [ Stage.fp_take t.md_rr; Stage.fp_put t.md_ex ])
        (n ^ ".md.rr")
        (fun ctx -> step_regread_md ctx t);
    ]
  in
  let rr_mem =
    [
      mk_stage t.mem_rr
        ~fp:
          (byp_read @ Tlb.Tlb_sys.fp_dtlb_req t.tlbs
          @ [ Stage.fp_take t.mem_rr ])
        (n ^ ".mem.rr")
        (fun ctx -> step_regread_mem ctx t);
    ]
  in
  let update_lsq =
    [
      mk
        ~can_fire:(fun () -> Tlb.Tlb_sys.dtlb_resp_ready t.tlbs)
        ~watches:[ Tlb.Tlb_sys.dtlb_resp_signal t.tlbs ]
        ~fp:(Tlb.Tlb_sys.fp_dtlb_resp t.tlbs)
        (n ^ ".updateLsq")
        (fun ctx -> step_update_lsq ctx t);
    ]
  in
  let lsu =
    (* LSQ/store-buffer occupancy is plain mutable state: these predicates
       are watchless scans, mirroring the guards of the corresponding step *)
    [
      mk
        ~can_fire:(fun () -> Lsq.has_issue_ld t.lsq)
        ~fp:(Fifo.fp_enq t.forward_q :: Mem.L1_dcache.fp_req t.dc)
        (n ^ ".issueLd")
        (fun ctx -> step_issue_ld ctx t);
    ]
    @ (if t.cfg.st_prefetch then
         [
           mk
             ~can_fire:(fun () -> Lsq.prefetch_candidate t.lsq <> None)
             ~fp:(Mem.L1_dcache.fp_req t.dc)
             (n ^ ".stPrefetch")
             (fun ctx -> step_st_prefetch ctx t);
         ]
       else [])
    @ (match t.cfg.mem_model with
      | Config.TSO ->
        [
          mk
            ~can_fire:(fun () -> Mem.L1_dcache.resp_st_ready t.dc)
            ~watches:[ Mem.L1_dcache.resp_st_signal t.dc ]
            ~fp:(Mem.L1_dcache.fp_resp_st t.dc)
            (n ^ ".respSt")
            (fun ctx -> step_resp_st_tso ctx t);
          mk
            ~can_fire:(fun () ->
              (not (Lsq.sq_head_issued t.lsq)) && Lsq.committed_store_head t.lsq <> None)
            ~fp:(Mem.L1_dcache.fp_req t.dc)
            (n ^ ".issueSt")
            (fun ctx -> step_issue_st_tso ctx t);
        ]
      | Config.WMM ->
        [
          mk
            ~can_fire:(fun () -> Mem.L1_dcache.resp_st_ready t.dc)
            ~watches:[ Mem.L1_dcache.resp_st_signal t.dc ]
            ~fp:(Mem.L1_dcache.fp_resp_st t.dc)
            (n ^ ".respSt")
            (fun ctx -> step_resp_st_wmm ctx t);
          mk
            ~can_fire:(fun () -> Store_buffer.has_unissued t.sb)
            ~fp:(Mem.L1_dcache.fp_req t.dc) (n ^ ".sbIssue")
            (fun ctx -> step_sb_issue ctx t);
          (* SB/LSQ bookkeeping only — touches no EHR-backed state at all *)
          mk
            ~can_fire:(fun () -> Lsq.committed_store_head t.lsq <> None)
            ~fp:[] (n ^ ".deqSt")
            (fun ctx -> step_deq_st_wmm ctx t);
        ])
  in
  let issue =
    List.init t.cfg.n_alu (fun i ->
        mk
          ~can_fire:(fun () -> Issue_queue.has_ready t.alu_iqs.(i))
          ~fp:[ Stage.fp_can_put t.alu_rr.(i); Stage.fp_put t.alu_rr.(i) ]
          (Printf.sprintf "%s.alu%d.issue" n i)
          (fun ctx -> step_issue_alu ctx t i))
    @ [
        mk
          ~can_fire:(fun () -> Issue_queue.has_ready t.md_iq)
          ~fp:[ Stage.fp_can_put t.md_rr; Stage.fp_put t.md_rr ]
          (n ^ ".md.issue")
          (fun ctx -> step_issue_md ctx t);
        mk
          ~can_fire:(fun () -> Issue_queue.has_ready t.mem_iq)
          ~fp:[ Stage.fp_can_put t.mem_rr; Stage.fp_put t.mem_rr ]
          (n ^ ".mem.issue")
          (fun ctx -> step_issue_mem ctx t);
      ]
  in
  let decode =
    [
      mk_fifo t.f2d
        ~fp:[ Fifo.fp_deq t.f2d; Fifo.fp_enq t.d2r ]
        (n ^ ".decode")
        (fun ctx -> step_decode ctx t);
    ]
  in
  let rename =
    [
      Rule.make ~vacuous:true
        ~can_fire:(fun () -> Fifo.peek_size t.d2r > 0)
        ~watches:[ Fifo.signal t.d2r ]
        ~fp:[ Fifo.fp_first t.d2r; Fifo.fp_deq t.d2r ]
        (n ^ ".rename")
        (fun ctx -> step_rename ctx t);
    ]
  in
  let fetch =
    [
      mk
        ~can_fire:(fun () -> Mem.L1_icache.resp_ready t.ic)
        ~watches:[ Mem.L1_icache.resp_signal t.ic ]
        ~fp:(Mem.L1_icache.fp_resp t.ic @ [ Fifo.fp_enq t.f2d ])
        (n ^ ".fetch.mem")
        (fun ctx -> step_fetch_mem ctx t);
      (* The three rules below are [~total]: every guard (slot state, FIFO
         space/occupancy) is checked before the first tracked write, so a
         commit can never abort half-way. [fetch.mem] is NOT total: it enqueues
         into [f2d] after consuming the cache response. The claims are
         discharged dynamically by [--compile-audit]. *)
      mk ~total:true
        ~can_fire:(fun () ->
          match t.fslots.(t.f_mem mod 8).fst with FReady _ -> true | FFree | FWaitTlb | FWaitMem -> false)
        ~fp:(Mem.L1_icache.fp_req t.ic)
        (n ^ ".fetch.dispatch")
        (fun ctx -> step_fetch_dispatch ctx t);
      mk ~total:true
        ~can_fire:(fun () -> Tlb.Tlb_sys.itlb_resp_ready t.tlbs)
        ~watches:[ Tlb.Tlb_sys.itlb_resp_signal t.tlbs ]
        ~fp:(Tlb.Tlb_sys.fp_itlb_resp t.tlbs)
        (n ^ ".fetch.tlb")
        (fun ctx -> step_fetch_tlb ctx t);
      mk ~total:true
        ~can_fire:(fun () -> (not t.halted_f) && t.fslots.(t.f_alloc mod 8).fst = FFree)
        ~fp:(Tlb.Tlb_sys.fp_itlb_req t.tlbs)
        (n ^ ".fetch.issue")
        (fun ctx -> step_fetch_issue ctx t);
    ]
  in
  match schedule with
  | `Aggressive ->
    (commit :: resp_at :: wb_alu)
    @ ex_alu @ md @ resp_ld @ rr_alu @ rr_md @ rr_mem @ update_lsq @ lsu @ issue @ decode @ rename
    @ fetch
  | `Conservative ->
    (commit :: resp_at :: wb_alu)
    @ ex_alu @ md @ resp_ld @ rr_alu @ rr_md @ rr_mem @ update_lsq @ lsu @ decode @ rename @ issue
    @ fetch

let pp_debug fmt t =
  Format.fprintf fmt "pc=%Lx epoch=%d rob=%d halted=%b atomic_busy=%b sb=%d spec=%x fl=%d@."
    t.fpc t.epoch (Rob.count t.rob) t.halted_f t.atomic_busy (Store_buffer.count t.sb)
    (Spec_manager.active_mask t.spec) (Free_list.free_count t.fl);
  (match Rob.head t.rob with
  | Some u ->
    Format.fprintf fmt "rob head: %a completed=%b translated=%b mmio=%b ldkill=%b@." Uop.pp u
      u.Uop.completed u.Uop.translated u.Uop.mmio u.Uop.ld_kill
  | None -> Format.fprintf fmt "rob empty@.");
  Format.fprintf fmt "%a" Lsq.pp_debug t.lsq;
  Array.iter (fun q -> Format.fprintf fmt "%s=%d " (Issue_queue.name q) (Issue_queue.count q)) t.alu_iqs;
  Format.fprintf fmt "md=%d mem=%d d2r=%d f2d=%d@." (Issue_queue.count t.md_iq)
    (Issue_queue.count t.mem_iq) (Fifo.peek_size t.d2r) (Fifo.peek_size t.f2d)
