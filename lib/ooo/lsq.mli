(** The load-store queue: LQ + SQ in program order (paper, Section V-B).

    Loads issue speculatively — possibly past older stores with unresolved
    addresses and, under TSO, out of order with older loads; the two kill
    mechanisms of the paper catch the violations:
    - [update_st] (a store's address becomes known) marks younger overlapping
      loads that already obtained a value as to-be-killed;
    - [cache_evict] (TSO only) marks completed-but-uncommitted loads whose
      line leaves the L1 as to-be-killed.
    A to-be-killed load flushes the pipeline when it reaches commit.

    Wrong-path slot recycling follows the paper: a killed load still waiting
    for a cache response leaves a sticky wrong-path bit on its slot; the slot
    may be reallocated but not issued until the stale response arrives (cache
    tags are absolute LQ indices, so staleness is exact). *)

type t

(** [Forward]/[ToCache] carry the unique tag that the eventual response
    must quote. *)
type issue_result = Forward of int64 * int | ToCache of int | Stalled

val create : Config.t -> t

(** {2 Rename side} *)

val can_enq_ld : t -> bool
val can_enq_st : t -> bool

(** Reserve the tail slot, returning the {e absolute} index to put in the
    uop; then [fill_*]. *)
val reserve_ld : Cmd.Kernel.ctx -> t -> int

val fill_ld : Cmd.Kernel.ctx -> t -> int -> Uop.t -> unit
val reserve_st : Cmd.Kernel.ctx -> t -> int
val fill_st : Cmd.Kernel.ctx -> t -> int -> Uop.t -> unit

(** Fences don't occupy LSQ slots but gate younger loads until committed. *)
val add_fence : Cmd.Kernel.ctx -> t -> Uop.t -> unit

val remove_fence : Cmd.Kernel.ctx -> t -> Uop.t -> unit

(** {2 Update (after address translation)} *)

val update_ld : Cmd.Kernel.ctx -> t -> Uop.t -> unit

(** Also performs the younger-load kill search. *)
val update_st : Cmd.Kernel.ctx -> t -> Uop.t -> unit

(** {2 Load issue / response} *)

(** Untracked probe mirroring {!get_issue_ld}'s scan: [false] exactly when
    [get_issue_ld] would guard-fail — the load-issue rule's [can_fire]. *)
val has_issue_ld : t -> bool

(** An issuable load: [(absolute index, uop)]; guarded. *)
val get_issue_ld : Cmd.Kernel.ctx -> t -> int * Uop.t

(** Search the SQ (combined with the store-buffer search result) and decide:
    forward, go to cache, or stall recording the stall source. *)
val issue_ld : Cmd.Kernel.ctx -> t -> int -> Uop.t -> sb_search:Store_buffer.search -> issue_result

(** Deliver a load value for issue tag [tag]. [`WrongPath] means the
    response belonged to a killed load; the slot becomes usable again. *)
val resp_ld : Cmd.Kernel.ctx -> t -> int -> int64 -> [ `Ok of Uop.t | `WrongPath ]

(** {2 Store issue (commit side)} *)

val set_at_commit : Cmd.Kernel.ctx -> t -> Uop.t -> unit

(** Oldest committed, unissued normal store (TSO): [(absolute idx, uop)]. *)
val oldest_committed_store : t -> (int * Uop.t) option

(** A translated store not yet prefetched (the paper's store-prefetch
    opportunity): oldest first. *)
val prefetch_candidate : t -> (int * Uop.t) option

val mark_prefetched : Cmd.Kernel.ctx -> t -> int -> unit

val mark_store_issued : Cmd.Kernel.ctx -> t -> int -> unit

(** Head of the SQ if it is a committed normal store (WMM: to store buffer;
    TSO: after its cache write completes). *)
val committed_store_head : t -> (int * Uop.t) option

(** Remove SQ head (must be committed); clears stalls blocked on it. *)
val deq_st : Cmd.Kernel.ctx -> t -> unit

(** Is [u] at the head of the SQ? (atomics drain older stores first) *)
val sq_head_is : t -> Uop.t -> bool

(** Has the SQ head already been issued to the cache (TSO)? *)
val sq_head_issued : t -> bool

val sq_empty : t -> bool

(** No committed store is still waiting to reach memory (speculative
    entries, which can never issue, are ignored). *)
val sq_quiesced : t -> bool

(** No store older than [seq] is still in the SQ (fences, LR, MMIO wait on
    this rather than on full emptiness — younger stores may legally sit
    behind them). *)
val no_older_stores : t -> int -> bool

(** Clear stalls recorded against store-buffer entry [idx]. *)
val wakeup_by_sb_deq : Cmd.Kernel.ctx -> t -> int -> unit

(** {2 Commit / speculation} *)

val deq_ld : Cmd.Kernel.ctx -> t -> unit

(** TSO eviction kill (the paper's [cacheEvict]). *)
val cache_evict : Cmd.Kernel.ctx -> t -> int64 -> unit

(** Drop killed (wrong-path) suffixes of both queues. *)
val kill_suffix : Cmd.Kernel.ctx -> t -> unit

(** Commit-time flush: drop everything (in-flight loads leave wrong-path
    bits). *)
val flush : Cmd.Kernel.ctx -> t -> unit
val pp_debug : Format.formatter -> t -> unit

(** Introspection: global counts of wrong-path slot reservations and of the
    stale responses that cleared them; they converge whenever the machine
    drains. *)
val wp_sets : int ref

val wp_clears : int ref
