type lsq_slot = LNone | LQ of int | SQ of int

type t = {
  seq : int;
  pc : int64;
  instr : Isa.Instr.t;
  rob_idx : int;
  prd : int;
  prs1 : int;
  prs2 : int;
  prd_old : int;
  spec_tag : int;
  lsq : lsq_slot;
  pred_next : int64;
  ras_sp : Branch.Ras.snapshot;
  ghist : Branch.Dir_pred.snapshot option;
  mutable spec_mask : int;
  mutable killed : bool;
  mutable completed : bool;
  mutable ld_kill : bool;
  mutable fault : bool;
  mutable mmio : bool;
  mutable translated : bool;
  mutable paddr : int64;
  mutable st_data : int64;
  mutable result : int64;
  mutable actual_next : int64;
  tid : int; (* observability trace id, -1 when tracing was off at decode *)
}

let fld = Cmd.Mut.field

let mk_set_mask ctx u v = fld ctx ~get:(fun () -> u.spec_mask) ~set:(fun x -> u.spec_mask <- x) v
let mk_set_killed ctx u v = fld ctx ~get:(fun () -> u.killed) ~set:(fun x -> u.killed <- x) v

let mk_set_completed ctx u v =
  fld ctx ~get:(fun () -> u.completed) ~set:(fun x -> u.completed <- x) v

let mk_set_ld_kill ctx u v = fld ctx ~get:(fun () -> u.ld_kill) ~set:(fun x -> u.ld_kill <- x) v
let mk_set_fault ctx u v = fld ctx ~get:(fun () -> u.fault) ~set:(fun x -> u.fault <- x) v
let mk_set_mmio ctx u v = fld ctx ~get:(fun () -> u.mmio) ~set:(fun x -> u.mmio <- x) v

let mk_set_translated ctx u v =
  fld ctx ~get:(fun () -> u.translated) ~set:(fun x -> u.translated <- x) v
let mk_set_paddr ctx u v = fld ctx ~get:(fun () -> u.paddr) ~set:(fun x -> u.paddr <- x) v
let mk_set_st_data ctx u v = fld ctx ~get:(fun () -> u.st_data) ~set:(fun x -> u.st_data <- x) v
let mk_set_result ctx u v = fld ctx ~get:(fun () -> u.result) ~set:(fun x -> u.result <- x) v

let mk_set_actual_next ctx u v =
  fld ctx ~get:(fun () -> u.actual_next) ~set:(fun x -> u.actual_next <- x) v

let pp fmt u =
  Format.fprintf fmt "#%d pc=%Lx %a rob=%d prd=%d mask=%x%s" u.seq u.pc Isa.Instr.pp u.instr
    u.rob_idx u.prd u.spec_mask
    (if u.killed then " KILLED" else "")
