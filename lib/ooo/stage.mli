(** A one-entry pipeline stage register for uop-carrying payloads.

    Conflict matrix: [take < put < squash] — a stage can be emptied and
    refilled in the same cycle (pipeline behaviour), and the misprediction
    rule (scheduled later) can squash whatever sits in it. *)

type 'a t

(** [dead] decides whether an occupant is wrong-path (typically
    [fun (u, _) -> u.Uop.killed]). *)
val create : name:string -> dead:('a -> bool) -> 'a t

val put : Cmd.Kernel.ctx -> 'a t -> 'a -> unit
val can_put : Cmd.Kernel.ctx -> 'a t -> bool

(** Read without removing; guarded on a live occupant (dead occupants are
    dropped on the spot). *)
val peek : Cmd.Kernel.ctx -> 'a t -> 'a

val take : Cmd.Kernel.ctx -> 'a t -> 'a

(** Drop the occupant if [dead] (called by the misprediction rule). *)
val squash : Cmd.Kernel.ctx -> 'a t -> unit

val peek_opt : 'a t -> 'a option

(** Untracked occupancy probe for [can_fire] predicates. A dead (wrong-path)
    occupant still counts as occupied — the attempt then drops it and
    guard-fails, exactly as the seed scheduler did. *)
val occupied : 'a t -> bool

(** The slot EHR's wakeup signal, for rules whose [can_fire] is
    {!occupied}. *)
val signal : 'a t -> Cmd.Wakeup.signal

(** {2 Conflict footprints} ([Rule.make ~fp]). [take]/[peek] declare a
    port-0 write as well as the read: dropping a dead occupant writes
    through port 0. *)

val fp_take : 'a t -> Cmd.Conflict.atom
val fp_peek : 'a t -> Cmd.Conflict.atom
val fp_put : 'a t -> Cmd.Conflict.atom
val fp_can_put : 'a t -> Cmd.Conflict.atom
val fp_squash : 'a t -> Cmd.Conflict.atom
