(** Instruction issue queue (paper, Section IV): holds renamed,
    not-yet-issued instructions with per-source ready bits; [wakeup]
    broadcasts a produced register; [issue] selects the oldest ready entry.

    The IQ/RDYB concurrency problem of Section IV is resolved by the
    schedule: the rules calling [wakeup] run before the rule calling
    [enter] (wakeup < enter), and rename reads the scoreboard after those
    wakeups have set it, so no enter/wakeup race can drop a ready bit. *)

type t

val create : name:string -> size:int -> t
val name : t -> string
val count : t -> int
val can_enter : t -> bool

(** [enter ctx q u ~rdy1 ~rdy2] (guarded on space). *)
val enter : Cmd.Kernel.ctx -> t -> Uop.t -> rdy1:bool -> rdy2:bool -> unit

(** Set ready bits of sources matching the produced physical register. *)
val wakeup : Cmd.Kernel.ctx -> t -> int -> unit

(** Untracked probe mirroring {!issue}'s selection scan: does some live,
    fully ready entry exist? Exactly [false] iff [issue] would guard-fail —
    the issue rules' [can_fire] predicate. *)
val has_ready : t -> bool

(** Remove and return the oldest fully ready entry; guarded. *)
val issue : Cmd.Kernel.ctx -> t -> Uop.t

(** Drop wrong-path entries (their uops are marked killed). *)
val squash : Cmd.Kernel.ctx -> t -> unit
