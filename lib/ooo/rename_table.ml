open Cmd

type t = { rat : int array; rrat_a : int array; snaps : int array array }

let initial () =
  (* x0 maps to the constant-zero pseudo register -1; x1..x31 to p1..p31 *)
  Array.init 32 (fun i -> if i = 0 then -1 else i)

let create ~n_tags =
  let t =
    { rat = initial (); rrat_a = initial (); snaps = Array.init n_tags (fun _ -> Array.make 32 (-1)) }
  in
  State.field ~name:"rat"
    (fun () -> (t.rat, t.rrat_a, t.snaps))
    (fun (rat, rrat_a, snaps) ->
      Array.blit rat 0 t.rat 0 32;
      Array.blit rrat_a 0 t.rrat_a 0 32;
      Array.iteri (fun i s -> Array.blit s 0 t.snaps.(i) 0 32) snaps);
  t

let lookup t r = t.rat.(r)
let set ctx t r p = if r <> 0 then Mut.set_arr ctx t.rat r p

let snapshot ctx t ~tag =
  let s = t.snaps.(tag) in
  for i = 0 to 31 do
    Mut.set_arr ctx s i t.rat.(i)
  done

let restore ctx t ~tag =
  let s = t.snaps.(tag) in
  for i = 0 to 31 do
    Mut.set_arr ctx t.rat i s.(i)
  done

let rrat_set ctx t r p = if r <> 0 then Mut.set_arr ctx t.rrat_a r p
let rrat t = t.rrat_a

let restore_from_rrat ctx t =
  for i = 0 to 31 do
    Mut.set_arr ctx t.rat i t.rrat_a.(i)
  done
