open Cmd

type entry = { mutable used : bool; mutable u : Uop.t option; mutable rdy1 : bool; mutable rdy2 : bool }

type t = { nm : string; m_full : string; entries : entry array; mutable n : int }

let create ~name ~size =
  let t =
    { nm = name; m_full = name ^ " full";
      entries = Array.init size (fun _ -> { used = false; u = None; rdy1 = true; rdy2 = true }); n = 0 }
  in
  State.field ~name
    (fun () -> (t.entries, t.n))
    (fun (entries, n) ->
      Array.blit entries 0 t.entries 0 size;
      t.n <- n);
  t

let name t = t.nm
let count t = t.n
let can_enter t = t.n < Array.length t.entries
let fld (ctx : Kernel.ctx) get set v = Mut.field ctx ~get ~set v
let set_n ctx t v = fld ctx (fun () -> t.n) (fun x -> t.n <- x) v

let free_entry ctx e =
  fld ctx (fun () -> e.used) (fun v -> e.used <- v) false;
  fld ctx (fun () -> e.u) (fun v -> e.u <- v) None

let enter ctx t u ~rdy1 ~rdy2 =
  Kernel.guard ctx (can_enter t) t.m_full;
  let rec find i = if t.entries.(i).used then find (i + 1) else t.entries.(i) in
  let e = find 0 in
  fld ctx (fun () -> e.used) (fun v -> e.used <- v) true;
  fld ctx (fun () -> e.u) (fun v -> e.u <- v) (Some u);
  fld ctx (fun () -> e.rdy1) (fun v -> e.rdy1 <- v) rdy1;
  fld ctx (fun () -> e.rdy2) (fun v -> e.rdy2 <- v) rdy2;
  set_n ctx t (t.n + 1)

let wakeup ctx t preg =
  Array.iter
    (fun e ->
      match e.u with
      | Some u when e.used ->
        if (not e.rdy1) && u.Uop.prs1 = preg then fld ctx (fun () -> e.rdy1) (fun v -> e.rdy1 <- v) true;
        if (not e.rdy2) && u.Uop.prs2 = preg then fld ctx (fun () -> e.rdy2) (fun v -> e.rdy2 <- v) true
      | _ -> ())
    t.entries

let has_ready t =
  Array.exists
    (fun e ->
      match e.u with
      | Some u -> e.used && e.rdy1 && e.rdy2 && not u.Uop.killed
      | None -> false)
    t.entries

let issue ctx t =
  let best = ref None in
  Array.iter
    (fun e ->
      match e.u with
      | Some u when e.used && e.rdy1 && e.rdy2 && not u.Uop.killed -> (
        match !best with
        | Some (_, bu) when bu.Uop.seq <= u.Uop.seq -> ()
        | _ -> best := Some (e, u))
      | _ -> ())
    t.entries;
  match !best with
  | None -> raise (Kernel.Guard_fail (t.nm ^ ": nothing ready"))
  | Some (e, u) ->
    free_entry ctx e;
    set_n ctx t (t.n - 1);
    u

let squash ctx t =
  let removed = ref 0 in
  Array.iter
    (fun e ->
      match e.u with
      | Some u when e.used && u.Uop.killed ->
        free_entry ctx e;
        incr removed
      | _ -> ())
    t.entries;
  if !removed > 0 then set_n ctx t (t.n - !removed)
