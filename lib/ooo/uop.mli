(** In-flight micro-operations.

    A [t] is allocated at rename and threaded through every module (ROB,
    issue queues, LSQ, pipeline stages); the ROB entry {e is} the uop, so a
    speculation event (paper, Section V) updates each uop exactly once and
    every holder observes it. Mutations go through tracked setters so
    aborting rules leave no trace. *)

type lsq_slot = LNone | LQ of int | SQ of int

type t = {
  seq : int;  (** global age: monotonically increasing at rename *)
  pc : int64;
  instr : Isa.Instr.t;
  rob_idx : int;
  prd : int;  (** physical destination, -1 if none *)
  prs1 : int;
  prs2 : int;
  prd_old : int;  (** prior mapping of the architectural destination *)
  spec_tag : int;  (** tag owned by this branch, -1 otherwise *)
  lsq : lsq_slot;
  pred_next : int64;
  ras_sp : Branch.Ras.snapshot;  (** front-end's predicted next pc *)
  ghist : Branch.Dir_pred.snapshot option;  (** for direction branches *)
  mutable spec_mask : int;  (** unresolved older branches this uop depends on *)
  mutable killed : bool;  (** wrong-path: every holder must drop it *)
  mutable completed : bool;  (** ROB completion bit *)
  mutable ld_kill : bool;  (** memory-dependency / TSO violation: flush at commit *)
  mutable fault : bool;
  mutable mmio : bool;
  mutable translated : bool;
  mutable paddr : int64;
  mutable st_data : int64;
  mutable result : int64;  (** destination value (for co-simulation) *)
  mutable actual_next : int64;
  tid : int;  (** observability trace id, -1 when tracing was off at decode *)
}

val mk_set_mask : Cmd.Kernel.ctx -> t -> int -> unit
val mk_set_killed : Cmd.Kernel.ctx -> t -> bool -> unit
val mk_set_completed : Cmd.Kernel.ctx -> t -> bool -> unit
val mk_set_ld_kill : Cmd.Kernel.ctx -> t -> bool -> unit
val mk_set_fault : Cmd.Kernel.ctx -> t -> bool -> unit
val mk_set_mmio : Cmd.Kernel.ctx -> t -> bool -> unit
val mk_set_translated : Cmd.Kernel.ctx -> t -> bool -> unit
val mk_set_paddr : Cmd.Kernel.ctx -> t -> int64 -> unit
val mk_set_st_data : Cmd.Kernel.ctx -> t -> int64 -> unit
val mk_set_result : Cmd.Kernel.ctx -> t -> int64 -> unit
val mk_set_actual_next : Cmd.Kernel.ctx -> t -> int64 -> unit

val pp : Format.formatter -> t -> unit
