(** Free list of physical registers: a ring with absolute pointers, so a
    branch snapshot is just the allocation pointer — restoring it reclaims
    every register allocated on the wrong path (their frees at commit never
    happen, their slots are still in the ring). *)

type t

(** Registers [32..nregs-1] start free (0–31 back the initial RAT). *)
val create : nregs:int -> t

val free_count : t -> int

(** Allocate; guarded on availability. *)
val alloc : Cmd.Kernel.ctx -> t -> int

(** Return a register (at commit, the overwritten old mapping). *)
val free : Cmd.Kernel.ctx -> t -> int -> unit

(** Iterate the registers currently on the free list, oldest first (for
    cross-module invariant checks). *)
val iter_free : t -> (int -> unit) -> unit

type snapshot

val snapshot : t -> snapshot
val restore : Cmd.Kernel.ctx -> t -> snapshot -> unit

(** Commit-time flush: everything not in [live] becomes free. *)
val reset : Cmd.Kernel.ctx -> t -> live:int array -> unit
