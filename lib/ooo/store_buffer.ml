open Cmd

type entry = {
  mutable used : bool;
  mutable line : int64;
  data : Bytes.t;
  mutable mask : int64;
  mutable issued : bool;
}

type t = {
  entries : entry array;
  ob_issue : Mcheck.Obligation.monitor;
  ob_resp : Mcheck.Obligation.monitor;
}

type search = Full of int64 | Partial of int | NoMatch

(* Coalescing keeps at most one unissued entry per line (enq merges into
   it), and a used entry always holds at least one valid byte. Two unissued
   entries for one line would let a load forward from the wrong one. *)
let check_coalescing t () =
  let n = Array.length t.entries in
  for i = 0 to n - 1 do
    let e = t.entries.(i) in
    if e.used then begin
      if e.mask = 0L then
        Verif.Invariant.fail "storebuf.coalesce" "entry %d used with empty byte mask" i;
      if not e.issued then
        for j = i + 1 to n - 1 do
          let f = t.entries.(j) in
          if f.used && (not f.issued) && f.line = e.line then
            Verif.Invariant.fail "storebuf.coalesce"
              "entries %d and %d both unissued for line 0x%Lx" i j e.line
        done
    end
  done

let create ~size =
  let t =
    {
      entries =
        Array.init size (fun _ ->
            { used = false; line = 0L; data = Bytes.make Mem.Cache_geom.line_bytes '\000'; mask = 0L; issued = false });
      ob_issue =
        Mcheck.Obligation.declare ~module_:"ooo.storebuf" ~interface:"issue"
          ~doc:
            "an exclusive-ownership request sent for a buffered line must name the \
             unique unissued entry holding valid bytes for that line"
          ();
      ob_resp =
        Mcheck.Obligation.declare ~module_:"ooo.storebuf" ~interface:"resp"
          ~doc:
            "a store-buffer dequeue triggered by a cache response must hit an \
             entry that is live and was actually issued"
          ();
    }
  in
  Verif.Invariant.register ~name:"storebuf.coalesce" (check_coalescing t);
  State.field ~name:"storebuf"
    (fun () -> t.entries)
    (fun entries -> Array.blit entries 0 t.entries 0 size);
  t

let count t = Array.fold_left (fun n e -> if e.used then n + 1 else n) 0 t.entries
let is_empty t = count t = 0
let fld (ctx : Kernel.ctx) get set v = Mut.field ctx ~get ~set v

let find_line t line f =
  let r = ref None in
  Array.iteri (fun i e -> if e.used && e.line = line && f e then r := Some (i, e)) t.entries;
  !r

let write_entry ctx e ~off ~bytes v =
  let src = Bytes.create bytes in
  for k = 0 to bytes - 1 do
    Bytes.set src k (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xFF))
  done;
  Mut.blit ctx ~src ~src_pos:0 ~dst:e.data ~dst_pos:off ~len:bytes;
  let add = Int64.shift_left (Int64.sub (Int64.shift_left 1L bytes) 1L) off in
  fld ctx (fun () -> e.mask) (fun v -> e.mask <- v) (Int64.logor e.mask add)

let enq ctx t ~addr ~bytes v =
  let line = Mem.Cache_geom.line_addr addr in
  let off = Mem.Cache_geom.offset addr in
  match find_line t line (fun e -> not e.issued) with
  | Some (_, e) -> write_entry ctx e ~off ~bytes v
  | None -> (
    let free = ref None in
    Array.iter (fun e -> if (not e.used) && !free = None then free := Some e) t.entries;
    match !free with
    | None -> raise (Kernel.Guard_fail "store buffer full")
    | Some e ->
      fld ctx (fun () -> e.used) (fun v -> e.used <- v) true;
      fld ctx (fun () -> e.line) (fun v -> e.line <- v) line;
      fld ctx (fun () -> e.mask) (fun v -> e.mask <- v) 0L;
      fld ctx (fun () -> e.issued) (fun v -> e.issued <- v) false;
      write_entry ctx e ~off ~bytes v)

let can_enq t ~addr =
  let line = Mem.Cache_geom.line_addr addr in
  find_line t line (fun e -> not e.issued) <> None
  || Array.exists (fun e -> not e.used) t.entries

let has_unissued t = Array.exists (fun e -> e.used && not e.issued) t.entries

let issue ctx t =
  let r = ref None in
  Array.iteri (fun i e -> if e.used && (not e.issued) && !r = None then r := Some (i, e)) t.entries;
  match !r with
  | None -> raise (Kernel.Guard_fail "store buffer: nothing to issue")
  | Some (i, e) ->
    Mcheck.Obligation.check ctx t.ob_issue (fun () ->
        if e.mask = 0L then
          Some (Printf.sprintf "issue of entry %d for line 0x%Lx with no valid bytes" i e.line)
        else
          let dup = ref None in
          Array.iteri
            (fun j f ->
              if j <> i && f.used && (not f.issued) && f.line = e.line then dup := Some j)
            t.entries;
          match !dup with
          | Some j ->
            Some
              (Printf.sprintf "issue of entry %d for line 0x%Lx shadowed by unissued entry %d" i
                 e.line j)
          | None -> None);
    fld ctx (fun () -> e.issued) (fun v -> e.issued <- v) true;
    (i, e.line)

let deq ctx t idx =
  let e = t.entries.(idx) in
  Mcheck.Obligation.check ctx t.ob_resp (fun () ->
      if not e.used then Some (Printf.sprintf "dequeue of free entry %d" idx)
      else if not e.issued then
        Some (Printf.sprintf "dequeue of entry %d (line 0x%Lx) never issued" idx e.line)
      else None);
  if not e.used then failwith "store buffer: deq of free entry";
  fld ctx (fun () -> e.used) (fun v -> e.used <- v) false;
  fld ctx (fun () -> e.issued) (fun v -> e.issued <- v) false;
  (e.line, Bytes.copy e.data, e.mask)

let search t ~addr ~bytes =
  let line = Mem.Cache_geom.line_addr addr in
  let off = Mem.Cache_geom.offset addr in
  let need = Int64.shift_left (Int64.sub (Int64.shift_left 1L bytes) 1L) off in
  (* youngest-match semantics: with coalescing there is at most one entry
     per line unissued, but an issued one may coexist; prefer the unissued
     (younger) entry's bytes — if it fully covers, forward from it. *)
  let consider e acc =
    if e.used && e.line = line && Int64.logand e.mask need <> 0L then Some e else acc
  in
  let unissued = Array.fold_left (fun a e -> if not e.issued then consider e a else a) None t.entries in
  let issued = Array.fold_left (fun a e -> if e.issued then consider e a else a) None t.entries in
  let pick = match unissued with Some e -> Some e | None -> issued in
  match pick with
  | None -> NoMatch
  | Some e ->
    if Int64.logand e.mask need = need
       && (unissued = None || issued = None (* both matching: bytes may be split *))
    then begin
      let v = ref 0L in
      for k = bytes - 1 downto 0 do
        v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get e.data (off + k))))
      done;
      Full !v
    end
    else
      let idx = ref 0 in
      Array.iteri (fun i x -> if x == e then idx := i) t.entries;
      Partial !idx
