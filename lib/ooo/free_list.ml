open Cmd

type t = {
  ring : int array;
  mutable alloc_ptr : int; (* absolute *)
  mutable free_ptr : int; (* absolute *)
  nregs : int;
}

type snapshot = int

let free_count t = t.free_ptr - t.alloc_ptr

(* Every entry in the free window is a valid physical register and no
   register appears twice — a double-free would eventually hand the same
   register to two in-flight uops. *)
let check_no_double_free t () =
  let n = free_count t in
  if n < 0 || n > t.nregs then
    Verif.Invariant.fail "freelist.no-double-free" "free count %d outside [0,%d] (alloc=%d free=%d)"
      n t.nregs t.alloc_ptr t.free_ptr;
  let seen = Array.make t.nregs false in
  for i = t.alloc_ptr to t.free_ptr - 1 do
    let r = t.ring.(i mod t.nregs) in
    if r < 0 || r >= t.nregs then
      Verif.Invariant.fail "freelist.no-double-free" "entry %d is not a register: %d" i r;
    if seen.(r) then
      Verif.Invariant.fail "freelist.no-double-free" "register %d is free twice" r;
    seen.(r) <- true
  done

let create ~nregs =
  let n_free = nregs - 32 in
  let ring = Array.make nregs (-1) in
  for i = 0 to n_free - 1 do
    ring.(i) <- 32 + i
  done;
  let t = { ring; alloc_ptr = 0; free_ptr = n_free; nregs } in
  Verif.Invariant.register ~name:"freelist.no-double-free" (check_no_double_free t);
  State.field ~name:"freelist"
    (fun () -> (t.ring, t.alloc_ptr, t.free_ptr))
    (fun (ring, alloc_ptr, free_ptr) ->
      Array.blit ring 0 t.ring 0 nregs;
      t.alloc_ptr <- alloc_ptr;
      t.free_ptr <- free_ptr);
  t
let fld (ctx : Kernel.ctx) get set v = Mut.field ctx ~get ~set v

let alloc ctx t =
  Kernel.guard ctx (free_count t > 0) "free list empty";
  let r = t.ring.(t.alloc_ptr mod t.nregs) in
  fld ctx (fun () -> t.alloc_ptr) (fun v -> t.alloc_ptr <- v) (t.alloc_ptr + 1);
  r

let free ctx t r =
  Mut.set_arr ctx t.ring (t.free_ptr mod t.nregs) r;
  fld ctx (fun () -> t.free_ptr) (fun v -> t.free_ptr <- v) (t.free_ptr + 1)

let iter_free t f =
  for i = t.alloc_ptr to t.free_ptr - 1 do
    f t.ring.(i mod t.nregs)
  done

let snapshot t = t.alloc_ptr
let restore ctx t snap = fld ctx (fun () -> t.alloc_ptr) (fun v -> t.alloc_ptr <- v) snap

let reset ctx t ~live =
  let is_live = Array.make t.nregs false in
  Array.iter (fun r -> if r >= 0 then is_live.(r) <- true) live;
  let k = ref 0 in
  for r = 0 to t.nregs - 1 do
    if not is_live.(r) then begin
      Mut.set_arr ctx t.ring !k r;
      incr k
    end
  done;
  fld ctx (fun () -> t.alloc_ptr) (fun v -> t.alloc_ptr <- v) 0;
  fld ctx (fun () -> t.free_ptr) (fun v -> t.free_ptr <- v) !k
