(** Physical register file with two sets of presence bits (paper, Sec. V).

    The {e true} presence bits (RDYB) are set only when a value is written;
    the Reg-Read stage stalls on them. The {e scoreboard} bits are set
    optimistically when the value is known to arrive with a small fixed
    latency (at issue of a single-cycle ALU op); the rename stage reads them
    to seed IQ ready bits, enabling back-to-back wakeups. *)

type t

(** [name] prefixes the per-register fault-injection sites registered when
    the {!Cmd.Inject} registry is armed. *)
val create : ?name:string -> nregs:int -> unit -> t
val nregs : t -> int

(** Value of a ready register ([-1] reads as 0 — the x0 pseudo-source). *)
val read : t -> int -> int64

val present : t -> int -> bool
val sb_ready : t -> int -> bool

(** [write ctx t r v] writes the value and sets the true presence bit. *)
val write : Cmd.Kernel.ctx -> t -> int -> int64 -> unit

(** Optimistic scoreboard set (at issue). *)
val set_sb : Cmd.Kernel.ctx -> t -> int -> unit

(** At allocation (rename): clear both bits of the fresh register. *)
val alloc_clear : Cmd.Kernel.ctx -> t -> int -> unit

(** Reset both bit sets so exactly [live] registers are present (commit-time
    flush: the RRAT mappings). *)
val reset_presence : Cmd.Kernel.ctx -> t -> live:int array -> unit
