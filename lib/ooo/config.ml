type mem_model = TSO | WMM

type t = {
  name : string;
  width : int;
  rob_size : int;
  n_alu : int;
  iq_size : int;
  lq_size : int;
  sq_size : int;
  sb_size : int;
  n_phys_regs : int;
      (* physical-register-file entries (>= 33; 32 architectural + the
         free window rename draws on). The classic sizing is
         32 + rob_size + 8, which [phys_regs_for] computes; the
         config-space explorer varies it independently to find the point
         where the PRF, not the ROB, bounds the in-flight window. *)
  n_spec_tags : int;
  muldiv_latency : int;
  mem_model : mem_model;
  tlb : Tlb.Tlb_sys.config;
  mem : Mem.Mem_sys.config;
  btb_entries : int;
  ras_entries : int;
  bypass : bool;  (* ablation: disable the ALU result bypass network *)
  predictor : Branch.Dir_pred.kind;
  st_prefetch : bool; (* TSO store prefetching (paper Sec. V-B, unimplemented there) *)
  bug_ld_bypass_sq : bool;
      (* fault injection for the obligation checker: load issue skips the
         store-queue age/overlap scan, so loads sail past older stores *)
}

let phys_regs_for ~rob_size = 32 + rob_size + 8

let riscyoo_b =
  {
    name = "RiscyOO-B";
    width = 2;
    rob_size = 64;
    n_alu = 2;
    iq_size = 16;
    lq_size = 24;
    sq_size = 14;
    sb_size = 4;
    n_phys_regs = phys_regs_for ~rob_size:64;
    n_spec_tags = 8;
    muldiv_latency = 4;
    mem_model = WMM;
    tlb = Tlb.Tlb_sys.blocking_config;
    mem = Mem.Mem_sys.default_config;
    btb_entries = 256;
    ras_entries = 8;
    bypass = true;
    predictor = Branch.Dir_pred.Tournament;
    st_prefetch = false;
    bug_ld_bypass_sq = false;
  }

let riscyoo_cminus =
  {
    riscyoo_b with
    name = "RiscyOO-C-";
    mem = { Mem.Mem_sys.default_config with l1d_bytes = 16 * 1024; l1i_bytes = 16 * 1024; l2_bytes = 256 * 1024 };
  }

let riscyoo_tplus = { riscyoo_b with name = "RiscyOO-T+"; tlb = Tlb.Tlb_sys.nonblocking_config }
let riscyoo_tplus_rplus =
  { riscyoo_tplus with name = "RiscyOO-T+R+"; rob_size = 80; n_phys_regs = phys_regs_for ~rob_size:80 }

let a57_proxy =
  {
    riscyoo_tplus with
    name = "a57-proxy";
    width = 3;
    n_alu = 3;
    rob_size = 128;
    n_phys_regs = phys_regs_for ~rob_size:128;
    lq_size = 32;
    sq_size = 20;
    mem =
      {
        Mem.Mem_sys.default_config with
        l1d_bytes = 32 * 1024;
        l1i_bytes = 48 * 1024;
        l1i_ways = 12 (* 64 sets: the geometry needs a power of two *);
        l2_bytes = 2 * 1024 * 1024;
      };
  }

let denver_proxy =
  {
    a57_proxy with
    name = "denver-proxy";
    width = 7;
    n_alu = 4;
    rob_size = 192;
    n_phys_regs = phys_regs_for ~rob_size:192;
    iq_size = 24;
    lq_size = 48;
    sq_size = 32;
    mem =
      { Mem.Mem_sys.default_config with l1d_bytes = 64 * 1024; l1i_bytes = 128 * 1024; l2_bytes = 2 * 1024 * 1024 };
  }

let multicore mm =
  {
    riscyoo_tplus with
    name = (match mm with TSO -> "quad-TSO" | WMM -> "quad-WMM");
    rob_size = 48;
    n_phys_regs = phys_regs_for ~rob_size:48;
    lq_size = 16;
    sq_size = 10;
    mem_model = mm;
  }

let multicore16 mm =
  {
    (multicore mm) with
    name = (match mm with TSO -> "sixteen-TSO" | WMM -> "sixteen-WMM");
    mem =
      {
        Mem.Mem_sys.default_config with
        l1d_bytes = 16 * 1024;
        l1i_bytes = 16 * 1024;
        l2_bytes = 2 * 1024 * 1024;
        l2_mshrs = 32;
        l2_banks = 4;
        mem_inflight = 48;
      };
  }

let pp fmt t =
  Format.fprintf fmt
    "%s: %d-wide, ROB %d, %d ALU pipes, IQ %d, LQ/SQ %d/%d, SB %d, %s, L1D %dKB, L2 %dKB, mem %d cyc"
    t.name t.width t.rob_size t.n_alu t.iq_size t.lq_size t.sq_size t.sb_size
    (match t.mem_model with TSO -> "TSO" | WMM -> "WMM")
    (t.mem.Mem.Mem_sys.l1d_bytes / 1024)
    (t.mem.Mem.Mem_sys.l2_bytes / 1024)
    t.mem.Mem.Mem_sys.mem_latency
