(** The bypass network (paper, Section V-A): ALU results travel from the
    Exec and Reg-Write rules to the Reg-Read rules of every pipeline in the
    same cycle, over wires with [set < get]. *)

type t

(** [n_wires] = number of producing stage-rules (2 per ALU pipe). *)
val create : Cmd.Clock.t -> n_wires:int -> t

(** Publish a (physical register, value) pair on wire [i]. *)
val set : Cmd.Kernel.ctx -> t -> int -> int -> int64 -> unit

(** Search all wires for [preg]'s value this cycle. *)
val get : Cmd.Kernel.ctx -> t -> int -> int64 option

(** Footprint atoms ([Rule.make ~fp]): {!fp_set} for the producing rule of
    wire [i]; {!fp_get_all} for any rule that may call {!get} (the scan
    reads every wire). *)
val fp_set : t -> int -> Cmd.Conflict.atom

val fp_get_all : t -> Cmd.Conflict.atom list
