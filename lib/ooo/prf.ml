open Cmd

type t = { vals : int64 array; pres : bool array; sb : bool array }

(* The EHR auto-registration only covers immediate (unboxed) values; PRF
   values are boxed int64s, so each register explicitly registers a 64-bit
   flip site — the largest single block of architecturally visible state. *)
let create ?(name = "prf") ~nregs () =
  let t = { vals = Array.make nregs 0L; pres = Array.make nregs true; sb = Array.make nregs true } in
  if Inject.is_armed () then
    for r = 0 to nregs - 1 do
      Inject.register ~name:(Printf.sprintf "%s.r%d" name r) ~width:64 (fun bit ->
          t.vals.(r) <- Int64.logxor t.vals.(r) (Int64.shift_left 1L bit);
          true)
    done;
  State.field ~name
    (fun () -> (t.vals, t.pres, t.sb))
    (fun (vals, pres, sb) ->
      Array.blit vals 0 t.vals 0 nregs;
      Array.blit pres 0 t.pres 0 nregs;
      Array.blit sb 0 t.sb 0 nregs);
  t
let nregs t = Array.length t.vals
let read t r = if r < 0 then 0L else t.vals.(r)
let present t r = r < 0 || t.pres.(r)
let sb_ready t r = r < 0 || t.sb.(r)

let write ctx t r v =
  Mut.set_arr ctx t.vals r v;
  Mut.set_arr ctx t.pres r true;
  Mut.set_arr ctx t.sb r true

let set_sb ctx t r = Mut.set_arr ctx t.sb r true

let alloc_clear ctx t r =
  Mut.set_arr ctx t.pres r false;
  Mut.set_arr ctx t.sb r false

let reset_presence ctx t ~live =
  for r = 0 to Array.length t.pres - 1 do
    Mut.set_arr ctx t.pres r false;
    Mut.set_arr ctx t.sb r false
  done;
  Array.iter
    (fun r ->
      if r >= 0 then begin
        Mut.set_arr ctx t.pres r true;
        Mut.set_arr ctx t.sb r true
      end)
    live
