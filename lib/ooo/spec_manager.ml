open Cmd

type t = {
  n_tags : int;
  mutable active : int;
  alloc_masks : int array; (* mask under which each tag was allocated *)
}

let create ~n_tags =
  let t = { n_tags; active = 0; alloc_masks = Array.make n_tags 0 } in
  State.field ~name:"spec"
    (fun () -> (t.active, t.alloc_masks))
    (fun (active, alloc_masks) ->
      t.active <- active;
      Array.blit alloc_masks 0 t.alloc_masks 0 n_tags);
  t

let active_mask t = t.active
let can_alloc t = t.active <> (1 lsl t.n_tags) - 1
let fld (ctx : Kernel.ctx) get set v = Mut.field ctx ~get ~set v

let alloc ctx t =
  Kernel.guard ctx (can_alloc t) "no free speculation tag";
  let rec find i = if t.active land (1 lsl i) = 0 then i else find (i + 1) in
  let tag = find 0 in
  Mut.set_arr ctx t.alloc_masks tag t.active;
  fld ctx (fun () -> t.active) (fun v -> t.active <- v) (t.active lor (1 lsl tag));
  tag

let correct ctx t tag =
  fld ctx (fun () -> t.active) (fun v -> t.active <- v) (t.active land lnot (1 lsl tag));
  (* later tags no longer depend on it *)
  for i = 0 to t.n_tags - 1 do
    if t.alloc_masks.(i) land (1 lsl tag) <> 0 then
      Mut.set_arr ctx t.alloc_masks i (t.alloc_masks.(i) land lnot (1 lsl tag))
  done

let wrong ctx t tag =
  let bit = 1 lsl tag in
  let dead = ref [ tag ] in
  for i = 0 to t.n_tags - 1 do
    if i <> tag && t.active land (1 lsl i) <> 0 && t.alloc_masks.(i) land bit <> 0 then
      dead := i :: !dead
  done;
  let dead_mask = List.fold_left (fun m i -> m lor (1 lsl i)) 0 !dead in
  fld ctx (fun () -> t.active) (fun v -> t.active <- v) (t.active land lnot dead_mask);
  !dead

let mask_of tags = List.fold_left (fun m i -> m lor (1 lsl i)) 0 tags
let reset ctx t = fld ctx (fun () -> t.active) (fun v -> t.active <- v) 0
