(** Store buffer (paper, Section V-B): committed stores waiting to enter the
    L1 D cache, WMM only. Entries are 64 B wide with byte enables; stores to
    the same line coalesce (while unissued); entries issue to the cache out
    of order. *)

type t

val create : size:int -> t
val count : t -> int
val is_empty : t -> bool

(** [enq ctx t ~addr ~bytes v] — coalesces into an unissued entry for the
    same line or allocates; guarded on space. *)
val enq : Cmd.Kernel.ctx -> t -> addr:int64 -> bytes:int -> int64 -> unit

val can_enq : t -> addr:int64 -> bool

(** Untracked probe: some used, unissued entry exists — [false] exactly when
    {!issue} would guard-fail. The sb-issue rule's [can_fire]. *)
val has_unissued : t -> bool

(** Pick an unissued entry: [(index, line)] and mark it issued; guarded. *)
val issue : Cmd.Kernel.ctx -> t -> int * int64

(** Remove entry [idx]: its line, 64-byte data and byte mask. *)
val deq : Cmd.Kernel.ctx -> t -> int -> int64 * Bytes.t * int64

type search = Full of int64 | Partial of int | NoMatch  (** [Partial idx] *)

(** Can a load of [bytes] at [addr] be served by the buffer? *)
val search : t -> addr:int64 -> bytes:int -> search
