(** The RiscyOO out-of-order core (paper, Fig. 9): front-end with BTB +
    tournament predictor + RAS and epoch-based redirect; rename with
    speculation tags; ROB; per-pipeline issue queues; PRF with presence bits
    and scoreboard; ALU/MULDIV/MEM pipelines with a bypass network; LSQ +
    store buffer; commit with golden-model lockstep co-simulation.

    All of it is composed by top-level atomic rules ({!rules}); the returned
    list order {e is} the intra-cycle logical order, so the schedule
    experiments of Section IV-D are expressed by reordering it. *)

type t

(** Which intra-cycle rule ordering to build (the Section IV-D exploration):
    [`Aggressive] places wakeup-producing rules before issue and issue before
    rename (a freshly woken or renamed instruction can issue in the same
    cycle); [`Conservative] reverses rename/issue, costing a cycle on
    back-to-back dependents. *)
type schedule = [ `Aggressive | `Conservative ]

val create :
  ?name:string ->
  ?cosim:Isa.Golden.t ->
  ?pipe:Obs.Pipe.t ->
  Cmd.Clock.t ->
  Config.t ->
  hart_id:int ->
  icache:Mem.L1_icache.t ->
  dcache:Mem.L1_dcache.t ->
  tlb:Tlb.Tlb_sys.t ->
  mmio:Isa.Mmio.t ->
  stats:Cmd.Stats.t ->
  unit ->
  t

(** Also registers the TSO/reservation eviction hook on the D-cache. *)
val rules : ?schedule:schedule -> t -> Cmd.Rule.t list

val set_pc : t -> int64 -> unit

(** Observe every committed uop (tracing, custom statistics). The hook runs
    inside the commit rule, so any side effect it makes must be registered
    through the [ctx] to stay abort-safe. *)
val set_commit_hook : t -> (Cmd.Kernel.ctx -> Uop.t -> unit) -> unit

(** Initialize an architectural register (pre-run). *)
val set_reg : t -> int -> int64 -> unit

(** Architectural (committed) value of a register. *)
val reg : t -> int -> int64

val halted : t -> bool
val instret : t -> int

(** No store is still buffered (store queue and, under WMM, the store
    buffer are empty). After every hart has exited, a quiesced core means
    all its stores reached the coherent hierarchy — the litmus harness
    checks this before reading final memory values. *)
val quiesced : t -> bool

(** Dump pipeline state (debugging). *)
val pp_debug : Format.formatter -> t -> unit
