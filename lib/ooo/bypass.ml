open Cmd

type t = (int * int64) Wire.t array

let create clk ~n_wires = Array.init n_wires (fun i -> Wire.create ~name:(Printf.sprintf "bypass%d" i) clk ())

let set ctx t i preg v = Wire.set ctx t.(i) (preg, v)

let get ctx t preg =
  Array.fold_left
    (fun acc w ->
      match acc with
      | Some _ -> acc
      | None -> (
        match Wire.get ctx w with Some (p, v) when p = preg -> Some v | _ -> None))
    None t

(* [get] scans every wire, so a reading rule declares all of them *)
let fp_set t i = Wire.fp_set t.(i)
let fp_get_all t = Array.to_list (Array.map Wire.fp_get t)
