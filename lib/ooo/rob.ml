open Cmd

type t = { slots : Uop.t option array; mutable head : int; mutable tail : int; size : int }

let count t = t.tail - t.head

(* Commit order is age order: absolute head/tail stay a well-formed window
   and the occupied slots' global sequence numbers are strictly increasing
   from head to tail. A flipped pointer or swapped slot breaks this. *)
let check_age_order t () =
  let c = count t in
  if c < 0 || c > t.size then
    Verif.Invariant.fail "rob.age-order" "count %d outside [0,%d] (head=%d tail=%d)" c t.size
      t.head t.tail;
  let last = ref min_int in
  for i = t.head to t.tail - 1 do
    match t.slots.(i mod t.size) with
    | Some u ->
      if u.Uop.seq <= !last then
        Verif.Invariant.fail "rob.age-order" "slot %d seq %d not younger than predecessor seq %d"
          i u.Uop.seq !last;
      last := u.Uop.seq
    | None -> ()
  done

let create ~size =
  let t = { slots = Array.make size None; head = 0; tail = 0; size } in
  Verif.Invariant.register ~name:"rob.age-order" (check_age_order t);
  State.field ~name:"rob"
    (fun () -> (t.slots, t.head, t.tail))
    (fun (slots, head, tail) ->
      Array.blit slots 0 t.slots 0 size;
      t.head <- head;
      t.tail <- tail);
  t
let can_enq t = count t < t.size
let fld (ctx : Kernel.ctx) get set v = Mut.field ctx ~get ~set v

let enq ctx t u =
  Kernel.guard ctx (can_enq t) "rob full";
  let idx = t.tail in
  Mut.set_arr ctx t.slots (idx mod t.size) (Some u);
  fld ctx (fun () -> t.tail) (fun v -> t.tail <- v) (t.tail + 1);
  idx

let next_idx t = t.tail
let head t = if count t > 0 then t.slots.(t.head mod t.size) else None
let peek t k = if count t > k then t.slots.((t.head + k) mod t.size) else None

let deq ctx t =
  Kernel.guard ctx (count t > 0) "rob empty";
  Mut.set_arr ctx t.slots (t.head mod t.size) None;
  fld ctx (fun () -> t.head) (fun v -> t.head <- v) (t.head + 1)

let truncate_after ctx t rob_idx =
  let killed = ref [] in
  for i = t.tail - 1 downto rob_idx + 1 do
    match t.slots.(i mod t.size) with
    | Some u ->
      Uop.mk_set_killed ctx u true;
      killed := u :: !killed;
      Mut.set_arr ctx t.slots (i mod t.size) None
    | None -> ()
  done;
  fld ctx (fun () -> t.tail) (fun v -> t.tail <- v) (max (rob_idx + 1) t.head);
  !killed

let iter_live t f =
  for i = t.head to t.tail - 1 do
    match t.slots.(i mod t.size) with Some u -> f u | None -> ()
  done

let flush ctx t =
  for i = t.head to t.tail - 1 do
    match t.slots.(i mod t.size) with
    | Some u ->
      Uop.mk_set_killed ctx u true;
      Mut.set_arr ctx t.slots (i mod t.size) None
    | None -> ()
  done;
  fld ctx (fun () -> t.tail) (fun v -> t.tail <- v) t.head
