(* The IPC-vs-area Pareto front per workload, and the riscyoo-pareto-v1
   emission. Everything here is order-normalised (workloads and points
   sorted by name) so the bytes are a pure function of the sample set —
   deterministic across farm worker counts. *)

(* [a] dominates [b]: no worse on both objectives, strictly better on one. *)
let dominates a b =
  a.Measure.ipc >= b.Measure.ipc
  && a.Measure.area_gates <= b.Measure.area_gates
  && (a.Measure.ipc > b.Measure.ipc || a.Measure.area_gates < b.Measure.area_gates)

(* Non-dominated subset, sorted by ascending area (ties by name). *)
let front samples =
  samples
  |> List.filter (fun s -> not (List.exists (fun o -> dominates o s) samples))
  |> List.sort (fun a b ->
         match compare a.Measure.area_gates b.Measure.area_gates with
         | 0 -> compare a.Measure.point b.Measure.point
         | c -> c)

let on_front samples name =
  List.exists (fun s -> s.Measure.point = name) (front samples)

let by_workload samples =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let k = s.Measure.workload in
      Hashtbl.replace tbl k (s :: (try Hashtbl.find tbl k with Not_found -> [])))
    samples;
  Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Reference check: [Some false] = designated reference fell off at least
   one workload's front (the CI-failing condition); [None] = no reference. *)
let reference_on_front ~reference samples =
  match reference with
  | None -> None
  | Some r ->
    Some (List.for_all (fun (_, ss) -> on_front ss r) (by_workload samples))

let sample_json ~front_names (s : Measure.sample) =
  Rjson.Obj
    [
      ("point", Rjson.Str s.Measure.point);
      ("ncores", Rjson.Int s.Measure.ncores);
      ("ipc", Rjson.Float s.Measure.ipc);
      ("area_gates", Rjson.Float s.Measure.area_gates);
      ("freq_ghz", Rjson.Float s.Measure.freq_ghz);
      ("l2_mpki", Rjson.Float s.Measure.l2_mpki);
      ("rob_occ_avg", Rjson.Float s.Measure.rob_occ_avg);
      ("cycles", Rjson.Int s.Measure.cycles);
      ("instrs", Rjson.Int s.Measure.instrs);
      ("on_front", Rjson.Bool (List.mem s.Measure.point front_names));
    ]

let to_json ?reference samples =
  let groups = by_workload samples in
  let workloads =
    List.map
      (fun (w, ss) ->
        let f = front ss in
        let front_names = List.map (fun s -> s.Measure.point) f in
        let ss = List.sort (fun a b -> compare a.Measure.point b.Measure.point) ss in
        let fields =
          [
            ("name", Rjson.Str w);
            ("points", Rjson.List (List.map (sample_json ~front_names) ss));
            ("front", Rjson.List (List.map (fun n -> Rjson.Str n) front_names));
          ]
        in
        let fields =
          match reference with
          | None -> fields
          | Some r ->
            fields
            @ [
                ( "reference",
                  Rjson.Obj
                    [ ("point", Rjson.Str r); ("on_front", Rjson.Bool (List.mem r front_names)) ] );
              ]
        in
        Rjson.Obj fields)
      groups
  in
  Rjson.Obj
    ([ ("schema", Rjson.Str "riscyoo-pareto-v1") ]
    @ (match reference with None -> [] | Some r -> [ ("reference", Rjson.Str r) ])
    @ [ ("workloads", Rjson.List workloads) ])

let to_string ?reference samples = Rjson.to_string (to_json ?reference samples)
