(** IPC-vs-area Pareto fronts (schema ["riscyoo-pareto-v1"]).

    Per workload: the non-dominated subset of samples under (maximise IPC,
    minimise area), the full sample table flagged with front membership,
    and — when the manifest designates a reference point — whether that
    reference sits on the front. Output is order-normalised (workloads and
    points sorted by name, canonical {!Rjson} printing), so the bytes are a
    pure function of the sample set: deterministic across [--workers]. *)

(** Strict Pareto dominance: no worse on both objectives, better on one. *)
val dominates : Measure.sample -> Measure.sample -> bool

(** Non-dominated subset, ascending area (ties broken by point name). *)
val front : Measure.sample list -> Measure.sample list

val on_front : Measure.sample list -> string -> bool

(** Samples grouped by workload, both levels name-sorted. *)
val by_workload : Measure.sample list -> (string * Measure.sample list) list

(** [Some false] = the reference fell off at least one workload's front
    (the exit-nonzero condition); [None] = no reference designated. *)
val reference_on_front : reference:string option -> Measure.sample list -> bool option

val to_json : ?reference:string -> Measure.sample list -> Rjson.t
val to_string : ?reference:string -> Measure.sample list -> string
