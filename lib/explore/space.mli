(** The declarative microarchitectural config space
    (schema ["riscyoo-explore-manifest-v1"]).

    A manifest names a base configuration, a list of workloads, and a
    space of points: the cartesian product of a ["grid"] of axis-value
    lists plus explicit ["points"]. Each point is a sparse override set
    (ROB/IQ/LSQ sizes, physical-register count, branch predictor, MSI vs
    MESI, TLB personality and size, core count, L2 banks) applied to the
    base {!Ooo.Config.t}, so any point is instantiable through
    [Machine.create] without code edits. Grid points get stable dotted
    names derived from their axis settings in canonical axis order
    (["rob48.mesi.banks4"]) — the identity the farm journal, the Pareto
    front and the reference check key on. *)

exception Bad_manifest of string

type tlb_kind = Blocking | Nonblocking

type point = {
  pname : string option;
  rob_size : int option;
  iq_size : int option;
  lq_size : int option;
  sq_size : int option;
  n_phys_regs : int option;  (** [None] = classic [32 + rob + 8] sizing *)
  predictor : Branch.Dir_pred.kind option;
  mesi : bool option;
  tlb : tlb_kind option;
  dtlb_entries : int option;
  ncores : int option;
  l2_banks : int option;
}

val empty_point : point

(** Axis names in canonical (expansion and naming) order. *)
val axes : string list

(** Raises {!Bad_manifest} on an unnamed point. *)
val name_of : point -> string

(** Apply the point's overrides to [base]; the result's [name] is the point
    name. Raises {!Bad_manifest} on out-of-range values (PRF < 40,
    non-power-of-two banks). *)
val to_config : base:Ooo.Config.t -> point -> Ooo.Config.t

type workload = { wname : string; scale : int }

type t = {
  base_name : string;
  base : Ooo.Config.t;
  base_ncores : int;
  workloads : workload list;
  points : point list;
  reference : string option;
}

(** Core count for a point: its [ncores] override, else the base's. *)
val ncores_of : t -> point -> int

(** [of_json ?check_schema j] expands a manifest. [check_schema:false] skips
    the schema-string check — for the same object embedded as a farm-manifest
    sweep. Raises {!Bad_manifest}. *)
val of_json : ?check_schema:bool -> Rjson.t -> t

val of_string : string -> t
val find_point : t -> string -> point option

(** Clamp every grid axis to its first [per_axis] values at the JSON level
    (so names stay stable) — the [--quick] switch. A reference naming a
    clamped-away point is dropped. *)
val quick_json : ?per_axis:int -> Rjson.t -> Rjson.t

val n_points : t -> int
