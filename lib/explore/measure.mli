(** One config point × one workload → one measured sample.

    Performance comes from a full [Machine] run read back through
    {!Obs.Stats_json} (so IPC/MPKI/occupancy match every other consumer of
    the stats schema); area and frequency come from the {!Synth} model,
    with the shared-L2 control costed once per chip and the core costed
    per core. *)

type sample = {
  workload : string;
  point : string;
  ncores : int;
  ipc : float;
  l2_mpki : float;  (** L2 misses per kilo-instruction, summed over banks *)
  rob_occ_avg : float;  (** mean per-core cycle-sampled ROB occupancy *)
  area_gates : float;  (** whole-machine NAND2: cores × core + shared L2 *)
  freq_ghz : float;
  cycles : int;
  instrs : int;
}

exception Run_failed of string

(** Raises {!Run_failed} on timeout ([max_cycles], default 40 M) and
    {!Space.Bad_manifest} on an uninstantiable point. [on_cycle] threads
    the farm's cancel hook into the run. *)
val run :
  ?max_cycles:int ->
  ?on_cycle:(int -> unit) ->
  Space.t ->
  Space.point ->
  Space.workload ->
  sample

(** The farm job payload; [of_json] reads it back (raising {!Run_failed}
    on a malformed record). *)
val to_json : sample -> Rjson.t

val of_json : Rjson.t -> sample
