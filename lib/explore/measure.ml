(* One config point × one workload → one measured sample: performance from
   a full machine run (through [Obs.Stats_json], so the numbers match what
   every other consumer sees) and area/frequency from the synth model. *)

type sample = {
  workload : string;
  point : string;
  ncores : int;
  ipc : float;
  l2_mpki : float;
  rob_occ_avg : float;  (* mean of the per-core cycle-sampled ROB occupancy *)
  area_gates : float;  (* whole-machine NAND2 estimate: cores + shared L2 *)
  freq_ghz : float;
  cycles : int;
  instrs : int;
}

exception Run_failed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Run_failed s)) fmt

let find_kernel name ~harts ~scale =
  match List.assoc_opt name Workloads.Server_kernels.all with
  | Some f -> f ~harts ~scale
  | None -> (
    match List.assoc_opt name Workloads.Parsec_kernels.all with
    | Some f -> f ~harts ~scale
    | None -> Workloads.Spec_kernels.find name ~scale (* single-core shapes + "smoke" *))

(* The synth model costs one core; the shared-L2 control is a chip-level
   term. Whole-machine area = cores × (core - L2 share) + one L2. *)
let area_gates cfg ~ncores =
  let bd = Synth.Gates.breakdown cfg in
  let l2 = try List.assoc "l2 control" bd with Not_found -> 0.0 in
  let per_core = List.fold_left (fun a (n, g) -> if n = "l2 control" then a else a +. g) 0.0 bd in
  (float_of_int ncores *. per_core) +. l2

let float_field obj key =
  match Rjson.mem key obj with
  | Some v -> Rjson.float_of v
  | None -> None

(* Sum the L2 miss counters — "l2.misses" unbanked, "l2b<k>.misses" banked —
   and normalise per kilo-instruction ourselves, so the metric is bank-count
   independent. *)
let l2_mpki_of counters ~instrs =
  match counters with
  | Rjson.Obj fields ->
    let misses =
      List.fold_left
        (fun acc (k, v) ->
          let is_l2 =
            k = "l2.misses"
            || String.length k > 4
               && String.sub k 0 3 = "l2b"
               && Filename.check_suffix k ".misses"
          in
          if is_l2 then acc + Option.value (Rjson.int v) ~default:0 else acc)
        0 fields
    in
    if instrs = 0 then 0.0 else float_of_int misses *. 1000.0 /. float_of_int instrs
  | _ -> 0.0

let rob_occ_of derived ~ncores =
  let sum = ref 0.0 and n = ref 0 in
  for c = 0 to ncores - 1 do
    match float_field derived (Printf.sprintf "c%d.robOccAvg" c) with
    | Some v ->
      sum := !sum +. v;
      incr n
    | None -> ()
  done;
  if !n = 0 then 0.0 else !sum /. float_of_int !n

(* [on_cycle] threads the farm's cancel hook into the run. *)
let run ?(max_cycles = 40_000_000) ?on_cycle (space : Space.t) (point : Space.point)
    (w : Space.workload) =
  let pname = Space.name_of point in
  let ncores = Space.ncores_of space point in
  let cfg = Space.to_config ~base:space.Space.base point in
  let prog = find_kernel w.Space.wname ~harts:ncores ~scale:w.Space.scale in
  let m = Workloads.Machine.create ~ncores (Workloads.Machine.Out_of_order cfg) prog in
  let outcome = Workloads.Machine.run ~max_cycles ?on_cycle m in
  if outcome.Workloads.Machine.timed_out then
    fail "%s on %s: timed out after %d cycles" w.Space.wname pname max_cycles;
  let instrs = Workloads.Machine.instrs m in
  let stats_json =
    Obs.Stats_json.to_string
      ~meta:[ ("workload", w.Space.wname); ("point", pname) ]
      ~cycles:outcome.Workloads.Machine.cycles ~instrs ~stats:(Workloads.Machine.stats m) ()
    |> Rjson.of_string
  in
  let derived = Option.value (Rjson.mem "derived" stats_json) ~default:(Rjson.Obj []) in
  let counters = Option.value (Rjson.mem "counters" stats_json) ~default:(Rjson.Obj []) in
  let ipc =
    match float_field derived "ipc" with
    | Some v -> v
    | None ->
      if outcome.Workloads.Machine.cycles = 0 then 0.0
      else float_of_int instrs /. float_of_int outcome.Workloads.Machine.cycles
  in
  {
    workload = w.Space.wname;
    point = pname;
    ncores;
    ipc;
    l2_mpki = l2_mpki_of counters ~instrs;
    rob_occ_avg = rob_occ_of derived ~ncores;
    area_gates = area_gates cfg ~ncores;
    freq_ghz = Synth.Timing.max_freq_ghz cfg;
    cycles = outcome.Workloads.Machine.cycles;
    instrs;
  }

(* The farm job payload — and the shape [of_json] reads back when the
   pareto stage reassembles samples from sweep records. *)
let to_json s =
  Rjson.Obj
    [
      ("workload", Rjson.Str s.workload);
      ("point", Rjson.Str s.point);
      ("ncores", Rjson.Int s.ncores);
      ("ipc", Rjson.Float s.ipc);
      ("l2_mpki", Rjson.Float s.l2_mpki);
      ("rob_occ_avg", Rjson.Float s.rob_occ_avg);
      ("area_gates", Rjson.Float s.area_gates);
      ("freq_ghz", Rjson.Float s.freq_ghz);
      ("cycles", Rjson.Int s.cycles);
      ("instrs", Rjson.Int s.instrs);
    ]

let of_json j =
  let req_str k = match Rjson.get_str k j with Some s -> s | None -> fail "sample missing %s" k in
  let req_float k =
    match Rjson.mem k j with
    | Some v -> (
      match Rjson.float_of v with
      | Some f -> f
      | None -> fail "sample field %s not a number" k)
    | None -> fail "sample missing %s" k
  in
  let req_int k = match Rjson.get_int k j with Some n -> n | None -> fail "sample missing %s" k in
  {
    workload = req_str "workload";
    point = req_str "point";
    ncores = req_int "ncores";
    ipc = req_float "ipc";
    l2_mpki = req_float "l2_mpki";
    rob_occ_avg = req_float "rob_occ_avg";
    area_gates = req_float "area_gates";
    freq_ghz = req_float "freq_ghz";
    cycles = req_int "cycles";
    instrs = req_int "instrs";
  }
