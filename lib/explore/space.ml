(* The declarative config space: a point is a sparse set of overrides on a
   named base configuration, a manifest is a grid (cartesian product of
   axis values) plus explicit points, and expansion gives every point a
   stable dotted name derived from its overrides — the identity the farm
   journal, the Pareto front and the reference check all key on. *)

exception Bad_manifest of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_manifest s)) fmt

type tlb_kind = Blocking | Nonblocking

type point = {
  pname : string option;  (* explicit name; grid points are named from axes *)
  rob_size : int option;
  iq_size : int option;
  lq_size : int option;
  sq_size : int option;
  n_phys_regs : int option;  (* None = classic 32 + rob + 8 sizing *)
  predictor : Branch.Dir_pred.kind option;
  mesi : bool option;
  tlb : tlb_kind option;
  dtlb_entries : int option;
  ncores : int option;
  l2_banks : int option;
}

let empty_point =
  {
    pname = None;
    rob_size = None;
    iq_size = None;
    lq_size = None;
    sq_size = None;
    n_phys_regs = None;
    predictor = None;
    mesi = None;
    tlb = None;
    dtlb_entries = None;
    ncores = None;
    l2_banks = None;
  }

(* Axis names in canonical manifest/expansion order. *)
let axes =
  [
    "rob_size";
    "iq_size";
    "lq_size";
    "sq_size";
    "n_phys_regs";
    "predictor";
    "mesi";
    "tlb";
    "dtlb_entries";
    "ncores";
    "l2_banks";
  ]

type axis_value = I of int | B of bool | S of string

let set_axis p axis v =
  let int_of = function I n -> n | _ -> bad "axis %s wants an integer" axis in
  let bool_of = function B b -> b | _ -> bad "axis %s wants a boolean" axis in
  let str_of = function S s -> s | _ -> bad "axis %s wants a string" axis in
  match axis with
  | "rob_size" -> { p with rob_size = Some (int_of v) }
  | "iq_size" -> { p with iq_size = Some (int_of v) }
  | "lq_size" -> { p with lq_size = Some (int_of v) }
  | "sq_size" -> { p with sq_size = Some (int_of v) }
  | "n_phys_regs" -> { p with n_phys_regs = Some (int_of v) }
  | "predictor" -> (
    match str_of v with
    | "tournament" -> { p with predictor = Some Branch.Dir_pred.Tournament }
    | "gshare" -> { p with predictor = Some Branch.Dir_pred.Gshare }
    | "bimodal" -> { p with predictor = Some Branch.Dir_pred.Bimodal }
    | s -> bad "unknown predictor %S (tournament/gshare/bimodal)" s)
  | "mesi" -> { p with mesi = Some (bool_of v) }
  | "tlb" -> (
    match str_of v with
    | "blocking" -> { p with tlb = Some Blocking }
    | "nonblocking" -> { p with tlb = Some Nonblocking }
    | s -> bad "unknown tlb kind %S (blocking/nonblocking)" s)
  | "dtlb_entries" -> { p with dtlb_entries = Some (int_of v) }
  | "ncores" -> { p with ncores = Some (int_of v) }
  | "l2_banks" -> { p with l2_banks = Some (int_of v) }
  | a -> bad "unknown axis %S" a

(* Stable name component for one axis setting. *)
let component axis v =
  match (axis, v) with
  | "rob_size", I n -> Printf.sprintf "rob%d" n
  | "iq_size", I n -> Printf.sprintf "iq%d" n
  | "lq_size", I n -> Printf.sprintf "lq%d" n
  | "sq_size", I n -> Printf.sprintf "sq%d" n
  | "n_phys_regs", I n -> Printf.sprintf "prf%d" n
  | "predictor", S s -> s
  | "mesi", B true -> "mesi"
  | "mesi", B false -> "msi"
  | "tlb", S s -> "tlb-" ^ s
  | "dtlb_entries", I n -> Printf.sprintf "dtlb%d" n
  | "ncores", I n -> Printf.sprintf "c%d" n
  | "l2_banks", I n -> Printf.sprintf "banks%d" n
  | a, _ -> bad "axis %S cannot carry that value type" a

let name_of p = match p.pname with Some n -> n | None -> bad "unnamed point"

(* Apply a point to its base Ooo config. The machine-level core count rides
   along since it is not an [Ooo.Config.t] field. *)
let to_config ~base p =
  let get o d = Option.value o ~default:d in
  let rob_size = get p.rob_size base.Ooo.Config.rob_size in
  let cfg =
    {
      base with
      Ooo.Config.name = name_of p;
      rob_size;
      iq_size = get p.iq_size base.Ooo.Config.iq_size;
      lq_size = get p.lq_size base.Ooo.Config.lq_size;
      sq_size = get p.sq_size base.Ooo.Config.sq_size;
      n_phys_regs =
        (match p.n_phys_regs with
        | Some n ->
          if n < 40 then
            bad "point %s: n_phys_regs %d < 40 (needs headroom past the 32 architectural)"
              (name_of p) n;
          n
        | None -> Ooo.Config.phys_regs_for ~rob_size);
      predictor = get p.predictor base.Ooo.Config.predictor;
    }
  in
  let cfg =
    match p.mesi with
    | None -> cfg
    | Some mesi -> { cfg with Ooo.Config.mem = { cfg.Ooo.Config.mem with Mem.Mem_sys.mesi } }
  in
  let cfg =
    match p.l2_banks with
    | None -> cfg
    | Some b ->
      if b < 1 || b land (b - 1) <> 0 then
        bad "point %s: l2_banks %d not a power of two" (name_of p) b;
      { cfg with Ooo.Config.mem = { cfg.Ooo.Config.mem with Mem.Mem_sys.l2_banks = b } }
  in
  let cfg =
    match p.tlb with
    | None -> cfg
    | Some Blocking -> { cfg with Ooo.Config.tlb = Tlb.Tlb_sys.blocking_config }
    | Some Nonblocking -> { cfg with Ooo.Config.tlb = Tlb.Tlb_sys.nonblocking_config }
  in
  let cfg =
    match p.dtlb_entries with
    | None -> cfg
    | Some n ->
      { cfg with Ooo.Config.tlb = { cfg.Ooo.Config.tlb with Tlb.Tlb_sys.dtlb_entries = n } }
  in
  cfg

type workload = { wname : string; scale : int }

type t = {
  base_name : string;
  base : Ooo.Config.t;
  base_ncores : int;
  workloads : workload list;
  points : point list;  (* every one named; grid-expanded then explicit *)
  reference : string option;  (* point name that must sit on the front *)
}

let base_of_name = function
  | "b" -> (Ooo.Config.riscyoo_b, 1)
  | "cminus" -> (Ooo.Config.riscyoo_cminus, 1)
  | "tplus" -> (Ooo.Config.riscyoo_tplus, 1)
  | "tplus-rplus" -> (Ooo.Config.riscyoo_tplus_rplus, 1)
  | "quad-tso" -> (Ooo.Config.multicore Ooo.Config.TSO, 4)
  | "quad-wmm" -> (Ooo.Config.multicore Ooo.Config.WMM, 4)
  | "sixteen-tso" -> (Ooo.Config.multicore16 Ooo.Config.TSO, 16)
  | "sixteen-wmm" -> (Ooo.Config.multicore16 Ooo.Config.WMM, 16)
  | s -> bad "unknown base config %S" s

let ncores_of t p = Option.value p.ncores ~default:t.base_ncores

let axis_value_of_json axis = function
  | Rjson.Int n -> I n
  | Rjson.Bool b -> B b
  | Rjson.Str s -> S s
  | _ -> bad "axis %s: values must be ints, bools or strings" axis

(* Cartesian expansion of the grid, axes in canonical order; the point name
   is the dot-join of each axis component in that same order, so the same
   manifest always yields the same names regardless of JSON field order. *)
let expand_grid grid =
  let grid =
    List.filter_map
      (fun axis ->
        match List.assoc_opt axis grid with
        | None -> None
        | Some (Rjson.List vs) ->
          if vs = [] then bad "axis %s: empty value list" axis;
          Some (axis, List.map (axis_value_of_json axis) vs)
        | Some _ -> bad "axis %s: expected a list of values" axis)
      axes
  in
  (match List.find_opt (fun (a, _) -> not (List.mem a axes)) grid with
  | Some (a, _) -> bad "unknown axis %S" a
  | None -> ());
  let rec go acc = function
    | [] -> [ acc ]
    | (axis, vs) :: rest ->
      List.concat_map (fun v -> go ((axis, v) :: acc) rest) vs
  in
  if grid = [] then []
  else
    go [] grid
    |> List.map (fun settings ->
           let settings = List.rev settings in
           let p = List.fold_left (fun p (a, v) -> set_axis p a v) empty_point settings in
           let name = String.concat "." (List.map (fun (a, v) -> component a v) settings) in
           { p with pname = Some name })

let point_of_json = function
  | Rjson.Obj fields ->
    let p =
      List.fold_left
        (fun p (k, v) ->
          match k with
          | "name" -> (
            match v with
            | Rjson.Str s -> { p with pname = Some s }
            | _ -> bad "point name must be a string")
          | k -> set_axis p k (axis_value_of_json k v))
        empty_point fields
    in
    if p.pname = None then bad "explicit points need a \"name\"";
    p
  | _ -> bad "points must be objects"

let workload_of_json = function
  | Rjson.Obj fields as j ->
    let wname =
      match Rjson.mem "name" j with Some (Rjson.Str s) -> s | _ -> bad "workload needs a \"name\""
    in
    let scale = match List.assoc_opt "scale" fields with Some (Rjson.Int n) -> n | _ -> 1 in
    { wname; scale }
  | Rjson.Str s -> { wname = s; scale = 1 }
  | _ -> bad "workloads must be objects or names"

(* [check_schema] is on for standalone manifests and off when the same
   object rides inside a farm manifest sweep (which has its own schema). *)
let of_json ?(check_schema = true) j =
  (if check_schema then
     match Rjson.mem "schema" j with
     | Some (Rjson.Str "riscyoo-explore-manifest-v1") -> ()
     | Some (Rjson.Str s) -> bad "unsupported schema %S" s
     | _ -> bad "missing \"schema\": \"riscyoo-explore-manifest-v1\"");
  let base_name =
    match Rjson.mem "base" j with
    | Some (Rjson.Str s) -> s
    | Some _ -> bad "\"base\" must be a string"
    | None -> "b"
  in
  let base, base_ncores = base_of_name base_name in
  let workloads =
    match Rjson.mem "workloads" j with
    | Some (Rjson.List ws) when ws <> [] -> List.map workload_of_json ws
    | _ -> bad "manifest needs a non-empty \"workloads\" list"
  in
  let grid_points =
    match Rjson.mem "grid" j with
    | Some (Rjson.Obj fields) ->
      (match List.find_opt (fun (a, _) -> not (List.mem a axes)) fields with
      | Some (a, _) -> bad "unknown axis %S" a
      | None -> ());
      expand_grid fields
    | Some _ -> bad "\"grid\" must be an object of axis lists"
    | None -> []
  in
  let explicit =
    match Rjson.mem "points" j with
    | Some (Rjson.List ps) -> List.map point_of_json ps
    | Some _ -> bad "\"points\" must be a list"
    | None -> []
  in
  let points = grid_points @ explicit in
  if points = [] then bad "manifest expands to zero points (need a \"grid\" or \"points\")";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let n = name_of p in
      if Hashtbl.mem seen n then bad "duplicate point name %S" n;
      Hashtbl.add seen n ())
    points;
  let reference =
    match Rjson.mem "reference" j with
    | Some (Rjson.Str s) ->
      if not (Hashtbl.mem seen s) then bad "reference point %S is not in the expanded space" s;
      Some s
    | Some _ -> bad "\"reference\" must be a point name"
    | None -> None
  in
  { base_name; base; base_ncores; workloads; points; reference }

let of_string s = of_json (Rjson.of_string s)

let find_point t name = List.find_opt (fun p -> name_of p = name) t.points

(* Clamp every grid axis to its first [per_axis] values, at the JSON level
   so the clamped manifest re-expands with the same stable names — the CI
   smoke switch ([--quick]). Explicit points survive untouched; a reference
   that named a clamped-away grid point is dropped rather than failing. *)
let quick_json ?(per_axis = 2) j =
  let clamp vs = List.filteri (fun i _ -> i < per_axis) vs in
  match j with
  | Rjson.Obj fields ->
    let fields =
      List.map
        (function
          | "grid", Rjson.Obj grid ->
            ( "grid",
              Rjson.Obj
                (List.map
                   (function a, Rjson.List vs -> (a, Rjson.List (clamp vs)) | kv -> kv)
                   grid) )
          | kv -> kv)
        fields
    in
    let j' = Rjson.Obj fields in
    (match Rjson.mem "reference" j' with
    | Some (Rjson.Str _) -> (
      match try Some (of_json ~check_schema:false j') with Bad_manifest _ -> None with
      | Some _ -> j'
      | None -> Rjson.Obj (List.filter (fun (k, _) -> k <> "reference") fields))
    | _ -> j')
  | j -> j

let n_points t = List.length t.points
