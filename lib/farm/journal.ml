(* Crash-safe append-only result journal: riscyoo-farm-v1.

   One JSON object per line. The first line is a header binding the journal
   to a manifest digest; every subsequent line is a job record wrapped as

     {"v": <record>, "crc": "<md5 hex of the canonical serialization of v>"}

   Appends flush and fsync before returning, so a SIGKILL at any point
   leaves a valid prefix plus at most one torn final line. Recovery parses
   lines in order, verifies each checksum, and stops at the first torn or
   corrupt line — everything before it is trusted, everything after is
   ignored (and reported), which is exactly the resume semantics: finished
   jobs are skipped, the job whose record was torn re-runs. *)

let schema = "riscyoo-farm-v1"

type t = {
  oc : out_channel;
  mu : Mutex.t;
  mutable appended : int;
}

exception Corrupt of string

let crc_of v = Digest.to_hex (Digest.string (Json.to_string v))

let wrap v = Json.Obj [ ("v", v); ("crc", Json.Str (crc_of v)) ]

let unwrap line =
  match Json.of_string line with
  | exception Json.Parse_error m -> Error ("unparsable line: " ^ m)
  | j -> (
    match (Json.mem "v" j, Json.get_str "crc" j) with
    | Some v, Some crc -> if crc_of v = crc then Ok v else Error "checksum mismatch"
    | _ -> Error "missing v/crc")

let header ~manifest_digest =
  Json.Obj [ ("schema", Json.Str schema); ("manifest", Json.Str manifest_digest) ]

let append_line t v =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      output_string t.oc (Json.to_string (wrap v));
      output_char t.oc '\n';
      flush t.oc;
      (try Unix.fsync (Unix.descr_of_out_channel t.oc) with Unix.Unix_error _ -> ());
      t.appended <- t.appended + 1)

let create path ~manifest_digest =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path in
  let t = { oc; mu = Mutex.create (); appended = 0 } in
  append_line t (header ~manifest_digest);
  t

let append t record = append_line t record

let close t =
  Mutex.lock t.mu;
  close_out_noerr t.oc;
  Mutex.unlock t.mu

let appended t = t.appended

type recovery = {
  records : Json.t list; (* good records, journal order, header excluded *)
  bad : string list; (* torn/corrupt lines skipped (diagnostics) *)
}

(* Read a journal back. Raises [Corrupt] when the file exists but its header
   is not a valid riscyoo-farm-v1 header for [manifest_digest] — resuming
   someone else's journal is an error. A torn or corrupt record line is
   not: each line carries its own checksum, so bad lines are skipped
   individually and every intact record (before or after the tear — a
   resumed journal keeps appending past it) is recovered. Later records
   shadow earlier ones for the same job, so re-runs win. *)
let recover path ~manifest_digest =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let first =
        match input_line ic with
        | exception End_of_file -> raise (Corrupt "empty journal")
        | l -> l
      in
      (match unwrap first with
      | Ok h ->
        if Json.get_str "schema" h <> Some schema then
          raise (Corrupt "journal header has wrong schema");
        (match Json.get_str "manifest" h with
        | Some d when d = manifest_digest -> ()
        | Some _ -> raise (Corrupt "journal belongs to a different manifest")
        | None -> raise (Corrupt "journal header has no manifest digest"))
      | Error e -> raise (Corrupt ("bad journal header: " ^ e)));
      let records = ref [] in
      let bad = ref [] in
      let rec go n =
        match input_line ic with
        | exception End_of_file -> ()
        | "" -> go (n + 1) (* resume padding, below *)
        | line ->
          (match unwrap line with
          | Ok v -> records := v :: !records
          | Error e -> bad := Printf.sprintf "line %d: %s" n e :: !bad);
          go (n + 1)
      in
      go 2;
      { records = List.rev !records; bad = List.rev !bad })

(* Reopen an existing journal for appending (resume path). A SIGKILLed
   predecessor may have left a torn final line with no newline; starting
   the continuation with one confines the damage to that line. Recovery
   skips the blank. *)
let reopen path =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644 path in
  output_char oc '\n';
  { oc; mu = Mutex.create (); appended = 0 }
