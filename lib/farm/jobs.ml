(* Manifest-driven job production: a riscyoo-farm-manifest-v1 JSON names
   sweeps; each sweep expands into independent, individually-replayable
   {!Sweep.job}s.

   Three sweep types:
   - [litmus]: the (tests x models x seeds) product, one jobs:1 machine
     per seed, via {!Litmus.Run.farm_jobs}. With [stagger:false] the
     warm-fork cache restores one cycle-0 snapshot per domain instead of
     rebuilding the machine per seed.
   - [fault]: the trials of a seeded bit-flip campaign on a workload
     kernel, each trial's RNG independent ({!Verif.Fault.farm_trial}).
     The golden reference and injection horizon are computed once per
     domain (deterministic, so every domain agrees) and cached.
   - [poison]: synthetic jobs for exercising the farm's own fault
     tolerance — selected indices fail deterministically after N
     synthetic cycles, hang until cancelled, or fail once then succeed. *)

let spf = Printf.sprintf

type litmus_sweep = {
  ls_tests : Litmus.Test.t list;
  ls_models : Ooo.Config.mem_model list;
  ls_seeds : int;
  ls_stagger : bool;
  ls_warm : bool;
  ls_obligations : bool;  (* arm the interface-obligation monitors per run *)
}

type fault_sweep = {
  fs_kernel : string;
  fs_config : string;
  fs_cores : int;
  fs_scale : int;
  fs_trials : int;
  fs_seed : int;
}

type poison_sweep = {
  ps_jobs : int;
  ps_cycles : int;  (* synthetic cycles of busy work per job *)
  ps_fail : int list;  (* indices that fail deterministically -> quarantine *)
  ps_hang : int list;  (* indices that spin until cancelled -> timeout *)
  ps_flaky : int list;  (* indices that fail once, then succeed -> retry *)
}

type sweep =
  | Litmus of litmus_sweep
  | Fault of fault_sweep
  | Poison of poison_sweep
  | Explore of Explore.Space.t

type manifest = { sweeps : sweep list }

let schema = "riscyoo-farm-manifest-v1"

(* ------------------------------ parsing -------------------------------- *)

let bad fmt = Printf.ksprintf (fun s -> raise (Json.Parse_error ("manifest: " ^ s))) fmt

let str_of v = match Json.str v with Some s -> s | None -> bad "expected a string"
let int_of v = match Json.int v with Some i -> i | None -> bad "expected an integer"
let opt_int obj key d = match Json.get_int key obj with Some v -> v | None -> d
let opt_bool obj key d = match Json.get_bool key obj with Some v -> v | None -> d
let opt_str obj key d = match Json.get_str key obj with Some v -> v | None -> d

let opt_int_list obj key =
  match Json.get_list key obj with Some l -> List.map int_of l | None -> []

let model_of_string s =
  match String.lowercase_ascii s with
  | "tso" -> Ooo.Config.TSO
  | "wmm" -> Ooo.Config.WMM
  | m -> bad "unknown memory model %S (want tso or wmm)" m

let test_of_string n =
  match Litmus.Test.find n with
  | Some t -> t
  | None ->
    bad "unknown litmus test %S (have: %s)" n
      (String.concat " " (List.map (fun (t : Litmus.Test.t) -> t.name) Litmus.Test.all))

let parse_sweep j =
  match Json.get_str "type" j with
  | None -> bad "sweep entry lacks a \"type\""
  | Some (("litmus" | "mcheck") as ty) ->
    (* "mcheck" is the litmus product with the interface-obligation
       monitors armed by default — one job id namespace per run mode *)
    let ls_tests =
      match Json.mem "tests" j with
      | None | Some (Json.Str "all") -> Litmus.Test.all
      | Some (Json.List l) -> List.map (fun v -> test_of_string (str_of v)) l
      | Some v -> [ test_of_string (str_of v) ]
    in
    let ls_models =
      match Json.mem "models" j with
      | None -> [ Ooo.Config.TSO; Ooo.Config.WMM ]
      | Some (Json.List l) -> List.map (fun v -> model_of_string (str_of v)) l
      | Some v -> [ model_of_string (str_of v) ]
    in
    Litmus
      {
        ls_tests;
        ls_models;
        ls_seeds = opt_int j "seeds" 20;
        ls_stagger = opt_bool j "stagger" true;
        ls_warm = opt_bool j "warm" false;
        ls_obligations = opt_bool j "obligations" (ty = "mcheck");
      }
  | Some "fault" ->
    Fault
      {
        fs_kernel = opt_str j "kernel" "gcc";
        fs_config = opt_str j "config" "b";
        fs_cores = opt_int j "cores" 1;
        fs_scale = opt_int j "scale" 1;
        fs_trials = opt_int j "trials" 32;
        fs_seed = opt_int j "seed" 0xFA17;
      }
  | Some "poison" ->
    Poison
      {
        ps_jobs = opt_int j "jobs" 10;
        ps_cycles = opt_int j "cycles" 1000;
        ps_fail = opt_int_list j "fail";
        ps_hang = opt_int_list j "hang";
        ps_flaky = opt_int_list j "flaky";
      }
  | Some "explore" -> (
    (* the sweep object doubles as an explore manifest body: base, grid,
       points, workloads, reference — see {!Explore.Space} *)
    try Explore (Explore.Space.of_json ~check_schema:false j)
    with Explore.Space.Bad_manifest e -> bad "explore sweep: %s" e)
  | Some ty -> bad "unknown sweep type %S (want litmus, mcheck, fault, poison or explore)" ty

let of_json j =
  (match Json.mem "schema" j with
  | Some (Json.Str s) when s = schema -> ()
  | Some (Json.Str s) -> bad "schema %S, want %S" s schema
  | _ -> bad "missing \"schema\" (want %S)" schema);
  match Json.mem "sweeps" j with
  | Some (Json.List l) -> { sweeps = List.map parse_sweep l }
  | _ -> bad "missing \"sweeps\" array"

let of_string s = of_json (Json.of_string s)

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s

(* ---------------------------- litmus jobs ------------------------------ *)

let model_tag m = match m with Ooo.Config.TSO -> "tso" | Ooo.Config.WMM -> "wmm"

let cls_tag = Litmus.Run.cls_to_string

let litmus_job ~replay_of ~warm (fj : Litmus.Run.farm_job) =
  let id = Litmus.Run.farm_job_id fj in
  {
    Sweep.id;
    kind = "litmus";
    spec =
      [
        ("test", Json.Str fj.fj_test.Litmus.Test.name);
        ("model", Json.Str (model_tag fj.fj_model));
        ("seed", Json.Int fj.fj_seed);
        ("stagger", Json.Bool fj.fj_stagger);
        ("obligations", Json.Bool fj.fj_obligations);
      ];
    replay = replay_of id;
    run =
      (fun ~should_stop ->
        let on_cycle = Sweep.cancel_hook ~should_stop in
        let o, cls, allowed, obs = Litmus.Run.farm_run ~on_cycle ~warm fj in
        Json.Obj
          ([
             ("outcome", Json.List (Array.to_list (Array.map (fun v -> Json.Int v) o)));
             ("outcome_str", Json.Str (Litmus.Test.outcome_to_string fj.fj_test o));
             ("class", Json.Str (cls_tag cls));
             ("allowed", Json.Bool allowed);
           ]
          @
          if obs = [] then []
          else [ ("obligations", Json.Obj (List.map (fun (n, c) -> (n, Json.Int c)) obs)) ]));
  }

(* ----------------------------- fault jobs ------------------------------ *)

let config_of_name = function
  | "b" -> Ooo.Config.riscyoo_b
  | "cminus" -> Ooo.Config.riscyoo_cminus
  | "tplus" -> Ooo.Config.riscyoo_tplus
  | "tplus-rplus" -> Ooo.Config.riscyoo_tplus_rplus
  | "quad-tso" -> Ooo.Config.multicore Ooo.Config.TSO
  | "quad-wmm" -> Ooo.Config.multicore Ooo.Config.WMM
  | name -> bad "unknown fault config %S" name

(* The campaign prologue — golden reference exits and the fault-free
   cycle count that bounds the injection window — is deterministic, so
   each worker domain computes it once and caches it; every domain
   lands on the same horizon, keeping trial RNG derivation identical
   no matter which domain runs a trial. *)
type fault_env = {
  harness : Workloads.Machine.t Verif.Fault.harness;
  horizon : int;
}

let fault_env_cache : (string, fault_env) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let fault_env fs =
  let key = spf "%s/%s/c%d/x%d" fs.fs_kernel fs.fs_config fs.fs_cores fs.fs_scale in
  let cache = Domain.DLS.get fault_env_cache in
  match Hashtbl.find_opt cache key with
  | Some e -> e
  | None ->
    let module M = Workloads.Machine in
    let prog = Workloads.Spec_kernels.find fs.fs_kernel ~scale:fs.fs_scale in
    let kind = M.Out_of_order (config_of_name fs.fs_config) in
    let gm = M.create ~ncores:fs.fs_cores M.Golden_only prog in
    let go = M.run gm in
    if go.M.timed_out then failwith "fault sweep: golden reference run timed out";
    let clean = M.create ~ncores:fs.fs_cores kind prog in
    let co = M.run clean in
    if co.M.timed_out then failwith "fault sweep: fault-free run timed out";
    let horizon = co.M.cycles in
    let wd_limit = 10_000 in
    let e =
      {
        harness =
          {
            Verif.Fault.build =
              (fun () ->
                M.create ~ncores:fs.fs_cores ~cosim:(fs.fs_cores = 1) ~watchdog:wd_limit
                  ~invariants:true kind prog);
            exec =
              (fun m ~on_cycle ->
                let o = M.run ~max_cycles:((2 * horizon) + (10 * wd_limit)) ~on_cycle m in
                if o.M.timed_out then `Timeout o.M.cycles else `Exit o.M.exits);
            reference = go.M.exits;
          };
        horizon;
      }
    in
    Hashtbl.add cache key e;
    e

let trial_json (t : Verif.Fault.trial) =
  let outcome, detail =
    match t.outcome with
    | Verif.Fault.Masked -> ("masked", "")
    | Verif.Fault.Detected_divergence d -> ("divergence", d)
    | Verif.Fault.Detected_hang d -> ("hang", d)
  in
  Json.Obj
    [
      ("site", Json.Str t.site);
      ("bit", Json.Int t.bit);
      ("at_cycle", Json.Int t.at_cycle);
      ("applied", Json.Bool t.applied);
      ("outcome", Json.Str outcome);
      ("detail", Json.Str detail);
      ("diagnosed", Json.Bool t.diagnosed);
    ]

let fault_job ~replay_of fs id =
  let job_id =
    spf "fault/%s/%s/c%d/s%d/trial%04d" fs.fs_kernel fs.fs_config fs.fs_cores fs.fs_seed id
  in
  {
    Sweep.id = job_id;
    kind = "fault";
    spec =
      [
        ("kernel", Json.Str fs.fs_kernel);
        ("config", Json.Str fs.fs_config);
        ("cores", Json.Int fs.fs_cores);
        ("seed", Json.Int fs.fs_seed);
        ("trial", Json.Int id);
      ];
    replay = replay_of job_id;
    run =
      (fun ~should_stop ->
        let e = fault_env fs in
        let on_cycle = Sweep.cancel_hook ~should_stop in
        let t =
          Verif.Fault.farm_trial ~on_cycle e.harness ~seed:fs.fs_seed ~trials:fs.fs_trials
            ~horizon:e.horizon ~id
        in
        trial_json t);
  }

(* ----------------------------- poison jobs ----------------------------- *)

let spin ~should_stop cycles =
  for c = 0 to cycles - 1 do
    Sweep.cancel_hook ~should_stop c;
    ignore (Sys.opaque_identity (c * c))
  done

let poison_job ~replay_of ps idx =
  let id = spf "poison/job%04d" idx in
  let mode =
    if List.mem idx ps.ps_fail then `Fail
    else if List.mem idx ps.ps_hang then `Hang
    else if List.mem idx ps.ps_flaky then `Flaky (Atomic.make 0)
    else `Ok
  in
  let mode_tag =
    match mode with `Fail -> "fail" | `Hang -> "hang" | `Flaky _ -> "flaky" | `Ok -> "ok"
  in
  {
    Sweep.id;
    kind = "poison";
    spec = [ ("mode", Json.Str mode_tag); ("cycles", Json.Int ps.ps_cycles) ];
    replay = replay_of id;
    run =
      (fun ~should_stop ->
        let ok () = Json.Obj [ ("value", Json.Int (idx * 7919)) ] in
        match mode with
        | `Ok ->
          spin ~should_stop ps.ps_cycles;
          ok ()
        | `Fail ->
          spin ~should_stop (ps.ps_cycles / 2);
          failwith (spf "poisoned: injected failure after %d cycles" (ps.ps_cycles / 2))
        | `Hang ->
          let c = ref 0 in
          while true do
            if should_stop () then raise Sweep.Cancelled;
            Unix.sleepf 0.001;
            incr c
          done;
          ok ()
        | `Flaky attempts ->
          if Atomic.fetch_and_add attempts 1 = 0 then
            failwith "poisoned: transient failure (first attempt only)"
          else begin
            spin ~should_stop ps.ps_cycles;
            ok ()
          end);
  }

(* ---------------------------- explore jobs ----------------------------- *)

let explore_job ~replay_of (space : Explore.Space.t) (w : Explore.Space.workload)
    (p : Explore.Space.point) =
  let pname = Explore.Space.name_of p in
  let id = spf "explore/%s/x%d/%s" w.Explore.Space.wname w.Explore.Space.scale pname in
  {
    Sweep.id;
    kind = "explore";
    spec =
      [
        ("workload", Json.Str w.Explore.Space.wname);
        ("scale", Json.Int w.Explore.Space.scale);
        ("base", Json.Str space.Explore.Space.base_name);
        ("point", Json.Str pname);
      ];
    replay = replay_of id;
    run =
      (fun ~should_stop ->
        let on_cycle = Sweep.cancel_hook ~should_stop in
        Explore.Measure.to_json (Explore.Measure.run ~on_cycle space p w));
  }

(* ------------------------------ expansion ------------------------------ *)

let jobs ?(replay_cmd = "farm") ?(manifest_path = "manifest.json") m =
  let replay_of id = spf "riscyoo %s %s --only %s" replay_cmd manifest_path id in
  List.concat_map
    (fun sweep ->
      match sweep with
      | Litmus ls ->
        Litmus.Run.farm_jobs ~stagger:ls.ls_stagger ~obligations:ls.ls_obligations
          ~seeds:ls.ls_seeds ~models:ls.ls_models ls.ls_tests
        |> List.map (litmus_job ~replay_of ~warm:ls.ls_warm)
      | Fault fs -> List.init fs.fs_trials (fault_job ~replay_of fs)
      | Poison ps -> List.init ps.ps_jobs (poison_job ~replay_of ps)
      | Explore space ->
        List.concat_map
          (fun w -> List.map (explore_job ~replay_of space w) space.Explore.Space.points)
          space.Explore.Space.workloads)
    m.sweeps

(* -------------------- litmus histogram reconstruction ------------------ *)

(* Rebuild riscyoo-litmus-v1 sweep reports from the farm's litmus records
   so nightly trend tracking can diff a farm run against the classic
   [riscyoo litmus --hist] artifact. Quarantined litmus jobs surface as
   harness errors; non-litmus records are ignored. *)
let litmus_reports (o : Sweep.outcome) =
  let groups : (string * string, Sweep.record list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (r : Sweep.record) ->
      if r.kind = "litmus" then begin
        let spec = Json.Obj r.spec in
        let test = match Json.get_str "test" spec with Some s -> s | None -> bad "litmus record lacks a test" in
        let model = match Json.get_str "model" spec with Some s -> s | None -> bad "litmus record lacks a model" in
        let key = (test, model) in
        match Hashtbl.find_opt groups key with
        | Some l -> l := r :: !l
        | None ->
          Hashtbl.add groups key (ref [ r ]);
          order := key :: !order
      end)
    o.records;
  List.rev_map
    (fun ((test_name, model_name) as key) ->
      let records = List.rev !(Hashtbl.find groups key) in
      let test = test_of_string test_name in
      let model = model_of_string model_name in
      let hist : (int array * Litmus.Run.cls * int ref) list ref = ref [] in
      let forbidden = ref [] in
      let errors = ref [] in
      let relaxed = ref false and wmm_only = ref false in
      let ob_events : (string, int) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (r : Sweep.record) ->
          match r.status with
          | Sweep.Quarantined { error; _ } ->
            errors := Printf.sprintf "%s: %s" r.job_id error :: !errors
          | Sweep.Finished v ->
            let o =
              match Json.get_list "outcome" v with
              | Some l -> Array.of_list (List.map int_of l)
              | None -> bad "litmus record lacks an outcome"
            in
            let cls = Litmus.Run.classify_outcome test o in
            (if cls <> Litmus.Run.In_sc then relaxed := true);
            (if cls = Litmus.Run.Wmm_relaxed || cls = Litmus.Run.Forbidden then wmm_only := true);
            (match List.find_opt (fun (o', _, _) -> o' = o) !hist with
            | Some (_, _, n) -> incr n
            | None -> hist := (o, cls, ref 1) :: !hist);
            (match Json.mem "obligations" v with
            | Some (Json.Obj fields) ->
              List.iter
                (fun (n, c) ->
                  let c = int_of c in
                  Hashtbl.replace ob_events n
                    (c + Option.value ~default:0 (Hashtbl.find_opt ob_events n)))
                fields
            | _ -> ());
            if cls = Litmus.Run.Forbidden then begin
              let seed = opt_int (Json.Obj r.spec) "seed" 0 in
              forbidden := (o, seed, 1, None) :: !forbidden
            end)
        records;
      let hist =
        List.map (fun (o, c, n) -> (o, c, !n)) !hist
        |> List.sort (fun (_, _, a) (_, _, b) -> compare (b : int) a)
      in
      {
        Litmus.Run.test;
        dut = Litmus.Run.Dut_ooo;
        model;
        total_runs = List.length records;
        hist;
        forbidden = List.rev !forbidden;
        mismatches = [];
        errors = List.rev !errors;
        relaxed_seen = !relaxed;
        wmm_only_seen = !wmm_only;
        (* the per-seed records don't carry search statistics, but the
           enumeration is a pure function of (test, model) — recompute *)
        enum =
          List.map
            (fun m -> (m, snd (Litmus.Ref_model.allowed_stats test ~model:m)))
            [ Litmus.Ref_model.SC; Litmus.Ref_model.TSO; Litmus.Ref_model.WMM ];
        obligation_events =
          Hashtbl.fold (fun n c acc -> (n, c) :: acc) ob_events []
          |> List.sort compare;
      })
    !order

let litmus_json ~seeds o =
  match litmus_reports o with
  | [] -> None
  | reports -> Some (Litmus.Run.reports_to_json ~seeds reports)

(* ---------------------- pareto-front reconstruction -------------------- *)

let explore_samples (o : Sweep.outcome) =
  List.filter_map
    (fun (r : Sweep.record) ->
      match (r.kind, r.status) with
      | "explore", Sweep.Finished v -> Some (Explore.Measure.of_json v)
      | _ -> None)
    o.records

let explore_reference m =
  List.find_map
    (function Explore s -> s.Explore.Space.reference | _ -> None)
    m.sweeps

let explore_json ?reference o =
  match explore_samples o with
  | [] -> None
  | samples -> Some (Explore.Pareto.to_json ?reference samples)
