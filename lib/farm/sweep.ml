(* The crash-safe simulation farm.

   A sweep is thousands of independent jobs — litmus seeds, fault trials,
   perf configs — drained work-stealing style over the same worker-domain
   pool the partitioned simulator uses ([Cmd.Sim.pool_run]): the main
   domain participates, pool workers steal, and each job builds and runs
   its machines at [jobs:1] (the snapshot/injection/invariant registries
   are all domain-local, so concurrent builds don't interfere).

   Fault tolerance:
   - a monitor thread enforces a per-attempt wall-clock timeout by setting
     the job's cancel flag, which the job polls from its cycle hook;
   - failed or hung jobs are retried in later rounds with exponential
     backoff between rounds, up to [max_retries];
   - jobs still failing then are quarantined: journaled with the exact
     error and a deterministic replay command instead of poisoning the
     sweep;
   - every terminal record (ok or quarantined) is appended to a
     checksummed, fsync'd journal, so a SIGKILL at any point loses at most
     the in-flight jobs — [resume:true] recovers the journal and re-runs
     only the jobs without a record.

   Canonical results ([results_json]) are sorted by job id and carry no
   volatile fields, so a resumed sweep's results are byte-identical to an
   uninterrupted one. *)

type job = {
  id : string; (* unique, stable: the journal key *)
  kind : string;
  spec : (string * Json.t) list; (* replay parameters, echoed in results *)
  replay : string; (* deterministic replay command *)
  run : should_stop:(unit -> bool) -> Json.t;
}

type config = {
  workers : int; (* pool helper domains (total parallelism = workers + 1) *)
  timeout_s : float; (* per-attempt wall clock; 0 = no timeout *)
  max_retries : int; (* retry rounds after the first attempt *)
  backoff_s : float; (* round r waits backoff_s * 2^(r-1), capped *)
}

let default_config = { workers = 3; timeout_s = 60.; max_retries = 2; backoff_s = 0.05 }

(* Raised inside a job when its cancel flag fires (timeout or shutdown). *)
exception Cancelled

type status = Finished of Json.t | Quarantined of { error : string; replay : string }

type record = {
  job_id : string;
  kind : string;
  spec : (string * Json.t) list;
  status : status;
  attempts : int;
  resumed : bool; (* recovered from the journal, not run this time *)
}

type outcome = {
  records : record list; (* sorted by job id *)
  n_ok : int;
  n_quarantined : int;
  n_resumed : int;
  n_unfinished : int; (* interrupted before every job got a record *)
  interrupted : bool;
}

(* ------------------------------------------------------------------ *)
(* Journal records                                                    *)
(* ------------------------------------------------------------------ *)

let record_to_json r =
  let base =
    [
      ("job", Json.Str r.job_id);
      ("kind", Json.Str r.kind);
      ("attempts", Json.Int r.attempts);
    ]
  in
  match r.status with
  | Finished result -> Json.Obj (base @ [ ("status", Json.Str "ok"); ("result", result) ])
  | Quarantined { error; replay } ->
    Json.Obj
      (base
      @ [
          ("status", Json.Str "quarantined");
          ("error", Json.Str error);
          ("replay", Json.Str replay);
        ])

let record_of_json j =
  match (Json.get_str "job" j, Json.get_str "kind" j, Json.get_str "status" j) with
  | Some job_id, Some kind, Some status -> (
    let attempts = Option.value ~default:1 (Json.get_int "attempts" j) in
    match status with
    | "ok" ->
      Option.map
        (fun result ->
          { job_id; kind; spec = []; status = Finished result; attempts; resumed = true })
        (Json.mem "result" j)
    | "quarantined" ->
      let error = Option.value ~default:"?" (Json.get_str "error" j) in
      let replay = Option.value ~default:"" (Json.get_str "replay" j) in
      Some { job_id; kind; spec = []; status = Quarantined { error; replay }; attempts; resumed = true }
    | _ -> None)
  | _ -> None

(* The manifest digest binds a journal to the job set it was sweeping:
   resuming against a different manifest is refused. Job ids are the
   identity — they encode every parameter of the job. *)
let manifest_digest jobs =
  Digest.to_hex (Digest.string (String.concat "\n" (List.map (fun j -> j.id) jobs)))

(* ------------------------------------------------------------------ *)
(* Execution                                                          *)
(* ------------------------------------------------------------------ *)

type slot = {
  sj : job;
  cancel : bool Atomic.t;
  deadline : float Atomic.t; (* 0. = not running; monitor thread reads *)
  mutable attempts : int;
  mutable last_error : string;
  mutable state : [ `Pending | `Done | `Skipped ];
}

let run ?journal ?(resume = false) ?(should_stop = fun () -> false) ?abort_after
    ?(log = fun _ -> ()) config jobs =
  (* job ids are the journal key and the resume identity: enforce uniqueness *)
  let seen = Hashtbl.create 97 in
  List.iter
    (fun j ->
      if Hashtbl.mem seen j.id then invalid_arg ("Farm.Sweep.run: duplicate job id " ^ j.id);
      Hashtbl.add seen j.id ())
    jobs;
  let digest = manifest_digest jobs in
  (* --- resume: recover finished jobs from the journal --- *)
  let recovered = Hashtbl.create 97 in
  (match journal with
  | Some path when resume && Sys.file_exists path ->
    let r = Journal.recover path ~manifest_digest:digest in
    List.iter
      (fun v ->
        match record_of_json v with
        | Some rec_ when Hashtbl.mem seen rec_.job_id ->
          Hashtbl.replace recovered rec_.job_id rec_ (* later records shadow earlier *)
        | _ -> ())
      r.records;
    List.iter (fun msg -> log (Printf.sprintf "journal: skipped %s" msg)) r.bad;
    log
      (Printf.sprintf "resume: %d of %d jobs already journaled" (Hashtbl.length recovered)
         (List.length jobs))
  | _ -> ());
  let jnl =
    match journal with
    | None -> None
    | Some path ->
      if resume && Sys.file_exists path then Some (Journal.reopen path)
      else Some (Journal.create path ~manifest_digest:digest)
  in
  (* --- abort hook (tests): stop scheduling after N appends, as if killed --- *)
  let aborted = Atomic.make false in
  let appended = Atomic.make 0 in
  let journal_record r =
    (match jnl with Some j -> Journal.append j (record_to_json r) | None -> ());
    let n = Atomic.fetch_and_add appended 1 + 1 in
    match abort_after with Some cap when n >= cap -> Atomic.set aborted true | _ -> ()
  in
  let stopping () = Atomic.get aborted || should_stop () in
  (* --- slots for the jobs that still need to run --- *)
  let slots =
    jobs
    |> List.filter (fun j -> not (Hashtbl.mem recovered j.id))
    |> List.map (fun j ->
           {
             sj = j;
             cancel = Atomic.make false;
             deadline = Atomic.make 0.;
             attempts = 0;
             last_error = "";
             state = `Pending;
           })
    |> Array.of_list
  in
  let done_records = ref [] in
  let done_mu = Mutex.create () in
  let finish slot r =
    slot.state <- `Done;
    Mutex.lock done_mu;
    done_records := r :: !done_records;
    Mutex.unlock done_mu;
    journal_record r
  in
  (* --- monitor thread: wall-clock timeouts --- *)
  let farm_live = Atomic.make true in
  let monitor =
    if config.timeout_s > 0. && Array.length slots > 0 then
      Some
        (Thread.create
           (fun () ->
             while Atomic.get farm_live do
               let now = Unix.gettimeofday () in
               Array.iter
                 (fun s ->
                   let d = Atomic.get s.deadline in
                   if d > 0. && now > d then Atomic.set s.cancel true)
                 slots;
               Thread.delay 0.02
             done)
           ())
    else None
  in
  let attempt slot =
    if slot.state = `Pending then begin
      if stopping () then slot.state <- `Skipped
      else begin
        slot.attempts <- slot.attempts + 1;
        Atomic.set slot.cancel false;
        if config.timeout_s > 0. then
          Atomic.set slot.deadline (Unix.gettimeofday () +. config.timeout_s);
        let stop_this () = Atomic.get slot.cancel || stopping () in
        (match slot.sj.run ~should_stop:stop_this with
        | result ->
          finish slot
            {
              job_id = slot.sj.id;
              kind = slot.sj.kind;
              spec = slot.sj.spec;
              status = Finished result;
              attempts = slot.attempts;
              resumed = false;
            }
        | exception Cancelled ->
          if stopping () then slot.state <- `Skipped
            (* shutdown, not the job's fault: leave it unfinished for resume *)
          else
            slot.last_error <-
              Printf.sprintf "timed out (wall-clock limit %gs)" config.timeout_s
        | exception e -> slot.last_error <- Printexc.to_string e);
        Atomic.set slot.deadline 0.
      end
    end
  in
  (* --- retry rounds with exponential backoff --- *)
  let round = ref 0 in
  let pending () =
    Array.exists (fun s -> s.state = `Pending) slots && not (stopping ())
  in
  while !round <= config.max_retries && pending () do
    if !round > 0 then begin
      let wait =
        Float.min 5. (config.backoff_s *. (2. ** float_of_int (!round - 1)))
      in
      log
        (Printf.sprintf "retry round %d: %d jobs, backoff %gs" !round
           (Array.fold_left (fun n s -> if s.state = `Pending then n + 1 else n) 0 slots)
           wait);
      Thread.delay wait
    end;
    let tasks =
      Array.to_seq slots
      |> Seq.filter (fun s -> s.state = `Pending)
      |> Seq.map (fun s () -> attempt s)
      |> Array.of_seq
    in
    Cmd.Sim.pool_run ~helpers:(max 0 config.workers) tasks;
    incr round
  done;
  (* --- quarantine what still fails (not what was merely skipped) --- *)
  Array.iter
    (fun s ->
      if s.state = `Pending && not (stopping ()) then
        finish s
          {
            job_id = s.sj.id;
            kind = s.sj.kind;
            spec = s.sj.spec;
            status = Quarantined { error = s.last_error; replay = s.sj.replay };
            attempts = s.attempts;
            resumed = false;
          })
    slots;
  Atomic.set farm_live false;
  Option.iter Thread.join monitor;
  (match jnl with Some j -> Journal.close j | None -> ());
  (* --- assemble: recovered + fresh, sorted by job id --- *)
  let fresh = !done_records in
  let all =
    Hashtbl.fold (fun _ r acc -> r :: acc) recovered []
    @ fresh
    |> List.map (fun r ->
           (* re-attach specs from the live job list (journal doesn't carry them) *)
           match List.find_opt (fun j -> j.id = r.job_id) jobs with
           | Some j -> { r with spec = j.spec }
           | None -> r)
    |> List.sort (fun a b -> compare a.job_id b.job_id)
  in
  let count f = List.length (List.filter f all) in
  let interrupted = stopping () in
  {
    records = all;
    n_ok = count (fun r -> match r.status with Finished _ -> true | _ -> false);
    n_quarantined = count (fun r -> match r.status with Quarantined _ -> true | _ -> false);
    n_resumed = count (fun r -> r.resumed);
    n_unfinished = List.length jobs - List.length all;
    interrupted;
  }

(* ------------------------------------------------------------------ *)
(* Canonical results                                                  *)
(* ------------------------------------------------------------------ *)

(* Deterministic by construction: sorted by job id, and no volatile fields
   (attempt counts, timings, resume provenance) — so an interrupted sweep,
   resumed to completion, produces the same bytes as an uninterrupted one. *)
let results_json o =
  let job_json r =
    let base = [ ("id", Json.Str r.job_id); ("kind", Json.Str r.kind) ] in
    let spec = match r.spec with [] -> [] | s -> [ ("spec", Json.Obj s) ] in
    match r.status with
    | Finished result ->
      Json.Obj (base @ spec @ [ ("status", Json.Str "ok"); ("result", result) ])
    | Quarantined { error; replay } ->
      Json.Obj
        (base @ spec
        @ [
            ("status", Json.Str "quarantined");
            ("error", Json.Str error);
            ("replay", Json.Str replay);
          ])
  in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str "riscyoo-farm-results-v1");
         ("jobs", Json.Int (List.length o.records));
         ("ok", Json.Int o.n_ok);
         ("quarantined", Json.Int o.n_quarantined);
         ("results", Json.List (List.map job_json o.records));
       ])
  ^ "\n"

let quarantined o =
  List.filter_map
    (fun r ->
      match r.status with
      | Quarantined { error; replay } -> Some (r.job_id, error, replay)
      | Finished _ -> None)
    o.records

(* ------------------------------------------------------------------ *)
(* Cycle-hook adapter                                                 *)
(* ------------------------------------------------------------------ *)

(* Cheap cancellation polling for machine-based jobs: check the flag every
   256 cycles from the machine's [on_cycle] hook and raise out of the run. *)
let cancel_hook ~should_stop =
  fun c -> if c land 255 = 0 && should_stop () then raise Cancelled
