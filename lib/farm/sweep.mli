(** The crash-safe simulation farm: a work-stealing sweep of independent
    simulation jobs over the shared worker-domain pool, with per-job
    wall-clock timeouts, retry-with-backoff, quarantine-and-continue, and a
    checksummed fsync'd journal that makes interrupted sweeps resumable
    with byte-identical final results. *)

type job = {
  id : string;  (** unique and stable — the journal/resume key *)
  kind : string;
  spec : (string * Json.t) list;  (** replay parameters, echoed in results *)
  replay : string;  (** deterministic replay command for quarantine reports *)
  run : should_stop:(unit -> bool) -> Json.t;
      (** The work. Must poll [should_stop] (e.g. via {!cancel_hook} from a
          machine's [on_cycle]) and raise {!Cancelled} when it fires; any
          other exception marks the attempt failed (retried, then
          quarantined). Runs on an arbitrary pool domain; machines must be
          built with [jobs:1]. *)
}

type config = {
  workers : int;  (** pool helper domains; total parallelism = workers + 1 *)
  timeout_s : float;  (** per-attempt wall-clock limit; 0 = none *)
  max_retries : int;  (** retry rounds after the first attempt *)
  backoff_s : float;  (** round r waits [backoff_s * 2^(r-1)], capped at 5s *)
}

val default_config : config

(** Raised inside a job when its cancel flag fires (timeout or shutdown). *)
exception Cancelled

type status = Finished of Json.t | Quarantined of { error : string; replay : string }

type record = {
  job_id : string;
  kind : string;
  spec : (string * Json.t) list;
  status : status;
  attempts : int;
  resumed : bool;  (** recovered from the journal, not run this time *)
}

type outcome = {
  records : record list;  (** sorted by job id *)
  n_ok : int;
  n_quarantined : int;
  n_resumed : int;
  n_unfinished : int;  (** interrupted before every job got a record *)
  interrupted : bool;
}

(** [run config jobs] drains the sweep. [journal] appends every terminal
    record (finished or quarantined) to a crash-safe {!Journal}; with
    [resume:true] an existing journal is recovered first and only jobs
    without a record re-run (the journal must match the job set, else
    {!Journal.Corrupt}). [should_stop] is the external shutdown flag (the
    driver's SIGINT/SIGTERM handler sets it): in-flight jobs are cancelled
    and left unfinished for a later resume. [abort_after] (tests) simulates
    a mid-sweep kill by stopping after N journal appends. [log] receives
    progress lines. Raises [Invalid_argument] on duplicate job ids. *)
val run :
  ?journal:string ->
  ?resume:bool ->
  ?should_stop:(unit -> bool) ->
  ?abort_after:int ->
  ?log:(string -> unit) ->
  config ->
  job list ->
  outcome

(** Canonical results: sorted by job id, no volatile fields — a resumed
    sweep serializes byte-identically to an uninterrupted one. *)
val results_json : outcome -> string

(** [(job_id, error, replay)] for every quarantined job. *)
val quarantined : outcome -> (string * string * string) list

(** [cancel_hook ~should_stop] is an [on_cycle] hook polling the flag every
    256 cycles and raising {!Cancelled} out of the machine run. *)
val cancel_hook : should_stop:(unit -> bool) -> int -> unit
