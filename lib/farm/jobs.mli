(** Manifest-driven job production for the simulation farm.

    A [riscyoo-farm-manifest-v1] JSON file names sweeps; each expands
    into independent, individually-replayable {!Sweep.job}s:

    {v
    { "schema": "riscyoo-farm-manifest-v1",
      "sweeps": [
        {"type": "litmus", "tests": ["sb", "mp"], "models": ["tso", "wmm"],
         "seeds": 50, "stagger": false, "warm": true},
        {"type": "fault", "kernel": "gcc", "config": "b", "cores": 1,
         "trials": 64, "seed": 64023},
        {"type": "poison", "jobs": 100, "cycles": 1000,
         "fail": [3, 17], "hang": [5], "flaky": [9]}
      ] }
    v}

    [litmus] runs the (tests x models x seeds) product at jobs:1
    ([tests] defaults to all, [models] to both, [warm] enables the
    per-domain warm-fork snapshot cache — stagger-free sweeps only).
    [mcheck] is the same product with the interface-obligation monitors
    armed (an [obligations] boolean overrides the default of either
    type); its job ids live under [mcheck/] instead of [litmus/].
    [fault] runs the trials of a seeded bit-flip campaign, each trial's
    RNG independent of the others. [poison] makes synthetic jobs for
    exercising the farm's fault tolerance: [fail] indices raise after
    [cycles/2] synthetic cycles (quarantine), [hang] indices spin until
    cancelled (timeout), [flaky] indices fail once then succeed
    (retry). *)

type litmus_sweep = {
  ls_tests : Litmus.Test.t list;
  ls_models : Ooo.Config.mem_model list;
  ls_seeds : int;
  ls_stagger : bool;
  ls_warm : bool;
  ls_obligations : bool;
}

type fault_sweep = {
  fs_kernel : string;
  fs_config : string;
  fs_cores : int;
  fs_scale : int;
  fs_trials : int;
  fs_seed : int;
}

type poison_sweep = {
  ps_jobs : int;
  ps_cycles : int;
  ps_fail : int list;
  ps_hang : int list;
  ps_flaky : int list;
}

type sweep =
  | Litmus of litmus_sweep
  | Fault of fault_sweep
  | Poison of poison_sweep
  | Explore of Explore.Space.t
      (** an [{"type": "explore", ...}] sweep whose body is an explore
          manifest (base, grid, points, workloads, reference) — one job per
          workload x point, each returning a {!Explore.Measure} sample *)

type manifest = { sweeps : sweep list }

val schema : string

(** Raise {!Json.Parse_error} on malformed or mis-schema'd manifests. *)
val of_json : Json.t -> manifest

val of_string : string -> manifest
val load : string -> manifest

(** Expand a manifest into jobs. [manifest_path] is echoed into each
    job's replay command ([riscyoo <replay_cmd> <path> --only <id>]);
    [replay_cmd] defaults to ["farm"] — [riscyoo explore] passes its own
    name so replay commands for standalone explore manifests parse. *)
val jobs : ?replay_cmd:string -> ?manifest_path:string -> manifest -> Sweep.job list

(** Rebuild [riscyoo-litmus-v1] sweep reports from the farm's litmus
    records (quarantined jobs surface as harness errors) so nightly
    trend tracking can diff farm runs against [riscyoo litmus --hist]
    artifacts. Ignores non-litmus records. *)
val litmus_reports : Sweep.outcome -> Litmus.Run.report list

(** [litmus_reports] serialized via {!Litmus.Run.reports_to_json};
    [None] when the outcome holds no litmus records. *)
val litmus_json : seeds:int -> Sweep.outcome -> string option

(** The {!Explore.Measure} samples of every finished explore record
    (quarantined points are simply absent from the front). *)
val explore_samples : Sweep.outcome -> Explore.Measure.sample list

(** The first explore sweep's designated reference point, if any. *)
val explore_reference : manifest -> string option

(** [riscyoo-pareto-v1] front of the outcome's explore samples; [None]
    when the outcome holds none. *)
val explore_json : ?reference:string -> Sweep.outcome -> Json.t option
