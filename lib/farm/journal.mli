(** Crash-safe append-only result journal ([riscyoo-farm-v1]).

    One JSON record per line, each wrapped with its own MD5 checksum;
    appends flush and fsync before returning. A SIGKILL at any point leaves
    a valid prefix plus at most one torn final line, which {!recover} skips
    — everything intact is trusted, and resuming appends fresh records
    after the tear (later records shadow earlier ones per job). *)

type t

(** Raised by {!recover} on a journal whose header is missing, malformed,
    or bound to a different manifest. *)
exception Corrupt of string

(** [create path ~manifest_digest] truncates [path] and writes the header
    line binding the journal to the manifest. *)
val create : string -> manifest_digest:string -> t

(** Reopen an existing journal for appending (the resume path — run
    {!recover} first to learn what it holds). *)
val reopen : string -> t

(** Append one record: serialize, checksum, write, flush, fsync. Safe to
    call from any domain. *)
val append : t -> Json.t -> unit

val close : t -> unit

(** Records appended through this handle (not counting recovered ones). *)
val appended : t -> int

type recovery = {
  records : Json.t list;  (** intact records, journal order *)
  bad : string list;  (** torn/corrupt lines that were skipped *)
}

(** Read a journal back, verifying the header against [manifest_digest]
    (raises {!Corrupt} on mismatch) and each record line against its own
    checksum (bad lines are skipped, not fatal). *)
val recover : string -> manifest_digest:string -> recovery
