(* The farm's JSON used to live here; it is now the standalone [Rjson]
   library (lib/rjson) so manifest-consuming layers that the farm itself
   depends on — the config-space explorer in lib/explore — can parse and
   emit JSON without a dependency cycle. This alias keeps the historical
   [Farm.Json] path (and its exception identity) intact. *)
include Rjson
