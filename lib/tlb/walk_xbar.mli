(** The page-walk crossbar (paper, Fig. 11): routes each core's page-walker
    PTE reads to the coherent walker port of the L2 bank owning the PTE's
    line ([bank_of] on the line address — constant for an unbanked L2) and
    the responses back, retagging with the core id. *)

val rules :
  Tlb_sys.t array -> banks:Mem.L2_cache.t array -> bank_of:(int64 -> int) -> Cmd.Rule.t list
