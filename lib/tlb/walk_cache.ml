open Cmd

type entry = { mutable valid : bool; mutable prefix : int64; mutable base : int64 }

type t = { levels : entry array array; mutable rotor : int }

(* levels.(0): entries giving the level-1 table (keyed by vpn2);
   levels.(1): entries giving the level-0 table (keyed by vpn2:vpn1). *)
let create ~entries_per_level =
  let t =
    {
      levels =
        Array.init 2 (fun _ ->
            Array.init entries_per_level (fun _ -> { valid = false; prefix = 0L; base = 0L }));
      rotor = 0;
    }
  in
  State.field ~name:"walkcache"
    (fun () -> (t.levels, t.rotor))
    (fun (levels, rotor) ->
      Array.iteri (fun d arr -> Array.blit arr 0 t.levels.(d) 0 (Array.length arr)) levels;
      t.rotor <- rotor);
  t

let prefix_of va depth =
  (* depth 1: vpn2; depth 2: vpn2:vpn1 *)
  Int64.shift_right_logical va (12 + (9 * (3 - depth)))

let lookup t ~root va =
  let find depth =
    let p = prefix_of va depth in
    Array.fold_left
      (fun acc e -> if e.valid && e.prefix = p then Some e.base else acc)
      None
      t.levels.(depth - 1)
  in
  match find 2 with
  | Some base -> (0, base) (* can read the leaf PTE directly *)
  | None -> (
    match find 1 with
    | Some base -> (1, base)
    | None -> (2, root))

let insert ctx t va ~level ~base =
  (* [level] is the table level [base] addresses: 1 or 0. *)
  let depth = 2 - level in
  if depth >= 1 && depth <= 2 then begin
    let arr = t.levels.(depth - 1) in
    let p = prefix_of va depth in
    if not (Array.exists (fun e -> e.valid && e.prefix = p) arr) then begin
      let slot = arr.(t.rotor mod Array.length arr) in
      Mut.field ctx ~get:(fun () -> t.rotor) ~set:(fun v -> t.rotor <- v) (t.rotor + 1);
      Mut.field ctx ~get:(fun () -> slot.valid) ~set:(fun v -> slot.valid <- v) true;
      Mut.field ctx ~get:(fun () -> slot.prefix) ~set:(fun v -> slot.prefix <- v) p;
      Mut.field ctx ~get:(fun () -> slot.base) ~set:(fun v -> slot.base <- v) base
    end
  end

let flush t = Array.iter (fun arr -> Array.iter (fun e -> e.valid <- false) arr) t.levels
