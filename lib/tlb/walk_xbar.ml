open Cmd

let slot_bits = 4

(* Pure queue movers, like the cache crossbar: can_fire is source-queue
   occupancy, watches are the source queues' signals. *)
let rules tlbs ~l2 =
  let up =
    Rule.make "walkxbar.up"
      ~can_fire:(fun () ->
        Array.exists (fun t -> Fifo.peek_size (Tlb_sys.walk_mem_req t) > 0) tlbs)
      ~watches:(Array.to_list (Array.map (fun t -> Fifo.signal (Tlb_sys.walk_mem_req t)) tlbs))
      ~touches:(Array.to_list (Array.map (fun t -> Fifo.deq_token (Tlb_sys.walk_mem_req t)) tlbs))
      ~fp:
        (List.concat_map
           (fun t -> [ Fifo.fp_deq (Tlb_sys.walk_mem_req t) ])
           (Array.to_list tlbs)
        @ Mem.L2_cache.fp_walk_req l2)
      ~total:true ~vacuous:true
      (fun ctx ->
        Array.iteri
          (fun core t ->
            ignore
              (Kernel.attempt ctx (fun ctx ->
                   (* walker-port capacity checked before the deq writes, so a
                      guard failure never rolls anything back *)
                   Kernel.guard ctx (Mem.L2_cache.can_walk_req ctx l2) "walk port full";
                   let slot, addr = Fifo.deq ctx (Tlb_sys.walk_mem_req t) in
                   Mem.L2_cache.walk_req ctx l2 ~tag:((core lsl slot_bits) lor slot) addr)))
          tlbs)
  in
  let down =
    Rule.make "walkxbar.down"
      ~can_fire:(fun () -> Mem.L2_cache.walk_resp_ready l2)
      ~watches:[ Mem.L2_cache.walk_resp_signal l2 ]
      ~touches:(Array.to_list (Array.map (fun t -> Fifo.enq_token (Tlb_sys.walk_mem_resp t)) tlbs))
      ~fp:
        (Mem.L2_cache.fp_walk_resp l2
        @ List.concat_map
            (fun t -> [ Fifo.fp_enq (Tlb_sys.walk_mem_resp t) ])
            (Array.to_list tlbs))
      ~vacuous:true
      (fun ctx ->
        let continue = ref true in
        while !continue do
          match
            Kernel.attempt ctx (fun ctx ->
                let tag, v = Mem.L2_cache.walk_resp ctx l2 in
                Fifo.enq ctx (Tlb_sys.walk_mem_resp tlbs.(tag lsr slot_bits)) (tag land ((1 lsl slot_bits) - 1), v))
          with
          | Some () -> ()
          | None -> continue := false
        done)
  in
  [ down; up ]
