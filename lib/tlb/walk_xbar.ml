open Cmd

let slot_bits = 4

(* Pure queue movers, like the cache crossbar: can_fire is source-queue
   occupancy, watches are the source queues' signals. With a banked L2 the
   walker crossbar also demuxes: requests route by [bank_of] on the walk
   address's line, responses drain from every bank (the response tag
   already carries core and slot, so merging order is irrelevant to
   correctness and fixed by bank order for determinism). *)
let rules tlbs ~banks ~bank_of =
  let bank_list f = Array.to_list (Array.map f banks) in
  let up =
    Rule.make "walkxbar.up"
      ~can_fire:(fun () ->
        Array.exists (fun t -> Fifo.peek_size (Tlb_sys.walk_mem_req t) > 0) tlbs)
      ~watches:(Array.to_list (Array.map (fun t -> Fifo.signal (Tlb_sys.walk_mem_req t)) tlbs))
      ~touches:(Array.to_list (Array.map (fun t -> Fifo.deq_token (Tlb_sys.walk_mem_req t)) tlbs))
      ~fp:
        (List.concat_map
           (fun t -> [ Fifo.fp_first (Tlb_sys.walk_mem_req t); Fifo.fp_deq (Tlb_sys.walk_mem_req t) ])
           (Array.to_list tlbs)
        @ List.concat (bank_list Mem.L2_cache.fp_walk_req))
      ~total:true ~vacuous:true
      (fun ctx ->
        Array.iteri
          (fun core t ->
            ignore
              (Kernel.attempt ctx (fun ctx ->
                   (* walker-port capacity checked before the deq writes, so a
                      guard failure never rolls anything back *)
                   let _, addr = Fifo.first ctx (Tlb_sys.walk_mem_req t) in
                   let l2 = banks.(bank_of (Mem.Cache_geom.line_addr addr)) in
                   Kernel.guard ctx (Mem.L2_cache.can_walk_req ctx l2) "walk port full";
                   let slot, addr = Fifo.deq ctx (Tlb_sys.walk_mem_req t) in
                   Mem.L2_cache.walk_req ctx l2 ~tag:((core lsl slot_bits) lor slot) addr)))
          tlbs)
  in
  let down =
    Rule.make "walkxbar.down"
      ~can_fire:(fun () -> Array.exists Mem.L2_cache.walk_resp_ready banks)
      ~watches:(bank_list Mem.L2_cache.walk_resp_signal)
      ~touches:(Array.to_list (Array.map (fun t -> Fifo.enq_token (Tlb_sys.walk_mem_resp t)) tlbs))
      ~fp:
        (List.concat (bank_list Mem.L2_cache.fp_walk_resp)
        @ List.concat_map
            (fun t -> [ Fifo.fp_enq (Tlb_sys.walk_mem_resp t) ])
            (Array.to_list tlbs))
      ~vacuous:true
      (fun ctx ->
        Array.iter
          (fun l2 ->
            let continue = ref true in
            while !continue do
              match
                Kernel.attempt ctx (fun ctx ->
                    let tag, v = Mem.L2_cache.walk_resp ctx l2 in
                    Fifo.enq ctx
                      (Tlb_sys.walk_mem_resp tlbs.(tag lsr slot_bits))
                      (tag land ((1 lsl slot_bits) - 1), v))
              with
              | Some () -> ()
              | None -> continue := false
            done)
          banks)
  in
  [ down; up ]
